/**
 * @file
 * Quickstart: compile a tiny TinyC program through the Safe TinyOS
 * pipeline, run it on the mote simulator, then demonstrate the whole
 * point — an out-of-bounds write is caught by an inserted dynamic
 * check and reported as a FLID that decodes to the exact source line.
 *
 * Build and run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "core/pipeline.h"
#include "safety/flid.h"
#include "sim/machine.h"

using namespace stos;
using namespace stos::core;

namespace {

const char *kProgram = R"TC(
u8 readings[8];
u8 count;

task void record() {
    // BUG: the guard is off by one, so the 9th reading lands one
    // past the end of the buffer.
    if (count <= 8) {
        readings[count] = RANDOM;
        count = (u8)(count + 1);
    }
    stos_leds_set((u8)(count & 7));
}

interrupt(TIMER0) void on_timer() {
    post record;
}

void main() {
    stos_timer0_start(512);
    stos_run_scheduler();
}
)TC";

} // namespace

int
main()
{
    printf("=== Safe TinyOS quickstart ===\n\n");

    // 1. Build the same program twice: unsafe (plain backend) and
    //    safe (CCured-analogue + inliner + cXprop).
    PipelineConfig unsafeCfg = configFor(ConfigId::Baseline, "Mica2");
    PipelineConfig safeCfg =
        configFor(ConfigId::SafeFlidInlineCxprop, "Mica2");
    BuildResult unsafeBuild = buildSource("quickstart", kProgram,
                                          unsafeCfg);
    BuildResult safeBuild = buildSource("quickstart", kProgram, safeCfg);

    printf("unsafe build: %5u bytes code, %4u bytes RAM\n",
           unsafeBuild.codeBytes, unsafeBuild.ramBytes);
    printf("safe build:   %5u bytes code, %4u bytes RAM "
           "(%u checks inserted, %u removed by cXprop)\n\n",
           safeBuild.codeBytes, safeBuild.ramBytes,
           safeBuild.safetyReport.checksInserted,
           safeBuild.cxpropReport.checksRemoved);

    // 2. Run the unsafe build: the off-by-one silently corrupts the
    //    neighbouring `count` variable and the program keeps going.
    sim::Machine unsafeMote(unsafeBuild.image, 1);
    unsafeMote.boot();
    unsafeMote.runUntilCycle(8'000'000);
    printf("unsafe run:  %s after 8M cycles (count=%llu) — the bug "
           "corrupted memory silently\n",
           unsafeMote.wedged() ? "TRAPPED" : "still running",
           static_cast<unsigned long long>(
               unsafeMote.readGlobal("count", 1)));

    // 3. Run the safe build: the bounds check fires on the 9th write
    //    and halts the node with a 16-bit failure id.
    sim::Machine safeMote(safeBuild.image, 1);
    safeMote.boot();
    safeMote.runUntilCycle(8'000'000);
    if (safeMote.wedged() && safeMote.failedFlid() != 0) {
        printf("safe run:    TRAPPED with FLID %u\n",
               safeMote.failedFlid());
        printf("decoded:     %s\n",
               safety::decodeFlid(safeBuild.module,
                                  safeMote.failedFlid())
                   .c_str());
    } else {
        printf("safe run:    unexpected: no fault caught\n");
        return 1;
    }

    printf("\nThe FLID table shipped with the firmware has %zu "
           "entries; the device itself stores none of the text.\n",
           safeBuild.module.flidTable().size());
    return 0;
}
