/**
 * @file
 * `stosc` — the Safe TinyOS command-line compiler driver. Compiles a
 * TinyC source file (with the TinyOS-style library linked in) through
 * a chosen configuration, reports the cost metrics, optionally writes
 * the FLID table, and optionally boots the image on the simulator.
 *
 * Usage:
 *   stosc <file.tc> [--config baseline|safe|safe-opt|verbose|terse]
 *                   [--platform Mica2|TelosB]
 *                   [--flid-table <out.tsv>]
 *                   [--run <seconds>] [--node-id <n>]
 *                   [--dump-ir]
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "ir/printer.h"
#include "safety/flid.h"
#include "sim/machine.h"

using namespace stos;
using namespace stos::core;

namespace {

void
usage()
{
    fprintf(stderr,
            "usage: stosc <file.tc> [options]\n"
            "  --config <c>       baseline | safe | safe-opt (default) |\n"
            "                     verbose | terse\n"
            "  --platform <p>     Mica2 (default) | TelosB\n"
            "  --flid-table <f>   write the failure-id table to <f>\n"
            "  --run <seconds>    boot the image on the simulator\n"
            "  --node-id <n>      simulated node id (default 1)\n"
            "  --dump-ir          print the final TinyCIL\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string file = argv[1];
    std::string config = "safe-opt";
    std::string platform = "Mica2";
    std::string flidOut;
    double runSeconds = 0;
    int nodeId = 1;
    bool dumpIr = false;
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--config")
            config = next();
        else if (a == "--platform")
            platform = next();
        else if (a == "--flid-table")
            flidOut = next();
        else if (a == "--run")
            runSeconds = atof(next());
        else if (a == "--node-id")
            nodeId = atoi(next());
        else if (a == "--dump-ir")
            dumpIr = true;
        else {
            usage();
            return 2;
        }
    }

    std::ifstream in(file);
    if (!in) {
        fprintf(stderr, "stosc: cannot open %s\n", file.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    ConfigId id;
    if (config == "baseline")
        id = ConfigId::Baseline;
    else if (config == "safe")
        id = ConfigId::SafeFlid;
    else if (config == "safe-opt")
        id = ConfigId::SafeFlidInlineCxprop;
    else if (config == "verbose")
        id = ConfigId::SafeVerboseRam;
    else if (config == "terse")
        id = ConfigId::SafeTerse;
    else {
        usage();
        return 2;
    }

    std::string name = file;
    size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    size_t dot = name.find_last_of('.');
    if (dot != std::string::npos)
        name = name.substr(0, dot);

    BuildResult r;
    try {
        r = buildSource(name, ss.str(), configFor(id, platform));
    } catch (const std::exception &e) {
        fprintf(stderr, "stosc: %s\n", e.what());
        return 1;
    }

    printf("%s [%s, %s]\n", name.c_str(), configName(id),
           platform.c_str());
    printf("  code:  %6u bytes flash\n", r.codeBytes);
    printf("  data:  %6u bytes RAM, %u bytes ROM\n", r.ramBytes,
           r.romDataBytes);
    if (id != ConfigId::Baseline) {
        printf("  safety: %u checks inserted",
               r.safetyReport.checksInserted);
        if (r.cxpropReport.checksRemoved)
            printf(", %u removed by cXprop",
                   r.cxpropReport.checksRemoved);
        printf("; %u racy globals, %u locks\n",
               r.safetyReport.racyGlobals,
               r.safetyReport.locksInserted);
    }
    if (dumpIr)
        printf("%s", ir::moduleToString(r.module).c_str());
    if (!flidOut.empty()) {
        std::ofstream out(flidOut);
        out << safety::serializeFlidTable(r.module);
        printf("  flid table: %s (%zu entries)\n", flidOut.c_str(),
               r.module.flidTable().size());
    }
    if (runSeconds > 0) {
        sim::Machine mote(r.image, static_cast<uint8_t>(nodeId));
        mote.boot();
        mote.runUntilCycle(static_cast<uint64_t>(
            runSeconds * r.image.target.clockHz));
        printf("  sim: %llu cycles, duty %.3f%%, %u LED writes\n",
               static_cast<unsigned long long>(mote.cycles()),
               100.0 * mote.dutyCycle(), mote.devices().ledWrites());
        if (!mote.devices().uartLog().empty())
            printf("  uart: %s\n", mote.devices().uartLog().c_str());
        if (mote.wedged() && mote.failedFlid()) {
            printf("  FAULT: flid %u — %s\n", mote.failedFlid(),
                   safety::decodeFlid(r.module, mote.failedFlid())
                       .c_str());
            return 3;
        }
    }
    return 0;
}
