/**
 * @file
 * The error-message decompression tool (the "error message
 * decompression" box in Figure 1). A deployment keeps the FLID table
 * produced at build time next to the firmware; when a node reports a
 * 16-bit failure id over the UART, this tool turns it back into the
 * full file:line:kind message.
 *
 * Usage:
 *   flid_decoder                 demo: build an app, dump its table
 *   flid_decoder <table> <id>    decode `id` against a saved table
 */
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pipeline.h"
#include "safety/flid.h"

using namespace stos;
using namespace stos::core;

int
main(int argc, char **argv)
{
    if (argc == 3) {
        std::ifstream in(argv[1]);
        if (!in) {
            fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        auto entries = safety::parseFlidTable(ss.str());
        uint32_t id = static_cast<uint32_t>(std::stoul(argv[2]));
        for (const auto &e : entries) {
            if (e.flid == id) {
                printf("%s:%u: %s check failed (%s)\n", e.file.c_str(),
                       e.line, e.checkKind.c_str(), e.detail.c_str());
                return 0;
            }
        }
        printf("unknown failure id %u\n", id);
        return 1;
    }

    // Demo mode: build SenseToRfm safely and show its table.
    const auto &app = tinyos::appByName("SenseToRfm");
    BuildResult r =
        buildApp(app, configFor(ConfigId::SafeFlid, app.platform));
    std::string table = safety::serializeFlidTable(r.module);
    printf("FLID table for %s (%zu entries, %zu bytes host-side, "
           "0 bytes device-side):\n\n%s\n",
           app.name.c_str(), r.module.flidTable().size(), table.size(),
           table.c_str());
    printf("Example decode of id 1: %s\n",
           safety::decodeFlid(r.module, 1).c_str());
    printf("\nSave the table and decode in the field with:\n"
           "  flid_decoder table.tsv <id>\n");
    return 0;
}
