/**
 * @file
 * A small Surge sensor network: two safe Surge motes sampling and
 * forwarding readings toward a GenericBase bridge mote, all on the
 * cycle simulator. Reports traffic statistics and duty cycles — the
 * "reasonable sensor network context" of the paper's §3.4 — and shows
 * that safety checks stay silent during normal multihop operation.
 *
 * Build and run:  ./build/examples/surge_network
 */
#include <cstdio>

#include "core/pipeline.h"
#include "sim/machine.h"

using namespace stos;
using namespace stos::core;

int
main()
{
    printf("=== Surge multihop network (2 Surge + 1 base) ===\n\n");
    const auto &surge = tinyos::appByName("Surge");
    const auto &baseApp = tinyos::appByName("GenericBase");

    PipelineConfig safeCfg =
        configFor(ConfigId::SafeFlidInlineCxprop, "Mica2");
    BuildResult surgeBuild = buildApp(surge, safeCfg);
    BuildResult baseBuild = buildApp(baseApp, safeCfg);
    printf("Surge image: %u B code, %u B RAM, %u checks inserted, "
           "%u racy globals locked\n",
           surgeBuild.codeBytes, surgeBuild.ramBytes,
           surgeBuild.safetyReport.checksInserted,
           surgeBuild.safetyReport.racyGlobals);

    // Predecode each firmware once and share the decode across the
    // motes that run it; step the motes in parallel inside the
    // radio-lookahead windows (identical results to serial stepping —
    // the equivalence suite holds the schedulers to that).
    sim::NetworkOptions netOpts;
    netOpts.threads = 3;
    sim::Network net(netOpts);
    auto surgeDecode =
        std::make_shared<const sim::DecodedProgram>(surgeBuild.image);
    net.addMote(
        std::make_shared<const sim::DecodedProgram>(baseBuild.image),
        0);  // base station
    net.addMote(surgeDecode, 1);
    net.addMote(surgeDecode, 2);

    const uint64_t second = 7'372'800;
    for (int s = 1; s <= 4; ++s) {
        net.run(second);
        printf("t=%ds: ", s);
        for (size_t i = 0; i < net.size(); ++i) {
            auto &m = net.mote(i);
            printf("[mote%zu tx=%u rx=%u duty=%.2f%%%s] ", i,
                   m.devices().packetsSent(),
                   m.devices().packetsReceived(),
                   100.0 * m.dutyCycle(),
                   m.wedged() ? " FAULT" : "");
        }
        printf("\n");
    }

    bool ok = true;
    for (size_t i = 0; i < net.size(); ++i) {
        if (net.mote(i).wedged()) {
            printf("mote %zu faulted (flid %u) — unexpected\n", i,
                   net.mote(i).failedFlid());
            ok = false;
        }
    }
    uint32_t delivered = net.mote(0).devices().packetsReceived();
    printf("\nBase station received %u packets; uart bridge emitted "
           "%zu bytes.\n",
           delivered, net.mote(0).devices().uartLog().size());
    if (delivered == 0) {
        printf("no traffic reached the base — unexpected\n");
        ok = false;
    }
    printf("Safety checks stayed silent during normal operation: %s\n",
           ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
