/**
 * @file
 * End-to-end tour of the toolchain on the classic BlinkTask
 * application: build it under every Figure-3 configuration, print the
 * cost table, then simulate the safe-optimized build and confirm it
 * blinks exactly like the unsafe original while sleeping most of the
 * time.
 *
 * Build and run:  ./build/examples/safe_blink
 */
#include <cstdio>

#include "core/pipeline.h"
#include "sim/machine.h"

using namespace stos;
using namespace stos::core;

int
main()
{
    const auto &app = tinyos::appByName("BlinkTask");
    printf("=== BlinkTask under every configuration ===\n\n");
    printf("%-32s %10s %8s %8s %8s\n", "configuration", "code(B)",
           "RAM(B)", "ROM(B)", "checks");

    BuildResult base =
        buildApp(app, configFor(ConfigId::Baseline, app.platform));
    printf("%-32s %10u %8u %8u %8s\n", configName(ConfigId::Baseline),
           base.codeBytes, base.ramBytes, base.romDataBytes, "-");
    for (ConfigId id : figure3Configs()) {
        BuildResult r = buildApp(app, configFor(id, app.platform));
        printf("%-32s %10u %8u %8u %8u\n", configName(id), r.codeBytes,
               r.ramBytes, r.romDataBytes,
               r.image.survivingCheckBranches());
    }

    printf("\n=== behavioural equivalence on the simulator ===\n");
    BuildResult safe = buildApp(
        app, configFor(ConfigId::SafeFlidInlineCxprop, app.platform));
    sim::Machine unsafeMote(base.image, 1);
    sim::Machine safeMote(safe.image, 1);
    unsafeMote.boot();
    safeMote.boot();
    const uint64_t cycles = 7'372'800 * 2;  // two simulated seconds
    unsafeMote.runUntilCycle(cycles);
    safeMote.runUntilCycle(cycles);
    printf("unsafe: %u LED writes, duty cycle %.3f%%\n",
           unsafeMote.devices().ledWrites(),
           100.0 * unsafeMote.dutyCycle());
    printf("safe:   %u LED writes, duty cycle %.3f%%\n",
           safeMote.devices().ledWrites(),
           100.0 * safeMote.dutyCycle());
    bool same = unsafeMote.devices().ledWrites() ==
                safeMote.devices().ledWrites();
    printf("LED behaviour identical: %s\n", same ? "yes" : "NO");
    return same ? 0 : 1;
}
