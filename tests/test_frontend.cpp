/**
 * @file
 * Frontend tests: lexer, parser error recovery, and lowering checked
 * by compiling TinyC snippets and inspecting / executing the IR.
 */
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "frontend/lexer.h"
#include "ir/interp.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace stos {
namespace {

using namespace stos::frontend;
using namespace stos::ir;

Module
compile(const std::string &src, bool expectOk = true)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = compileTinyC({{"test.tc", src}}, diags, sm);
    if (expectOk) {
        EXPECT_FALSE(diags.hasErrors()) << diags.dump();
        auto problems = verifyModule(m);
        EXPECT_TRUE(problems.empty())
            << (problems.empty() ? "" : problems[0]) << "\n"
            << moduleToString(m);
    }
    return m;
}

bool
compileFails(const std::string &src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    compileTinyC({{"test.tc", src}}, diags, sm);
    return diags.hasErrors();
}

uint64_t
runFn(Module &m, const std::string &fn)
{
    Interp in(m);
    auto r = in.run(fn);
    EXPECT_EQ(r.reason, StopReason::Returned) << r.detail;
    return r.retVal.i;
}

//---------------------------------------------------------------------
// Lexer
//---------------------------------------------------------------------

TEST(Lexer, TokenizesOperators)
{
    SourceManager sm;
    DiagnosticEngine d(&sm);
    auto toks = lex("a += b << 2; x->y", 1, d);
    ASSERT_FALSE(d.hasErrors());
    EXPECT_EQ(toks[0].kind, Tok::Ident);
    EXPECT_EQ(toks[1].kind, Tok::PlusEq);
    EXPECT_EQ(toks[3].kind, Tok::Shl);
    EXPECT_EQ(toks[4].kind, Tok::IntLit);
    EXPECT_EQ(toks[7].kind, Tok::Arrow);
}

TEST(Lexer, HexAndChar)
{
    SourceManager sm;
    DiagnosticEngine d(&sm);
    auto toks = lex("0x1F 'A' '\\n'", 1, d);
    EXPECT_EQ(toks[0].intVal, 0x1Fu);
    EXPECT_EQ(toks[1].intVal, 'A');
    EXPECT_EQ(toks[2].intVal, static_cast<uint64_t>('\n'));
}

TEST(Lexer, CommentsAndStrings)
{
    SourceManager sm;
    DiagnosticEngine d(&sm);
    auto toks = lex("// line\n/* block */ \"hi\\t\"", 1, d);
    ASSERT_FALSE(d.hasErrors());
    EXPECT_EQ(toks[0].kind, Tok::StrLit);
    EXPECT_EQ(toks[0].text, "hi\t");
}

TEST(Lexer, ReportsBadCharacter)
{
    SourceManager sm;
    DiagnosticEngine d(&sm);
    lex("a $ b", 1, d);
    EXPECT_TRUE(d.hasErrors());
}

//---------------------------------------------------------------------
// Lowering + execution
//---------------------------------------------------------------------

TEST(Frontend, ReturnsConstant)
{
    Module m = compile("u16 main() { return 42; }");
    EXPECT_EQ(runFn(m, "main"), 42u);
}

TEST(Frontend, ArithmeticAndPrecedence)
{
    Module m = compile("u16 main() { return 2 + 3 * 4 - 6 / 2; }");
    EXPECT_EQ(runFn(m, "main"), 11u);
}

TEST(Frontend, U8WraparoundOnAssignment)
{
    Module m = compile(
        "u8 g;"
        "u16 main() { g = 200; g = g + 100; return g; }");
    EXPECT_EQ(runFn(m, "main"), (200 + 100) & 0xFF);
}

TEST(Frontend, SignedArithmetic)
{
    Module m = compile(
        "i16 main() { i16 a = -5; i16 b = 3; return a / b; }");
    EXPECT_EQ(static_cast<int16_t>(runFn(m, "main")), -1);
}

TEST(Frontend, GlobalInitializers)
{
    Module m = compile(
        "u16 a = 0x1234;"
        "u8 arr[4] = {1, 2, 3};"
        "u16 main() { return a + arr[0] + arr[1] + arr[2] + arr[3]; }");
    EXPECT_EQ(runFn(m, "main"), 0x1234u + 6);
}

TEST(Frontend, StringGlobalInitializer)
{
    Module m = compile(
        "u8 msg[6] = \"hello\";"
        "u16 main() { return msg[0] + msg[4]; }");
    EXPECT_EQ(runFn(m, "main"), static_cast<uint64_t>('h' + 'o'));
}

TEST(Frontend, WhileLoopSum)
{
    Module m = compile(
        "u16 main() {"
        "  u16 s = 0; u16 i = 1;"
        "  while (i <= 10) { s += i; i++; }"
        "  return s;"
        "}");
    EXPECT_EQ(runFn(m, "main"), 55u);
}

TEST(Frontend, ForLoopWithBreakContinue)
{
    Module m = compile(
        "u16 main() {"
        "  u16 s = 0;"
        "  for (u16 i = 0; i < 100; i++) {"
        "    if (i % 2 == 0) { continue; }"
        "    if (i > 9) { break; }"
        "    s += i;"
        "  }"
        "  return s;"  // 1+3+5+7+9
        "}");
    EXPECT_EQ(runFn(m, "main"), 25u);
}

TEST(Frontend, ShortCircuitEvaluation)
{
    Module m = compile(
        "u16 calls;"
        "bool touch() { calls++; return true; }"
        "u16 main() {"
        "  if (false && touch()) { return 1; }"
        "  if (true || touch()) { return calls; }"
        "  return 99;"
        "}");
    EXPECT_EQ(runFn(m, "main"), 0u);
}

TEST(Frontend, TernaryConditional)
{
    Module m = compile(
        "u16 pick(u16 x) { return x > 5 ? 100 : 200; }"
        "u16 main() { return pick(6) + pick(2); }");
    EXPECT_EQ(runFn(m, "main"), 300u);
}

TEST(Frontend, PointersAndAddressOf)
{
    Module m = compile(
        "u16 main() {"
        "  u16 x = 7;"
        "  u16* p = &x;"
        "  *p = *p + 1;"
        "  return x;"
        "}");
    EXPECT_EQ(runFn(m, "main"), 8u);
}

TEST(Frontend, PointerArithmeticOverArray)
{
    Module m = compile(
        "u8 buf[5] = {10, 20, 30, 40, 50};"
        "u16 main() {"
        "  u8* p = buf;"
        "  p = p + 2;"
        "  return p[0] + p[1];"
        "}");
    EXPECT_EQ(runFn(m, "main"), 70u);
}

TEST(Frontend, StructFieldsAndArrow)
{
    Module m = compile(
        "struct Point { i16 x; i16 y; };"
        "struct Point g;"
        "i16 get(struct Point* p) { return p->x + p->y; }"
        "i16 main() {"
        "  g.x = 3; g.y = 4;"
        "  return get(&g);"
        "}");
    EXPECT_EQ(runFn(m, "main"), 7u);
}

TEST(Frontend, NestedStructArrays)
{
    Module m = compile(
        "struct Entry { u8 key; u16 val; };"
        "struct Table { struct Entry rows[3]; u8 n; };"
        "struct Table t;"
        "u16 main() {"
        "  t.rows[1].key = 9;"
        "  t.rows[1].val = 500;"
        "  t.n = 1;"
        "  return t.rows[1].val + t.rows[1].key + t.n;"
        "}");
    EXPECT_EQ(runFn(m, "main"), 510u);
}

TEST(Frontend, StructAssignmentCopies)
{
    Module m = compile(
        "struct P { u16 a; u16 b; };"
        "struct P src; struct P dst;"
        "u16 main() {"
        "  src.a = 11; src.b = 22;"
        "  dst = src;"
        "  src.a = 99;"
        "  return dst.a + dst.b;"
        "}");
    EXPECT_EQ(runFn(m, "main"), 33u);
}

TEST(Frontend, FunctionPointers)
{
    Module m = compile(
        "u16 hits;"
        "void t1() { hits += 1; }"
        "void t2() { hits += 10; }"
        "u16 main() {"
        "  fnptr f = t1;"
        "  f();"
        "  f = t2;"
        "  f();"
        "  return hits;"
        "}");
    EXPECT_EQ(runFn(m, "main"), 11u);
}

TEST(Frontend, HwRegReadWrite)
{
    Module m = compile(
        "hwreg u8 PORTB @ 0x25;"
        "void main() { PORTB = 0x0F; PORTB = PORTB | 0x30; }");
    HwBus bus;
    Interp in(m, &bus);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned);
    ASSERT_EQ(bus.writeLog().size(), 2u);
    EXPECT_EQ(bus.writeLog()[0].addr, 0x25u);
    EXPECT_EQ(bus.writeLog()[0].value, 0x0Fu);
    EXPECT_EQ(bus.writeLog()[1].value, 0x30u);  // read returns 0
}

TEST(Frontend, AtomicSectionsLower)
{
    Module m = compile(
        "u16 shared;"
        "void main() { atomic { shared = shared + 1; } }");
    const Function *f = m.findFunc("main");
    ASSERT_NE(f, nullptr);
    int begins = 0, ends = 0;
    for (const auto &bb : f->blocks) {
        for (const auto &in : bb.instrs) {
            if (in.op == Opcode::AtomicBegin) ++begins;
            if (in.op == Opcode::AtomicEnd) ++ends;
        }
    }
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(ends, 1);
}

TEST(Frontend, SizeofIsCompileTime)
{
    Module m = compile(
        "struct Big { u32 a; u16 b; u8 c[10]; };"
        "u16 main() { return sizeof(struct Big) + sizeof(u16*); }");
    EXPECT_EQ(runFn(m, "main"), 16u + 2u);
}

TEST(Frontend, CastsBetweenWidths)
{
    Module m = compile(
        "u16 main() {"
        "  u32 big = 0x12345678;"
        "  u16 low = (u16) big;"
        "  i8 s = (i8) 0xFF;"
        "  i16 wide = s;"  // sign extends
        "  return low + (u16) wide;"
        "}");
    EXPECT_EQ(runFn(m, "main"), ((0x5678 + 0xFFFF) & 0xFFFF));
}

TEST(Frontend, RecursionWorks)
{
    Module m = compile(
        "u16 fib(u16 n) {"
        "  if (n < 2) { return n; }"
        "  return fib(n - 1) + fib(n - 2);"
        "}"
        "u16 main() { return fib(10); }");
    EXPECT_EQ(runFn(m, "main"), 55u);
}

TEST(Frontend, InterruptAttributeSetsVector)
{
    Module m = compile(
        "u16 ticks;"
        "interrupt(TIMER0) void on_tick() { ticks++; }"
        "void main() { }");
    const Function *f = m.findFunc("on_tick");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->attrs.interruptVector, 0);
    EXPECT_TRUE(f->attrs.usedFromStart);
}

TEST(Frontend, TaskAttribute)
{
    Module m = compile("task void work() { } void main() { }");
    EXPECT_TRUE(m.findFunc("work")->attrs.isTask);
}

TEST(Frontend, NoraceAttribute)
{
    Module m = compile("norace u16 counter; void main() { counter = 1; }");
    EXPECT_TRUE(m.findGlobal("counter")->attrs.norace);
}

TEST(Frontend, RomGlobalsGetRomSection)
{
    Module m = compile("rom u8 table[3] = {1,2,3}; void main() { }");
    EXPECT_EQ(m.findGlobal("table")->section, Section::Rom);
}

//---------------------------------------------------------------------
// Error cases
//---------------------------------------------------------------------

TEST(FrontendErrors, UnknownVariable)
{
    EXPECT_TRUE(compileFails("void main() { x = 1; }"));
}

TEST(FrontendErrors, UnknownStruct)
{
    EXPECT_TRUE(compileFails("struct Nope* p; void main() { }"));
}

TEST(FrontendErrors, DuplicateFunction)
{
    EXPECT_TRUE(compileFails("void f() { } void f() { } void main() { }"));
}

TEST(FrontendErrors, CallArity)
{
    EXPECT_TRUE(compileFails(
        "void f(u8 a) { } void main() { f(); }"));
}

TEST(FrontendErrors, BreakOutsideLoop)
{
    EXPECT_TRUE(compileFails("void main() { break; }"));
}

TEST(FrontendErrors, PostOfNonTask)
{
    EXPECT_TRUE(compileFails(
        "void notask() { } void main() { post notask; }"));
}

TEST(FrontendErrors, AggregateParam)
{
    EXPECT_TRUE(compileFails(
        "struct S { u8 a; }; void f(struct S s) { } void main() { }"));
}

TEST(FrontendErrors, BadInterruptVector)
{
    EXPECT_TRUE(compileFails(
        "interrupt(BOGUS) void h() { } void main() { }"));
}

TEST(FrontendErrors, ImplicitPointerConversion)
{
    EXPECT_TRUE(compileFails(
        "u8 a; u16* p; void main() { p = &a; }"));
}

TEST(FrontendErrors, HwregMustBeU8OrU16)
{
    EXPECT_TRUE(compileFails("hwreg u32 R @ 0x10; void main() { }"));
}

TEST(FrontendErrors, IncDecOfUnknownMemberIsDiagnosedNotCrash)
{
    // Found by the fuzzer's ddmin minimizer: ++/-- on a member of an
    // undeclared variable used to read the error lvalue's invalid
    // type id and crash instead of reporting a diagnostic.
    EXPECT_TRUE(compileFails("void main() { nosuch.f0--; }"));
    EXPECT_TRUE(compileFails("void main() { nosuch++; }"));
}

//---------------------------------------------------------------------
// Error cases for the constructs the expanded corpus leans on
// (for-loop headers, ternaries, struct copies, modulo, pointer
// returns, atomic sections, rotating-log struct arrays).
//---------------------------------------------------------------------

/** Compile a failing snippet and return the diagnostic dump. */
std::string
diagnosticsOf(const std::string &src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    compileTinyC({{"test.tc", src}}, diags, sm);
    EXPECT_TRUE(diags.hasErrors()) << "snippet unexpectedly compiled";
    return diags.dump();
}

TEST(FrontendErrors, MalformedForLoopHeader)
{
    // Missing first semicolon of the header.
    EXPECT_NE(diagnosticsOf("void main() {"
                            "  for (u16 i = 0 i < 3; i++) { }"
                            "}")
                  .find("expected"),
              std::string::npos);
}

TEST(FrontendErrors, TernaryMissingColon)
{
    EXPECT_TRUE(compileFails(
        "u16 main() { u16 x = 1; return x > 0 ? 2 2; }"));
}

TEST(FrontendErrors, TooManyArrayInitializers)
{
    EXPECT_NE(
        diagnosticsOf("u8 order[2] = {1, 2, 3}; void main() { }")
            .find("too many array initializers"),
        std::string::npos);
}

TEST(FrontendErrors, AggregateAssignmentTypeMismatch)
{
    EXPECT_NE(diagnosticsOf("struct A { u8 x; };"
                            "struct B { u16 y; };"
                            "struct A a; struct B b;"
                            "void main() { a = b; }")
                  .find("aggregate assignment type mismatch"),
              std::string::npos);
}

TEST(FrontendErrors, ModuloNeedsIntegerOperands)
{
    EXPECT_TRUE(compileFails("u8 buf[4];"
                             "void main() { u8* p = buf; p = p % 2; }"));
}

TEST(FrontendErrors, ReturnedPointerTypeMustMatch)
{
    // The selector-return idiom (PointerChurn) with the wrong pointee
    // width must be rejected, not silently converted.
    EXPECT_NE(diagnosticsOf("u8 bufs[8];"
                            "u16* pick() { return bufs; }"
                            "void main() { }")
                  .find("pointer conversion"),
              std::string::npos);
}

TEST(FrontendErrors, UnterminatedAtomicSection)
{
    EXPECT_TRUE(compileFails(
        "u8 c; void main() { atomic { c = (u8)(c + 1); }"));
}

TEST(FrontendErrors, PostOfUnknownTaskNamesTheTarget)
{
    EXPECT_NE(diagnosticsOf("void main() { post nosuch; }")
                  .find("post of unknown task nosuch"),
              std::string::npos);
}

TEST(FrontendErrors, UnterminatedStringLiteral)
{
    EXPECT_NE(diagnosticsOf("u8 msg[4] = \"abc; void main() { }")
                  .find("unterminated string literal"),
              std::string::npos);
}

} // namespace
} // namespace stos
