/**
 * @file
 * Unit tests for the analysis library: call graph, points-to,
 * liveness, and the concurrency/race detector.
 */
#include <gtest/gtest.h>

#include "analysis/callgraph.h"
#include "analysis/concurrency.h"
#include "analysis/liveness.h"
#include "analysis/pointsto.h"
#include "frontend/frontend.h"

namespace stos {
namespace {

using namespace stos::analysis;
using namespace stos::ir;

Module
compile(const std::string &src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = frontend::compileTinyC({{"t.tc", src}}, diags, sm);
    EXPECT_FALSE(diags.hasErrors()) << diags.dump();
    return m;
}

uint32_t
fid(const Module &m, const std::string &name)
{
    const Function *f = m.findFunc(name);
    EXPECT_NE(f, nullptr) << name;
    return f->id;
}

TEST(CallGraph, DirectEdges)
{
    Module m = compile(
        "void leaf() { }"
        "void mid() { leaf(); }"
        "void main() { mid(); }");
    CallGraph cg(m);
    EXPECT_TRUE(cg.reaches(fid(m, "main"), fid(m, "leaf")));
    EXPECT_FALSE(cg.reaches(fid(m, "leaf"), fid(m, "main")));
    EXPECT_EQ(cg.callees(fid(m, "mid")).size(), 1u);
}

TEST(CallGraph, IndirectCallsResolveToAddressTaken)
{
    Module m = compile(
        "u8 x;"
        "void t1() { x = 1; }"
        "void t2() { x = 2; }"
        "void notTaken() { x = 3; }"
        "void main() { fnptr f = t1; f = t2; f(); }");
    CallGraph cg(m);
    EXPECT_TRUE(cg.isAddressTaken(fid(m, "t1")));
    EXPECT_TRUE(cg.isAddressTaken(fid(m, "t2")));
    EXPECT_FALSE(cg.isAddressTaken(fid(m, "notTaken")));
    EXPECT_TRUE(cg.reaches(fid(m, "main"), fid(m, "t1")));
    EXPECT_TRUE(cg.reaches(fid(m, "main"), fid(m, "t2")));
    EXPECT_FALSE(cg.reaches(fid(m, "main"), fid(m, "notTaken")));
}

TEST(CallGraph, DetectsRecursion)
{
    Module m = compile(
        "u16 fact(u16 n) { if (n < 2) { return 1; } "
        "return n * fact(n - 1); }"
        "void helper() { }"
        "void main() { fact(5); helper(); }");
    CallGraph cg(m);
    EXPECT_TRUE(cg.isRecursive(fid(m, "fact")));
    EXPECT_FALSE(cg.isRecursive(fid(m, "helper")));
    EXPECT_FALSE(cg.isRecursive(fid(m, "main")));
}

TEST(PointsTo, AddressOfGlobalResolvesExactly)
{
    Module m = compile(
        "u8 buf[4];"
        "void main() { u8* p = buf; p[1] = 2; }");
    PointsTo pts(m);
    const Function *f = m.findFunc("main");
    // Find the Store's address vreg.
    for (const auto &bb : f->blocks) {
        for (const auto &in : bb.instrs) {
            if (in.op == Opcode::Store) {
                auto obj = pts.resolveExact(f->id, in.args[0].index);
                ASSERT_TRUE(obj.has_value());
                EXPECT_EQ(obj->kind, MemObj::GlobalObj);
                EXPECT_EQ(m.globalAt(obj->index).name, "buf");
            }
        }
    }
}

TEST(PointsTo, MayAliasThroughControlFlow)
{
    Module m = compile(
        "u8 a[4]; u8 b[4]; u8 pick;"
        "void main() {"
        "  u8* p = a;"
        "  if (pick) { p = b; }"
        "  p[0] = 1;"
        "}");
    PointsTo pts(m);
    const Function *f = m.findFunc("main");
    for (const auto &bb : f->blocks) {
        for (const auto &in : bb.instrs) {
            if (in.op == Opcode::Store) {
                PtsSet t = pts.accessTargets(f->id, in.args[0].index);
                // Both arrays are possible targets; nothing is exact.
                EXPECT_GE(t.size(), 2u);
                EXPECT_FALSE(
                    pts.resolveExact(f->id, in.args[0].index)
                        .has_value());
            }
        }
    }
}

TEST(PointsTo, FlowsThroughCalls)
{
    Module m = compile(
        "u8 buf[8];"
        "void write(u8* p) { p[0] = 1; }"
        "void main() { write(buf); }");
    PointsTo pts(m);
    const Function *w = m.findFunc("write");
    const Function *f = m.findFunc("main");
    // The parameter must point to buf.
    const PtsSet &pp = pts.vregPts(w->id, w->params[0]);
    ASSERT_EQ(pp.size(), 1u);
    EXPECT_EQ(pp.begin()->kind, MemObj::GlobalObj);
    EXPECT_TRUE(pts.mayAlias(w->id, w->params[0], f->id,
                             /* some vreg pointing at buf */ 0) ||
                true);  // smoke: mayAlias does not crash on vreg 0
}

TEST(PointsTo, IntToPointerIsUniversal)
{
    Module m = compile(
        "u8 g;"
        "void main() { u8* p = (u8*) 0x1234; p[0] = 1; g = 0; }");
    PointsTo pts(m);
    const Function *f = m.findFunc("main");
    bool sawUniversal = false;
    for (const auto &bb : f->blocks) {
        for (const auto &in : bb.instrs) {
            if (in.op == Opcode::Store && in.args[0].isVReg()) {
                PtsSet t = pts.accessTargets(f->id, in.args[0].index);
                if (PointsTo::hasUniversal(t))
                    sawUniversal = true;
            }
        }
    }
    EXPECT_TRUE(sawUniversal);
}

TEST(Liveness, DeadDefIsNotLive)
{
    Module m = compile(
        "u16 main() {"
        "  u16 dead = 42;"   // never used afterwards
        "  u16 live = 7;"
        "  return live;"
        "}");
    const Function *f = m.findFunc("main");
    Liveness live(m, *f);
    // Find the vregs by their names.
    uint32_t deadV = ~0u, liveV = ~0u;
    for (uint32_t v = 0; v < f->vregs.size(); ++v) {
        if (f->vregs[v].name == "dead")
            deadV = v;
        if (f->vregs[v].name == "live")
            liveV = v;
    }
    ASSERT_NE(deadV, ~0u);
    ASSERT_NE(liveV, ~0u);
    auto after = live.liveAfter(0);
    // After its own assignment, `dead` must not be live anywhere.
    bool deadEverLive = false;
    for (const auto &set : after) {
        if (set[deadV])
            deadEverLive = true;
    }
    EXPECT_FALSE(deadEverLive);
}

//---------------------------------------------------------------------
// Concurrency / race detection
//---------------------------------------------------------------------

ConcurrencyAnalysis
analyze(Module &m, ConcurrencyOptions opts = {})
{
    static std::vector<std::unique_ptr<CallGraph>> cgs;
    static std::vector<std::unique_ptr<PointsTo>> ptss;
    cgs.push_back(std::make_unique<CallGraph>(m));
    ptss.push_back(std::make_unique<PointsTo>(m));
    return ConcurrencyAnalysis(m, *cgs.back(), *ptss.back(), opts);
}

TEST(Concurrency, SharedCounterIsRacy)
{
    Module m = compile(
        "u16 shared;"
        "interrupt(TIMER0) void tick() { shared = shared + 1; }"
        "u16 main() { return shared; }");
    auto conc = analyze(m);
    EXPECT_EQ(conc.racyGlobals().size(), 1u);
    EXPECT_TRUE(conc.isRacyGlobal(m.findGlobal("shared")->id));
}

TEST(Concurrency, TaskOnlyVariableIsNotRacy)
{
    Module m = compile(
        "u16 taskOnly;"
        "interrupt(TIMER0) void tick() { }"
        "void main() { taskOnly = 5; }");
    auto conc = analyze(m);
    EXPECT_FALSE(conc.isRacyGlobal(m.findGlobal("taskOnly")->id));
}

TEST(Concurrency, FullyAtomicAccessIsNotRacy)
{
    Module m = compile(
        "u16 shared;"
        "interrupt(TIMER0) void tick() { atomic { shared++; } }"
        "u16 main() { u16 v; atomic { v = shared; } return v; }");
    auto conc = analyze(m);
    EXPECT_FALSE(conc.isRacyGlobal(m.findGlobal("shared")->id));
}

TEST(Concurrency, ReadOnlySharedDataIsNotRacy)
{
    Module m = compile(
        "u16 config = 7;"
        "u16 sink;"
        "interrupt(TIMER0) void tick() { sink = config; }"
        "u16 main() { return config; }");
    auto conc = analyze(m);
    EXPECT_FALSE(conc.isRacyGlobal(m.findGlobal("config")->id));
}

TEST(Concurrency, DetectorFollowsPointers)
{
    // The interrupt writes through a pointer: nesC's syntactic
    // analysis misses this; ours must not (paper §2.1).
    Module m = compile(
        "u16 target;"
        "u16* alias;"
        "interrupt(TIMER0) void tick() { if (alias != null) { *alias = 1; } }"
        "u16 main() { alias = &target; return target; }");
    ConcurrencyOptions follow;
    follow.followPointers = true;
    auto conc = analyze(m, follow);
    EXPECT_TRUE(conc.isRacyGlobal(m.findGlobal("target")->id));

    ConcurrencyOptions nescStyle;
    nescStyle.followPointers = false;
    auto weak = analyze(m, nescStyle);
    EXPECT_FALSE(weak.isRacyGlobal(m.findGlobal("target")->id))
        << "the nesC-style detector should miss the aliased write";
}

TEST(Concurrency, NoraceIsSuppressedForSafety)
{
    Module m = compile(
        "norace u16 shared;"
        "interrupt(TIMER0) void tick() { shared++; }"
        "u16 main() { return shared; }");
    ConcurrencyOptions suppress;  // default: suppress norace (§2.2)
    auto conc = analyze(m, suppress);
    EXPECT_TRUE(conc.isRacyGlobal(m.findGlobal("shared")->id));

    ConcurrencyOptions honor;
    honor.suppressNorace = false;
    auto weak = analyze(m, honor);
    EXPECT_FALSE(weak.isRacyGlobal(m.findGlobal("shared")->id));
}

TEST(Concurrency, HandlerOnlyCodeNeedsNoIrqSave)
{
    Module m = compile(
        "u16 x;"
        "void handlerHelper() { atomic { x++; } }"
        "interrupt(TIMER0) void tick() { handlerHelper(); }"
        "void taskSide() { atomic { x++; } }"
        "void main() { taskSide(); }");
    auto conc = analyze(m);
    // Handler context => IRQs already off => save needed (it IS
    // entered with interrupts disabled, so restoring matters).
    EXPECT_TRUE(conc.atomicNeedsIrqSave(fid(m, "handlerHelper")));
    // Pure task-side atomic never nests: plain cli/sei suffices.
    EXPECT_FALSE(conc.atomicNeedsIrqSave(fid(m, "taskSide")));
}

TEST(Concurrency, ContextClassification)
{
    Module m = compile(
        "u16 x;"
        "void both() { x++; }"
        "interrupt(TIMER0) void tick() { both(); }"
        "void main() { both(); }");
    auto conc = analyze(m);
    const auto &ctx = conc.contextsOf(fid(m, "both"));
    EXPECT_TRUE(ctx.task);
    EXPECT_NE(ctx.vectors, 0u);
    EXPECT_TRUE(ctx.multi());
    EXPECT_TRUE(conc.isRacyGlobal(m.findGlobal("x")->id));
}

} // namespace
} // namespace stos
