/**
 * @file
 * Self-tests for the differential fuzzer: the generator must be
 * deterministic and sound (every generated program compiles and
 * passes the IR verifier), the oracles must pass on a prefix of the
 * seed space, and the ddmin minimizer must shrink a program while
 * preserving a caller-supplied failure predicate.
 */
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "fuzz/fuzz.h"
#include "ir/verifier.h"
#include "tinyos/tinyos.h"

namespace stos {
namespace {

TEST(FuzzGenerator, SameSeedIsByteIdentical)
{
    for (uint64_t seed : {1ull, 7ull, 99ull, 123456789ull}) {
        std::string a = fuzz::generateProgram(seed);
        std::string b = fuzz::generateProgram(seed);
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_FALSE(a.empty());
    }
}

TEST(FuzzGenerator, DifferentSeedsDiffer)
{
    EXPECT_NE(fuzz::generateProgram(1), fuzz::generateProgram(2));
}

TEST(FuzzGenerator, GeneratedProgramsCompileAndVerify)
{
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        std::string src = fuzz::generateProgram(seed);
        SourceManager sm;
        DiagnosticEngine diags(&sm);
        ir::Module m = frontend::compileTinyC(
            {{"lib.tc", tinyos::libSource()}, {"fuzz.tc", src}}, diags,
            sm, "fuzz");
        ASSERT_FALSE(diags.hasErrors())
            << "seed " << seed << ":\n" << diags.dump() << "\n" << src;
        auto errs = ir::verifyModule(m);
        EXPECT_TRUE(errs.empty())
            << "seed " << seed << ": " << errs.front();
    }
}

TEST(FuzzOracles, SeedPrefixHasNoDivergence)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        fuzz::Divergence d =
            fuzz::checkProgram(fuzz::generateProgram(seed));
        EXPECT_FALSE(static_cast<bool>(d))
            << "seed " << seed << " [" << d.oracle << "]: " << d.detail;
    }
}

TEST(FuzzMinimizer, ShrinksWhilePreservingPredicate)
{
    // Synthetic predicate: "compiles and still contains a modulo".
    // The minimizer must preserve it while deleting most of the
    // program — exactly how a real divergence is shrunk.
    auto compiles = [](const std::string &src) {
        SourceManager sm;
        DiagnosticEngine diags(&sm);
        frontend::compileTinyC(
            {{"lib.tc", tinyos::libSource()}, {"fuzz.tc", src}}, diags,
            sm, "fuzz");
        return !diags.hasErrors();
    };
    auto fails = [&](const std::string &src) {
        return src.find('%') != std::string::npos && compiles(src);
    };

    std::string src;
    for (uint64_t seed = 1;; ++seed) {
        ASSERT_LT(seed, 50u) << "no seeded program with a modulo";
        src = fuzz::generateProgram(seed);
        if (fails(src))
            break;
    }
    std::string min = fuzz::minimize(src, fails);
    EXPECT_TRUE(fails(min)) << min;
    EXPECT_LT(min.size(), src.size() / 2)
        << "minimizer failed to shrink:\n" << min;
}

TEST(FuzzMinimizer, ReproducesKnownSeededDivergence)
{
    // A synthetic "divergence": flag any program that both compiles
    // and calls stos_uart_put_u16 — every generated program does, via
    // the global-dump epilogue — then check 1-minimality of the
    // shrunk reproducer.
    auto fails = [](const std::string &src) {
        if (src.find("stos_uart_put_u16") == std::string::npos)
            return false;
        SourceManager sm;
        DiagnosticEngine diags(&sm);
        frontend::compileTinyC(
            {{"lib.tc", tinyos::libSource()}, {"fuzz.tc", src}}, diags,
            sm, "fuzz");
        return !diags.hasErrors();
    };
    std::string src = fuzz::generateProgram(3);
    ASSERT_TRUE(fails(src));
    std::string min = fuzz::minimize(src, fails);
    EXPECT_TRUE(fails(min));

    // 1-minimal: removing any single line breaks the predicate.
    std::vector<std::string> lines;
    std::string cur;
    for (char c : min) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    for (size_t skip = 0; skip < lines.size(); ++skip) {
        std::string cand;
        for (size_t i = 0; i < lines.size(); ++i) {
            if (i == skip)
                continue;
            cand += lines[i];
            cand += '\n';
        }
        EXPECT_FALSE(fails(cand))
            << "line " << skip << " is removable: " << lines[skip];
    }
}

} // namespace
} // namespace stos
