/**
 * @file
 * Corpus registry tests: the expanded application set behind
 * allApps() — size and composition (≥ 24 apps, the paper's twelve
 * intact behind the "paper" tag), per-family selection via
 * appsByTag(), resolvable companion lists forming the §3.4 network
 * contexts, and the appByName() unknown-name error path.
 */
#include <gtest/gtest.h>

#include <set>

#include "support/util.h"
#include "tinyos/tinyos.h"

namespace stos {
namespace {

using namespace stos::tinyos;

TEST(AppRegistry, CorpusIsAtLeastTwiceThePaperSuite)
{
    EXPECT_GE(allApps().size(), 24u)
        << "the expanded corpus must double the paper's twelve";
    EXPECT_EQ(paperApps().size(), 12u)
        << "the paper subset must stay exactly the original twelve";
}

TEST(AppRegistry, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (const auto &app : allApps()) {
        EXPECT_FALSE(app.name.empty());
        EXPECT_FALSE(app.source.empty()) << app.name;
        EXPECT_TRUE(app.platform == "Mica2" || app.platform == "TelosB")
            << app.name << ": " << app.platform;
        EXPECT_TRUE(names.insert(app.name).second)
            << "duplicate app name " << app.name;
    }
}

TEST(AppRegistry, EveryAppHasAFamily)
{
    for (const auto &app : allApps())
        EXPECT_FALSE(app.family.empty()) << app.name;
}

TEST(AppRegistry, ExpandedFamiliesArePopulated)
{
    // The scenario families that close the gaps in the paper suite
    // (multi-hop forwarding, aggregation, low duty cycle, flooding,
    // UART-heavy logging, safety-check stress).
    for (const char *family :
         {"routing", "aggregation", "lowpower", "dissemination",
          "logging", "stress"}) {
        EXPECT_GE(appsByTag(family).size(), 2u) << family;
    }
    // appsByTag matches the family field and the tag list alike.
    EXPECT_EQ(appsByTag("paper").size(), 12u);
    for (const auto &app : appsByTag("routing"))
        EXPECT_EQ(app.family, "routing") << app.name;
}

TEST(AppRegistry, CompanionsResolveAndFormMultiMoteContexts)
{
    size_t withCompanions = 0;
    for (const auto &app : allApps()) {
        for (const auto &cname : app.companions) {
            const AppInfo &comp = appByName(cname);  // throws if bad
            EXPECT_EQ(comp.name, cname);
        }
        withCompanions += app.companions.empty() ? 0 : 1;
    }
    EXPECT_GE(withCompanions, 14u)
        << "most of the corpus should simulate in a network context";
}

TEST(AppRegistry, PaperAppsKeepTheirCompanionNetworks)
{
    EXPECT_EQ(appByName("Surge").companions,
              (std::vector<std::string>{"Surge", "GenericBase"}));
    EXPECT_EQ(appByName("Ident").companions,
              (std::vector<std::string>{"CntToLedsAndRfm"}));
    EXPECT_TRUE(appByName("BlinkTask").companions.empty());
}

TEST(AppRegistry, AppByNameThrowsOnUnknownName)
{
    EXPECT_THROW(appByName("NoSuchApplication"), InternalError);
    try {
        appByName("NoSuchApplication");
        FAIL() << "expected InternalError";
    } catch (const InternalError &e) {
        EXPECT_NE(std::string(e.what()).find("NoSuchApplication"),
                  std::string::npos)
            << "the error must name the missing app";
    }
}

TEST(AppRegistry, HasTagMatchesFamilyAndTagList)
{
    AppInfo a{"x", "Mica2", "void main() { }", {}, "routing", {"paper"}};
    EXPECT_TRUE(a.hasTag("routing"));
    EXPECT_TRUE(a.hasTag("paper"));
    EXPECT_FALSE(a.hasTag("logging"));
}

} // namespace
} // namespace stos
