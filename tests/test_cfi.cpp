/**
 * @file
 * Control-flow integrity suite (src/cfi/ + the backend shadow stack).
 * Covers: label-class computation and the SafetyReport counters, the
 * CFI column family (distinct names, distinct stage fingerprints, the
 * CfiOnly isolation column), behaviour transparency on clean apps
 * (identical uart output with and without CFI, byte-identical
 * counters on both interpreter cores), IR-interpreter agreement on
 * the forward-edge check, and the attack regression suite: corrupted
 * function pointers (PtrOverwrite) and smashed return linkage
 * (RetSmash) must trap with the distinguishable CFI trap kinds under
 * every CFI column — on both cores, byte-identically — and must
 * demonstrably misbehave (wedge or silent corruption) under Baseline.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.h"
#include "ir/interp.h"
#include "ir/printer.h"
#include "sim/fault.h"
#include "sim/machine.h"
#include "sim/stats.h"
#include "support/devmap.h"
#include "tinyos/tinyos.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::sim;

constexpr uint64_t kCycles = 2'000'000;

void
expectSame(const MoteSnapshot &a, const MoteSnapshot &b,
           const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.instructions, b.instructions) << label;
    EXPECT_EQ(a.traps, b.traps) << label;
    EXPECT_EQ(a.cfiTraps, b.cfiTraps) << label;
    EXPECT_EQ(a.uartLog, b.uartLog) << label;
    EXPECT_TRUE(a == b) << label << " (full snapshot)";
}

/** Build one attack app under one column. */
BuildResult
buildAttack(const std::string &name, ConfigId cfg)
{
    const auto &app = tinyos::attackAppByName(name);
    return buildApp(app, configFor(cfg, app.platform));
}

/** Run `img` on one core with the given fault events to kCycles. */
MoteSnapshot
runWithFaults(const backend::MProgram &img, ExecMode mode,
              const std::vector<FaultEvent> &events)
{
    Machine m(img, 1, mode);
    m.boot();
    m.setFaultEvents(events);
    m.runUntilCycle(kCycles);
    return snapshotOf(m);
}

//---------------------------------------------------------------------
// Column family and pass accounting
//---------------------------------------------------------------------

TEST(CfiColumns, FamilyIsDistinctAndFingerprintedSeparately)
{
    ASSERT_EQ(cfiConfigs().size(), 3u);
    auto columnKey = [](ConfigId id) {
        PipelineConfig cfg = configFor(id, "Mica2");
        return safetyFingerprint(cfg) + "|" + optFingerprint(cfg) +
               "|" + backendFingerprint(cfg);
    };
    std::set<std::string> names, keys, safetyPrints;
    for (ConfigId id : cfiConfigs()) {
        names.insert(configName(id));
        keys.insert(columnKey(id));
        safetyPrints.insert(safetyFingerprint(configFor(id, "Mica2")));
    }
    EXPECT_EQ(names.size(), 3u);
    // The full stage key must be distinct per column (SafeFlidCfi and
    // SafeFlidInlineCxpropCfi deliberately share a safety fingerprint
    // — one safety run serves both — and diverge at the opt stage).
    EXPECT_EQ(keys.size(), 3u)
        << "every CFI column must key the StageCache separately";
    // And no CFI column collides with a non-CFI column: the cfi bit
    // is part of the safety fingerprint.
    for (ConfigId id : {ConfigId::Baseline, ConfigId::SafeFlid,
                        ConfigId::SafeFlidInlineCxprop}) {
        EXPECT_EQ(keys.count(columnKey(id)), 0u) << configName(id);
        EXPECT_EQ(safetyPrints.count(
                      safetyFingerprint(configFor(id, "Mica2"))),
                  0u)
            << configName(id);
    }
    // CfiOnly isolates the control-flow checks from the memory checks.
    EXPECT_FALSE(configFor(ConfigId::CfiOnly, "Mica2").safety
                     .memoryChecks);
    EXPECT_TRUE(configFor(ConfigId::CfiOnly, "Mica2").safety.cfi);
}

TEST(CfiPass, LabelsChecksAndReturnSitesAreReported)
{
    BuildResult b =
        buildAttack("AttackFnptrDispatch", ConfigId::SafeFlidCfi);
    const auto &rep = b.safetyReport;
    EXPECT_GE(rep.cfiClasses, 1u);
    EXPECT_GE(rep.cfiForwardChecks, 1u)
        << "the dispatch call must carry a forward-edge check";
    EXPECT_GE(rep.cfiReturnSites, 2u);
    // The ROM label table must survive into the final module.
    EXPECT_NE(ir::moduleToString(b.module).find("__cfi_labels"),
              std::string::npos);

    BuildResult plain =
        buildAttack("AttackFnptrDispatch", ConfigId::SafeFlid);
    EXPECT_EQ(plain.safetyReport.cfiClasses, 0u);
    EXPECT_EQ(plain.safetyReport.cfiForwardChecks, 0u);
    EXPECT_EQ(ir::moduleToString(plain.module).find("__cfi_labels"),
              std::string::npos);
}

TEST(CfiPass, CfiColumnsCostCodeSize)
{
    // The shadow pushes and label checks must be priced by the cost
    // model: a CFI build of the same app is strictly larger.
    BuildResult base =
        buildAttack("AttackRetChain", ConfigId::SafeFlid);
    BuildResult cfi =
        buildAttack("AttackRetChain", ConfigId::SafeFlidCfi);
    EXPECT_GT(cfi.codeBytes, base.codeBytes);
}

//---------------------------------------------------------------------
// Behaviour transparency on clean programs
//---------------------------------------------------------------------

TEST(CfiTransparency, CleanAppsRunIdenticallyUnderEveryCfiColumn)
{
    // A full-featured corpus app (timers, radio, tasks): CFI must not
    // change observable behaviour, must not trap, and both cores must
    // stay byte-identical.
    const auto &app = tinyos::appByName("CntToLedsAndRfm");
    BuildResult base =
        buildApp(app, configFor(ConfigId::Baseline, app.platform));
    Machine ref(base.image, 1, ExecMode::Predecoded);
    ref.boot();
    ref.runUntilCycle(kCycles);

    for (ConfigId id : cfiConfigs()) {
        BuildResult b = buildApp(app, configFor(id, app.platform));
        Machine legacy(b.image, 1, ExecMode::Legacy);
        Machine pre(b.image, 1, ExecMode::Predecoded);
        legacy.boot();
        pre.boot();
        legacy.runUntilCycle(kCycles);
        pre.runUntilCycle(kCycles);
        std::string label = configName(id);
        EXPECT_EQ(pre.traps(), 0u) << label;
        EXPECT_EQ(pre.cfiTraps(), 0u) << label;
        EXPECT_FALSE(pre.wedged()) << label;
        expectSame(snapshotOf(legacy), snapshotOf(pre), label);
        // Same externally visible behaviour as the unsafe baseline
        // (checks only add cycles, never change the uart stream).
        EXPECT_EQ(pre.devices().uartLog(), ref.devices().uartLog())
            << label;
    }
}

TEST(CfiTransparency, InterpreterAgreesOnForwardCheckedDispatch)
{
    // Bounded fnptr dispatch: the IR interpreter evaluates
    // chk_cfi_label with the same pass/fail semantics the machine
    // cores lower it to, so all three engines print the same stream.
    const char *kBounded = R"TC(
fnptr handler;
u16 acc;
void h1() { acc = (u16)(acc + 1); }
void h2() { acc = (u16)(acc + 7); }
u16 main() {
    u8 i = 0;
    while (i < 40) {
        if ((i & 1) == 0) { handler = h1; }
        else { handler = h2; }
        fnptr f = handler;
        f();
        stos_uart_put_u16(acc);
        i = (u8)(i + 1);
    }
    return 0;
}
)TC";
    for (ConfigId id : cfiConfigs()) {
        BuildResult b = buildSource("bounded_dispatch", kBounded,
                                    configFor(id, "Mica2"));
        std::string label = configName(id);

        ir::Module m = b.module.clone();
        ir::HwBus bus;
        ir::Interp interp(m, &bus);
        auto res = interp.run("main");
        ASSERT_EQ(res.reason, ir::StopReason::Returned)
            << label << ": " << res.detail;
        std::string interpUart;
        for (const auto &w : bus.writeLog())
            if (w.addr == dev::kRegUartData)
                interpUart.push_back(static_cast<char>(w.value));

        Machine legacy(b.image, 1, ExecMode::Legacy);
        Machine pre(b.image, 1, ExecMode::Predecoded);
        legacy.boot();
        pre.boot();
        legacy.runUntilCycle(kCycles);
        pre.runUntilCycle(kCycles);
        ASSERT_TRUE(legacy.halted()) << label;
        EXPECT_EQ(legacy.traps(), 0u) << label;
        expectSame(snapshotOf(legacy), snapshotOf(pre), label);
        EXPECT_EQ(interpUart, legacy.devices().uartLog()) << label;
        EXPECT_FALSE(interpUart.empty()) << label;
    }
}

//---------------------------------------------------------------------
// Attack suite: corrupted function pointers
//---------------------------------------------------------------------

std::vector<FaultEvent>
ptrOverwriteAt(uint64_t at, uint64_t value)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::PtrOverwrite;
    e.value = value;
    e.targetGlobal = "handler";
    return {e};
}

TEST(CfiAttack, CorruptedFnptrTrapsWithForwardKindUnderEveryCfiColumn)
{
    // 0xEE is far outside the function-id range: the label check's
    // bounds test fires. value 1 is a valid runtime id whose label
    // cannot match the dispatch class (id 1 is a runtime function,
    // never address-taken): the label comparison fires. Both must
    // trap, with kind 1, identically on both cores.
    for (ConfigId id : cfiConfigs()) {
        for (uint64_t bad : {uint64_t{0xEE}, uint64_t{1}}) {
            BuildResult b = buildAttack("AttackFnptrDispatch", id);
            auto events = ptrOverwriteAt(kCycles / 4, bad);
            MoteSnapshot legacy =
                runWithFaults(b.image, ExecMode::Legacy, events);
            MoteSnapshot pre =
                runWithFaults(b.image, ExecMode::Predecoded, events);
            std::string label = std::string(configName(id)) +
                                " / val=" + std::to_string(bad);
            EXPECT_EQ(pre.cfiTraps, 1u) << label;
            EXPECT_EQ(pre.traps, 1u) << label;
            EXPECT_TRUE(pre.wedged) << label;
            ASSERT_FALSE(pre.trapLog.empty()) << label;
            EXPECT_EQ(pre.trapLog.front().kind, 1u)
                << label << ": forward CFI traps must be kind 1";
            EXPECT_EQ(pre.failedFlid, pre.trapLog.front().flid)
                << label;
            expectSame(legacy, pre, label);
        }
    }
}

TEST(CfiAttack, CorruptedFnptrMisbehavesSilentlyUnderBaseline)
{
    BuildResult b =
        buildAttack("AttackFnptrDispatch", ConfigId::Baseline);
    MoteSnapshot clean =
        runWithFaults(b.image, ExecMode::Predecoded, {});
    MoteSnapshot attacked = runWithFaults(
        b.image, ExecMode::Predecoded, ptrOverwriteAt(kCycles / 4, 0xEE));
    // No CFI machinery: nothing traps, the mote silently wedges (or
    // corrupts) instead of failing loudly.
    EXPECT_EQ(attacked.traps, 0u);
    EXPECT_EQ(attacked.cfiTraps, 0u);
    EXPECT_TRUE(attacked.wedged || !(attacked == clean))
        << "the attack must visibly derail the baseline build";
    EXPECT_FALSE(clean.wedged);
}

//---------------------------------------------------------------------
// Attack suite: smashed return linkage
//---------------------------------------------------------------------

std::vector<FaultEvent>
retSmashes(std::initializer_list<uint64_t> ats, uint64_t value)
{
    std::vector<FaultEvent> events;
    for (uint64_t at : ats) {
        FaultEvent e;
        e.at = at;
        e.kind = FaultKind::RetSmash;
        e.value = value;
        events.push_back(e);
    }
    return events;
}

TEST(CfiAttack, SmashedReturnTrapsWithReturnKindUnderEveryCfiColumn)
{
    for (ConfigId id : cfiConfigs()) {
        BuildResult b = buildAttack("AttackRetChain", id);
        // Three smashes spread over the run: AttackRetChain sits at
        // call depth >= 2 for almost every cycle, so the first one to
        // land below a live caller frame traps at the next return.
        auto events = retSmashes(
            {kCycles / 4, kCycles / 2, 3 * kCycles / 4}, 5);
        MoteSnapshot legacy =
            runWithFaults(b.image, ExecMode::Legacy, events);
        MoteSnapshot pre =
            runWithFaults(b.image, ExecMode::Predecoded, events);
        std::string label = configName(id);
        EXPECT_GE(pre.cfiTraps, 1u) << label;
        EXPECT_TRUE(pre.wedged) << label;
        ASSERT_FALSE(pre.trapLog.empty()) << label;
        EXPECT_EQ(pre.trapLog.front().kind, 2u)
            << label << ": return CFI traps must be kind 2";
        expectSame(legacy, pre, label);
    }
}

TEST(CfiAttack, SmashedReturnMisbehavesSilentlyUnderBaseline)
{
    BuildResult b = buildAttack("AttackRetChain", ConfigId::Baseline);
    MoteSnapshot clean =
        runWithFaults(b.image, ExecMode::Predecoded, {});
    MoteSnapshot attacked = runWithFaults(
        b.image, ExecMode::Predecoded,
        retSmashes({kCycles / 4, kCycles / 2, 3 * kCycles / 4}, 5));
    EXPECT_EQ(attacked.cfiTraps, 0u);
    EXPECT_TRUE(attacked.wedged || attacked.halted ||
                !(attacked == clean))
        << "the smash must visibly derail the baseline build";
    EXPECT_FALSE(clean.wedged);
}

//---------------------------------------------------------------------
// Recovery and trap-log interaction
//---------------------------------------------------------------------

TEST(CfiAttack, CfiTrapKindSurvivesRebootOnTrap)
{
    // Under the reboot-on-trap policy a CFI trap must reboot the mote
    // like any safety trap, and the persistent bounded trap log must
    // keep the CFI kind across reboots, on both cores identically.
    BuildResult b =
        buildAttack("AttackFnptrDispatch", ConfigId::SafeFlidCfi);
    auto events = ptrOverwriteAt(kCycles / 4, 0xEE);
    auto run = [&](ExecMode mode) {
        Machine m(b.image, 1, mode);
        m.setRecoveryPolicy(RecoveryPolicy::RebootOnTrap);
        m.boot();
        m.setFaultEvents(events);
        m.runUntilCycle(kCycles);
        return snapshotOf(m);
    };
    MoteSnapshot legacy = run(ExecMode::Legacy);
    MoteSnapshot pre = run(ExecMode::Predecoded);
    EXPECT_FALSE(pre.wedged);
    EXPECT_EQ(pre.cfiTraps, 1u)
        << "reboot clears the corrupted cell; exactly one trap";
    EXPECT_EQ(pre.reboots, 1u);
    ASSERT_FALSE(pre.trapLog.empty());
    EXPECT_EQ(pre.trapLog.front().kind, 1u);
    expectSame(legacy, pre, "reboot-on-cfi-trap");
}

} // namespace
} // namespace stos
