/**
 * @file
 * Experiment facade tests: combined report shape, equivalence of the
 * combined run() with the explicit buildMatrix + simulateBuilds
 * two-step (cell-for-cell, joined emission included), build-only
 * mode, the serial-reference gate, and companion firmware aliasing
 * the matrix's Baseline column through the shared StageCache.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "support/util.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::tinyos;

constexpr double kSimSeconds = 0.05;

ExperimentOptions
fastOptions(bool simulate = true)
{
    ExperimentOptions o;
    o.seconds = kSimSeconds;
    o.simulate = simulate;
    return o;
}

/** Drop the two wall-time columns (nondeterministic) of a joined
 *  CSV so emissions from different runs compare equal. */
std::string
stripCsvTimings(const std::string &s)
{
    std::istringstream in(s);
    std::string line, out;
    while (std::getline(in, line)) {
        size_t p1 = line.find_last_of(',');
        size_t p2 = line.find_last_of(',', p1 - 1);
        out += line.substr(0, p2) + "\n";
    }
    return out;
}

/** Ditto for the joined JSON's build_millis/sim_millis fields. */
std::string
stripJsonTimings(const std::string &s)
{
    std::istringstream in(s);
    std::string line, out;
    while (std::getline(in, line)) {
        size_t j = line.find(", \"build_millis\":");
        if (j != std::string::npos) {
            size_t end = line.find_last_of('}');
            line = line.substr(0, j) + line.substr(end);
        }
        out += line + "\n";
    }
    return out;
}

/** Rows with and without companions, columns that change the image. */
Experiment
smallExperiment(ExperimentOptions opts)
{
    Experiment exp(opts);
    exp.addApp(appByName("BlinkTask"));   // no companions
    exp.addApp(appByName("Ident"));       // companion: CntToLedsAndRfm
    exp.addConfig(ConfigId::Baseline);
    exp.addConfig(ConfigId::SafeFlid);
    return exp;
}

TEST(Experiment, RowSelectorsMirrorTheRegistry)
{
    // The corpus selectors the facade exposes (paper subset, family
    // tag, whole registry) must declare exactly what the registry
    // reports — benches select rows through these.
    Experiment paper{ExperimentOptions{}};
    paper.addPaperApps();
    EXPECT_EQ(paper.numApps(), tinyos::paperApps().size());

    Experiment routing{ExperimentOptions{}};
    routing.addAppsByTag("routing");
    EXPECT_EQ(routing.numApps(), tinyos::appsByTag("routing").size());
    EXPECT_GE(routing.numApps(), 3u);  // Surge + the relay family

    Experiment full{ExperimentOptions{}};
    full.addAllApps();
    EXPECT_EQ(full.numApps(), tinyos::allApps().size());
    EXPECT_GE(full.numApps(), 24u);
}

TEST(Experiment, CombinedReportCoversBuildAndSimPhases)
{
    Experiment exp = smallExperiment(fastOptions());
    ExperimentReport rep = exp.run();
    ASSERT_TRUE(rep.simulated);
    ASSERT_TRUE(rep.allOk()) << rep.summary();
    EXPECT_EQ(rep.builds.numApps, 2u);
    EXPECT_EQ(rep.builds.numConfigs, 2u);
    EXPECT_EQ(rep.sims.records.size(), rep.builds.records.size());
    for (size_t i = 0; i < rep.builds.records.size(); ++i) {
        EXPECT_EQ(rep.builds.records[i].app, rep.sims.records[i].app);
        EXPECT_EQ(rep.builds.records[i].config,
                  rep.sims.records[i].config);
    }
    EXPECT_NE(rep.summary().find("build:"), std::string::npos);
    EXPECT_NE(rep.summary().find("sim:"), std::string::npos);
}

TEST(Experiment, MatchesTheExplicitTwoStepCellForCell)
{
    // The combined run() must reproduce what the explicit two-step —
    // buildMatrix over a caller cache, then simulateBuilds over the
    // same cache — produces, cell-for-cell, including the joined
    // CSV/JSON emission the benches used to assemble by hand.
    StageCache cache;
    Experiment twoStep = smallExperiment(fastOptions());
    BuildReport builds = twoStep.buildMatrix(cache);
    ASSERT_TRUE(builds.allOk());
    SimReport sims = twoStep.simulateBuilds(builds, cache);
    ASSERT_TRUE(sims.allOk());

    Experiment exp = smallExperiment(fastOptions());
    ExperimentReport rep = exp.run();
    ASSERT_TRUE(rep.allOk());

    ASSERT_EQ(builds.records.size(), rep.builds.records.size());
    for (size_t i = 0; i < builds.records.size(); ++i) {
        std::string why;
        EXPECT_TRUE(BuildDriver::recordsEquivalent(
            builds.records[i], rep.builds.records[i], &why))
            << why;
    }
    std::string why;
    EXPECT_TRUE(SimDriver::reportsEquivalent(sims, rep.sims, &why))
        << why;

    std::ostringstream fromFacade, fromDrivers;
    rep.emitJoinedCsv(fromFacade);
    sims.joinCsv(builds, fromDrivers);
    EXPECT_EQ(stripCsvTimings(fromFacade.str()),
              stripCsvTimings(fromDrivers.str()));

    std::ostringstream jsonFacade, jsonDrivers;
    rep.emitJoinedJson(jsonFacade);
    sims.joinJson(builds, jsonDrivers);
    EXPECT_EQ(stripJsonTimings(jsonFacade.str()),
              stripJsonTimings(jsonDrivers.str()));
}

TEST(Experiment, BuildOnlyModeSkipsTheSimPhase)
{
    Experiment exp = smallExperiment(fastOptions(/*simulate=*/false));
    ExperimentReport rep = exp.run();
    EXPECT_FALSE(rep.simulated);
    EXPECT_TRUE(rep.allOk());
    EXPECT_EQ(rep.sims.records.size(), 0u);

    std::ostringstream os;
    rep.emitJson(os);
    EXPECT_NE(os.str().find("\"kind\": \"build_report\""),
              std::string::npos);
    std::ostringstream joined;
    EXPECT_THROW(rep.emitJoinedCsv(joined), FatalError);
    EXPECT_THROW(rep.emitJoinedJson(joined), FatalError);
}

TEST(Experiment, SerialReferenceGateHolds)
{
    Experiment exp = smallExperiment(fastOptions());
    ExperimentReport rep = exp.run();
    ASSERT_TRUE(rep.allOk());
    std::string why;
    EXPECT_TRUE(exp.verifySerialEquivalence(rep, &why)) << why;
}

TEST(Experiment, ReportsEquivalentDetectsDivergence)
{
    Experiment exp = smallExperiment(fastOptions());
    ExperimentReport a = exp.run();

    Experiment other(fastOptions());
    other.addApp(appByName("BlinkTask"));
    other.addConfig(ConfigId::Baseline);
    ExperimentReport b = other.run();

    std::string why;
    EXPECT_FALSE(Experiment::reportsEquivalent(a, b, &why));
    EXPECT_FALSE(why.empty());
}

TEST(Experiment, CompanionFirmwareAliasesTheMatrixBaselineColumn)
{
    // Ident's context companion (CntToLedsAndRfm) is itself a matrix
    // row with a Baseline column: the sim phase must reuse that cell
    // through the shared cache instead of compiling a bespoke
    // companion image.
    StageCache cache;
    Experiment exp(fastOptions());
    exp.addApp(appByName("Ident"));
    exp.addApp(appByName("CntToLedsAndRfm"));
    exp.addConfig(ConfigId::Baseline);
    ExperimentReport rep = exp.run(cache);
    ASSERT_TRUE(rep.allOk()) << rep.summary();

    EXPECT_EQ(cache.stats().backend.executed, 2u)
        << "companion must not trigger a third backend run";
    EXPECT_EQ(rep.sims.companionBuilds, 1u)
        << "one companion entry materialized (aliasing the matrix)";
}

TEST(Experiment, PersistentCacheMakesRepeatRunsFree)
{
    StageCache cache;
    Experiment exp = smallExperiment(fastOptions());
    ExperimentReport first = exp.run(cache);
    ASSERT_TRUE(first.allOk());
    ExperimentReport second = exp.run(cache);
    ASSERT_TRUE(second.allOk());
    EXPECT_EQ(second.builds.backendRuns, 0u);
    EXPECT_EQ(second.sims.companionBuilds, 0u);
    std::string why;
    EXPECT_TRUE(Experiment::reportsEquivalent(first, second, &why))
        << why;
}

TEST(Experiment, StageSharingIsObservableInTheCombinedRun)
{
    // One app across C4/C5/C6: exactly one safety run, three cells.
    Experiment exp(fastOptions());
    exp.addApp(appByName("BlinkTask"));
    exp.addConfigs({ConfigId::SafeFlid, ConfigId::SafeFlidCxprop,
                    ConfigId::SafeFlidInlineCxprop});
    ExperimentReport rep = exp.run();
    ASSERT_TRUE(rep.allOk());
    EXPECT_EQ(rep.builds.safetyRuns, 1u);
    EXPECT_EQ(rep.builds.safetyReuses, 2u);
    EXPECT_EQ(rep.builds.frontendParses, 1u);
}

} // namespace
} // namespace stos
