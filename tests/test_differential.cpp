/**
 * @file
 * Differential testing between the two executors: the IR reference
 * interpreter and the machine simulator must agree on observable
 * behaviour (UART output, final global values) for compute kernels,
 * across unsafe, safe, and safe+optimized builds. This cross-checks
 * lowering, instruction selection, the cost model's semantics, and
 * every optimization pass in one sweep.
 */
#include <gtest/gtest.h>

#include "backend/backend.h"
#include "core/experiment.h"
#include "frontend/frontend.h"
#include "ir/interp.h"
#include "opt/cxprop.h"
#include "safety/ccured.h"
#include "sim/machine.h"
#include "support/devmap.h"
#include "tinyos/tinyos.h"

namespace stos {
namespace {

using namespace stos::ir;

struct Kernel {
    const char *name;
    const char *src;
};

const Kernel kKernels[] = {
    {"checksum",
     R"TC(
u8 data[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
u16 main() {
    u16 sum = 0;
    u8 i = 0;
    while (i < 16) {
        sum = (u16)((sum << 1) ^ data[i]);
        i = (u8)(i + 1);
    }
    stos_uart_put_u16(sum);
    return sum;
}
)TC"},
    {"sort",
     R"TC(
u8 v[8] = {7, 2, 9, 4, 1, 8, 3, 6};
u16 main() {
    u8 i = 0;
    while (i < 8) {
        u8 j = 0;
        while (j < 7) {
            if (v[j] > v[(u8)(j + 1)]) {
                u8 t = v[j];
                v[j] = v[(u8)(j + 1)];
                v[(u8)(j + 1)] = t;
            }
            j = (u8)(j + 1);
        }
        i = (u8)(i + 1);
    }
    i = 0;
    while (i < 8) { stos_uart_put((u8)(48 + v[i])); i = (u8)(i + 1); }
    return v[0] + v[7] * 10;
}
)TC"},
    {"struct_queue",
     R"TC(
struct Item { u8 key; u16 weight; };
struct Item ring[4];
u8 head; u8 count;
void push(u8 k, u16 w) {
    if (count < 4) {
        struct Item it;
        it.key = k;
        it.weight = w;
        ring[(u8)((head + count) & 3)] = it;
        count = (u8)(count + 1);
    }
}
u16 pop() {
    if (count == 0) { return 0; }
    u16 w = ring[head].weight;
    head = (u8)((head + 1) & 3);
    count = (u8)(count - 1);
    return w;
}
u16 main() {
    push(1, 100); push(2, 250); push(3, 60);
    u16 a = pop();
    push(4, 9);
    u16 total = 0;
    while (count > 0) { total = total + pop(); }
    stos_uart_put_u16(total);
    return (u16)(a + total);
}
)TC"},
    {"string_scan",
     R"TC(
u8 text[20] = "the fat cat sat";
u16 main() {
    u8* p = text;
    u16 vowels = 0;
    u16 n = 0;
    while (p[n] != 0) {
        u8 c = p[n];
        if (c == 97 || c == 101 || c == 105 || c == 111 || c == 117) {
            vowels = vowels + 1;
        }
        n = n + 1;
    }
    stos_uart_put_u16(vowels);
    stos_uart_put(124);
    stos_uart_put_u16(n);
    return (u16)(vowels * 100 + n);
}
)TC"},
    {"fnptr_dispatch",
     R"TC(
u16 acc;
void addTwo() { acc = acc + 2; }
void triple() { acc = acc * 3; }
fnptr table[4];
u16 main() {
    table[0] = addTwo;
    table[1] = triple;
    table[2] = addTwo;
    table[3] = triple;
    acc = 1;
    u8 i = 0;
    while (i < 4) {
        fnptr f = table[i];
        if (f != null) { f(); }
        i = (u8)(i + 1);
    }
    stos_uart_put_u16(acc);
    return acc;
}
)TC"},
    {"pointer_walk",
     R"TC(
u16 grid[12];
u16 main() {
    u16* p = grid;
    u8 i = 0;
    while (i < 12) { p[i] = (u16)(i * i); i = (u8)(i + 1); }
    u16* q = grid + 11;
    u16 back = 0;
    while (q >= grid) {
        back = back + *q;
        if (q == grid) { break; }
        q = q - 1;
    }
    stos_uart_put_u16(back);
    return back;
}
)TC"},
};

enum class BuildMode { Unsafe, Safe, SafeOptimized };

const char *
modeName(BuildMode m)
{
    switch (m) {
      case BuildMode::Unsafe: return "unsafe";
      case BuildMode::Safe: return "safe";
      case BuildMode::SafeOptimized: return "safe_opt";
    }
    return "?";
}

struct Outcome {
    uint64_t ret = 0;
    std::string uart;
};

/** Run under the IR reference interpreter. */
Outcome
runInterp(Module &m)
{
    HwBus bus;
    Interp interp(m, &bus);
    auto r = interp.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned) << r.detail;
    Outcome o;
    o.ret = r.retVal.i;
    for (const auto &w : bus.writeLog()) {
        if (w.addr == dev::kRegUartData)
            o.uart.push_back(static_cast<char>(w.value));
    }
    return o;
}

/** Run a pre-compiled firmware image on the machine simulator. */
Outcome
runImage(const backend::MProgram &img)
{
    sim::Machine mote(img, 1);
    mote.boot();
    mote.runUntilCycle(50'000'000);
    EXPECT_TRUE(mote.halted()) << "kernel must run to completion";
    EXPECT_FALSE(mote.wedged());
    Outcome o;
    o.uart = mote.devices().uartLog();
    return o;
}

/** Compile the module for Mica2 and run it on the simulator. */
Outcome
runMachine(Module &m)
{
    return runImage(
        backend::compileToTarget(m, backend::TargetInfo::mica2()));
}

class Differential
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Differential, InterpreterAndMachineAgree)
{
    const Kernel &k = kKernels[std::get<0>(GetParam())];
    BuildMode mode = static_cast<BuildMode>(std::get<1>(GetParam()));

    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = frontend::compileTinyC(
        {{"lib.tc", tinyos::libSource()}, {"k.tc", k.src}}, diags, sm);
    ASSERT_FALSE(diags.hasErrors()) << diags.dump();

    if (mode != BuildMode::Unsafe) {
        safety::SafetyConfig scfg;
        safety::applySafety(m, scfg, &sm);
    }
    if (mode == BuildMode::SafeOptimized) {
        opt::CxpropOptions copts;
        copts.inlineFirst = true;
        opt::runCxprop(m, copts);
    }

    // Interpreter and machine must emit identical UART streams;
    // and every mode must match the unsafe interpreter's result.
    Module forInterp = m.clone();
    Outcome iOut = runInterp(forInterp);
    Outcome mOut = runMachine(m);
    EXPECT_EQ(iOut.uart, mOut.uart)
        << k.name << " under " << modeName(mode);

    // Cross-mode reference: recompile unsafe and compare.
    SourceManager sm2;
    DiagnosticEngine d2(&sm2);
    Module ref = frontend::compileTinyC(
        {{"lib.tc", tinyos::libSource()}, {"k.tc", k.src}}, d2, sm2);
    Outcome refOut = runInterp(ref);
    EXPECT_EQ(iOut.ret, refOut.ret)
        << k.name << " result changed under " << modeName(mode);
    EXPECT_EQ(iOut.uart, refOut.uart);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, Differential,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &info) {
        return std::string(kKernels[std::get<0>(info.param)].name) +
               "_" +
               modeName(static_cast<BuildMode>(std::get<1>(info.param)));
    });

/**
 * Every kernel under every Figure-3 configuration, batch-compiled by
 * the Experiment facade: the interpreter run of the final IR and the
 * machine run of the linked image must emit identical UART streams,
 * and every configuration must match the unsafe baseline's output.
 * This widens the three hand-picked modes above to the full
 * evaluation matrix.
 */
TEST(DifferentialMatrix, AllFigure3ConfigsAgree)
{
    using namespace stos::core;

    Experiment exp;
    exp.options().simulate = false;
    for (const Kernel &k : kKernels)
        exp.addApp({k.name, "Mica2", k.src, {}, "kernel", {}});
    exp.addConfig(ConfigId::Baseline);
    exp.addConfigs(figure3Configs());
    BuildReport rep = exp.run().builds;
    ASSERT_TRUE(rep.allOk());
    ASSERT_EQ(rep.records.size(),
              std::size(kKernels) * (1 + figure3Configs().size()));

    for (size_t a = 0; a < rep.numApps; ++a) {
        // Column 0 (the unsafe baseline) doubles as the cross-config
        // reference output.
        Outcome ref;
        for (size_t c = 0; c < rep.numConfigs; ++c) {
            const BuildRecord &rec = rep.at(a, c);
            Module m = rec.result->module.clone();
            Outcome iOut = runInterp(m);
            Outcome mOut = runImage(rec.result->image);
            EXPECT_EQ(iOut.uart, mOut.uart)
                << rec.app << " under " << rec.config
                << ": interpreter vs machine";
            if (c == 0) {
                ref = iOut;
                continue;
            }
            EXPECT_EQ(iOut.uart, ref.uart)
                << rec.app << " under " << rec.config
                << ": output changed vs unsafe baseline";
            EXPECT_EQ(iOut.ret, ref.ret)
                << rec.app << " under " << rec.config
                << ": result changed vs unsafe baseline";
        }
    }
}

} // namespace
} // namespace stos
