/**
 * @file
 * Golden-file tests for the IR printer: two small example apps are
 * compiled by the frontend and their printed module text must match
 * the checked-in fixtures under tests/golden/. Any intentional change
 * to the frontend lowering or the printer format is re-blessed by
 * rerunning with STOS_UPDATE_GOLDEN=1 and reviewing the fixture diff.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "frontend/frontend.h"
#include "ir/printer.h"

#ifndef STOS_GOLDEN_DIR
#define STOS_GOLDEN_DIR "tests/golden"
#endif

namespace stos {
namespace {

using namespace stos::ir;

/**
 * Example app 1: an interrupt-driven counter — interrupt handlers,
 * atomic sections, globals, and arithmetic lowering.
 */
const char *kCounterApp = R"TC(
u16 count;
u8 overflowed;

void bump() {
    atomic {
        count = (u16)(count + 1);
        if (count == 0) { overflowed = 1; }
    }
}

interrupt(TIMER0) void on_tick() {
    bump();
}

u16 main() {
    count = 0;
    overflowed = 0;
    u8 i = 0;
    while (i < 10) {
        bump();
        i = (u8)(i + 1);
    }
    return count;
}
)TC";

/**
 * Example app 2: pointers, arrays, structs and function pointers —
 * the lowering paths the safety stage instruments.
 */
const char *kFilterApp = R"TC(
struct Sample { u16 value; u8 flags; };
struct Sample window[4];
u8 head;
fnptr handler;

void record(u16 v) {
    struct Sample s;
    s.value = v;
    s.flags = 1;
    window[(u8)(head & 3)] = s;
    head = (u8)(head + 1);
}

u16 smooth() {
    u16 acc = 0;
    u8 i = 0;
    while (i < 4) {
        acc = (u16)(acc + window[i].value);
        i = (u8)(i + 1);
    }
    return (u16)(acc >> 2);
}

void on_ready() { record(smooth()); }

u16 main() {
    handler = on_ready;
    record(100);
    record(300);
    if (handler != null) { handler(); }
    return smooth();
}
)TC";

std::string
printApp(const std::string &name, const char *src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = frontend::compileTinyC({{name + ".tc", src}}, diags, sm,
                                      name);
    EXPECT_FALSE(diags.hasErrors()) << diags.dump();
    return moduleToString(m);
}

std::string
goldenPath(const std::string &name)
{
    return std::string(STOS_GOLDEN_DIR) + "/" + name + ".golden";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
checkGolden(const std::string &name, const char *src)
{
    std::string printed = printApp(name, src);
    ASSERT_FALSE(printed.empty());
    std::string path = goldenPath(name);

    if (std::getenv("STOS_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << printed;
        GTEST_SKIP() << "fixture " << path << " regenerated";
    }

    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing fixture " << path
        << " (regenerate with STOS_UPDATE_GOLDEN=1)";
    if (printed != expected) {
        // Locate the first differing line for a readable failure.
        std::istringstream got(printed), want(expected);
        std::string gline, wline;
        size_t lineNo = 0;
        while (true) {
            ++lineNo;
            bool g = static_cast<bool>(std::getline(got, gline));
            bool w = static_cast<bool>(std::getline(want, wline));
            if (!g && !w)
                break;
            if (gline != wline || g != w) {
                FAIL() << name << ".golden line " << lineNo
                       << ":\n  expected: "
                       << (w ? wline : std::string("<eof>"))
                       << "\n  got:      "
                       << (g ? gline : std::string("<eof>"))
                       << "\n(bless with STOS_UPDATE_GOLDEN=1 after "
                          "review)";
            }
        }
        FAIL() << "printed text differs from " << path;
    }
}

TEST(GoldenPrinter, CounterApp)
{
    checkGolden("counter", kCounterApp);
}

TEST(GoldenPrinter, FilterApp)
{
    checkGolden("sample_filter", kFilterApp);
}

/** The printer must be a pure function of the module. */
TEST(GoldenPrinter, PrintingIsDeterministic)
{
    EXPECT_EQ(printApp("counter", kCounterApp),
              printApp("counter", kCounterApp));
    EXPECT_EQ(printApp("sample_filter", kFilterApp),
              printApp("sample_filter", kFilterApp));
}

} // namespace
} // namespace stos
