/**
 * @file
 * Simulator tests: machine execution, device models, interrupt
 * dispatch, sleep/duty accounting, and the multi-mote radio network.
 */
#include <gtest/gtest.h>

#include "backend/backend.h"
#include "core/pipeline.h"
#include "frontend/frontend.h"
#include "sim/machine.h"
#include "sim/stats.h"
#include "support/devmap.h"

namespace stos {
namespace {

using namespace stos::ir;
using namespace stos::backend;
using namespace stos::sim;

MProgram
buildProgram(const std::string &src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = frontend::compileTinyC(
        {{"lib.tc", tinyos::libSource()}, {"t.tc", src}}, diags, sm);
    EXPECT_FALSE(diags.hasErrors()) << diags.dump();
    return compileToTarget(m, TargetInfo::mica2());
}

TEST(Machine, ComputesArithmetic)
{
    MProgram p = buildProgram(
        "u16 result;"
        "void main() {"
        "  u16 s = 0;"
        "  for (u16 i = 1; i <= 10; i++) { s += i; }"
        "  result = s;"
        "  stos_uart_put_u16(result);"
        "}");
    Machine m(p, 1);
    m.boot();
    m.runUntilCycle(1'000'000);
    EXPECT_TRUE(m.halted());
    EXPECT_EQ(m.readGlobal("result", 2), 55u);
    EXPECT_EQ(m.devices().uartLog(), "55");
}

TEST(Machine, TimerInterruptFiresPeriodically)
{
    MProgram p = buildProgram(
        "u16 ticks;"
        "interrupt(TIMER0) void t() { ticks = ticks + 1; }"
        "void main() { stos_timer0_start(100); stos_run_scheduler(); }");
    Machine m(p, 1);
    m.boot();
    // Period 100 * 256 cycles = 25600 cycles per tick.
    m.runUntilCycle(256'000);
    uint64_t ticks = m.readGlobal("ticks", 2);
    EXPECT_GE(ticks, 8u);
    EXPECT_LE(ticks, 11u);
}

TEST(Machine, SleepAccountsDutyCycle)
{
    MProgram p = buildProgram(
        "interrupt(TIMER0) void t() { }"
        "void main() { stos_timer0_start(4096); stos_run_scheduler(); }");
    Machine m(p, 1);
    m.boot();
    m.runUntilCycle(7'372'800);
    EXPECT_LT(m.dutyCycle(), 0.05) << "idle app must sleep >95%";
    EXPECT_GT(m.dutyCycle(), 0.0);
}

TEST(Machine, AdcProducesDeterministicReadings)
{
    MProgram p = buildProgram(
        "u16 reading;"
        "interrupt(ADC) void done() { reading = stos_adc_data(); }"
        "interrupt(TIMER0) void t() { stos_adc_start(0); }"
        "void main() { stos_timer0_start(64); stos_run_scheduler(); }");
    Machine m(p, 1);
    m.boot();
    m.runUntilCycle(2'000'000);
    EXPECT_GT(m.devices().adcConversions(), 10u);
    uint64_t r = m.readGlobal("reading", 2);
    EXPECT_GT(r, 0u);
    EXPECT_LT(r, 1024u);
}

TEST(Machine, UartCapturesOutput)
{
    MProgram p = buildProgram(
        "void main() { stos_uart_puts(\"hello mote\"); }");
    Machine m(p, 1);
    m.boot();
    m.runUntilCycle(100'000);
    EXPECT_EQ(m.devices().uartLog(), "hello mote");
}

TEST(Machine, WedgesInFailureHandler)
{
    MProgram p = buildProgram(
        "void main() { while (true) { } }");
    Machine m(p, 1);
    m.boot();
    m.runUntilCycle(100'000);
    // An empty busy loop collapses to a self-jump: detected as wedged,
    // time accounted as awake.
    EXPECT_TRUE(m.wedged() || !m.halted());
    EXPECT_GT(m.dutyCycle(), 0.9);
}

TEST(Machine, AdaptiveHorizonBatchesBusyWaitPolling)
{
    // A busy-wait polling loop: every iteration reads a device
    // register (In), but nothing ever changes the device schedule.
    // The predecoded core conservatively re-aims its event horizon
    // after every In; the threaded core re-aims only when the hub's
    // schedule version moved, so the whole loop batches under one
    // horizon. The observable run must be identical either way — the
    // consultation count is the only permitted difference.
    MProgram p = buildProgram(
        "u16 sink;"
        "void main() {"
        "  u16 i = 0;"
        "  while (i < 5000) { sink = stos_adc_data(); i = i + 1; }"
        "  stos_uart_put_u16(sink);"
        "}");
    Machine pre(p, 1, ExecMode::Predecoded);
    Machine thr(p, 1, ExecMode::Threaded);
    pre.boot();
    thr.boot();
    pre.runUntilCycle(10'000'000);
    thr.runUntilCycle(10'000'000);
    EXPECT_TRUE(pre.halted());
    EXPECT_EQ(snapshotOf(pre), snapshotOf(thr));
    // 5000 polls: the predecoded core consults the hub at least once
    // per In, the threaded core only at horizon boundaries.
    EXPECT_LT(thr.devices().hubConsultations(),
              pre.devices().hubConsultations());
    EXPECT_GT(pre.devices().hubConsultations(), 5000u);
    EXPECT_LT(thr.devices().hubConsultations(), 100u);
}

TEST(Network, BroadcastReachesAllMotes)
{
    MProgram sender = buildProgram(
        "u8 msg[2];"
        "task void send() { msg[0] = 42; stos_radio_send(255, msg, 1); }"
        "interrupt(TIMER0) void t() { post send; }"
        "void main() { stos_timer0_start(2048); stos_run_scheduler(); }");
    MProgram receiver = buildProgram(
        "u8 buf[4]; u16 got;"
        "interrupt(RADIO_RX) void rx() {"
        "  u8 n = stos_radio_recv(buf, 4);"
        "  if (n > 0 && buf[0] == 42) { got = got + 1; }"
        "}"
        "void main() { stos_radio_enable_rx(); stos_run_scheduler(); }");
    Network net;
    net.addMote(sender, 1);
    net.addMote(receiver, 2);
    net.addMote(receiver, 3);
    net.run(8'000'000);
    EXPECT_GT(net.mote(0).devices().packetsSent(), 5u);
    EXPECT_GT(net.mote(1).readGlobal("got", 2), 3u);
    EXPECT_GT(net.mote(2).readGlobal("got", 2), 3u);
}

TEST(Network, UnicastFiltersByDestination)
{
    MProgram sender = buildProgram(
        "u8 msg[2];"
        "task void send() { msg[0] = 7; stos_radio_send(2, msg, 1); }"
        "interrupt(TIMER0) void t() { post send; }"
        "void main() { stos_timer0_start(2048); stos_run_scheduler(); }");
    MProgram receiver = buildProgram(
        "u8 buf[4]; u16 got;"
        "interrupt(RADIO_RX) void rx() {"
        "  if (stos_radio_recv(buf, 4) > 0) { got = got + 1; }"
        "}"
        "void main() { stos_radio_enable_rx(); stos_run_scheduler(); }");
    Network net;
    net.addMote(sender, 1);
    net.addMote(receiver, 2);  // addressed
    net.addMote(receiver, 3);  // bystander
    net.run(8'000'000);
    EXPECT_GT(net.mote(1).readGlobal("got", 2), 0u);
    EXPECT_EQ(net.mote(2).readGlobal("got", 2), 0u);
}

TEST(Network, RadioTransmissionTakesTime)
{
    MProgram sender = buildProgram(
        "u8 msg[8];"
        "u16 txdone;"
        "interrupt(RADIO_TX) void tx() { txdone = txdone + 1; }"
        "task void send() { stos_radio_send(255, msg, 8); }"
        "interrupt(TIMER0) void t() { post send; }"
        "void main() { stos_timer0_start(4096); stos_run_scheduler(); }");
    Network net;
    net.addMote(sender, 1);
    net.run(3'000'000);
    // 8 bytes * 3000 cycles = 24000 cycles airtime per packet; with a
    // ~1M-cycle timer period only a couple of packets fit.
    uint64_t done = net.mote(0).readGlobal("txdone", 2);
    EXPECT_GT(done, 0u);
    EXPECT_LT(done, 10u);
}

TEST(Machine, InterruptsRespectAtomicSections)
{
    MProgram p = buildProgram(
        "u16 ticks; u16 snapA; u16 snapB; u16 pad;"
        "interrupt(TIMER0) void t() { ticks = ticks + 1; }"
        "void main() {"
        "  stos_timer0_start(4);"      // very fast: 1024 cycles
        "  u16 k = 0;"
        "  while (k < 50) {"
        "    atomic {"
        "      snapA = ticks;"
        "      u16 j = 0;"
        "      while (j < 100) { pad += j; j++; }"
        "      snapB = ticks;"
        "    }"
        "    if (snapA != snapB) { pad = 9999; k = 50; }"
        "    k++;"
        "  }"
        "}");
    Machine m(p, 1);
    m.boot();
    m.runUntilCycle(4'000'000);
    EXPECT_NE(m.readGlobal("pad", 2), 9999u)
        << "an interrupt fired inside an atomic section";
    EXPECT_GT(m.readGlobal("ticks", 2), 0u)
        << "interrupts must still fire outside atomics";
}

TEST(Network, RunClampsFinalQuantumToRequestedCycles)
{
    // An idle app sleeps between timer ticks, so after run(n) the
    // mote's clock must sit exactly at n — not rounded up to the next
    // scheduling quantum (the pre-fix behaviour inflated every
    // duty-cycle measurement whose duration was not a multiple of
    // Network::kQuantum).
    MProgram p = buildProgram(
        "interrupt(TIMER0) void t() { }"
        "void main() { stos_timer0_start(4096); stos_run_scheduler(); }");
    Network net;
    net.addMote(p, 1);
    uint64_t n = 100'000;  // 100000 % 256 = 160
    ASSERT_NE(n % Network::kQuantum, 0u);
    net.run(n);
    EXPECT_EQ(net.mote(0).cycles(), n);
    // Consecutive runs continue from the current clock and clamp too.
    net.run(100);
    EXPECT_EQ(net.mote(0).cycles(), n + 100);
}

TEST(Pipeline2, DutyCycleOrderingAcrossConfigs)
{
    // Safe-unoptimized must not be faster than safe-optimized.
    using namespace stos::core;
    const auto &app = tinyos::appByName("Oscilloscope");
    BuildResult safePlain =
        buildApp(app, configFor(ConfigId::SafeFlid, app.platform));
    BuildResult safeOpt = buildApp(
        app, configFor(ConfigId::SafeFlidInlineCxprop, app.platform));
    double dPlain = measureDutyCycle(app, safePlain.image, 0.5);
    double dOpt = measureDutyCycle(app, safeOpt.image, 0.5);
    EXPECT_LE(dOpt, dPlain * 1.05);
}

} // namespace
} // namespace stos
