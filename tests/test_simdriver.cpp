/**
 * @file
 * SimDriver tests: StageCache companion-entry memoization (each
 * companion built exactly once per platform, concurrent lookups
 * race-free, persistent across driver runs), parallel-vs-serial
 * SimReport equivalence across every Figure-3 configuration, matrix
 * shape/ordering, failure isolation, and the CSV/JSON report
 * emitters. (Ported from the removed CompanionCache shim's coverage.)
 *
 * SimDriver and BuildDriver are deprecated compatibility shims over
 * the Experiment facade; this file deliberately keeps exercising the
 * deprecated entry points so the shims' forwarding stays covered
 * until they are removed. New code should target core/experiment.h.
 */
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/simdriver.h"
#include "support/util.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::tinyos;

constexpr double kSimSeconds = 0.1;

/** Rows with and without companions, columns that change the image. */
BuildReport
smallBuilds(unsigned jobs = 0)
{
    DriverOptions opts;
    opts.jobs = jobs;
    BuildDriver d(opts);
    d.addApp(appByName("BlinkTask"));     // no companions
    d.addApp(appByName("Ident"));         // companion: CntToLedsAndRfm
    d.addApp(appByName("Surge"));         // companions: Surge, GenericBase
    d.addConfig(ConfigId::Baseline);
    d.addConfig(ConfigId::SafeFlid);
    return d.run();
}

TEST(StageCacheCompanions, BuildsEachKeyExactlyOnceUnderContention)
{
    StageCache cache;
    constexpr unsigned kThreads = 8;
    std::vector<std::shared_ptr<const backend::MProgram>> images(
        kThreads);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&cache, &images, t] {
            images[t] =
                cache.companionImage("CntToLedsAndRfm", "Mica2");
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(cache.companionBuilds(), 1u);
    EXPECT_EQ(cache.companionHits(), kThreads - 1);
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(images[t].get(), images[0].get())
            << "all callers must share one immutable image";
}

TEST(StageCacheCompanions, DistinctPlatformsAreDistinctEntries)
{
    StageCache cache;
    auto mica = cache.companionImage("BlinkTask", "Mica2");
    auto telos = cache.companionImage("BlinkTask", "TelosB");
    EXPECT_EQ(cache.companionBuilds(), 2u);
    EXPECT_NE(mica.get(), telos.get());
    // Second lookups hit the memo.
    cache.companionImage("BlinkTask", "Mica2");
    cache.companionImage("BlinkTask", "TelosB");
    EXPECT_EQ(cache.companionBuilds(), 2u);
    EXPECT_EQ(cache.companionHits(), 2u);
}

TEST(StageCacheCompanions, FailuresAreCachedAndRethrown)
{
    StageCache cache;
    EXPECT_THROW(cache.companionImage("NoSuchApp", "Mica2"),
                 std::exception);
    EXPECT_THROW(cache.companionImage("NoSuchApp", "Mica2"),
                 std::exception);
    EXPECT_EQ(cache.companionBuilds(), 1u)
        << "the failed build must be memoized";
}

TEST(SimDriver, MatrixShapeOrderingAndCompanionAccounting)
{
    BuildReport builds = smallBuilds();
    SimOptions opts;
    opts.jobs = 4;
    opts.seconds = kSimSeconds;
    SimReport rep = SimDriver(opts).run(builds);

    ASSERT_EQ(rep.numApps, 3u);
    ASSERT_EQ(rep.numConfigs, 2u);
    ASSERT_EQ(rep.records.size(), 6u);
    EXPECT_TRUE(rep.allOk());
    const char *apps[] = {"BlinkTask", "Ident", "Surge"};
    for (size_t a = 0; a < 3; ++a) {
        for (size_t c = 0; c < 2; ++c) {
            const SimRecord &r = rep.at(a, c);
            EXPECT_EQ(r.app, apps[a]);
            EXPECT_EQ(r.appIndex, a);
            EXPECT_EQ(r.configIndex, c);
            EXPECT_GT(r.outcome.totalCycles, 0u);
        }
    }
    // Three distinct companion images (CntToLedsAndRfm, Surge,
    // GenericBase — all Mica2), each compiled exactly once even
    // though Ident and Surge each simulate in two configurations.
    EXPECT_EQ(rep.companionBuilds, 3u);
    // Ident contributes 2 companion requests, Surge 4; 6 total minus
    // the 3 builds leaves 3 memo hits.
    EXPECT_EQ(rep.companionReuses, 3u);
    EXPECT_NE(rep.find("Surge", configName(ConfigId::SafeFlid)), nullptr);
    EXPECT_EQ(rep.find("Surge", "nonsense"), nullptr);
}

TEST(SimDriver, ParallelMatchesSerialAcrossEveryFigure3Config)
{
    // One companion-free and one companion-heavy app across the full
    // Figure-3 column set (baseline + C1..C7).
    DriverOptions bopts;
    BuildDriver d(bopts);
    d.addApp(appByName("Oscilloscope"));
    d.addApp(appByName("Surge"));
    d.addConfig(ConfigId::Baseline);
    d.addConfigs(figure3Configs());
    BuildReport builds = d.run();
    ASSERT_TRUE(builds.allOk());

    SimOptions serialOpts;
    serialOpts.jobs = 1;
    serialOpts.memoizeCompanions = false;  // true per-cell rebuild
    serialOpts.seconds = kSimSeconds;
    SimReport serial = SimDriver(serialOpts).run(builds);
    EXPECT_EQ(serial.companionBuilds, 0u);
    EXPECT_EQ(serial.companionReuses, 0u);

    SimOptions parOpts;
    parOpts.jobs = 4;
    parOpts.seconds = kSimSeconds;
    SimReport parallel = SimDriver(parOpts).run(builds);
    EXPECT_EQ(parallel.companionBuilds, 2u);  // Surge + GenericBase

    ASSERT_EQ(serial.records.size(), parallel.records.size());
    for (size_t i = 0; i < serial.records.size(); ++i) {
        std::string why;
        EXPECT_TRUE(SimDriver::recordsEquivalent(
            serial.records[i], parallel.records[i], &why))
            << why;
    }
    std::string why;
    EXPECT_TRUE(SimDriver::reportsEquivalent(serial, parallel, &why))
        << why;
}

TEST(SimDriver, DeterministicUnderAnyJobCount)
{
    BuildReport builds = smallBuilds();
    SimOptions ref;
    ref.jobs = 1;
    ref.seconds = kSimSeconds;
    SimReport baseline = SimDriver(ref).run(builds);
    for (unsigned jobs : {2u, 3u, 8u}) {
        SimOptions opts;
        opts.jobs = jobs;
        opts.seconds = kSimSeconds;
        SimReport rep = SimDriver(opts).run(builds);
        std::string why;
        EXPECT_TRUE(SimDriver::reportsEquivalent(baseline, rep, &why))
            << "jobs=" << jobs << ": " << why;
    }
}

TEST(SimDriver, CustomRowsOutsideTheRegistrySimulate)
{
    // Benches add rows not present in tinyos::allApps() (e.g.
    // runtime_overhead's "minimal" app). The companion list rides on
    // the BuildRecord, so such rows must simulate — alone or with
    // registry companions.
    const char *kIdle =
        "interrupt(TIMER0) void t() { }"
        "void main() { stos_timer0_start(4096); stos_run_scheduler(); }";
    BuildDriver d;
    d.addApp({"custom_alone", "Mica2", kIdle, {}, "test", {}});
    d.addApp({"custom_ctx", "Mica2", kIdle, {"CntToLedsAndRfm"}, "test", {}});
    d.addConfig(ConfigId::Baseline);
    BuildReport builds = d.run();
    ASSERT_TRUE(builds.allOk());

    SimOptions opts;
    opts.seconds = kSimSeconds;
    SimReport rep = SimDriver(opts).run(builds);
    ASSERT_TRUE(rep.allOk())
        << rep.at(0, 0).error << rep.at(1, 0).error;
    EXPECT_EQ(rep.companionBuilds, 1u);
    EXPECT_LT(rep.at(0, 0).outcome.dutyCycle, 0.05);
}

TEST(SimDriver, FailedBuildCellsBecomeFailedSimRecords)
{
    DriverOptions bopts;
    bopts.jobs = 2;
    BuildDriver d(bopts);
    d.addApp(appByName("BlinkTask"));
    d.addApp({"Broken", "Mica2", "void main( {", {}, "test", {}});
    d.addConfig(ConfigId::Baseline);
    BuildReport builds = d.run();
    ASSERT_FALSE(builds.allOk());

    SimOptions opts;
    opts.seconds = kSimSeconds;
    SimReport rep = SimDriver(opts).run(builds);
    ASSERT_EQ(rep.records.size(), 2u);
    EXPECT_TRUE(rep.at(0, 0).ok);
    EXPECT_FALSE(rep.at(1, 0).ok);
    EXPECT_NE(rep.at(1, 0).error.find("build failed"),
              std::string::npos);
    EXPECT_FALSE(rep.allOk());
}

TEST(SimDriver, EmptyBuildReportIsEmptySimReport)
{
    BuildReport builds;
    SimReport rep = SimDriver().run(builds);
    EXPECT_EQ(rep.records.size(), 0u);
    EXPECT_TRUE(rep.allOk());
}

TEST(SimDriver, OutcomeFieldsAreConsistent)
{
    BuildReport builds = smallBuilds();
    SimOptions opts;
    opts.seconds = kSimSeconds;
    SimReport rep = SimDriver(opts).run(builds);
    for (const auto &r : rep.records) {
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_LE(r.outcome.awakeCycles, r.outcome.totalCycles);
        EXPECT_GT(r.outcome.instructions, 0u);
        EXPECT_NEAR(r.outcome.dutyCycle,
                    static_cast<double>(r.outcome.awakeCycles) /
                        static_cast<double>(r.outcome.totalCycles),
                    1e-12);
        EXPECT_FALSE(r.outcome.wedged) << r.app << "/" << r.config;
    }
}

TEST(StageCacheCompanions, PersistAcrossDriverRuns)
{
    // The serial equivalence gates re-run the same matrix; with a
    // caller-owned cache the second run must not rebuild a single
    // companion (ROADMAP follow-on).
    BuildReport builds = smallBuilds();
    StageCache cache;
    SimOptions opts;
    opts.seconds = kSimSeconds;
    SimDriver driver(opts);

    SimReport first = driver.run(builds, cache);
    EXPECT_EQ(first.companionBuilds, 3u);
    SimReport second = driver.run(builds, cache);
    EXPECT_EQ(second.companionBuilds, 0u)
        << "persistent cache must serve every companion";
    EXPECT_EQ(second.companionReuses, 6u);

    std::string why;
    EXPECT_TRUE(SimDriver::reportsEquivalent(first, second, &why))
        << why;
}

TEST(StageCacheCompanions, DecodedImageSharesTheCompiledFirmware)
{
    StageCache cache;
    auto image = cache.companionImage("CntToLedsAndRfm", "Mica2");
    auto decoded = cache.companionDecode("CntToLedsAndRfm", "Mica2");
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(&decoded->program(), image.get())
        << "the decode must wrap the cached image, not a copy";
    EXPECT_EQ(cache.companionBuilds(), 1u);
    // Decode requests hit the same memo entry.
    EXPECT_EQ(cache.companionDecode("CntToLedsAndRfm", "Mica2").get(),
              decoded.get());
}

TEST(SimDriver, LegacyModeMatchesPredecodedCellForCell)
{
    // The acceptance gate of the predecoded core at the driver level:
    // the legacy reference interpreter and the predecoded
    // event-horizon core must agree on every cell, uart log included.
    BuildReport builds = smallBuilds();

    SimOptions legacyOpts;
    legacyOpts.jobs = 1;
    legacyOpts.seconds = kSimSeconds;
    legacyOpts.mode = sim::ExecMode::Legacy;
    SimReport legacy = SimDriver(legacyOpts).run(builds);

    SimOptions preOpts;
    preOpts.jobs = 2;
    preOpts.seconds = kSimSeconds;
    SimReport pre = SimDriver(preOpts).run(builds);

    std::string why;
    EXPECT_TRUE(SimDriver::reportsEquivalent(legacy, pre, &why)) << why;
}

TEST(SimDriver, LookaheadParallelNetworksMatchSerial)
{
    // Multi-mote networks stepped in parallel inside each lookahead
    // window must be indistinguishable from serial stepping.
    BuildReport builds = smallBuilds();

    SimOptions serialOpts;
    serialOpts.seconds = kSimSeconds;
    SimReport serial = SimDriver(serialOpts).run(builds);

    SimOptions parOpts;
    parOpts.seconds = kSimSeconds;
    parOpts.netThreads = 3;
    SimReport parallel = SimDriver(parOpts).run(builds);

    std::string why;
    EXPECT_TRUE(SimDriver::reportsEquivalent(serial, parallel, &why))
        << why;
}

TEST(SimReport, JoinedCsvMergesStaticAndDynamicColumns)
{
    BuildReport builds = smallBuilds();
    SimOptions opts;
    opts.seconds = kSimSeconds;
    SimReport rep = SimDriver(opts).run(builds);

    std::ostringstream os;
    rep.joinCsv(builds, os);
    std::istringstream in(os.str());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_NE(header.find("code_bytes"), std::string::npos);
    EXPECT_NE(header.find("duty_cycle"), std::string::npos);
    EXPECT_NE(header.find("surviving_checks"), std::string::npos);
    size_t rows = 0;
    std::string line;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, rep.records.size());
    EXPECT_NE(os.str().find("\"safe, FLIDs\""), std::string::npos);
}

TEST(SimReport, JoinedJsonRoundTripsStructure)
{
    BuildReport builds = smallBuilds();
    SimOptions opts;
    opts.seconds = kSimSeconds;
    SimReport rep = SimDriver(opts).run(builds);

    std::ostringstream os;
    rep.joinJson(builds, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"kind\": \"joined_report\""),
              std::string::npos);
    EXPECT_NE(json.find("\"code_bytes\":"), std::string::npos);
    EXPECT_NE(json.find("\"duty_cycle\":"), std::string::npos);
    size_t open = 0, close = 0;
    for (char c : json) {
        open += c == '{';
        close += c == '}';
    }
    EXPECT_EQ(open, close);
}

TEST(SimReport, JoinRejectsAMismatchedBuildReport)
{
    BuildReport builds = smallBuilds();
    SimOptions opts;
    opts.seconds = kSimSeconds;
    SimReport rep = SimDriver(opts).run(builds);

    BuildDriver d;
    d.addApp(appByName("BlinkTask"));
    d.addConfig(ConfigId::Baseline);
    BuildReport other = d.run();

    std::ostringstream os;
    EXPECT_THROW(rep.joinCsv(other, os), FatalError);
    EXPECT_THROW(rep.joinJson(other, os), FatalError);
}

TEST(SimReport, CsvHasHeaderOneRowPerCellAndQuotedLabels)
{
    BuildReport builds = smallBuilds();
    SimOptions opts;
    opts.seconds = kSimSeconds;
    SimReport rep = SimDriver(opts).run(builds);

    std::ostringstream os;
    rep.emitCsv(os);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.substr(0, 4), "app,");
    EXPECT_NE(line.find("duty_cycle"), std::string::npos);
    size_t rows = 0;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, rep.records.size());
    // Config labels contain commas and must be quoted.
    EXPECT_NE(os.str().find("\"safe, FLIDs\""), std::string::npos);
}

TEST(SimReport, JsonRoundTripsStructure)
{
    BuildReport builds = smallBuilds();
    SimOptions opts;
    opts.seconds = kSimSeconds;
    SimReport rep = SimDriver(opts).run(builds);

    std::ostringstream os;
    rep.emitJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"kind\": \"sim_report\""), std::string::npos);
    EXPECT_NE(json.find("\"num_apps\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"duty_cycle\":"), std::string::npos);
    size_t open = 0, close = 0, records = 0;
    for (char c : json) {
        open += c == '{';
        close += c == '}';
    }
    EXPECT_EQ(open, close);
    size_t pos = 0;
    while ((pos = json.find("\"app\":", pos)) != std::string::npos) {
        ++records;
        pos += 6;
    }
    EXPECT_EQ(records, rep.records.size());
}

} // namespace
} // namespace stos
