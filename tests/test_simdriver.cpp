/**
 * @file
 * Simulation-matrix tests over the Experiment facade: StageCache
 * companion-entry memoization (each companion built exactly once per
 * platform, concurrent lookups race-free, persistent across runs),
 * parallel-vs-serial SimReport equivalence across every Figure-3
 * configuration, matrix shape/ordering, failure isolation, and the
 * CSV/JSON report emitters. Historically these gated SimDriver; the
 * deprecated forwarding shims are gone and the same coverage now
 * targets Experiment::simulateBuilds directly, with SimDriver
 * surviving only as the equivalence-helper vocabulary.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/experiment.h"
#include "support/util.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::tinyos;

constexpr double kSimSeconds = 0.1;

/** Knobs of the simulation phase a test wants to vary. */
struct SimParams {
    unsigned jobs = 0;
    bool memoizeCompanions = true;
    double seconds = kSimSeconds;
    sim::ExecMode mode = sim::ExecMode::Predecoded;
    unsigned netThreads = 1;
};

/** Simulate an already-built matrix over a fresh companion cache. */
SimReport
runSim(const BuildReport &builds, const SimParams &p = {})
{
    Experiment e;
    e.options().jobs = p.jobs;
    e.options().memoize = p.memoizeCompanions;
    e.options().seconds = p.seconds;
    e.options().mode = p.mode;
    e.options().netThreads = p.netThreads;
    StageCache cache;
    return e.simulateBuilds(builds, cache);
}

/** Rows with and without companions, columns that change the image. */
BuildReport
smallBuilds(unsigned jobs = 0)
{
    Experiment e;
    e.options().jobs = jobs;
    e.options().simulate = false;
    e.addApp(appByName("BlinkTask"));     // no companions
    e.addApp(appByName("Ident"));         // companion: CntToLedsAndRfm
    e.addApp(appByName("Surge"));         // companions: Surge, GenericBase
    e.addConfig(ConfigId::Baseline);
    e.addConfig(ConfigId::SafeFlid);
    return e.run().builds;
}

TEST(StageCacheCompanions, BuildsEachKeyExactlyOnceUnderContention)
{
    StageCache cache;
    constexpr unsigned kThreads = 8;
    std::vector<std::shared_ptr<const backend::MProgram>> images(
        kThreads);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&cache, &images, t] {
            images[t] =
                cache.companionImage("CntToLedsAndRfm", "Mica2");
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(cache.companionBuilds(), 1u);
    EXPECT_EQ(cache.companionHits(), kThreads - 1);
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(images[t].get(), images[0].get())
            << "all callers must share one immutable image";
}

TEST(StageCacheCompanions, DistinctPlatformsAreDistinctEntries)
{
    StageCache cache;
    auto mica = cache.companionImage("BlinkTask", "Mica2");
    auto telos = cache.companionImage("BlinkTask", "TelosB");
    EXPECT_EQ(cache.companionBuilds(), 2u);
    EXPECT_NE(mica.get(), telos.get());
    // Second lookups hit the memo.
    cache.companionImage("BlinkTask", "Mica2");
    cache.companionImage("BlinkTask", "TelosB");
    EXPECT_EQ(cache.companionBuilds(), 2u);
    EXPECT_EQ(cache.companionHits(), 2u);
}

TEST(StageCacheCompanions, FailuresAreCachedAndRethrown)
{
    StageCache cache;
    EXPECT_THROW(cache.companionImage("NoSuchApp", "Mica2"),
                 std::exception);
    EXPECT_THROW(cache.companionImage("NoSuchApp", "Mica2"),
                 std::exception);
    EXPECT_EQ(cache.companionBuilds(), 1u)
        << "the failed build must be memoized";
}

TEST(SimMatrix, MatrixShapeOrderingAndCompanionAccounting)
{
    BuildReport builds = smallBuilds();
    SimParams p;
    p.jobs = 4;
    SimReport rep = runSim(builds, p);

    ASSERT_EQ(rep.numApps, 3u);
    ASSERT_EQ(rep.numConfigs, 2u);
    ASSERT_EQ(rep.records.size(), 6u);
    EXPECT_TRUE(rep.allOk());
    const char *apps[] = {"BlinkTask", "Ident", "Surge"};
    for (size_t a = 0; a < 3; ++a) {
        for (size_t c = 0; c < 2; ++c) {
            const SimRecord &r = rep.at(a, c);
            EXPECT_EQ(r.app, apps[a]);
            EXPECT_EQ(r.appIndex, a);
            EXPECT_EQ(r.configIndex, c);
            EXPECT_GT(r.outcome.totalCycles, 0u);
        }
    }
    // Three distinct companion images (CntToLedsAndRfm, Surge,
    // GenericBase — all Mica2), each compiled exactly once even
    // though Ident and Surge each simulate in two configurations.
    EXPECT_EQ(rep.companionBuilds, 3u);
    // Ident contributes 2 companion requests, Surge 4; 6 total minus
    // the 3 builds leaves 3 memo hits.
    EXPECT_EQ(rep.companionReuses, 3u);
    EXPECT_NE(rep.find("Surge", configName(ConfigId::SafeFlid)), nullptr);
    EXPECT_EQ(rep.find("Surge", "nonsense"), nullptr);
}

TEST(SimMatrix, ParallelMatchesSerialAcrossEveryFigure3Config)
{
    // One companion-free and one companion-heavy app across the full
    // Figure-3 column set (baseline + C1..C7).
    Experiment b;
    b.options().simulate = false;
    b.addApp(appByName("Oscilloscope"));
    b.addApp(appByName("Surge"));
    b.addConfig(ConfigId::Baseline);
    b.addConfigs(figure3Configs());
    BuildReport builds = b.run().builds;
    ASSERT_TRUE(builds.allOk());

    SimParams serialP;
    serialP.jobs = 1;
    serialP.memoizeCompanions = false;  // true per-cell rebuild
    SimReport serial = runSim(builds, serialP);
    EXPECT_EQ(serial.companionBuilds, 0u);
    EXPECT_EQ(serial.companionReuses, 0u);

    SimParams parP;
    parP.jobs = 4;
    SimReport parallel = runSim(builds, parP);
    EXPECT_EQ(parallel.companionBuilds, 2u);  // Surge + GenericBase

    ASSERT_EQ(serial.records.size(), parallel.records.size());
    for (size_t i = 0; i < serial.records.size(); ++i) {
        std::string why;
        EXPECT_TRUE(SimDriver::recordsEquivalent(
            serial.records[i], parallel.records[i], &why))
            << why;
    }
    std::string why;
    EXPECT_TRUE(SimDriver::reportsEquivalent(serial, parallel, &why))
        << why;
}

TEST(SimMatrix, DeterministicUnderAnyJobCount)
{
    BuildReport builds = smallBuilds();
    SimParams ref;
    ref.jobs = 1;
    SimReport baseline = runSim(builds, ref);
    for (unsigned jobs : {2u, 3u, 8u}) {
        SimParams p;
        p.jobs = jobs;
        SimReport rep = runSim(builds, p);
        std::string why;
        EXPECT_TRUE(SimDriver::reportsEquivalent(baseline, rep, &why))
            << "jobs=" << jobs << ": " << why;
    }
}

TEST(SimMatrix, CustomRowsOutsideTheRegistrySimulate)
{
    // Benches add rows not present in tinyos::allApps() (e.g.
    // runtime_overhead's "minimal" app). The companion list rides on
    // the BuildRecord, so such rows must simulate — alone or with
    // registry companions.
    const char *kIdle =
        "interrupt(TIMER0) void t() { }"
        "void main() { stos_timer0_start(4096); stos_run_scheduler(); }";
    Experiment b;
    b.options().simulate = false;
    b.addApp({"custom_alone", "Mica2", kIdle, {}, "test", {}});
    b.addApp({"custom_ctx", "Mica2", kIdle, {"CntToLedsAndRfm"}, "test", {}});
    b.addConfig(ConfigId::Baseline);
    BuildReport builds = b.run().builds;
    ASSERT_TRUE(builds.allOk());

    SimReport rep = runSim(builds);
    ASSERT_TRUE(rep.allOk())
        << rep.at(0, 0).error << rep.at(1, 0).error;
    EXPECT_EQ(rep.companionBuilds, 1u);
    EXPECT_LT(rep.at(0, 0).outcome.dutyCycle, 0.05);
}

TEST(SimMatrix, FailedBuildCellsBecomeFailedSimRecords)
{
    Experiment b;
    b.options().jobs = 2;
    b.options().simulate = false;
    b.addApp(appByName("BlinkTask"));
    b.addApp({"Broken", "Mica2", "void main( {", {}, "test", {}});
    b.addConfig(ConfigId::Baseline);
    BuildReport builds = b.run().builds;
    ASSERT_FALSE(builds.allOk());

    SimReport rep = runSim(builds);
    ASSERT_EQ(rep.records.size(), 2u);
    EXPECT_TRUE(rep.at(0, 0).ok);
    EXPECT_FALSE(rep.at(1, 0).ok);
    EXPECT_NE(rep.at(1, 0).error.find("build failed"),
              std::string::npos);
    EXPECT_FALSE(rep.allOk());
}

TEST(SimMatrix, EmptyBuildReportIsEmptySimReport)
{
    BuildReport builds;
    SimReport rep = runSim(builds);
    EXPECT_EQ(rep.records.size(), 0u);
    EXPECT_TRUE(rep.allOk());
}

TEST(SimMatrix, OutcomeFieldsAreConsistent)
{
    BuildReport builds = smallBuilds();
    SimReport rep = runSim(builds);
    for (const auto &r : rep.records) {
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_LE(r.outcome.awakeCycles, r.outcome.totalCycles);
        EXPECT_GT(r.outcome.instructions, 0u);
        EXPECT_NEAR(r.outcome.dutyCycle,
                    static_cast<double>(r.outcome.awakeCycles) /
                        static_cast<double>(r.outcome.totalCycles),
                    1e-12);
        EXPECT_FALSE(r.outcome.wedged) << r.app << "/" << r.config;
    }
}

TEST(StageCacheCompanions, PersistAcrossSimulationRuns)
{
    // The serial equivalence gates re-run the same matrix; with a
    // caller-owned cache the second run must not rebuild a single
    // companion (ROADMAP follow-on).
    BuildReport builds = smallBuilds();
    StageCache cache;
    Experiment e;
    e.options().seconds = kSimSeconds;

    SimReport first = e.simulateBuilds(builds, cache);
    EXPECT_EQ(first.companionBuilds, 3u);
    SimReport second = e.simulateBuilds(builds, cache);
    EXPECT_EQ(second.companionBuilds, 0u)
        << "persistent cache must serve every companion";
    EXPECT_EQ(second.companionReuses, 6u);

    std::string why;
    EXPECT_TRUE(SimDriver::reportsEquivalent(first, second, &why))
        << why;
}

TEST(StageCacheCompanions, DecodedImageSharesTheCompiledFirmware)
{
    StageCache cache;
    auto image = cache.companionImage("CntToLedsAndRfm", "Mica2");
    auto decoded = cache.companionDecode("CntToLedsAndRfm", "Mica2");
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(&decoded->program(), image.get())
        << "the decode must wrap the cached image, not a copy";
    EXPECT_EQ(cache.companionBuilds(), 1u);
    // Decode requests hit the same memo entry.
    EXPECT_EQ(cache.companionDecode("CntToLedsAndRfm", "Mica2").get(),
              decoded.get());
}

TEST(SimMatrix, LegacyModeMatchesPredecodedCellForCell)
{
    // The acceptance gate of the predecoded core at the driver level:
    // the legacy reference interpreter and the predecoded
    // event-horizon core must agree on every cell, uart log included.
    BuildReport builds = smallBuilds();

    SimParams legacyP;
    legacyP.jobs = 1;
    legacyP.mode = sim::ExecMode::Legacy;
    SimReport legacy = runSim(builds, legacyP);

    SimParams preP;
    preP.jobs = 2;
    SimReport pre = runSim(builds, preP);

    std::string why;
    EXPECT_TRUE(SimDriver::reportsEquivalent(legacy, pre, &why)) << why;
}

TEST(SimMatrix, LookaheadParallelNetworksMatchSerial)
{
    // Multi-mote networks stepped in parallel inside each lookahead
    // window must be indistinguishable from serial stepping.
    BuildReport builds = smallBuilds();

    SimReport serial = runSim(builds);

    SimParams parP;
    parP.netThreads = 3;
    SimReport parallel = runSim(builds, parP);

    std::string why;
    EXPECT_TRUE(SimDriver::reportsEquivalent(serial, parallel, &why))
        << why;
}

TEST(SimReport, JoinedCsvMergesStaticAndDynamicColumns)
{
    BuildReport builds = smallBuilds();
    SimReport rep = runSim(builds);

    std::ostringstream os;
    rep.joinCsv(builds, os);
    std::istringstream in(os.str());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_NE(header.find("code_bytes"), std::string::npos);
    EXPECT_NE(header.find("duty_cycle"), std::string::npos);
    EXPECT_NE(header.find("surviving_checks"), std::string::npos);
    size_t rows = 0;
    std::string line;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, rep.records.size());
    EXPECT_NE(os.str().find("\"safe, FLIDs\""), std::string::npos);
}

TEST(SimReport, JoinedJsonRoundTripsStructure)
{
    BuildReport builds = smallBuilds();
    SimReport rep = runSim(builds);

    std::ostringstream os;
    rep.joinJson(builds, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"kind\": \"joined_report\""),
              std::string::npos);
    EXPECT_NE(json.find("\"code_bytes\":"), std::string::npos);
    EXPECT_NE(json.find("\"duty_cycle\":"), std::string::npos);
    size_t open = 0, close = 0;
    for (char c : json) {
        open += c == '{';
        close += c == '}';
    }
    EXPECT_EQ(open, close);
}

TEST(SimReport, JoinRejectsAMismatchedBuildReport)
{
    BuildReport builds = smallBuilds();
    SimReport rep = runSim(builds);

    Experiment b;
    b.options().simulate = false;
    b.addApp(appByName("BlinkTask"));
    b.addConfig(ConfigId::Baseline);
    BuildReport other = b.run().builds;

    std::ostringstream os;
    EXPECT_THROW(rep.joinCsv(other, os), FatalError);
    EXPECT_THROW(rep.joinJson(other, os), FatalError);
}

TEST(SimReport, CsvHasHeaderOneRowPerCellAndQuotedLabels)
{
    BuildReport builds = smallBuilds();
    SimReport rep = runSim(builds);

    std::ostringstream os;
    rep.emitCsv(os);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.substr(0, 4), "app,");
    EXPECT_NE(line.find("duty_cycle"), std::string::npos);
    size_t rows = 0;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, rep.records.size());
    // Config labels contain commas and must be quoted.
    EXPECT_NE(os.str().find("\"safe, FLIDs\""), std::string::npos);
}

TEST(SimReport, JsonRoundTripsStructure)
{
    BuildReport builds = smallBuilds();
    SimReport rep = runSim(builds);

    std::ostringstream os;
    rep.emitJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"kind\": \"sim_report\""), std::string::npos);
    EXPECT_NE(json.find("\"num_apps\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"duty_cycle\":"), std::string::npos);
    size_t open = 0, close = 0, records = 0;
    for (char c : json) {
        open += c == '{';
        close += c == '}';
    }
    EXPECT_EQ(open, close);
    size_t pos = 0;
    while ((pos = json.find("\"app\":", pos)) != std::string::npos) {
        ++records;
        pos += 6;
    }
    EXPECT_EQ(records, rep.records.size());
}

} // namespace
} // namespace stos
