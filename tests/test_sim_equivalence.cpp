/**
 * @file
 * Exhaustive equivalence suite for the two interpreter cores: the
 * legacy reference interpreter and the predecoded event-horizon core
 * must be indistinguishable on every observable counter — cycles,
 * awake cycles, instructions executed, failed FLID, UART log, LED
 * writes, and radio/ADC statistics — across every Figure-3 build
 * configuration and every multi-mote example network, under serial,
 * lookahead, and lookahead-parallel network scheduling. The TSan CI
 * job runs this binary to certify the window-parallel stepping.
 */
#include <gtest/gtest.h>

#include "core/driver.h"
#include "core/pipeline.h"
#include "sim/decoded.h"
#include "sim/machine.h"
#include "sim/stats.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::sim;

/** ~0.27 simulated seconds at 7.37 MHz; long enough for timers,
 *  radio traffic, and several scheduler wakeups in every app. */
constexpr uint64_t kCycles = 2'000'000;

using MoteStats = MoteSnapshot;

MoteStats
statsOf(const Machine &m)
{
    return snapshotOf(m);
}

void
expectSame(const MoteStats &a, const MoteStats &b,
           const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.awakeCycles, b.awakeCycles) << label;
    EXPECT_EQ(a.instructions, b.instructions) << label;
    EXPECT_EQ(a.halted, b.halted) << label;
    EXPECT_EQ(a.wedged, b.wedged) << label;
    EXPECT_EQ(a.failedFlid, b.failedFlid) << label;
    EXPECT_EQ(a.uartLog, b.uartLog) << label;
    EXPECT_EQ(a.ledWrites, b.ledWrites) << label;
    EXPECT_EQ(a.packetsSent, b.packetsSent) << label;
    EXPECT_EQ(a.packetsReceived, b.packetsReceived) << label;
    EXPECT_EQ(a.adcConversions, b.adcConversions) << label;
    EXPECT_TRUE(a == b) << label << " (full snapshot)";
}

/** The full matrix, built once and shared by the tests below. */
const BuildReport &
matrix()
{
    static const BuildReport rep = BuildDriver::figure3Matrix();
    return rep;
}

TEST(SimEquivalence, EveryFigure3CellMatchesOnASingleMote)
{
    const BuildReport &rep = matrix();
    ASSERT_TRUE(rep.allOk());
    for (const BuildRecord &r : rep.records) {
        Machine legacy(r.result->image, 1, ExecMode::Legacy);
        Machine pre(r.result->image, 1, ExecMode::Predecoded);
        legacy.boot();
        pre.boot();
        legacy.runUntilCycle(kCycles);
        pre.runUntilCycle(kCycles);
        expectSame(statsOf(legacy), statsOf(pre),
                   r.app + " / " + r.config);
    }
}

/** Simulate `r` in its network context under the given scheduler and
 *  return the stats of every mote. */
std::vector<MoteStats>
runNetwork(const BuildRecord &r, const BuildReport &rep,
           const NetworkOptions &opts, uint64_t cycles)
{
    Network net(opts);
    net.addMote(r.result->image, 1);
    uint8_t nextId = 2;
    for (const auto &cname : r.companions) {
        const BuildRecord *comp =
            rep.find(cname, configName(ConfigId::Baseline));
        EXPECT_NE(comp, nullptr) << cname;
        net.addMote(comp->result->image, nextId++);
    }
    net.run(cycles);
    std::vector<MoteStats> out;
    for (size_t i = 0; i < net.size(); ++i)
        out.push_back(statsOf(net.mote(i)));
    return out;
}

TEST(SimEquivalence, EveryMultiMoteNetworkMatchesAcrossSchedulers)
{
    const BuildReport &rep = matrix();
    ASSERT_TRUE(rep.allOk());
    size_t networks = 0;
    for (const BuildRecord &r : rep.records) {
        if (r.companions.empty())
            continue;
        ++networks;
        // Legacy core, fixed-quantum lockstep: the pre-PR behaviour.
        auto legacy = runNetwork(
            r, rep, {ExecMode::Legacy, /*lookahead=*/false, 1},
            kCycles);
        // Predecoded core, conservative-lookahead windows, serial.
        auto serial = runNetwork(
            r, rep, {ExecMode::Predecoded, /*lookahead=*/true, 1},
            kCycles);
        // Predecoded core, windows stepped in parallel.
        auto parallel = runNetwork(
            r, rep, {ExecMode::Predecoded, /*lookahead=*/true, 4},
            kCycles);
        ASSERT_EQ(legacy.size(), serial.size());
        ASSERT_EQ(legacy.size(), parallel.size());
        for (size_t i = 0; i < legacy.size(); ++i) {
            std::string label = r.app + " / " + r.config + " / mote " +
                                std::to_string(i);
            expectSame(legacy[i], serial[i], label + " [serial]");
            expectSame(legacy[i], parallel[i], label + " [parallel]");
        }
    }
    EXPECT_GE(networks, 8u)
        << "the registry should provide several multi-mote contexts";
}

TEST(SimEquivalence, SharedDecodeMatchesPerMoteDecode)
{
    const auto &app = tinyos::appByName("CntToLedsAndRfm");
    BuildResult build =
        buildApp(app, configFor(ConfigId::SafeFlid, app.platform));
    auto decode = std::make_shared<const DecodedProgram>(build.image);

    Network shared({ExecMode::Predecoded, true, 1});
    shared.addMote(decode, 1);
    shared.addMote(decode, 2);
    shared.run(kCycles);

    Network owned({ExecMode::Predecoded, true, 1});
    owned.addMote(build.image, 1);
    owned.addMote(build.image, 2);
    owned.run(kCycles);

    for (size_t i = 0; i < 2; ++i)
        expectSame(statsOf(shared.mote(i)), statsOf(owned.mote(i)),
                   "mote " + std::to_string(i));
}

TEST(SimEquivalence, FailingProgramWedgesIdenticallyWithSameFlid)
{
    // An out-of-bounds store trips a dynamic check; the machine must
    // reach the failure stub and wedge with the same FLID on both
    // cores (the fail path exercises Call-to-stub resolution, Lea of
    // the check tag, and the wedge self-loop detection).
    const char *kBad =
        "u8 buf[4];"
        "void main() {"
        "  u16 i = 0;"
        "  while (i < 10) { buf[i] = 1; i++; }"
        "}";
    BuildResult build = buildSource(
        "oob", kBad, configFor(ConfigId::SafeFlid, "Mica2"));
    Machine legacy(build.image, 1, ExecMode::Legacy);
    Machine pre(build.image, 1, ExecMode::Predecoded);
    legacy.boot();
    pre.boot();
    legacy.runUntilCycle(500'000);
    pre.runUntilCycle(500'000);
    EXPECT_TRUE(pre.wedged());
    EXPECT_NE(pre.failedFlid(), 0u);
    expectSame(statsOf(legacy), statsOf(pre), "oob");
}

TEST(SimEquivalence, PredecodedNetworkClampsToRequestedCycles)
{
    // The lookahead scheduler must land every mote exactly on the
    // requested cycle, including durations that are not multiples of
    // any window size, and keep doing so across consecutive runs.
    const auto &app = tinyos::appByName("CntToLedsAndRfm");
    BuildResult build =
        buildApp(app, configFor(ConfigId::Baseline, app.platform));
    for (unsigned threads : {1u, 3u}) {
        Network net({ExecMode::Predecoded, true, threads});
        net.addMote(build.image, 1);
        net.addMote(build.image, 2);
        net.addMote(build.image, 3);
        uint64_t n = 123'457;  // prime-ish: no window divides it
        net.run(n);
        for (size_t i = 0; i < net.size(); ++i)
            EXPECT_EQ(net.mote(i).cycles(), n) << "threads=" << threads;
        net.run(100);
        for (size_t i = 0; i < net.size(); ++i)
            EXPECT_EQ(net.mote(i).cycles(), n + 100)
                << "threads=" << threads;
    }
}

TEST(SimEquivalence, ParallelNetworkIsDeterministic)
{
    const BuildReport &rep = matrix();
    const BuildRecord *surge =
        rep.find("Surge", configName(ConfigId::SafeFlidInlineCxprop));
    ASSERT_NE(surge, nullptr);
    auto a = runNetwork(*surge, rep, {ExecMode::Predecoded, true, 4},
                        kCycles);
    auto b = runNetwork(*surge, rep, {ExecMode::Predecoded, true, 4},
                        kCycles);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectSame(a[i], b[i], "mote " + std::to_string(i));
}

} // namespace
} // namespace stos
