/**
 * @file
 * Exhaustive equivalence suite for the three interpreter cores: the
 * legacy reference interpreter, the predecoded event-horizon core,
 * and the direct-threaded superinstruction core must be
 * indistinguishable on every observable counter — cycles, awake
 * cycles, instructions executed, failed FLID, UART log, LED writes,
 * trap log, and radio/ADC statistics — across every Figure-3 build
 * configuration and every multi-mote example network, under serial,
 * lookahead, and lookahead-parallel network scheduling. The TSan CI
 * job runs this binary to certify the window-parallel stepping (now
 * serviced by the persistent worker pool).
 */
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/pipeline.h"
#include "ir/interp.h"
#include "sim/decoded.h"
#include "sim/machine.h"
#include "sim/stats.h"
#include "support/devmap.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::sim;

/** ~0.27 simulated seconds at 7.37 MHz; long enough for timers,
 *  radio traffic, and several scheduler wakeups in every app. */
constexpr uint64_t kCycles = 2'000'000;

using MoteStats = MoteSnapshot;

MoteStats
statsOf(const Machine &m)
{
    return snapshotOf(m);
}

void
expectSame(const MoteStats &a, const MoteStats &b,
           const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.awakeCycles, b.awakeCycles) << label;
    EXPECT_EQ(a.instructions, b.instructions) << label;
    EXPECT_EQ(a.halted, b.halted) << label;
    EXPECT_EQ(a.wedged, b.wedged) << label;
    EXPECT_EQ(a.failedFlid, b.failedFlid) << label;
    EXPECT_EQ(a.uartLog, b.uartLog) << label;
    EXPECT_EQ(a.ledWrites, b.ledWrites) << label;
    EXPECT_EQ(a.packetsSent, b.packetsSent) << label;
    EXPECT_EQ(a.packetsReceived, b.packetsReceived) << label;
    EXPECT_EQ(a.adcConversions, b.adcConversions) << label;
    EXPECT_EQ(a.traps, b.traps) << label;
    EXPECT_EQ(a.reboots, b.reboots) << label;
    EXPECT_EQ(a.crashes, b.crashes) << label;
    EXPECT_EQ(a.downCycles, b.downCycles) << label;
    EXPECT_EQ(a.wedgedCycles, b.wedgedCycles) << label;
    EXPECT_EQ(a.trapLog.size(), b.trapLog.size()) << label;
    EXPECT_EQ(a.packetsDropped, b.packetsDropped) << label;
    EXPECT_EQ(a.packetsCorrupted, b.packetsCorrupted) << label;
    EXPECT_EQ(a.packetsDuplicated, b.packetsDuplicated) << label;
    EXPECT_TRUE(a == b) << label << " (full snapshot)";
}

/** The full matrix — every corpus app under Baseline, the Figure-3
 *  columns, and the CFI column family (whose label checks and shadow
 *  stack must also stay byte-identical across cores) — built once and
 *  shared by the tests below. */
const BuildReport &
matrix()
{
    static const BuildReport rep = [] {
        Experiment exp;
        exp.options().simulate = false;
        exp.addAllApps();
        exp.addConfig(ConfigId::Baseline);
        exp.addConfigs(figure3Configs());
        exp.addConfigs(cfiConfigs());
        return exp.run().builds;
    }();
    return rep;
}

TEST(SimEquivalence, EveryFigure3CellMatchesOnASingleMote)
{
    const BuildReport &rep = matrix();
    ASSERT_TRUE(rep.allOk());
    for (const BuildRecord &r : rep.records) {
        Machine legacy(r.result->image, 1, ExecMode::Legacy);
        Machine pre(r.result->image, 1, ExecMode::Predecoded);
        Machine thr(r.result->image, 1, ExecMode::Threaded);
        legacy.boot();
        pre.boot();
        thr.boot();
        legacy.runUntilCycle(kCycles);
        pre.runUntilCycle(kCycles);
        thr.runUntilCycle(kCycles);
        expectSame(statsOf(legacy), statsOf(pre),
                   r.app + " / " + r.config + " [predecoded]");
        expectSame(statsOf(legacy), statsOf(thr),
                   r.app + " / " + r.config + " [threaded]");
    }
}

/** Simulate `r` in its network context under the given scheduler and
 *  return the stats of every mote. */
std::vector<MoteStats>
runNetwork(const BuildRecord &r, const BuildReport &rep,
           const NetworkOptions &opts, uint64_t cycles)
{
    Network net(opts);
    net.addMote(r.result->image, 1);
    uint8_t nextId = 2;
    for (const auto &cname : r.companions) {
        const BuildRecord *comp =
            rep.find(cname, configName(ConfigId::Baseline));
        EXPECT_NE(comp, nullptr) << cname;
        net.addMote(comp->result->image, nextId++);
    }
    net.run(cycles);
    std::vector<MoteStats> out;
    for (size_t i = 0; i < net.size(); ++i)
        out.push_back(statsOf(net.mote(i)));
    return out;
}

TEST(SimEquivalence, EveryMultiMoteNetworkMatchesAcrossSchedulers)
{
    const BuildReport &rep = matrix();
    ASSERT_TRUE(rep.allOk());
    size_t networks = 0;
    for (const BuildRecord &r : rep.records) {
        if (r.companions.empty())
            continue;
        ++networks;
        // Legacy core, fixed-quantum lockstep: the pre-PR behaviour.
        auto legacy = runNetwork(
            r, rep, {ExecMode::Legacy, /*lookahead=*/false, 1},
            kCycles);
        // Predecoded core, conservative-lookahead windows, serial.
        auto serial = runNetwork(
            r, rep, {ExecMode::Predecoded, /*lookahead=*/true, 1},
            kCycles);
        // Predecoded core, windows stepped in parallel.
        auto parallel = runNetwork(
            r, rep, {ExecMode::Predecoded, /*lookahead=*/true, 4},
            kCycles);
        // Threaded core under both schedulers.
        auto thrSerial = runNetwork(
            r, rep, {ExecMode::Threaded, /*lookahead=*/true, 1},
            kCycles);
        auto thrParallel = runNetwork(
            r, rep, {ExecMode::Threaded, /*lookahead=*/true, 4},
            kCycles);
        ASSERT_EQ(legacy.size(), serial.size());
        ASSERT_EQ(legacy.size(), parallel.size());
        ASSERT_EQ(legacy.size(), thrSerial.size());
        ASSERT_EQ(legacy.size(), thrParallel.size());
        for (size_t i = 0; i < legacy.size(); ++i) {
            std::string label = r.app + " / " + r.config + " / mote " +
                                std::to_string(i);
            expectSame(legacy[i], serial[i], label + " [serial]");
            expectSame(legacy[i], parallel[i], label + " [parallel]");
            expectSame(legacy[i], thrSerial[i],
                       label + " [threaded serial]");
            expectSame(legacy[i], thrParallel[i],
                       label + " [threaded parallel]");
        }
    }
    EXPECT_GE(networks, 8u)
        << "the registry should provide several multi-mote contexts";
}

TEST(SimEquivalence, SharedDecodeMatchesPerMoteDecode)
{
    const auto &app = tinyos::appByName("CntToLedsAndRfm");
    BuildResult build =
        buildApp(app, configFor(ConfigId::SafeFlid, app.platform));
    auto decode = std::make_shared<const DecodedProgram>(build.image);

    for (ExecMode mode :
         {ExecMode::Predecoded, ExecMode::Threaded}) {
        Network shared({mode, true, 1});
        shared.addMote(decode, 1);
        shared.addMote(decode, 2);
        shared.run(kCycles);

        Network owned({mode, true, 1});
        owned.addMote(build.image, 1);
        owned.addMote(build.image, 2);
        owned.run(kCycles);

        for (size_t i = 0; i < 2; ++i)
            expectSame(statsOf(shared.mote(i)),
                       statsOf(owned.mote(i)),
                       "mote " + std::to_string(i));
    }
}

TEST(SimEquivalence, FailingProgramWedgesIdenticallyWithSameFlid)
{
    // An out-of-bounds store trips a dynamic check; the machine must
    // reach the failure stub and wedge with the same FLID on both
    // cores (the fail path exercises Call-to-stub resolution, Lea of
    // the check tag, and the wedge self-loop detection).
    const char *kBad =
        "u8 buf[4];"
        "void main() {"
        "  u16 i = 0;"
        "  while (i < 10) { buf[i] = 1; i++; }"
        "}";
    BuildResult build = buildSource(
        "oob", kBad, configFor(ConfigId::SafeFlid, "Mica2"));
    Machine legacy(build.image, 1, ExecMode::Legacy);
    Machine pre(build.image, 1, ExecMode::Predecoded);
    Machine thr(build.image, 1, ExecMode::Threaded);
    legacy.boot();
    pre.boot();
    thr.boot();
    legacy.runUntilCycle(500'000);
    pre.runUntilCycle(500'000);
    thr.runUntilCycle(500'000);
    EXPECT_TRUE(pre.wedged());
    EXPECT_NE(pre.failedFlid(), 0u);
    expectSame(statsOf(legacy), statsOf(pre), "oob [predecoded]");
    expectSame(statsOf(legacy), statsOf(thr), "oob [threaded]");
}

/**
 * Width-sweep arithmetic equivalence: division, remainder, and shifts
 * over every integer width and the nasty operand corners — divisor
 * zero, INT_MIN / -1, shift counts at and past the operand width —
 * must produce identical UART streams from the IR interpreter, the
 * legacy core, and the predecoded core, in unsafe, safe, and
 * safe+optimized builds. This pins the unified total-division
 * semantics (x/0 == 0, x%0 == 0, INT_MIN/-1 wraps) across all three
 * engines and the constant folder.
 */
const char *kArithSweep = R"TC(
i16 sa[6] = {-32768, -32767, -7, -1, 0, 32767};
i16 sb[6] = {-1, 0, 1, -7, 3, -32768};
u16 ua[5] = {0, 1, 7, 4660, 65535};
u16 ub[5] = {0, 1, 2, 10, 65535};
i32 wa[6] = {-2147483648, -2147483647, -513, -1, 0, 2147483647};
i32 wb[6] = {-1, 0, 1, -513, 3, -2147483648};
u32 va[5] = {0, 1, 513, 65537, 4294967295};
u32 vb[5] = {0, 1, 2, 65537, 4294967295};
u8 sh[9] = {0, 1, 7, 15, 16, 31, 32, 63, 70};
void put32(u32 v) {
    stos_uart_put_u16((u16)(v >> 16));
    stos_uart_put_u16((u16)v);
}
u16 main() {
    u8 i = 0;
    u8 j = 0;
    while (i < 6) {
        j = 0;
        while (j < 6) {
            stos_uart_put_u16((u16)(sa[i] / sb[j]));
            stos_uart_put_u16((u16)(sa[i] % sb[j]));
            put32((u32)(wa[i] / wb[j]));
            put32((u32)(wa[i] % wb[j]));
            j = (u8)(j + 1);
        }
        i = (u8)(i + 1);
    }
    i = 0;
    while (i < 5) {
        j = 0;
        while (j < 5) {
            stos_uart_put_u16((u16)(ua[i] / ub[j]));
            stos_uart_put_u16((u16)(ua[i] % ub[j]));
            put32(va[i] / vb[j]);
            put32(va[i] % vb[j]);
            j = (u8)(j + 1);
        }
        i = (u8)(i + 1);
    }
    i = 0;
    while (i < 6) {
        j = 0;
        while (j < 9) {
            stos_uart_put_u16((u16)(sa[i] << sh[j]));
            stos_uart_put_u16((u16)(sa[i] >> sh[j]));
            put32((u32)(wa[i] << sh[j]));
            put32((u32)(wa[i] >> sh[j]));
            if (i < 5) {
                stos_uart_put_u16((u16)(ua[i] << sh[j]));
                stos_uart_put_u16((u16)(ua[i] >> sh[j]));
                put32(va[i] << sh[j]);
                put32(va[i] >> sh[j]);
            }
            j = (u8)(j + 1);
        }
        i = (u8)(i + 1);
    }
    return 0;
}
)TC";

TEST(SimEquivalence, WidthSweepArithmeticAgreesAcrossAllEngines)
{
    for (ConfigId cfg : {ConfigId::Baseline, ConfigId::SafeFlid,
                         ConfigId::SafeFlidInlineCxprop}) {
        BuildResult build = buildSource("arith_sweep", kArithSweep,
                                        configFor(cfg, "Mica2"));
        std::string label = std::string("arith_sweep / ") +
                            configName(cfg);

        ir::Module m = build.module.clone();
        ir::HwBus bus;
        ir::InterpOptions iopts;
        iopts.stepLimit = 50'000'000;
        ir::Interp interp(m, &bus, iopts);
        auto res = interp.run("main");
        ASSERT_EQ(res.reason, ir::StopReason::Returned)
            << label << ": " << res.detail;
        std::string interpUart;
        for (const auto &w : bus.writeLog())
            if (w.addr == dev::kRegUartData)
                interpUart.push_back(static_cast<char>(w.value));

        Machine legacy(build.image, 1, ExecMode::Legacy);
        Machine pre(build.image, 1, ExecMode::Predecoded);
        Machine thr(build.image, 1, ExecMode::Threaded);
        legacy.boot();
        pre.boot();
        thr.boot();
        legacy.runUntilCycle(50'000'000);
        pre.runUntilCycle(50'000'000);
        thr.runUntilCycle(50'000'000);
        ASSERT_TRUE(legacy.halted()) << label;
        ASSERT_FALSE(legacy.wedged()) << label;
        expectSame(statsOf(legacy), statsOf(pre),
                   label + " [predecoded]");
        expectSame(statsOf(legacy), statsOf(thr),
                   label + " [threaded]");
        EXPECT_EQ(interpUart, legacy.devices().uartLog()) << label;
        EXPECT_FALSE(interpUart.empty()) << label;
    }
}

/** The minimized div-by-zero divergence the fuzzer's first audit
 *  found: interp used to trap where both machine cores returned 0. */
TEST(SimEquivalence, DivByZeroProducesZeroOnEveryEngine)
{
    const char *kDiv0 =
        "u16 z;"
        "u16 main() {"
        "  stos_uart_put_u16((u16)(123 / z));"
        "  stos_uart_put_u16((u16)(123 % z));"
        "  return 0;"
        "}";
    BuildResult build = buildSource(
        "div0", kDiv0, configFor(ConfigId::Baseline, "Mica2"));

    ir::Module m = build.module.clone();
    ir::HwBus bus;
    ir::Interp interp(m, &bus);
    auto r = interp.run("main");
    ASSERT_EQ(r.reason, ir::StopReason::Returned) << r.detail;
    std::string interpUart;
    for (const auto &w : bus.writeLog())
        if (w.addr == dev::kRegUartData)
            interpUart.push_back(static_cast<char>(w.value));

    Machine legacy(build.image, 1, ExecMode::Legacy);
    Machine pre(build.image, 1, ExecMode::Predecoded);
    Machine thr(build.image, 1, ExecMode::Threaded);
    legacy.boot();
    pre.boot();
    thr.boot();
    legacy.runUntilCycle(1'000'000);
    pre.runUntilCycle(1'000'000);
    thr.runUntilCycle(1'000'000);
    ASSERT_TRUE(legacy.halted());
    expectSame(statsOf(legacy), statsOf(pre), "div0 [predecoded]");
    expectSame(statsOf(legacy), statsOf(thr), "div0 [threaded]");
    EXPECT_EQ(interpUart, legacy.devices().uartLog());
}

TEST(SimEquivalence, PredecodedNetworkClampsToRequestedCycles)
{
    // The lookahead scheduler must land every mote exactly on the
    // requested cycle, including durations that are not multiples of
    // any window size, and keep doing so across consecutive runs.
    const auto &app = tinyos::appByName("CntToLedsAndRfm");
    BuildResult build =
        buildApp(app, configFor(ConfigId::Baseline, app.platform));
    for (unsigned threads : {1u, 3u}) {
        Network net({threads == 1 ? ExecMode::Threaded
                                  : ExecMode::Predecoded,
                     true, threads});
        net.addMote(build.image, 1);
        net.addMote(build.image, 2);
        net.addMote(build.image, 3);
        uint64_t n = 123'457;  // prime-ish: no window divides it
        net.run(n);
        for (size_t i = 0; i < net.size(); ++i)
            EXPECT_EQ(net.mote(i).cycles(), n) << "threads=" << threads;
        net.run(100);
        for (size_t i = 0; i < net.size(); ++i)
            EXPECT_EQ(net.mote(i).cycles(), n + 100)
                << "threads=" << threads;
    }
}

TEST(SimEquivalence, ParallelNetworkIsDeterministic)
{
    const BuildReport &rep = matrix();
    const BuildRecord *surge =
        rep.find("Surge", configName(ConfigId::SafeFlidInlineCxprop));
    ASSERT_NE(surge, nullptr);
    auto a = runNetwork(*surge, rep, {ExecMode::Threaded, true, 4},
                        kCycles);
    auto b = runNetwork(*surge, rep, {ExecMode::Threaded, true, 4},
                        kCycles);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectSame(a[i], b[i], "mote " + std::to_string(i));
}

} // namespace
} // namespace stos
