/**
 * @file
 * Fault-injection determinism suite (sim/fault.h). The contract under
 * test: a fault campaign is a pure function of its seed — the same
 * FaultOptions produce byte-identical MoteSnapshots on the legacy
 * lockstep scheduler, the predecoded serial lookahead scheduler, and
 * the predecoded window-parallel scheduler; different seeds produce
 * different outcomes; reboots preserve the persistent counters and
 * the bounded trap log; radio loss/corruption/duplication rates land
 * inside statistical bounds; early-exit and the wall-clock watchdog
 * degrade gracefully without changing results.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "core/pipeline.h"
#include "sim/decoded.h"
#include "sim/fault.h"
#include "sim/machine.h"
#include "sim/stats.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::sim;

constexpr uint64_t kCycles = 2'000'000;

void
expectSame(const MoteSnapshot &a, const MoteSnapshot &b,
           const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.instructions, b.instructions) << label;
    EXPECT_EQ(a.traps, b.traps) << label;
    EXPECT_EQ(a.reboots, b.reboots) << label;
    EXPECT_EQ(a.crashes, b.crashes) << label;
    EXPECT_EQ(a.uartLog, b.uartLog) << label;
    EXPECT_TRUE(a == b) << label << " (full snapshot)";
}

TEST(FaultPlan, DeterministicAndSeedSensitive)
{
    FaultOptions fo;
    fo.seed = 7;
    fo.memFlips = 5;
    fo.regFlips = 3;
    fo.crashes = 2;
    auto a = scheduleFaults(fo, 1, 0, kCycles);
    auto b = scheduleFaults(fo, 1, 0, kCycles);
    ASSERT_EQ(a.size(), 10u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].bit, b[i].bit);
    }
    // Sorted by cycle, and past the boot-grace span.
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a[i - 1].at, a[i].at);
    for (const auto &e : a)
        EXPECT_GT(e.at, kCycles / 16);
    // A different seed (or node) reshuffles the schedule.
    fo.seed = 8;
    auto c = scheduleFaults(fo, 1, 0, kCycles);
    bool differs = false;
    for (size_t i = 0; i < c.size(); ++i)
        differs = differs || c[i].at != a[i].at || c[i].addr != a[i].addr;
    EXPECT_TRUE(differs);
}

TEST(FaultPlan, SpecParserAcceptsAndRejects)
{
    FaultOptions fo;
    std::string err;
    ASSERT_TRUE(parseFaultSpec(
        "mem=8,reg=4,crash=1,loss=0.1,corrupt=0.05,dup=0.02", &fo,
        &err))
        << err;
    EXPECT_EQ(fo.memFlips, 8u);
    EXPECT_EQ(fo.regFlips, 4u);
    EXPECT_EQ(fo.crashes, 1u);
    EXPECT_DOUBLE_EQ(fo.radioLoss, 0.1);
    EXPECT_DOUBLE_EQ(fo.radioCorrupt, 0.05);
    EXPECT_DOUBLE_EQ(fo.radioDup, 0.02);
    EXPECT_TRUE(fo.injectsState());
    EXPECT_TRUE(fo.faultsRadio());
    FaultOptions bad;
    EXPECT_FALSE(parseFaultSpec("mem=x", &bad, &err));
    EXPECT_FALSE(parseFaultSpec("loss=1.5", &bad, &err));
    EXPECT_FALSE(parseFaultSpec("bogus=1", &bad, &err));
    RecoveryPolicy p;
    EXPECT_TRUE(parseRecoveryPolicy("reboot-on-trap", &p));
    EXPECT_EQ(p, RecoveryPolicy::RebootOnTrap);
    EXPECT_FALSE(parseRecoveryPolicy("explode", &p));
    // Attack-shaped keys (CFI attack suite).
    FaultOptions atk;
    ASSERT_TRUE(parseFaultSpec("ptr=1,ret=2,val=238,target=handler",
                               &atk, &err))
        << err;
    EXPECT_EQ(atk.ptrOverwrites, 1u);
    EXPECT_EQ(atk.retSmashes, 2u);
    EXPECT_EQ(atk.attackValue, 238u);
    EXPECT_EQ(atk.attackGlobal, "handler");
    EXPECT_TRUE(atk.injectsState());
}

/** Run CntToLedsAndRfm as a 2-mote network under `opts`, return every
 *  mote's snapshot. */
std::vector<MoteSnapshot>
runFaulted(const backend::MProgram &img, NetworkOptions opts,
           uint64_t cycles = kCycles)
{
    Network net(opts);
    net.addMote(img, 1);
    net.addMote(img, 2);
    net.run(cycles);
    std::vector<MoteSnapshot> out;
    for (size_t i = 0; i < net.size(); ++i)
        out.push_back(snapshotOf(net.mote(i)));
    return out;
}

const backend::MProgram &
radioImage()
{
    static const BuildResult build = buildApp(
        tinyos::appByName("CntToLedsAndRfm"),
        configFor(ConfigId::SafeFlid, "Mica2"));
    return build.image;
}

TEST(FaultDeterminism, StateFaultsEquivalentAcrossCoresAndSchedulers)
{
    FaultOptions fo;
    fo.seed = 42;
    fo.memFlips = 6;
    fo.regFlips = 3;
    fo.crashes = 1;
    fo.recovery = RecoveryPolicy::RebootOnTrap;

    NetworkOptions legacy{ExecMode::Legacy, false, 1};
    legacy.faults = fo;
    NetworkOptions serial{ExecMode::Predecoded, true, 1};
    serial.faults = fo;
    NetworkOptions parallel{ExecMode::Predecoded, true, 2};
    parallel.faults = fo;

    auto a = runFaulted(radioImage(), legacy);
    auto b = runFaulted(radioImage(), serial);
    auto c = runFaulted(radioImage(), parallel);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), c.size());
    bool anyFault = false;
    for (size_t i = 0; i < a.size(); ++i) {
        std::string label = "mote " + std::to_string(i);
        expectSame(a[i], b[i], label + " [legacy vs serial]");
        expectSame(a[i], c[i], label + " [legacy vs parallel]");
        anyFault = anyFault || a[i].crashes > 0 || a[i].traps > 0 ||
                   a[i].reboots > 0;
    }
    // The scheduled crash must actually have landed on node 1.
    EXPECT_GE(a[0].crashes, 1u);
    EXPECT_TRUE(anyFault);
}

TEST(FaultDeterminism, RadioFaultsEquivalentAcrossSchedulers)
{
    FaultOptions fo;
    fo.seed = 9;
    fo.radioLoss = 0.3;
    fo.radioCorrupt = 0.2;
    fo.radioDup = 0.2;

    NetworkOptions legacy{ExecMode::Legacy, false, 1};
    legacy.faults = fo;
    NetworkOptions serial{ExecMode::Predecoded, true, 1};
    serial.faults = fo;
    NetworkOptions parallel{ExecMode::Predecoded, true, 2};
    parallel.faults = fo;

    auto a = runFaulted(radioImage(), legacy);
    auto b = runFaulted(radioImage(), serial);
    auto c = runFaulted(radioImage(), parallel);
    uint32_t touched = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        std::string label = "mote " + std::to_string(i);
        expectSame(a[i], b[i], label + " [legacy vs serial]");
        expectSame(a[i], c[i], label + " [legacy vs parallel]");
        touched += a[i].packetsDropped + a[i].packetsCorrupted +
                   a[i].packetsDuplicated;
    }
    EXPECT_GT(touched, 0u);
}

TEST(FaultDeterminism, DifferentSeedsProduceDifferentOutcomes)
{
    FaultOptions fo;
    fo.memFlips = 8;
    fo.regFlips = 4;
    fo.recovery = RecoveryPolicy::RebootOnTrap;

    fo.seed = 42;
    NetworkOptions o1{ExecMode::Predecoded, true, 1};
    o1.faults = fo;
    auto a = runFaulted(radioImage(), o1);

    fo.seed = 43;
    NetworkOptions o2{ExecMode::Predecoded, true, 1};
    o2.faults = fo;
    auto b = runFaulted(radioImage(), o2);

    bool differs = false;
    for (size_t i = 0; i < a.size(); ++i)
        differs = differs || !(a[i] == b[i]);
    EXPECT_TRUE(differs)
        << "seeds 42 and 43 produced byte-identical networks";
}

/** Prints one '.' per scheduler pass, then walks off the end of a
 *  buffer: safe builds trap on a deterministic cycle, forever. */
const char *kTrapLoop = R"TC(
u8 buf[4];
u8 n;
task void poke() {
    stos_uart_put(46);
    n = (u8)(n + 1);
    buf[n + 6] = 1;
    post poke;
}
void main() {
    post poke;
    stos_run_scheduler();
}
)TC";

TEST(FaultRecovery, RebootOnTrapPreservesCountersAndLog)
{
    BuildResult build = buildSource(
        "traploop", kTrapLoop, configFor(ConfigId::SafeFlid, "Mica2"));
    for (ExecMode mode : {ExecMode::Legacy, ExecMode::Predecoded}) {
        Machine m(build.image, 1, mode);
        m.setRecoveryPolicy(RecoveryPolicy::RebootOnTrap);
        m.boot();
        m.runUntilCycle(kCycles);
        std::string label =
            mode == ExecMode::Legacy ? "legacy" : "predecoded";
        // Every trap rebooted the mote, the counters accumulated.
        EXPECT_FALSE(m.wedged()) << label;
        EXPECT_GE(m.traps(), 2u) << label;
        EXPECT_EQ(m.traps(), m.reboots()) << label;
        EXPECT_GE(m.downCycles(),
                  (m.reboots() - 1) * kRebootLatencyCycles)
            << label;
        // Re-traps almost immediately after each reboot: the mote is
        // down most of the run, but never permanently.
        EXPECT_LT(m.availability(), 1.0) << label;
        EXPECT_GT(m.availability(), 0.0) << label;
        // The bounded log: first entry backs failedFlid, capacity 8.
        ASSERT_FALSE(m.trapLog().empty()) << label;
        EXPECT_EQ(m.failedFlid(), m.trapLog().front().flid) << label;
        EXPECT_NE(m.failedFlid(), 0u) << label;
        EXPECT_LE(m.trapLog().size(), kMaxTrapLog) << label;
        // Each reboot reprinted the pre-trap dots: more output than a
        // single run to the wedge.
        EXPECT_GE(m.devices().uartLog().size(), 2u) << label;
        for (char ch : m.devices().uartLog())
            EXPECT_EQ(ch, '.') << label;
    }
    // And both cores agree byte-for-byte.
    Machine a(build.image, 1, ExecMode::Legacy);
    Machine b(build.image, 1, ExecMode::Predecoded);
    a.setRecoveryPolicy(RecoveryPolicy::RebootOnTrap);
    b.setRecoveryPolicy(RecoveryPolicy::RebootOnTrap);
    a.boot();
    b.boot();
    a.runUntilCycle(kCycles);
    b.runUntilCycle(kCycles);
    expectSame(snapshotOf(a), snapshotOf(b), "traploop");
    EXPECT_EQ(a.trapLog().size(), b.trapLog().size());
    for (size_t i = 0; i < a.trapLog().size(); ++i)
        EXPECT_TRUE(a.trapLog()[i] == b.trapLog()[i]) << i;
}

TEST(FaultRecovery, WedgePolicyMatchesLegacyBehaviour)
{
    BuildResult build = buildSource(
        "traploop", kTrapLoop, configFor(ConfigId::SafeFlid, "Mica2"));
    Machine m(build.image, 1, ExecMode::Predecoded);
    m.boot();  // default policy: Wedge
    m.runUntilCycle(kCycles);
    EXPECT_TRUE(m.wedged());
    EXPECT_EQ(m.traps(), 1u);
    EXPECT_EQ(m.reboots(), 0u);
    EXPECT_EQ(m.cycles(), kCycles);
    EXPECT_GT(m.wedgedCycles(), 0u);
    EXPECT_LT(m.availability(), 1.0);
}

TEST(FaultRecovery, RebootOnWedgeRecovers)
{
    BuildResult build = buildSource(
        "traploop", kTrapLoop, configFor(ConfigId::SafeFlid, "Mica2"));
    for (ExecMode mode : {ExecMode::Legacy, ExecMode::Predecoded}) {
        Machine m(build.image, 1, mode);
        m.setRecoveryPolicy(RecoveryPolicy::RebootOnWedge);
        m.boot();
        m.runUntilCycle(kCycles);
        std::string label =
            mode == ExecMode::Legacy ? "legacy" : "predecoded";
        EXPECT_GE(m.reboots(), 2u) << label;
        EXPECT_GE(m.traps(), 2u) << label;
        EXPECT_LT(m.availability(), 1.0) << label;
    }
}

TEST(FaultRecovery, CrashRevivesAWedgedMote)
{
    // Wedge policy + a scheduled crash after the trap: the power
    // glitch must reboot the wedged mote and execution must resume
    // (more instructions than the wedge-only run).
    BuildResult build = buildSource(
        "traploop", kTrapLoop, configFor(ConfigId::SafeFlid, "Mica2"));
    Machine wedgeOnly(build.image, 1, ExecMode::Predecoded);
    wedgeOnly.boot();
    wedgeOnly.runUntilCycle(kCycles);
    ASSERT_TRUE(wedgeOnly.wedged());

    for (ExecMode mode : {ExecMode::Legacy, ExecMode::Predecoded}) {
        Machine m(build.image, 1, mode);
        m.boot();
        m.setFaultEvents({{kCycles / 2, FaultKind::Crash, 0, 0}});
        m.runUntilCycle(kCycles);
        std::string label =
            mode == ExecMode::Legacy ? "legacy" : "predecoded";
        EXPECT_EQ(m.crashes(), 1u) << label;
        EXPECT_EQ(m.reboots(), 1u) << label;
        EXPECT_GT(m.instructionsExecuted(),
                  wedgeOnly.instructionsExecuted())
            << label;
    }
}

TEST(FaultRadio, LossRateWithinStatisticalBounds)
{
    FaultOptions fo;
    fo.seed = 5;
    fo.radioLoss = 0.5;
    NetworkOptions o{ExecMode::Predecoded, true, 1};
    o.faults = fo;
    auto stats = runFaulted(radioImage(), o, 8'000'000);
    uint32_t dropped = 0, received = 0;
    for (const auto &s : stats) {
        dropped += s.packetsDropped;
        received += s.packetsReceived;
    }
    ASSERT_GT(dropped + received, 10u)
        << "workload sent too few packets to measure a rate";
    double rate = static_cast<double>(dropped) /
                  static_cast<double>(dropped + received);
    EXPECT_GT(rate, 0.2);
    EXPECT_LT(rate, 0.8);
}

TEST(FaultRadio, CorruptAndDupCountersMove)
{
    NetworkOptions clean{ExecMode::Predecoded, true, 1};
    auto base = runFaulted(radioImage(), clean, 4'000'000);

    FaultOptions fo;
    fo.radioCorrupt = 1.0;
    NetworkOptions o1{ExecMode::Predecoded, true, 1};
    o1.faults = fo;
    auto corrupted = runFaulted(radioImage(), o1, 4'000'000);
    uint32_t corruptCount = 0;
    for (const auto &s : corrupted)
        corruptCount += s.packetsCorrupted;
    EXPECT_GT(corruptCount, 0u);

    FaultOptions fd;
    fd.radioDup = 1.0;
    NetworkOptions o2{ExecMode::Predecoded, true, 1};
    o2.faults = fd;
    auto duped = runFaulted(radioImage(), o2, 4'000'000);
    uint32_t dupCount = 0, dupRecv = 0, baseRecv = 0;
    for (size_t i = 0; i < duped.size(); ++i) {
        dupCount += duped[i].packetsDuplicated;
        dupRecv += duped[i].packetsReceived;
        baseRecv += base[i].packetsReceived;
    }
    EXPECT_GT(dupCount, 0u);
    EXPECT_GT(dupRecv, baseRecv);
}

TEST(EarlyExit, IdenticalStatsWithFewerWindows)
{
    // Two motes that both trap and wedge early: with early-exit the
    // network takes one final fast-forward instead of thousands of
    // idle lockstep quanta — and every counter stays identical.
    BuildResult build = buildSource(
        "traploop", kTrapLoop, configFor(ConfigId::SafeFlid, "Mica2"));
    auto runWith = [&](bool earlyExit) {
        NetworkOptions o{ExecMode::Legacy, false, 1};
        o.earlyExit = earlyExit;
        Network net(o);
        net.addMote(build.image, 1);
        net.addMote(build.image, 2);
        net.run(kCycles);
        std::vector<MoteSnapshot> snaps;
        for (size_t i = 0; i < net.size(); ++i)
            snaps.push_back(snapshotOf(net.mote(i)));
        return std::make_pair(snaps, net.windows());
    };
    auto [fast, fastWindows] = runWith(true);
    auto [slow, slowWindows] = runWith(false);
    ASSERT_EQ(fast.size(), slow.size());
    for (size_t i = 0; i < fast.size(); ++i)
        expectSame(fast[i], slow[i], "mote " + std::to_string(i));
    EXPECT_LT(fastWindows, slowWindows / 4)
        << "early-exit should skip most idle lockstep windows";
}

TEST(Watchdog, MarksRunawayCellFailedInsteadOfHanging)
{
    // An impossibly tight wall-clock limit on a long simulation: the
    // cell must come back failed with the watchdog diagnostic, and
    // the other cells of the matrix must be unaffected.
    Experiment exp;
    exp.options().jobs = 1;
    exp.options().seconds = 30.0;  // ~221M cycles: plenty to trip it
    exp.options().cellTimeout = 1e-4;
    exp.addApp(tinyos::appByName("BlinkTask"));
    exp.addConfig(ConfigId::Baseline);
    ExperimentReport rep = exp.run();
    ASSERT_TRUE(rep.simulated);
    const SimRecord &r = rep.sims.at(0, 0);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("watchdog"), std::string::npos) << r.error;
}

TEST(Watchdog, GenerousLimitChangesNothing)
{
    FaultOptions fo;
    fo.memFlips = 4;
    fo.recovery = RecoveryPolicy::RebootOnTrap;
    NetworkOptions plain{ExecMode::Predecoded, true, 1};
    plain.faults = fo;
    NetworkOptions guarded = plain;
    guarded.wallLimitMs = 60'000.0;
    auto a = runFaulted(radioImage(), plain);
    auto b = runFaulted(radioImage(), guarded);
    for (size_t i = 0; i < a.size(); ++i)
        expectSame(a[i], b[i], "mote " + std::to_string(i));
}

TEST(FaultCompanions, CompanionsFaultedOnlyOnRequest)
{
    FaultOptions fo;
    fo.seed = 9;
    fo.memFlips = 6;
    fo.regFlips = 3;
    fo.crashes = 2;
    fo.recovery = RecoveryPolicy::RebootOnTrap;

    NetworkOptions solo{ExecMode::Predecoded, true, 1};
    solo.faults = fo;
    NetworkOptions both = solo;
    both.faults.faultCompanions = true;

    auto soloRun = runFaulted(radioImage(), solo);
    auto bothRun = runFaulted(radioImage(), both);
    ASSERT_EQ(soloRun.size(), 2u);
    ASSERT_EQ(bothRun.size(), 2u);

    // Node 1 carries the campaign either way; by default the
    // companion keeps running untouched so the workload keeps a live
    // peer (no state faults, so nothing to trap, crash, or recover).
    EXPECT_GE(soloRun[0].crashes, 1u);
    EXPECT_EQ(soloRun[1].crashes, 0u);
    EXPECT_EQ(soloRun[1].traps, 0u);
    EXPECT_EQ(soloRun[1].reboots, 0u);

    // With faultCompanions the companion gets its own node-mixed
    // schedule — and the whole 2-mote campaign stays deterministic
    // across cores and schedulers.
    EXPECT_GE(bothRun[1].crashes, 1u);
    NetworkOptions legacy{ExecMode::Legacy, false, 1};
    legacy.faults = both.faults;
    NetworkOptions parallel{ExecMode::Predecoded, true, 2};
    parallel.faults = both.faults;
    auto l = runFaulted(radioImage(), legacy);
    auto p = runFaulted(radioImage(), parallel);
    for (size_t i = 0; i < bothRun.size(); ++i) {
        std::string label = "mote " + std::to_string(i);
        expectSame(l[i], bothRun[i], label + " [legacy vs serial]");
        expectSame(l[i], p[i], label + " [legacy vs parallel]");
    }
}

TEST(CfiTrapLog, CfiTrapsFlowThroughLogRebootAndEmitters)
{
    // A corrupted-fnptr campaign against the attack victim under a
    // CFI column: the trap must land in the bounded trap log with the
    // forward CFI kind, survive reboot-on-trap, and surface in the
    // CSV/JSON report emitters.
    Experiment exp;
    exp.options().seconds = 0.25;
    exp.options().faults.ptrOverwrites = 1;
    exp.options().faults.attackGlobal = "handler";
    exp.options().faults.attackValue = 0xEE;
    exp.options().faults.recovery = RecoveryPolicy::RebootOnTrap;
    exp.addApp(tinyos::attackAppByName("AttackFnptrDispatch"));
    exp.addConfig(ConfigId::SafeFlidCfi);
    ExperimentReport rep = exp.run();
    ASSERT_TRUE(rep.allOk());

    const SimRecord &r = rep.sims.at(0, 0);
    EXPECT_EQ(r.outcome.cfiTraps, 1u);
    EXPECT_GE(r.outcome.reboots, 1u);
    EXPECT_FALSE(r.outcome.wedged)
        << "reboot-on-trap must recover from a CFI trap";
    ASSERT_FALSE(r.outcome.trapLog.empty());
    EXPECT_EQ(r.outcome.trapLog.front().kind,
              backend::kTrapKindCfiForward);

    std::ostringstream csv;
    rep.sims.emitCsv(csv);
    EXPECT_NE(csv.str().find("cfi_traps"), std::string::npos);
    std::ostringstream js;
    rep.sims.emitJson(js);
    EXPECT_NE(js.str().find("\"cfi_traps\": 1"), std::string::npos);
    EXPECT_NE(js.str().find("\"kind\": 1"), std::string::npos);

    // The serial/parallel gate covers the attacked cell too.
    std::string why;
    EXPECT_TRUE(exp.verifySerialEquivalence(rep, &why)) << why;
}

TEST(FaultedExperiment, SerialEquivalenceGateCoversFaults)
{
    Experiment exp;
    exp.options().jobs = 2;
    exp.options().seconds = 0.25;
    exp.options().netThreads = 2;
    exp.options().faults.seed = 11;
    exp.options().faults.memFlips = 6;
    exp.options().faults.regFlips = 3;
    exp.options().faults.radioLoss = 0.2;
    exp.options().faults.radioCorrupt = 0.1;
    exp.options().faults.recovery = RecoveryPolicy::RebootOnTrap;
    exp.addApp(tinyos::appByName("CntToLedsAndRfm"));
    exp.addApp(tinyos::appByName("GenericBase"));
    exp.addConfig(ConfigId::Baseline);
    exp.addConfig(ConfigId::SafeFlid);
    ExperimentReport rep = exp.run();
    ASSERT_TRUE(rep.allOk());
    std::string why;
    EXPECT_TRUE(exp.verifySerialEquivalence(rep, &why)) << why;
}

} // namespace
} // namespace stos
