/**
 * @file
 * Unit tests for the TinyCIL data structures: type interning, layout
 * (including fat-pointer sizes), builder, printer, and verifier.
 */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/module.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace stos::ir {
namespace {

TEST(TypeTable, InterningIsStable)
{
    TypeTable tt;
    EXPECT_EQ(tt.u8(), tt.u8());
    EXPECT_EQ(tt.intTy(16, true), tt.i16());
    EXPECT_NE(tt.u8(), tt.i8());
    EXPECT_NE(tt.u16(), tt.u32());
    TypeId p1 = tt.ptrTy(tt.u8());
    TypeId p2 = tt.ptrTy(tt.u8());
    EXPECT_EQ(p1, p2);
    EXPECT_NE(p1, tt.ptrTy(tt.u16()));
}

TEST(TypeTable, PtrKindsAreDistinctTypes)
{
    TypeTable tt;
    TypeId pu = tt.ptrTy(tt.u8(), PtrKind::Unchecked);
    TypeId ps = tt.ptrTy(tt.u8(), PtrKind::Safe);
    TypeId pq = tt.ptrTy(tt.u8(), PtrKind::Seq);
    EXPECT_NE(pu, ps);
    EXPECT_NE(ps, pq);
    EXPECT_EQ(tt.withPtrKind(pu, PtrKind::Seq), pq);
}

TEST(Layout, ScalarSizes)
{
    Module m;
    auto &tt = m.types();
    EXPECT_EQ(m.typeSize(tt.u8()), 1u);
    EXPECT_EQ(m.typeSize(tt.i16()), 2u);
    EXPECT_EQ(m.typeSize(tt.u32()), 4u);
    EXPECT_EQ(m.typeSize(tt.boolTy()), 1u);
    EXPECT_EQ(m.typeSize(tt.fnPtrTy()), 2u);
}

TEST(Layout, FatPointerSizes)
{
    Module m;
    auto &tt = m.types();
    TypeId u8 = tt.u8();
    EXPECT_EQ(m.typeSize(tt.ptrTy(u8, PtrKind::Unchecked)), 2u);
    EXPECT_EQ(m.typeSize(tt.ptrTy(u8, PtrKind::Safe)), 2u);
    EXPECT_EQ(m.typeSize(tt.ptrTy(u8, PtrKind::FSeq)), 4u);
    EXPECT_EQ(m.typeSize(tt.ptrTy(u8, PtrKind::Seq)), 6u);
    EXPECT_EQ(m.typeSize(tt.ptrTy(u8, PtrKind::Wild)), 4u);
}

TEST(Layout, StructOffsetsChangeWithPointerKinds)
{
    Module m;
    auto &tt = m.types();
    StructType s;
    s.name = "msg";
    s.fields.push_back({"p", tt.ptrTy(tt.u8())});
    s.fields.push_back({"len", tt.u16()});
    uint32_t sid = m.addStruct(s);
    EXPECT_EQ(m.fieldOffset(sid, 1), 2u);
    EXPECT_EQ(m.structSize(sid), 4u);
    // Re-kind the pointer field as SEQ: offsets shift, struct grows.
    m.structAt(sid).fields[0].type = tt.ptrTy(tt.u8(), PtrKind::Seq);
    EXPECT_EQ(m.fieldOffset(sid, 1), 6u);
    EXPECT_EQ(m.structSize(sid), 8u);
}

TEST(Layout, ArraySizes)
{
    Module m;
    auto &tt = m.types();
    EXPECT_EQ(m.typeSize(tt.arrayTy(tt.u16(), 10)), 20u);
    EXPECT_EQ(m.typeSize(tt.arrayTy(tt.arrayTy(tt.u8(), 4), 3)), 12u);
}

Function
makeReturn42(Module &m)
{
    Function f;
    f.name = "f";
    f.retType = m.types().u16();
    return f;
}

TEST(Builder, EmitsWellFormedFunction)
{
    Module m;
    Function f = makeReturn42(m);
    f.addBlock("entry");
    {
        Builder b(m, f);
        b.setBlock(0);
        uint32_t v = b.constI(m.types().u16(), 42);
        b.ret(Operand::vreg(v));
    }
    m.addFunction(std::move(f));
    EXPECT_TRUE(verifyModule(m).empty());
}

TEST(Verifier, CatchesMissingTerminator)
{
    Module m;
    Function f;
    f.name = "g";
    f.retType = m.types().voidTy();
    f.addBlock("entry");
    Instr nop;
    nop.op = Opcode::Nop;
    f.blocks[0].instrs.push_back(nop);
    m.addFunction(std::move(f));
    auto problems = verifyModule(m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesBadBranchTarget)
{
    Module m;
    Function f;
    f.name = "g";
    f.retType = m.types().voidTy();
    f.addBlock("entry");
    Instr br;
    br.op = Opcode::Br;
    br.b0 = 99;
    f.blocks[0].instrs.push_back(br);
    m.addFunction(std::move(f));
    auto problems = verifyModule(m);
    ASSERT_FALSE(problems.empty());
}

TEST(Verifier, CatchesCallArity)
{
    Module m;
    Function callee;
    callee.name = "callee";
    callee.retType = m.types().voidTy();
    callee.params.push_back(callee.addVReg(m.types().u8(), "a"));
    callee.addBlock("entry");
    Instr r;
    r.op = Opcode::Ret;
    callee.blocks[0].instrs.push_back(r);
    uint32_t cid = m.addFunction(std::move(callee));

    Function f;
    f.name = "caller";
    f.retType = m.types().voidTy();
    f.addBlock("entry");
    Instr call;
    call.op = Opcode::Call;
    call.callee = cid;
    call.type = m.types().voidTy();
    f.blocks[0].instrs.push_back(call);
    Instr r2;
    r2.op = Opcode::Ret;
    f.blocks[0].instrs.push_back(r2);
    m.addFunction(std::move(f));
    auto problems = verifyModule(m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("args"), std::string::npos);
}

TEST(Printer, ContainsStructure)
{
    Module m("demo");
    Global g;
    g.name = "counter";
    g.type = m.types().u16();
    m.addGlobal(std::move(g));
    Function f = makeReturn42(m);
    f.addBlock("entry");
    {
        Builder b(m, f);
        b.setBlock(0);
        uint32_t v = b.constI(m.types().u16(), 42);
        b.ret(Operand::vreg(v));
    }
    m.addFunction(std::move(f));
    std::string s = moduleToString(m);
    EXPECT_NE(s.find("module demo"), std::string::npos);
    EXPECT_NE(s.find("@counter"), std::string::npos);
    EXPECT_NE(s.find("func u16 f()"), std::string::npos);
    EXPECT_NE(s.find("ret"), std::string::npos);
}

TEST(Module, DeadEntitiesAreHidden)
{
    Module m;
    Global g;
    g.name = "x";
    g.type = m.types().u8();
    uint32_t id = m.addGlobal(std::move(g));
    EXPECT_NE(m.findGlobal("x"), nullptr);
    m.globalAt(id).dead = true;
    EXPECT_EQ(m.findGlobal("x"), nullptr);
}

} // namespace
} // namespace stos::ir
