/**
 * @file
 * End-to-end pipeline tests: every benchmark app builds under every
 * configuration, safe builds execute correctly on the simulator, the
 * paper's qualitative relationships hold (code-size ordering, check
 * elimination ordering, RAM collapse with FLIDs), and safety actually
 * catches the bugs the unsafe build lets through.
 */
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "safety/flid.h"
#include "safety/runtime.h"
#include "sim/machine.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::tinyos;

TEST(Pipeline, AllAppsBuildInBaseline)
{
    for (const auto &app : allApps()) {
        PipelineConfig cfg = configFor(ConfigId::Baseline, app.platform);
        BuildResult r = buildApp(app, cfg);
        EXPECT_GT(r.codeBytes, 200u) << app.name;
        EXPECT_LT(r.codeBytes, 60000u) << app.name;
    }
}

TEST(Pipeline, AllAppsBuildSafeOptimized)
{
    for (const auto &app : allApps()) {
        PipelineConfig cfg =
            configFor(ConfigId::SafeFlidInlineCxprop, app.platform);
        BuildResult r = buildApp(app, cfg);
        EXPECT_GT(r.safetyReport.checksInserted, 0u) << app.name;
    }
}

TEST(Pipeline, BlinkRunsAndBlinksUnsafe)
{
    const auto &app = appByName("BlinkTask");
    BuildResult r =
        buildApp(app, configFor(ConfigId::Baseline, app.platform));
    sim::Machine m(r.image, 1);
    m.boot();
    m.runUntilCycle(7'372'800);  // one simulated second
    EXPECT_FALSE(m.halted());
    EXPECT_FALSE(m.wedged());
    EXPECT_GT(m.devices().ledWrites(), 5u);
    EXPECT_LT(m.dutyCycle(), 0.20);
}

TEST(Pipeline, BlinkRunsAndBlinksSafe)
{
    const auto &app = appByName("BlinkTask");
    BuildResult r = buildApp(
        app, configFor(ConfigId::SafeFlidInlineCxprop, app.platform));
    sim::Machine m(r.image, 1);
    m.boot();
    m.runUntilCycle(7'372'800);
    EXPECT_FALSE(m.wedged()) << "no check should fire, flid="
                             << m.failedFlid();
    EXPECT_GT(m.devices().ledWrites(), 5u);
}

TEST(Pipeline, SafeAndUnsafeBlinkBehaveIdentically)
{
    const auto &app = appByName("BlinkTask");
    BuildResult unsafe =
        buildApp(app, configFor(ConfigId::Baseline, app.platform));
    BuildResult safe =
        buildApp(app, configFor(ConfigId::SafeFlid, app.platform));
    sim::Machine mu(unsafe.image, 1), ms(safe.image, 1);
    mu.boot();
    ms.boot();
    mu.runUntilCycle(3'000'000);
    ms.runUntilCycle(3'000'000);
    EXPECT_EQ(mu.devices().ledWrites(), ms.devices().ledWrites());
    EXPECT_EQ(mu.devices().ledState(), ms.devices().ledState());
}

TEST(Pipeline, VerboseCostsMoreRamThanFlid)
{
    const auto &app = appByName("SenseToRfm");
    BuildResult verbose = buildApp(
        app, configFor(ConfigId::SafeVerboseRam, app.platform));
    BuildResult flid =
        buildApp(app, configFor(ConfigId::SafeFlid, app.platform));
    EXPECT_GT(verbose.ramBytes, flid.ramBytes);
}

TEST(Pipeline, VerboseRomMovesStringsOutOfRam)
{
    const auto &app = appByName("SenseToRfm");
    BuildResult ram = buildApp(
        app, configFor(ConfigId::SafeVerboseRam, app.platform));
    BuildResult rom = buildApp(
        app, configFor(ConfigId::SafeVerboseRom, app.platform));
    EXPECT_LT(rom.ramBytes, ram.ramBytes);
    EXPECT_GT(rom.romDataBytes, ram.romDataBytes);
}

TEST(Pipeline, CxpropShrinksSafeCode)
{
    const auto &app = appByName("Surge");
    BuildResult plain =
        buildApp(app, configFor(ConfigId::SafeFlid, app.platform));
    BuildResult opt = buildApp(
        app, configFor(ConfigId::SafeFlidInlineCxprop, app.platform));
    EXPECT_LT(opt.codeBytes, plain.codeBytes);
    EXPECT_LE(opt.ramBytes, plain.ramBytes);
}

TEST(Pipeline, CheckEliminationOrdering)
{
    // Figure 2's qualitative result: inline+cXprop eliminates at
    // least as many checks as cXprop alone, which beats plain GCC.
    const auto &app = appByName("Oscilloscope");
    auto survivors = [&](CheckStrategy s) {
        return buildApp(app, configForStrategy(s, app.platform))
            .survivingChecks;
    };
    uint32_t gcc = survivors(CheckStrategy::GccOnly);
    uint32_t ccured = survivors(CheckStrategy::CcuredOpt);
    uint32_t cx = survivors(CheckStrategy::CcuredOptCxprop);
    uint32_t inl = survivors(CheckStrategy::CcuredOptInlineCxprop);
    EXPECT_LE(ccured, gcc);
    EXPECT_LE(cx, ccured);
    EXPECT_LE(inl, cx);
    EXPECT_GT(gcc, 0u);
}

TEST(Pipeline, SafetyCatchesOutOfBoundsWrite)
{
    // The defining behaviour: an off-by-one that silently corrupts a
    // neighbour in unsafe code traps with a FLID in the safe build.
    const char *buggy = R"TC(
        u8 buf[4];
        u8 victim;
        u8 idx;
        task void smash() {
            u8* p = buf;
            u8 i = 0;
            while (i <= idx) {     // idx reaches 4: off by one
                p[i] = 7;
                i = (u8)(i + 1);
            }
            if (idx < 4) { idx = (u8)(idx + 1); }
            stos_leds_set(victim);   // keep `victim` linked
            post smash;
        }
        interrupt(TIMER0) void on_t() { post smash; }
        void main() {
            stos_timer0_start(64);
            stos_run_scheduler();
        }
    )TC";
    PipelineConfig safeCfg = configFor(ConfigId::SafeFlid, "Mica2");
    BuildResult safe = buildSource("buggy", buggy, safeCfg);
    sim::Machine ms(safe.image, 1);
    ms.boot();
    ms.runUntilCycle(4'000'000);
    EXPECT_TRUE(ms.wedged()) << "bounds check should have fired";
    EXPECT_NE(ms.failedFlid(), 0u);
    // The FLID decodes to a real source location.
    std::string msg = safety::decodeFlid(safe.module, ms.failedFlid());
    EXPECT_NE(msg.find("buggy.tc"), std::string::npos) << msg;

    PipelineConfig unsafeCfg = configFor(ConfigId::Baseline, "Mica2");
    BuildResult un = buildSource("buggy", buggy, unsafeCfg);
    sim::Machine mu(un.image, 1);
    mu.boot();
    mu.runUntilCycle(4'000'000);
    EXPECT_FALSE(mu.wedged()) << "unsafe build corrupts silently";
    EXPECT_EQ(mu.readGlobal("victim", 1), 7u)
        << "neighbour should have been corrupted";
}

TEST(Pipeline, RadioAppsExchangePackets)
{
    const auto &app = appByName("RfmToLeds");
    BuildResult rx =
        buildApp(app, configFor(ConfigId::SafeFlid, app.platform));
    const auto &sender = appByName("CntToLedsAndRfm");
    BuildResult tx =
        buildApp(sender, configFor(ConfigId::Baseline, app.platform));
    sim::Network net;
    net.addMote(rx.image, 1);
    net.addMote(tx.image, 2);
    net.run(20'000'000);
    EXPECT_GT(net.mote(1).devices().packetsSent(), 3u);
    EXPECT_GT(net.mote(0).devices().packetsReceived(), 3u);
    EXPECT_GT(net.mote(0).devices().ledWrites(), 0u);
    EXPECT_FALSE(net.mote(0).wedged());
}

TEST(Pipeline, RuntimeFootprintCollapsesWhenTrimmed)
{
    // §2.3: naive runtime ~1.6KB RAM vs trimmed ~2 bytes.
    const char *minimal = R"TC(
        task void nothing() { }
        interrupt(TIMER0) void on_t() { post nothing; }
        void main() { stos_timer0_start(4096); stos_run_scheduler(); }
    )TC";
    PipelineConfig naive = configFor(ConfigId::SafeFlid, "Mica2");
    naive.safety.naiveRuntime = true;
    PipelineConfig trimmed = configFor(ConfigId::SafeFlidInlineCxprop,
                                       "Mica2");
    BuildResult big = buildSource("minimal", minimal, naive);
    BuildResult small = buildSource("minimal", minimal, trimmed);
    EXPECT_GT(big.ramBytes, 1000u);
    EXPECT_LT(small.ramBytes, big.ramBytes / 4);
    EXPECT_LT(small.codeBytes, big.codeBytes);
}

TEST(Pipeline, DutyCycleIsSane)
{
    const auto &app = appByName("BlinkTask");
    BuildResult base =
        buildApp(app, configFor(ConfigId::Baseline, app.platform));
    double duty = measureDutyCycle(app, base.image, 0.5);
    EXPECT_GT(duty, 0.0);
    EXPECT_LT(duty, 0.5) << "Blink should sleep most of the time";
}

} // namespace
} // namespace stos
