/**
 * @file
 * Unit tests for the safety (CCured-analogue) stage: hardware-access
 * refactoring, pointer-kind inference, check insertion, error-message
 * materialization, FLIDs, concurrency locking, and the runtime model.
 */
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "ir/interp.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "safety/ccured.h"
#include "safety/flid.h"
#include "safety/hwrefactor.h"
#include "safety/runtime.h"

namespace stos {
namespace {

using namespace stos::ir;
using namespace stos::safety;

Module
compile(const std::string &src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = frontend::compileTinyC({{"t.tc", src}}, diags, sm);
    EXPECT_FALSE(diags.hasErrors()) << diags.dump();
    return m;
}

SafetyReport
makeSafe(Module &m, SafetyConfig cfg = {})
{
    SafetyReport rep = applySafety(m, cfg);
    auto problems = verifyModule(m);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems[0]);
    return rep;
}

PtrKind
kindOfLocalPtr(const Module &m, const std::string &fn,
               const std::string &var)
{
    const Function *f = m.findFunc(fn);
    EXPECT_NE(f, nullptr);
    for (const auto &v : f->vregs) {
        if (v.name == var) {
            const Type &t = m.types().get(v.type);
            if (t.kind == TypeKind::Ptr)
                return t.ptrKind;
        }
    }
    for (const auto &l : f->locals) {
        if (l.name == var) {
            const Type &t = m.types().get(l.type);
            if (t.kind == TypeKind::Ptr)
                return t.ptrKind;
        }
    }
    ADD_FAILURE() << "no pointer " << var << " in " << fn;
    return PtrKind::Unchecked;
}

//---------------------------------------------------------------------
// Hardware refactoring
//---------------------------------------------------------------------

TEST(HwRefactor, RewritesConstantAddressAccess)
{
    Module m = compile(
        "hwreg u8 PORTB @ 0x25;"
        "void main() { u8* p = (u8*) 0x25; *p = 1; u8 v = *p; v = v; }");
    uint32_t n = refactorHardwareAccesses(m);
    EXPECT_EQ(n, 2u);
    int hwOps = 0;
    for (const auto &bb : m.findFunc("main")->blocks) {
        for (const auto &in : bb.instrs) {
            if (in.op == Opcode::HwRead || in.op == Opcode::HwWrite)
                ++hwOps;
        }
    }
    EXPECT_EQ(hwOps, 2);
}

TEST(HwRefactor, LeavesUnknownAddressesAlone)
{
    Module m = compile(
        "hwreg u8 PORTB @ 0x25;"
        "void main() { u8* p = (u8*) 0x99; *p = 1; }");
    EXPECT_EQ(refactorHardwareAccesses(m), 0u);
}

TEST(HwRefactor, WidthMustMatch)
{
    Module m = compile(
        "hwreg u8 PORTB @ 0x25;"
        "void main() { u16* p = (u16*) 0x25; *p = 1; }");
    EXPECT_EQ(refactorHardwareAccesses(m), 0u);
}

//---------------------------------------------------------------------
// Kind inference
//---------------------------------------------------------------------

TEST(Kinds, AddressOfScalarIsSafe)
{
    Module m = compile(
        "void main() { u16 x = 1; u16* p = &x; *p = 2; }");
    makeSafe(m);
    EXPECT_EQ(kindOfLocalPtr(m, "main", "p"), PtrKind::Safe);
}

TEST(Kinds, ForwardIndexingIsFSeq)
{
    Module m = compile(
        "u8 buf[8];"
        "void main() { u8* p = buf; u8 i = 3; p[i] = 1; }");
    makeSafe(m);
    EXPECT_EQ(kindOfLocalPtr(m, "main", "p"), PtrKind::FSeq);
}

TEST(Kinds, SignedArithmeticIsSeq)
{
    Module m = compile(
        "u8 buf[8];"
        "void main() { u8* p = buf; p = p + 4; p = p - 2; *p = 1; }");
    makeSafe(m);
    EXPECT_EQ(kindOfLocalPtr(m, "main", "p"), PtrKind::Seq);
}

TEST(Kinds, BadCastIsWild)
{
    Module m = compile(
        "u8 buf[8];"
        "void main() { u16* p = (u16*) buf; *p = 1; }");
    makeSafe(m);
    // u8* viewed as u16*: widening cast, not representable => WILD.
    EXPECT_EQ(kindOfLocalPtr(m, "main", "p"), PtrKind::Wild);
}

TEST(Kinds, KindsUnifyThroughCalls)
{
    Module m = compile(
        "u8 buf[8];"
        "void touch(u8* q) { q[1] = 2; }"   // forces >= FSeq
        "void main() { u8* p = buf; touch(p); *p = 1; }");
    makeSafe(m);
    EXPECT_EQ(kindOfLocalPtr(m, "main", "p"), PtrKind::FSeq);
}

TEST(Kinds, FatPointersChangeGlobalSizes)
{
    Module m = compile(
        "u8 buf[8];"
        "u8* cursor;"
        "void main() { cursor = buf; cursor = cursor + 1; *cursor = 1; }");
    uint32_t before = m.typeSize(m.findGlobal("cursor")->type);
    makeSafe(m);
    uint32_t after = m.typeSize(m.findGlobal("cursor")->type);
    EXPECT_EQ(before, 2u);
    EXPECT_GT(after, before) << "fat pointer must be wider";
}

//---------------------------------------------------------------------
// Check insertion
//---------------------------------------------------------------------

uint32_t
countChecks(const Module &m)
{
    uint32_t n = 0;
    for (const auto &f : m.funcs()) {
        if (f.dead)
            continue;
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.isCheck())
                    ++n;
            }
        }
    }
    return n;
}

TEST(Checks, DirectVariableAccessNeedsNoCheck)
{
    Module m = compile(
        "u16 g;"
        "void main() { g = 5; u16 v = g; v = v; }");
    SafetyReport rep = makeSafe(m);
    EXPECT_EQ(rep.checksInserted, 0u);
    EXPECT_GT(rep.staticallySafeAccesses, 0u);
}

TEST(Checks, VariableIndexGetsBoundsCheck)
{
    Module m = compile(
        "u8 buf[8]; u8 idx;"
        "void main() { buf[idx] = 1; }");
    SafetyReport rep = makeSafe(m);
    EXPECT_GE(rep.checksInserted, 1u);
    EXPECT_GE(rep.checksByKind["upper-bound"], 1u);
}

TEST(Checks, ConstantIndexSkippedOnlyWithOptimizer)
{
    const char *src =
        "u8 buf[8];"
        "void main() { u8* p = buf; p[3] = 1; }";
    Module m1 = compile(src);
    SafetyConfig noOpt;
    noOpt.ccuredOptimizer = false;
    SafetyReport r1 = makeSafe(m1, noOpt);
    Module m2 = compile(src);
    SafetyConfig withOpt;
    withOpt.ccuredOptimizer = true;
    SafetyReport r2 = makeSafe(m2, withOpt);
    EXPECT_GT(r1.checksInserted, r2.checksInserted);
}

TEST(Checks, IndirectCallGetsFnPtrCheck)
{
    Module m = compile(
        "void t() { }"
        "void main() { fnptr f = t; f(); }");
    SafetyReport rep = makeSafe(m);
    EXPECT_GE(rep.checksByKind["fnptr"], 1u);
}

TEST(Checks, ChecksCarryDistinctFlids)
{
    Module m = compile(
        "u8 a[4]; u8 b[4]; u8 i;"
        "void main() { a[i] = 1; b[i] = 2; }");
    makeSafe(m);
    std::set<uint32_t> flids;
    for (const auto &f : m.funcs()) {
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.isCheck()) {
                    EXPECT_NE(in.flid, 0u);
                    flids.insert(in.flid);
                }
            }
        }
    }
    EXPECT_GE(flids.size(), 2u);
    EXPECT_EQ(flids.size(), m.flidTable().size());
}

TEST(Checks, NaiveRuntimeAddsAlignmentChecks)
{
    const char *src =
        "u16 buf[8]; u8 i;"
        "void main() { buf[i] = 1; }";
    Module m1 = compile(src);
    SafetyConfig naive;
    naive.naiveRuntime = true;
    SafetyReport r1 = makeSafe(m1, naive);
    EXPECT_GE(r1.checksByKind["alignment"], 1u);

    Module m2 = compile(src);
    SafetyReport r2 = makeSafe(m2);
    EXPECT_EQ(r2.checksByKind["alignment"], 0u);
}

TEST(Checks, SafeProgramStillExecutesCorrectly)
{
    // Differential: making a correct program safe must not change its
    // result (checks pass silently).
    const char *src =
        "u8 buf[10];"
        "u16 main() {"
        "  u8 i = 0;"
        "  while (i < 10) { buf[i] = (u8)(i * 2); i = (u8)(i + 1); }"
        "  u16 sum = 0;"
        "  i = 0;"
        "  while (i < 10) { sum = sum + buf[i]; i = (u8)(i + 1); }"
        "  return sum;"
        "}";
    Module plain = compile(src);
    Interp ip(plain);
    auto rp = ip.run("main");
    ASSERT_EQ(rp.reason, StopReason::Returned);

    Module safe = compile(src);
    makeSafe(safe);
    Interp is(safe);
    auto rs = is.run("main");
    ASSERT_EQ(rs.reason, StopReason::Returned) << rs.detail;
    EXPECT_EQ(rs.retVal.i, rp.retVal.i);
}

TEST(Checks, BuggyProgramTrapsWithCorrectFlid)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = frontend::compileTinyC({{"t.tc", R"TC(
u8 buf[4]; u8 n;
u16 main() {
    n = 6;
    u8 i = 0;
    while (i < n) { buf[i] = 1; i = (u8)(i + 1); }
    return buf[0];
}
)TC"}}, diags, sm);
    ASSERT_FALSE(diags.hasErrors()) << diags.dump();
    applySafety(m, {}, &sm);
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::SafetyFault);
    EXPECT_NE(r.flid, 0u);
    std::string msg = decodeFlid(m, r.flid);
    EXPECT_NE(msg.find("t.tc"), std::string::npos);
}

//---------------------------------------------------------------------
// Error-message configurations
//---------------------------------------------------------------------

uint32_t
countErrorStringBytes(const Module &m, Section sec)
{
    uint32_t n = 0;
    for (const auto &g : m.globals()) {
        if (!g.dead && g.attrs.isErrorString && g.section == sec)
            n += m.typeSize(g.type);
    }
    return n;
}

TEST(ErrorModes, VerboseCreatesRamStrings)
{
    Module m = compile("u8 b[4]; u8 i; void main() { b[i] = 1; }");
    SafetyConfig cfg;
    cfg.errorMode = ErrorMode::VerboseRam;
    makeSafe(m, cfg);
    EXPECT_GT(countErrorStringBytes(m, Section::Ram), 10u);
}

TEST(ErrorModes, RomMovesStringsToFlash)
{
    Module m = compile("u8 b[4]; u8 i; void main() { b[i] = 1; }");
    SafetyConfig cfg;
    cfg.errorMode = ErrorMode::VerboseRom;
    makeSafe(m, cfg);
    EXPECT_EQ(countErrorStringBytes(m, Section::Ram), 0u);
    EXPECT_GT(countErrorStringBytes(m, Section::Rom), 10u);
}

TEST(ErrorModes, TerseIsShorterThanVerbose)
{
    Module mv = compile("u8 b[4]; u8 i; void main() { b[i] = 1; }");
    SafetyConfig v;
    v.errorMode = ErrorMode::VerboseRam;
    makeSafe(mv, v);
    Module mt = compile("u8 b[4]; u8 i; void main() { b[i] = 1; }");
    SafetyConfig t;
    t.errorMode = ErrorMode::Terse;
    makeSafe(mt, t);
    EXPECT_LT(countErrorStringBytes(mt, Section::Ram),
              countErrorStringBytes(mv, Section::Ram));
}

TEST(ErrorModes, FlidHasNoDeviceStrings)
{
    Module m = compile("u8 b[4]; u8 i; void main() { b[i] = 1; }");
    SafetyConfig cfg;
    cfg.errorMode = ErrorMode::Flid;
    makeSafe(m, cfg);
    EXPECT_EQ(countErrorStringBytes(m, Section::Ram), 0u);
    EXPECT_EQ(countErrorStringBytes(m, Section::Rom), 0u);
    EXPECT_FALSE(m.flidTable().empty());
}

TEST(Flid, SerializeParseRoundTrip)
{
    Module m = compile("u8 b[4]; u8 i; void main() { b[i] = 1; }");
    makeSafe(m);
    std::string text = serializeFlidTable(m);
    auto entries = parseFlidTable(text);
    ASSERT_EQ(entries.size(), m.flidTable().size());
    for (size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].flid, m.flidTable()[i].flid);
        EXPECT_EQ(entries[i].file, m.flidTable()[i].file);
        EXPECT_EQ(entries[i].line, m.flidTable()[i].line);
        EXPECT_EQ(entries[i].checkKind, m.flidTable()[i].checkKind);
    }
}

//---------------------------------------------------------------------
// Concurrency locking (§2.2)
//---------------------------------------------------------------------

TEST(Locks, RacyCheckedAccessGetsAtomicSection)
{
    Module m = compile(
        "u8 shared[8]; u8 widx;"
        "interrupt(TIMER0) void tick() {"
        "  widx = (u8)((widx + 1) & 7);"
        "  shared[widx] = (u8)(shared[widx] + 1);"
        "}"
        "u16 main() { return shared[widx]; }");
    SafetyReport rep = makeSafe(m);
    EXPECT_GE(rep.locksInserted, 1u);
}

TEST(Locks, NonRacyAccessGetsNoLock)
{
    Module m = compile(
        "u8 lonely[8]; u8 idx;"
        "void main() { lonely[idx] = 1; }");
    SafetyReport rep = makeSafe(m);
    EXPECT_EQ(rep.locksInserted, 0u);
}

//---------------------------------------------------------------------
// Runtime model
//---------------------------------------------------------------------

TEST(Runtime, TrimmedRuntimeHasFailHandlers)
{
    Module m = compile("void main() { }");
    SafetyConfig cfg;
    generateRuntime(m, cfg);
    EXPECT_NE(m.findFunc(kFailFn), nullptr);
    EXPECT_NE(m.findFunc(kFailMsgFn), nullptr);
    EXPECT_NE(m.findGlobal(kLastFaultGlobal), nullptr);
    EXPECT_EQ(m.findFunc("__ccured_gc_scan"), nullptr);
}

TEST(Runtime, NaiveRuntimeCarriesBaggage)
{
    Module m = compile("void main() { }");
    SafetyConfig cfg;
    cfg.naiveRuntime = true;
    generateRuntime(m, cfg);
    EXPECT_NE(m.findFunc("__ccured_gc_scan"), nullptr);
    EXPECT_NE(m.findGlobal("__ccured_gc_bitmap"), nullptr);
    EXPECT_NE(m.findGlobal("__ccured_fmt_tab"), nullptr);
}

} // namespace
} // namespace stos
