/**
 * @file
 * Build-matrix tests over the Experiment facade: matrix shape and
 * deterministic ordering under any thread count, parallel-vs-serial
 * result equivalence, frontend memoization accounting, failure
 * isolation, the canned Figure-2/3 matrices, and the BuildReport
 * emitters. Historically these gated BuildDriver; the deprecated
 * forwarding shims are gone and the same coverage now targets the
 * engine directly (core/experiment.h), with BuildDriver surviving
 * only as the equivalence-helper vocabulary.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "core/experiment.h"
#include "core/pool.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::tinyos;

/** A small matrix that still exercises safety + cXprop + backend. */
Experiment
smallExperiment(unsigned jobs, bool memoize = true)
{
    Experiment e;
    e.options().jobs = jobs;
    e.options().memoize = memoize;
    e.options().simulate = false;
    e.addApp(appByName("BlinkTask"));
    e.addApp(appByName("SenseToRfm"));
    e.addApp(appByName("CntToLedsAndRfm"));
    e.addConfig(ConfigId::Baseline);
    e.addConfig(ConfigId::SafeFlid);
    e.addConfig(ConfigId::SafeFlidInlineCxprop);
    return e;
}

TEST(BuildMatrix, MatrixShapeAndOrdering)
{
    BuildReport rep = smallExperiment(4).run().builds;
    ASSERT_EQ(rep.numApps, 3u);
    ASSERT_EQ(rep.numConfigs, 3u);
    ASSERT_EQ(rep.records.size(), 9u);
    EXPECT_TRUE(rep.allOk());
    // App-major, config-minor, independent of scheduling.
    const char *apps[] = {"BlinkTask", "SenseToRfm", "CntToLedsAndRfm"};
    for (size_t a = 0; a < 3; ++a) {
        for (size_t c = 0; c < 3; ++c) {
            const BuildRecord &r = rep.at(a, c);
            EXPECT_EQ(r.app, apps[a]);
            EXPECT_EQ(r.appIndex, a);
            EXPECT_EQ(r.configIndex, c);
            EXPECT_EQ(&r, &rep.records[a * 3 + c]);
        }
    }
    EXPECT_EQ(rep.at(0, 0).config, configName(ConfigId::Baseline));
    EXPECT_EQ(rep.at(0, 2).config,
              configName(ConfigId::SafeFlidInlineCxprop));
    EXPECT_NE(rep.find("SenseToRfm", configName(ConfigId::SafeFlid)),
              nullptr);
    EXPECT_EQ(rep.find("SenseToRfm", "nonsense"), nullptr);
}

TEST(BuildMatrix, ParallelMatchesSerial)
{
    // jobs=1 + memoize off is the true serial re-parse reference.
    BuildReport serial = smallExperiment(1, false).run().builds;
    BuildReport parallel = smallExperiment(4, true).run().builds;

    ASSERT_EQ(serial.records.size(), parallel.records.size());
    for (size_t i = 0; i < serial.records.size(); ++i) {
        std::string why;
        EXPECT_TRUE(BuildDriver::recordsEquivalent(
            serial.records[i], parallel.records[i], &why))
            << why;
    }
}

TEST(BuildMatrix, FrontendMemoizationCounts)
{
    BuildReport rep = smallExperiment(4, true).run().builds;
    EXPECT_EQ(rep.frontendParses, rep.numApps);
    EXPECT_EQ(rep.frontendReuses,
              rep.records.size() - rep.numApps);
    size_t reusedRecords = 0;
    for (const auto &r : rep.records)
        reusedRecords += r.frontendReused ? 1 : 0;
    EXPECT_EQ(reusedRecords, rep.frontendReuses);

    BuildReport cold = smallExperiment(4, false).run().builds;
    EXPECT_EQ(cold.frontendParses, cold.records.size());
    EXPECT_EQ(cold.frontendReuses, 0u);
}

TEST(BuildMatrix, DeterministicUnderAnyJobCount)
{
    BuildReport baseline = smallExperiment(1).run().builds;
    for (unsigned jobs : {2u, 3u, 8u}) {
        BuildReport rep = smallExperiment(jobs).run().builds;
        ASSERT_EQ(rep.records.size(), baseline.records.size());
        for (size_t i = 0; i < rep.records.size(); ++i) {
            std::string why;
            EXPECT_TRUE(BuildDriver::recordsEquivalent(
                baseline.records[i], rep.records[i], &why))
                << "jobs=" << jobs << ": " << why;
        }
    }
}

TEST(BuildMatrix, FailuresAreIsolated)
{
    Experiment e;
    e.options().jobs = 4;
    e.options().simulate = false;
    e.addApp(appByName("BlinkTask"));
    e.addApp({"Broken", "Mica2", "void main( {", {}, "test", {}});
    e.addConfig(ConfigId::Baseline);
    e.addConfig(ConfigId::SafeFlid);
    BuildReport rep = e.run().builds;
    ASSERT_EQ(rep.records.size(), 4u);
    EXPECT_TRUE(rep.at(0, 0).ok);
    EXPECT_TRUE(rep.at(0, 1).ok);
    EXPECT_FALSE(rep.at(1, 0).ok);
    EXPECT_FALSE(rep.at(1, 1).ok);
    EXPECT_FALSE(rep.at(1, 0).error.empty());
    EXPECT_FALSE(rep.allOk());
}

TEST(RunOnPool, WorkerExceptionsRethrowOnTheCallerNotTerminate)
{
    // Regression: an exception escaping fn on a worker thread used to
    // unwind the std::thread and call std::terminate. The pool must
    // capture the first exception, join every worker, and rethrow on
    // the calling thread — under any job count, including the inline
    // jobs<=1 path.
    for (unsigned jobs : {1u, 4u}) {
        std::atomic<size_t> ran{0};
        EXPECT_THROW(
            core::runOnPool(jobs, 64,
                            [&](size_t k) {
                                if (k == 3)
                                    throw std::runtime_error("cell 3");
                                ran.fetch_add(1);
                            }),
            std::runtime_error)
            << "jobs=" << jobs;
        // Job 3 fails in the first wave (the counter hands out 0..3
        // first), and each worker may run at most one more job before
        // observing the failure flag — far below the 60 jobs a
        // drain-everything regression would complete.
        EXPECT_LT(ran.load(), 32u)
            << "workers must stop claiming jobs after a failure";
    }
    // The rethrown exception is the worker's own.
    try {
        core::runOnPool(2, 8, [](size_t) {
            throw std::runtime_error("boom");
        });
        FAIL() << "expected the worker exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(RunOnPool, CompletesEveryJobWhenNothingThrows)
{
    std::atomic<size_t> sum{0};
    core::runOnPool(4, 100, [&](size_t k) { sum.fetch_add(k); });
    EXPECT_EQ(sum.load(), 99u * 100u / 2u);
}

TEST(BuildMatrix, EmptyMatrixIsEmptyReport)
{
    Experiment e;
    e.options().simulate = false;
    BuildReport rep = e.run().builds;
    EXPECT_EQ(rep.records.size(), 0u);
    EXPECT_TRUE(rep.allOk());
}

TEST(BuildMatrix, CustomColumnsDriveAblation)
{
    Experiment e;
    e.options().jobs = 2;
    e.options().simulate = false;
    e.addApp(appByName("BlinkTask"));
    e.addCustom("no-atomic-opt", [](const std::string &platform) {
        PipelineConfig cfg =
            configFor(ConfigId::SafeFlidInlineCxprop, platform);
        cfg.cxprop.optimizeAtomics = false;
        return cfg;
    });
    e.addConfig(ConfigId::SafeFlidInlineCxprop);
    BuildReport rep = e.run().builds;
    ASSERT_TRUE(rep.allOk());
    EXPECT_EQ(rep.at(0, 0).config, "no-atomic-opt");
    EXPECT_EQ(rep.at(0, 0).result->cxpropReport.atomicsRemoved, 0u);
}

TEST(BuildMatrix, Figure3MatrixCoversEveryCell)
{
    Experiment e;
    e.options().simulate = false;
    e.addAllApps();
    e.addConfig(ConfigId::Baseline);
    e.addConfigs(figure3Configs());
    BuildReport rep = e.run().builds;
    EXPECT_EQ(rep.numApps, tinyos::allApps().size());
    EXPECT_EQ(rep.numConfigs, 1 + figure3Configs().size());
    ASSERT_TRUE(rep.allOk());
    EXPECT_EQ(rep.frontendParses, rep.numApps);
    // Column 0 is the unsafe baseline every figure normalizes to.
    for (size_t a = 0; a < rep.numApps; ++a) {
        EXPECT_EQ(rep.at(a, 0).config, configName(ConfigId::Baseline));
        EXPECT_GT(rep.at(a, 0).result->codeBytes, 0u);
    }
}

TEST(BuildReport, CsvHasHeaderOneRowPerCellAndQuotedLabels)
{
    BuildReport rep = smallExperiment(2).run().builds;
    std::ostringstream os;
    rep.emitCsv(os);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.substr(0, 4), "app,");
    EXPECT_NE(line.find("code_bytes"), std::string::npos);
    size_t rows = 0;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, rep.records.size());
    // Config labels contain commas and must be RFC-4180 quoted.
    EXPECT_NE(os.str().find("\"safe, FLIDs\""), std::string::npos);
}

TEST(BuildReport, JsonEmissionIsBalancedAndComplete)
{
    BuildReport rep = smallExperiment(2).run().builds;
    std::ostringstream os;
    rep.emitJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"kind\": \"build_report\""),
              std::string::npos);
    EXPECT_NE(json.find("\"code_bytes\":"), std::string::npos);
    size_t open = 0, close = 0, records = 0;
    for (char c : json) {
        open += c == '{';
        close += c == '}';
    }
    EXPECT_EQ(open, close);
    size_t pos = 0;
    while ((pos = json.find("\"app\":", pos)) != std::string::npos) {
        ++records;
        pos += 6;
    }
    EXPECT_EQ(records, rep.records.size());
}

TEST(BuildReport, FailedCellsEmitWithEscapedErrors)
{
    Experiment e;
    e.options().simulate = false;
    e.addApp({"Broken", "Mica2", "void main( {\n\"quote\"", {}, "test", {}});
    e.addConfig(ConfigId::Baseline);
    BuildReport rep = e.run().builds;
    ASSERT_FALSE(rep.allOk());
    ASSERT_NE(rep.at(0, 0).error.find('\n'), std::string::npos)
        << "fixture must produce a multi-line error";
    std::ostringstream csv, json;
    rep.emitCsv(csv);
    rep.emitJson(json);
    // The raw newline must be escaped in JSON ("\n" as two chars) and
    // quoted in CSV, so neither format gains stray physical lines.
    EXPECT_NE(json.str().find("\\n"), std::string::npos);
    EXPECT_NE(csv.str().find('"'), std::string::npos);
    size_t rows = 0;
    bool inQuotes = false;
    for (char c : csv.str()) {
        if (c == '"')
            inQuotes = !inQuotes;
        else if (c == '\n' && !inQuotes)
            ++rows;
    }
    EXPECT_EQ(rows, rep.records.size() + 1) << "header + one row/cell";
}

TEST(BuildMatrix, Figure2MatrixChecksMonotone)
{
    Experiment e;
    e.options().simulate = false;
    e.addAllApps();
    e.addStrategies({CheckStrategy::GccOnly, CheckStrategy::CcuredOpt,
                     CheckStrategy::CcuredOptCxprop,
                     CheckStrategy::CcuredOptInlineCxprop});
    BuildReport rep = e.run().builds;
    EXPECT_EQ(rep.numConfigs, 4u);
    ASSERT_TRUE(rep.allOk());
    // Surviving checks must not increase as strategies strengthen.
    for (size_t a = 0; a < rep.numApps; ++a) {
        uint32_t prev = ~0u;
        for (size_t c = 0; c < rep.numConfigs; ++c) {
            uint32_t survive = rep.at(a, c).result->survivingChecks;
            EXPECT_LE(survive, prev)
                << rep.at(a, c).app << " strategy " << c;
            prev = survive;
        }
    }
}

} // namespace
} // namespace stos
