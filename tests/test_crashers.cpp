/**
 * @file
 * Regression suite over tests/crashers/: every minimized program the
 * differential fuzzer ever caught an engine divergence on, re-run
 * through the full per-program oracle set (four build modes x three
 * execution engines). A crasher that diverges again means a fixed
 * bug has been reintroduced.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/fuzz.h"

namespace stos {
namespace {

namespace fs = std::filesystem;

std::vector<std::string>
crasherFiles()
{
    std::vector<std::string> files;
    for (const auto &e : fs::directory_iterator(STOS_CRASHERS_DIR)) {
        if (e.path().extension() == ".tc")
            files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class Crashers : public ::testing::TestWithParam<std::string> {};

TEST_P(Crashers, AllEnginesAgree)
{
    std::string src = slurp(GetParam());
    ASSERT_FALSE(src.empty()) << GetParam();
    fuzz::Divergence d = fuzz::checkProgram(src);
    EXPECT_FALSE(static_cast<bool>(d))
        << GetParam() << " diverges again [" << d.oracle
        << "]: " << d.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Crashers, ::testing::ValuesIn(crasherFiles()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return fs::path(info.param).stem().string();
    });

TEST(Crashers, CorpusIsNonEmpty)
{
    EXPECT_GE(crasherFiles().size(), 5u);
}

} // namespace
} // namespace stos
