/**
 * @file
 * Unit tests for the cXprop stage: abstract domains, constant and
 * branch folding, check elimination, copy propagation, DCE, the
 * inliner (with differential execution), and atomic optimization.
 */
#include <gtest/gtest.h>

#include "analysis/callgraph.h"
#include "analysis/concurrency.h"
#include "analysis/pointsto.h"
#include "frontend/frontend.h"
#include "ir/interp.h"
#include "ir/verifier.h"
#include "opt/absval.h"
#include "opt/cxprop.h"
#include "opt/inliner.h"
#include "opt/passes.h"
#include "safety/ccured.h"

namespace stos {
namespace {

using namespace stos::ir;
using namespace stos::opt;

Module
compile(const std::string &src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = frontend::compileTinyC({{"t.tc", src}}, diags, sm);
    EXPECT_FALSE(diags.hasErrors()) << diags.dump();
    return m;
}

uint64_t
runMain(Module &m)
{
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned) << r.detail;
    return r.retVal.i;
}

size_t
countInstrs(const Module &m)
{
    size_t n = 0;
    for (const auto &f : m.funcs()) {
        if (f.dead)
            continue;
        for (const auto &bb : f.blocks)
            n += bb.instrs.size();
    }
    return n;
}

//---------------------------------------------------------------------
// Abstract domain unit tests
//---------------------------------------------------------------------

TEST(AbsVal, JoinOfConstantsIsRange)
{
    DomainConfig cfg;
    AbsVal a = AbsVal::constant(3);
    AbsVal b = AbsVal::constant(7);
    AbsVal j = join(a, b, cfg);
    EXPECT_EQ(j.lo, 3);
    EXPECT_EQ(j.hi, 7);
    EXPECT_FALSE(j.isConst());
}

TEST(AbsVal, ConstantsOnlyDomainLosesRanges)
{
    DomainConfig cfg;
    cfg.intervals = false;
    AbsVal j = join(AbsVal::constant(3), AbsVal::constant(7), cfg);
    EXPECT_TRUE(j.isTop());
}

TEST(AbsVal, BottomIsJoinIdentity)
{
    DomainConfig cfg;
    AbsVal c = AbsVal::constant(5);
    EXPECT_EQ(join(AbsVal::bottom(), c, cfg), c);
    EXPECT_EQ(join(c, AbsVal::bottom(), cfg), c);
}

TEST(AbsVal, RefineByCompareNarrows)
{
    DomainConfig cfg;
    AbsVal v = AbsVal::range(0, 255);
    AbsVal bound = AbsVal::constant(10);
    AbsVal lt = refineByCompare(v, BinOp::LtU, bound, true, cfg);
    EXPECT_EQ(lt.hi, 9);
    AbsVal ge = refineByCompare(v, BinOp::LtU, bound, false, cfg);
    EXPECT_EQ(ge.lo, 10);
    AbsVal impossible = refineByCompare(AbsVal::constant(3), BinOp::GtU,
                                        AbsVal::constant(9), true, cfg);
    EXPECT_TRUE(impossible.isBottom());
}

/**
 * Property sweep: interval transfer functions must over-approximate
 * concrete arithmetic. For each operator and a grid of sample ranges,
 * every concrete result of (a op b) must fall inside evalBin's range.
 */
class IntervalSoundness
    : public ::testing::TestWithParam<ir::BinOp> {};

TEST_P(IntervalSoundness, OverApproximatesConcreteResults)
{
    BinOp op = GetParam();
    Module m;  // for a TypeTable
    TypeTable &tt = m.types();
    DomainConfig cfg;
    const int64_t samples[][2] = {
        {0, 5},   {3, 3},   {1, 16},  {0, 255}, {10, 20},
        {2, 9},   {7, 31},  {1, 2},   {100, 200},
    };
    for (const auto &ra : samples) {
        for (const auto &rb : samples) {
            AbsVal a = AbsVal::range(ra[0], ra[1]);
            AbsVal b = AbsVal::range(rb[0], rb[1]);
            AbsVal r = evalBin(op, a, b, tt, tt.u16(), tt.u16(), cfg);
            if (r.isTop() || r.kind != AbsVal::Int)
                continue;  // Top is trivially sound
            for (int64_t x = ra[0]; x <= ra[1]; x += 3) {
                for (int64_t y = rb[0]; y <= rb[1]; y += 3) {
                    int64_t c;
                    switch (op) {
                      case BinOp::Add: c = x + y; break;
                      case BinOp::Sub: c = x - y; break;
                      case BinOp::Mul: c = x * y; break;
                      case BinOp::And: c = x & y; break;
                      case BinOp::Or: c = x | y; break;
                      case BinOp::Xor: c = x ^ y; break;
                      case BinOp::DivU: c = y ? x / y : 0; break;
                      case BinOp::RemU: c = y ? x % y : 0; break;
                      case BinOp::LtU: c = x < y; break;
                      case BinOp::GeU: c = x >= y; break;
                      default: c = 0; break;
                    }
                    if ((op == BinOp::DivU || op == BinOp::RemU) && !y)
                        continue;
                    // Values stay within u16 here, so no wraparound.
                    if (c >= 0 && c <= 0xFFFF) {
                        EXPECT_LE(r.lo, c)
                            << binOpName(op) << " [" << ra[0] << ","
                            << ra[1] << "] [" << rb[0] << "," << rb[1]
                            << "] concrete " << c;
                        EXPECT_GE(r.hi, c)
                            << binOpName(op) << " concrete " << c;
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IntervalSoundness,
    ::testing::Values(BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And,
                      BinOp::Or, BinOp::Xor, BinOp::DivU, BinOp::RemU,
                      BinOp::LtU, BinOp::GeU));

//---------------------------------------------------------------------
// Transformations
//---------------------------------------------------------------------

TEST(Cxprop, FoldsConstantsAcrossFunctions)
{
    Module m = compile(
        "u16 base() { return 40; }"
        "u16 main() { return base() + 2; }");
    CxpropReport rep = runCxprop(m);
    EXPECT_GT(rep.instrsConstFolded, 0u);
    EXPECT_EQ(runMain(m), 42u);
}

TEST(Cxprop, FoldsBranchesAndRemovesDeadCode)
{
    Module m = compile(
        "u16 mode;"   // never written: stays 0
        "u16 main() {"
        "  if (mode == 0) { return 1; }"
        "  return 2;"
        "}");
    CxpropReport rep = runCxprop(m);
    EXPECT_GT(rep.branchesFolded, 0u);
    EXPECT_EQ(runMain(m), 1u);
}

TEST(Cxprop, PreservesSemanticsOnLoops)
{
    const char *src =
        "u16 main() {"
        "  u16 s = 0;"
        "  for (u16 i = 0; i < 37; i++) { s += i * 3; }"
        "  return s;"
        "}";
    Module ref = compile(src);
    uint64_t expected = runMain(ref);
    Module m = compile(src);
    runCxprop(m);
    verifyOrDie(m, "cxprop");
    EXPECT_EQ(runMain(m), expected);
}

TEST(Cxprop, RemovesProvableChecks)
{
    Module m = compile(
        "u8 buf[16];"
        "u16 main() {"
        "  u8 i = 0;"
        "  while (i < 16) { buf[i] = i; i = (u8)(i + 1); }"
        "  return buf[3];"
        "}");
    safety::SafetyConfig scfg;
    safety::applySafety(m, scfg);
    CxpropOptions opts;
    CxpropReport rep = runCxprop(m, opts);
    EXPECT_GT(rep.checksRemoved, 0u);
    EXPECT_EQ(runMain(m), 3u);
}

TEST(Cxprop, KeepsUnprovableChecks)
{
    // Index comes from hardware: no bound exists, the check must stay.
    Module m = compile(
        "hwreg u8 SRC @ 0x40;"
        "u8 buf[16];"
        "void main() { u8 i = SRC; buf[i] = 1; }");
    safety::SafetyConfig scfg;
    safety::applySafety(m, scfg);
    runCxprop(m);
    uint32_t checks = 0;
    for (const auto &f : m.funcs()) {
        if (f.dead)
            continue;
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.isCheck())
                    ++checks;
            }
        }
    }
    EXPECT_GE(checks, 1u);
}

TEST(Cxprop, DomainAblationMatters)
{
    const char *src =
        "u8 buf[16];"
        "u16 main() {"
        "  u8 i = 0;"
        "  while (i < 16) { buf[i] = i; i = (u8)(i + 1); }"
        "  return buf[3];"
        "}";
    Module withIv = compile(src);
    safety::SafetyConfig scfg;
    safety::applySafety(withIv, scfg);
    CxpropOptions rich;
    CxpropReport r1 = runCxprop(withIv, rich);

    Module constOnly = compile(src);
    safety::applySafety(constOnly, scfg);
    CxpropOptions poor;
    poor.domains.intervals = false;
    poor.domains.knownBits = false;
    CxpropReport r2 = runCxprop(constOnly, poor);
    EXPECT_GT(r1.checksRemoved, r2.checksRemoved)
        << "intervals are needed to prove loop bounds";
}

TEST(Cxprop, DeadGlobalEliminated)
{
    Module m = compile(
        "u16 unused = 99;"
        "u16 written;"       // stored but never read
        "u16 main() { written = 5; return 1; }");
    CxpropReport rep = runCxprop(m);
    EXPECT_GE(rep.deadStoresRemoved, 1u);
    EXPECT_GE(rep.deadGlobalsRemoved, 2u);
    EXPECT_EQ(m.findGlobal("unused"), nullptr);
    EXPECT_EQ(m.findGlobal("written"), nullptr);
    EXPECT_EQ(runMain(m), 1u);
}

TEST(Cxprop, DeadFunctionEliminated)
{
    Module m = compile(
        "void never() { }"
        "u16 main() { return 3; }");
    CxpropReport rep = runCxprop(m);
    EXPECT_GE(rep.deadFuncsRemoved, 1u);
    EXPECT_EQ(m.findFunc("never"), nullptr);
}

TEST(Cxprop, RacyGlobalsAreNotFolded)
{
    // `shared` is written by the handler, so main's read must not be
    // constant-folded to its initial value.
    Module m = compile(
        "u16 shared;"
        "interrupt(TIMER0) void tick() { shared = 1234; }"
        "u16 main() { return shared; }");
    runCxprop(m);
    Interp in(m);
    in.scheduleInterrupt(1, 0);
    // Let the handler run first by sleeping via a crafted schedule:
    // simply run main after the interrupt fires at step 1.
    auto r = in.run("main");
    // Whether or not the interrupt preempted in time, the load must
    // still be a real load: check the IR kept a Load of `shared`.
    bool hasLoad = false;
    for (const auto &bb : m.findFunc("main")->blocks) {
        for (const auto &in2 : bb.instrs) {
            if (in2.op == Opcode::Load)
                hasLoad = true;
        }
    }
    EXPECT_TRUE(hasLoad);
    (void)r;
}

//---------------------------------------------------------------------
// Inliner
//---------------------------------------------------------------------

TEST(Inliner, InlinesAndPreservesSemantics)
{
    const char *src =
        "u16 sq(u16 x) { return x * x; }"
        "u16 main() { u16 a = sq(5); u16 b = sq(6); return a + b; }";
    Module ref = compile(src);
    uint64_t expected = runMain(ref);
    Module m = compile(src);
    uint32_t n = inlineFunctions(m);
    EXPECT_GE(n, 2u);
    verifyOrDie(m, "inline");
    EXPECT_EQ(runMain(m), expected);
    EXPECT_EQ(m.findFunc("sq"), nullptr) << "fully inlined helper dies";
}

TEST(Inliner, RespectsNoInline)
{
    Module m = compile(
        "noinline u16 keep(u16 x) { return x + 1; }"
        "u16 main() { return keep(4); }");
    EXPECT_EQ(inlineFunctions(m), 0u);
    EXPECT_NE(m.findFunc("keep"), nullptr);
}

TEST(Inliner, SkipsRecursion)
{
    Module m = compile(
        "u16 f(u16 n) { if (n == 0) { return 1; } return n * f(n - 1); }"
        "u16 main() { return f(4); }");
    inlineFunctions(m);
    EXPECT_NE(m.findFunc("f"), nullptr);
    EXPECT_EQ(runMain(m), 24u);
}

TEST(Inliner, HandlesControlFlowInCallee)
{
    const char *src =
        "u16 clamp(u16 v) { if (v > 10) { return 10; } return v; }"
        "u16 main() { return clamp(3) + clamp(99); }";
    Module ref = compile(src);
    uint64_t expected = runMain(ref);
    Module m = compile(src);
    inlineFunctions(m);
    verifyOrDie(m, "inline");
    EXPECT_EQ(runMain(m), expected);
}

//---------------------------------------------------------------------
// Standalone passes
//---------------------------------------------------------------------

TEST(Passes, CopyPropRemovesMovChains)
{
    Module m = compile(
        "u16 main() { u16 a = 5; u16 b = a; u16 c = b; return c; }");
    Function &f = *m.findFunc("main");
    uint32_t n = localCopyProp(m, f);
    EXPECT_GT(n, 0u);
    removeDeadInstrs(m, f);
    EXPECT_EQ(runMain(m), 5u);
}

TEST(Passes, SimplifyCfgRemovesUnreachable)
{
    Module m = compile(
        "u16 main() { return 1; return 2; }");
    Function &f = *m.findFunc("main");
    size_t before = f.blocks.size();
    simplifyCfg(f);
    EXPECT_LE(f.blocks.size(), before);
    EXPECT_EQ(runMain(m), 1u);
}

TEST(Passes, AtomicOptimizationRemovesNested)
{
    Module m = compile(
        "u16 x;"
        "interrupt(TIMER0) void tick() { x++; }"
        "void main() { atomic { atomic { x = 2; } } }");
    analysis::CallGraph cg(m);
    analysis::PointsTo pts(m);
    analysis::ConcurrencyAnalysis conc(m, cg, pts, {});
    AtomicOptReport rep = optimizeAtomics(m, conc);
    EXPECT_GE(rep.nestedRemoved, 1u);
    // Still balanced: run it.
    Interp in(m);
    EXPECT_EQ(in.run("main").reason, StopReason::Returned);
}

TEST(Passes, AtomicsInsideHandlersRemoved)
{
    Module m = compile(
        "u16 x;"
        "interrupt(TIMER0) void tick() { atomic { x++; } }"
        "void main() { x = 0; }");
    analysis::CallGraph cg(m);
    analysis::PointsTo pts(m);
    analysis::ConcurrencyAnalysis conc(m, cg, pts, {});
    AtomicOptReport rep = optimizeAtomics(m, conc);
    EXPECT_GE(rep.handlerAtomicsRemoved, 1u);
    int atomicOps = 0;
    for (const auto &bb : m.findFunc("tick")->blocks) {
        for (const auto &in : bb.instrs) {
            if (in.op == Opcode::AtomicBegin ||
                in.op == Opcode::AtomicEnd)
                ++atomicOps;
        }
    }
    EXPECT_EQ(atomicOps, 0);
}

} // namespace
} // namespace stos
