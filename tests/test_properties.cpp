/**
 * @file
 * Property-style parameterized sweeps across the whole benchmark
 * suite: every app, under every safe configuration, must (a) build,
 * (b) verify, and (c) behave observably identically to its unsafe
 * baseline on the simulator — safety and optimization are allowed to
 * change cost, never behaviour.
 */
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "ir/verifier.h"
#include "sim/machine.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::tinyos;

struct Observation {
    uint32_t ledWrites = 0;
    uint8_t ledState = 0;
    uint32_t packetsSent = 0;
    std::string uart;
    bool wedged = false;

    bool
    operator==(const Observation &) const = default;
};

Observation
observe(const backend::MProgram &img, uint64_t cycles)
{
    sim::Machine m(img, 1);
    m.boot();
    m.runUntilCycle(cycles);
    Observation o;
    o.ledWrites = m.devices().ledWrites();
    o.ledState = m.devices().ledState();
    o.packetsSent = m.devices().packetsSent();
    o.uart = m.devices().uartLog();
    o.wedged = m.wedged();
    return o;
}

class EveryApp : public ::testing::TestWithParam<std::string> {};

/** Every registry app's name — the suite sweeps the whole corpus, so
 *  a newly registered app is property-tested with no edit here. */
std::vector<std::string>
allAppNames()
{
    std::vector<std::string> names;
    for (const auto &app : allApps())
        names.push_back(app.name);
    return names;
}

TEST_P(EveryApp, BuildsUnderAllConfigurations)
{
    const auto &app = appByName(GetParam());
    BuildResult base =
        buildApp(app, configFor(ConfigId::Baseline, app.platform));
    for (ConfigId id : figure3Configs()) {
        BuildResult r = buildApp(app, configFor(id, app.platform));
        auto problems = ir::verifyModule(r.module);
        EXPECT_TRUE(problems.empty())
            << configName(id) << ": "
            << (problems.empty() ? "" : problems[0]);
        EXPECT_GT(r.codeBytes, 0u);
        // Safety never shrinks RAM below the unsafe baseline's data.
        if (id != ConfigId::UnsafeInlineCxprop &&
            id != ConfigId::SafeFlidCxprop &&
            id != ConfigId::SafeFlidInlineCxprop) {
            EXPECT_GE(r.ramBytes, base.ramBytes) << configName(id);
        }
    }
}

TEST_P(EveryApp, SafeBuildBehavesLikeUnsafe)
{
    const auto &app = appByName(GetParam());
    if (!app.companions.empty())
        GTEST_SKIP() << "needs network context; covered elsewhere";
    const uint64_t cycles = 3'000'000;
    Observation base = observe(
        buildApp(app, configFor(ConfigId::Baseline, app.platform)).image,
        cycles);
    for (ConfigId id :
         {ConfigId::SafeFlid, ConfigId::SafeFlidInlineCxprop}) {
        Observation safe =
            observe(buildApp(app, configFor(id, app.platform)).image,
                    cycles);
        EXPECT_FALSE(safe.wedged)
            << app.name << " faulted under " << configName(id);
        EXPECT_EQ(safe.ledWrites, base.ledWrites)
            << app.name << " under " << configName(id);
        EXPECT_EQ(safe.ledState, base.ledState)
            << app.name << " under " << configName(id);
        EXPECT_EQ(safe.packetsSent, base.packetsSent)
            << app.name << " under " << configName(id);
        EXPECT_EQ(safe.uart, base.uart)
            << app.name << " under " << configName(id);
    }
}

TEST_P(EveryApp, ChecksSurviveMonotonically)
{
    const auto &app = appByName(GetParam());
    auto survivors = [&](CheckStrategy s) {
        return buildApp(app, configForStrategy(s, app.platform))
            .survivingChecks;
    };
    uint32_t gcc = survivors(CheckStrategy::GccOnly);
    uint32_t ccured = survivors(CheckStrategy::CcuredOpt);
    uint32_t cx = survivors(CheckStrategy::CcuredOptCxprop);
    uint32_t inl = survivors(CheckStrategy::CcuredOptInlineCxprop);
    EXPECT_LE(ccured, gcc) << app.name;
    EXPECT_LE(cx, ccured) << app.name;
    EXPECT_LE(inl, cx) << app.name;
}

TEST_P(EveryApp, OptimizedSafeCodeIsNotBigger)
{
    const auto &app = appByName(GetParam());
    BuildResult plain =
        buildApp(app, configFor(ConfigId::SafeFlid, app.platform));
    BuildResult opt = buildApp(
        app, configFor(ConfigId::SafeFlidInlineCxprop, app.platform));
    EXPECT_LE(opt.codeBytes, plain.codeBytes) << app.name;
    EXPECT_LE(opt.ramBytes, plain.ramBytes) << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, EveryApp, ::testing::ValuesIn(allAppNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace stos
