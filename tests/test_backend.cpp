/**
 * @file
 * Backend tests: the GCC-model late optimizer, instruction selection
 * (fat pointers, checks, atomics), cost-model properties, and
 * link-time GC/layout.
 */
#include <gtest/gtest.h>

#include "backend/backend.h"
#include "frontend/frontend.h"
#include "safety/ccured.h"

namespace stos {
namespace {

using namespace stos::ir;
using namespace stos::backend;

Module
compile(const std::string &src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = frontend::compileTinyC({{"t.tc", src}}, diags, sm);
    EXPECT_FALSE(diags.hasErrors()) << diags.dump();
    return m;
}

MProgram
build(Module &m, TargetInfo t = TargetInfo::mica2(),
      BackendOptions opts = {})
{
    return compileToTarget(m, t, opts);
}

TEST(Target, PlatformParameters)
{
    TargetInfo mica = TargetInfo::mica2();
    TargetInfo telos = TargetInfo::telosb();
    EXPECT_EQ(mica.regBits, 8u);
    EXPECT_EQ(telos.regBits, 16u);
    EXPECT_GT(mica.flashBytes, telos.flashBytes);
    EXPECT_LT(mica.ramBytes, telos.ramBytes);
}

TEST(CostModel, SixteenBitOpsCheaperOnTelos)
{
    // The same 16-bit heavy program must be smaller on the 16-bit
    // MSP430-like target than on the 8-bit AVR-like one.
    const char *src =
        "u16 acc;"
        "u16 main() {"
        "  u16 i = 0;"
        "  while (i < 100) { acc = acc * 3 + i; i++; }"
        "  return acc;"
        "}";
    Module m1 = compile(src);
    MProgram avr = build(m1, TargetInfo::mica2());
    Module m2 = compile(src);
    MProgram msp = build(m2, TargetInfo::telosb());
    EXPECT_LT(msp.codeBytes(), avr.codeBytes());
}

TEST(CostModel, RomLoadsCostExtraOnAvr)
{
    MProgram p;
    p.target = TargetInfo::mica2();
    MInstr ramLd;
    ramLd.op = MOp::Ld;
    ramLd.w = 8;
    MInstr romLd = ramLd;
    romLd.romData = true;
    EXPECT_GT(p.instrBytes(romLd), p.instrBytes(ramLd));
    EXPECT_GT(p.instrCycles(romLd), p.instrCycles(ramLd));
    p.target = TargetInfo::telosb();
    EXPECT_EQ(p.instrBytes(romLd), p.instrBytes(ramLd))
        << "unified address space on the MSP430-like target";
}

TEST(Isel, FatPointerStoresAreWider)
{
    // Storing a SEQ pointer writes three words; the same program with
    // unchecked pointers writes one.
    const char *src =
        "u8 buf[8];"
        "u8* cursor;"
        "void main() { cursor = buf; cursor = cursor - 1; "
        "cursor = cursor + 1; *cursor = 1; }";
    Module plain = compile(src);
    MProgram unsafeImg = build(plain);
    Module safe = compile(src);
    safety::SafetyConfig scfg;
    safety::applySafety(safe, scfg);
    MProgram safeImg = build(safe);
    auto countStores = [](const MProgram &p) {
        uint32_t n = 0;
        for (const auto &f : p.funcs) {
            for (const auto &bb : f.blocks) {
                for (const auto &in : bb.instrs) {
                    if (in.op == MOp::St)
                        ++n;
                }
            }
        }
        return n;
    };
    EXPECT_GT(countStores(safeImg), countStores(unsafeImg));
}

TEST(Isel, ChecksLowerToMarkedBranches)
{
    Module m = compile(
        "u8 buf[8]; u8 i;"
        "void main() { buf[i] = 1; }");
    safety::SafetyConfig scfg;
    safety::applySafety(m, scfg);
    MProgram img = build(m);
    EXPECT_GT(img.survivingCheckBranches(), 0u);
}

TEST(Isel, AtomicSectionsBecomeIrqFlagOps)
{
    Module m = compile(
        "u16 x;"
        "interrupt(TIMER0) void tick() { x++; }"
        "void main() { atomic { x = 1; } }");
    MProgram img = build(m);
    bool sawCli = false, sawRestore = false;
    for (const auto &f : img.funcs) {
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.op == MOp::Cli)
                    sawCli = true;
                if (in.op == MOp::SetIf || in.op == MOp::Sei)
                    sawRestore = true;
            }
        }
    }
    EXPECT_TRUE(sawCli);
    EXPECT_TRUE(sawRestore);
}

TEST(Link, UnreferencedGlobalsDropped)
{
    Module m = compile(
        "u8 used = 1;"
        "u8 unused = 2;"
        "u16 main() { return used; }");
    MProgram img = build(m);
    bool sawUsed = false, sawUnused = false;
    for (const auto &d : img.data) {
        if (d.name == "used")
            sawUsed = true;
        if (d.name == "unused")
            sawUnused = true;
    }
    EXPECT_TRUE(sawUsed);
    EXPECT_FALSE(sawUnused);
}

TEST(Link, UnreachableFunctionsDropped)
{
    Module m = compile(
        "void orphan() { }"
        "void main() { }");
    MProgram img = build(m);
    for (const auto &f : img.funcs)
        EXPECT_NE(f.name, "orphan");
}

TEST(Link, LayoutSeparatesRamAndRom)
{
    Module m = compile(
        "u8 ramVar = 1;"
        "rom u8 table[4] = {1,2,3,4};"
        "u16 main() { return ramVar + table[0]; }");
    MProgram img = build(m);
    for (const auto &d : img.data) {
        if (d.name == "ramVar") {
            EXPECT_FALSE(d.rom);
            EXPECT_LT(d.addr, img.romDataBase);
        }
        if (d.name == "table") {
            EXPECT_TRUE(d.rom);
            EXPECT_GE(d.addr, img.romDataBase);
        }
    }
    EXPECT_EQ(img.ramDataBytes(), 1u);
    EXPECT_EQ(img.romDataBytes(), 4u);
}

TEST(Link, VectorTablePointsAtHandlers)
{
    Module m = compile(
        "interrupt(TIMER0) void t0() { }"
        "interrupt(ADC) void adc() { }"
        "void main() { }");
    MProgram img = build(m);
    ASSERT_GE(img.vectorTable.size(), 3u);
    EXPECT_GE(img.vectorTable[0], 0);
    EXPECT_GE(img.vectorTable[2], 0);
    EXPECT_EQ(img.vectorTable[1], -1);
    EXPECT_EQ(img.funcs[img.vectorTable[0]].name, "t0");
}

TEST(GccOpts, LocalConstantFolding)
{
    Module m = compile("u16 main() { return 6 * 7; }");
    GccOptions opts;
    GccReport rep = runGccStyleOpts(m, opts);
    EXPECT_GT(rep.constsFolded + rep.instrsRemoved, 0u);
}

TEST(GccOpts, RemovesRedundantChecks)
{
    Module m = compile(
        "u8 buf[8]; u8 i;"
        "void main() {"
        "  u8* p = buf + i;"       // one pointer, dereferenced twice
        "  u8 a = *p; u8 b = *p; a = a; b = b;"
        "}");
    safety::SafetyConfig scfg;
    scfg.ccuredOptimizer = false;  // let "GCC" do the work
    safety::applySafety(m, scfg);
    GccOptions opts;
    GccReport rep = runGccStyleOpts(m, opts);
    EXPECT_GT(rep.checksRemoved, 0u);
}

TEST(GccOpts, OptimizeFlagGates)
{
    const char *src = "u16 main() { return 6 * 7; }";
    Module m1 = compile(src);
    GccOptions off;
    off.optimize = false;
    MProgram unopt = build(m1, TargetInfo::mica2(), {off});
    Module m2 = compile(src);
    MProgram opt = build(m2);
    EXPECT_LE(opt.codeBytes(), unopt.codeBytes());
}

} // namespace
} // namespace stos
