/**
 * @file
 * Interpreter tests: safety check semantics, fault detection, the
 * interrupt/atomic machinery, and sleep/wake behaviour.
 */
#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "ir/builder.h"
#include "ir/interp.h"

namespace stos {
namespace {

using namespace stos::frontend;
using namespace stos::ir;

Module
compile(const std::string &src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    Module m = compileTinyC({{"t.tc", src}}, diags, sm);
    EXPECT_FALSE(diags.hasErrors()) << diags.dump();
    return m;
}

TEST(Interp, DivisionByZeroIsDefinedAsZero)
{
    // TinyCIL division is total: x / 0 == 0 and x % 0 == 0, matching
    // the simulator cores (the interpreter used to trap here, which
    // made the two executors diverge on the same program).
    Module m = compile(
        "u16 main() { u16 z = 0; return (u16)(5 / z + 7 % z); }");
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned);
    EXPECT_EQ(r.retVal.i, 0u);
}

TEST(Interp, SignedDivisionOverflowWraps)
{
    // INT_MIN / -1 wraps to INT_MIN; INT_MIN % -1 is 0. At 16 bits:
    // -32768 / -1 == -32768 (0x8000 as u16).
    Module m = compile(
        "i16 lo = -32768;"
        "i16 m1 = -1;"
        "u16 main() { return (u16)(lo / m1) + (u16)(lo % m1); }");
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned);
    EXPECT_EQ(r.retVal.i, 0x8000u);
}

TEST(Interp, StepLimitStopsInfiniteLoop)
{
    Module m = compile("void main() { while (true) { } }");
    InterpOptions opts;
    opts.stepLimit = 1000;
    Interp in(m, nullptr, opts);
    EXPECT_EQ(in.run("main").reason, StopReason::StepLimit);
}

TEST(Interp, NullDerefFaultsWithoutChecks)
{
    // Unsafe code writing through a null pointer hits the null page.
    Module m = compile(
        "void main() { u8* p = (u8*) 0; *p = 1; }");
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::MemoryFault);
}

TEST(Interp, OutOfBoundsWriteSilentlyCorruptsUnsafeCode)
{
    // The classic unsafe-C bug: writing one past the end of an array
    // corrupts the adjacent global; nothing traps.
    Module m = compile(
        "u8 buf[4];"
        "u8 victim;"
        "u16 main() {"
        "  u8* p = buf;"
        "  u16 i = 0;"
        "  while (i <= 4) { p[i] = 7; i++; }"  // off-by-one
        "  return victim;"
        "}");
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned);
    EXPECT_EQ(r.retVal.i, 7u) << "corruption should reach the neighbour";
}

TEST(Interp, ChkNullFires)
{
    Module m = compile("void main() { }");
    Function &f = *m.findFunc("main");
    // Rebuild main: chk_null on a null pointer, then ret.
    f.blocks.clear();
    f.vregs.clear();
    f.addBlock("entry");
    Builder b(m, f);
    b.setBlock(0);
    uint32_t p = b.constI(m.types().ptrTy(m.types().u8()), 0);
    b.check(Opcode::ChkNull, Operand::vreg(p), 1, 77);
    b.ret();
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::SafetyFault);
    EXPECT_EQ(r.flid, 77u);
}

TEST(Interp, ChkBoundsRespectsObjectExtent)
{
    Module m = compile("u8 arr[8]; void main() { }");
    Function &f = *m.findFunc("main");
    f.blocks.clear();
    f.vregs.clear();
    f.addBlock("entry");
    Builder b(m, f);
    b.setBlock(0);
    TypeId u8p = m.types().ptrTy(m.types().u8(), PtrKind::Seq);
    uint32_t base = b.addrGlobal(m.findGlobal("arr")->id, u8p);
    // In-bounds access at offset 7: fine.
    uint32_t p7 = b.ptrAdd(Operand::vreg(base), Operand::immInt(7), 1, u8p);
    b.check(Opcode::ChkBounds, Operand::vreg(p7), 1, 1);
    // Out-of-bounds at offset 8: faults with flid 2.
    uint32_t p8 = b.ptrAdd(Operand::vreg(base), Operand::immInt(8), 1, u8p);
    b.check(Opcode::ChkBounds, Operand::vreg(p8), 1, 2);
    b.ret();
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::SafetyFault);
    EXPECT_EQ(r.flid, 2u);
}

TEST(Interp, ChkUBoundAllowsBackwardMotionBelowBase)
{
    // FSEQ pointers only check the upper bound; moving below base is
    // caught by SEQ's lower-bound check instead.
    Module m = compile("u8 arr[8]; u8 pre; void main() { }");
    Function &f = *m.findFunc("main");
    f.blocks.clear();
    f.vregs.clear();
    f.addBlock("entry");
    Builder b(m, f);
    b.setBlock(0);
    TypeId u8p = m.types().ptrTy(m.types().u8(), PtrKind::Seq);
    uint32_t base = b.addrGlobal(m.findGlobal("arr")->id, u8p);
    uint32_t neg = b.ptrAdd(Operand::vreg(base), Operand::immInt(-1), 1, u8p);
    b.check(Opcode::ChkUBound, Operand::vreg(neg), 1, 1);  // passes
    b.check(Opcode::ChkBounds, Operand::vreg(neg), 1, 2);  // fires
    b.ret();
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::SafetyFault);
    EXPECT_EQ(r.flid, 2u);
}

TEST(Interp, BadIndirectCallTraps)
{
    Module m = compile(
        "void main() { fnptr f = null; f(); }");
    Interp in(m);
    EXPECT_EQ(in.run("main").reason, StopReason::BadIndirect);
}

TEST(Interp, InterruptPreemptsMainLoop)
{
    Module m = compile(
        "u16 ticks;"
        "u16 spin;"
        "interrupt(TIMER0) void on_t() { ticks++; }"
        "u16 main() {"
        "  while (ticks < 3) { spin++; }"
        "  return ticks;"
        "}");
    Interp in(m);
    in.scheduleInterrupt(100, 0);
    in.scheduleInterrupt(200, 0);
    in.scheduleInterrupt(300, 0);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned);
    EXPECT_EQ(r.retVal.i, 3u);
}

TEST(Interp, AtomicSectionDefersInterrupts)
{
    // The handler increments `ticks`. Main samples ticks twice inside
    // an atomic block scheduled to straddle an interrupt: both samples
    // must agree, proving the interrupt was deferred.
    Module m = compile(
        "u16 ticks;"
        "u16 a; u16 b; u16 pad;"
        "interrupt(TIMER0) void on_t() { ticks++; }"
        "u16 main() {"
        "  u16 i = 0;"
        "  atomic {"
        "    a = ticks;"
        "    while (i < 200) { pad += i; i++; }"
        "    b = ticks;"
        "  }"
        "  while (ticks == a) { pad++; }"  // interrupt lands after
        "  return b - a;"
        "}");
    Interp in(m);
    in.scheduleInterrupt(50, 0);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned);
    EXPECT_EQ(r.retVal.i, 0u);
}

TEST(Interp, SleepWakesOnInterrupt)
{
    Module m = compile(
        "u16 ticks;"
        "interrupt(TIMER0) void on_t() { ticks++; }"
        "u16 main() { return ticks; }");
    // Hand-craft: sleep, then return ticks.
    Function &f = *m.findFunc("main");
    f.blocks.clear();
    f.vregs.clear();
    f.addBlock("entry");
    Builder b(m, f);
    b.setBlock(0);
    Instr sl;
    sl.op = Opcode::Sleep;
    b.emit(sl);
    TypeId u16p = m.types().ptrTy(m.types().u16());
    uint32_t a = b.addrGlobal(m.findGlobal("ticks")->id, u16p);
    uint32_t v = b.load(m.types().u16(), Operand::vreg(a));
    b.ret(Operand::vreg(v));
    Interp in(m);
    in.scheduleInterrupt(5000, 0);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned);
    EXPECT_EQ(r.retVal.i, 1u);
    EXPECT_GE(in.steps(), 5000u) << "sleep must fast-forward time";
}

TEST(Interp, HaltsWhenSleepingForever)
{
    Module m = compile("void main() { }");
    Function &f = *m.findFunc("main");
    f.blocks.clear();
    f.vregs.clear();
    f.addBlock("entry");
    Builder b(m, f);
    b.setBlock(0);
    Instr sl;
    sl.op = Opcode::Sleep;
    b.emit(sl);
    b.ret();
    Interp in(m);
    EXPECT_EQ(in.run("main").reason, StopReason::Halted);
}

TEST(Interp, GlobalIntrospection)
{
    Module m = compile(
        "u16 counter = 7;"
        "void main() { counter = counter + 1; }");
    Interp in(m);
    EXPECT_EQ(in.readGlobalInt("counter"), 7u);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned);
    EXPECT_EQ(in.readGlobalInt("counter"), 8u);
}

TEST(Interp, RomGlobalsAreReadOnly)
{
    Module m = compile(
        "rom u8 table[2] = {5, 6};"
        "u16 main() { return table[0] + table[1]; }");
    Interp in(m);
    auto r = in.run("main");
    EXPECT_EQ(r.reason, StopReason::Returned);
    EXPECT_EQ(r.retVal.i, 11u);

    Module m2 = compile(
        "rom u8 table[2] = {5, 6};"
        "void main() { u8* p = table; p[0] = 1; }");
    Interp in2(m2);
    EXPECT_EQ(in2.run("main").reason, StopReason::MemoryFault);
}

} // namespace
} // namespace stos
