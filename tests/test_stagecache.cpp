/**
 * @file
 * StageCache tests: exactly-once stage execution under concurrent
 * requests, failure caching and rethrow, fingerprint sensitivity
 * (changing only CxpropOptions must NOT invalidate the safety stage;
 * changing SafetyConfig must), companion entries aliasing the
 * matrix's Baseline cells, and full Figure-3-matrix byte-identity of
 * cached vs cold builds.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/stagecache.h"

namespace stos {
namespace {

using namespace stos::core;
using namespace stos::tinyos;

/** The full Figure-3 build matrix as a build-only Experiment. */
core::BuildReport
figure3Builds(bool memoize)
{
    Experiment exp;
    exp.options().memoize = memoize;
    exp.options().simulate = false;
    exp.addAllApps();
    exp.addConfig(ConfigId::Baseline);
    exp.addConfigs(figure3Configs());
    return exp.run().builds;
}

TEST(StageCache, ExecutesEachStageExactlyOnceUnderContention)
{
    StageCache cache;
    const auto &app = appByName("BlinkTask");
    PipelineConfig cfg =
        configFor(ConfigId::SafeFlidInlineCxprop, app.platform);
    constexpr unsigned kThreads = 8;
    std::vector<std::shared_ptr<const BuildResult>> results(kThreads);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            results[t] = cache.build(app, cfg);
        });
    }
    for (auto &t : pool)
        t.join();

    StageCacheStats s = cache.stats();
    EXPECT_EQ(s.frontend.executed, 1u);
    EXPECT_EQ(s.safety.executed, 1u);
    EXPECT_EQ(s.opt.executed, 1u);
    EXPECT_EQ(s.backend.executed, 1u);
    EXPECT_EQ(s.backend.reused, kThreads - 1);
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(results[t].get(), results[0].get())
            << "all requesters must share one immutable product";
}

TEST(StageCache, FailuresAreCachedAndRethrownAtEveryLevel)
{
    StageCache cache;
    tinyos::AppInfo broken{"Broken", "Mica2", "void main( {", {}, "test", {}};
    PipelineConfig cfg = configFor(ConfigId::Baseline, broken.platform);
    EXPECT_THROW(cache.build(broken, cfg), std::exception);
    EXPECT_THROW(cache.build(broken, cfg), std::exception);
    EXPECT_THROW(cache.frontend(broken), std::exception);
    StageCacheStats s = cache.stats();
    EXPECT_EQ(s.frontend.executed, 1u)
        << "the failed parse must be memoized, not retried";
    EXPECT_EQ(s.backend.executed, 1u);
    EXPECT_EQ(s.backend.reused, 1u);
}

TEST(StageCache, SafetyFingerprintIgnoresCxpropOptions)
{
    const auto &app = appByName("BlinkTask");
    PipelineConfig c4 = configFor(ConfigId::SafeFlid, app.platform);
    PipelineConfig c5 =
        configFor(ConfigId::SafeFlidCxprop, app.platform);
    PipelineConfig c6 =
        configFor(ConfigId::SafeFlidInlineCxprop, app.platform);

    // C4/C5/C6 share the FLID safety transform: one safety key.
    EXPECT_EQ(StageCache::safetyKey(app, c4),
              StageCache::safetyKey(app, c5));
    EXPECT_EQ(StageCache::safetyKey(app, c4),
              StageCache::safetyKey(app, c6));
    // ...but distinct opt keys where cXprop options differ.
    EXPECT_NE(StageCache::optKey(app, c5), StageCache::optKey(app, c6));

    // Tweaking only CxpropOptions must not invalidate the safety
    // stage; tweaking SafetyConfig must.
    PipelineConfig cxTweak = c6;
    cxTweak.cxprop.domains.knownBits = false;
    EXPECT_EQ(StageCache::safetyKey(app, c6),
              StageCache::safetyKey(app, cxTweak));
    EXPECT_NE(StageCache::optKey(app, c6),
              StageCache::optKey(app, cxTweak));

    PipelineConfig safetyTweak = c6;
    safetyTweak.safety.errorMode = safety::ErrorMode::Terse;
    EXPECT_NE(StageCache::safetyKey(app, c6),
              StageCache::safetyKey(app, safetyTweak));

    // Baseline/C7 share the unsafe pass-through.
    PipelineConfig base = configFor(ConfigId::Baseline, app.platform);
    PipelineConfig c7 =
        configFor(ConfigId::UnsafeInlineCxprop, app.platform);
    EXPECT_EQ(StageCache::safetyKey(app, base),
              StageCache::safetyKey(app, c7));

    // The platform only enters at the backend stage.
    PipelineConfig telos = c4;
    telos.platform = "TelosB";
    EXPECT_EQ(StageCache::optKey(app, c4),
              StageCache::optKey(app, telos));
    EXPECT_NE(StageCache::buildKey(app, c4),
              StageCache::buildKey(app, telos));
}

TEST(StageCache, SharedFingerprintsShareOneExecution)
{
    StageCache cache;
    const auto &app = appByName("BlinkTask");
    PipelineConfig c4 = configFor(ConfigId::SafeFlid, app.platform);
    PipelineConfig c5 =
        configFor(ConfigId::SafeFlidCxprop, app.platform);
    PipelineConfig c6 =
        configFor(ConfigId::SafeFlidInlineCxprop, app.platform);

    auto r4 = cache.build(app, c4);
    auto r5 = cache.build(app, c5);
    auto r6 = cache.build(app, c6);
    ASSERT_NE(r4, nullptr);
    ASSERT_NE(r5, nullptr);
    ASSERT_NE(r6, nullptr);

    StageCacheStats s = cache.stats();
    EXPECT_EQ(s.frontend.executed, 1u);
    EXPECT_EQ(s.safety.executed, 1u)
        << "C4/C5/C6 must share one safety run";
    EXPECT_EQ(s.opt.executed, 3u);
    EXPECT_EQ(s.backend.executed, 3u);
    // The shared safety product is one object, not three equal ones.
    EXPECT_EQ(cache.safety(app, c4).get(), cache.safety(app, c6).get());

    // A different safety config forces a new safety run.
    PipelineConfig c1 =
        configFor(ConfigId::SafeVerboseRam, app.platform);
    cache.build(app, c1);
    EXPECT_EQ(cache.stats().safety.executed, 2u);
    EXPECT_EQ(cache.stats().frontend.executed, 1u);
}

TEST(StageCache, CompanionAliasesTheMatrixBaselineCell)
{
    StageCache cache;
    const auto &app = appByName("CntToLedsAndRfm");
    PipelineConfig base = configFor(ConfigId::Baseline, app.platform);
    auto cell = cache.build(app, base);
    size_t backendRuns = cache.stats().backend.executed;

    bool builtHere = false;
    auto image =
        cache.companionImage(app.name, app.platform, &builtHere);
    EXPECT_TRUE(builtHere);
    EXPECT_EQ(cache.stats().backend.executed, backendRuns)
        << "the companion must reuse the matrix's Baseline build";
    EXPECT_EQ(image.get(), &cell->image)
        << "the companion image must alias the cached BuildResult";

    auto decoded = cache.companionDecode(app.name, app.platform);
    EXPECT_EQ(&decoded->program(), image.get());
    EXPECT_EQ(cache.companionBuilds(), 1u);
    EXPECT_GE(cache.companionHits(), 1u);
}

TEST(StageCache, Figure3CachedMatchesColdByteForByte)
{
    // The acceptance gate of the whole redesign: on the full Figure-3
    // matrix, safety executions equal the number of distinct
    // (app, safety-fingerprint) pairs — 5 error-mode variants per app,
    // not 8 cells — while every cached BuildResult stays
    // byte-identical to a cold per-cell compile.
    BuildReport cached = figure3Builds(true);
    BuildReport cold = figure3Builds(false);

    ASSERT_TRUE(cached.allOk());
    ASSERT_TRUE(cold.allOk());
    EXPECT_EQ(cached.frontendParses, cached.numApps);
    EXPECT_EQ(cached.safetyRuns, 5 * cached.numApps)
        << "unsafe + VerboseRam + VerboseRom + Terse + Flid per app";
    EXPECT_EQ(cached.optRuns, cached.records.size())
        << "every Figure-3 column has a distinct opt fingerprint chain";
    EXPECT_EQ(cached.backendRuns, cached.records.size());
    EXPECT_EQ(cached.safetyReuses, 3 * cached.numApps)
        << "C5/C6 reuse C4's safety run; C7 reuses Baseline's";
    EXPECT_GT(cached.stageReuses(), 0u);

    ASSERT_EQ(cached.records.size(), cold.records.size());
    for (size_t i = 0; i < cached.records.size(); ++i) {
        std::string why;
        EXPECT_TRUE(BuildDriver::recordsEquivalent(
            cold.records[i], cached.records[i], &why))
            << why;
    }
}

TEST(StageCache, PersistentCacheServesARepeatRunEntirely)
{
    StageCache cache;
    Experiment exp;
    exp.options().simulate = false;
    exp.addApp(appByName("BlinkTask"));
    exp.addApp(appByName("SenseToRfm"));
    exp.addConfig(ConfigId::Baseline);
    exp.addConfig(ConfigId::SafeFlid);

    BuildReport first = exp.buildMatrix(cache);
    ASSERT_TRUE(first.allOk());
    EXPECT_EQ(first.backendRuns, first.records.size());

    BuildReport second = exp.buildMatrix(cache);
    ASSERT_TRUE(second.allOk());
    EXPECT_EQ(second.frontendParses, 0u);
    EXPECT_EQ(second.safetyRuns, 0u);
    EXPECT_EQ(second.optRuns, 0u);
    EXPECT_EQ(second.backendRuns, 0u)
        << "a repeat run over one cache must rebuild nothing";
    EXPECT_EQ(second.backendReuses, second.records.size());
    for (size_t i = 0; i < first.records.size(); ++i) {
        std::string why;
        EXPECT_TRUE(BuildDriver::recordsEquivalent(
            first.records[i], second.records[i], &why))
            << why;
    }
}

TEST(StageCache, ContentKeyedAppsDoNotCollideOnName)
{
    StageCache cache;
    tinyos::AppInfo a{"same", "Mica2",
                      "void main() { stos_run_scheduler(); }", {},
                      "test", {}};
    tinyos::AppInfo b{"same", "Mica2",
                      "task void t() { } void main() { post t; "
                      "stos_run_scheduler(); }",
                      {}, "test", {}};
    EXPECT_NE(StageCache::appKey(a), StageCache::appKey(b));
    PipelineConfig cfg = configFor(ConfigId::Baseline, "Mica2");
    auto ra = cache.build(a, cfg);
    auto rb = cache.build(b, cfg);
    EXPECT_EQ(cache.stats().frontend.executed, 2u);
    EXPECT_NE(ra.get(), rb.get());
}

TEST(StageCache, FrontendKeyIsSensitiveToTheLibrarySource)
{
    // The frontend parses library + app together, so the appKey must
    // fingerprint both inputs: an edit to the shared TinyOS library
    // has to miss the cache, not silently serve the pre-edit product
    // (the bug: only the app source was hashed).
    const auto &app = appByName("BlinkTask");
    EXPECT_EQ(StageCache::appKey(app),
              StageCache::appKey(app, tinyos::libSource()));
    std::string editedLib =
        tinyos::libSource() + "\nu8 __lib_extra;\n";
    EXPECT_NE(StageCache::appKey(app),
              StageCache::appKey(app, editedLib))
        << "a library edit must change the frontend content key";
    // The whole downstream chain inherits the miss.
    PipelineConfig cfg =
        configFor(ConfigId::SafeFlidInlineCxprop, app.platform);
    EXPECT_NE(StageCache::appKey(app, editedLib) + "|" +
                  safetyFingerprint(cfg),
              StageCache::safetyKey(app, cfg));
}

TEST(BuildReport, SummaryAndEmittersSurfaceStageCounters)
{
    Experiment exp;
    exp.options().simulate = false;
    exp.addApp(appByName("BlinkTask"));
    exp.addConfig(ConfigId::SafeFlid);
    exp.addConfig(ConfigId::SafeFlidCxprop);
    BuildReport rep = exp.run().builds;
    ASSERT_TRUE(rep.allOk());
    EXPECT_EQ(rep.safetyRuns, 1u);
    EXPECT_EQ(rep.safetyReuses, 1u);

    EXPECT_NE(rep.summary().find("safety 1/1"), std::string::npos)
        << rep.summary();

    std::ostringstream json;
    rep.emitJson(json);
    EXPECT_NE(json.str().find("\"safety_runs\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"stage_reuses\":"), std::string::npos);
    EXPECT_NE(json.str().find("\"safety_reused\": true"),
              std::string::npos);

    std::ostringstream csv;
    rep.emitCsv(csv);
    std::istringstream in(csv.str());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_NE(header.find("safety_reused"), std::string::npos);
    EXPECT_NE(header.find("opt_reused"), std::string::npos);
}

} // namespace
} // namespace stos
