/**
 * @file
 * Unit tests for the support library.
 */
#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/source_loc.h"
#include "support/util.h"

namespace stos {
namespace {

TEST(SourceManager, AddAndDescribe)
{
    SourceManager sm;
    uint32_t id = sm.addBuffer("app.tc", "u8 x;");
    EXPECT_EQ(sm.fileName(id), "app.tc");
    EXPECT_EQ(sm.fileText(id), "u8 x;");
    EXPECT_EQ(sm.describe({id, 3, 7}), "app.tc:3:7");
    EXPECT_EQ(sm.describe({}), "<unknown>");
}

TEST(SourceManager, FileZeroIsUnknown)
{
    SourceManager sm;
    EXPECT_EQ(sm.fileName(0), "<unknown>");
    EXPECT_EQ(sm.numFiles(), 1u);
}

TEST(Diagnostics, CountsErrors)
{
    DiagnosticEngine d;
    EXPECT_FALSE(d.hasErrors());
    d.warning({}, "w");
    EXPECT_FALSE(d.hasErrors());
    d.error({}, "e1");
    d.error({}, "e2");
    EXPECT_TRUE(d.hasErrors());
    EXPECT_EQ(d.numErrors(), 2u);
    EXPECT_EQ(d.all().size(), 3u);
}

TEST(Diagnostics, DumpContainsMessages)
{
    SourceManager sm;
    uint32_t id = sm.addBuffer("f.tc", "");
    DiagnosticEngine d(&sm);
    d.error({id, 2, 1}, "bad thing");
    std::string out = d.dump();
    EXPECT_NE(out.find("f.tc:2:1"), std::string::npos);
    EXPECT_NE(out.find("error: bad thing"), std::string::npos);
}

TEST(Util, Strfmt)
{
    EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Util, AlignUp)
{
    EXPECT_EQ(alignUp(0, 4), 0u);
    EXPECT_EQ(alignUp(1, 4), 4u);
    EXPECT_EQ(alignUp(4, 4), 4u);
    EXPECT_EQ(alignUp(5, 2), 6u);
}

TEST(Util, PanicThrows)
{
    EXPECT_THROW(panic("boom"), InternalError);
    EXPECT_THROW(fatal("user"), FatalError);
}

} // namespace
} // namespace stos
