/**
 * @file
 * ArtifactStore tests: serialization round-trips are byte-identical
 * for every stage product across the whole app corpus, the store's
 * load/store contract (hits, misses, stats), every corruption mode
 * (truncation, version-stamp mismatch, key mismatch) degrading to a
 * miss — never a wrong answer — read-only mode, the maxBytes
 * eviction cap, and two Experiments sharing one directory so the
 * second process executes zero pipeline stages.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/experiment.h"
#include "core/stagecache.h"
#include "support/binio.h"

namespace stos {
namespace {

namespace fs = std::filesystem;
using namespace stos::core;
using namespace stos::tinyos;
using support::BinReader;
using support::BinWriter;

/** A unique store directory under the system temp dir, removed on
 *  scope exit so test runs never observe each other's artifacts. */
struct TempDir {
    fs::path path;
    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("stos-artifactstore-" + tag + "-" +
                std::to_string(::getpid()));
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
};

/** serialize -> deserialize -> serialize must reproduce the bytes. */
template <typename T>
void
expectRoundTripIdentical(const T &product, const std::string &label)
{
    BinWriter w;
    product.serialize(w);
    BinReader r(w.data());
    T copy = T::deserialize(r);
    EXPECT_TRUE(r.atEnd()) << label << ": trailing bytes after decode";
    BinWriter w2;
    copy.serialize(w2);
    EXPECT_EQ(w.data(), w2.data())
        << label << ": re-serialization is not byte-identical";
}

TEST(ArtifactSerialization, RoundTripsByteIdenticallyForEveryApp)
{
    // The store is only sound if decode(encode(p)) encodes back to
    // the same bytes for every product the pipeline can produce, so
    // sweep the whole corpus under the configuration that exercises
    // every stage body (safety checks, inliner, cXprop, backend).
    StageCache cache;
    for (const auto &app : allApps()) {
        PipelineConfig cfg =
            configFor(ConfigId::SafeFlidInlineCxprop, app.platform);
        expectRoundTripIdentical(*cache.frontend(app),
                                 app.name + "/frontend");
        expectRoundTripIdentical(*cache.safety(app, cfg),
                                 app.name + "/safety");
        expectRoundTripIdentical(*cache.opt(app, cfg),
                                 app.name + "/opt");
        expectRoundTripIdentical(*cache.build(app, cfg),
                                 app.name + "/backend");
    }
}

TEST(ArtifactStore, StoresAndLoadsTheExactPayload)
{
    TempDir dir("roundtrip");
    ArtifactStore store(CacheOptions{dir.str(), false, 0});
    const std::string key = "app|safety|opt|backend";
    const std::string payload{"\x01\x00two\xff three", 13};

    std::string out;
    EXPECT_FALSE(store.load(Stage::Backend, key, &out));
    store.store(Stage::Backend, key, payload);
    ASSERT_TRUE(store.load(Stage::Backend, key, &out));
    EXPECT_EQ(out, payload);

    ArtifactStoreStats s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.corrupt, 0u);
    EXPECT_EQ(s.bytesRead, payload.size());

    // A second store over the same directory sees the artifact — the
    // cross-process contract, minus the process boundary.
    ArtifactStore other(CacheOptions{dir.str(), false, 0});
    ASSERT_TRUE(other.load(Stage::Backend, key, &out));
    EXPECT_EQ(out, payload);
    // Stages are namespaced: the same key under another stage misses.
    EXPECT_FALSE(other.load(Stage::Opt, key, &out));
}

TEST(ArtifactStore, TruncatedArtifactIsAMissAndIsUnlinked)
{
    TempDir dir("truncated");
    ArtifactStore store(CacheOptions{dir.str(), false, 0});
    const std::string key = "k";
    store.store(Stage::Opt, key, std::string(256, 'x'));

    fs::path victim = store.pathFor(Stage::Opt, key);
    ASSERT_TRUE(fs::exists(victim));
    fs::resize_file(victim, fs::file_size(victim) / 2);

    std::string out;
    EXPECT_FALSE(store.load(Stage::Opt, key, &out));
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(victim))
        << "a rejected artifact must be unlinked so the rebuild's "
           "write-back replaces it";
}

TEST(ArtifactStore, VersionStampMismatchInvalidates)
{
    TempDir dir("version");
    ArtifactStore store(CacheOptions{dir.str(), false, 0});
    const std::string key = "k";
    store.store(Stage::Frontend, key, "payload");

    // The u32 format version sits right after the 8-byte magic.
    fs::path victim = store.pathFor(Stage::Frontend, key);
    {
        std::fstream f(victim, std::ios::in | std::ios::out |
                                   std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(8);
        char v = 0;
        f.get(v);
        f.seekp(8);
        f.put(static_cast<char>(v + 1));
    }

    std::string out;
    EXPECT_FALSE(store.load(Stage::Frontend, key, &out))
        << "an artifact stamped with another format version must be "
           "a miss";
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(victim));
}

TEST(ArtifactStore, StoredKeyMismatchIsAMiss)
{
    // The file name only carries a 64-bit hash of the key; the full
    // key inside the artifact is the authority. Simulate a hash
    // collision by renaming one key's artifact onto another's path.
    TempDir dir("keymismatch");
    ArtifactStore store(CacheOptions{dir.str(), false, 0});
    store.store(Stage::Backend, "keyA", "payloadA");
    fs::rename(store.pathFor(Stage::Backend, "keyA"),
               store.pathFor(Stage::Backend, "keyB"));

    std::string out;
    EXPECT_FALSE(store.load(Stage::Backend, "keyB", &out));
    EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(ArtifactStore, ReadOnlyModeServesHitsButNeverWrites)
{
    TempDir dir("readonly");
    {
        ArtifactStore writer(CacheOptions{dir.str(), false, 0});
        writer.store(Stage::Backend, "k", "payload");
    }
    ArtifactStore ro(CacheOptions{dir.str(), true, 0});
    std::string out;
    ASSERT_TRUE(ro.load(Stage::Backend, "k", &out));
    EXPECT_EQ(out, "payload");

    ro.store(Stage::Backend, "other", "never lands");
    EXPECT_EQ(ro.stats().writes, 0u);
    EXPECT_FALSE(ro.load(Stage::Backend, "other", &out));

    // Exactly one artifact in the directory: the writer's.
    size_t files = 0;
    for (const auto &e : fs::directory_iterator(dir.path))
        files += e.is_regular_file();
    EXPECT_EQ(files, 1u);
}

TEST(ArtifactStore, MaxBytesEvictsOldestArtifactsFirst)
{
    TempDir dir("evict");
    const std::string payload(4096, 'p');
    ArtifactStore probe(CacheOptions{dir.str(), false, 0});
    probe.store(Stage::Backend, "probe", payload);
    const auto artifactSize =
        fs::file_size(probe.pathFor(Stage::Backend, "probe"));
    fs::remove(probe.pathFor(Stage::Backend, "probe"));

    // Room for two artifacts; write three with distinct mtimes.
    ArtifactStore store(
        CacheOptions{dir.str(), false, 2 * artifactSize + 1});
    for (const char *key : {"first", "second", "third"}) {
        store.store(Stage::Backend, key, payload);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    std::string out;
    EXPECT_GE(store.stats().evictions, 1u);
    EXPECT_FALSE(store.load(Stage::Backend, "first", &out))
        << "the oldest artifact must be the one evicted";
    EXPECT_TRUE(store.load(Stage::Backend, "third", &out));

    uint64_t total = 0;
    for (const auto &e : fs::directory_iterator(dir.path))
        if (e.is_regular_file())
            total += e.file_size();
    EXPECT_LE(total, 2 * artifactSize + 1);
}

TEST(ArtifactStore, SecondExperimentOverASharedDirectoryRunsNothing)
{
    // The acceptance gate at unit scale: two Experiments (standing in
    // for two processes) bound to one directory — the second executes
    // zero pipeline stages and reproduces the first's cells exactly.
    TempDir dir("shared");
    ExperimentOptions opts;
    opts.simulate = false;
    opts.cache.dir = dir.str();
    auto declare = [&] {
        Experiment exp(opts);
        exp.addApp(appByName("BlinkTask"));
        exp.addApp(appByName("SenseToRfm"));
        exp.addConfig(ConfigId::Baseline);
        exp.addConfig(ConfigId::SafeFlid);
        return exp;
    };

    BuildReport cold = declare().run().builds;
    ASSERT_TRUE(cold.allOk());
    EXPECT_EQ(cold.diskHits(), 0u);
    EXPECT_GT(cold.cacheBytesWritten, 0u);

    BuildReport warm = declare().run().builds;
    ASSERT_TRUE(warm.allOk());
    EXPECT_EQ(warm.frontendParses, 0u);
    EXPECT_EQ(warm.safetyRuns, 0u);
    EXPECT_EQ(warm.optRuns, 0u);
    EXPECT_EQ(warm.backendRuns, 0u)
        << "a warmed directory must serve the repeat run entirely";
    EXPECT_EQ(warm.backendDiskHits, warm.records.size());
    EXPECT_GT(warm.cacheBytesRead, 0u);

    ASSERT_EQ(cold.records.size(), warm.records.size());
    for (size_t i = 0; i < cold.records.size(); ++i) {
        std::string why;
        EXPECT_TRUE(BuildDriver::recordsEquivalent(
            cold.records[i], warm.records[i], &why))
            << why;
    }
}

TEST(ArtifactStore, CorruptedBackendArtifactTriggersOneCleanRebuild)
{
    TempDir dir("rebuild");
    const auto &app = appByName("BlinkTask");
    PipelineConfig cfg = configFor(ConfigId::SafeFlid, app.platform);

    ArtifactStore store(CacheOptions{dir.str(), false, 0});
    std::shared_ptr<const BuildResult> cold;
    {
        StageCache cache(&store);
        cold = cache.build(app, cfg);
    }
    fs::path victim =
        store.pathFor(Stage::Backend, StageCache::buildKey(app, cfg));
    ASSERT_TRUE(fs::exists(victim));
    fs::resize_file(victim, fs::file_size(victim) / 2);

    StageCache cache(&store);
    auto rebuilt = cache.build(app, cfg);
    StageCacheStats s = cache.stats();
    EXPECT_EQ(s.backend.executed, 1u)
        << "the truncated artifact must degrade to a rebuild";
    EXPECT_EQ(s.opt.diskHits, 1u)
        << "the rebuild's inputs still come from the store";
    EXPECT_EQ(s.opt.executed, 0u);
    EXPECT_EQ(s.frontend.executed, 0u);

    std::string why;
    EXPECT_TRUE(BuildDriver::resultsEquivalent(*cold, *rebuilt, &why))
        << why;
    // The rebuild wrote the artifact back, whole again.
    StageCache third(&store);
    third.build(app, cfg);
    EXPECT_EQ(third.stats().backend.executed, 0u);
    EXPECT_EQ(third.stats().backend.diskHits, 1u);
}

} // namespace
} // namespace stos
