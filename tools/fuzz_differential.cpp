/**
 * @file
 * Grammar-driven differential fuzzer driver. Generates N seeded TinyC
 * programs, runs each through the per-program oracles (interpreter vs
 * all three simulator cores — legacy, predecoded, and direct-threaded
 * — across unsafe / safe / optimized builds), then
 * runs the surviving corpus through the Experiment facade oracles
 * (memoized-parallel vs cold-serial, cold vs cached byte-identity).
 * Exits nonzero on the first divergence, printing the seed so the run
 * is reproducible with --dump / --minimize.
 *
 *   fuzz_differential --seed 1 --count 500         # the CI sweep
 *   fuzz_differential --dump 42                    # print program 42
 *   fuzz_differential --minimize 42 --out bug.tc   # shrink a crasher
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "core/pool.h"
#include "fuzz/fuzz.h"

namespace {

void
usage()
{
    std::cerr
        << "usage: fuzz_differential [options]\n"
           "  --seed N      first seed (default 1)\n"
           "  --count N     number of programs (default 500)\n"
           "  --jobs N      worker threads (default: hardware)\n"
           "  --no-batch    skip the Experiment batch oracles\n"
           "  --batch N     apps per Experiment batch (default 25)\n"
           "  --oob N       deliberately out-of-bounds programs for\n"
           "                the safety-placement oracle (default\n"
           "                count/5; 0 disables)\n"
           "  --dump S      print the program for seed S and exit\n"
           "  --dump-oob S  print the OOB program for seed S and exit\n"
           "  --minimize S  shrink seed S against the oracles\n"
           "  --out FILE    write --dump/--minimize output to FILE\n";
}

uint64_t
parseU64(const char *s)
{
    return std::strtoull(s, nullptr, 10);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace stos;

    uint64_t seed = 1;
    uint64_t count = 500;
    uint64_t oobCount = UINT64_MAX;  // default resolved from count
    unsigned jobs = 0;
    bool runBatch = true;
    size_t batchSize = 25;
    bool doDump = false, doDumpOob = false, doMinimize = false;
    uint64_t targetSeed = 0;
    std::string outFile;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--seed") {
            seed = parseU64(next());
        } else if (a == "--count") {
            count = parseU64(next());
        } else if (a == "--jobs") {
            jobs = static_cast<unsigned>(parseU64(next()));
        } else if (a == "--no-batch") {
            runBatch = false;
        } else if (a == "--batch") {
            batchSize = static_cast<size_t>(parseU64(next()));
        } else if (a == "--oob") {
            oobCount = parseU64(next());
        } else if (a == "--dump") {
            doDump = true;
            targetSeed = parseU64(next());
        } else if (a == "--dump-oob") {
            doDumpOob = true;
            targetSeed = parseU64(next());
        } else if (a == "--minimize") {
            doMinimize = true;
            targetSeed = parseU64(next());
        } else if (a == "--out") {
            outFile = next();
        } else {
            usage();
            return 2;
        }
    }

    if (oobCount == UINT64_MAX)
        oobCount = count / 5;

    if (doDump || doDumpOob || doMinimize) {
        std::string src = doDumpOob
                              ? fuzz::generateOobProgram(targetSeed)
                              : fuzz::generateProgram(targetSeed);
        if (doMinimize) {
            fuzz::Divergence d = fuzz::checkProgram(src);
            if (!d) {
                std::cerr << "seed " << targetSeed
                          << " does not diverge; nothing to minimize\n";
                return 1;
            }
            std::cerr << "seed " << targetSeed << " diverges ["
                      << d.oracle << "]: " << d.detail << "\n";
            // A candidate must reproduce the *same* oracle failure;
            // otherwise minimization drifts onto unrelated breakage
            // (e.g. deleting main entirely).
            std::string oracle = d.oracle;
            src = fuzz::minimize(src, [&](const std::string &cand) {
                return fuzz::checkProgram(cand).oracle == oracle;
            });
            fuzz::Divergence dm = fuzz::checkProgram(src);
            std::cerr << "minimized to "
                      << std::count(src.begin(), src.end(), '\n')
                      << " lines, still diverges [" << dm.oracle
                      << "]\n";
        }
        if (outFile.empty()) {
            std::cout << src;
        } else {
            std::ofstream os(outFile);
            os << src;
            std::cerr << "wrote " << outFile << "\n";
        }
        return 0;
    }

    // Phase 1: per-program oracles, parallel across seeds.
    std::mutex mu;
    std::vector<std::pair<uint64_t, fuzz::Divergence>> failures;
    std::vector<std::pair<std::string, std::string>> corpus(count);
    core::runOnPool(
        core::resolveJobs(jobs, count), count, [&](size_t k) {
            uint64_t s = seed + k;
            std::string src = fuzz::generateProgram(s);
            fuzz::Divergence d = fuzz::checkProgram(src);
            std::lock_guard<std::mutex> lock(mu);
            corpus[k] = {"fz" + std::to_string(s), src};
            if (d) {
                failures.push_back({s, d});
                std::cerr << "DIVERGENCE seed " << s << " [" << d.oracle
                          << "]: " << d.detail << "\n";
            }
        });
    std::cerr << "per-program: " << count << " seeds ["
              << seed << ", " << (seed + count - 1) << "], "
              << failures.size() << " divergence(s)\n";
    if (!failures.empty()) {
        std::cerr << "reproduce: fuzz_differential --minimize "
                  << failures.front().first << "\n";
        return 1;
    }

    // Phase 1.5: safety-check placement. Deliberately out-of-bounds
    // programs must trap on every safe engine, with one common FLID.
    if (oobCount > 0) {
        std::vector<std::pair<uint64_t, fuzz::Divergence>> oobFailures;
        core::runOnPool(
            core::resolveJobs(jobs, oobCount), oobCount, [&](size_t k) {
                uint64_t s = seed + k;
                std::string src = fuzz::generateOobProgram(s);
                fuzz::Divergence d = fuzz::checkOobProgram(src);
                if (d) {
                    std::lock_guard<std::mutex> lock(mu);
                    oobFailures.push_back({s, d});
                    std::cerr << "DIVERGENCE oob seed " << s << " ["
                              << d.oracle << "]: " << d.detail << "\n";
                }
            });
        std::cerr << "oob placement: " << oobCount << " programs, "
                  << oobFailures.size() << " divergence(s)\n";
        if (!oobFailures.empty()) {
            std::cerr << "reproduce: fuzz_differential --dump-oob "
                      << oobFailures.front().first << "\n";
            return 1;
        }
    }

    // Phase 2: corpus oracles via the Experiment facade, in batches
    // (each batch is a full build+sim matrix plus its serial
    // reference, so batches keep the cost bounded).
    if (runBatch && batchSize > 0) {
        for (size_t at = 0; at < corpus.size(); at += batchSize) {
            size_t n = std::min(batchSize, corpus.size() - at);
            std::vector<std::pair<std::string, std::string>> batch(
                corpus.begin() + static_cast<ptrdiff_t>(at),
                corpus.begin() + static_cast<ptrdiff_t>(at + n));
            fuzz::Divergence d = fuzz::checkBatch(batch, jobs);
            if (d) {
                std::cerr << "DIVERGENCE batch at " << at << " ["
                          << d.oracle << "]: " << d.detail << "\n";
                return 1;
            }
        }
        std::cerr << "batch: " << corpus.size() << " apps through the "
                  << "Experiment oracles, no divergence\n";
    }
    std::cerr << "OK\n";
    return 0;
}
