/**
 * @file
 * Seeded TinyC program generator. The grammar mirrors what the
 * frontend accepts; the output is correct-by-construction so that
 * every build mode and every execution engine must agree on it:
 *
 *  - memory-safe: array indices are masked to power-of-two sizes,
 *    pointers always carry a conservative extent, rom and
 *    string-initialized globals are never written, pointers to locals
 *    never escape into globals — so safe builds never trip a check
 *    and unsafe builds never corrupt memory;
 *  - terminating: loops are canonical counted loops over reserved
 *    counters the body cannot write, calls form a DAG (a function
 *    only calls functions defined before it), and `continue` is
 *    emitted only inside `for` (whose step still runs);
 *  - deterministic: no interrupts, tasks, or device reads — the only
 *    observable effects are UART/LED writes and the final dump of
 *    every mutable global, which main emits before returning.
 *
 * Division, remainder, and shifts are generated with arbitrary
 * operands on purpose: their corner cases (x/0, INT_MIN/-1, shift
 * counts past the width) are exactly where the engines historically
 * diverged.
 */
#include "fuzz/fuzz.h"

#include <string>
#include <vector>

namespace stos::fuzz {
namespace {

enum class Ty : uint8_t { U8, I8, U16, I16, U32, I32 };
constexpr Ty kAllTys[] = {Ty::U8, Ty::I8, Ty::U16,
                          Ty::I16, Ty::U32, Ty::I32};

const char *
tyName(Ty t)
{
    switch (t) {
      case Ty::U8: return "u8";
      case Ty::I8: return "i8";
      case Ty::U16: return "u16";
      case Ty::I16: return "i16";
      case Ty::U32: return "u32";
      case Ty::I32: return "i32";
    }
    return "u8";
}

uint32_t
tyBits(Ty t)
{
    switch (t) {
      case Ty::U8: case Ty::I8: return 8;
      case Ty::U16: case Ty::I16: return 16;
      default: return 32;
    }
}

struct Var {
    std::string name;
    Ty ty;
    bool writable;
};

struct Arr {
    std::string name;
    Ty ty;
    uint32_t size;   ///< power of two
    bool writable;   ///< false for rom / string globals
    bool isString;   ///< NUL-terminated, safe for stos_uart_puts
};

struct Field {
    std::string name;
    Ty ty;
    uint32_t arr;    ///< 0 = scalar, else power-of-two count
};

struct StructDef {
    std::string name;
    std::vector<Field> fields;
};

struct StructVar {
    std::string name;
    uint32_t sidx;
    bool isPtr;      ///< struct pointer (extent 1)
};

struct PtrVar {
    std::string name;
    Ty ty;
    uint32_t extent; ///< p[0..extent-1] are dereferenceable
};

struct Helper {
    struct Param {
        std::string name;
        Ty ty;
        bool isPtr;  ///< callee assumes extent >= 4
    };
    std::string name;
    Ty retTy;
    bool retPtr;     ///< returns retTy* with extent >= 1
    std::vector<Param> params;
};

class Generator {
  public:
    Generator(uint64_t seed, const GenOptions &opts)
        : rng_(seed), opts_(opts)
    {
    }

    std::string
    run()
    {
        genStructs();
        genGlobals();
        genProcs();
        genHelpers();
        genMain();
        std::string out;
        for (const std::string &l : lines_) {
            out += l;
            out += '\n';
        }
        return out;
    }

  private:
    //--- emission -----------------------------------------------------
    void
    emit(const std::string &line)
    {
        lines_.push_back(std::string(indent_ * 2, ' ') + line);
    }

    std::string
    num(uint64_t v)
    {
        return std::to_string(v);
    }

    //--- random pieces ------------------------------------------------
    Ty
    anyTy()
    {
        return kAllTys[rng_.range(6)];
    }

    /** A literal of exact type t: (t)<unsigned decimal>. */
    std::string
    lit(Ty t)
    {
        uint32_t bits = tyBits(t);
        uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
        uint64_t v;
        switch (rng_.range(8)) {
          case 0: v = 0; break;
          case 1: v = 1; break;
          case 2: v = mask; break;                 // all ones (-1)
          case 3: v = 1ull << (bits - 1); break;   // sign bit (INT_MIN)
          case 4: v = (1ull << (bits - 1)) - 1; break;  // INT_MAX
          case 5: v = rng_.range(17); break;       // small
          default: v = rng_.next() & mask; break;  // anything
        }
        return "(" + std::string(tyName(t)) + ")" + num(v & mask);
    }

    /** A cheap u8-ish index source: loop counter, scalar, or literal. */
    std::string
    idxSource()
    {
        if (!counters_.empty() && rng_.chance(60))
            return counters_[rng_.range(
                static_cast<uint32_t>(counters_.size()))];
        if (!scalars_.empty() && rng_.chance(50)) {
            const Var &v = scalars_[rng_.range(
                static_cast<uint32_t>(scalars_.size()))];
            return "(u8)" + v.name;
        }
        return num(rng_.range(256));
    }

    /** An in-bounds index into `size` (power of two) elements. */
    std::string
    index(uint32_t size)
    {
        return "(u8)(" + idxSource() + " & " + num(size - 1) + ")";
    }

    /** A readable scalar lvalue/rvalue of exact type t. */
    std::string
    scalarRead(Ty t, int depth)
    {
        for (int tries = 0; tries < 4; ++tries) {
            switch (rng_.range(5)) {
              case 0: {  // direct scalar (cast if type differs)
                if (scalars_.empty())
                    break;
                const Var &v = scalars_[rng_.range(
                    static_cast<uint32_t>(scalars_.size()))];
                if (v.ty == t)
                    return v.name;
                return "(" + std::string(tyName(t)) + ")" + v.name;
              }
              case 1: {  // array element
                if (arrays_.empty())
                    break;
                const Arr &a = arrays_[rng_.range(
                    static_cast<uint32_t>(arrays_.size()))];
                std::string e = a.name + "[" + index(a.size) + "]";
                if (a.ty == t)
                    return e;
                return "(" + std::string(tyName(t)) + ")" + e;
              }
              case 2: {  // struct field
                std::string e = fieldRead();
                if (e.empty())
                    break;
                return "(" + std::string(tyName(t)) + ")" + e;
              }
              case 3: {  // pointer deref
                if (ptrs_.empty())
                    break;
                const PtrVar &p = ptrs_[rng_.range(
                    static_cast<uint32_t>(ptrs_.size()))];
                std::string e = p.extent > 1 && rng_.chance(60)
                    ? p.name + "[" + index(p.extent) + "]"
                    : "(*" + p.name + ")";
                if (p.ty == t)
                    return e;
                return "(" + std::string(tyName(t)) + ")" + e;
              }
              default: {  // call of a value-returning helper
                if (depth <= 0)
                    break;
                std::string e = callExpr(false);
                if (e.empty())
                    break;
                return "(" + std::string(tyName(t)) + ")" + e;
              }
            }
        }
        return lit(t);
    }

    /** A random scalar field access (possibly via struct pointer). */
    std::string
    fieldRead()
    {
        if (structVars_.empty())
            return "";
        const StructVar &sv = structVars_[rng_.range(
            static_cast<uint32_t>(structVars_.size()))];
        const StructDef &sd = structs_[sv.sidx];
        const Field &f =
            sd.fields[rng_.range(static_cast<uint32_t>(sd.fields.size()))];
        std::string acc = sv.isPtr ? sv.name + "->" + f.name
                                   : sv.name + "." + f.name;
        if (f.arr)
            acc += "[" + index(f.arr) + "]";
        return acc;
    }

    /** Call text of a random helper; "" if none callable. retPtr
     *  selects pointer-returning helpers. */
    std::string
    callExpr(bool retPtr)
    {
        std::vector<uint32_t> cands;
        for (uint32_t i = 0; i < helpers_.size(); ++i)
            if (helpers_[i].retPtr == retPtr && callableHelpers_ > i)
                cands.push_back(i);
        if (cands.empty())
            return "";
        const Helper &h = helpers_[cands[rng_.range(
            static_cast<uint32_t>(cands.size()))]];
        std::string call = h.name + "(";
        for (size_t i = 0; i < h.params.size(); ++i) {
            if (i)
                call += ", ";
            const Helper::Param &p = h.params[i];
            if (p.isPtr)
                call += ptrArg(p.ty);
            else
                call += expr(p.ty, 1);
        }
        call += ")";
        return call;
    }

    /** A pointer argument with extent >= 4 for elem type t. */
    std::string
    ptrArg(Ty t)
    {
        std::vector<std::string> cands;
        for (const Arr &a : arrays_)
            if (a.ty == t && a.size >= 4 && a.writable)
                cands.push_back(a.name);
        for (const PtrVar &p : ptrs_)
            if (p.ty == t && p.extent >= 4)
                cands.push_back(p.name);
        // Helper generation guarantees a global array of this type.
        return cands[rng_.range(static_cast<uint32_t>(cands.size()))];
    }

    /** A boolean-ish condition expression. */
    std::string
    cond(int depth)
    {
        if (depth <= 0) {
            switch (rng_.range(3)) {
              case 0: return "true";
              case 1: return "false";
              default: {
                Ty t = anyTy();
                return "(" + scalarRead(t, 0) + " != " + lit(t) + ")";
              }
            }
        }
        switch (rng_.range(6)) {
          case 0: {
            Ty t = anyTy();
            static const char *cmps[] = {"<", "<=", ">", ">=",
                                         "==", "!="};
            return "(" + expr(t, depth - 1) + " " + cmps[rng_.range(6)] +
                   " " + expr(t, depth - 1) + ")";
          }
          case 1:
            return "(" + cond(depth - 1) + " && " + cond(depth - 1) +
                   ")";
          case 2:
            return "(" + cond(depth - 1) + " || " + cond(depth - 1) +
                   ")";
          case 3:
            return "(!" + cond(depth - 1) + ")";
          case 4:
            if (fnptrSlots_ > 0) {
                return "(ft[" + index(fnptrSlots_) + "] " +
                       (rng_.chance(50) ? "!=" : "==") + " null)";
            }
            [[fallthrough]];
          default: {
            Ty t = anyTy();
            return "(" + expr(t, depth - 1) + " < " + expr(t, depth - 1) +
                   ")";
          }
        }
    }

    /** An expression of exact type t. */
    std::string
    expr(Ty t, int depth)
    {
        if (depth <= 0)
            return rng_.chance(40) ? lit(t) : scalarRead(t, 0);
        std::string tn = tyName(t);
        switch (rng_.range(10)) {
          case 0:
          case 1: {  // arithmetic / bitwise binary, any operand type
            Ty ot = rng_.chance(70) ? t : anyTy();
            static const char *ops[] = {"+", "-", "*", "/", "%",
                                        "&", "|", "^", "<<", ">>"};
            return "(" + tn + ")(" + expr(ot, depth - 1) + " " +
                   ops[rng_.range(10)] + " " + expr(ot, depth - 1) +
                   ")";
          }
          case 2:    // ternary
            return "(" + tn + ")(" + cond(depth - 1) + " ? " +
                   expr(t, depth - 1) + " : " + expr(t, depth - 1) +
                   ")";
          case 3: {  // unary
            static const char *ops[] = {"-", "~"};
            return "(" + tn + ")(" + ops[rng_.range(2)] +
                   expr(t, depth - 1) + ")";
          }
          case 4:    // comparison as value
            return "(" + tn + ")" + cond(depth - 1);
          case 5: {  // sizeof
            std::string what;
            if (!structs_.empty() && rng_.chance(50))
                what = "struct " +
                       structs_[rng_.range(static_cast<uint32_t>(
                                    structs_.size()))]
                           .name;
            else
                what = tyName(anyTy());
            return "(" + tn + ")sizeof(" + what + ")";
          }
          case 6: {  // pointer-returning helper, deref'd
            std::string c = callExpr(true);
            if (!c.empty())
                return "(" + tn + ")(*" + c + ")";
            return scalarRead(t, depth);
          }
          default:
            return scalarRead(t, depth);
        }
    }

    /** A writable scalar lvalue; returns ("", U8) if none. */
    std::pair<std::string, Ty>
    lvalue()
    {
        for (int tries = 0; tries < 6; ++tries) {
            switch (rng_.range(4)) {
              case 0: {
                std::vector<uint32_t> w;
                for (uint32_t i = 0; i < scalars_.size(); ++i)
                    if (scalars_[i].writable)
                        w.push_back(i);
                if (w.empty())
                    break;
                const Var &v = scalars_[w[rng_.range(
                    static_cast<uint32_t>(w.size()))]];
                return {v.name, v.ty};
              }
              case 1: {
                std::vector<uint32_t> w;
                for (uint32_t i = 0; i < arrays_.size(); ++i)
                    if (arrays_[i].writable)
                        w.push_back(i);
                if (w.empty())
                    break;
                const Arr &a = arrays_[w[rng_.range(
                    static_cast<uint32_t>(w.size()))]];
                return {a.name + "[" + index(a.size) + "]", a.ty};
              }
              case 2: {
                if (structVars_.empty())
                    break;
                const StructVar &sv = structVars_[rng_.range(
                    static_cast<uint32_t>(structVars_.size()))];
                const StructDef &sd = structs_[sv.sidx];
                const Field &f = sd.fields[rng_.range(
                    static_cast<uint32_t>(sd.fields.size()))];
                std::string acc = sv.isPtr
                                      ? sv.name + "->" + f.name
                                      : sv.name + "." + f.name;
                if (f.arr)
                    acc += "[" + index(f.arr) + "]";
                return {acc, f.ty};
              }
              default: {
                if (ptrs_.empty())
                    break;
                const PtrVar &p = ptrs_[rng_.range(
                    static_cast<uint32_t>(ptrs_.size()))];
                if (p.extent > 1 && rng_.chance(60))
                    return {p.name + "[" + index(p.extent) + "]", p.ty};
                return {"(*" + p.name + ")", p.ty};
              }
            }
        }
        return {"", Ty::U8};
    }

    //--- scope management --------------------------------------------
    struct ScopeMark {
        size_t scalars, ptrs, structVars, counters;
    };

    ScopeMark
    mark() const
    {
        return {scalars_.size(), ptrs_.size(), structVars_.size(),
                counters_.size()};
    }

    void
    release(const ScopeMark &m)
    {
        scalars_.resize(m.scalars);
        ptrs_.resize(m.ptrs);
        structVars_.resize(m.structVars);
        counters_.resize(m.counters);
    }

    //--- statements ---------------------------------------------------
    std::string
    freshName(const char *prefix)
    {
        return prefix + num(nameCounter_++);
    }

    void
    stmtAssign()
    {
        auto [lv, t] = lvalue();
        if (lv.empty())
            return;
        switch (rng_.range(4)) {
          case 0: {
            static const char *ops[] = {"+=", "-=", "*=", "/=", "%=",
                                        "&=", "|=", "^=", "<<=", ">>="};
            emit(lv + " " + ops[rng_.range(10)] + " " + expr(t, 1) +
                 ";");
            break;
          }
          case 1:
            emit(lv + (rng_.chance(50) ? "++;" : "--;"));
            break;
          default:
            emit(lv + " = " + expr(t, 2) + ";");
            break;
        }
    }

    void
    stmtLocalDecl()
    {
        switch (rng_.range(5)) {
          case 0: {  // pointer local
            if (arrays_.empty())
                return;
            std::vector<uint32_t> w;
            for (uint32_t i = 0; i < arrays_.size(); ++i)
                if (arrays_[i].writable)
                    w.push_back(i);
            if (w.empty())
                return;
            const Arr &a =
                arrays_[w[rng_.range(static_cast<uint32_t>(w.size()))]];
            std::string n = freshName("pt");
            emit(std::string(tyName(a.ty)) + "* " + n + " = " + a.name +
                 ";");
            ptrs_.push_back({n, a.ty, a.size});
            break;
          }
          case 1: {  // pointer to scalar global (extent 1)
            std::vector<uint32_t> w;
            for (uint32_t i = 0; i < globalScalars_; ++i)
                if (scalars_[i].writable)
                    w.push_back(i);
            if (w.empty())
                return;
            const Var &v =
                scalars_[w[rng_.range(static_cast<uint32_t>(w.size()))]];
            std::string n = freshName("pt");
            emit(std::string(tyName(v.ty)) + "* " + n + " = &" + v.name +
                 ";");
            ptrs_.push_back({n, v.ty, 1});
            break;
          }
          case 2: {  // struct local, defined via copy from a global
            if (gstructIdx_.empty())
                return;
            uint32_t gi = gstructIdx_[rng_.range(
                static_cast<uint32_t>(gstructIdx_.size()))];
            const StructVar &src = structVars_[gi];
            std::string n = freshName("sl");
            emit("struct " + structs_[src.sidx].name + " " + n + ";");
            emit(n + " = " + src.name + ";");
            structVars_.push_back({n, src.sidx, false});
            break;
          }
          case 3: {  // struct pointer local
            if (gstructIdx_.empty())
                return;
            uint32_t gi = gstructIdx_[rng_.range(
                static_cast<uint32_t>(gstructIdx_.size()))];
            const StructVar &src = structVars_[gi];
            std::string n = freshName("sp");
            emit("struct " + structs_[src.sidx].name + "* " + n +
                 " = &" + src.name + ";");
            structVars_.push_back({n, src.sidx, true});
            break;
          }
          default: {  // scalar local
            Ty t = anyTy();
            std::string n = freshName("v");
            emit(std::string(tyName(t)) + " " + n + " = " + expr(t, 2) +
                 ";");
            scalars_.push_back({n, t, true});
            break;
          }
        }
    }

    void
    stmtStructCopy()
    {
        // Copy between two same-type struct variables (byte-copy loop
        // in the IR). Sources may be pointers (deref'd via *).
        if (structVars_.size() < 2)
            return;
        for (int tries = 0; tries < 4; ++tries) {
            const StructVar &dst = structVars_[rng_.range(
                static_cast<uint32_t>(structVars_.size()))];
            const StructVar &src = structVars_[rng_.range(
                static_cast<uint32_t>(structVars_.size()))];
            if (dst.sidx != src.sidx || dst.name == src.name)
                continue;
            std::string d = dst.isPtr ? "(*" + dst.name + ")" : dst.name;
            std::string s = src.isPtr ? "(*" + src.name + ")" : src.name;
            emit(d + " = " + s + ";");
            return;
        }
    }

    void
    stmtUart()
    {
        switch (rng_.range(5)) {
          case 0:
            emit("stos_uart_put((u8)" + expr(Ty::U8, 1) + ");");
            break;
          case 1:
            emit("UART_DATA = " + expr(Ty::U8, 1) + ";");
            break;
          case 2:
            emit("stos_leds_set(" + expr(Ty::U8, 1) + ");");
            break;
          case 3: {
            std::vector<const Arr *> strs;
            for (const Arr &a : arrays_)
                if (a.isString)
                    strs.push_back(&a);
            if (!strs.empty()) {
                emit("stos_uart_puts(" +
                     strs[rng_.range(
                             static_cast<uint32_t>(strs.size()))]
                         ->name +
                     ");");
                break;
            }
            [[fallthrough]];
          }
          default:
            emit("stos_uart_put_u16(" + expr(Ty::U16, 2) + ");");
            break;
        }
    }

    void
    stmtIf(uint32_t budgetShare)
    {
        emit("if " + cond(2) + " {");
        ++indent_;
        ScopeMark m = mark();
        block(budgetShare);
        release(m);
        --indent_;
        if (rng_.chance(40)) {
            emit("} else {");
            ++indent_;
            ScopeMark m2 = mark();
            block(budgetShare);
            release(m2);
            --indent_;
        }
        emit("}");
    }

    void
    stmtLoop(uint32_t budgetShare)
    {
        uint32_t k = 2 + rng_.range(5);
        std::string q = "q" + num(loopCounter_++);
        bool isFor = rng_.chance(50);
        ScopeMark m = mark();
        if (isFor) {
            emit("for (u8 " + q + " = 0; " + q + " < " + num(k) + "; " +
                 q + "++) {");
        } else {
            emit("u8 " + q + " = 0;");
            emit("while (" + q + " < " + num(k) + ") {");
        }
        ++indent_;
        counters_.push_back(q);
        scalars_.push_back({q, Ty::U8, false});
        ++loopDepth_;
        loopIsFor_.push_back(isFor);
        block(budgetShare);
        // Early exit, guarded so most iterations still run.
        if (rng_.chance(30)) {
            if (isFor && rng_.chance(40))
                emit("if " + cond(1) + " { continue; }");
            else
                emit("if " + cond(1) + " { break; }");
        }
        loopIsFor_.pop_back();
        --loopDepth_;
        if (!isFor)
            emit(q + " = (u8)(" + q + " + 1);");
        release(m);
        --indent_;
        emit("}");
    }

    void
    stmtAtomic(uint32_t budgetShare)
    {
        emit("atomic {");
        ++indent_;
        ScopeMark m = mark();
        bool saved = inAtomic_;
        inAtomic_ = true;
        block(budgetShare);
        inAtomic_ = saved;
        release(m);
        --indent_;
        emit("}");
    }

    void
    stmtCall()
    {
        if (!procs_.empty() && rng_.chance(40)) {
            emit(procs_[rng_.range(
                     static_cast<uint32_t>(procs_.size()))] +
                 "();");
            return;
        }
        std::string c = callExpr(false);
        if (!c.empty())
            emit(c + ";");
    }

    void
    stmtFnptrDispatch()
    {
        if (fnptrSlots_ == 0)
            return;
        std::string f = freshName("fp");
        emit("fnptr " + f + " = ft[" + index(fnptrSlots_) + "];");
        emit("if (" + f + " != null) {");
        ++indent_;
        emit(f + "();");
        --indent_;
        emit("}");
    }

    /** Emit one statement; consumes budget. */
    void
    statement()
    {
        if (budget_ == 0)
            return;
        --budget_;
        uint32_t depthLeft = maxLoopDepth_ - loopDepth_;
        switch (rng_.range(16)) {
          case 0: case 1: case 2: case 3:
            stmtAssign();
            break;
          case 4: case 5:
            stmtLocalDecl();
            break;
          case 6:
            stmtStructCopy();
            break;
          case 7: case 8:
            stmtUart();
            break;
          case 9: case 10:
            stmtIf(2 + rng_.range(3));
            break;
          case 11: case 12:
            if (depthLeft > 0)
                stmtLoop(2 + rng_.range(4));
            else
                stmtAssign();
            break;
          case 13:
            if (!inAtomic_)
                stmtAtomic(1 + rng_.range(2));
            else
                stmtAssign();
            break;
          case 14:
            stmtCall();
            break;
          default:
            if (inMain_)
                stmtFnptrDispatch();
            else
                stmtUart();
            break;
        }
    }

    /** A run of up to n statements (bounded by the global budget). */
    void
    block(uint32_t n)
    {
        for (uint32_t i = 0; i < n && budget_ > 0; ++i)
            statement();
    }

    //--- program skeleton --------------------------------------------
    void
    genStructs()
    {
        uint32_t n = rng_.range(opts_.maxStructs + 1);
        for (uint32_t i = 0; i < n; ++i) {
            StructDef sd;
            sd.name = "S" + num(i);
            uint32_t nf = 1 + rng_.range(4);
            std::string decl = "struct " + sd.name + " { ";
            for (uint32_t j = 0; j < nf; ++j) {
                Field f;
                f.name = "f" + num(j);
                f.ty = anyTy();
                f.arr = rng_.chance(25) ? (2u << rng_.range(2)) : 0;
                decl += std::string(tyName(f.ty)) + " " + f.name;
                if (f.arr)
                    decl += "[" + num(f.arr) + "]";
                decl += "; ";
                sd.fields.push_back(f);
            }
            decl += "};";
            emit(decl);
            structs_.push_back(sd);
        }
    }

    void
    genGlobals()
    {
        // Scalars. Zero-initialized or with a constant initializer;
        // both are identical across engines.
        uint32_t n = 3 + rng_.range(opts_.maxGlobals - 2);
        for (uint32_t i = 0; i < n; ++i) {
            Ty t = anyTy();
            std::string name = "g" + num(i);
            if (rng_.chance(60))
                emit(std::string(tyName(t)) + " " + name + " = " +
                     lit(t) + ";");
            else
                emit(std::string(tyName(t)) + " " + name + ";");
            scalars_.push_back({name, t, true});
        }
        globalScalars_ = static_cast<uint32_t>(scalars_.size());

        // Arrays: power-of-two sizes, one guaranteed per scalar type
        // so pointer-taking helpers always have a valid argument.
        uint32_t ai = 0;
        for (Ty t : kAllTys) {
            uint32_t size = 4u << rng_.range(3);  // 4 / 8 / 16
            std::string name = "a" + num(ai++);
            if (rng_.chance(40)) {
                std::string init = "{";
                for (uint32_t j = 0; j < size; ++j) {
                    if (j)
                        init += ", ";
                    init += num(rng_.range(200));
                }
                init += "}";
                emit(std::string(tyName(t)) + " " + name + "[" +
                     num(size) + "] = " + init + ";");
            } else {
                emit(std::string(tyName(t)) + " " + name + "[" +
                     num(size) + "];");
            }
            arrays_.push_back({name, t, size, true, false});
        }

        // A rom table (read-only) and a string (for stos_uart_puts).
        if (rng_.chance(70)) {
            uint32_t size = 4u << rng_.range(2);
            std::string init = "{";
            for (uint32_t j = 0; j < size; ++j) {
                if (j)
                    init += ", ";
                init += num(rng_.range(256));
            }
            init += "}";
            emit("rom u8 rt0[" + num(size) + "] = " + init + ";");
            arrays_.push_back({"rt0", Ty::U8, size, false, false});
        }
        if (rng_.chance(70)) {
            uint32_t len = 3 + rng_.range(8);
            std::string s;
            for (uint32_t j = 0; j < len; ++j)
                s += static_cast<char>('a' + rng_.range(26));
            emit("u8 ms0[" + num(len + 1) + "] = \"" + s + "\";");
            arrays_.push_back(
                {"ms0", Ty::U8, 1, false, true});  // never indexed
        }

        // Struct globals (zero-initialized).
        for (uint32_t si = 0; si < structs_.size(); ++si) {
            uint32_t copies = 1 + rng_.range(2);
            for (uint32_t c = 0; c < copies; ++c) {
                std::string name = "gs" + num(si) + "_" + num(c);
                emit("struct " + structs_[si].name + " " + name + ";");
                gstructIdx_.push_back(
                    static_cast<uint32_t>(structVars_.size()));
                structVars_.push_back({name, si, false});
            }
        }

        // The fnptr dispatch table.
        if (rng_.chance(80)) {
            fnptrSlots_ = 4;
            emit("fnptr ft[4];");
        }
        emit("");
    }

    void
    genProcs()
    {
        // void(void) procedures for the fnptr table: straight-line
        // mutations of writable globals.
        uint32_t n = fnptrSlots_ ? 2 + rng_.range(2) : rng_.range(2);
        for (uint32_t i = 0; i < n; ++i) {
            std::string name = "p" + num(i);
            emit("void " + name + "() {");
            ++indent_;
            uint32_t stmts = 1 + rng_.range(3);
            for (uint32_t j = 0; j < stmts; ++j) {
                auto [lv, t] = lvalue();
                if (!lv.empty())
                    emit(lv + " = " + expr(t, 1) + ";");
            }
            --indent_;
            emit("}");
            procs_.push_back(name);
        }
        if (n)
            emit("");
    }

    void
    genHelpers()
    {
        uint32_t n = 1 + rng_.range(opts_.maxHelpers);
        for (uint32_t i = 0; i < n; ++i) {
            Helper h;
            h.name = "h" + num(i);
            h.retTy = anyTy();
            h.retPtr = rng_.chance(25);
            uint32_t np = rng_.range(4);
            ScopeMark m = mark();
            std::string sig;
            if (h.retPtr) {
                // Pointer-returning helpers take the pointer they
                // offset into, so the result provably stays in
                // bounds: return p + (i & 3) with extent >= 4.
                h.params.push_back({"pp", h.retTy, true});
                h.params.push_back({"pi", Ty::U8, false});
                sig = std::string(tyName(h.retTy)) + "* " + h.name +
                      "(" + tyName(h.retTy) + "* pp, u8 pi)";
                ptrs_.push_back({"pp", h.retTy, 4});
                scalars_.push_back({"pi", Ty::U8, true});
            } else {
                sig = std::string(tyName(h.retTy)) + " " + h.name + "(";
                for (uint32_t j = 0; j < np; ++j) {
                    Helper::Param p;
                    p.name = "p" + num(j) + "_";
                    p.isPtr = rng_.chance(30);
                    p.ty = anyTy();
                    if (j)
                        sig += ", ";
                    sig += std::string(tyName(p.ty)) +
                           (p.isPtr ? "* " : " ") + p.name;
                    if (p.isPtr)
                        ptrs_.push_back({p.name, p.ty, 4});
                    else
                        scalars_.push_back({p.name, p.ty, true});
                    h.params.push_back(p);
                }
                sig += ")";
            }
            emit(sig + " {");
            ++indent_;
            budget_ = 3 + rng_.range(5);
            maxLoopDepth_ = 1;
            block(budget_);
            if (!h.retPtr && rng_.chance(30))
                emit("if " + cond(1) + " { return " +
                     expr(h.retTy, 1) + "; }");
            if (h.retPtr)
                emit("return pp + (u8)(pi & 3);");
            else
                emit("return " + expr(h.retTy, 2) + ";");
            --indent_;
            emit("}");
            emit("");
            release(m);
            helpers_.push_back(h);
            callableHelpers_ = static_cast<uint32_t>(helpers_.size());
        }
    }

    void
    genMain()
    {
        emit("u16 main() {");
        ++indent_;
        inMain_ = true;
        // Wire up some fnptr slots; leave others null on purpose.
        for (uint32_t i = 0; i < fnptrSlots_ && !procs_.empty(); ++i) {
            if (rng_.chance(65))
                emit("ft[" + num(i) + "] = " +
                     procs_[rng_.range(static_cast<uint32_t>(
                         procs_.size()))] +
                     ";");
        }
        budget_ = opts_.mainStatements;
        maxLoopDepth_ = 2;
        block(budget_);

        // Observability epilogue: dump every mutable global so that
        // any state divergence becomes a UART divergence.
        for (uint32_t i = 0; i < globalScalars_; ++i) {
            const Var &v = scalars_[i];
            emit("stos_uart_put_u16((u16)" + v.name + ");");
            if (tyBits(v.ty) == 32)
                emit("stos_uart_put_u16((u16)(" + v.name + " >> 16));");
        }
        for (const Arr &a : arrays_) {
            if (!a.writable)
                continue;
            std::string q = "q" + num(loopCounter_++);
            emit("for (u8 " + q + " = 0; " + q + " < " + num(a.size) +
                 "; " + q + "++) {");
            ++indent_;
            emit("stos_uart_put_u16((u16)" + a.name + "[" + q + "]);");
            if (tyBits(a.ty) == 32)
                emit("stos_uart_put_u16((u16)(" + a.name + "[" + q +
                     "] >> 16));");
            --indent_;
            emit("}");
        }
        for (uint32_t gi : gstructIdx_) {
            const StructVar &sv = structVars_[gi];
            for (const Field &f : structs_[sv.sidx].fields) {
                if (f.arr) {
                    std::string q = "q" + num(loopCounter_++);
                    emit("for (u8 " + q + " = 0; " + q + " < " +
                         num(f.arr) + "; " + q + "++) {");
                    ++indent_;
                    emit("stos_uart_put_u16((u16)" + sv.name + "." +
                         f.name + "[" + q + "]);");
                    --indent_;
                    emit("}");
                } else {
                    emit("stos_uart_put_u16((u16)" + sv.name + "." +
                         f.name + ");");
                }
            }
        }
        emit("return 0;");
        --indent_;
        emit("}");
    }

    //--- state --------------------------------------------------------
    Rng rng_;
    GenOptions opts_;
    std::vector<std::string> lines_;
    int indent_ = 0;

    std::vector<StructDef> structs_;
    std::vector<std::string> procs_;
    std::vector<Helper> helpers_;
    uint32_t callableHelpers_ = 0;
    uint32_t fnptrSlots_ = 0;
    uint32_t globalScalars_ = 0;

    // In-scope pools (globals stay; locals pushed/popped by mark()).
    std::vector<Var> scalars_;
    std::vector<Arr> arrays_;
    std::vector<StructVar> structVars_;
    std::vector<uint32_t> gstructIdx_;  ///< global struct vars
    std::vector<PtrVar> ptrs_;
    std::vector<std::string> counters_;

    uint32_t budget_ = 0;
    uint32_t maxLoopDepth_ = 2;
    uint32_t loopDepth_ = 0;
    std::vector<bool> loopIsFor_;
    bool inAtomic_ = false;
    bool inMain_ = false;
    int nameCounter_ = 0;
    int loopCounter_ = 0;
};

} // namespace

std::string
generateProgram(uint64_t seed, const GenOptions &opts)
{
    Generator g(seed, opts);
    return g.run();
}

std::string
generateOobProgram(uint64_t seed, const GenOptions &opts)
{
    std::string src = generateProgram(seed, opts);
    // Deterministically pick the out-of-bounds shape from the seed:
    // a power-of-two array, an index just past (or well past) its
    // end, and read vs write.
    Rng rng(seed ^ 0xA77ACC0Bull);
    uint32_t size = 4u << rng.range(3);        // 4, 8, or 16
    uint32_t idx = size + rng.range(5);        // 0..4 past the end
    bool write = rng.chance(60);
    std::string decls = "u16 __oob_arr[" + std::to_string(size) +
                        "];\nu16 __oob_idx;\n";
    // The index flows through a RAM global, so the frontend's static
    // bounds diagnostics cannot reject it; only the dynamic check can
    // catch it. The access is the first statement of main, before any
    // generated code runs.
    std::string access =
        "    __oob_idx = " + std::to_string(idx) + ";\n" +
        (write ? "    __oob_arr[__oob_idx] = 1;\n"
               : "    stos_uart_put_u16(__oob_arr[__oob_idx]);\n");
    const std::string anchor = "u16 main() {\n";
    size_t at = src.find(anchor);
    if (at == std::string::npos)
        return src;  // grammar changed under us; caller's oracle will flag it
    src.insert(at + anchor.size(), access);
    return decls + src;
}

} // namespace stos::fuzz
