/**
 * @file
 * Grammar-driven differential fuzzing for the whole stack. Three
 * pieces:
 *
 *  - generateProgram(): a seeded, fully deterministic TinyC program
 *    generator whose grammar mirrors what the frontend accepts —
 *    pointers, arrays, structs, struct copies, pointer-returning
 *    functions, fnptr dispatch, atomics, for/while/ternary/modulo,
 *    compound assignment, ++/--, sizeof, casts, short-circuit
 *    operators, rom and string globals. Generated programs are
 *    memory-safe and terminating by construction, so every build mode
 *    (unsafe, safe, safe+optimized) must agree on observable
 *    behaviour.
 *
 *  - checkProgram() / checkBatch(): the differential oracles. Per
 *    program: IR interpreter vs machine simulator, safe vs unsafe,
 *    Legacy vs Predecoded vs Threaded core (oracles 1-3). Per corpus, via the
 *    Experiment facade: memoized-parallel vs cold-serial builds and
 *    sims, and cold vs cached byte-identity (oracles 4-5).
 *
 *  - minimize(): a delta-debugging (ddmin) line minimizer that
 *    shrinks a diverging program while a caller-supplied predicate
 *    keeps failing. Minimized crashers live under tests/crashers/.
 */
#ifndef STOS_FUZZ_FUZZ_H
#define STOS_FUZZ_FUZZ_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace stos::fuzz {

/** splitmix64: tiny, high-quality, and fully deterministic. */
class Rng {
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, n); n must be nonzero. */
    uint32_t
    range(uint32_t n)
    {
        return static_cast<uint32_t>(next() % n);
    }

    /** True with probability pct/100. */
    bool
    chance(uint32_t pct)
    {
        return range(100) < pct;
    }

  private:
    uint64_t state_;
};

struct GenOptions {
    /** Statement budget for main (helpers get a fraction). */
    uint32_t mainStatements = 20;
    uint32_t maxHelpers = 4;
    uint32_t maxStructs = 2;
    uint32_t maxGlobals = 10;
};

/**
 * Generate one TinyC program from `seed`. Same seed (and options) =>
 * byte-identical source, on any host. The program compiles cleanly,
 * passes the IR verifier, terminates, touches no device state other
 * than UART/LEDs, and is memory-safe by construction.
 */
std::string generateProgram(uint64_t seed, const GenOptions &opts = {});

/**
 * Like generateProgram(), but the first statement of main is a
 * deliberately out-of-bounds array access whose index flows through a
 * RAM global (so only the dynamic safety check can catch it). Used to
 * fuzz safety-check *placement*: under every safe build the access
 * must trap, identically, on every engine.
 */
std::string generateOobProgram(uint64_t seed,
                               const GenOptions &opts = {});

/** A divergence between two executions that must agree. */
struct Divergence {
    std::string oracle;  ///< which oracle fired ("" = none)
    std::string detail;
    explicit operator bool() const { return !oracle.empty(); }
};

/**
 * Per-program oracles: compile `src` in four modes (unsafe, safe,
 * safe+cxprop, unsafe+cxprop), run each under the IR interpreter and
 * both simulator cores, and require every execution to terminate
 * normally with the same UART stream as the unsafe interpreter
 * reference. Returns the first divergence, or an empty one.
 */
Divergence checkProgram(const std::string &src);

/**
 * Safety-check placement oracle for generateOobProgram() output:
 * build safe and safe+cxprop, run each under the IR interpreter and
 * both simulator cores, and require every execution to trap a
 * memory-safety check with one common FLID (and the memory trap
 * kind). A safe engine that runs to completion, or engines that
 * disagree on which check fired, is a divergence.
 */
Divergence checkOobProgram(const std::string &src);

/**
 * Corpus-level oracles via the Experiment facade: build + simulate
 * every (name, source) app over {Baseline, SafeFlid,
 * SafeFlidInlineCxprop} with the memoized parallel stage graph, then
 * (a) re-run against the warm cache and require byte-identical
 * reports, and (b) run the cold serial/legacy reference and require
 * cell-for-cell equivalence. Sources must already compile.
 */
Divergence
checkBatch(const std::vector<std::pair<std::string, std::string>> &apps,
           unsigned jobs = 0);

/**
 * ddmin-style line minimizer: repeatedly deletes line chunks of
 * shrinking size while `fails` keeps returning true on the candidate.
 * `fails` must return true for `src` itself; candidates that do not
 * compile simply fail the predicate and are skipped.
 */
std::string
minimize(const std::string &src,
         const std::function<bool(const std::string &)> &fails);

} // namespace stos::fuzz

#endif
