/**
 * @file
 * The differential oracles. checkProgram() takes one TinyC source and
 * cross-checks every build mode against every execution engine;
 * checkBatch() feeds a whole corpus through the Experiment facade and
 * cross-checks the memoized parallel pipeline against the cold serial
 * reference and against its own warm-cache rerun. Any disagreement is
 * a bug in the stack, never in the generated program (which is
 * correct by construction).
 */
#include "fuzz/fuzz.h"

#include <sstream>

#include "backend/backend.h"
#include "core/experiment.h"
#include "core/stagecache.h"
#include "frontend/frontend.h"
#include "ir/interp.h"
#include "ir/verifier.h"
#include "opt/cxprop.h"
#include "safety/ccured.h"
#include "sim/machine.h"
#include "support/devmap.h"
#include "tinyos/tinyos.h"

namespace stos::fuzz {
namespace {

struct RunOutcome {
    bool ok = false;
    std::string error;
    std::string uart;
};

/** Execute under the IR reference interpreter. */
RunOutcome
runInterp(ir::Module &m)
{
    ir::HwBus bus;
    ir::InterpOptions iopts;
    iopts.stepLimit = 50'000'000;
    ir::Interp interp(m, &bus, iopts);
    auto r = interp.run("main");
    RunOutcome o;
    if (r.reason != ir::StopReason::Returned) {
        o.error = "interpreter stopped abnormally: " + r.detail;
        return o;
    }
    for (const auto &w : bus.writeLog())
        if (w.addr == dev::kRegUartData)
            o.uart.push_back(static_cast<char>(w.value));
    o.ok = true;
    return o;
}

/** Execute a firmware image on one simulator core. */
RunOutcome
runMachine(const backend::MProgram &img, sim::ExecMode mode)
{
    sim::Machine mote(img, 1, mode);
    mote.boot();
    mote.runUntilCycle(100'000'000);
    RunOutcome o;
    if (!mote.halted()) {
        o.error = "machine did not halt within the cycle budget";
        return o;
    }
    if (mote.wedged()) {
        // Attach the bounded trap log: which checks fired, when, and
        // in which function — far more to go on than one FLID.
        o.error = "machine wedged in a failure handler";
        for (const auto &t : mote.trapLog()) {
            o.error += " [flid=" + std::to_string(t.flid) +
                       " cycle=" + std::to_string(t.cycle) +
                       " fn=" + std::to_string(t.pc) + "]";
        }
        return o;
    }
    o.uart = mote.devices().uartLog();
    o.ok = true;
    return o;
}

std::string
joinErrors(const std::vector<std::string> &errs)
{
    std::string out;
    for (const auto &e : errs) {
        if (!out.empty())
            out += "; ";
        out += e;
    }
    return out;
}

enum class Mode { Unsafe, Safe, SafeOpt, UnsafeOpt };

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Unsafe: return "unsafe";
      case Mode::Safe: return "safe";
      case Mode::SafeOpt: return "safe+cxprop";
      case Mode::UnsafeOpt: return "unsafe+cxprop";
    }
    return "?";
}

/** Printable-ish rendering of a UART stream for divergence reports. */
std::string
renderUart(const std::string &s)
{
    std::ostringstream os;
    for (unsigned char c : s) {
        if (c >= 32 && c < 127)
            os << c;
        else
            os << "\\x" << "0123456789abcdef"[c >> 4]
               << "0123456789abcdef"[c & 15];
    }
    return os.str();
}

} // namespace

namespace {

Divergence
checkProgramImpl(const std::string &src)
{
    // One frontend pass; the SourceManager must outlive applySafety
    // (FLID assignment reads source locations from it).
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    ir::Module base = frontend::compileTinyC(
        {{"lib.tc", tinyos::libSource()}, {"fuzz.tc", src}}, diags, sm,
        "fuzz");
    if (diags.hasErrors())
        return {"compile", diags.dump()};
    if (auto errs = ir::verifyModule(base); !errs.empty())
        return {"verify", joinErrors(errs)};

    std::string refUart;
    bool haveRef = false;

    for (Mode mode : {Mode::Unsafe, Mode::Safe, Mode::SafeOpt,
                      Mode::UnsafeOpt}) {
        ir::Module m = base.clone();
        if (mode == Mode::Safe || mode == Mode::SafeOpt) {
            safety::SafetyConfig scfg;
            safety::applySafety(m, scfg, &sm);
        }
        if (mode == Mode::SafeOpt || mode == Mode::UnsafeOpt) {
            opt::CxpropOptions copts;
            copts.inlineFirst = true;
            opt::runCxprop(m, copts);
        }
        if (auto errs = ir::verifyModule(m); !errs.empty())
            return {std::string("verify/") + modeName(mode),
                    joinErrors(errs)};

        // Oracle 1 (interp vs machine) + oracle 2 (safe vs unsafe)
        // + oracle 3 (Legacy vs Predecoded vs Threaded): every
        // (mode, engine) execution must match the unsafe
        // interpreter reference.
        ir::Module forInterp = m.clone();
        RunOutcome iOut = runInterp(forInterp);
        if (!iOut.ok)
            return {std::string("run/") + modeName(mode) + "/interp",
                    iOut.error};
        if (!haveRef) {
            refUart = iOut.uart;
            haveRef = true;
        } else if (iOut.uart != refUart) {
            return {std::string("uart/") + modeName(mode) + "/interp",
                    "got \"" + renderUart(iOut.uart) +
                        "\" want \"" + renderUart(refUart) + "\""};
        }

        backend::MProgram img =
            backend::compileToTarget(m, backend::TargetInfo::mica2());
        for (sim::ExecMode em :
             {sim::ExecMode::Legacy, sim::ExecMode::Predecoded,
              sim::ExecMode::Threaded}) {
            const char *emName =
                em == sim::ExecMode::Legacy
                    ? "legacy"
                    : em == sim::ExecMode::Predecoded ? "predecoded"
                                                      : "threaded";
            RunOutcome mOut = runMachine(img, em);
            if (!mOut.ok)
                return {std::string("run/") + modeName(mode) + "/" +
                            emName,
                        mOut.error};
            if (mOut.uart != refUart)
                return {std::string("uart/") + modeName(mode) + "/" +
                            emName,
                        "got \"" + renderUart(mOut.uart) +
                            "\" want \"" + renderUart(refUart) + "\""};
        }
    }
    return {};
}

} // namespace

namespace {

/** One safe-engine execution that is *expected* to trap. */
struct TrapOutcome {
    bool trapped = false;
    uint32_t flid = 0;
    uint8_t kind = 0;
    std::string error;
};

TrapOutcome
runMachineExpectTrap(const backend::MProgram &img, sim::ExecMode mode)
{
    sim::Machine mote(img, 1, mode);
    mote.boot();
    mote.runUntilCycle(100'000'000);
    TrapOutcome o;
    if (!mote.wedged()) {
        o.error = mote.halted()
                      ? "ran to completion without trapping"
                      : "did not reach the trap within the budget";
        return o;
    }
    o.trapped = true;
    o.flid = mote.failedFlid();
    if (!mote.trapLog().empty())
        o.kind = mote.trapLog().front().kind;
    return o;
}

Divergence
checkOobProgramImpl(const std::string &src)
{
    SourceManager sm;
    DiagnosticEngine diags(&sm);
    ir::Module base = frontend::compileTinyC(
        {{"lib.tc", tinyos::libSource()}, {"fuzz.tc", src}}, diags, sm,
        "fuzz");
    if (diags.hasErrors())
        return {"oob/compile", diags.dump()};
    if (auto errs = ir::verifyModule(base); !errs.empty())
        return {"oob/verify", joinErrors(errs)};

    uint32_t refFlid = 0;
    bool haveRef = false;
    for (Mode mode : {Mode::Safe, Mode::SafeOpt}) {
        ir::Module m = base.clone();
        safety::SafetyConfig scfg;
        safety::applySafety(m, scfg, &sm);
        if (mode == Mode::SafeOpt) {
            opt::CxpropOptions copts;
            copts.inlineFirst = true;
            opt::runCxprop(m, copts);
        }
        if (auto errs = ir::verifyModule(m); !errs.empty())
            return {std::string("oob/verify/") + modeName(mode),
                    joinErrors(errs)};

        // The IR interpreter must stop on the safety check, and every
        // engine in every safe mode must agree on *which* check.
        ir::Module forInterp = m.clone();
        ir::HwBus bus;
        ir::InterpOptions iopts;
        iopts.stepLimit = 50'000'000;
        ir::Interp interp(forInterp, &bus, iopts);
        auto r = interp.run("main");
        if (r.reason != ir::StopReason::SafetyFault)
            return {std::string("oob/") + modeName(mode) + "/interp",
                    "expected a safety trap: " + r.detail};
        if (!haveRef) {
            refFlid = r.flid;
            haveRef = true;
        } else if (r.flid != refFlid) {
            return {std::string("oob/") + modeName(mode) + "/interp",
                    "flid " + std::to_string(r.flid) + " want " +
                        std::to_string(refFlid)};
        }

        backend::MProgram img =
            backend::compileToTarget(m, backend::TargetInfo::mica2());
        for (sim::ExecMode em :
             {sim::ExecMode::Legacy, sim::ExecMode::Predecoded,
              sim::ExecMode::Threaded}) {
            const char *emName =
                em == sim::ExecMode::Legacy
                    ? "legacy"
                    : em == sim::ExecMode::Predecoded ? "predecoded"
                                                      : "threaded";
            TrapOutcome t = runMachineExpectTrap(img, em);
            if (!t.trapped)
                return {std::string("oob/") + modeName(mode) + "/" +
                            emName,
                        t.error};
            if (t.flid != refFlid)
                return {std::string("oob/") + modeName(mode) + "/" +
                            emName,
                        "flid " + std::to_string(t.flid) + " want " +
                            std::to_string(refFlid)};
            if (t.kind != backend::kTrapKindMemory)
                return {std::string("oob/") + modeName(mode) + "/" +
                            emName,
                        "trap kind " + std::to_string(t.kind) +
                            " want memory"};
        }
    }
    return {};
}

} // namespace

Divergence
checkOobProgram(const std::string &src)
{
    try {
        return checkOobProgramImpl(src);
    } catch (const std::exception &e) {
        return {"oob/exception", e.what()};
    }
}

Divergence
checkProgram(const std::string &src)
{
    // Minimizer candidates can be arbitrarily mangled (no main,
    // malformed control flow); a throwing pipeline stage is a failed
    // candidate, not a fuzzer crash.
    try {
        return checkProgramImpl(src);
    } catch (const std::exception &e) {
        return {"exception", e.what()};
    }
}

Divergence
checkBatch(
    const std::vector<std::pair<std::string, std::string>> &apps,
    unsigned jobs)
{
    using namespace stos::core;

    ExperimentOptions opts;
    opts.jobs = jobs;
    opts.seconds = 0.05;
    opts.netThreads = 4;
    Experiment exp(opts);
    for (const auto &[name, src] : apps)
        exp.addApp({name, "Mica2", src, {}, "fuzz", {}});
    exp.addConfig(ConfigId::Baseline);
    exp.addConfig(ConfigId::SafeFlid);
    exp.addConfig(ConfigId::SafeFlidInlineCxprop);

    // Oracle 5: cold vs warm cache must be byte-identical.
    StageCache cache;
    ExperimentReport cold = exp.run(cache);
    if (!cold.allOk())
        return {"batch/build", cold.summary()};
    ExperimentReport warm = exp.run(cache);
    std::string why;
    if (!Experiment::reportsEquivalent(cold, warm, &why))
        return {"batch/cache", why};

    // Oracle 4: memoized-parallel vs cold-serial-legacy reference.
    if (!exp.verifySerialEquivalence(cold, &why))
        return {"batch/serial", why};
    return {};
}

} // namespace stos::fuzz
