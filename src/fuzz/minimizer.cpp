/**
 * @file
 * Delta-debugging line minimizer (ddmin). Works on whole lines — the
 * generator emits one statement per line precisely so that deleting a
 * line subset yields a plausible program. Candidates that no longer
 * compile simply fail the caller's predicate and are skipped; the
 * result is a 1-minimal program: removing any single remaining line
 * makes the failure disappear.
 */
#include "fuzz/fuzz.h"

#include <cstddef>

namespace stos::fuzz {
namespace {

std::vector<std::string>
splitLines(const std::string &src)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : src) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

std::string
joinWithout(const std::vector<std::string> &lines, size_t from,
            size_t to)
{
    std::string out;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (i >= from && i < to)
            continue;
        out += lines[i];
        out += '\n';
    }
    return out;
}

} // namespace

std::string
minimize(const std::string &src,
         const std::function<bool(const std::string &)> &fails)
{
    std::vector<std::string> lines = splitLines(src);
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        // Chunk sizes from half the program down to single lines.
        for (size_t chunk = (lines.size() + 1) / 2; chunk >= 1;
             chunk = chunk / 2) {
            for (size_t start = 0; start < lines.size();) {
                size_t end = start + chunk;
                if (end > lines.size())
                    end = lines.size();
                std::string candidate = joinWithout(lines, start, end);
                if (fails(candidate)) {
                    // The failure survives without [start, end) —
                    // drop those lines and retry at the same offset.
                    lines.erase(lines.begin() +
                                    static_cast<std::ptrdiff_t>(start),
                                lines.begin() +
                                    static_cast<std::ptrdiff_t>(end));
                    shrunk = true;
                } else {
                    start = end;
                }
            }
            if (chunk == 1)
                break;
        }
    }
    std::string out;
    for (const std::string &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

} // namespace stos::fuzz
