/**
 * @file
 * TinyC lexer.
 */
#ifndef STOS_FRONTEND_LEXER_H
#define STOS_FRONTEND_LEXER_H

#include <string>
#include <vector>

#include "support/diagnostics.h"
#include "frontend/token.h"

namespace stos::frontend {

/**
 * Tokenize one buffer. Errors (bad characters, unterminated strings)
 * are reported through the diagnostic engine and skipped so parsing
 * can continue and report more.
 */
std::vector<Token> lex(const std::string &text, uint32_t fileId,
                       DiagnosticEngine &diags);

} // namespace stos::frontend

#endif
