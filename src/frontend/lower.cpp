/**
 * @file
 * TinyC semantic analysis and lowering to TinyCIL. One class walks the
 * parsed units: it resolves types, checks expressions, and emits IR.
 * TinyC semantics follow C-on-a-16-bit-target: arithmetic promotes to
 * at least 16 bits, assignment truncates, pointers are 16-bit words.
 */
#include "frontend/frontend.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/arith.h"
#include "support/util.h"
#include "frontend/ast.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "frontend/vectors.h"
#include "ir/builder.h"

namespace stos::frontend {

using namespace stos::ir;

namespace {

/** How a named variable is stored inside a function. */
struct VarSlot {
    enum Kind { SlotVReg, SlotMem, SlotGlobal } kind = SlotVReg;
    uint32_t index = 0;   ///< vreg / local / global id
    TypeId type = kInvalidType;
};

/** Typed rvalue produced by expression lowering. */
struct RVal {
    Operand op;
    TypeId type = kInvalidType;
};

/** Lvalue: an assignable location. */
struct LVal {
    enum Kind { None, VRegSlot, Mem, Hw } kind = None;
    uint32_t vreg = 0;       ///< VRegSlot
    Operand addr;            ///< Mem: address operand
    uint32_t hwAddr = 0;     ///< Hw
    TypeId type = kInvalidType;
};

class Lowerer {
  public:
    Lowerer(DiagnosticEngine &diags, const std::string &moduleName)
        : diags_(diags), mod_(moduleName) {}

    Module
    run(const std::vector<UnitAst> &units)
    {
        declareStructs(units);
        declareHwRegs(units);
        declareGlobals(units);
        declareFunctions(units);
        if (diags_.hasErrors())
            return std::move(mod_);
        for (const auto &u : units) {
            for (const auto &f : u.funcs)
                lowerFunction(f);
        }
        return std::move(mod_);
    }

  private:
    TypeTable &tt() { return mod_.types(); }

    //--- type resolution ---------------------------------------------

    TypeId
    resolveBase(const TypeSyntax &ts)
    {
        switch (ts.base) {
          case BaseTy::Void: return tt().voidTy();
          case BaseTy::Bool: return tt().boolTy();
          case BaseTy::I8: return tt().i8();
          case BaseTy::U8: return tt().u8();
          case BaseTy::I16: return tt().i16();
          case BaseTy::U16: return tt().u16();
          case BaseTy::I32: return tt().i32();
          case BaseTy::U32: return tt().u32();
          case BaseTy::FnPtr: return tt().fnPtrTy();
          case BaseTy::Struct: {
            auto it = structIds_.find(ts.structName);
            if (it == structIds_.end()) {
                diags_.error(ts.loc, "unknown struct " + ts.structName);
                return tt().u8();
            }
            return tt().structTy(it->second);
          }
        }
        return tt().voidTy();
    }

    TypeId
    resolve(const TypeSyntax &ts)
    {
        TypeId t = resolveBase(ts);
        for (uint32_t i = 0; i < ts.ptrDepth; ++i)
            t = tt().ptrTy(t);
        return t;
    }

    //--- declaration passes --------------------------------------------

    void
    declareStructs(const std::vector<UnitAst> &units)
    {
        for (const auto &u : units) {
            for (const auto &s : u.structs) {
                if (structIds_.count(s.name)) {
                    diags_.error(s.loc, "duplicate struct " + s.name);
                    continue;
                }
                StructType st;
                st.name = s.name;
                structIds_[s.name] = mod_.addStruct(std::move(st));
            }
        }
        for (const auto &u : units) {
            for (const auto &s : u.structs) {
                auto it = structIds_.find(s.name);
                if (it == structIds_.end())
                    continue;
                StructType &st = mod_.structAt(it->second);
                if (!st.fields.empty())
                    continue;  // already filled (duplicate guard)
                for (const auto &f : s.fields) {
                    StructField sf;
                    sf.name = f.name;
                    sf.type = resolve(f.type);
                    if (f.isArray)
                        sf.type = tt().arrayTy(sf.type, f.arrayCount);
                    if (tt().isVoid(sf.type))
                        diags_.error(s.loc, "void field " + f.name);
                    st.fields.push_back(std::move(sf));
                }
            }
        }
    }

    void
    declareHwRegs(const std::vector<UnitAst> &units)
    {
        for (const auto &u : units) {
            for (const auto &r : u.hwregs) {
                if (hwregs_.count(r.name)) {
                    diags_.error(r.loc, "duplicate hwreg " + r.name);
                    continue;
                }
                HwReg reg;
                reg.name = r.name;
                reg.addr = r.addr;
                reg.bits = r.type == BaseTy::U16 ? 16 : 8;
                hwregs_[r.name] = reg;
                mod_.addHwReg(reg);
            }
        }
    }

    //--- constant evaluation for initializers --------------------------

    bool
    evalConst(const Expr &e, int64_t &out)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
          case ExprKind::BoolLit:
            out = static_cast<int64_t>(e.intVal);
            return true;
          case ExprKind::NullLit:
            out = 0;
            return true;
          case ExprKind::SizeofTy:
            out = mod_.typeSize(resolve(e.castType));
            return true;
          case ExprKind::Unary: {
            int64_t v;
            if (!evalConst(*e.a, v))
                return false;
            switch (e.uop) {
              case UnaryOp::Neg: out = -v; return true;
              case UnaryOp::BNot: out = ~v; return true;
              case UnaryOp::LNot: out = !v; return true;
              default: return false;
            }
          }
          case ExprKind::Binary: {
            int64_t a, b;
            if (!evalConst(*e.a, a) || !evalConst(*e.b, b))
                return false;
            switch (e.bop) {
              case BinaryOp::Add: out = arith::wrapAdd(a, b); return true;
              case BinaryOp::Sub: out = arith::wrapSub(a, b); return true;
              case BinaryOp::Mul: out = arith::wrapMul(a, b); return true;
              case BinaryOp::Div:
                if (!b) return false;
                out = arith::sdiv(a, b);
                return true;
              case BinaryOp::Rem:
                if (!b) return false;
                out = arith::srem(a, b);
                return true;
              case BinaryOp::And: out = a & b; return true;
              case BinaryOp::Or: out = a | b; return true;
              case BinaryOp::Xor: out = a ^ b; return true;
              case BinaryOp::Shl: out = a << (b & 63); return true;
              case BinaryOp::Shr: out = a >> (b & 63); return true;
              default: return false;
            }
          }
          case ExprKind::Cast: {
            int64_t v;
            if (!evalConst(*e.a, v))
                return false;
            out = v;
            return true;
          }
          default:
            return false;
        }
    }

    void
    writeLE(std::vector<uint8_t> &bytes, size_t off, uint64_t v, uint32_t n)
    {
        for (uint32_t i = 0; i < n; ++i)
            bytes.at(off + i) = static_cast<uint8_t>(v >> (8 * i));
    }

    void
    buildInitBytes(TypeId t, const Initializer &init,
                   std::vector<uint8_t> &bytes, size_t off, SourceLoc loc)
    {
        const Type &ty = tt().get(t);
        if (init.isString) {
            if (ty.kind != TypeKind::Array ||
                mod_.typeSize(ty.elem) != 1) {
                diags_.error(loc, "string initializer needs a u8 array");
                return;
            }
            for (size_t i = 0;
                 i < init.stringValue.size() && i < ty.count; ++i) {
                bytes.at(off + i) =
                    static_cast<uint8_t>(init.stringValue[i]);
            }
            return;
        }
        if (init.isList) {
            if (ty.kind == TypeKind::Array) {
                uint32_t esz = mod_.typeSize(ty.elem);
                if (init.list.size() > ty.count) {
                    diags_.error(loc, "too many array initializers");
                    return;
                }
                for (size_t i = 0; i < init.list.size(); ++i) {
                    buildInitBytes(ty.elem, init.list[i], bytes,
                                   off + i * esz, loc);
                }
            } else if (ty.kind == TypeKind::Struct) {
                const StructType &st = mod_.structAt(ty.structId);
                if (init.list.size() > st.fields.size()) {
                    diags_.error(loc, "too many struct initializers");
                    return;
                }
                for (size_t i = 0; i < init.list.size(); ++i) {
                    buildInitBytes(st.fields[i].type, init.list[i], bytes,
                                   off + mod_.fieldOffset(ty.structId,
                                                          static_cast<uint32_t>(i)),
                                   loc);
                }
            } else {
                diags_.error(loc, "brace initializer needs aggregate type");
            }
            return;
        }
        int64_t v = 0;
        if (!init.value || !evalConst(*init.value, v)) {
            diags_.error(loc, "initializer is not a compile-time constant");
            return;
        }
        uint32_t sz = mod_.typeSize(t);
        if (ty.kind == TypeKind::Ptr || ty.kind == TypeKind::FnPtr) {
            if (v != 0) {
                diags_.error(loc, "pointer initializer must be null");
                return;
            }
            sz = mod_.typeSize(t);
        }
        writeLE(bytes, off, static_cast<uint64_t>(v), std::min(sz, 8u));
    }

    void
    declareGlobals(const std::vector<UnitAst> &units)
    {
        for (const auto &u : units) {
            for (const auto &g : u.globals) {
                if (globalIds_.count(g.name) || funcAsts_.count(g.name)) {
                    diags_.error(g.loc, "duplicate global " + g.name);
                    continue;
                }
                Global gl;
                gl.name = g.name;
                gl.type = resolve(g.type);
                if (g.isArray)
                    gl.type = tt().arrayTy(gl.type, g.arrayCount);
                if (tt().isVoid(gl.type)) {
                    diags_.error(g.loc, "void global " + g.name);
                    continue;
                }
                gl.section = g.inRom ? Section::Rom : Section::Ram;
                gl.attrs.norace = g.norace;
                gl.loc = g.loc;
                if (g.hasInit) {
                    gl.init.assign(mod_.typeSize(gl.type), 0);
                    buildInitBytes(gl.type, g.init, gl.init, 0, g.loc);
                }
                globalIds_[g.name] = mod_.addGlobal(std::move(gl));
            }
        }
    }

    void
    declareFunctions(const std::vector<UnitAst> &units)
    {
        for (const auto &u : units) {
            for (const auto &f : u.funcs) {
                if (funcAsts_.count(f.name) || globalIds_.count(f.name)) {
                    diags_.error(f.loc, "duplicate function " + f.name);
                    continue;
                }
                Function fn;
                fn.name = f.name;
                fn.retType = resolve(f.retType);
                const Type &rt = tt().get(fn.retType);
                if (rt.kind == TypeKind::Array ||
                    rt.kind == TypeKind::Struct) {
                    diags_.error(f.loc,
                                 "functions cannot return aggregates");
                }
                fn.loc = f.loc;
                fn.attrs.isTask = f.isTask;
                fn.attrs.inlineHint = f.inlineHint;
                fn.attrs.noInline = f.noInline;
                fn.attrs.isInit = f.isInit;
                if (!f.interruptName.empty()) {
                    int vec = vectorByName(f.interruptName);
                    if (vec < 0) {
                        diags_.error(f.loc, "unknown interrupt vector " +
                                                f.interruptName);
                    }
                    fn.attrs.interruptVector = vec;
                    fn.attrs.usedFromStart = true;
                }
                if (f.name == "main")
                    fn.attrs.usedFromStart = true;
                for (const auto &p : f.params) {
                    TypeId pt = resolve(p.type);
                    const Type &pty = tt().get(pt);
                    if (pty.kind == TypeKind::Array ||
                        pty.kind == TypeKind::Struct) {
                        diags_.error(f.loc, "aggregate parameter " + p.name +
                                                " (pass a pointer)");
                    }
                    fn.params.push_back(fn.addVReg(pt, p.name));
                }
                uint32_t id = mod_.addFunction(std::move(fn));
                funcAsts_[f.name] = &f;
                funcIds_[f.name] = id;
            }
        }
    }

    //--- function body lowering ------------------------------------

    /** Names whose address is taken (forced into memory locals). */
    void
    collectAddrTaken(const Expr &e, std::unordered_set<std::string> &out)
    {
        if (e.kind == ExprKind::Unary && e.uop == UnaryOp::AddrOf &&
            e.a && e.a->kind == ExprKind::Var) {
            out.insert(e.a->name);
        }
        if (e.a) collectAddrTaken(*e.a, out);
        if (e.b) collectAddrTaken(*e.b, out);
        if (e.c) collectAddrTaken(*e.c, out);
        for (const auto &a : e.args)
            collectAddrTaken(*a, out);
    }

    void
    collectAddrTaken(const Stmt &s, std::unordered_set<std::string> &out)
    {
        if (s.cond) collectAddrTaken(*s.cond, out);
        if (s.expr) collectAddrTaken(*s.expr, out);
        if (s.hasInit && s.init.value)
            collectAddrTaken(*s.init.value, out);
        if (s.thenS) collectAddrTaken(*s.thenS, out);
        if (s.elseS) collectAddrTaken(*s.elseS, out);
        if (s.forInit) collectAddrTaken(*s.forInit, out);
        if (s.forStep) collectAddrTaken(*s.forStep, out);
        for (const auto &c : s.body)
            collectAddrTaken(*c, out);
    }

    struct LoopCtx {
        uint32_t continueTarget;
        uint32_t breakTarget;
    };

    void
    lowerFunction(const FuncDeclAst &fa)
    {
        Function &fn = mod_.funcAt(funcIds_.at(fa.name));
        curFunc_ = &fn;
        builder_ = std::make_unique<Builder>(mod_, fn);
        fn.addBlock("entry");
        builder_->setBlock(0);
        scopes_.clear();
        scopes_.emplace_back();
        loops_.clear();
        addrTaken_.clear();
        if (fa.body)
            collectAddrTaken(*fa.body, addrTaken_);
        // Parameters: if address-taken, spill to a memory local.
        for (size_t i = 0; i < fa.params.size(); ++i) {
            const auto &p = fa.params[i];
            uint32_t pv = fn.params[i];
            TypeId pt = fn.vregs[pv].type;
            if (addrTaken_.count(p.name)) {
                uint32_t lid = fn.addLocal(p.name, pt);
                uint32_t a = builder_->addrLocal(lid, tt().ptrTy(pt));
                builder_->store(Operand::vreg(a), Operand::vreg(pv), pt);
                scopes_.back()[p.name] = {VarSlot::SlotMem, lid, pt};
            } else {
                scopes_.back()[p.name] = {VarSlot::SlotVReg, pv, pt};
            }
        }
        if (fa.body)
            lowerStmt(*fa.body);
        finishBlocks(fn);
        builder_.reset();
        curFunc_ = nullptr;
    }

    /** Give every unterminated block a terminator (implicit return). */
    void
    finishBlocks(Function &fn)
    {
        for (auto &bb : fn.blocks) {
            if (!bb.instrs.empty() && bb.instrs.back().isTerminator())
                continue;
            Instr ret;
            ret.op = Opcode::Ret;
            if (!tt().isVoid(fn.retType)) {
                Instr ci;
                ci.op = Opcode::ConstI;
                ci.dst = fn.addVReg(fn.retType);
                ci.type = fn.retType;
                ci.args = {Operand::immInt(0)};
                bb.instrs.push_back(ci);
                ret.args = {Operand::vreg(ci.dst)};
            }
            bb.instrs.push_back(ret);
        }
    }

    VarSlot *
    findVar(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        return nullptr;
    }

    /** Start a fresh block if the current one is already terminated. */
    void
    freshBlockIfTerminated()
    {
        if (builder_->terminated()) {
            uint32_t bb = builder_->newBlock("unreachable");
            builder_->setBlock(bb);
        }
    }

    void
    lowerStmt(const Stmt &s)
    {
        freshBlockIfTerminated();
        builder_->setLoc(s.loc);
        switch (s.kind) {
          case StmtKind::Block: {
            scopes_.emplace_back();
            for (const auto &c : s.body)
                lowerStmt(*c);
            scopes_.pop_back();
            break;
          }
          case StmtKind::Empty:
            break;
          case StmtKind::ExprStmt:
            lowerExpr(*s.expr);
            break;
          case StmtKind::VarDecl:
            lowerVarDecl(s);
            break;
          case StmtKind::If: {
            RVal c = truthy(lowerExpr(*s.cond), s.loc);
            uint32_t thenB = builder_->newBlock("then");
            uint32_t elseB = s.elseS ? builder_->newBlock("else") : kNoBlock;
            uint32_t joinB = builder_->newBlock("join");
            builder_->condBr(c.op, thenB, s.elseS ? elseB : joinB);
            builder_->setBlock(thenB);
            lowerStmt(*s.thenS);
            if (!builder_->terminated())
                builder_->br(joinB);
            if (s.elseS) {
                builder_->setBlock(elseB);
                lowerStmt(*s.elseS);
                if (!builder_->terminated())
                    builder_->br(joinB);
            }
            builder_->setBlock(joinB);
            break;
          }
          case StmtKind::While: {
            uint32_t condB = builder_->newBlock("while.cond");
            uint32_t bodyB = builder_->newBlock("while.body");
            uint32_t exitB = builder_->newBlock("while.exit");
            builder_->br(condB);
            builder_->setBlock(condB);
            RVal c = truthy(lowerExpr(*s.cond), s.loc);
            builder_->condBr(c.op, bodyB, exitB);
            builder_->setBlock(bodyB);
            loops_.push_back({condB, exitB});
            lowerStmt(*s.thenS);
            loops_.pop_back();
            if (!builder_->terminated())
                builder_->br(condB);
            builder_->setBlock(exitB);
            break;
          }
          case StmtKind::For: {
            scopes_.emplace_back();
            if (s.forInit)
                lowerStmt(*s.forInit);
            uint32_t condB = builder_->newBlock("for.cond");
            uint32_t bodyB = builder_->newBlock("for.body");
            uint32_t stepB = builder_->newBlock("for.step");
            uint32_t exitB = builder_->newBlock("for.exit");
            builder_->br(condB);
            builder_->setBlock(condB);
            if (s.cond) {
                RVal c = truthy(lowerExpr(*s.cond), s.loc);
                builder_->condBr(c.op, bodyB, exitB);
            } else {
                builder_->br(bodyB);
            }
            builder_->setBlock(bodyB);
            loops_.push_back({stepB, exitB});
            lowerStmt(*s.thenS);
            loops_.pop_back();
            if (!builder_->terminated())
                builder_->br(stepB);
            builder_->setBlock(stepB);
            if (s.forStep)
                lowerStmt(*s.forStep);
            if (!builder_->terminated())
                builder_->br(condB);
            builder_->setBlock(exitB);
            scopes_.pop_back();
            break;
          }
          case StmtKind::Return: {
            if (s.expr) {
                RVal v = lowerExpr(*s.expr);
                v = coerce(v, curFunc_->retType, s.loc);
                builder_->ret(v.op);
            } else {
                if (!tt().isVoid(curFunc_->retType))
                    diags_.error(s.loc, "return needs a value here");
                builder_->ret();
            }
            break;
          }
          case StmtKind::Break:
            if (loops_.empty())
                diags_.error(s.loc, "break outside loop");
            else
                builder_->br(loops_.back().breakTarget);
            break;
          case StmtKind::Continue:
            if (loops_.empty())
                diags_.error(s.loc, "continue outside loop");
            else
                builder_->br(loops_.back().continueTarget);
            break;
          case StmtKind::Atomic: {
            builder_->atomicBegin(true);
            for (const auto &c : s.body)
                lowerStmt(*c);
            freshBlockIfTerminated();
            builder_->atomicEnd(true);
            break;
          }
          case StmtKind::Post: {
            auto it = funcIds_.find(s.postTarget);
            if (it == funcIds_.end()) {
                diags_.error(s.loc, "post of unknown task " + s.postTarget);
                break;
            }
            const Function &task = mod_.funcAt(it->second);
            if (!task.attrs.isTask)
                diags_.error(s.loc, s.postTarget + " is not a task");
            auto pit = funcIds_.find("__st_post");
            if (pit == funcIds_.end()) {
                diags_.error(s.loc,
                             "post requires the runtime __st_post function");
                break;
            }
            builder_->call(pit->second, mod_.funcAt(pit->second).retType,
                           {Operand::func(it->second)});
            break;
          }
        }
    }

    void
    lowerVarDecl(const Stmt &s)
    {
        TypeId t = resolve(s.declType);
        if (s.hasArray)
            t = tt().arrayTy(t, s.arrayCount);
        if (tt().isVoid(t)) {
            diags_.error(s.loc, "void variable " + s.declName);
            return;
        }
        const Type &ty = tt().get(t);
        bool needsMem = addrTaken_.count(s.declName) ||
                        ty.kind == TypeKind::Array ||
                        ty.kind == TypeKind::Struct;
        VarSlot slot;
        slot.type = t;
        if (needsMem) {
            slot.kind = VarSlot::SlotMem;
            slot.index = curFunc_->addLocal(s.declName, t);
        } else {
            slot.kind = VarSlot::SlotVReg;
            slot.index = curFunc_->addVReg(t, s.declName);
        }
        scopes_.back()[s.declName] = slot;
        if (s.hasInit) {
            if (s.init.isList || s.init.isString) {
                diags_.error(s.loc,
                             "aggregate initializers only allowed on globals");
                return;
            }
            RVal v = coerce(lowerExpr(*s.init.value), t, s.loc);
            storeToSlot(slot, v, s.loc);
        } else if (needsMem) {
            // Memory locals are zeroed by the frame setup in both the
            // interpreter and the generated prologue.
        }
    }

    void
    storeToSlot(const VarSlot &slot, const RVal &v, SourceLoc loc)
    {
        if (slot.kind == VarSlot::SlotVReg) {
            builder_->movTo(slot.index, v.op);
        } else if (slot.kind == VarSlot::SlotMem) {
            uint32_t a =
                builder_->addrLocal(slot.index, tt().ptrTy(slot.type));
            builder_->store(Operand::vreg(a), v.op, slot.type);
        } else {
            const Global &g = mod_.globalAt(slot.index);
            uint32_t a = builder_->addrGlobal(g.id, tt().ptrTy(slot.type));
            builder_->store(Operand::vreg(a), v.op, slot.type);
        }
        (void)loc;
    }

    //--- expression lowering -------------------------------------------

    bool
    isIntLike(TypeId t)
    {
        return tt().isScalarInt(t);
    }

    uint32_t
    intBits(TypeId t)
    {
        const Type &ty = tt().get(t);
        if (ty.kind == TypeKind::Bool)
            return 8;
        return ty.bits;
    }

    bool
    intSigned(TypeId t)
    {
        const Type &ty = tt().get(t);
        return ty.kind == TypeKind::Int && ty.isSigned;
    }

    /** C-style usual arithmetic conversions, 16-bit "int". */
    TypeId
    promote(TypeId a, TypeId b)
    {
        uint32_t bits = std::max({intBits(a), intBits(b), 16u});
        bool sgn = intSigned(a) && intSigned(b);
        if (intBits(a) > intBits(b))
            sgn = intSigned(a);
        else if (intBits(b) > intBits(a))
            sgn = intSigned(b);
        else
            sgn = intSigned(a) && intSigned(b);
        if (bits < 16)
            bits = 16;
        return tt().intTy(static_cast<uint8_t>(bits), sgn);
    }

    RVal
    coerce(RVal v, TypeId to, SourceLoc loc)
    {
        if (v.type == to)
            return v;
        const Type &from = tt().get(v.type);
        const Type &dst = tt().get(to);
        // int <-> int / bool
        if (isIntLike(v.type) && isIntLike(to)) {
            return {Operand::vreg(builder_->cast(to, v.op)), to};
        }
        // null literal (int imm 0) -> pointer/fnptr
        if (v.op.isImm() && v.op.imm == 0 &&
            (dst.kind == TypeKind::Ptr || dst.kind == TypeKind::FnPtr)) {
            return {Operand::vreg(builder_->cast(to, v.op)), to};
        }
        // pointer -> bool in conditions handled by truthy()
        if (from.kind == TypeKind::Ptr && dst.kind == TypeKind::Ptr) {
            if (from.pointee == dst.pointee)
                return v;
            diags_.error(loc, "implicit pointer conversion; use a cast");
            return v;
        }
        if (from.kind == TypeKind::FnPtr && dst.kind == TypeKind::FnPtr)
            return v;
        diags_.error(loc, strfmt("cannot convert value of type %u to %u",
                                 v.type, to));
        return v;
    }

    RVal
    truthy(RVal v, SourceLoc loc)
    {
        const Type &ty = tt().get(v.type);
        if (ty.kind == TypeKind::Bool)
            return v;
        if (ty.kind == TypeKind::Int || ty.kind == TypeKind::Ptr ||
            ty.kind == TypeKind::FnPtr) {
            uint32_t d = builder_->bin(BinOp::Ne, tt().boolTy(), v.op,
                                       Operand::immInt(0));
            return {Operand::vreg(d), tt().boolTy()};
        }
        diags_.error(loc, "condition is not scalar");
        return {Operand::immInt(0), tt().boolTy()};
    }

    /** Decay arrays to element pointers; load from lvalues. */
    RVal
    rvalueOf(const LVal &lv, SourceLoc loc)
    {
        if (lv.kind == LVal::None || lv.type == kInvalidType)
            return {Operand::immInt(0), tt().u16()};
        const Type &ty = tt().get(lv.type);
        switch (lv.kind) {
          case LVal::VRegSlot:
            return {Operand::vreg(lv.vreg), lv.type};
          case LVal::Mem: {
            if (ty.kind == TypeKind::Array) {
                // Decay: pointer to first element, same address.
                TypeId pt = tt().ptrTy(ty.elem);
                uint32_t d = builder_->cast(pt, lv.addr);
                return {Operand::vreg(d), pt};
            }
            if (ty.kind == TypeKind::Struct) {
                // Struct rvalue = its address (used by assignment only).
                return {lv.addr, tt().ptrTy(lv.type)};
            }
            uint32_t d = builder_->load(lv.type, lv.addr);
            return {Operand::vreg(d), lv.type};
          }
          case LVal::Hw: {
            uint32_t d = builder_->hwRead(lv.type, lv.hwAddr);
            return {Operand::vreg(d), lv.type};
          }
          case LVal::None:
            break;
        }
        diags_.error(loc, "expected a value");
        return {Operand::immInt(0), tt().u16()};
    }

    void
    assignTo(const LVal &lv, RVal v, SourceLoc loc)
    {
        if (lv.kind == LVal::None || lv.type == kInvalidType)
            return;
        const Type &ty = tt().get(lv.type);
        if (ty.kind == TypeKind::Struct || ty.kind == TypeKind::Array) {
            emitAggregateCopy(lv, v, loc);
            return;
        }
        v = coerce(v, lv.type, loc);
        switch (lv.kind) {
          case LVal::VRegSlot:
            builder_->movTo(lv.vreg, v.op);
            break;
          case LVal::Mem:
            builder_->store(lv.addr, v.op, lv.type);
            break;
          case LVal::Hw:
            builder_->hwWrite(lv.hwAddr, v.op, lv.type);
            break;
          case LVal::None:
            diags_.error(loc, "cannot assign here");
            break;
        }
    }

    /**
     * Struct/array assignment becomes an inline byte-copy loop through
     * u8 pointers (which the safety stage will kind as SEQ — the same
     * cost a real CCured memcpy has).
     */
    void
    emitAggregateCopy(const LVal &dst, const RVal &src, SourceLoc loc)
    {
        if (dst.kind != LVal::Mem) {
            diags_.error(loc, "bad aggregate assignment target");
            return;
        }
        const Type &sty = tt().get(src.type);
        if (sty.kind != TypeKind::Ptr ||
            sty.pointee != dst.type) {
            diags_.error(loc, "aggregate assignment type mismatch");
            return;
        }
        uint32_t size = mod_.typeSize(dst.type);
        TypeId u8p = tt().ptrTy(tt().u8());
        TypeId u16t = tt().u16();
        uint32_t d = builder_->cast(u8p, dst.addr);
        uint32_t s = builder_->cast(u8p, src.op);
        uint32_t i = curFunc_->addVReg(u16t, "copy.i");
        builder_->movTo(i, Operand::immInt(0));
        uint32_t condB = builder_->newBlock("copy.cond");
        uint32_t bodyB = builder_->newBlock("copy.body");
        uint32_t exitB = builder_->newBlock("copy.exit");
        builder_->br(condB);
        builder_->setBlock(condB);
        uint32_t c = builder_->bin(BinOp::LtU, tt().boolTy(),
                                   Operand::vreg(i), Operand::immInt(size));
        builder_->condBr(Operand::vreg(c), bodyB, exitB);
        builder_->setBlock(bodyB);
        uint32_t sp = builder_->ptrAdd(Operand::vreg(s), Operand::vreg(i),
                                       1, u8p);
        uint32_t v = builder_->load(tt().u8(), Operand::vreg(sp));
        uint32_t dp = builder_->ptrAdd(Operand::vreg(d), Operand::vreg(i),
                                       1, u8p);
        builder_->store(Operand::vreg(dp), Operand::vreg(v), tt().u8());
        uint32_t ni = builder_->bin(BinOp::Add, u16t, Operand::vreg(i),
                                    Operand::immInt(1));
        builder_->movTo(i, Operand::vreg(ni));
        builder_->br(condB);
        builder_->setBlock(exitB);
    }

    LVal
    lowerLValue(const Expr &e)
    {
        builder_->setLoc(e.loc);
        switch (e.kind) {
          case ExprKind::Var: {
            if (VarSlot *vs = findVar(e.name)) {
                LVal lv;
                lv.type = vs->type;
                if (vs->kind == VarSlot::SlotVReg) {
                    lv.kind = LVal::VRegSlot;
                    lv.vreg = vs->index;
                } else {
                    lv.kind = LVal::Mem;
                    lv.addr = Operand::vreg(builder_->addrLocal(
                        vs->index, tt().ptrTy(vs->type)));
                }
                return lv;
            }
            auto git = globalIds_.find(e.name);
            if (git != globalIds_.end()) {
                const Global &g = mod_.globalAt(git->second);
                LVal lv;
                lv.kind = LVal::Mem;
                lv.type = g.type;
                lv.addr = Operand::vreg(
                    builder_->addrGlobal(g.id, tt().ptrTy(g.type)));
                return lv;
            }
            auto hit = hwregs_.find(e.name);
            if (hit != hwregs_.end()) {
                LVal lv;
                lv.kind = LVal::Hw;
                lv.hwAddr = hit->second.addr;
                lv.type = hit->second.bits == 16 ? tt().u16() : tt().u8();
                return lv;
            }
            diags_.error(e.loc, "unknown variable " + e.name);
            return {};
          }
          case ExprKind::Unary: {
            if (e.uop != UnaryOp::Deref)
                break;
            RVal p = lowerExpr(*e.a);
            const Type &pt = tt().get(p.type);
            if (pt.kind != TypeKind::Ptr) {
                diags_.error(e.loc, "dereference of non-pointer");
                return {};
            }
            LVal lv;
            lv.kind = LVal::Mem;
            lv.addr = p.op;
            lv.type = pt.pointee;
            return lv;
          }
          case ExprKind::Index: {
            RVal base = lowerExpr(*e.a);
            const Type &bt = tt().get(base.type);
            if (bt.kind != TypeKind::Ptr) {
                diags_.error(e.loc, "indexing a non-pointer");
                return {};
            }
            RVal idx = lowerExpr(*e.b);
            if (!isIntLike(idx.type)) {
                diags_.error(e.loc, "array index is not an integer");
                return {};
            }
            idx = coerce(idx, tt().u16(), e.loc);
            uint32_t esz = mod_.typeSize(bt.pointee);
            uint32_t p = builder_->ptrAdd(base.op, idx.op, esz, base.type);
            LVal lv;
            lv.kind = LVal::Mem;
            lv.addr = Operand::vreg(p);
            lv.type = bt.pointee;
            return lv;
          }
          case ExprKind::Member: {
            TypeId structTy = kInvalidType;
            Operand baseAddr;
            if (e.isArrow) {
                RVal p = lowerExpr(*e.a);
                const Type &pt = tt().get(p.type);
                if (pt.kind != TypeKind::Ptr ||
                    tt().get(pt.pointee).kind != TypeKind::Struct) {
                    diags_.error(e.loc, "-> needs a struct pointer");
                    return {};
                }
                structTy = pt.pointee;
                baseAddr = p.op;
            } else {
                LVal base = lowerLValue(*e.a);
                if (base.kind != LVal::Mem ||
                    tt().get(base.type).kind != TypeKind::Struct) {
                    diags_.error(e.loc, ". needs a struct variable");
                    return {};
                }
                structTy = base.type;
                baseAddr = base.addr;
            }
            uint32_t sid = tt().get(structTy).structId;
            const StructType &st = mod_.structAt(sid);
            for (uint32_t i = 0; i < st.fields.size(); ++i) {
                if (st.fields[i].name == e.name) {
                    TypeId ft = st.fields[i].type;
                    uint32_t off = mod_.fieldOffset(sid, i);
                    uint32_t p = builder_->gep(baseAddr, i, off,
                                               tt().ptrTy(ft));
                    LVal lv;
                    lv.kind = LVal::Mem;
                    lv.addr = Operand::vreg(p);
                    lv.type = ft;
                    return lv;
                }
            }
            diags_.error(e.loc, "no field " + e.name + " in struct " +
                                    st.name);
            return {};
          }
          default:
            break;
        }
        diags_.error(e.loc, "expression is not assignable");
        return {};
    }

    RVal
    lowerExpr(const Expr &e)
    {
        builder_->setLoc(e.loc);
        switch (e.kind) {
          case ExprKind::IntLit: {
            TypeId t = e.intVal > 0xFFFF ? tt().u32() : tt().u16();
            return {Operand::vreg(builder_->constI(
                        t, static_cast<int64_t>(e.intVal))),
                    t};
          }
          case ExprKind::BoolLit:
            return {Operand::vreg(builder_->constI(
                        tt().boolTy(), static_cast<int64_t>(e.intVal))),
                    tt().boolTy()};
          case ExprKind::NullLit:
            return {Operand::immInt(0), tt().u16()};
          case ExprKind::StrLit:
            return lowerStringLit(e);
          case ExprKind::Var: {
            // Function name as value -> fnptr constant.
            auto fit = funcIds_.find(e.name);
            if (fit != funcIds_.end() && !findVar(e.name)) {
                return {Operand::func(fit->second), tt().fnPtrTy()};
            }
            LVal lv = lowerLValue(e);
            return rvalueOf(lv, e.loc);
          }
          case ExprKind::Unary:
            return lowerUnary(e);
          case ExprKind::Binary:
            return lowerBinary(e);
          case ExprKind::Assign: {
            LVal lv = lowerLValue(*e.a);
            RVal rhs;
            if (e.isCompound) {
                RVal cur = rvalueOf(lv, e.loc);
                rhs = lowerBinaryOp(e.assignOp, cur, lowerExpr(*e.b), e.loc);
            } else {
                rhs = lowerExpr(*e.b);
            }
            if (lv.kind == LVal::None || lv.type == kInvalidType)
                return rhs;
            const Type &lt = tt().get(lv.type);
            if (lt.kind != TypeKind::Struct && lt.kind != TypeKind::Array)
                rhs = coerce(rhs, lv.type, e.loc);
            assignTo(lv, rhs, e.loc);
            return rhs;
          }
          case ExprKind::Cond: {
            RVal c = truthy(lowerExpr(*e.a), e.loc);
            uint32_t thenB = builder_->newBlock("sel.then");
            uint32_t elseB = builder_->newBlock("sel.else");
            uint32_t joinB = builder_->newBlock("sel.join");
            builder_->condBr(c.op, thenB, elseB);
            builder_->setBlock(thenB);
            RVal a = lowerExpr(*e.b);
            TypeId rt = a.type;
            uint32_t slot = curFunc_->addVReg(rt, "sel");
            builder_->movTo(slot, a.op);
            builder_->br(joinB);
            builder_->setBlock(elseB);
            RVal b = lowerExpr(*e.c);
            b = coerce(b, rt, e.loc);
            builder_->movTo(slot, b.op);
            builder_->br(joinB);
            builder_->setBlock(joinB);
            return {Operand::vreg(slot), rt};
          }
          case ExprKind::Index:
          case ExprKind::Member: {
            LVal lv = lowerLValue(e);
            return rvalueOf(lv, e.loc);
          }
          case ExprKind::Call:
            return lowerCall(e);
          case ExprKind::Cast: {
            TypeId to = resolve(e.castType);
            RVal v = lowerExpr(*e.a);
            if (v.type == to)
                return v;
            return {Operand::vreg(builder_->cast(to, v.op)), to};
          }
          case ExprKind::SizeofTy: {
            uint32_t sz = mod_.typeSize(resolve(e.castType));
            return {Operand::vreg(builder_->constI(tt().u16(), sz)),
                    tt().u16()};
          }
          case ExprKind::IncDec: {
            LVal lv = lowerLValue(*e.a);
            RVal old = rvalueOf(lv, e.loc);
            if (lv.kind == LVal::None || lv.type == kInvalidType)
                return old;
            const Type &ty = tt().get(lv.type);
            RVal one = {Operand::immInt(1), lv.type};
            RVal next;
            if (ty.kind == TypeKind::Ptr) {
                uint32_t esz = mod_.typeSize(ty.pointee);
                uint32_t p = builder_->ptrAdd(
                    old.op, Operand::immInt(e.isInc ? 1 : -1), esz, lv.type);
                next = {Operand::vreg(p), lv.type};
            } else {
                next = lowerBinaryOp(
                    e.isInc ? BinaryOp::Add : BinaryOp::Sub, old, one,
                    e.loc);
                next = coerce(next, lv.type, e.loc);
            }
            assignTo(lv, next, e.loc);
            return old;
          }
        }
        diags_.error(e.loc, "unsupported expression");
        return {Operand::immInt(0), tt().u16()};
    }

    RVal
    lowerStringLit(const Expr &e)
    {
        Global g;
        g.name = strfmt("__str%u", stringCounter_++);
        uint32_t len = static_cast<uint32_t>(e.name.size()) + 1;
        g.type = tt().arrayTy(tt().u8(), len);
        g.attrs.isString = true;
        g.init.assign(len, 0);
        for (size_t i = 0; i < e.name.size(); ++i)
            g.init[i] = static_cast<uint8_t>(e.name[i]);
        uint32_t gid = mod_.addGlobal(std::move(g));
        TypeId u8p = tt().ptrTy(tt().u8());
        uint32_t a = builder_->addrGlobal(gid, u8p);
        return {Operand::vreg(a), u8p};
    }

    RVal
    lowerUnary(const Expr &e)
    {
        switch (e.uop) {
          case UnaryOp::LNot: {
            RVal v = truthy(lowerExpr(*e.a), e.loc);
            uint32_t d = builder_->un(UnOp::Not, tt().boolTy(), v.op);
            return {Operand::vreg(d), tt().boolTy()};
          }
          case UnaryOp::BNot: {
            RVal v = lowerExpr(*e.a);
            TypeId t = promote(v.type, v.type);
            v = coerce(v, t, e.loc);
            uint32_t d = builder_->un(UnOp::BNot, t, v.op);
            return {Operand::vreg(d), t};
          }
          case UnaryOp::Neg: {
            RVal v = lowerExpr(*e.a);
            TypeId t = promote(v.type, v.type);
            v = coerce(v, t, e.loc);
            uint32_t d = builder_->un(UnOp::Neg, t, v.op);
            return {Operand::vreg(d), t};
          }
          case UnaryOp::Deref: {
            LVal lv = lowerLValue(e);
            return rvalueOf(lv, e.loc);
          }
          case UnaryOp::AddrOf: {
            LVal lv = lowerLValue(*e.a);
            if (lv.kind != LVal::Mem) {
                diags_.error(e.loc, "cannot take address of this");
                return {Operand::immInt(0), tt().ptrTy(tt().u8())};
            }
            const Type &ty = tt().get(lv.type);
            if (ty.kind == TypeKind::Array) {
                TypeId pt = tt().ptrTy(ty.elem);
                uint32_t d = builder_->cast(pt, lv.addr);
                return {Operand::vreg(d), pt};
            }
            return {lv.addr, tt().ptrTy(lv.type)};
          }
        }
        diags_.error(e.loc, "unsupported unary operator");
        return {Operand::immInt(0), tt().u16()};
    }

    RVal
    lowerBinaryOp(BinaryOp op, RVal a, RVal b, SourceLoc loc)
    {
        const Type &at = tt().get(a.type);
        const Type &bt = tt().get(b.type);
        // Pointer arithmetic: p + n / p - n.
        if (at.kind == TypeKind::Ptr && isIntLike(b.type) &&
            (op == BinaryOp::Add || op == BinaryOp::Sub)) {
            RVal idx = coerce(b, tt().i16(), loc);
            Operand idxOp = idx.op;
            if (op == BinaryOp::Sub) {
                uint32_t neg = builder_->un(UnOp::Neg, tt().i16(), idxOp);
                idxOp = Operand::vreg(neg);
            }
            uint32_t esz = mod_.typeSize(at.pointee);
            uint32_t d = builder_->ptrAdd(a.op, idxOp, esz, a.type);
            return {Operand::vreg(d), a.type};
        }
        // Pointer comparisons (and against null).
        if ((at.kind == TypeKind::Ptr || bt.kind == TypeKind::Ptr ||
             at.kind == TypeKind::FnPtr || bt.kind == TypeKind::FnPtr)) {
            switch (op) {
              case BinaryOp::Eq: case BinaryOp::Ne:
              case BinaryOp::Lt: case BinaryOp::Le:
              case BinaryOp::Gt: case BinaryOp::Ge: {
                BinOp irop;
                switch (op) {
                  case BinaryOp::Eq: irop = BinOp::Eq; break;
                  case BinaryOp::Ne: irop = BinOp::Ne; break;
                  case BinaryOp::Lt: irop = BinOp::LtU; break;
                  case BinaryOp::Le: irop = BinOp::LeU; break;
                  case BinaryOp::Gt: irop = BinOp::GtU; break;
                  default: irop = BinOp::GeU; break;
                }
                uint32_t d = builder_->bin(irop, tt().boolTy(), a.op, b.op);
                return {Operand::vreg(d), tt().boolTy()};
              }
              default:
                diags_.error(loc, "invalid pointer arithmetic");
                return {Operand::immInt(0), tt().u16()};
            }
        }
        if (op == BinaryOp::LAnd || op == BinaryOp::LOr)
            panic("logical ops lowered elsewhere");
        if (!isIntLike(a.type) || !isIntLike(b.type)) {
            diags_.error(loc, "arithmetic needs integer operands");
            return {Operand::immInt(0), tt().u16()};
        }
        TypeId t = promote(a.type, b.type);
        a = coerce(a, t, loc);
        b = coerce(b, t, loc);
        bool sgn = intSigned(t);
        BinOp irop;
        TypeId rt = t;
        switch (op) {
          case BinaryOp::Add: irop = BinOp::Add; break;
          case BinaryOp::Sub: irop = BinOp::Sub; break;
          case BinaryOp::Mul: irop = BinOp::Mul; break;
          case BinaryOp::Div: irop = sgn ? BinOp::DivS : BinOp::DivU; break;
          case BinaryOp::Rem: irop = sgn ? BinOp::RemS : BinOp::RemU; break;
          case BinaryOp::And: irop = BinOp::And; break;
          case BinaryOp::Or: irop = BinOp::Or; break;
          case BinaryOp::Xor: irop = BinOp::Xor; break;
          case BinaryOp::Shl: irop = BinOp::Shl; break;
          case BinaryOp::Shr: irop = sgn ? BinOp::ShrS : BinOp::ShrU; break;
          case BinaryOp::Eq: irop = BinOp::Eq; rt = tt().boolTy(); break;
          case BinaryOp::Ne: irop = BinOp::Ne; rt = tt().boolTy(); break;
          case BinaryOp::Lt:
            irop = sgn ? BinOp::LtS : BinOp::LtU;
            rt = tt().boolTy();
            break;
          case BinaryOp::Le:
            irop = sgn ? BinOp::LeS : BinOp::LeU;
            rt = tt().boolTy();
            break;
          case BinaryOp::Gt:
            irop = sgn ? BinOp::GtS : BinOp::GtU;
            rt = tt().boolTy();
            break;
          case BinaryOp::Ge:
            irop = sgn ? BinOp::GeS : BinOp::GeU;
            rt = tt().boolTy();
            break;
          default:
            diags_.error(loc, "unsupported binary operator");
            return {Operand::immInt(0), tt().u16()};
        }
        uint32_t d = builder_->bin(irop, rt, a.op, b.op);
        return {Operand::vreg(d), rt};
    }

    RVal
    lowerBinary(const Expr &e)
    {
        if (e.bop == BinaryOp::LAnd || e.bop == BinaryOp::LOr) {
            // Short-circuit with a bool result slot.
            uint32_t slot = curFunc_->addVReg(tt().boolTy(), "sc");
            uint32_t rhsB = builder_->newBlock("sc.rhs");
            uint32_t joinB = builder_->newBlock("sc.join");
            RVal a = truthy(lowerExpr(*e.a), e.loc);
            builder_->movTo(slot, a.op);
            if (e.bop == BinaryOp::LAnd)
                builder_->condBr(a.op, rhsB, joinB);
            else
                builder_->condBr(a.op, joinB, rhsB);
            builder_->setBlock(rhsB);
            RVal b = truthy(lowerExpr(*e.b), e.loc);
            builder_->movTo(slot, b.op);
            builder_->br(joinB);
            builder_->setBlock(joinB);
            return {Operand::vreg(slot), tt().boolTy()};
        }
        RVal a = lowerExpr(*e.a);
        RVal b = lowerExpr(*e.b);
        return lowerBinaryOp(e.bop, a, b, e.loc);
    }

    RVal
    lowerCall(const Expr &e)
    {
        // Compiler builtin: enter low-power sleep until an interrupt.
        if (e.a->kind == ExprKind::Var &&
            e.a->name == "__builtin_sleep" && !findVar(e.a->name) &&
            !funcIds_.count(e.a->name)) {
            Instr sl;
            sl.op = Opcode::Sleep;
            builder_->emit(sl);
            return {Operand::immInt(0), tt().voidTy()};
        }
        // Direct call: callee is a Var naming a function.
        if (e.a->kind == ExprKind::Var && !findVar(e.a->name)) {
            auto it = funcIds_.find(e.a->name);
            if (it != funcIds_.end()) {
                const Function &callee = mod_.funcAt(it->second);
                if (e.args.size() != callee.params.size()) {
                    diags_.error(e.loc,
                                 strfmt("%s expects %zu arguments, got %zu",
                                        callee.name.c_str(),
                                        callee.params.size(),
                                        e.args.size()));
                    return {Operand::immInt(0), tt().u16()};
                }
                std::vector<Operand> args;
                for (size_t i = 0; i < e.args.size(); ++i) {
                    RVal v = lowerExpr(*e.args[i]);
                    v = coerce(v, callee.vregs[callee.params[i]].type,
                               e.loc);
                    args.push_back(v.op);
                }
                uint32_t d = builder_->call(it->second, callee.retType,
                                            std::move(args));
                if (tt().isVoid(callee.retType))
                    return {Operand::immInt(0), tt().voidTy()};
                return {Operand::vreg(d), callee.retType};
            }
        }
        // Indirect call through a fnptr (void(void) only).
        RVal p = lowerExpr(*e.a);
        if (!tt().isFnPtr(p.type)) {
            diags_.error(e.loc, "call of non-function");
            return {Operand::immInt(0), tt().u16()};
        }
        if (!e.args.empty())
            diags_.error(e.loc, "fnptr calls take no arguments");
        builder_->callInd(p.op);
        return {Operand::immInt(0), tt().voidTy()};
    }

    DiagnosticEngine &diags_;
    Module mod_;
    std::unordered_map<std::string, uint32_t> structIds_;
    std::unordered_map<std::string, HwReg> hwregs_;
    std::unordered_map<std::string, uint32_t> globalIds_;
    std::unordered_map<std::string, const FuncDeclAst *> funcAsts_;
    std::unordered_map<std::string, uint32_t> funcIds_;
    Function *curFunc_ = nullptr;
    std::unique_ptr<Builder> builder_;
    std::vector<std::unordered_map<std::string, VarSlot>> scopes_;
    std::vector<LoopCtx> loops_;
    std::unordered_set<std::string> addrTaken_;
    uint32_t stringCounter_ = 0;
};

} // namespace

Module
compileTinyC(const std::vector<CompileInput> &inputs,
             DiagnosticEngine &diags, SourceManager &sm,
             const std::string &moduleName)
{
    std::vector<UnitAst> units;
    for (const auto &in : inputs) {
        uint32_t fid = sm.addBuffer(in.name, in.source);
        auto toks = lex(sm.fileText(fid), fid, diags);
        units.push_back(parseUnit(std::move(toks), diags));
    }
    if (diags.hasErrors())
        return Module(moduleName);
    Lowerer lower(diags, moduleName);
    return lower.run(units);
}

} // namespace stos::frontend
