/**
 * @file
 * Frontend driver: TinyC sources in, TinyCIL module out. This stage
 * corresponds to "run nesC compiler" in the paper's toolchain
 * (Figure 1): it produces plain whole-program intermediate code from
 * the component-style sources.
 */
#ifndef STOS_FRONTEND_FRONTEND_H
#define STOS_FRONTEND_FRONTEND_H

#include <string>
#include <vector>

#include "support/diagnostics.h"
#include "support/source_loc.h"
#include "ir/module.h"

namespace stos::frontend {

struct CompileInput {
    std::string name;    ///< buffer name for diagnostics
    std::string source;  ///< TinyC text
};

/**
 * Compile a whole program (several TinyC buffers merged into one
 * module). On error, diagnostics are populated and the returned module
 * is unusable (check diags.hasErrors()).
 */
ir::Module compileTinyC(const std::vector<CompileInput> &inputs,
                        DiagnosticEngine &diags, SourceManager &sm,
                        const std::string &moduleName = "app");

} // namespace stos::frontend

#endif
