/**
 * @file
 * TinyC parser implementation. Standard recursive descent with C
 * operator precedence.
 */
#include "frontend/parser.h"

#include "support/util.h"

namespace stos::frontend {

namespace {

class Parser {
  public:
    Parser(std::vector<Token> toks, DiagnosticEngine &diags)
        : toks_(std::move(toks)), diags_(diags) {}

    UnitAst
    run()
    {
        UnitAst unit;
        while (!at(Tok::Eof)) {
            size_t before = pos_;
            parseTopLevel(unit);
            if (pos_ == before) {
                // Ensure forward progress even on malformed input.
                advance();
            }
        }
        return unit;
    }

  private:
    const Token &cur() const { return toks_[pos_]; }
    const Token &peek(size_t n = 1) const
    {
        size_t i = pos_ + n;
        return toks_[i < toks_.size() ? i : toks_.size() - 1];
    }
    bool at(Tok k) const { return cur().kind == k; }

    Token
    advance()
    {
        Token t = cur();
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    bool
    accept(Tok k)
    {
        if (at(k)) {
            advance();
            return true;
        }
        return false;
    }

    Token
    expect(Tok k, const char *what)
    {
        if (at(k))
            return advance();
        diags_.error(cur().loc, strfmt("expected %s", what));
        return cur();
    }

    /** Skip to after next semicolon / closing brace for recovery. */
    void
    synchronize()
    {
        int depth = 0;
        while (!at(Tok::Eof)) {
            if (at(Tok::LBrace))
                ++depth;
            if (at(Tok::RBrace)) {
                if (depth == 0) {
                    advance();
                    return;
                }
                --depth;
            }
            if (at(Tok::Semi) && depth == 0) {
                advance();
                return;
            }
            advance();
        }
    }

    bool
    atTypeStart() const
    {
        switch (cur().kind) {
          case Tok::KwVoid: case Tok::KwBool: case Tok::KwI8: case Tok::KwU8:
          case Tok::KwI16: case Tok::KwU16: case Tok::KwI32: case Tok::KwU32:
          case Tok::KwFnPtr:
            return true;
          case Tok::KwStruct:
            // "struct Name" used as a type (vs a struct definition).
            return peek().kind == Tok::Ident &&
                   peek(2).kind != Tok::LBrace;
          default:
            return false;
        }
    }

    TypeSyntax
    parseType()
    {
        TypeSyntax t;
        t.loc = cur().loc;
        switch (cur().kind) {
          case Tok::KwVoid: t.base = BaseTy::Void; advance(); break;
          case Tok::KwBool: t.base = BaseTy::Bool; advance(); break;
          case Tok::KwI8: t.base = BaseTy::I8; advance(); break;
          case Tok::KwU8: t.base = BaseTy::U8; advance(); break;
          case Tok::KwI16: t.base = BaseTy::I16; advance(); break;
          case Tok::KwU16: t.base = BaseTy::U16; advance(); break;
          case Tok::KwI32: t.base = BaseTy::I32; advance(); break;
          case Tok::KwU32: t.base = BaseTy::U32; advance(); break;
          case Tok::KwFnPtr: t.base = BaseTy::FnPtr; advance(); break;
          case Tok::KwStruct:
            advance();
            t.base = BaseTy::Struct;
            t.structName = expect(Tok::Ident, "struct name").text;
            break;
          default:
            diags_.error(cur().loc, "expected a type");
            advance();
            break;
        }
        while (accept(Tok::Star))
            ++t.ptrDepth;
        return t;
    }

    //--- top level ----------------------------------------------------

    void
    parseTopLevel(UnitAst &unit)
    {
        if (at(Tok::KwStruct) && peek().kind == Tok::Ident &&
            peek(2).kind == Tok::LBrace) {
            unit.structs.push_back(parseStructDecl());
            return;
        }
        if (at(Tok::KwHwreg)) {
            unit.hwregs.push_back(parseHwRegDecl());
            return;
        }
        bool norace = false, inRom = false;
        bool isTask = false, inlineHint = false, noInline = false;
        bool isInit = false;
        std::string irqName;
        bool sawFuncAttr = false, sawVarAttr = false;
        for (;;) {
            if (accept(Tok::KwNorace)) { norace = true; sawVarAttr = true; }
            else if (accept(Tok::KwRom)) { inRom = true; sawVarAttr = true; }
            else if (accept(Tok::KwTask)) { isTask = true; sawFuncAttr = true; }
            else if (accept(Tok::KwInline)) { inlineHint = true; sawFuncAttr = true; }
            else if (accept(Tok::KwNoinline)) { noInline = true; sawFuncAttr = true; }
            else if (accept(Tok::KwInit)) { isInit = true; sawFuncAttr = true; }
            else if (at(Tok::KwInterrupt)) {
                advance();
                expect(Tok::LParen, "(");
                irqName = expect(Tok::Ident, "interrupt vector name").text;
                expect(Tok::RParen, ")");
                sawFuncAttr = true;
            } else {
                break;
            }
        }
        if (!atTypeStart()) {
            diags_.error(cur().loc, "expected a declaration");
            synchronize();
            return;
        }
        TypeSyntax type = parseType();
        Token name = expect(Tok::Ident, "declaration name");
        if (at(Tok::LParen)) {
            if (sawVarAttr)
                diags_.error(name.loc, "norace/rom apply to variables only");
            unit.funcs.push_back(parseFuncRest(type, name.text, isTask,
                                               irqName, inlineHint, noInline,
                                               isInit));
        } else {
            if (sawFuncAttr) {
                diags_.error(name.loc,
                             "task/interrupt/inline apply to functions only");
            }
            unit.globals.push_back(
                parseGlobalRest(type, name.text, norace, inRom, name.loc));
        }
    }

    StructDeclAst
    parseStructDecl()
    {
        StructDeclAst s;
        s.loc = cur().loc;
        expect(Tok::KwStruct, "struct");
        s.name = expect(Tok::Ident, "struct name").text;
        expect(Tok::LBrace, "{");
        while (!at(Tok::RBrace) && !at(Tok::Eof)) {
            StructDeclAst::Field f;
            f.type = parseType();
            f.name = expect(Tok::Ident, "field name").text;
            if (accept(Tok::LBracket)) {
                f.isArray = true;
                f.arrayCount =
                    static_cast<uint32_t>(
                        expect(Tok::IntLit, "array size").intVal);
                expect(Tok::RBracket, "]");
            }
            expect(Tok::Semi, ";");
            s.fields.push_back(std::move(f));
        }
        expect(Tok::RBrace, "}");
        expect(Tok::Semi, "; after struct");
        return s;
    }

    HwRegDeclAst
    parseHwRegDecl()
    {
        HwRegDeclAst r;
        r.loc = cur().loc;
        expect(Tok::KwHwreg, "hwreg");
        TypeSyntax t = parseType();
        if (t.ptrDepth != 0 ||
            (t.base != BaseTy::U8 && t.base != BaseTy::U16)) {
            diags_.error(t.loc, "hwreg must be u8 or u16");
        }
        r.type = t.base;
        r.name = expect(Tok::Ident, "hwreg name").text;
        expect(Tok::At, "@ address");
        r.addr = static_cast<uint32_t>(
            expect(Tok::IntLit, "hwreg address").intVal);
        expect(Tok::Semi, ";");
        return r;
    }

    GlobalDeclAst
    parseGlobalRest(TypeSyntax type, std::string name, bool norace,
                    bool inRom, SourceLoc loc)
    {
        GlobalDeclAst g;
        g.type = type;
        g.name = std::move(name);
        g.norace = norace;
        g.inRom = inRom;
        g.loc = loc;
        if (accept(Tok::LBracket)) {
            g.isArray = true;
            g.arrayCount = static_cast<uint32_t>(
                expect(Tok::IntLit, "array size").intVal);
            expect(Tok::RBracket, "]");
        }
        if (accept(Tok::Assign)) {
            g.hasInit = true;
            g.init = parseInitializer();
        }
        expect(Tok::Semi, "; after global");
        return g;
    }

    Initializer
    parseInitializer()
    {
        Initializer init;
        if (at(Tok::StrLit)) {
            init.isString = true;
            init.stringValue = advance().text;
            return init;
        }
        if (accept(Tok::LBrace)) {
            init.isList = true;
            if (!at(Tok::RBrace)) {
                do {
                    init.list.push_back(parseInitializer());
                } while (accept(Tok::Comma));
            }
            expect(Tok::RBrace, "}");
            return init;
        }
        init.value = parseExpr();
        return init;
    }

    FuncDeclAst
    parseFuncRest(TypeSyntax ret, std::string name, bool isTask,
                  std::string irqName, bool inlineHint, bool noInline,
                  bool isInit)
    {
        FuncDeclAst f;
        f.retType = ret;
        f.name = std::move(name);
        f.isTask = isTask;
        f.interruptName = std::move(irqName);
        f.inlineHint = inlineHint;
        f.noInline = noInline;
        f.isInit = isInit;
        f.loc = cur().loc;
        expect(Tok::LParen, "(");
        if (!at(Tok::RParen)) {
            do {
                if (accept(Tok::KwVoid) && at(Tok::RParen))
                    break;
                ParamAst p;
                p.type = parseType();
                p.name = expect(Tok::Ident, "parameter name").text;
                f.params.push_back(std::move(p));
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, ")");
        f.body = parseBlock();
        return f;
    }

    //--- statements ----------------------------------------------------

    StmtPtr
    makeStmt(StmtKind k)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = k;
        s->loc = cur().loc;
        return s;
    }

    StmtPtr
    parseBlock()
    {
        auto s = makeStmt(StmtKind::Block);
        expect(Tok::LBrace, "{");
        while (!at(Tok::RBrace) && !at(Tok::Eof)) {
            size_t before = pos_;
            s->body.push_back(parseStmt());
            if (pos_ == before)
                advance();
        }
        expect(Tok::RBrace, "}");
        return s;
    }

    StmtPtr
    parseStmt()
    {
        switch (cur().kind) {
          case Tok::LBrace:
            return parseBlock();
          case Tok::KwIf: {
            auto s = makeStmt(StmtKind::If);
            advance();
            expect(Tok::LParen, "(");
            s->cond = parseExpr();
            expect(Tok::RParen, ")");
            s->thenS = parseStmt();
            if (accept(Tok::KwElse))
                s->elseS = parseStmt();
            return s;
          }
          case Tok::KwWhile: {
            auto s = makeStmt(StmtKind::While);
            advance();
            expect(Tok::LParen, "(");
            s->cond = parseExpr();
            expect(Tok::RParen, ")");
            s->thenS = parseStmt();
            return s;
          }
          case Tok::KwFor: {
            auto s = makeStmt(StmtKind::For);
            advance();
            expect(Tok::LParen, "(");
            if (!at(Tok::Semi))
                s->forInit = parseSimpleStmt();
            else
                advance();
            if (!at(Tok::Semi))
                s->cond = parseExpr();
            expect(Tok::Semi, "; in for");
            if (!at(Tok::RParen)) {
                auto step = makeStmt(StmtKind::ExprStmt);
                step->expr = parseExpr();
                s->forStep = std::move(step);
            }
            expect(Tok::RParen, ")");
            s->thenS = parseStmt();
            return s;
          }
          case Tok::KwReturn: {
            auto s = makeStmt(StmtKind::Return);
            advance();
            if (!at(Tok::Semi))
                s->expr = parseExpr();
            expect(Tok::Semi, "; after return");
            return s;
          }
          case Tok::KwBreak: {
            auto s = makeStmt(StmtKind::Break);
            advance();
            expect(Tok::Semi, "; after break");
            return s;
          }
          case Tok::KwContinue: {
            auto s = makeStmt(StmtKind::Continue);
            advance();
            expect(Tok::Semi, "; after continue");
            return s;
          }
          case Tok::KwAtomic: {
            auto s = makeStmt(StmtKind::Atomic);
            advance();
            s->body.push_back(parseBlock());
            return s;
          }
          case Tok::KwPost: {
            auto s = makeStmt(StmtKind::Post);
            advance();
            s->postTarget = expect(Tok::Ident, "task name").text;
            if (accept(Tok::LParen))
                expect(Tok::RParen, ")");
            expect(Tok::Semi, "; after post");
            return s;
          }
          case Tok::Semi:
            advance();
            return makeStmt(StmtKind::Empty);
          default:
            return parseSimpleStmtSemi();
        }
    }

    /** var decl or expression statement, consuming the semicolon. */
    StmtPtr
    parseSimpleStmtSemi()
    {
        auto s = parseSimpleStmt();
        return s;
    }

    StmtPtr
    parseSimpleStmt()
    {
        if (atTypeStart()) {
            auto s = makeStmt(StmtKind::VarDecl);
            s->declType = parseType();
            s->declName = expect(Tok::Ident, "variable name").text;
            if (accept(Tok::LBracket)) {
                s->hasArray = true;
                s->arrayCount = static_cast<uint32_t>(
                    expect(Tok::IntLit, "array size").intVal);
                expect(Tok::RBracket, "]");
            }
            if (accept(Tok::Assign)) {
                s->hasInit = true;
                s->init = parseInitializer();
            }
            expect(Tok::Semi, "; after declaration");
            return s;
        }
        auto s = makeStmt(StmtKind::ExprStmt);
        s->expr = parseExpr();
        expect(Tok::Semi, "; after expression");
        return s;
    }

    //--- expressions -----------------------------------------------

    ExprPtr
    makeExpr(ExprKind k, SourceLoc loc)
    {
        auto e = std::make_unique<Expr>();
        e->kind = k;
        e->loc = loc;
        return e;
    }

    ExprPtr parseExpr() { return parseAssign(); }

    ExprPtr
    parseAssign()
    {
        ExprPtr lhs = parseCond();
        struct CompoundTok { Tok t; BinaryOp op; };
        static const CompoundTok compounds[] = {
            {Tok::PlusEq, BinaryOp::Add}, {Tok::MinusEq, BinaryOp::Sub},
            {Tok::StarEq, BinaryOp::Mul}, {Tok::SlashEq, BinaryOp::Div},
            {Tok::PercentEq, BinaryOp::Rem}, {Tok::AmpEq, BinaryOp::And},
            {Tok::PipeEq, BinaryOp::Or}, {Tok::CaretEq, BinaryOp::Xor},
            {Tok::ShlEq, BinaryOp::Shl}, {Tok::ShrEq, BinaryOp::Shr},
        };
        if (at(Tok::Assign)) {
            SourceLoc loc = advance().loc;
            auto e = makeExpr(ExprKind::Assign, loc);
            e->a = std::move(lhs);
            e->b = parseAssign();
            return e;
        }
        for (const auto &c : compounds) {
            if (at(c.t)) {
                SourceLoc loc = advance().loc;
                auto e = makeExpr(ExprKind::Assign, loc);
                e->isCompound = true;
                e->assignOp = c.op;
                e->a = std::move(lhs);
                e->b = parseAssign();
                return e;
            }
        }
        return lhs;
    }

    ExprPtr
    parseCond()
    {
        ExprPtr c = parseBinary(0);
        if (at(Tok::Question)) {
            SourceLoc loc = advance().loc;
            auto e = makeExpr(ExprKind::Cond, loc);
            e->a = std::move(c);
            e->b = parseExpr();
            expect(Tok::Colon, ": in conditional");
            e->c = parseCond();
            return e;
        }
        return c;
    }

    struct BinLevel { Tok t; BinaryOp op; };

    /** Precedence-climbing over the C binary operator table. */
    ExprPtr
    parseBinary(int level)
    {
        static const std::vector<std::vector<BinLevel>> table = {
            {{Tok::PipePipe, BinaryOp::LOr}},
            {{Tok::AmpAmp, BinaryOp::LAnd}},
            {{Tok::Pipe, BinaryOp::Or}},
            {{Tok::Caret, BinaryOp::Xor}},
            {{Tok::Amp, BinaryOp::And}},
            {{Tok::EqEq, BinaryOp::Eq}, {Tok::NotEq, BinaryOp::Ne}},
            {{Tok::Lt, BinaryOp::Lt}, {Tok::Le, BinaryOp::Le},
             {Tok::Gt, BinaryOp::Gt}, {Tok::Ge, BinaryOp::Ge}},
            {{Tok::Shl, BinaryOp::Shl}, {Tok::Shr, BinaryOp::Shr}},
            {{Tok::Plus, BinaryOp::Add}, {Tok::Minus, BinaryOp::Sub}},
            {{Tok::Star, BinaryOp::Mul}, {Tok::Slash, BinaryOp::Div},
             {Tok::Percent, BinaryOp::Rem}},
        };
        if (level >= static_cast<int>(table.size()))
            return parseUnary();
        ExprPtr lhs = parseBinary(level + 1);
        for (;;) {
            bool matched = false;
            for (const auto &cand : table[level]) {
                if (at(cand.t)) {
                    SourceLoc loc = advance().loc;
                    auto e = makeExpr(ExprKind::Binary, loc);
                    e->bop = cand.op;
                    e->a = std::move(lhs);
                    e->b = parseBinary(level + 1);
                    lhs = std::move(e);
                    matched = true;
                    break;
                }
            }
            if (!matched)
                return lhs;
        }
    }

    bool
    atCastStart() const
    {
        if (!at(Tok::LParen))
            return false;
        switch (peek().kind) {
          case Tok::KwVoid: case Tok::KwBool: case Tok::KwI8: case Tok::KwU8:
          case Tok::KwI16: case Tok::KwU16: case Tok::KwI32: case Tok::KwU32:
          case Tok::KwFnPtr: case Tok::KwStruct:
            return true;
          default:
            return false;
        }
    }

    ExprPtr
    parseUnary()
    {
        SourceLoc loc = cur().loc;
        if (accept(Tok::Bang)) {
            auto e = makeExpr(ExprKind::Unary, loc);
            e->uop = UnaryOp::LNot;
            e->a = parseUnary();
            return e;
        }
        if (accept(Tok::Tilde)) {
            auto e = makeExpr(ExprKind::Unary, loc);
            e->uop = UnaryOp::BNot;
            e->a = parseUnary();
            return e;
        }
        if (accept(Tok::Minus)) {
            auto e = makeExpr(ExprKind::Unary, loc);
            e->uop = UnaryOp::Neg;
            e->a = parseUnary();
            return e;
        }
        if (accept(Tok::Star)) {
            auto e = makeExpr(ExprKind::Unary, loc);
            e->uop = UnaryOp::Deref;
            e->a = parseUnary();
            return e;
        }
        if (accept(Tok::Amp)) {
            auto e = makeExpr(ExprKind::Unary, loc);
            e->uop = UnaryOp::AddrOf;
            e->a = parseUnary();
            return e;
        }
        if (atCastStart()) {
            advance();  // (
            TypeSyntax t = parseType();
            expect(Tok::RParen, ") after cast type");
            auto e = makeExpr(ExprKind::Cast, loc);
            e->castType = t;
            e->a = parseUnary();
            return e;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        for (;;) {
            SourceLoc loc = cur().loc;
            if (accept(Tok::LBracket)) {
                auto idx = makeExpr(ExprKind::Index, loc);
                idx->a = std::move(e);
                idx->b = parseExpr();
                expect(Tok::RBracket, "]");
                e = std::move(idx);
            } else if (accept(Tok::Dot)) {
                auto m = makeExpr(ExprKind::Member, loc);
                m->a = std::move(e);
                m->name = expect(Tok::Ident, "field name").text;
                e = std::move(m);
            } else if (accept(Tok::Arrow)) {
                auto m = makeExpr(ExprKind::Member, loc);
                m->isArrow = true;
                m->a = std::move(e);
                m->name = expect(Tok::Ident, "field name").text;
                e = std::move(m);
            } else if (accept(Tok::LParen)) {
                auto call = makeExpr(ExprKind::Call, loc);
                call->a = std::move(e);
                if (!at(Tok::RParen)) {
                    do {
                        call->args.push_back(parseExpr());
                    } while (accept(Tok::Comma));
                }
                expect(Tok::RParen, ") after arguments");
                e = std::move(call);
            } else if (accept(Tok::PlusPlus)) {
                auto inc = makeExpr(ExprKind::IncDec, loc);
                inc->isInc = true;
                inc->a = std::move(e);
                e = std::move(inc);
            } else if (accept(Tok::MinusMinus)) {
                auto dec = makeExpr(ExprKind::IncDec, loc);
                dec->isInc = false;
                dec->a = std::move(e);
                e = std::move(dec);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        SourceLoc loc = cur().loc;
        switch (cur().kind) {
          case Tok::IntLit: {
            auto e = makeExpr(ExprKind::IntLit, loc);
            e->intVal = advance().intVal;
            return e;
          }
          case Tok::CharLit: {
            auto e = makeExpr(ExprKind::IntLit, loc);
            e->intVal = advance().intVal;
            return e;
          }
          case Tok::StrLit: {
            auto e = makeExpr(ExprKind::StrLit, loc);
            e->name = advance().text;
            return e;
          }
          case Tok::KwTrue: {
            advance();
            auto e = makeExpr(ExprKind::BoolLit, loc);
            e->intVal = 1;
            return e;
          }
          case Tok::KwFalse: {
            advance();
            auto e = makeExpr(ExprKind::BoolLit, loc);
            e->intVal = 0;
            return e;
          }
          case Tok::KwNull: {
            advance();
            return makeExpr(ExprKind::NullLit, loc);
          }
          case Tok::KwSizeof: {
            advance();
            expect(Tok::LParen, "(");
            auto e = makeExpr(ExprKind::SizeofTy, loc);
            e->castType = parseType();
            expect(Tok::RParen, ")");
            return e;
          }
          case Tok::Ident: {
            auto e = makeExpr(ExprKind::Var, loc);
            e->name = advance().text;
            return e;
          }
          case Tok::LParen: {
            advance();
            ExprPtr e = parseExpr();
            expect(Tok::RParen, ")");
            return e;
          }
          default:
            diags_.error(loc, "expected an expression");
            advance();
            return makeExpr(ExprKind::IntLit, loc);
        }
    }

    std::vector<Token> toks_;
    DiagnosticEngine &diags_;
    size_t pos_ = 0;
};

} // namespace

UnitAst
parseUnit(std::vector<Token> tokens, DiagnosticEngine &diags)
{
    if (tokens.empty() || tokens.back().kind != Tok::Eof) {
        Token eof;
        eof.kind = Tok::Eof;
        tokens.push_back(eof);
    }
    return Parser(std::move(tokens), diags).run();
}

} // namespace stos::frontend
