/**
 * @file
 * Interrupt vector naming shared by the frontend (interrupt(NAME)
 * attributes), the device simulator, and the TinyOS-style application
 * library. Vector numbers index the MCU's interrupt table.
 */
#ifndef STOS_FRONTEND_VECTORS_H
#define STOS_FRONTEND_VECTORS_H

#include <string>

namespace stos::frontend {

enum IrqVector : int {
    kVecTimer0 = 0,
    kVecTimer1 = 1,
    kVecAdc = 2,
    kVecRadioRx = 3,
    kVecRadioTx = 4,
    kVecUartRx = 5,
    kVecUartTx = 6,
    kVecExt0 = 7,
    kVecClock = 8,
    kNumVectors = 9,
};

/** Map a vector name to its number; -1 if unknown. */
inline int
vectorByName(const std::string &name)
{
    if (name == "TIMER0") return kVecTimer0;
    if (name == "TIMER1") return kVecTimer1;
    if (name == "ADC") return kVecAdc;
    if (name == "RADIO_RX") return kVecRadioRx;
    if (name == "RADIO_TX") return kVecRadioTx;
    if (name == "UART_RX") return kVecUartRx;
    if (name == "UART_TX") return kVecUartTx;
    if (name == "EXT0") return kVecExt0;
    if (name == "CLOCK") return kVecClock;
    return -1;
}

} // namespace stos::frontend

#endif
