/**
 * @file
 * TinyC abstract syntax tree. The parser builds this; the lowering
 * stage type-checks it and emits TinyCIL.
 */
#ifndef STOS_FRONTEND_AST_H
#define STOS_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/source_loc.h"

namespace stos::frontend {

//---------------------------------------------------------------------
// Type syntax
//---------------------------------------------------------------------

enum class BaseTy : uint8_t {
    Void, Bool, I8, U8, I16, U16, I32, U32, FnPtr, Struct,
};

/** Syntactic type: base (*)* with optional array suffix at decls. */
struct TypeSyntax {
    BaseTy base = BaseTy::Void;
    std::string structName;  ///< for BaseTy::Struct
    uint32_t ptrDepth = 0;
    SourceLoc loc;
};

//---------------------------------------------------------------------
// Expressions
//---------------------------------------------------------------------

enum class ExprKind : uint8_t {
    IntLit, BoolLit, NullLit, StrLit,
    Var,         ///< identifier (variable, hwreg, or function name)
    Unary,       ///< op: ! ~ - * &
    Binary,      ///< arithmetic / logical / comparison
    Assign,      ///< lhs = rhs (op == '=' or compound)
    Cond,        ///< a ? b : c
    Index,       ///< a[i]
    Member,      ///< a.f (isArrow=false) or a->f (isArrow=true)
    Call,        ///< f(args) or indirect fnptr call p()
    Cast,        ///< (T) e
    SizeofTy,    ///< sizeof(T)
    IncDec,      ///< a++ / a-- (postfix)
};

enum class UnaryOp : uint8_t { LNot, BNot, Neg, Deref, AddrOf };

enum class BinaryOp : uint8_t {
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    LAnd, LOr,
    Eq, Ne, Lt, Le, Gt, Ge,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    ExprKind kind;
    SourceLoc loc;

    uint64_t intVal = 0;       ///< IntLit / BoolLit
    std::string name;          ///< Var / Member field / StrLit text
    UnaryOp uop = UnaryOp::Neg;
    BinaryOp bop = BinaryOp::Add;
    bool isArrow = false;      ///< Member
    bool isInc = false;        ///< IncDec
    BinaryOp assignOp = BinaryOp::Add;  ///< compound assign operator
    bool isCompound = false;   ///< Assign: compound (+=, ...)?
    TypeSyntax castType;       ///< Cast / SizeofTy

    ExprPtr a, b, c;           ///< operand slots
    std::vector<ExprPtr> args; ///< Call arguments
};

//---------------------------------------------------------------------
// Statements
//---------------------------------------------------------------------

enum class StmtKind : uint8_t {
    Block, If, While, For, Return, Break, Continue,
    ExprStmt, VarDecl, Atomic, Post, Empty,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** Static initializer: single constant expr or brace list. */
struct Initializer {
    ExprPtr value;                         ///< scalar init
    std::vector<Initializer> list;         ///< brace list
    std::string stringValue;               ///< string init for u8 arrays
    bool isList = false;
    bool isString = false;
};

struct Stmt {
    StmtKind kind;
    SourceLoc loc;

    std::vector<StmtPtr> body;  ///< Block / Atomic contents
    ExprPtr cond;               ///< If / While / For condition
    StmtPtr thenS, elseS;       ///< If branches; While/For body in thenS
    StmtPtr forInit, forStep;   ///< For clauses
    ExprPtr expr;               ///< ExprStmt / Return value

    // VarDecl
    TypeSyntax declType;
    std::string declName;
    bool hasArray = false;
    uint32_t arrayCount = 0;
    Initializer init;
    bool hasInit = false;

    std::string postTarget;     ///< Post
};

//---------------------------------------------------------------------
// Top-level declarations
//---------------------------------------------------------------------

struct StructDeclAst {
    std::string name;
    struct Field {
        TypeSyntax type;
        std::string name;
        bool isArray = false;
        uint32_t arrayCount = 0;
    };
    std::vector<Field> fields;
    SourceLoc loc;
};

struct HwRegDeclAst {
    std::string name;
    BaseTy type = BaseTy::U8;
    uint32_t addr = 0;
    SourceLoc loc;
};

struct GlobalDeclAst {
    TypeSyntax type;
    std::string name;
    bool isArray = false;
    uint32_t arrayCount = 0;
    bool norace = false;
    bool inRom = false;
    bool hasInit = false;
    Initializer init;
    SourceLoc loc;
};

struct ParamAst {
    TypeSyntax type;
    std::string name;
};

struct FuncDeclAst {
    TypeSyntax retType;
    std::string name;
    std::vector<ParamAst> params;
    StmtPtr body;
    bool isTask = false;
    std::string interruptName;  ///< empty if not a handler
    bool inlineHint = false;
    bool noInline = false;
    bool isInit = false;
    SourceLoc loc;
};

/** One parsed translation unit (the whole program may span several). */
struct UnitAst {
    std::vector<StructDeclAst> structs;
    std::vector<HwRegDeclAst> hwregs;
    std::vector<GlobalDeclAst> globals;
    std::vector<FuncDeclAst> funcs;
};

} // namespace stos::frontend

#endif
