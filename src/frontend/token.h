/**
 * @file
 * TinyC token definitions. TinyC is our stand-in for the C code the
 * nesC compiler emits from TinyOS components: a C subset extended with
 * the TinyOS concurrency model (`task`, `interrupt`, `atomic`,
 * `norace`, `post`) and memory-mapped register declarations (`hwreg`).
 */
#ifndef STOS_FRONTEND_TOKEN_H
#define STOS_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

#include "support/source_loc.h"

namespace stos::frontend {

enum class Tok : uint8_t {
    Eof, Ident, IntLit, StrLit, CharLit,
    // keywords
    KwVoid, KwBool, KwI8, KwU8, KwI16, KwU16, KwI32, KwU32, KwFnPtr,
    KwStruct, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwBreak, KwContinue,
    KwAtomic, KwTask, KwInterrupt, KwNorace, KwHwreg, KwRom, KwSizeof,
    KwPost, KwTrue, KwFalse, KwNull, KwInline, KwNoinline, KwInit,
    // punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma, Dot, Arrow, At,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr,
    Lt, Gt, Le, Ge, EqEq, NotEq,
    AmpAmp, PipePipe,
    Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
    AmpEq, PipeEq, CaretEq, ShlEq, ShrEq,
    PlusPlus, MinusMinus,
    Question, Colon,
};

struct Token {
    Tok kind = Tok::Eof;
    std::string text;     ///< identifier / string payload
    uint64_t intVal = 0;  ///< IntLit / CharLit payload
    SourceLoc loc;
};

const char *tokName(Tok t);

} // namespace stos::frontend

#endif
