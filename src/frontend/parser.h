/**
 * @file
 * TinyC recursive-descent parser.
 */
#ifndef STOS_FRONTEND_PARSER_H
#define STOS_FRONTEND_PARSER_H

#include <vector>

#include "support/diagnostics.h"
#include "frontend/ast.h"
#include "frontend/token.h"

namespace stos::frontend {

/**
 * Parse one token stream into a unit. Errors are reported through the
 * diagnostic engine; the parser recovers at statement/declaration
 * boundaries so multiple errors surface in one run.
 */
UnitAst parseUnit(std::vector<Token> tokens, DiagnosticEngine &diags);

} // namespace stos::frontend

#endif
