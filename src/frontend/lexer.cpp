/**
 * @file
 * TinyC lexer implementation.
 */
#include "frontend/lexer.h"

#include <cctype>
#include <unordered_map>

#include "support/util.h"

namespace stos::frontend {

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::Eof: return "end of file";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::StrLit: return "string literal";
      case Tok::CharLit: return "char literal";
      case Tok::LParen: return "(";
      case Tok::RParen: return ")";
      case Tok::LBrace: return "{";
      case Tok::RBrace: return "}";
      case Tok::LBracket: return "[";
      case Tok::RBracket: return "]";
      case Tok::Semi: return ";";
      case Tok::Comma: return ",";
      case Tok::Dot: return ".";
      case Tok::Arrow: return "->";
      case Tok::At: return "@";
      case Tok::Assign: return "=";
      case Tok::Colon: return ":";
      default: return "token";
    }
}

namespace {

const std::unordered_map<std::string, Tok> &
keywordTable()
{
    static const std::unordered_map<std::string, Tok> kw = {
        {"void", Tok::KwVoid}, {"bool", Tok::KwBool},
        {"i8", Tok::KwI8}, {"u8", Tok::KwU8},
        {"i16", Tok::KwI16}, {"u16", Tok::KwU16},
        {"i32", Tok::KwI32}, {"u32", Tok::KwU32},
        {"fnptr", Tok::KwFnPtr}, {"struct", Tok::KwStruct},
        {"if", Tok::KwIf}, {"else", Tok::KwElse},
        {"while", Tok::KwWhile}, {"for", Tok::KwFor},
        {"return", Tok::KwReturn}, {"break", Tok::KwBreak},
        {"continue", Tok::KwContinue}, {"atomic", Tok::KwAtomic},
        {"task", Tok::KwTask}, {"interrupt", Tok::KwInterrupt},
        {"norace", Tok::KwNorace}, {"hwreg", Tok::KwHwreg},
        {"rom", Tok::KwRom}, {"sizeof", Tok::KwSizeof},
        {"post", Tok::KwPost}, {"true", Tok::KwTrue},
        {"false", Tok::KwFalse}, {"null", Tok::KwNull},
        {"inline", Tok::KwInline}, {"noinline", Tok::KwNoinline},
        {"init", Tok::KwInit},
    };
    return kw;
}

class Lexer {
  public:
    Lexer(const std::string &text, uint32_t fileId, DiagnosticEngine &diags)
        : text_(text), file_(fileId), diags_(diags) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> out;
        for (;;) {
            skipWhitespaceAndComments();
            Token t = next();
            out.push_back(t);
            if (t.kind == Tok::Eof)
                break;
        }
        return out;
    }

  private:
    char peek(size_t off = 0) const
    {
        return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
    }

    char
    advance()
    {
        char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    SourceLoc here() const { return {file_, line_, col_}; }

    void
    skipWhitespaceAndComments()
    {
        for (;;) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (peek() && peek() != '\n')
                    advance();
            } else if (c == '/' && peek(1) == '*') {
                SourceLoc start = here();
                advance();
                advance();
                while (peek() && !(peek() == '*' && peek(1) == '/'))
                    advance();
                if (!peek()) {
                    diags_.error(start, "unterminated block comment");
                    return;
                }
                advance();
                advance();
            } else {
                return;
            }
        }
    }

    Token
    make(Tok k)
    {
        Token t;
        t.kind = k;
        t.loc = startLoc_;
        return t;
    }

    Token
    next()
    {
        startLoc_ = here();
        char c = peek();
        if (c == '\0')
            return make(Tok::Eof);
        if (isalpha(static_cast<unsigned char>(c)) || c == '_')
            return identifier();
        if (isdigit(static_cast<unsigned char>(c)))
            return number();
        if (c == '"')
            return stringLit();
        if (c == '\'')
            return charLit();
        return punct();
    }

    Token
    identifier()
    {
        std::string s;
        while (isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
            s += advance();
        auto it = keywordTable().find(s);
        Token t = make(it != keywordTable().end() ? it->second : Tok::Ident);
        t.text = std::move(s);
        return t;
    }

    Token
    number()
    {
        uint64_t v = 0;
        if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
            advance();
            advance();
            while (isxdigit(static_cast<unsigned char>(peek()))) {
                char c = advance();
                v = v * 16 +
                    (isdigit(static_cast<unsigned char>(c))
                         ? c - '0'
                         : (tolower(c) - 'a' + 10));
            }
        } else {
            while (isdigit(static_cast<unsigned char>(peek())))
                v = v * 10 + (advance() - '0');
        }
        Token t = make(Tok::IntLit);
        t.intVal = v;
        return t;
    }

    char
    unescape(char c)
    {
        switch (c) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
          default: return c;
        }
    }

    Token
    stringLit()
    {
        advance();  // opening quote
        std::string s;
        while (peek() && peek() != '"') {
            char c = advance();
            if (c == '\\' && peek())
                c = unescape(advance());
            s += c;
        }
        if (!peek()) {
            diags_.error(startLoc_, "unterminated string literal");
        } else {
            advance();  // closing quote
        }
        Token t = make(Tok::StrLit);
        t.text = std::move(s);
        return t;
    }

    Token
    charLit()
    {
        advance();  // opening quote
        char c = advance();
        if (c == '\\')
            c = unescape(advance());
        if (peek() == '\'')
            advance();
        else
            diags_.error(startLoc_, "unterminated char literal");
        Token t = make(Tok::CharLit);
        t.intVal = static_cast<uint8_t>(c);
        return t;
    }

    Token
    punct()
    {
        char c = advance();
        auto two = [&](char n, Tok withN, Tok without) {
            if (peek() == n) {
                advance();
                return make(withN);
            }
            return make(without);
        };
        switch (c) {
          case '(': return make(Tok::LParen);
          case ')': return make(Tok::RParen);
          case '{': return make(Tok::LBrace);
          case '}': return make(Tok::RBrace);
          case '[': return make(Tok::LBracket);
          case ']': return make(Tok::RBracket);
          case ';': return make(Tok::Semi);
          case ',': return make(Tok::Comma);
          case '.': return make(Tok::Dot);
          case '@': return make(Tok::At);
          case '~': return make(Tok::Tilde);
          case '?': return make(Tok::Question);
          case ':': return make(Tok::Colon);
          case '+':
            if (peek() == '+') { advance(); return make(Tok::PlusPlus); }
            return two('=', Tok::PlusEq, Tok::Plus);
          case '-':
            if (peek() == '-') { advance(); return make(Tok::MinusMinus); }
            if (peek() == '>') { advance(); return make(Tok::Arrow); }
            return two('=', Tok::MinusEq, Tok::Minus);
          case '*': return two('=', Tok::StarEq, Tok::Star);
          case '/': return two('=', Tok::SlashEq, Tok::Slash);
          case '%': return two('=', Tok::PercentEq, Tok::Percent);
          case '^': return two('=', Tok::CaretEq, Tok::Caret);
          case '!': return two('=', Tok::NotEq, Tok::Bang);
          case '=': return two('=', Tok::EqEq, Tok::Assign);
          case '&':
            if (peek() == '&') { advance(); return make(Tok::AmpAmp); }
            return two('=', Tok::AmpEq, Tok::Amp);
          case '|':
            if (peek() == '|') { advance(); return make(Tok::PipePipe); }
            return two('=', Tok::PipeEq, Tok::Pipe);
          case '<':
            if (peek() == '<') {
                advance();
                return two('=', Tok::ShlEq, Tok::Shl);
            }
            return two('=', Tok::Le, Tok::Lt);
          case '>':
            if (peek() == '>') {
                advance();
                return two('=', Tok::ShrEq, Tok::Shr);
            }
            return two('=', Tok::Ge, Tok::Gt);
          default:
            diags_.error(startLoc_, strfmt("unexpected character '%c'", c));
            return next();
        }
    }

    const std::string &text_;
    uint32_t file_;
    DiagnosticEngine &diags_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t col_ = 1;
    SourceLoc startLoc_;
};

} // namespace

std::vector<Token>
lex(const std::string &text, uint32_t fileId, DiagnosticEngine &diags)
{
    return Lexer(text, fileId, diags).run();
}

} // namespace stos::frontend
