/**
 * @file
 * Backward vreg liveness, per function. Drives dead-code elimination
 * and copy propagation in the cXprop stage.
 */
#ifndef STOS_ANALYSIS_LIVENESS_H
#define STOS_ANALYSIS_LIVENESS_H

#include <functional>
#include <vector>

#include "ir/module.h"

namespace stos::analysis {

/**
 * Liveness facts for one function: per-block live-in/live-out bit
 * vectors over vregs, plus an instruction-level query that replays a
 * block backwards.
 */
class Liveness {
  public:
    Liveness(const ir::Module &m, const ir::Function &f);

    const std::vector<bool> &liveIn(uint32_t block) const
    {
        return liveIn_.at(block);
    }
    const std::vector<bool> &liveOut(uint32_t block) const
    {
        return liveOut_.at(block);
    }

    /**
     * Vregs live immediately *after* each instruction of a block.
     * result[i] is the live set after instrs[i].
     */
    std::vector<std::vector<bool>> liveAfter(uint32_t block) const;

  private:
    const ir::Function &func_;
    std::vector<std::vector<bool>> liveIn_;
    std::vector<std::vector<bool>> liveOut_;
};

/** Uses of vregs in an instruction (operand indices that are vregs). */
void forEachUse(const ir::Instr &in,
                const std::function<void(uint32_t)> &fn);

} // namespace stos::analysis

#endif
