/**
 * @file
 * Call graph construction.
 */
#include "analysis/callgraph.h"

#include <algorithm>
#include <deque>

namespace stos::analysis {

using namespace stos::ir;

CallGraph::CallGraph(const Module &m) : mod_(m)
{
    size_t n = m.funcs().size();
    callees_.resize(n);
    callers_.resize(n);
    addressTakenMask_.assign(n, false);
    recursive_.assign(n, false);

    for (const auto &f : m.funcs()) {
        if (f.dead)
            continue;
        bool hasIndirect = false;
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.op == Opcode::Call)
                    callees_[f.id].push_back(in.callee);
                if (in.op == Opcode::CallInd)
                    hasIndirect = true;
                for (const auto &a : in.args) {
                    if (a.isFunc() && !addressTakenMask_[a.index]) {
                        addressTakenMask_[a.index] = true;
                        addressTaken_.push_back(a.index);
                    }
                }
            }
        }
        if (hasIndirect) {
            // Resolved after the address-taken set is complete (below).
            indirectCallers_.push_back(f.id);
        }
    }
    // Function operands in global initializers would also count; TinyC
    // forbids fnptr static initializers, so operands cover everything.
    for (uint32_t caller : indirectCallers_) {
        for (uint32_t target : addressTaken_)
            callees_[caller].push_back(target);
    }
    for (uint32_t f = 0; f < n; ++f) {
        std::sort(callees_[f].begin(), callees_[f].end());
        callees_[f].erase(
            std::unique(callees_[f].begin(), callees_[f].end()),
            callees_[f].end());
        for (uint32_t c : callees_[f])
            callers_[c].push_back(f);
    }
    for (uint32_t f = 0; f < n; ++f)
        recursive_[f] = reaches(f, f);
}

bool
CallGraph::reaches(uint32_t fn, uint32_t target) const
{
    std::vector<bool> seen(callees_.size(), false);
    std::deque<uint32_t> work{fn};
    while (!work.empty()) {
        uint32_t cur = work.front();
        work.pop_front();
        for (uint32_t c : callees_[cur]) {
            if (c == target)
                return true;
            if (!seen[c]) {
                seen[c] = true;
                work.push_back(c);
            }
        }
    }
    return false;
}

std::vector<bool>
CallGraph::reachableFrom(const std::vector<uint32_t> &roots) const
{
    std::vector<bool> seen(callees_.size(), false);
    std::deque<uint32_t> work;
    for (uint32_t r : roots) {
        if (r < seen.size() && !seen[r]) {
            seen[r] = true;
            work.push_back(r);
        }
    }
    while (!work.empty()) {
        uint32_t cur = work.front();
        work.pop_front();
        for (uint32_t c : callees_[cur]) {
            if (!seen[c]) {
                seen[c] = true;
                work.push_back(c);
            }
        }
    }
    return seen;
}

} // namespace stos::analysis
