/**
 * @file
 * Race detector implementation.
 */
#include "analysis/concurrency.h"

#include <map>

namespace stos::analysis {

using namespace stos::ir;

ConcurrencyAnalysis::ConcurrencyAnalysis(const Module &m, const CallGraph &cg,
                                         const PointsTo &pts,
                                         ConcurrencyOptions opts)
    : mod_(m), cg_(cg), pts_(pts), opts_(opts)
{
    funcCtx_.assign(m.funcs().size(), {});
    atomicNeedsSave_.assign(m.funcs().size(), true);
    calledInAtomic_.assign(m.funcs().size(), false);
    classifyFunctions();
    computeAtomicDepths();
    collectAccesses();
}

void
ConcurrencyAnalysis::classifyFunctions()
{
    // Task-context roots: main, init functions, tasks (posted and run
    // from the scheduler), and every address-taken function (the task
    // queue dispatches through fnptrs).
    std::vector<uint32_t> taskRoots;
    std::vector<std::pair<uint32_t, int>> irqRoots;
    for (const auto &f : mod_.funcs()) {
        if (f.dead)
            continue;
        if (f.attrs.interruptVector >= 0) {
            irqRoots.push_back({f.id, f.attrs.interruptVector});
            continue;
        }
        if (f.name == "main" || f.attrs.isInit || f.attrs.isTask ||
            cg_.isAddressTaken(f.id)) {
            taskRoots.push_back(f.id);
        }
    }
    auto taskReach = cg_.reachableFrom(taskRoots);
    for (uint32_t i = 0; i < taskReach.size(); ++i) {
        if (taskReach[i])
            funcCtx_[i].task = true;
    }
    for (auto [fn, vec] : irqRoots) {
        auto reach = cg_.reachableFrom({fn});
        for (uint32_t i = 0; i < reach.size(); ++i) {
            if (reach[i])
                funcCtx_[i].vectors |= (1u << vec);
        }
    }
}

void
ConcurrencyAnalysis::computeAtomicDepths()
{
    // A function's AtomicBegin may run with interrupts already off if
    // the function can execute inside a handler (IRQs off on entry) or
    // can be called from within another atomic section. Conversely, a
    // task-only function never called from an atomic region always
    // starts with IRQs on, so its (non-nested) atomics can skip saving
    // the IRQ bit. Nested atomics inside one function are handled
    // separately by the optimizer.
    std::vector<uint32_t> atomicCallers;
    for (const auto &f : mod_.funcs()) {
        if (f.dead)
            continue;
        int depth = 0;
        // Block-order scan is conservative for depth tracking across
        // blocks; lowering emits balanced regions within a function.
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.op == Opcode::AtomicBegin)
                    ++depth;
                else if (in.op == Opcode::AtomicEnd)
                    depth = depth > 0 ? depth - 1 : 0;
                else if (in.op == Opcode::Call && depth > 0)
                    calledInAtomic_[in.callee] = true;
            }
        }
    }
    // Propagate "may be entered with IRQs off" through the call graph.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &f : mod_.funcs()) {
            if (f.dead || !calledInAtomic_[f.id])
                continue;
            for (uint32_t c : cg_.callees(f.id)) {
                if (!calledInAtomic_[c]) {
                    calledInAtomic_[c] = true;
                    changed = true;
                }
            }
        }
    }
    for (const auto &f : mod_.funcs()) {
        if (f.dead)
            continue;
        bool inHandler = funcCtx_[f.id].vectors != 0;
        atomicNeedsSave_[f.id] = inHandler || calledInAtomic_[f.id];
    }
}

void
ConcurrencyAnalysis::collectAccesses()
{
    struct ObjInfo {
        ContextSet ctx;
        bool anyNonAtomic = false;
        bool written = false;
    };
    std::map<MemObj, ObjInfo> info;

    for (const auto &f : mod_.funcs()) {
        if (f.dead)
            continue;
        const ContextSet &fctx = funcCtx_[f.id];
        int depth = calledInAtomic_[f.id] ? 1 : 0;
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.op == Opcode::AtomicBegin) {
                    ++depth;
                    continue;
                }
                if (in.op == Opcode::AtomicEnd) {
                    depth = depth > 0 ? depth - 1 : 0;
                    continue;
                }
                bool isLoad = in.op == Opcode::Load;
                bool isStore = in.op == Opcode::Store;
                if (!isLoad && !isStore)
                    continue;
                if (!in.args[0].isVReg())
                    continue;
                PtsSet targets;
                if (opts_.followPointers) {
                    targets = pts_.accessTargets(f.id, in.args[0].index);
                } else if (auto exact =
                               pts_.resolveExact(f.id, in.args[0].index)) {
                    targets.insert(*exact);
                }
                ++accessesClassified_;
                for (const MemObj &obj : targets) {
                    if (obj.kind == MemObj::Universal) {
                        // Unknown pointer: taint all globals.
                        for (const auto &g : mod_.globals()) {
                            if (g.dead)
                                continue;
                            auto &oi = info[MemObj::global(g.id)];
                            oi.ctx.task |= fctx.task;
                            oi.ctx.vectors |= fctx.vectors;
                            oi.anyNonAtomic |= depth == 0;
                            oi.written |= isStore;
                        }
                        continue;
                    }
                    auto &oi = info[obj];
                    oi.ctx.task |= fctx.task;
                    oi.ctx.vectors |= fctx.vectors;
                    oi.anyNonAtomic |= depth == 0;
                    oi.written |= isStore;
                }
            }
        }
    }

    for (const auto &[obj, oi] : info) {
        // Racy: reachable from two distinct contexts, at least one
        // access outside an atomic section, and written at least once
        // (read-only shared data cannot race).
        if (!oi.ctx.multi() || !oi.anyNonAtomic || !oi.written)
            continue;
        if (obj.kind == MemObj::GlobalObj) {
            const Global &g = mod_.globalAt(obj.index);
            if (g.attrs.norace && !opts_.suppressNorace)
                continue;
            racyGlobals_.insert(obj.index);
        }
        racyObjects_.insert(obj);
    }
}

} // namespace stos::analysis
