/**
 * @file
 * Andersen-style points-to analysis implementation.
 */
#include "analysis/pointsto.h"

#include "support/util.h"

namespace stos::analysis {

using namespace stos::ir;

PointsTo::PointsTo(const Module &m) : mod_(m)
{
    build();
}

uint32_t
PointsTo::vregKey(uint32_t fn, uint32_t vreg) const
{
    return funcVregBase_.at(fn) + vreg;
}

uint32_t
PointsTo::memKey(const MemObj &obj) const
{
    switch (obj.kind) {
      case MemObj::Universal:
        return objKeyBase_.at(mod_.funcs().size());
      case MemObj::GlobalObj:
        return objKeyBase_.at(mod_.funcs().size()) + 1 + obj.index;
      case MemObj::LocalObj:
        return objKeyBase_.at(obj.func) + obj.index;
    }
    return 0;
}

bool
PointsTo::hasUniversal(const PtsSet &s)
{
    return s.count(MemObj::universal()) > 0;
}

namespace {

/** Does this type contain a pointer that memory analysis must track? */
bool
typeHoldsPointer(const TypeTable &tt, TypeId t)
{
    const Type &ty = tt.get(t);
    switch (ty.kind) {
      case TypeKind::Ptr:
        return true;
      case TypeKind::Array:
        return typeHoldsPointer(tt, ty.elem);
      default:
        return false;
    }
}

} // namespace

void
PointsTo::build()
{
    const auto &funcs = mod_.funcs();
    // Assign key ranges: vregs per function, then locals per function,
    // then [universal][globals].
    uint32_t next = 0;
    funcVregBase_.resize(funcs.size());
    objKeyBase_.resize(funcs.size() + 1);
    for (const auto &f : funcs) {
        funcVregBase_[f.id] = next;
        next += static_cast<uint32_t>(f.vregs.size());
    }
    for (const auto &f : funcs) {
        objKeyBase_[f.id] = next;
        next += static_cast<uint32_t>(f.locals.size());
    }
    objKeyBase_[funcs.size()] = next;
    next += 1 + static_cast<uint32_t>(mod_.globals().size());
    numKeys_ = next;

    pts_.assign(numKeys_, {});
    succ_.assign(numKeys_, {});

    struct DerefCons { uint32_t ptrKey; uint32_t valKey; bool isLoad; };
    std::vector<DerefCons> derefs;

    const TypeTable &tt = mod_.types();
    uint32_t universalKey = memKey(MemObj::universal());
    pts_[universalKey].insert(MemObj::universal());

    for (const auto &f : funcs) {
        if (f.dead)
            continue;
        auto vkey = [&](uint32_t v) { return vregKey(f.id, v); };
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                switch (in.op) {
                  case Opcode::AddrGlobal:
                    pts_[vkey(in.dst)].insert(
                        MemObj::global(in.args[0].index));
                    break;
                  case Opcode::AddrLocal:
                    pts_[vkey(in.dst)].insert(MemObj::local(f.id, in.auxA));
                    break;
                  case Opcode::Mov:
                  case Opcode::Gep:
                  case Opcode::PtrAdd:
                  case Opcode::Cast: {
                    if (!tt.isPtr(in.type))
                        break;
                    const Operand &src = in.args[0];
                    if (src.isVReg()) {
                        if (tt.isPtr(f.vregs[src.index].type) ||
                            in.op != Opcode::Cast) {
                            succ_[vkey(src.index)].push_back(vkey(in.dst));
                        } else {
                            // int -> pointer: unknown target.
                            pts_[vkey(in.dst)].insert(MemObj::universal());
                        }
                    } else if (src.isImm() && src.imm != 0) {
                        pts_[vkey(in.dst)].insert(MemObj::universal());
                    }
                    break;
                  }
                  case Opcode::ConstI:
                    if (tt.isPtr(in.type) && in.args[0].imm != 0)
                        pts_[vkey(in.dst)].insert(MemObj::universal());
                    break;
                  case Opcode::Load:
                    if (tt.isPtr(in.type) && in.args[0].isVReg()) {
                        derefs.push_back(
                            {vkey(in.args[0].index), vkey(in.dst), true});
                    }
                    break;
                  case Opcode::Store: {
                    if (!tt.isPtr(in.type))
                        break;
                    if (in.args[0].isVReg() && in.args[1].isVReg()) {
                        derefs.push_back({vkey(in.args[0].index),
                                          vkey(in.args[1].index), false});
                    }
                    break;
                  }
                  case Opcode::Call: {
                    const Function &callee = mod_.funcAt(in.callee);
                    for (size_t i = 0; i < in.args.size() &&
                                       i < callee.params.size();
                         ++i) {
                        if (in.args[i].isVReg() &&
                            tt.isPtr(f.vregs[in.args[i].index].type)) {
                            succ_[vkey(in.args[i].index)].push_back(
                                vregKey(callee.id, callee.params[i]));
                        }
                    }
                    if (in.hasDst() && tt.isPtr(in.type)) {
                        // Returns flow back: handled below via ret scan.
                    }
                    break;
                  }
                  default:
                    break;
                }
            }
        }
    }
    // Return-value flow: for each call with a pointer dst, add edges
    // from every Ret operand of the callee.
    for (const auto &f : funcs) {
        if (f.dead)
            continue;
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.op != Opcode::Call || !in.hasDst() ||
                    !tt.isPtr(in.type)) {
                    continue;
                }
                const Function &callee = mod_.funcAt(in.callee);
                for (const auto &cbb : callee.blocks) {
                    for (const auto &cin : cbb.instrs) {
                        if (cin.op == Opcode::Ret && !cin.args.empty() &&
                            cin.args[0].isVReg()) {
                            succ_[vregKey(callee.id, cin.args[0].index)]
                                .push_back(vregKey(f.id, in.dst));
                        }
                    }
                }
            }
        }
    }

    // Fixpoint: propagate along inclusion edges and expand deref
    // constraints into edges as pointer sets grow.
    std::set<std::pair<uint32_t, uint32_t>> edgeSeen;
    for (uint32_t k = 0; k < numKeys_; ++k) {
        for (uint32_t s : succ_[k])
            edgeSeen.insert({k, s});
    }
    bool changed = true;
    int iterations = 0;
    while (changed && iterations < 1000) {
        changed = false;
        ++iterations;
        for (uint32_t k = 0; k < numKeys_; ++k) {
            for (uint32_t s : succ_[k]) {
                size_t before = pts_[s].size();
                pts_[s].insert(pts_[k].begin(), pts_[k].end());
                if (pts_[s].size() != before)
                    changed = true;
            }
        }
        for (const auto &d : derefs) {
            for (const MemObj &obj : pts_[d.ptrKey]) {
                uint32_t mk = memKey(obj);
                uint32_t from = d.isLoad ? mk : d.valKey;
                uint32_t to = d.isLoad ? d.valKey : mk;
                if (edgeSeen.insert({from, to}).second) {
                    succ_[from].push_back(to);
                    changed = true;
                }
            }
        }
    }
    if (iterations >= 1000)
        panic("points-to analysis failed to converge");
}

const PtsSet &
PointsTo::vregPts(uint32_t fn, uint32_t vreg) const
{
    return pts_.at(vregKey(fn, vreg));
}

const PtsSet &
PointsTo::memPts(const MemObj &obj) const
{
    return pts_.at(memKey(obj));
}

bool
PointsTo::mayAlias(uint32_t fnA, uint32_t vregA, uint32_t fnB,
                   uint32_t vregB) const
{
    const PtsSet &a = vregPts(fnA, vregA);
    const PtsSet &b = vregPts(fnB, vregB);
    if (hasUniversal(a) || hasUniversal(b))
        return true;
    for (const auto &o : a) {
        if (b.count(o))
            return true;
    }
    return false;
}

std::optional<MemObj>
PointsTo::resolveExact(uint32_t fn, uint32_t vreg) const
{
    const Function &f = mod_.funcAt(fn);
    // Count definitions of each vreg once per query function (cheap
    // relative to module sizes here).
    std::vector<const Instr *> def(f.vregs.size(), nullptr);
    std::vector<uint8_t> defCount(f.vregs.size(), 0);
    for (const auto &bb : f.blocks) {
        for (const auto &in : bb.instrs) {
            if (in.hasDst() && in.dst < f.vregs.size()) {
                if (defCount[in.dst] < 2)
                    ++defCount[in.dst];
                def[in.dst] = &in;
            }
        }
    }
    uint32_t cur = vreg;
    for (int depth = 0; depth < 64; ++depth) {
        if (cur >= f.vregs.size() || defCount[cur] != 1)
            return std::nullopt;
        const Instr *in = def[cur];
        switch (in->op) {
          case Opcode::AddrGlobal:
            return MemObj::global(in->args[0].index);
          case Opcode::AddrLocal:
            return MemObj::local(fn, in->auxA);
          case Opcode::Mov:
          case Opcode::Cast:
          case Opcode::Gep:
          case Opcode::PtrAdd:
            if (!in->args.empty() && in->args[0].isVReg()) {
                cur = in->args[0].index;
                continue;
            }
            return std::nullopt;
          default:
            return std::nullopt;
        }
    }
    return std::nullopt;
}

PtsSet
PointsTo::accessTargets(uint32_t fn, uint32_t vreg) const
{
    PtsSet s = vregPts(fn, vreg);
    if (auto exact = resolveExact(fn, vreg); exact && s.empty())
        s.insert(*exact);
    return s;
}

} // namespace stos::analysis
