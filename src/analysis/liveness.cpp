/**
 * @file
 * Liveness analysis implementation.
 */
#include "analysis/liveness.h"

#include <functional>

namespace stos::analysis {

using namespace stos::ir;

void
forEachUse(const Instr &in, const std::function<void(uint32_t)> &fn)
{
    for (const auto &a : in.args) {
        if (a.isVReg())
            fn(a.index);
    }
}

Liveness::Liveness(const Module &, const Function &f) : func_(f)
{
    size_t nb = f.blocks.size();
    size_t nv = f.vregs.size();
    liveIn_.assign(nb, std::vector<bool>(nv, false));
    liveOut_.assign(nb, std::vector<bool>(nv, false));

    // Successor lists.
    std::vector<std::vector<uint32_t>> succ(nb);
    for (const auto &bb : f.blocks) {
        if (bb.instrs.empty())
            continue;
        const Instr &t = bb.instrs.back();
        if (t.op == Opcode::Br) {
            succ[bb.id].push_back(t.b0);
        } else if (t.op == Opcode::CondBr) {
            succ[bb.id].push_back(t.b0);
            succ[bb.id].push_back(t.b1);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = nb; b-- > 0;) {
            const BasicBlock &bb = f.blocks[b];
            std::vector<bool> out(nv, false);
            for (uint32_t s : succ[b]) {
                for (size_t v = 0; v < nv; ++v) {
                    if (liveIn_[s][v])
                        out[v] = true;
                }
            }
            std::vector<bool> in = out;
            for (size_t i = bb.instrs.size(); i-- > 0;) {
                const Instr &ins = bb.instrs[i];
                if (ins.hasDst())
                    in[ins.dst] = false;
                forEachUse(ins, [&](uint32_t v) { in[v] = true; });
            }
            if (in != liveIn_[b] || out != liveOut_[b]) {
                liveIn_[b] = std::move(in);
                liveOut_[b] = std::move(out);
                changed = true;
            }
        }
    }
}

std::vector<std::vector<bool>>
Liveness::liveAfter(uint32_t block) const
{
    const BasicBlock &bb = func_.blocks.at(block);
    size_t n = bb.instrs.size();
    std::vector<std::vector<bool>> after(n, liveOut_.at(block));
    std::vector<bool> cur = liveOut_.at(block);
    for (size_t i = n; i-- > 0;) {
        after[i] = cur;
        const Instr &ins = bb.instrs[i];
        if (ins.hasDst())
            cur[ins.dst] = false;
        forEachUse(ins, [&](uint32_t v) { cur[v] = true; });
    }
    return after;
}

} // namespace stos::analysis
