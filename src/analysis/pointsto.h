/**
 * @file
 * Whole-program points-to analysis in the style the paper describes
 * for cXprop (§2.1): field-sensitive in the dataflow (offsets are
 * tracked by the abstract domains), object-granular for aliasing, with
 * both may-alias sets (this analysis) and must-alias resolution
 * (resolveExact, used for strong updates).
 *
 * Memory objects are globals and function locals; int-to-pointer casts
 * produce the Universal object, which aliases everything.
 */
#ifndef STOS_ANALYSIS_POINTSTO_H
#define STOS_ANALYSIS_POINTSTO_H

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "ir/module.h"

namespace stos::analysis {

/** Identifier of an abstract memory object. */
struct MemObj {
    enum Kind : uint8_t { GlobalObj, LocalObj, Universal } kind = Universal;
    uint32_t func = 0;   ///< LocalObj: owning function
    uint32_t index = 0;  ///< global id / local id

    bool operator<(const MemObj &o) const
    {
        if (kind != o.kind)
            return kind < o.kind;
        if (func != o.func)
            return func < o.func;
        return index < o.index;
    }
    bool operator==(const MemObj &) const = default;

    static MemObj global(uint32_t id) { return {GlobalObj, 0, id}; }
    static MemObj local(uint32_t fn, uint32_t id)
    {
        return {LocalObj, fn, id};
    }
    static MemObj universal() { return {Universal, 0, 0}; }
};

using PtsSet = std::set<MemObj>;

/**
 * Andersen-style inclusion-based analysis over the whole module.
 * Queries answer both "what may this vreg point to" and "may these
 * two pointers alias".
 */
class PointsTo {
  public:
    explicit PointsTo(const ir::Module &m);

    /** May-points-to set of a vreg in a function. */
    const PtsSet &vregPts(uint32_t fn, uint32_t vreg) const;
    /** May-points-to set of pointers stored inside an object. */
    const PtsSet &memPts(const MemObj &obj) const;

    bool mayAlias(uint32_t fnA, uint32_t vregA, uint32_t fnB,
                  uint32_t vregB) const;

    /**
     * Must-alias: if the vreg definitely points at one specific object
     * (single reaching definition chain of Addr/Gep/PtrAdd-const),
     * return it. Enables strong updates in the dataflow.
     */
    std::optional<MemObj> resolveExact(uint32_t fn, uint32_t vreg) const;

    /** All objects a Load/Store through this vreg may touch. */
    PtsSet accessTargets(uint32_t fn, uint32_t vreg) const;

    /** True if the set contains Universal (unknown pointer). */
    static bool hasUniversal(const PtsSet &s);

  private:
    void build();
    void addEdge(uint32_t fromKey, uint32_t toKey);
    uint32_t vregKey(uint32_t fn, uint32_t vreg) const;
    uint32_t memKey(const MemObj &obj) const;

    const ir::Module &mod_;
    // Node space: [vregs of all functions][objects].
    std::vector<uint32_t> funcVregBase_;
    std::vector<MemObj> objects_;
    std::vector<uint32_t> objKeyBase_;  // parallel lookup
    uint32_t numKeys_ = 0;

    std::vector<PtsSet> pts_;
    std::vector<std::vector<uint32_t>> succ_;  ///< inclusion edges
    PtsSet empty_;
};

} // namespace stos::analysis

#endif
