/**
 * @file
 * Concurrency analysis for the TinyOS two-level execution model
 * (paper §2.2). Classifies every function by the contexts it can run
 * in (task/main vs. each interrupt vector), computes atomic-section
 * coverage, and detects racy objects conservatively — following
 * pointers through the points-to analysis, which is precisely the
 * improvement the paper claims over the nesC detector.
 */
#ifndef STOS_ANALYSIS_CONCURRENCY_H
#define STOS_ANALYSIS_CONCURRENCY_H

#include <set>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/pointsto.h"
#include "ir/module.h"

namespace stos::analysis {

/** Execution contexts: task context plus one per interrupt vector. */
struct ContextSet {
    bool task = false;                 ///< main / posted tasks / init
    uint32_t vectors = 0;              ///< bitmask of interrupt vectors

    /**
     * Two accesses can interleave badly iff the union of their
     * context atoms contains two distinct atoms: tasks never preempt
     * tasks, and a vector never nests with itself, but every other
     * pairing is preemptible (conservative for re-enabled IRQs).
     */
    bool
    concurrentWith(const ContextSet &o) const
    {
        uint32_t uni = vectors | o.vectors;
        int atoms = (task || o.task) ? 1 : 0;
        while (uni) {
            atoms += uni & 1;
            uni >>= 1;
        }
        return atoms >= 2;
    }
    bool
    multi() const
    {
        return concurrentWith(*this);
    }
};

struct ConcurrencyOptions {
    /**
     * Paper §2.2: CCured must ignore the programmer's `norace`
     * annotations because they are unsound for safety. When false
     * (nesC behaviour), norace variables are never reported racy.
     */
    bool suppressNorace = true;
    /**
     * Follow pointers via points-to when classifying accesses (our
     * detector). When false, only direct global accesses count — the
     * nesC approximation the paper improves on.
     */
    bool followPointers = true;
};

/**
 * Result of the race analysis: per-function contexts, per-object race
 * verdicts, and atomicity information for the optimizer.
 */
class ConcurrencyAnalysis {
  public:
    ConcurrencyAnalysis(const ir::Module &m, const CallGraph &cg,
                        const PointsTo &pts,
                        ConcurrencyOptions opts = {});

    const ContextSet &contextsOf(uint32_t fn) const
    {
        return funcCtx_.at(fn);
    }

    /** Global ids the detector flags as potential races. */
    const std::set<uint32_t> &racyGlobals() const { return racyGlobals_; }
    bool isRacyGlobal(uint32_t gid) const
    {
        return racyGlobals_.count(gid) > 0;
    }
    /** Racy objects including locals whose address escapes. */
    const std::set<MemObj> &racyObjects() const { return racyObjects_; }

    /**
     * Can an AtomicBegin in this function execute while interrupts are
     * already disabled (nested atomic, or running inside a handler)?
     * If not, the atomic section doesn't need to save the IRQ bit —
     * the §2.2 optimization.
     */
    bool atomicNeedsIrqSave(uint32_t fn) const
    {
        return atomicNeedsSave_.at(fn);
    }

    /** Number of accesses the detector classified, for reporting. */
    size_t numAccessesClassified() const { return accessesClassified_; }

  private:
    void classifyFunctions();
    void collectAccesses();
    void computeAtomicDepths();

    struct Access {
        MemObj obj;
        ContextSet ctx;
        bool isWrite;
        bool atomic;
    };

    const ir::Module &mod_;
    const CallGraph &cg_;
    const PointsTo &pts_;
    ConcurrencyOptions opts_;
    std::vector<ContextSet> funcCtx_;
    std::vector<bool> atomicNeedsSave_;
    std::vector<bool> calledInAtomic_;
    std::set<uint32_t> racyGlobals_;
    std::set<MemObj> racyObjects_;
    size_t accessesClassified_ = 0;
};

} // namespace stos::analysis

#endif
