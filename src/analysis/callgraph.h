/**
 * @file
 * Whole-program call graph. Indirect calls (task queue dispatch via
 * fnptr) are resolved conservatively to every address-taken function,
 * exactly the approximation cXprop needs for sound whole-program
 * analysis on TinyOS programs.
 */
#ifndef STOS_ANALYSIS_CALLGRAPH_H
#define STOS_ANALYSIS_CALLGRAPH_H

#include <vector>

#include "ir/module.h"

namespace stos::analysis {

class CallGraph {
  public:
    explicit CallGraph(const ir::Module &m);

    const std::vector<uint32_t> &callees(uint32_t fn) const
    {
        return callees_.at(fn);
    }
    const std::vector<uint32_t> &callers(uint32_t fn) const
    {
        return callers_.at(fn);
    }
    /** Functions whose address appears as an operand anywhere. */
    const std::vector<uint32_t> &addressTaken() const
    {
        return addressTaken_;
    }
    bool isAddressTaken(uint32_t fn) const
    {
        return addressTakenMask_.at(fn);
    }
    /** Does fn (transitively) reach target? */
    bool reaches(uint32_t fn, uint32_t target) const;

    /** All functions reachable from the given roots (including them). */
    std::vector<bool> reachableFrom(const std::vector<uint32_t> &roots) const;

    /** Is the function directly or transitively recursive? */
    bool isRecursive(uint32_t fn) const { return recursive_.at(fn); }

  private:
    const ir::Module &mod_;
    std::vector<std::vector<uint32_t>> callees_;
    std::vector<std::vector<uint32_t>> callers_;
    std::vector<uint32_t> addressTaken_;
    std::vector<bool> addressTakenMask_;
    std::vector<bool> recursive_;
    std::vector<uint32_t> indirectCallers_;
};

} // namespace stos::analysis

#endif
