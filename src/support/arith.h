/**
 * @file
 * Defined-semantics integer arithmetic shared by every execution
 * engine (IR interpreter, legacy and predecoded simulator cores) and
 * by the optimizer's constant folder. TinyCIL division is total:
 *
 *   x / 0  == 0          x % 0  == 0
 *   INT_MIN / -1 == INT_MIN (two's-complement wrap)
 *   INT_MIN % -1 == 0
 *
 * This matches what the simulator cores have always produced for the
 * zero-divisor case and removes the host-UB `INT64_MIN / -1` overflow
 * from all of them. Any engine or fold that divides MUST go through
 * these helpers so the engines cannot drift apart again.
 */
#ifndef STOS_SUPPORT_ARITH_H
#define STOS_SUPPORT_ARITH_H

#include <cstdint>

namespace stos::arith {

constexpr uint64_t
udiv(uint64_t a, uint64_t b)
{
    return b ? a / b : 0;
}

constexpr uint64_t
urem(uint64_t a, uint64_t b)
{
    return b ? a % b : 0;
}

/** INT64_MIN / -1 wraps back to INT64_MIN instead of overflowing. */
constexpr int64_t
sdiv(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (b == -1)
        return static_cast<int64_t>(0 - static_cast<uint64_t>(a));
    return a / b;
}

/** INT64_MIN % -1 is 0, consistent with the sdiv wrap. */
constexpr int64_t
srem(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (b == -1)
        return 0;
    return a % b;
}

/** `a * b` without signed-overflow UB (wraps mod 2^64). */
constexpr int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

constexpr int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

constexpr int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

} // namespace stos::arith

#endif
