/**
 * @file
 * Implementation of the support library.
 */
#include <cstdio>
#include <sstream>

#include "support/diagnostics.h"
#include "support/source_loc.h"
#include "support/util.h"

namespace stos {

std::string
SourceManager::describe(SourceLoc loc) const
{
    if (!loc.valid())
        return "<unknown>";
    return strfmt("%s:%u:%u", fileName(loc.file).c_str(), loc.line, loc.col);
}

std::string
DiagnosticEngine::dump() const
{
    std::ostringstream os;
    for (const auto &d : diags_) {
        const char *lvl = d.level == DiagLevel::Error ? "error"
                        : d.level == DiagLevel::Warning ? "warning" : "note";
        if (sm_)
            os << sm_->describe(d.loc) << ": ";
        else if (d.loc.valid())
            os << "line " << d.loc.line << ": ";
        os << lvl << ": " << d.message << "\n";
    }
    return os.str();
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
    if (n > 0)
        vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

void
panic(const std::string &msg)
{
    throw InternalError("internal error: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

} // namespace stos
