/**
 * @file
 * Memory-mapped device register addresses shared by the TinyOS-style
 * application library (TinyC `hwreg` declarations), the safety
 * runtime generator, and the device simulator. Mirrors the flavour of
 * the Mica2's AVR I/O space.
 */
#ifndef STOS_SUPPORT_DEVMAP_H
#define STOS_SUPPORT_DEVMAP_H

#include <cstdint>

namespace stos::dev {

// LEDs / GPIO
constexpr uint32_t kRegLeds = 0x20;       ///< u8: bits 0..2 = red/green/yellow
constexpr uint32_t kRegPortB = 0x25;      ///< u8: generic port

// Timers (periodic; period in ticks of 256 cycles)
constexpr uint32_t kRegTimer0Ctrl = 0x30; ///< u8: bit0 = enable
constexpr uint32_t kRegTimer0Period = 0x31; ///< u16
constexpr uint32_t kRegTimer1Ctrl = 0x34; ///< u8: bit0 = enable
constexpr uint32_t kRegTimer1Period = 0x35; ///< u16

// ADC / sensors
constexpr uint32_t kRegAdcCtrl = 0x40;    ///< u8: write 1 = start conversion
constexpr uint32_t kRegAdcData = 0x41;    ///< u16: conversion result
constexpr uint32_t kRegAdcChannel = 0x43; ///< u8: 0=light 1=temp 2=mic

// Radio (CC1000-flavoured byte FIFO)
constexpr uint32_t kRegRadioCtrl = 0x50;  ///< u8: bit0 rx-enable, bit1 send
constexpr uint32_t kRegRadioData = 0x51;  ///< u8: FIFO data window
constexpr uint32_t kRegRadioLen = 0x52;   ///< u8: length of frame in FIFO
constexpr uint32_t kRegRadioRssi = 0x53;  ///< u8: signal strength
constexpr uint32_t kRegRadioDest = 0x54;  ///< u8: destination node id

// UART (host-visible log)
constexpr uint32_t kRegUartData = 0x60;   ///< u8: write = emit byte
constexpr uint32_t kRegUartCtrl = 0x61;   ///< u8

// Misc
constexpr uint32_t kRegClock = 0x70;      ///< u16: cycles / 256
constexpr uint32_t kRegNodeId = 0x7A;     ///< u8: this mote's address
constexpr uint32_t kRegRandom = 0x7B;     ///< u8: PRNG byte

} // namespace stos::dev

#endif
