/**
 * @file
 * Diagnostic engine shared by all toolchain stages. Collects errors,
 * warnings and notes with source locations; stages abort politely by
 * checking hasErrors() rather than throwing through the pipeline.
 */
#ifndef STOS_SUPPORT_DIAGNOSTICS_H
#define STOS_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

#include "support/source_loc.h"

namespace stos {

enum class DiagLevel { Note, Warning, Error };

/** One reported diagnostic. */
struct Diagnostic {
    DiagLevel level;
    SourceLoc loc;
    std::string message;
};

/**
 * Accumulates diagnostics for one toolchain run. Not thread-safe;
 * each pipeline owns one.
 */
class DiagnosticEngine {
  public:
    explicit DiagnosticEngine(const SourceManager *sm = nullptr) : sm_(sm) {}

    void error(SourceLoc loc, std::string msg)
    {
        diags_.push_back({DiagLevel::Error, loc, std::move(msg)});
        ++numErrors_;
    }
    void warning(SourceLoc loc, std::string msg)
    {
        diags_.push_back({DiagLevel::Warning, loc, std::move(msg)});
    }
    void note(SourceLoc loc, std::string msg)
    {
        diags_.push_back({DiagLevel::Note, loc, std::move(msg)});
    }

    bool hasErrors() const { return numErrors_ > 0; }
    size_t numErrors() const { return numErrors_; }
    const std::vector<Diagnostic> &all() const { return diags_; }

    /** Render every diagnostic, one per line, for tests and CLIs. */
    std::string dump() const;

  private:
    const SourceManager *sm_;
    std::vector<Diagnostic> diags_;
    size_t numErrors_ = 0;
};

} // namespace stos

#endif
