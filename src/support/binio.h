/**
 * @file
 * Minimal binary (de)serialization primitives for the artifact store:
 * a byte-appending writer, a bounds-checked reader, and the FNV-1a
 * hash used for payload integrity and store file names. Everything is
 * explicit little-endian byte-at-a-time, so artifacts are portable
 * across hosts regardless of native endianness or struct layout.
 *
 * The reader throws TruncatedData on any out-of-bounds read, so a
 * short or corrupted buffer can never produce a silently-wrong value;
 * the artifact store turns that throw into a cache miss.
 */
#ifndef STOS_SUPPORT_BINIO_H
#define STOS_SUPPORT_BINIO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "support/util.h"

namespace stos::support {

/** Thrown by BinReader when a read runs past the end of the buffer. */
struct TruncatedData : FatalError {
    using FatalError::FatalError;
};

/** 64-bit FNV-1a over arbitrary bytes (stable across platforms). */
inline uint64_t
fnv1a64(std::string_view data)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x00000100000001b3ull;
    }
    return h;
}

/** Append-only little-endian byte sink backed by a std::string. */
class BinWriter {
  public:
    void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }
    void u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }
    void u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void d(double v)
    {
        uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void str(std::string_view s)
    {
        u64(s.size());
        buf_.append(s.data(), s.size());
    }
    void bytes(const std::vector<uint8_t> &v)
    {
        u64(v.size());
        buf_.append(reinterpret_cast<const char *>(v.data()), v.size());
    }

    const std::string &data() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Bounds-checked little-endian reader over a borrowed buffer. */
class BinReader {
  public:
    explicit BinReader(std::string_view buf) : buf_(buf) {}

    uint8_t u8()
    {
        need(1);
        return static_cast<uint8_t>(buf_[pos_++]);
    }
    uint16_t u16()
    {
        uint16_t lo = u8();
        return static_cast<uint16_t>(lo | (u8() << 8));
    }
    uint32_t u32()
    {
        uint32_t lo = u16();
        return lo | (static_cast<uint32_t>(u16()) << 16);
    }
    uint64_t u64()
    {
        uint64_t lo = u32();
        return lo | (static_cast<uint64_t>(u32()) << 32);
    }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }
    bool b() { return u8() != 0; }
    double d()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
    std::string str()
    {
        size_t n = len();
        std::string s(buf_.substr(pos_, n));
        pos_ += n;
        return s;
    }
    std::vector<uint8_t> bytes()
    {
        size_t n = len();
        const auto *p =
            reinterpret_cast<const uint8_t *>(buf_.data() + pos_);
        pos_ += n;
        return std::vector<uint8_t>(p, p + n);
    }

    size_t remaining() const { return buf_.size() - pos_; }
    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    /** Length prefix, validated against the remaining bytes so a
     *  corrupted length can't drive a huge allocation. */
    size_t len()
    {
        uint64_t n = u64();
        need(n);
        return static_cast<size_t>(n);
    }
    void need(uint64_t n)
    {
        if (n > buf_.size() - pos_)
            throw TruncatedData(
                strfmt("truncated data: need %llu bytes at offset %zu "
                       "of %zu",
                       static_cast<unsigned long long>(n), pos_,
                       buf_.size()));
    }

    std::string_view buf_;
    size_t pos_ = 0;
};

} // namespace stos::support

#endif
