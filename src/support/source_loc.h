/**
 * @file
 * Source locations and the source manager used by the TinyC frontend
 * and carried through the toolchain for error-message generation
 * (verbose messages, terse messages, and FLID compression all derive
 * from these locations).
 */
#ifndef STOS_SUPPORT_SOURCE_LOC_H
#define STOS_SUPPORT_SOURCE_LOC_H

#include <cstdint>
#include <string>
#include <vector>

namespace stos {

/**
 * A position in some TinyC source buffer. `file` indexes into the
 * SourceManager's file table; line/col are 1-based. A default
 * constructed location is "unknown".
 */
struct SourceLoc {
    uint32_t file = 0;
    uint32_t line = 0;
    uint32_t col = 0;

    bool valid() const { return line != 0; }

    bool operator==(const SourceLoc &) const = default;
};

/**
 * Owns the names and contents of all source buffers fed to the
 * frontend. Buffer 0 is reserved for "unknown".
 */
class SourceManager {
  public:
    SourceManager() { names_.push_back("<unknown>"); texts_.push_back(""); }

    /** Register a buffer; returns its file id. */
    uint32_t addBuffer(std::string name, std::string text)
    {
        names_.push_back(std::move(name));
        texts_.push_back(std::move(text));
        return static_cast<uint32_t>(names_.size() - 1);
    }

    const std::string &fileName(uint32_t id) const { return names_.at(id); }
    const std::string &fileText(uint32_t id) const { return texts_.at(id); }
    size_t numFiles() const { return names_.size(); }

    /** Render a location as "file:line:col" for diagnostics. */
    std::string describe(SourceLoc loc) const;

  private:
    std::vector<std::string> names_;
    std::vector<std::string> texts_;
};

} // namespace stos

#endif
