/**
 * @file
 * Small shared utilities: fatal-error helpers and string formatting.
 * panic() signals a toolchain bug (assert-like); fatal() signals a
 * user-input problem that a stage could not express as a Diagnostic.
 */
#ifndef STOS_SUPPORT_UTIL_H
#define STOS_SUPPORT_UTIL_H

#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace stos {

/** Thrown on internal toolchain bugs (never on bad user input). */
struct InternalError : std::logic_error {
    using std::logic_error::logic_error;
};

/** Thrown on unrecoverable user-input problems. */
struct FatalError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Quote a CSV field per RFC 4180 when it contains a comma, quote, or
 * newline (the config labels do: "safe, FLIDs"); otherwise return it
 * unchanged.
 */
std::string csvField(const std::string &s);

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

[[noreturn]] void panic(const std::string &msg);
[[noreturn]] void fatal(const std::string &msg);

/** Round v up to the next multiple of align (align is a power of two). */
inline uint32_t
alignUp(uint32_t v, uint32_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Wall milliseconds elapsed since `start` (steady clock). */
inline double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace stos

#endif
