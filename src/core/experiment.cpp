/**
 * @file
 * Experiment facade implementation. The facade owns a BuildDriver
 * (the matrix declaration) and pairs it with a SimDriver run over the
 * same StageCache, so the sim phase's companion firmware aliases the
 * matrix's Baseline cells instead of rebuilding them.
 */
#include "core/experiment.h"

#include "support/util.h"

namespace stos::core {

//---------------------------------------------------------------------
// ExperimentReport
//---------------------------------------------------------------------

bool
ExperimentReport::allOk() const
{
    return builds.allOk() && (!simulated || sims.allOk());
}

std::string
ExperimentReport::summary() const
{
    std::string s = "build: " + builds.summary();
    if (simulated)
        s += "\nsim:   " + sims.summary();
    return s;
}

void
ExperimentReport::emitCsv(std::ostream &os) const
{
    if (simulated)
        sims.emitCsv(os);
    else
        builds.emitCsv(os);
}

void
ExperimentReport::emitJson(std::ostream &os) const
{
    if (simulated)
        sims.emitJson(os);
    else
        builds.emitJson(os);
}

void
ExperimentReport::emitJoinedCsv(std::ostream &os) const
{
    if (!simulated)
        throw FatalError("joined report requires a simulated matrix");
    sims.joinCsv(builds, os);
}

void
ExperimentReport::emitJoinedJson(std::ostream &os) const
{
    if (!simulated)
        throw FatalError("joined report requires a simulated matrix");
    sims.joinJson(builds, os);
}

//---------------------------------------------------------------------
// Matrix declaration (delegated to the BuildDriver shim)
//---------------------------------------------------------------------

Experiment &
Experiment::addApp(const tinyos::AppInfo &app)
{
    builder_.addApp(app);
    return *this;
}

Experiment &
Experiment::addApps(const std::vector<tinyos::AppInfo> &apps)
{
    builder_.addApps(apps);
    return *this;
}

Experiment &
Experiment::addAllApps()
{
    builder_.addAllApps();
    return *this;
}

Experiment &
Experiment::addPaperApps()
{
    builder_.addApps(tinyos::paperApps());
    return *this;
}

Experiment &
Experiment::addAppsByTag(const std::string &tag)
{
    builder_.addApps(tinyos::appsByTag(tag));
    return *this;
}

Experiment &
Experiment::addAppsOn(const std::string &platform)
{
    for (const auto &app : tinyos::allApps()) {
        if (app.platform == platform)
            builder_.addApp(app);
    }
    return *this;
}

Experiment &
Experiment::addConfig(ConfigId id)
{
    builder_.addConfig(id);
    return *this;
}

Experiment &
Experiment::addConfigs(const std::vector<ConfigId> &ids)
{
    builder_.addConfigs(ids);
    return *this;
}

Experiment &
Experiment::addStrategy(CheckStrategy s)
{
    builder_.addStrategy(s);
    return *this;
}

Experiment &
Experiment::addStrategies(const std::vector<CheckStrategy> &ss)
{
    builder_.addStrategies(ss);
    return *this;
}

Experiment &
Experiment::addCustom(std::string label,
                      std::function<PipelineConfig(const std::string &)>
                          make)
{
    builder_.addCustom(std::move(label), std::move(make));
    return *this;
}

//---------------------------------------------------------------------
// Execution
//---------------------------------------------------------------------

ExperimentReport
Experiment::run() const
{
    StageCache cache;
    return run(cache);
}

ExperimentReport
Experiment::run(StageCache &cache) const
{
    ExperimentReport rep;

    BuildDriver builder = builder_;
    builder.options().jobs = opts_.jobs;
    builder.options().memoizeFrontend = opts_.memoize;
    rep.builds = opts_.memoize ? builder.run(cache) : builder.run();

    if (opts_.simulate) {
        SimOptions simOpts;
        simOpts.jobs = opts_.jobs;
        simOpts.seconds = opts_.seconds;
        simOpts.mode = opts_.mode;
        simOpts.netThreads = opts_.netThreads;
        simOpts.memoizeCompanions = opts_.memoize;
        rep.sims = SimDriver(simOpts).run(rep.builds, cache);
        rep.simulated = true;
    }
    return rep;
}

ExperimentReport
Experiment::runSerialReference() const
{
    Experiment ref = *this;
    ref.opts_.jobs = 1;
    ref.opts_.memoize = false;
    ref.opts_.mode = sim::ExecMode::Legacy;
    ref.opts_.netThreads = 1;
    return ref.run();
}

//---------------------------------------------------------------------
// Equivalence gates
//---------------------------------------------------------------------

bool
Experiment::reportsEquivalent(const ExperimentReport &a,
                              const ExperimentReport &b, std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.builds.records.size() != b.builds.records.size() ||
        a.builds.numApps != b.builds.numApps ||
        a.builds.numConfigs != b.builds.numConfigs)
        return fail("build matrix shapes differ");
    for (size_t i = 0; i < a.builds.records.size(); ++i) {
        if (!BuildDriver::recordsEquivalent(a.builds.records[i],
                                            b.builds.records[i], why))
            return false;
    }
    if (a.simulated != b.simulated)
        return fail("one report is build-only");
    if (a.simulated &&
        !SimDriver::reportsEquivalent(a.sims, b.sims, why))
        return false;
    return true;
}

bool
Experiment::verifySerialEquivalence(const ExperimentReport &rep,
                                    std::string *why) const
{
    ExperimentReport ref = runSerialReference();
    if (!ref.allOk()) {
        if (why)
            *why = "serial reference run failed";
        return false;
    }
    return reportsEquivalent(ref, rep, why);
}

} // namespace stos::core
