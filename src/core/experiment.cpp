/**
 * @file
 * Experiment facade implementation — the build/sim engine itself.
 * Work distribution in both phases is a single atomic job counter
 * over the flattened matrix (core/pool.h); jobs are executed in
 * config-major order (cell k -> app k % A) so the first wave of
 * workers hits distinct apps and the per-app stage entries fill
 * without contention, while results land in app-major record slots so
 * report order is deterministic under any thread count.
 *
 * With options().cache.dir set, run() fronts its StageCache with an
 * ArtifactStore: stage products load from disk instead of executing
 * and write back after a live run. After a disk-backed run the
 * intermediate products (frontend/safety/opt) are released from
 * memory — the store can always re-materialize them — so steady-state
 * memory holds final builds only.
 */
#include "core/experiment.h"

#include <chrono>

#include "core/pool.h"
#include "support/util.h"

namespace stos::core {

using Clock = std::chrono::steady_clock;

//---------------------------------------------------------------------
// ExperimentReport
//---------------------------------------------------------------------

bool
ExperimentReport::allOk() const
{
    return builds.allOk() && (!simulated || sims.allOk());
}

std::string
ExperimentReport::summary() const
{
    std::string s = "build: " + builds.summary();
    if (simulated)
        s += "\nsim:   " + sims.summary();
    return s;
}

void
ExperimentReport::emitCsv(std::ostream &os) const
{
    if (simulated)
        sims.emitCsv(os);
    else
        builds.emitCsv(os);
}

void
ExperimentReport::emitJson(std::ostream &os) const
{
    if (simulated)
        sims.emitJson(os);
    else
        builds.emitJson(os);
}

void
ExperimentReport::emitJoinedCsv(std::ostream &os) const
{
    if (!simulated)
        throw FatalError("joined report requires a simulated matrix");
    sims.joinCsv(builds, os);
}

void
ExperimentReport::emitJoinedJson(std::ostream &os) const
{
    if (!simulated)
        throw FatalError("joined report requires a simulated matrix");
    sims.joinJson(builds, os);
}

//---------------------------------------------------------------------
// Matrix declaration
//---------------------------------------------------------------------

Experiment &
Experiment::addApp(const tinyos::AppInfo &app)
{
    apps_.push_back(app);
    return *this;
}

Experiment &
Experiment::addApps(const std::vector<tinyos::AppInfo> &apps)
{
    for (const auto &a : apps)
        apps_.push_back(a);
    return *this;
}

Experiment &
Experiment::addAllApps()
{
    return addApps(tinyos::allApps());
}

Experiment &
Experiment::addPaperApps()
{
    return addApps(tinyos::paperApps());
}

Experiment &
Experiment::addAppsByTag(const std::string &tag)
{
    return addApps(tinyos::appsByTag(tag));
}

Experiment &
Experiment::addAppsOn(const std::string &platform)
{
    for (const auto &app : tinyos::allApps()) {
        if (app.platform == platform)
            apps_.push_back(app);
    }
    return *this;
}

Experiment &
Experiment::addConfig(ConfigId id)
{
    configs_.push_back(
        {configName(id), [id](const std::string &platform) {
             return configFor(id, platform);
         }});
    return *this;
}

Experiment &
Experiment::addConfigs(const std::vector<ConfigId> &ids)
{
    for (ConfigId id : ids)
        addConfig(id);
    return *this;
}

Experiment &
Experiment::addStrategy(CheckStrategy s)
{
    configs_.push_back(
        {strategyName(s), [s](const std::string &platform) {
             return configForStrategy(s, platform);
         }});
    return *this;
}

Experiment &
Experiment::addStrategies(const std::vector<CheckStrategy> &ss)
{
    for (CheckStrategy s : ss)
        addStrategy(s);
    return *this;
}

Experiment &
Experiment::addCustom(std::string label,
                      std::function<PipelineConfig(const std::string &)>
                          make)
{
    configs_.push_back({std::move(label), std::move(make)});
    return *this;
}

//---------------------------------------------------------------------
// Build engine
//---------------------------------------------------------------------

namespace {

/** Fill the identity fields every cell carries regardless of mode. */
BuildRecord &
cellRecord(BuildReport &report, const tinyos::AppInfo &app,
           const ConfigSpec &spec, size_t appIdx, size_t cfgIdx)
{
    BuildRecord &rec =
        report.records[appIdx * report.numConfigs + cfgIdx];
    rec.app = app.name;
    rec.platform = app.platform;
    rec.config = spec.label;
    rec.companions = app.companions;
    rec.appIndex = static_cast<uint32_t>(appIdx);
    rec.configIndex = static_cast<uint32_t>(cfgIdx);
    return rec;
}

} // namespace

BuildReport
Experiment::buildMatrix(StageCache &cache) const
{
    const size_t nApps = apps_.size();
    const size_t nConfigs = configs_.size();
    const size_t nJobs = nApps * nConfigs;

    BuildReport report;
    report.numApps = nApps;
    report.numConfigs = nConfigs;
    report.records.resize(nJobs);
    report.jobsUsed = resolveJobs(opts_.jobs, nJobs);
    if (nJobs == 0)
        return report;

    StageCacheStats before = cache.stats();
    ArtifactStoreStats storeBefore;
    if (cache.store())
        storeBefore = cache.store()->stats();

    auto start = Clock::now();
    // Config-major execution order: spread early jobs across distinct
    // apps so the per-app stage entries fill in parallel.
    runOnPool(report.jobsUsed, nJobs, [&](size_t k) {
        size_t appIdx = k % nApps, cfgIdx = k / nApps;
        const tinyos::AppInfo &app = apps_[appIdx];
        const ConfigSpec &spec = configs_[cfgIdx];
        BuildRecord &rec = cellRecord(report, app, spec, appIdx, cfgIdx);
        auto cellStart = Clock::now();
        StageHits hits;
        try {
            PipelineConfig cfg = spec.make(app.platform);
            // Shared immutably with the cache — no per-cell copy.
            rec.result = cache.build(app, cfg, &hits);
            rec.ok = true;
        } catch (const std::exception &e) {
            rec.ok = false;
            rec.error = e.what();
        }
        rec.frontendReused = hits.frontend;
        rec.safetyReused = hits.safety;
        rec.optReused = hits.opt;
        rec.backendReused = hits.backend;
        rec.millis = millisSince(cellStart);
    });
    report.wallMillis = millisSince(start);

    // Stage executions this run come from the cache's counter delta;
    // per-cell reuse comes from the chain flags (a request chain
    // stops at its first cache hit, so raw request counters would
    // under-report upstream reuse). Disk hits are counted apart from
    // executions: a warmed store yields *Runs == 0.
    StageCacheStats after = cache.stats();
    report.frontendParses =
        after.frontend.executed - before.frontend.executed;
    report.safetyRuns = after.safety.executed - before.safety.executed;
    report.optRuns = after.opt.executed - before.opt.executed;
    report.backendRuns = after.backend.executed - before.backend.executed;
    report.frontendDiskHits =
        after.frontend.diskHits - before.frontend.diskHits;
    report.safetyDiskHits = after.safety.diskHits - before.safety.diskHits;
    report.optDiskHits = after.opt.diskHits - before.opt.diskHits;
    report.backendDiskHits =
        after.backend.diskHits - before.backend.diskHits;
    if (cache.store()) {
        ArtifactStoreStats storeAfter = cache.store()->stats();
        report.cacheBytesRead =
            storeAfter.bytesRead - storeBefore.bytesRead;
        report.cacheBytesWritten =
            storeAfter.bytesWritten - storeBefore.bytesWritten;
    }
    for (const auto &r : report.records) {
        report.frontendReuses += r.frontendReused ? 1 : 0;
        report.safetyReuses += r.safetyReused ? 1 : 0;
        report.optReuses += r.optReused ? 1 : 0;
        report.backendReuses += r.backendReused ? 1 : 0;
    }
    return report;
}

BuildReport
Experiment::buildMatrixCold() const
{
    // Cold mode: every cell compiles from source, nothing is shared
    // and nothing touches a store — the reference behaviour the
    // equivalence gates compare against.
    const size_t nApps = apps_.size();
    const size_t nConfigs = configs_.size();
    const size_t nJobs = nApps * nConfigs;

    BuildReport report;
    report.numApps = nApps;
    report.numConfigs = nConfigs;
    report.records.resize(nJobs);
    report.jobsUsed = resolveJobs(opts_.jobs, nJobs);
    if (nJobs == 0)
        return report;

    auto start = Clock::now();
    runOnPool(report.jobsUsed, nJobs, [&](size_t k) {
        size_t appIdx = k % nApps, cfgIdx = k / nApps;
        const tinyos::AppInfo &app = apps_[appIdx];
        const ConfigSpec &spec = configs_[cfgIdx];
        BuildRecord &rec = cellRecord(report, app, spec, appIdx, cfgIdx);
        auto cellStart = Clock::now();
        try {
            rec.result = std::make_shared<const BuildResult>(
                buildSource(app.name, app.source,
                            spec.make(app.platform)));
            rec.ok = true;
        } catch (const std::exception &e) {
            rec.ok = false;
            rec.error = e.what();
        }
        rec.millis = millisSince(cellStart);
    });
    report.wallMillis = millisSince(start);
    // Every cell ran the whole pipeline by itself.
    report.frontendParses = nJobs;
    report.safetyRuns = nJobs;
    report.optRuns = nJobs;
    report.backendRuns = nJobs;
    return report;
}

//---------------------------------------------------------------------
// Simulation engine
//---------------------------------------------------------------------

SimReport
Experiment::simulateBuilds(const BuildReport &builds,
                           StageCache &cache) const
{
    const size_t nApps = builds.numApps;
    const size_t nConfigs = builds.numConfigs;
    const size_t nJobs = nApps * nConfigs;

    SimReport report;
    report.numApps = nApps;
    report.numConfigs = nConfigs;
    report.seconds = opts_.seconds;
    report.records.resize(nJobs);
    report.jobsUsed = resolveJobs(opts_.jobs, nJobs);
    if (nJobs == 0)
        return report;

    const size_t builds0 = cache.companionBuilds();
    const size_t hits0 = cache.companionHits();

    sim::NetworkOptions netOpts;
    netOpts.mode = opts_.mode;
    // Lookahead windows belong to the decoded paths (Predecoded and
    // Threaded); Legacy keeps the fixed-quantum lockstep it always
    // had (it is the reference the equivalence gates compare
    // against).
    netOpts.lookahead = opts_.mode != sim::ExecMode::Legacy;
    netOpts.threads = opts_.netThreads;
    netOpts.faults = opts_.faults;
    netOpts.wallLimitMs = opts_.cellTimeout * 1000.0;

    auto simCell = [&](size_t appIdx, size_t cfgIdx) {
        const BuildRecord &build = builds.records[appIdx * nConfigs +
                                                  cfgIdx];
        SimRecord &rec = report.records[appIdx * nConfigs + cfgIdx];
        rec.app = build.app;
        rec.platform = build.platform;
        rec.config = build.config;
        rec.appIndex = build.appIndex;
        rec.configIndex = build.configIndex;

        auto cellStart = Clock::now();
        // Per-cell fault plan: re-mix the campaign seed with the app
        // name so no two cells replay the same corruption schedule.
        // runSerialReference copies these options verbatim, so the
        // reference cell mixes to the identical seed.
        sim::NetworkOptions cellNet = netOpts;
        if (cellNet.faults.anyFaults())
            cellNet.faults.seed =
                sim::mixSeed(cellNet.faults.seed, build.app);
        try {
            if (!build.ok)
                throw FatalError("build failed: " + build.error);
            // Companion images: from the shared memo, or rebuilt per
            // cell when memoization is off (the serial-equivalent
            // behaviour the equivalence gate compares against). The
            // companion names ride on the BuildRecord, so custom rows
            // outside the app registry simulate fine (companion-less
            // or with registry companions).
            bool allReused = !build.companions.empty();
            auto freshImage = [&](const std::string &cname) {
                const auto &capp = tinyos::appByName(cname);
                PipelineConfig base =
                    configFor(ConfigId::Baseline, build.platform);
                return std::make_shared<const backend::MProgram>(
                    buildApp(capp, base).image);
            };
            if (opts_.mode != sim::ExecMode::Legacy) {
                // The cell's own firmware decodes once per cell; the
                // companions' decodes come from (and persist in) the
                // cache, shared across every cell and run.
                auto dimage =
                    std::make_shared<const sim::DecodedProgram>(
                        build.result->image);
                std::vector<
                    std::shared_ptr<const sim::DecodedProgram>>
                    dcomps;
                for (const auto &cname : build.companions) {
                    if (opts_.memoize) {
                        bool builtHere = false;
                        dcomps.push_back(cache.companionDecode(
                            cname, build.platform, &builtHere));
                        if (builtHere)
                            allReused = false;
                    } else {
                        dcomps.push_back(
                            std::make_shared<
                                const sim::DecodedProgram>(
                                freshImage(cname)));
                        allReused = false;
                    }
                }
                rec.companionsReused = allReused;
                rec.outcome = simulateDecoded(dimage, dcomps,
                                              opts_.seconds, cellNet);
            } else {
                std::vector<std::shared_ptr<const backend::MProgram>>
                    owned;
                std::vector<const backend::MProgram *> companions;
                for (const auto &cname : build.companions) {
                    if (opts_.memoize) {
                        bool builtHere = false;
                        owned.push_back(cache.companionImage(
                            cname, build.platform, &builtHere));
                        if (builtHere)
                            allReused = false;
                    } else {
                        owned.push_back(freshImage(cname));
                        allReused = false;
                    }
                    companions.push_back(owned.back().get());
                }
                rec.companionsReused = allReused;
                rec.outcome =
                    simulateInContext(build.result->image, companions,
                                      opts_.seconds, cellNet);
            }
            rec.ok = true;
        } catch (const std::exception &e) {
            rec.ok = false;
            rec.error = e.what();
        }
        rec.millis = millisSince(cellStart);
    };

    auto start = Clock::now();
    // Config-major execution order: spread early jobs across distinct
    // apps so the companion entries fill in parallel.
    runOnPool(report.jobsUsed, nJobs,
              [&](size_t k) { simCell(k % nApps, k / nApps); });
    report.wallMillis = millisSince(start);
    report.companionBuilds = cache.companionBuilds() - builds0;
    report.companionReuses = cache.companionHits() - hits0;
    return report;
}

//---------------------------------------------------------------------
// Execution
//---------------------------------------------------------------------

ExperimentReport
Experiment::run() const
{
    std::unique_ptr<ArtifactStore> store;
    if (!opts_.cache.dir.empty())
        store = std::make_unique<ArtifactStore>(opts_.cache);
    StageCache cache(store.get());
    return run(cache);
}

ExperimentReport
Experiment::run(StageCache &cache) const
{
    ExperimentReport rep;
    rep.builds = opts_.memoize ? buildMatrix(cache) : buildMatrixCold();

    if (opts_.simulate) {
        rep.sims = simulateBuilds(rep.builds, cache);
        rep.simulated = true;
    }

    // With a writable store holding every intermediate, drop the
    // frontend/safety/opt memo entries — steady-state memory keeps
    // final builds only; a rare later request re-loads from disk.
    if (cache.store() && !cache.store()->options().readOnly)
        cache.releaseIntermediateProducts();
    return rep;
}

ExperimentReport
Experiment::runSerialReference() const
{
    Experiment ref = *this;
    ref.opts_.jobs = 1;
    ref.opts_.memoize = false;
    ref.opts_.mode = sim::ExecMode::Legacy;
    ref.opts_.netThreads = 1;
    // The cold reference must be exactly that — it never reads or
    // warms the artifact store.
    ref.opts_.cache = {};
    return ref.run();
}

//---------------------------------------------------------------------
// Equivalence gates
//---------------------------------------------------------------------

bool
Experiment::reportsEquivalent(const ExperimentReport &a,
                              const ExperimentReport &b, std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.builds.records.size() != b.builds.records.size() ||
        a.builds.numApps != b.builds.numApps ||
        a.builds.numConfigs != b.builds.numConfigs)
        return fail("build matrix shapes differ");
    for (size_t i = 0; i < a.builds.records.size(); ++i) {
        if (!BuildDriver::recordsEquivalent(a.builds.records[i],
                                            b.builds.records[i], why))
            return false;
    }
    if (a.simulated != b.simulated)
        return fail("one report is build-only");
    if (a.simulated &&
        !SimDriver::reportsEquivalent(a.sims, b.sims, why))
        return false;
    return true;
}

bool
Experiment::verifySerialEquivalence(const ExperimentReport &rep,
                                    std::string *why) const
{
    ExperimentReport ref = runSerialReference();
    if (!ref.allOk()) {
        if (why)
            *why = "serial reference run failed";
        return false;
    }
    return reportsEquivalent(ref, rep, why);
}

} // namespace stos::core
