/**
 * @file
 * Experiment: the unified facade over the build/sim stage graph.
 * Declare the rows (applications), columns (configurations), and
 * simulation settings once; run() compiles the matrix through a
 * shared StageCache (one frontend parse per app, one safety run per
 * (app, safety-fingerprint), companion firmware reused from the
 * matrix's own Baseline column) and then fans the per-cell network
 * simulations over the same worker pool, returning one combined
 * report. The serial/legacy equivalence gates the benches used to
 * hand-roll are API methods here.
 *
 * This facade IS the engine: the thread-pooled build loop, the
 * simulation loop, and the artifact-store plumbing all live here.
 * Point options().cache.dir at a directory and every stage product
 * persists on disk under its content key — a second process (or CI
 * run) over the same matrix executes zero stages. BuildDriver and
 * SimDriver survive only as the static equivalence helpers the
 * serial/parallel gates are phrased in.
 *
 * Typical use (what every figure bench does via BenchCli):
 *
 *   Experiment exp(opts);
 *   exp.addAppsOn("Mica2")
 *      .addConfig(ConfigId::Baseline)
 *      .addConfigs(figure3Configs());
 *   ExperimentReport rep = exp.run();
 *   if (!exp.verifySerialEquivalence(rep, &why)) ...   // optional gate
 *   rep.emitJoinedCsv(os);                             // one table
 */
#ifndef STOS_CORE_EXPERIMENT_H
#define STOS_CORE_EXPERIMENT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "core/simdriver.h"

namespace stos::core {

struct ExperimentOptions {
    /** Worker threads for both phases; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Memoize the stage graph (off = cold-build every cell). */
    bool memoize = true;
    /** Run the simulation phase after the build phase. */
    bool simulate = true;
    /** Simulated duration per cell, in seconds of mote time. */
    double seconds = 3.0;
    /** Interpreter core for the simulation phase. The direct-
     *  threaded core is the default; the equivalence suite holds it
     *  byte-identical to Legacy and Predecoded, so figures do not
     *  depend on this choice. */
    sim::ExecMode mode = sim::ExecMode::Threaded;
    /** Threads stepping each multi-mote network (1 = serial). */
    unsigned netThreads = 1;
    /**
     * On-disk artifact store binding (core/artifactstore.h). With a
     * non-empty dir, run() fronts its StageCache with an
     * ArtifactStore there: stage products persist across processes,
     * and a warmed directory serves a repeat run without executing a
     * single stage. Default (empty dir) is in-memory-only, exactly
     * the pre-store behaviour.
     */
    CacheOptions cache;
    /**
     * Fault campaign applied to every simulated cell (sim/fault.h).
     * The campaign seed is re-mixed with each cell's app name so every
     * cell replays its own deterministic plan; the serial-reference
     * gate inherits the same options, so equivalence checking covers
     * faulted matrices too. Defaults inject nothing.
     */
    sim::FaultOptions faults;
    /**
     * Per-cell wall-clock watchdog for the simulation phase, in
     * seconds (0 = off): a runaway cell is marked failed with a
     * diagnostic instead of hanging the whole bench.
     */
    double cellTimeout = 0.0;
};

/**
 * The combined result of one Experiment::run(): the static build
 * matrix and (when simulated) the dynamic simulation matrix over the
 * same cells.
 */
struct ExperimentReport {
    BuildReport builds;
    SimReport sims;        ///< valid only when `simulated`
    bool simulated = false;

    bool allOk() const;
    /** One-line stats (build phase; plus sim phase when simulated). */
    std::string summary() const;

    /**
     * Primary emission: the joined static+dynamic table when
     * simulated (one row per cell: code/RAM/ROM/checks next to duty
     * cycle and execution counters), the build table otherwise.
     */
    void emitCsv(std::ostream &os) const;
    void emitJson(std::ostream &os) const;

    /** The joined table, explicitly (throws unless simulated). */
    void emitJoinedCsv(std::ostream &os) const;
    void emitJoinedJson(std::ostream &os) const;
};

class Experiment {
  public:
    explicit Experiment(ExperimentOptions opts = {}) : opts_(opts) {}

    //--- rows -----------------------------------------------------
    Experiment &addApp(const tinyos::AppInfo &app);
    Experiment &addApps(const std::vector<tinyos::AppInfo> &apps);
    /** The whole registry corpus (paper + expanded families). */
    Experiment &addAllApps();
    /** The paper's twelve benchmark applications. */
    Experiment &addPaperApps();
    /** Registry apps of one scenario family / tag ("routing", ...). */
    Experiment &addAppsByTag(const std::string &tag);
    /** Registry apps on one platform (the Figure-3(c) row set). */
    Experiment &addAppsOn(const std::string &platform);

    //--- columns --------------------------------------------------
    Experiment &addConfig(ConfigId id);
    Experiment &addConfigs(const std::vector<ConfigId> &ids);
    Experiment &addStrategy(CheckStrategy s);
    Experiment &addStrategies(const std::vector<CheckStrategy> &ss);
    /** Arbitrary column, e.g. an ablation tweak of a named config. */
    Experiment &
    addCustom(std::string label,
              std::function<PipelineConfig(const std::string &)> make);

    size_t numApps() const { return apps_.size(); }
    size_t numConfigs() const { return configs_.size(); }
    const std::vector<tinyos::AppInfo> &apps() const { return apps_; }
    const std::vector<ConfigSpec> &configs() const { return configs_; }
    ExperimentOptions &options() { return opts_; }

    //--- execution ------------------------------------------------
    /**
     * Build + simulate the matrix over a fresh per-run StageCache —
     * fronted by an ArtifactStore when options().cache.dir is set,
     * in which case "fresh" only means the in-memory memo: stage
     * products still flow from and to the shared directory.
     */
    ExperimentReport run() const;
    /**
     * As above over the caller's persistent cache: repeated runs
     * (and the serial gate's sim phase) rebuild nothing. The cache's
     * own store binding wins; options().cache is ignored here.
     */
    ExperimentReport run(StageCache &cache) const;

    /**
     * The build phase alone, over the caller's cache: compile every
     * (app, config) cell through the cache's stage graph on a worker
     * pool. Per-stage run/reuse/disk-hit counters in the report are
     * deltas covering this call only.
     */
    BuildReport buildMatrix(StageCache &cache) const;

    /**
     * The simulation phase alone: fan the per-cell network
     * simulations of an already-built matrix over the worker pool.
     * Companion firmware comes from (and is added to) the caller's
     * cache; pass the cache that built the matrix and companions
     * alias its Baseline cells outright.
     */
    SimReport simulateBuilds(const BuildReport &builds,
                             StageCache &cache) const;

    /**
     * The cold reference of the same matrix: one job, no stage
     * memoization, per-cell companion rebuilds, legacy interpreter,
     * fixed-quantum lockstep networks. This is what every
     * memoized/parallel/predecoded layer is gated against.
     */
    ExperimentReport runSerialReference() const;

    /**
     * Run the serial reference and require cell-for-cell equivalence
     * with `rep` (byte-identical builds via
     * BuildDriver::resultsEquivalent, identical sim outcomes via
     * SimDriver::recordsEquivalent). `why` gets the first
     * difference.
     */
    bool verifySerialEquivalence(const ExperimentReport &rep,
                                 std::string *why = nullptr) const;

    /** Cell-for-cell equivalence of two combined reports. */
    static bool reportsEquivalent(const ExperimentReport &a,
                                  const ExperimentReport &b,
                                  std::string *why = nullptr);

  private:
    /** Cold (memoization-off) build loop: every cell from source. */
    BuildReport buildMatrixCold() const;

    ExperimentOptions opts_;
    std::vector<tinyos::AppInfo> apps_;
    std::vector<ConfigSpec> configs_;
};

} // namespace stos::core

#endif
