/**
 * @file
 * ArtifactStore: the on-disk, content-addressed backing store behind
 * StageCache — ccache semantics for the whole pipeline. Each stage
 * product is persisted under its chained content key
 * (appKey|safety|opt|backend fingerprints), so any process that
 * derives the same key reads the same artifact instead of re-running
 * the stage; a directory can be shared across processes and CI runs.
 *
 * Durability discipline:
 *  - writes go to a temp file, then an atomic rename — a crashed or
 *    concurrent writer can never leave a half-written artifact under
 *    the final name;
 *  - every artifact carries a format-version stamp and an FNV-1a
 *    payload hash — a version mismatch, truncation, or corruption
 *    degrades to a cache miss (the stage re-runs and rewrites),
 *    never to a wrong answer;
 *  - the full key string is stored and verified on read, so a file
 *    name hash collision is also just a miss.
 *
 * On-disk layout: one file per entry,
 *
 *   <dir>/<stage>-<fnv1a64(key) as 16 hex chars>.art
 *
 * with header  magic "STOSART1" | u32 version | u8 stage |
 * key string | u64 payload size | u64 payload hash | payload.
 */
#ifndef STOS_CORE_ARTIFACTSTORE_H
#define STOS_CORE_ARTIFACTSTORE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace stos::core {

/** The stages of the build graph, in dataflow order. */
enum class Stage { Frontend, Safety, Opt, Backend };

const char *stageName(Stage s);

/**
 * Store format version. Stamped into every artifact and into the CI
 * cache key; an artifact written by any other version is invalidated
 * (treated as a miss) on read. Bump whenever any serialized struct
 * (ir/serialize.cpp, backend/serialize.cpp, core/serialize.cpp)
 * changes shape.
 */
inline constexpr uint32_t kStoreFormatVersion = 2;

/** How an Experiment (or bench --cache-dir) binds to a store. */
struct CacheOptions {
    /** Store directory (created on demand). Empty = in-memory only. */
    std::string dir;
    /** Serve disk hits but never write back (shared read-only cache). */
    bool readOnly = false;
    /**
     * Soft size cap: after each write, oldest artifacts (by mtime)
     * are evicted until the directory fits. 0 = unbounded.
     */
    uint64_t maxBytes = 0;
};

/** Store activity counters (monotonic over the store's lifetime). */
struct ArtifactStoreStats {
    size_t diskHits = 0;     ///< loads served from a valid artifact
    size_t misses = 0;       ///< loads with no artifact on disk
    size_t corrupt = 0;      ///< artifacts rejected (version/hash/key)
    size_t writes = 0;       ///< artifacts written back
    size_t evictions = 0;    ///< artifacts removed by the size cap
    uint64_t bytesRead = 0;  ///< payload bytes of served hits
    uint64_t bytesWritten = 0;
};

class ArtifactStore {
  public:
    /** Opens (and creates) the store directory. Throws FatalError if
     *  the directory cannot be created. */
    explicit ArtifactStore(CacheOptions opts);
    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * Fetch the artifact for (stage, key) into `payload`. Returns
     * false on miss — including any rejected artifact (bad magic,
     * version mismatch, key mismatch, short file, payload hash
     * mismatch); a rejected file is unlinked so the rebuild's
     * write-back replaces it.
     */
    bool load(Stage stage, const std::string &key, std::string *payload);

    /**
     * Persist an artifact (no-op in read-only mode). Crash-safe:
     * temp file + atomic rename. Applies the maxBytes cap after the
     * write.
     */
    void store(Stage stage, const std::string &key,
               std::string_view payload);

    /** The artifact file path for (stage, key) — tests corrupt it. */
    std::string pathFor(Stage stage, const std::string &key) const;

    const CacheOptions &options() const { return opts_; }
    ArtifactStoreStats stats() const;

  private:
    void evictToFit();

    CacheOptions opts_;
    mutable std::mutex mu_;
    ArtifactStoreStats stats_;
    uint64_t tmpCounter_ = 0;
};

} // namespace stos::core

#endif
