/**
 * @file
 * StageCache implementation. Every stage follows the same pattern:
 * resolve the entry under the map mutex, then execute the stage body
 * at most once via the entry's once_flag (concurrent requesters block
 * on the first execution and share the product; failures are cached
 * and rethrown). A stage body requests its upstream product through
 * the cache, so chains nest strictly downstream -> upstream and can
 * never deadlock. Counters are relaxed atomics — they are statistics,
 * not synchronization.
 *
 * With a backing ArtifactStore attached, the once-body first consults
 * the store: a disk hit materializes the product without running the
 * stage (counted as a diskHit, never as executed), and a freshly
 * executed product is written back. Because a request chain stops at
 * its first hit, a fully warmed store serves a build from the single
 * backend artifact — the upstream stages are never even requested.
 * Failures are never persisted, so a failing stage re-runs (and
 * rethrows) per process.
 */
#include "core/stagecache.h"

#include <functional>

#include "support/binio.h"

namespace stos::core {

//---------------------------------------------------------------------
// Keys
//---------------------------------------------------------------------

std::string
StageCache::appKey(const tinyos::AppInfo &app)
{
    return appKey(app, tinyos::libSource());
}

std::string
StageCache::appKey(const tinyos::AppInfo &app,
                   const std::string &librarySource)
{
    // Content-keyed: two rows with the same name but different source
    // (a tweaked custom app) must not collide. The frontend parses
    // library + app together, so the library source is part of the
    // fingerprint — an edit to the shared TinyOS library must miss,
    // not silently serve stale products. The frontend is
    // platform-independent, so the platform is deliberately absent —
    // it enters the chain in the backend fingerprint. FNV-1a rather
    // than std::hash: keys name on-disk artifacts shared across
    // processes, so the hash must be stable across runs and builds.
    char hex[4 * sizeof(uint64_t) + 2];
    snprintf(hex, sizeof hex, "%llx.%llx",
             static_cast<unsigned long long>(support::fnv1a64(app.source)),
             static_cast<unsigned long long>(
                 support::fnv1a64(librarySource)));
    return app.name + "#" + hex;
}

std::string
StageCache::safetyKey(const tinyos::AppInfo &app,
                      const PipelineConfig &cfg)
{
    return appKey(app) + "|" + safetyFingerprint(cfg);
}

std::string
StageCache::optKey(const tinyos::AppInfo &app, const PipelineConfig &cfg)
{
    return safetyKey(app, cfg) + "|" + optFingerprint(cfg);
}

std::string
StageCache::buildKey(const tinyos::AppInfo &app,
                     const PipelineConfig &cfg)
{
    return optKey(app, cfg) + "|" + backendFingerprint(cfg);
}

//---------------------------------------------------------------------
// Store plumbing
//---------------------------------------------------------------------

template <typename T>
std::shared_ptr<const T>
StageCache::tryLoad(Stage stage, const std::string &key)
{
    if (!store_)
        return nullptr;
    std::string blob;
    if (!store_->load(stage, key, &blob))
        return nullptr;
    try {
        support::BinReader r(blob);
        auto product = std::make_shared<const T>(T::deserialize(r));
        return product;
    } catch (const support::TruncatedData &) {
        // Hash-valid artifact that fails to decode: a serializer
        // changed shape without a kStoreFormatVersion bump. Degrade
        // to a miss — the stage re-runs and its write-back replaces
        // the stale artifact.
        return nullptr;
    }
}

template <typename T>
void
StageCache::writeBack(Stage stage, const std::string &key,
                      const T &product)
{
    if (!store_)
        return;
    support::BinWriter w;
    product.serialize(w);
    store_->store(stage, key, w.data());
}

//---------------------------------------------------------------------
// Entries
//---------------------------------------------------------------------

template <typename T>
std::shared_ptr<StageCache::Entry<T>>
StageCache::entryFor(EntryMap<T> &map, const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = map[key];
    if (!slot)
        slot = std::make_shared<Entry<T>>();
    return slot;
}

std::shared_ptr<const FrontendProduct>
StageCache::frontend(const tinyos::AppInfo &app, StageHits *hits)
{
    const std::string key = appKey(app);
    auto entry = entryFor(frontends_, key);
    bool ran = false, disk = false;
    std::call_once(entry->once, [&] {
        ran = true;
        if ((entry->value = tryLoad<FrontendProduct>(Stage::Frontend,
                                                     key))) {
            disk = true;
            feDisk_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        try {
            entry->value = std::make_shared<const FrontendProduct>(
                runFrontend(app.name, app.source));
            writeBack(Stage::Frontend, key, *entry->value);
        } catch (...) {
            entry->error = std::current_exception();
        }
        feExec_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran)
        feReuse_.fetch_add(1, std::memory_order_relaxed);
    if (hits)
        hits->frontend = !ran || disk;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry->value;
}

std::shared_ptr<const SafetyProduct>
StageCache::safety(const tinyos::AppInfo &app, const PipelineConfig &cfg,
                   StageHits *hits)
{
    const std::string key = safetyKey(app, cfg);
    auto entry = entryFor(safeties_, key);
    bool ran = false, disk = false;
    std::call_once(entry->once, [&] {
        ran = true;
        if ((entry->value = tryLoad<SafetyProduct>(Stage::Safety, key))) {
            disk = true;
            saDisk_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        try {
            auto fe = frontend(app, hits);
            if (!cfg.safe) {
                // Unsafe pass-through: alias the frontend's module
                // rather than storing a clone — the product pins the
                // FrontendProduct alive but adds no module bytes.
                SafetyProduct sp;
                sp.module = std::shared_ptr<const ir::Module>(
                    fe, &fe->module);
                entry->value =
                    std::make_shared<const SafetyProduct>(std::move(sp));
            } else {
                entry->value = std::make_shared<const SafetyProduct>(
                    runSafetyStage(fe->module.clone(),
                                   fe->sourceManager.get(), cfg));
            }
            writeBack(Stage::Safety, key, *entry->value);
        } catch (...) {
            entry->error = std::current_exception();
        }
        saExec_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran) {
        saReuse_.fetch_add(1, std::memory_order_relaxed);
        if (hits)
            hits->frontend = true;  // served transitively
    }
    if (disk && hits)
        hits->frontend = true;  // the whole upstream chain was skipped
    if (hits)
        hits->safety = !ran || disk;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry->value;
}

std::shared_ptr<const OptProduct>
StageCache::opt(const tinyos::AppInfo &app, const PipelineConfig &cfg,
                StageHits *hits)
{
    const std::string key = optKey(app, cfg);
    auto entry = entryFor(opts_, key);
    bool ran = false, disk = false;
    std::call_once(entry->once, [&] {
        ran = true;
        if ((entry->value = tryLoad<OptProduct>(Stage::Opt, key))) {
            disk = true;
            opDisk_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        try {
            auto sp = safety(app, cfg, hits);
            // Pass config to the stage with the upstream product; the
            // no-cxprop pass-through shares sp's module pointer inside
            // runOptStage (no clone, no copy of the module).
            entry->value = std::make_shared<const OptProduct>(
                runOptStage({sp->module, sp->report}, cfg));
            writeBack(Stage::Opt, key, *entry->value);
        } catch (...) {
            entry->error = std::current_exception();
        }
        opExec_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran) {
        opReuse_.fetch_add(1, std::memory_order_relaxed);
        if (hits) {
            hits->frontend = true;
            hits->safety = true;
        }
    }
    if (disk && hits) {
        hits->frontend = true;
        hits->safety = true;
    }
    if (hits)
        hits->opt = !ran || disk;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry->value;
}

std::shared_ptr<const BuildResult>
StageCache::build(const tinyos::AppInfo &app, const PipelineConfig &cfg,
                  StageHits *hits)
{
    const std::string key = buildKey(app, cfg);
    auto entry = entryFor(builds_, key);
    bool ran = false, disk = false;
    std::call_once(entry->once, [&] {
        ran = true;
        if ((entry->value = tryLoad<BuildResult>(Stage::Backend, key))) {
            disk = true;
            beDisk_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        try {
            auto op = opt(app, cfg, hits);
            entry->value = std::make_shared<const BuildResult>(
                runBackendStage(
                    {op->module, op->safetyReport, op->report}, cfg));
            writeBack(Stage::Backend, key, *entry->value);
        } catch (...) {
            entry->error = std::current_exception();
        }
        beExec_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran) {
        beReuse_.fetch_add(1, std::memory_order_relaxed);
        if (hits) {
            hits->frontend = true;
            hits->safety = true;
            hits->opt = true;
        }
    }
    if (disk && hits) {
        hits->frontend = true;
        hits->safety = true;
        hits->opt = true;
    }
    if (hits)
        hits->backend = !ran || disk;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry->value;
}

//---------------------------------------------------------------------
// Companions
//---------------------------------------------------------------------

std::shared_ptr<StageCache::CompanionEntry>
StageCache::companionEntry(const std::string &name,
                           const std::string &platform, bool *builtHere)
{
    std::shared_ptr<CompanionEntry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = companions_[{name, platform}];
        if (!slot)
            slot = std::make_shared<CompanionEntry>();
        entry = slot;
    }
    bool ran = false;
    std::call_once(entry->once, [&] {
        ran = true;
        try {
            const auto &app = tinyos::appByName(name);
            PipelineConfig base = configFor(ConfigId::Baseline, platform);
            // The firmware itself is the ordinary backend entry of
            // (app, Baseline, platform) — shared with any matrix that
            // builds the same cell; this entry just aliases it and
            // memoizes the decode every simulating mote shares.
            auto br = build(app, base);
            entry->image = std::shared_ptr<const backend::MProgram>(
                br, &br->image);
            entry->decoded =
                std::make_shared<const sim::DecodedProgram>(
                    entry->image);
        } catch (...) {
            entry->error = std::current_exception();
        }
        coBuilds_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran)
        coHits_.fetch_add(1, std::memory_order_relaxed);
    if (builtHere)
        *builtHere = ran;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry;
}

std::shared_ptr<const backend::MProgram>
StageCache::companionImage(const std::string &name,
                           const std::string &platform, bool *builtHere)
{
    return companionEntry(name, platform, builtHere)->image;
}

std::shared_ptr<const sim::DecodedProgram>
StageCache::companionDecode(const std::string &name,
                            const std::string &platform, bool *builtHere)
{
    return companionEntry(name, platform, builtHere)->decoded;
}

//---------------------------------------------------------------------
// Memory release & stats
//---------------------------------------------------------------------

void
StageCache::releaseIntermediateProducts()
{
    // Entries still referenced by in-flight requesters stay alive via
    // their shared_ptrs; dropping the maps only releases the cache's
    // own pins. builds_ and companions_ are kept — they are the final
    // products drivers keep consuming.
    std::lock_guard<std::mutex> lock(mu_);
    frontends_.clear();
    safeties_.clear();
    opts_.clear();
}

StageCacheStats
StageCache::stats() const
{
    StageCacheStats s;
    s.frontend = {feExec_.load(), feReuse_.load(), feDisk_.load()};
    s.safety = {saExec_.load(), saReuse_.load(), saDisk_.load()};
    s.opt = {opExec_.load(), opReuse_.load(), opDisk_.load()};
    s.backend = {beExec_.load(), beReuse_.load(), beDisk_.load()};
    return s;
}

} // namespace stos::core
