/**
 * @file
 * StageCache implementation. Every stage follows the same pattern:
 * resolve the entry under the map mutex, then execute the stage body
 * at most once via the entry's once_flag (concurrent requesters block
 * on the first execution and share the product; failures are cached
 * and rethrown). A stage body requests its upstream product through
 * the cache, so chains nest strictly downstream -> upstream and can
 * never deadlock. Counters are relaxed atomics — they are statistics,
 * not synchronization.
 */
#include "core/stagecache.h"

#include <functional>

namespace stos::core {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Frontend: return "frontend";
      case Stage::Safety: return "safety";
      case Stage::Opt: return "opt";
      case Stage::Backend: return "backend";
    }
    return "?";
}

//---------------------------------------------------------------------
// Keys
//---------------------------------------------------------------------

std::string
StageCache::appKey(const tinyos::AppInfo &app)
{
    return appKey(app, tinyos::libSource());
}

std::string
StageCache::appKey(const tinyos::AppInfo &app,
                   const std::string &librarySource)
{
    // Content-keyed: two rows with the same name but different source
    // (a tweaked custom app) must not collide. The frontend parses
    // library + app together, so the library source is part of the
    // fingerprint — an edit to the shared TinyOS library must miss,
    // not silently serve stale products. The frontend is
    // platform-independent, so the platform is deliberately absent —
    // it enters the chain in the backend fingerprint.
    char hex[4 * sizeof(size_t) + 2];
    snprintf(hex, sizeof hex, "%zx.%zx",
             std::hash<std::string>{}(app.source),
             std::hash<std::string>{}(librarySource));
    return app.name + "#" + hex;
}

std::string
StageCache::safetyKey(const tinyos::AppInfo &app,
                      const PipelineConfig &cfg)
{
    return appKey(app) + "|" + safetyFingerprint(cfg);
}

std::string
StageCache::optKey(const tinyos::AppInfo &app, const PipelineConfig &cfg)
{
    return safetyKey(app, cfg) + "|" + optFingerprint(cfg);
}

std::string
StageCache::buildKey(const tinyos::AppInfo &app,
                     const PipelineConfig &cfg)
{
    return optKey(app, cfg) + "|" + backendFingerprint(cfg);
}

//---------------------------------------------------------------------
// Entries
//---------------------------------------------------------------------

template <typename T>
std::shared_ptr<StageCache::Entry<T>>
StageCache::entryFor(EntryMap<T> &map, const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = map[key];
    if (!slot)
        slot = std::make_shared<Entry<T>>();
    return slot;
}

std::shared_ptr<const FrontendProduct>
StageCache::frontend(const tinyos::AppInfo &app, StageHits *hits)
{
    auto entry = entryFor(frontends_, appKey(app));
    bool ran = false;
    std::call_once(entry->once, [&] {
        ran = true;
        try {
            entry->value = std::make_shared<const FrontendProduct>(
                runFrontend(app.name, app.source));
        } catch (...) {
            entry->error = std::current_exception();
        }
        feExec_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran)
        feReuse_.fetch_add(1, std::memory_order_relaxed);
    if (hits)
        hits->frontend = !ran;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry->value;
}

std::shared_ptr<const SafetyProduct>
StageCache::safety(const tinyos::AppInfo &app, const PipelineConfig &cfg,
                   StageHits *hits)
{
    auto entry = entryFor(safeties_, safetyKey(app, cfg));
    bool ran = false;
    std::call_once(entry->once, [&] {
        ran = true;
        try {
            auto fe = frontend(app, hits);
            entry->value = std::make_shared<const SafetyProduct>(
                runSafetyStage(fe->module.clone(),
                               fe->sourceManager.get(), cfg));
        } catch (...) {
            entry->error = std::current_exception();
        }
        saExec_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran) {
        saReuse_.fetch_add(1, std::memory_order_relaxed);
        if (hits)
            hits->frontend = true;  // served transitively
    }
    if (hits)
        hits->safety = !ran;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry->value;
}

std::shared_ptr<const OptProduct>
StageCache::opt(const tinyos::AppInfo &app, const PipelineConfig &cfg,
                StageHits *hits)
{
    auto entry = entryFor(opts_, optKey(app, cfg));
    bool ran = false;
    std::call_once(entry->once, [&] {
        ran = true;
        try {
            auto sp = safety(app, cfg, hits);
            entry->value = std::make_shared<const OptProduct>(
                runOptStage({sp->module.clone(), sp->report}, cfg));
        } catch (...) {
            entry->error = std::current_exception();
        }
        opExec_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran) {
        opReuse_.fetch_add(1, std::memory_order_relaxed);
        if (hits) {
            hits->frontend = true;
            hits->safety = true;
        }
    }
    if (hits)
        hits->opt = !ran;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry->value;
}

std::shared_ptr<const BuildResult>
StageCache::build(const tinyos::AppInfo &app, const PipelineConfig &cfg,
                  StageHits *hits)
{
    auto entry = entryFor(builds_, buildKey(app, cfg));
    bool ran = false;
    std::call_once(entry->once, [&] {
        ran = true;
        try {
            auto op = opt(app, cfg, hits);
            entry->value = std::make_shared<const BuildResult>(
                runBackendStage(
                    {op->module.clone(), op->safetyReport, op->report},
                    cfg));
        } catch (...) {
            entry->error = std::current_exception();
        }
        beExec_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran) {
        beReuse_.fetch_add(1, std::memory_order_relaxed);
        if (hits) {
            hits->frontend = true;
            hits->safety = true;
            hits->opt = true;
        }
    }
    if (hits)
        hits->backend = !ran;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry->value;
}

//---------------------------------------------------------------------
// Companions
//---------------------------------------------------------------------

std::shared_ptr<StageCache::CompanionEntry>
StageCache::companionEntry(const std::string &name,
                           const std::string &platform, bool *builtHere)
{
    std::shared_ptr<CompanionEntry> entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = companions_[{name, platform}];
        if (!slot)
            slot = std::make_shared<CompanionEntry>();
        entry = slot;
    }
    bool ran = false;
    std::call_once(entry->once, [&] {
        ran = true;
        try {
            const auto &app = tinyos::appByName(name);
            PipelineConfig base = configFor(ConfigId::Baseline, platform);
            // The firmware itself is the ordinary backend entry of
            // (app, Baseline, platform) — shared with any matrix that
            // builds the same cell; this entry just aliases it and
            // memoizes the decode every simulating mote shares.
            auto br = build(app, base);
            entry->image = std::shared_ptr<const backend::MProgram>(
                br, &br->image);
            entry->decoded =
                std::make_shared<const sim::DecodedProgram>(
                    entry->image);
        } catch (...) {
            entry->error = std::current_exception();
        }
        coBuilds_.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ran)
        coHits_.fetch_add(1, std::memory_order_relaxed);
    if (builtHere)
        *builtHere = ran;
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry;
}

std::shared_ptr<const backend::MProgram>
StageCache::companionImage(const std::string &name,
                           const std::string &platform, bool *builtHere)
{
    return companionEntry(name, platform, builtHere)->image;
}

std::shared_ptr<const sim::DecodedProgram>
StageCache::companionDecode(const std::string &name,
                            const std::string &platform, bool *builtHere)
{
    return companionEntry(name, platform, builtHere)->decoded;
}

//---------------------------------------------------------------------
// Stats
//---------------------------------------------------------------------

StageCacheStats
StageCache::stats() const
{
    StageCacheStats s;
    s.frontend = {feExec_.load(), feReuse_.load()};
    s.safety = {saExec_.load(), saReuse_.load()};
    s.opt = {opExec_.load(), opReuse_.load()};
    s.backend = {beExec_.load(), beReuse_.load()};
    return s;
}

} // namespace stos::core
