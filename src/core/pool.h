/**
 * @file
 * The shared worker-pool used by BuildDriver, SimDriver, and the
 * Experiment facade: a flat job index distributed over N threads by a
 * single atomic counter. Matrix drivers pass cell index -> (app,
 * config) mappings in the callback; the deterministic record slots
 * make the output independent of scheduling.
 */
#ifndef STOS_CORE_POOL_H
#define STOS_CORE_POOL_H

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace stos::core {

/**
 * Resolve a jobs request against the machine and the work: 0 means
 * hardware concurrency; never more threads than jobs; at least 1.
 */
inline unsigned
resolveJobs(unsigned requested, size_t nJobs)
{
    unsigned jobs = requested;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs > nJobs)
        jobs = static_cast<unsigned>(nJobs ? nJobs : 1);
    return jobs;
}

/**
 * Run fn(k) for every k in [0, nJobs) on `jobs` threads. Work is
 * claimed from a single atomic counter, so threads stay busy until
 * the matrix drains; `fn` must confine its effects to slot k (or be
 * internally synchronized, as the StageCache is).
 */
template <typename Fn>
inline void
runOnPool(unsigned jobs, size_t nJobs, Fn &&fn)
{
    if (nJobs == 0)
        return;
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (size_t k = next.fetch_add(1); k < nJobs;
             k = next.fetch_add(1))
            fn(k);
    };
    if (jobs <= 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
}

} // namespace stos::core

#endif
