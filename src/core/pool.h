/**
 * @file
 * The shared worker-pool used by BuildDriver, SimDriver, and the
 * Experiment facade: a flat job index distributed over N threads by a
 * single atomic counter. Matrix drivers pass cell index -> (app,
 * config) mappings in the callback; the deterministic record slots
 * make the output independent of scheduling.
 */
#ifndef STOS_CORE_POOL_H
#define STOS_CORE_POOL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace stos::core {

/**
 * Resolve a jobs request against the machine and the work: 0 means
 * hardware concurrency; never more threads than jobs; at least 1.
 */
inline unsigned
resolveJobs(unsigned requested, size_t nJobs)
{
    unsigned jobs = requested;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs > nJobs)
        jobs = static_cast<unsigned>(nJobs ? nJobs : 1);
    return jobs;
}

/**
 * Run fn(k) for every k in [0, nJobs) on `jobs` threads. Work is
 * claimed from a single atomic counter, so threads stay busy until
 * the matrix drains; `fn` must confine its effects to slot k (or be
 * internally synchronized, as the StageCache is).
 *
 * An exception escaping `fn` does not call std::terminate (the old
 * behaviour — an unwound worker thread): the first exception is
 * captured, every worker stops claiming new jobs and is joined, and
 * the exception is rethrown on the caller. Jobs already running when
 * the failure happens still complete.
 */
template <typename Fn>
inline void
runOnPool(unsigned jobs, size_t nJobs, Fn &&fn)
{
    if (nJobs == 0)
        return;
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errorMu;
    auto worker = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            size_t k = next.fetch_add(1);
            if (k >= nJobs)
                return;
            try {
                fn(k);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMu);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };
    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace stos::core

#endif
