/**
 * @file
 * The shared worker-pool used by BuildDriver, SimDriver, the
 * Experiment facade, and the simulator's window-parallel network
 * scheduler.
 *
 * WorkerPool owns a fixed set of persistent threads created once and
 * reused across batches — replacing the previous per-call
 * spawn-and-join, whose thread churn dominated short batches (a
 * window-parallel network run dispatches thousands of small batches
 * per simulated second). Work is a flat job index distributed by a
 * shared counter; matrix drivers pass cell index -> (app, config)
 * mappings in the callback, and the deterministic record slots make
 * the output independent of scheduling.
 *
 * The submitting thread always participates in draining its own
 * batch, which gives two properties for free:
 *
 *  - Nested submission cannot deadlock: a pool worker whose job
 *    submits a child batch drains that batch itself even when every
 *    other worker is busy.
 *  - A `width` cap (the --jobs request) bounds the total number of
 *    threads executing a batch — pool workers beyond the cap simply
 *    never join it.
 *
 * The first exception thrown by a job stops further claiming and is
 * rethrown on the submitting thread after every in-flight job of the
 * batch has completed.
 */
#ifndef STOS_CORE_POOL_H
#define STOS_CORE_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stos::core {

/**
 * Resolve a jobs request against the machine and the work: 0 means
 * hardware concurrency; never more threads than jobs; at least 1.
 */
inline unsigned
resolveJobs(unsigned requested, size_t nJobs)
{
    unsigned jobs = requested;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs > nJobs)
        jobs = static_cast<unsigned>(nJobs ? nJobs : 1);
    return jobs;
}

/** Persistent thread pool; see the file comment for the contract. */
class WorkerPool {
  public:
    /**
     * `threads` = number of persistent workers; 0 means hardware
     * concurrency minus one (the submitting thread is the missing
     * executor). A pool with zero workers is valid — every batch is
     * then drained entirely by its submitter.
     */
    explicit WorkerPool(unsigned threads = 0)
    {
        if (threads == 0) {
            unsigned hw = std::thread::hardware_concurrency();
            threads = hw > 1 ? hw - 1 : 0;
        }
        workers_.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &t : workers_)
            t.join();
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Persistent worker threads (not counting submitters). */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Run fn(k) for every k in [0, nJobs) with at most `width`
     * concurrent executors (including the calling thread, which
     * participates until the batch drains). Returns when every job
     * has completed; rethrows the first job exception.
     */
    void
    run(size_t nJobs, unsigned width,
        const std::function<void(size_t)> &fn)
    {
        if (nJobs == 0)
            return;
        if (width <= 1 || nJobs == 1) {
            // Serial fast path: no queueing, exceptions propagate
            // directly (identical outcome to a width-1 batch).
            for (size_t k = 0; k < nJobs; ++k)
                fn(k);
            return;
        }
        auto b = std::make_shared<Batch>();
        b->fn = &fn;
        b->nJobs = nJobs;
        b->width = width;
        std::unique_lock<std::mutex> lock(mu_);
        b->claimants = 1;  // the caller
        queue_.push_back(b);
        cv_.notify_all();
        drain(*b, lock);
        // Wait for in-flight jobs claimed by pool workers.
        b->done.wait(lock, [&] { return b->claimants == 0; });
        // Every claimant has left the batch; if it is still queued
        // (saturation never reached — e.g. a zero-worker pool, or an
        // early failure), unlink it.
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (*it == b) {
                queue_.erase(it);
                break;
            }
        }
        if (b->error)
            std::rethrow_exception(b->error);
    }

  private:
    struct Batch {
        const std::function<void(size_t)> *fn = nullptr;
        size_t nJobs = 0;
        unsigned width = 1;      ///< max concurrent executors
        unsigned claimants = 0;  ///< executors currently inside
        size_t next = 0;         ///< next unclaimed job index
        bool failed = false;
        std::exception_ptr error;
        std::condition_variable done;  ///< claimants reached 0
    };

    /**
     * Claim-and-execute loop, shared by workers and submitters. The
     * caller must hold `lock` and have registered itself in
     * b.claimants; returns with the lock held, after deregistering.
     * Workers go straight back to the queue afterwards; only the
     * submitter waits for claimants to reach zero.
     */
    void
    drain(Batch &b, std::unique_lock<std::mutex> &lock)
    {
        while (!b.failed && b.next < b.nJobs) {
            size_t k = b.next++;
            lock.unlock();
            try {
                (*b.fn)(k);
                lock.lock();
            } catch (...) {
                lock.lock();
                if (!b.error)
                    b.error = std::current_exception();
                b.failed = true;
            }
        }
        if (--b.claimants == 0)
            b.done.notify_all();
    }

    void
    workerLoop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            if (stop_)
                return;
            std::shared_ptr<Batch> b = queue_.front();
            ++b->claimants;
            // A batch leaves the queue once it cannot absorb another
            // executor: saturated, fully claimed, or failed.
            if (b->claimants >= b->width || b->next >= b->nJobs ||
                b->failed)
                queue_.pop_front();
            drain(*b, lock);
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Batch>> queue_;
    std::vector<std::thread> workers_;
    bool stop_ = false;
};

/**
 * The process-wide pool. Created on first use and joined at exit;
 * everything that used to spawn ad-hoc threads (matrix drivers, the
 * window-parallel network scheduler) shares these workers.
 */
inline WorkerPool &
sharedPool()
{
    static WorkerPool pool;
    return pool;
}

/**
 * Run fn(k) for every k in [0, nJobs) with at most `jobs` concurrent
 * executors, on the shared persistent pool. `fn` must confine its
 * effects to slot k (or be internally synchronized, as the StageCache
 * is).
 *
 * An exception escaping `fn` does not call std::terminate: the first
 * exception stops further claiming and is rethrown on the caller
 * after in-flight jobs complete.
 */
template <typename Fn>
inline void
runOnPool(unsigned jobs, size_t nJobs, Fn &&fn)
{
    if (nJobs == 0)
        return;
    if (jobs <= 1) {
        for (size_t k = 0; k < nJobs; ++k)
            fn(k);
        return;
    }
    std::function<void(size_t)> call = std::forward<Fn>(fn);
    sharedPool().run(nJobs, jobs, call);
}

} // namespace stos::core

#endif
