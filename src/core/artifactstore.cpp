/**
 * @file
 * ArtifactStore implementation. File I/O is plain fstream +
 * std::filesystem; cross-process safety rests entirely on the atomic
 * rename (readers see either the old complete artifact or the new
 * complete artifact, never a partial write) and on the payload hash
 * (anything else degrades to a miss).
 */
#include "core/artifactstore.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "support/binio.h"
#include "support/util.h"

namespace fs = std::filesystem;

namespace stos::core {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'O', 'S', 'A', 'R', 'T', '1'};
constexpr const char *kExt = ".art";

std::string
readWholeFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return {};
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return data;
}

} // namespace

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Frontend: return "frontend";
      case Stage::Safety: return "safety";
      case Stage::Opt: return "opt";
      case Stage::Backend: return "backend";
    }
    return "?";
}

ArtifactStore::ArtifactStore(CacheOptions opts) : opts_(std::move(opts))
{
    if (opts_.dir.empty())
        throw FatalError("ArtifactStore requires a directory");
    std::error_code ec;
    fs::create_directories(opts_.dir, ec);
    if (ec && !fs::is_directory(opts_.dir))
        throw FatalError("cannot create artifact store directory " +
                         opts_.dir + ": " + ec.message());
}

std::string
ArtifactStore::pathFor(Stage stage, const std::string &key) const
{
    return (fs::path(opts_.dir) /
            strfmt("%s-%016llx%s", stageName(stage),
                   static_cast<unsigned long long>(support::fnv1a64(key)),
                   kExt))
        .string();
}

bool
ArtifactStore::load(Stage stage, const std::string &key,
                    std::string *payload)
{
    const fs::path path = pathFor(stage, key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.misses;
        return false;
    }
    std::string data = readWholeFile(path);
    // Parse and verify the header; every failure mode — short file,
    // foreign magic, other store version, hash-collided key, length
    // or payload-hash mismatch — is one rejected artifact.
    bool ok = false;
    size_t payloadSize = 0;
    try {
        support::BinReader r(data);
        char magic[sizeof kMagic];
        for (char &c : magic)
            c = static_cast<char>(r.u8());
        if (std::string_view(magic, sizeof magic) !=
            std::string_view(kMagic, sizeof kMagic))
            throw support::TruncatedData("bad magic");
        if (r.u32() != kStoreFormatVersion)
            throw support::TruncatedData("store format version mismatch");
        if (r.u8() != static_cast<uint8_t>(stage))
            throw support::TruncatedData("stage mismatch");
        if (r.str() != key)
            throw support::TruncatedData("key mismatch (hash collision)");
        uint64_t size = r.u64();
        uint64_t hash = r.u64();
        if (size != r.remaining())
            throw support::TruncatedData("payload length mismatch");
        std::string_view body(data.data() + (data.size() - size),
                              static_cast<size_t>(size));
        if (support::fnv1a64(body) != hash)
            throw support::TruncatedData("payload hash mismatch");
        payload->assign(body.data(), body.size());
        payloadSize = body.size();
        ok = true;
    } catch (const support::TruncatedData &) {
        ok = false;
    }
    if (!ok) {
        // Unlink the rejected artifact so the rebuild's write-back
        // replaces it (and a read-only process stops re-parsing it).
        if (!opts_.readOnly)
            fs::remove(path, ec);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.corrupt;
        ++stats_.misses;
        return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.diskHits;
    stats_.bytesRead += payloadSize;
    return true;
}

void
ArtifactStore::store(Stage stage, const std::string &key,
                     std::string_view payload)
{
    if (opts_.readOnly)
        return;

    support::BinWriter w;
    for (char c : kMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(kStoreFormatVersion);
    w.u8(static_cast<uint8_t>(stage));
    w.str(key);
    w.u64(payload.size());
    w.u64(support::fnv1a64(payload));

    uint64_t tmpId;
    {
        std::lock_guard<std::mutex> lock(mu_);
        tmpId = ++tmpCounter_;
    }
    const fs::path path = pathFor(stage, key);
    const fs::path tmp =
        fs::path(opts_.dir) /
        strfmt(".tmp-%llu-%llu",
               static_cast<unsigned long long>(
                   support::fnv1a64(key) ^
                   reinterpret_cast<uintptr_t>(this)),
               static_cast<unsigned long long>(tmpId));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return;  // cache writes are best-effort, never fatal
        }
        out.write(w.data().data(),
                  static_cast<std::streamsize>(w.data().size()));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        out.flush();
        if (!out) {
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.writes;
        stats_.bytesWritten += payload.size();
    }
    if (opts_.maxBytes > 0)
        evictToFit();
}

void
ArtifactStore::evictToFit()
{
    // Scan the directory and drop oldest-mtime artifacts until the
    // total fits the cap. Serialized under the mutex so concurrent
    // writers don't double-evict; cross-process races just mean a
    // remove() of an already-removed file (ignored via error_code).
    std::lock_guard<std::mutex> lock(mu_);
    struct Item {
        fs::path path;
        uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Item> items;
    uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(opts_.dir, ec)) {
        if (de.path().extension() != kExt)
            continue;
        std::error_code fec;
        uint64_t sz = de.file_size(fec);
        if (fec)
            continue;
        items.push_back({de.path(), sz, de.last_write_time(fec)});
        total += sz;
    }
    if (total <= opts_.maxBytes)
        return;
    std::sort(items.begin(), items.end(),
              [](const Item &a, const Item &b) {
                  return a.mtime < b.mtime;
              });
    for (const Item &it : items) {
        if (total <= opts_.maxBytes)
            break;
        std::error_code rec;
        if (fs::remove(it.path, rec)) {
            total -= it.size;
            ++stats_.evictions;
        }
    }
}

ArtifactStoreStats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace stos::core
