/**
 * @file
 * BuildDriver: a thread-pooled batch compiler for the evaluation
 * matrices the paper's figures are built from — now a thin shim over
 * the pipeline's stage graph. Given a set of applications (rows) and
 * a set of configurations (columns), it compiles every cell
 * concurrently through a StageCache, so cells share every stage whose
 * content key matches (one frontend parse per app, one safety run per
 * (app, safety-fingerprint), ...), and collects the results into a
 * single report with deterministic app-major ordering regardless of
 * scheduling. New code should prefer the Experiment facade
 * (core/experiment.h), which pairs the build matrix with its
 * simulations behind one API.
 */
#ifndef STOS_CORE_DRIVER_H
#define STOS_CORE_DRIVER_H

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace stos::core {

class StageCache;

struct DriverOptions {
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /**
     * Memoize the stage graph: every cell is served through a
     * StageCache, sharing frontend/safety/opt/backend products
     * between cells with matching content keys. Off = cold-build
     * every cell from source (the serial-equivalent behaviour the
     * speed benchmark and the equivalence gates compare against).
     * (Historical name: the driver once memoized the frontend only.)
     */
    bool memoizeFrontend = true;
};

/** One column of the evaluation matrix. */
struct ConfigSpec {
    std::string label;
    /** Build the PipelineConfig for an app's platform. */
    std::function<PipelineConfig(const std::string &platform)> make;
};

/** One cell of the built matrix. */
struct BuildRecord {
    std::string app;
    std::string platform;
    std::string config;       ///< column label
    /** The app's sensor-network companions (from its AppInfo), so
     *  downstream consumers (SimDriver) need no registry lookup. */
    std::vector<std::string> companions;
    uint32_t appIndex = 0;    ///< row in the requested matrix
    uint32_t configIndex = 0; ///< column in the requested matrix
    bool frontendReused = false; ///< frontend served from the cache
    bool safetyReused = false;   ///< safety stage served from the cache
    bool optReused = false;      ///< opt stage served from the cache
    bool backendReused = false;  ///< whole build served from the cache
    bool ok = false;
    std::string error;        ///< populated when the build failed
    /**
     * The cell's build product, shared immutably with the StageCache
     * (and any other cell of the same content key) — null unless ok.
     */
    std::shared_ptr<const BuildResult> result;
    double millis = 0.0;      ///< wall time of this cell's build
};

/** The whole matrix, app-major then config-minor (request order). */
struct BuildReport {
    size_t numApps = 0;
    size_t numConfigs = 0;
    std::vector<BuildRecord> records;
    size_t frontendParses = 0;  ///< frontend runs actually executed
    size_t frontendReuses = 0;  ///< cells served from the memo
    size_t safetyRuns = 0;      ///< safety stage executions
    size_t safetyReuses = 0;    ///< cells whose safety stage was shared
    size_t optRuns = 0;         ///< opt stage executions
    size_t optReuses = 0;       ///< cells whose opt stage was shared
    size_t backendRuns = 0;     ///< backend stage executions
    size_t backendReuses = 0;   ///< cells served whole from the cache
    double wallMillis = 0.0;
    unsigned jobsUsed = 1;

    BuildRecord &at(size_t app, size_t cfg);
    const BuildRecord &at(size_t app, size_t cfg) const;
    /** Lookup by app name + column label; null if absent. */
    const BuildRecord *find(const std::string &app,
                            const std::string &config) const;
    bool allOk() const;
    /** Total post-frontend stage reuse (the stage-cache win). */
    size_t stageReuses() const
    {
        return safetyReuses + optReuses + backendReuses;
    }
    /** One-line stats string for benchmark headers. */
    std::string summary() const;

    /** One row per cell (RFC-4180 quoting), header line included. */
    void emitCsv(std::ostream &os) const;
    /** Matrix metadata + one object per cell. */
    void emitJson(std::ostream &os) const;
};

/**
 * Batch compiler. Configure rows (apps) and columns (configs), then
 * run() the matrix. run() is const: one driver can be run repeatedly
 * (e.g. serial vs parallel) over the same matrix.
 */
class BuildDriver {
  public:
    explicit BuildDriver(DriverOptions opts = {}) : opts_(opts) {}

    BuildDriver &addApp(const tinyos::AppInfo &app);
    BuildDriver &addApps(const std::vector<tinyos::AppInfo> &apps);
    /** The whole registry corpus (paper + expanded families). */
    BuildDriver &addAllApps();

    BuildDriver &addConfig(ConfigId id);
    BuildDriver &addConfigs(const std::vector<ConfigId> &ids);
    BuildDriver &addStrategy(CheckStrategy s);
    BuildDriver &addStrategies(const std::vector<CheckStrategy> &ss);
    /** Arbitrary column, e.g. an ablation tweak of a named config. */
    BuildDriver &
    addCustom(std::string label,
              std::function<PipelineConfig(const std::string &)> make);

    size_t numApps() const { return apps_.size(); }
    size_t numConfigs() const { return configs_.size(); }
    const std::vector<tinyos::AppInfo> &apps() const { return apps_; }
    const std::vector<ConfigSpec> &configs() const { return configs_; }
    DriverOptions &options() { return opts_; }

    /** Run the matrix over a fresh per-run StageCache. */
    BuildReport run() const;
    /**
     * As above, but stage products come from (and persist in) the
     * caller's cache, so repeated runs — equivalence gates, or the
     * Experiment facade's build+sim pairing — rebuild nothing. The
     * report's per-stage run counters cover this run only.
     */
    BuildReport run(StageCache &cache) const;

    /** All apps × (baseline + the seven Figure-3 configurations). */
    static BuildReport figure3Matrix(DriverOptions opts = {});
    /** All apps × the four Figure-2 check-elimination strategies. */
    static BuildReport figure2Matrix(DriverOptions opts = {});

    /**
     * Deep equivalence of two build results (sizes, reports,
     * surviving checks, final IR text). `why` gets the first
     * difference when non-null.
     */
    static bool resultsEquivalent(const BuildResult &a,
                                  const BuildResult &b,
                                  std::string *why = nullptr);
    /** Record-level equivalence: identity fields + resultsEquivalent. */
    static bool recordsEquivalent(const BuildRecord &a,
                                  const BuildRecord &b,
                                  std::string *why = nullptr);

  private:
    DriverOptions opts_;
    std::vector<tinyos::AppInfo> apps_;
    std::vector<ConfigSpec> configs_;
};

} // namespace stos::core

#endif
