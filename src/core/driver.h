/**
 * @file
 * BuildDriver: a thread-pooled batch compiler for the evaluation
 * matrices the paper's figures are built from. Given a set of
 * applications (rows) and a set of configurations (columns), it
 * compiles every cell concurrently, memoizing the config-independent
 * frontend stage per app (parse once, clone the IR module per
 * configuration) and collecting the results into a single report with
 * deterministic app-major ordering regardless of scheduling.
 */
#ifndef STOS_CORE_DRIVER_H
#define STOS_CORE_DRIVER_H

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace stos::core {

struct DriverOptions {
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /**
     * Parse each app once and clone the module per configuration.
     * Off = re-run the frontend for every cell (the serial-equivalent
     * behaviour the speed benchmark compares against).
     */
    bool memoizeFrontend = true;
};

/** One column of the evaluation matrix. */
struct ConfigSpec {
    std::string label;
    /** Build the PipelineConfig for an app's platform. */
    std::function<PipelineConfig(const std::string &platform)> make;
};

/** One cell of the built matrix. */
struct BuildRecord {
    std::string app;
    std::string platform;
    std::string config;       ///< column label
    /** The app's sensor-network companions (from its AppInfo), so
     *  downstream consumers (SimDriver) need no registry lookup. */
    std::vector<std::string> companions;
    uint32_t appIndex = 0;    ///< row in the requested matrix
    uint32_t configIndex = 0; ///< column in the requested matrix
    bool frontendReused = false; ///< built from a memoized frontend clone
    bool ok = false;
    std::string error;        ///< populated when the build failed
    BuildResult result;       ///< valid only when ok
    double millis = 0.0;      ///< wall time of this cell's build
};

/** The whole matrix, app-major then config-minor (request order). */
struct BuildReport {
    size_t numApps = 0;
    size_t numConfigs = 0;
    std::vector<BuildRecord> records;
    size_t frontendParses = 0;  ///< frontend runs actually executed
    size_t frontendReuses = 0;  ///< cells served from the memo
    double wallMillis = 0.0;
    unsigned jobsUsed = 1;

    BuildRecord &at(size_t app, size_t cfg);
    const BuildRecord &at(size_t app, size_t cfg) const;
    /** Lookup by app name + column label; null if absent. */
    const BuildRecord *find(const std::string &app,
                            const std::string &config) const;
    bool allOk() const;
    /** One-line stats string for benchmark headers. */
    std::string summary() const;

    /** One row per cell (RFC-4180 quoting), header line included. */
    void emitCsv(std::ostream &os) const;
    /** Matrix metadata + one object per cell. */
    void emitJson(std::ostream &os) const;
};

/**
 * Batch compiler. Configure rows (apps) and columns (configs), then
 * run() the matrix. run() is const: one driver can be run repeatedly
 * (e.g. serial vs parallel) over the same matrix.
 */
class BuildDriver {
  public:
    explicit BuildDriver(DriverOptions opts = {}) : opts_(opts) {}

    BuildDriver &addApp(const tinyos::AppInfo &app);
    BuildDriver &addApps(const std::vector<tinyos::AppInfo> &apps);
    /** All twelve benchmark applications. */
    BuildDriver &addAllApps();

    BuildDriver &addConfig(ConfigId id);
    BuildDriver &addConfigs(const std::vector<ConfigId> &ids);
    BuildDriver &addStrategy(CheckStrategy s);
    BuildDriver &addStrategies(const std::vector<CheckStrategy> &ss);
    /** Arbitrary column, e.g. an ablation tweak of a named config. */
    BuildDriver &
    addCustom(std::string label,
              std::function<PipelineConfig(const std::string &)> make);

    size_t numApps() const { return apps_.size(); }
    size_t numConfigs() const { return configs_.size(); }
    DriverOptions &options() { return opts_; }

    BuildReport run() const;

    /** All apps × (baseline + the seven Figure-3 configurations). */
    static BuildReport figure3Matrix(DriverOptions opts = {});
    /** All apps × the four Figure-2 check-elimination strategies. */
    static BuildReport figure2Matrix(DriverOptions opts = {});

    /**
     * Deep equivalence of two build results (sizes, reports,
     * surviving checks, final IR text). `why` gets the first
     * difference when non-null.
     */
    static bool resultsEquivalent(const BuildResult &a,
                                  const BuildResult &b,
                                  std::string *why = nullptr);
    /** Record-level equivalence: identity fields + resultsEquivalent. */
    static bool recordsEquivalent(const BuildRecord &a,
                                  const BuildRecord &b,
                                  std::string *why = nullptr);

  private:
    DriverOptions opts_;
    std::vector<tinyos::AppInfo> apps_;
    std::vector<ConfigSpec> configs_;
};

} // namespace stos::core

#endif
