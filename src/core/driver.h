/**
 * @file
 * The build-matrix vocabulary (ConfigSpec / BuildRecord /
 * BuildReport) shared by the Experiment facade, plus the BuildDriver
 * equivalence helpers. The actual batch-compile engine (worker pool,
 * StageCache accounting, ArtifactStore plumbing) lives in
 * core/experiment.cpp; declare matrices on an Experiment directly.
 */
#ifndef STOS_CORE_DRIVER_H
#define STOS_CORE_DRIVER_H

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace stos::core {

struct DriverOptions {
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /**
     * Memoize the stage graph: every cell is served through a
     * StageCache, sharing frontend/safety/opt/backend products
     * between cells with matching content keys. Off = cold-build
     * every cell from source (the serial-equivalent behaviour the
     * speed benchmark and the equivalence gates compare against).
     * (Historical name: the driver once memoized the frontend only.)
     */
    bool memoizeFrontend = true;
};

/** One column of the evaluation matrix. */
struct ConfigSpec {
    std::string label;
    /** Build the PipelineConfig for an app's platform. */
    std::function<PipelineConfig(const std::string &platform)> make;
};

/** One cell of the built matrix. */
struct BuildRecord {
    std::string app;
    std::string platform;
    std::string config;       ///< column label
    /** The app's sensor-network companions (from its AppInfo), so
     *  downstream consumers (SimDriver) need no registry lookup. */
    std::vector<std::string> companions;
    uint32_t appIndex = 0;    ///< row in the requested matrix
    uint32_t configIndex = 0; ///< column in the requested matrix
    bool frontendReused = false; ///< frontend served from the cache
    bool safetyReused = false;   ///< safety stage served from the cache
    bool optReused = false;      ///< opt stage served from the cache
    bool backendReused = false;  ///< whole build served from the cache
    bool ok = false;
    std::string error;        ///< populated when the build failed
    /**
     * The cell's build product, shared immutably with the StageCache
     * (and any other cell of the same content key) — null unless ok.
     */
    std::shared_ptr<const BuildResult> result;
    double millis = 0.0;      ///< wall time of this cell's build
};

/** The whole matrix, app-major then config-minor (request order). */
struct BuildReport {
    size_t numApps = 0;
    size_t numConfigs = 0;
    std::vector<BuildRecord> records;
    size_t frontendParses = 0;  ///< frontend runs actually executed
    size_t frontendReuses = 0;  ///< cells served from the memo
    size_t safetyRuns = 0;      ///< safety stage executions
    size_t safetyReuses = 0;    ///< cells whose safety stage was shared
    size_t optRuns = 0;         ///< opt stage executions
    size_t optReuses = 0;       ///< cells whose opt stage was shared
    size_t backendRuns = 0;     ///< backend stage executions
    size_t backendReuses = 0;   ///< cells served whole from the cache
    size_t frontendDiskHits = 0; ///< frontends loaded from the store
    size_t safetyDiskHits = 0;   ///< safety products loaded from disk
    size_t optDiskHits = 0;      ///< opt products loaded from disk
    size_t backendDiskHits = 0;  ///< whole builds loaded from disk
    uint64_t cacheBytesRead = 0;    ///< artifact payload bytes read
    uint64_t cacheBytesWritten = 0; ///< artifact payload bytes written
    double wallMillis = 0.0;
    unsigned jobsUsed = 1;

    BuildRecord &at(size_t app, size_t cfg);
    const BuildRecord &at(size_t app, size_t cfg) const;
    /** Lookup by app name + column label; null if absent. */
    const BuildRecord *find(const std::string &app,
                            const std::string &config) const;
    bool allOk() const;
    /** Total post-frontend stage reuse (the stage-cache win). */
    size_t stageReuses() const
    {
        return safetyReuses + optReuses + backendReuses;
    }
    /** Stage products this run materialized from the artifact store. */
    size_t diskHits() const
    {
        return frontendDiskHits + safetyDiskHits + optDiskHits +
               backendDiskHits;
    }
    /** One-line stats string for benchmark headers. */
    std::string summary() const;

    /** One row per cell (RFC-4180 quoting), header line included. */
    void emitCsv(std::ostream &os) const;
    /** Matrix metadata + one object per cell. */
    void emitJson(std::ostream &os) const;
};

/**
 * Build-matrix equivalence vocabulary. The batch-compile engine
 * (worker pool, stage-cache accounting, artifact-store plumbing)
 * lives in the Experiment facade (core/experiment.h); declare
 * matrices on an Experiment directly. The parallel/memoized build
 * paths are gated against the serial reference with the helpers
 * below.
 */
class BuildDriver {
  public:
    /**
     * Deep equivalence of two build results (sizes, reports,
     * surviving checks, final IR text). `why` gets the first
     * difference when non-null.
     */
    static bool resultsEquivalent(const BuildResult &a,
                                  const BuildResult &b,
                                  std::string *why = nullptr);
    /** Record-level equivalence: identity fields + resultsEquivalent. */
    static bool recordsEquivalent(const BuildRecord &a,
                                  const BuildRecord &b,
                                  std::string *why = nullptr);
};

} // namespace stos::core

#endif
