/**
 * @file
 * Simulation-matrix vocabulary: SimReport emitters and joins, plus
 * the SimDriver equivalence helpers. The simulation engine itself
 * lives in core/experiment.cpp (Experiment::simulateBuilds).
 */
#include "core/simdriver.h"

#include <ostream>

#include "support/util.h"

namespace stos::core {

namespace {

/** Shared CSV tail of one successful outcome: the fault/recovery
 *  columns every emitter appends after `failed_flid`. */
std::string
faultCsvCells(const SimOutcome &o)
{
    return strfmt(",%u,%u,%u,%u,%llu,%llu,%.9f,%u,%u,%u", o.traps,
                  o.cfiTraps, o.reboots, o.crashes,
                  static_cast<unsigned long long>(o.downCycles),
                  static_cast<unsigned long long>(o.wedgedCycles),
                  o.availability, o.packetsDropped,
                  o.packetsCorrupted, o.packetsDuplicated);
}

/** Shared JSON fields for the same columns, plus the trap log. */
std::string
faultJsonFields(const SimOutcome &o)
{
    std::string s = strfmt(
        ", \"traps\": %u, \"cfi_traps\": %u, \"reboots\": %u"
        ", \"crashes\": %u"
        ", \"down_cycles\": %llu, \"wedged_cycles\": %llu"
        ", \"availability\": %.9f, \"packets_dropped\": %u"
        ", \"packets_corrupted\": %u, \"packets_duplicated\": %u",
        o.traps, o.cfiTraps, o.reboots, o.crashes,
        static_cast<unsigned long long>(o.downCycles),
        static_cast<unsigned long long>(o.wedgedCycles),
        o.availability, o.packetsDropped, o.packetsCorrupted,
        o.packetsDuplicated);
    s += ", \"trap_log\": [";
    for (size_t i = 0; i < o.trapLog.size(); ++i) {
        const sim::TrapEntry &t = o.trapLog[i];
        s += strfmt("%s{\"flid\": %u, \"cycle\": %llu, \"pc\": %u"
                    ", \"kind\": %u}",
                    i ? ", " : "", t.flid,
                    static_cast<unsigned long long>(t.cycle), t.pc,
                    static_cast<unsigned>(t.kind));
    }
    s += "]";
    return s;
}

/** CSV header segment / failure padding for the fault columns. */
constexpr const char *kFaultCsvHeader =
    "traps,cfi_traps,reboots,crashes,down_cycles,wedged_cycles,"
    "availability,packets_dropped,packets_corrupted,"
    "packets_duplicated";
constexpr const char *kFaultCsvEmpty = ",,,,,,,,,,";

} // namespace

//---------------------------------------------------------------------
// SimReport
//---------------------------------------------------------------------

SimRecord &
SimReport::at(size_t app, size_t cfg)
{
    return records.at(app * numConfigs + cfg);
}

const SimRecord &
SimReport::at(size_t app, size_t cfg) const
{
    return records.at(app * numConfigs + cfg);
}

const SimRecord *
SimReport::find(const std::string &app, const std::string &config) const
{
    for (const auto &r : records) {
        if (r.app == app && r.config == config)
            return &r;
    }
    return nullptr;
}

bool
SimReport::allOk() const
{
    for (const auto &r : records) {
        if (!r.ok)
            return false;
    }
    return true;
}

std::string
SimReport::summary() const
{
    return strfmt("%zu apps x %zu configs = %zu simulations of %gs "
                  "in %.0f ms (%u jobs, %zu companion builds, "
                  "%zu companion reuses)",
                  numApps, numConfigs, records.size(), seconds,
                  wallMillis, jobsUsed, companionBuilds,
                  companionReuses);
}

void
SimReport::emitCsv(std::ostream &os) const
{
    os << "app,platform,config,app_index,config_index,ok,error,"
          "duty_cycle,awake_cycles,total_cycles,instructions,halted,"
          "wedged,failed_flid,"
       << kFaultCsvHeader << ",uart_bytes,companions_reused,millis\n";
    for (const auto &r : records) {
        os << csvField(r.app) << ',' << csvField(r.platform) << ','
           << csvField(r.config) << ',' << r.appIndex << ','
           << r.configIndex << ',' << (r.ok ? 1 : 0) << ','
           << csvField(r.error);
        if (r.ok) {
            os << ',' << strfmt("%.9f", r.outcome.dutyCycle) << ','
               << r.outcome.awakeCycles << ',' << r.outcome.totalCycles
               << ',' << r.outcome.instructions << ','
               << (r.outcome.halted ? 1 : 0) << ','
               << (r.outcome.wedged ? 1 : 0) << ','
               << r.outcome.failedFlid << faultCsvCells(r.outcome)
               << ',' << r.outcome.uartLog.size();
        } else {
            os << ",,,,,,,," << kFaultCsvEmpty;
        }
        os << ',' << (r.companionsReused ? 1 : 0) << ','
           << strfmt("%.3f", r.millis) << '\n';
    }
}

void
SimReport::emitJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"kind\": \"sim_report\",\n"
       << "  \"num_apps\": " << numApps << ",\n"
       << "  \"num_configs\": " << numConfigs << ",\n"
       << "  \"seconds\": " << strfmt("%g", seconds) << ",\n"
       << "  \"jobs_used\": " << jobsUsed << ",\n"
       << "  \"companion_builds\": " << companionBuilds << ",\n"
       << "  \"companion_reuses\": " << companionReuses << ",\n"
       << "  \"wall_millis\": " << strfmt("%.3f", wallMillis) << ",\n"
       << "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const SimRecord &r = records[i];
        os << "    {\"app\": \"" << jsonEscape(r.app)
           << "\", \"platform\": \"" << jsonEscape(r.platform)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"app_index\": " << r.appIndex
           << ", \"config_index\": " << r.configIndex
           << ", \"ok\": " << (r.ok ? "true" : "false")
           << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        if (r.ok) {
            os << ", \"duty_cycle\": "
               << strfmt("%.9f", r.outcome.dutyCycle)
               << ", \"awake_cycles\": " << r.outcome.awakeCycles
               << ", \"total_cycles\": " << r.outcome.totalCycles
               << ", \"instructions\": " << r.outcome.instructions
               << ", \"halted\": " << (r.outcome.halted ? "true" : "false")
               << ", \"wedged\": " << (r.outcome.wedged ? "true" : "false")
               << ", \"failed_flid\": " << r.outcome.failedFlid
               << faultJsonFields(r.outcome)
               << ", \"uart_bytes\": " << r.outcome.uartLog.size();
        }
        os << ", \"companions_reused\": "
           << (r.companionsReused ? "true" : "false")
           << ", \"millis\": " << strfmt("%.3f", r.millis) << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

namespace {

/** Verify `builds` and `sims` describe the same matrix cells. */
void
checkJoinable(const BuildReport &builds, const SimReport &sims)
{
    if (builds.numApps != sims.numApps ||
        builds.numConfigs != sims.numConfigs ||
        builds.records.size() != sims.records.size())
        throw FatalError("joined reports have different shapes");
    for (size_t i = 0; i < sims.records.size(); ++i) {
        const BuildRecord &b = builds.records[i];
        const SimRecord &s = sims.records[i];
        if (b.app != s.app || b.platform != s.platform ||
            b.config != s.config)
            throw FatalError("joined reports describe different cells: " +
                             b.app + "/" + b.config + " vs " + s.app +
                             "/" + s.config);
    }
}

} // namespace

void
SimReport::joinCsv(const BuildReport &builds, std::ostream &os) const
{
    checkJoinable(builds, *this);
    os << "app,platform,config,app_index,config_index,"
          "build_ok,sim_ok,error,"
          "code_bytes,ram_bytes,rom_data_bytes,surviving_checks,"
          "duty_cycle,awake_cycles,total_cycles,instructions,halted,"
          "wedged,failed_flid,"
       << kFaultCsvHeader
       << ",uart_bytes,build_millis,sim_millis\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const BuildRecord &b = builds.records[i];
        const SimRecord &s = records[i];
        os << csvField(s.app) << ',' << csvField(s.platform) << ','
           << csvField(s.config) << ',' << s.appIndex << ','
           << s.configIndex << ',' << (b.ok ? 1 : 0) << ','
           << (s.ok ? 1 : 0) << ','
           << csvField(s.ok ? std::string() : s.error);
        if (b.ok) {
            os << ',' << b.result->codeBytes << ',' << b.result->ramBytes
               << ',' << b.result->romDataBytes << ','
               << b.result->survivingChecks;
        } else {
            os << ",,,,";
        }
        if (s.ok) {
            os << ',' << strfmt("%.9f", s.outcome.dutyCycle) << ','
               << s.outcome.awakeCycles << ',' << s.outcome.totalCycles
               << ',' << s.outcome.instructions << ','
               << (s.outcome.halted ? 1 : 0) << ','
               << (s.outcome.wedged ? 1 : 0) << ','
               << s.outcome.failedFlid << faultCsvCells(s.outcome)
               << ',' << s.outcome.uartLog.size();
        } else {
            os << ",,,,,,,," << kFaultCsvEmpty;
        }
        os << ',' << strfmt("%.3f", b.millis) << ','
           << strfmt("%.3f", s.millis) << '\n';
    }
}

void
SimReport::joinJson(const BuildReport &builds, std::ostream &os) const
{
    checkJoinable(builds, *this);
    os << "{\n"
       << "  \"kind\": \"joined_report\",\n"
       << "  \"num_apps\": " << numApps << ",\n"
       << "  \"num_configs\": " << numConfigs << ",\n"
       << "  \"seconds\": " << strfmt("%g", seconds) << ",\n"
       // Stage-cache counters of the build phase, so the cache win
       // (safety runs << cells) is visible in the joined artifact and
       // CI can validate every stage's run/reuse count against the
       // matrix's distinct content keys.
       << "  \"frontend_parses\": " << builds.frontendParses << ",\n"
       << "  \"frontend_reuses\": " << builds.frontendReuses << ",\n"
       << "  \"safety_runs\": " << builds.safetyRuns << ",\n"
       << "  \"safety_reuses\": " << builds.safetyReuses << ",\n"
       << "  \"opt_runs\": " << builds.optRuns << ",\n"
       << "  \"opt_reuses\": " << builds.optReuses << ",\n"
       << "  \"backend_runs\": " << builds.backendRuns << ",\n"
       << "  \"backend_reuses\": " << builds.backendReuses << ",\n"
       << "  \"stage_reuses\": " << builds.stageReuses() << ",\n"
       // Artifact-store counters: a warmed --cache-dir run shows every
       // *_runs above as 0 with the work accounted for here instead.
       << "  \"frontend_disk_hits\": " << builds.frontendDiskHits
       << ",\n"
       << "  \"safety_disk_hits\": " << builds.safetyDiskHits << ",\n"
       << "  \"opt_disk_hits\": " << builds.optDiskHits << ",\n"
       << "  \"backend_disk_hits\": " << builds.backendDiskHits << ",\n"
       << "  \"disk_hits\": " << builds.diskHits() << ",\n"
       << "  \"cache_bytes_read\": " << builds.cacheBytesRead << ",\n"
       << "  \"cache_bytes_written\": " << builds.cacheBytesWritten
       << ",\n"
       << "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const BuildRecord &b = builds.records[i];
        const SimRecord &s = records[i];
        os << "    {\"app\": \"" << jsonEscape(s.app)
           << "\", \"platform\": \"" << jsonEscape(s.platform)
           << "\", \"config\": \"" << jsonEscape(s.config)
           << "\", \"app_index\": " << s.appIndex
           << ", \"config_index\": " << s.configIndex
           << ", \"build_ok\": " << (b.ok ? "true" : "false")
           << ", \"sim_ok\": " << (s.ok ? "true" : "false");
        if (b.ok) {
            os << ", \"code_bytes\": " << b.result->codeBytes
               << ", \"ram_bytes\": " << b.result->ramBytes
               << ", \"rom_data_bytes\": " << b.result->romDataBytes
               << ", \"surviving_checks\": "
               << b.result->survivingChecks;
        }
        if (s.ok) {
            os << ", \"duty_cycle\": "
               << strfmt("%.9f", s.outcome.dutyCycle)
               << ", \"awake_cycles\": " << s.outcome.awakeCycles
               << ", \"total_cycles\": " << s.outcome.totalCycles
               << ", \"instructions\": " << s.outcome.instructions
               << ", \"halted\": "
               << (s.outcome.halted ? "true" : "false")
               << ", \"wedged\": "
               << (s.outcome.wedged ? "true" : "false")
               << ", \"failed_flid\": " << s.outcome.failedFlid
               << faultJsonFields(s.outcome)
               << ", \"uart_bytes\": " << s.outcome.uartLog.size();
        } else {
            os << ", \"error\": \"" << jsonEscape(s.error) << "\"";
        }
        os << ", \"build_millis\": " << strfmt("%.3f", b.millis)
           << ", \"sim_millis\": " << strfmt("%.3f", s.millis) << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

//---------------------------------------------------------------------
// Equivalence
//---------------------------------------------------------------------

bool
SimDriver::recordsEquivalent(const SimRecord &a, const SimRecord &b,
                             std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.app != b.app || a.config != b.config)
        return fail("record identity differs: " + a.app + "/" +
                    a.config + " vs " + b.app + "/" + b.config);
    if (a.appIndex != b.appIndex || a.configIndex != b.configIndex)
        return fail("record matrix position differs");
    if (a.ok != b.ok)
        return fail(a.app + "/" + a.config + ": one record failed (" +
                    (a.ok ? "second" : "first") + "): " +
                    (a.ok ? b.error : a.error));
    if (!a.ok)
        return a.error == b.error ? true : fail("error text differs");
    auto cell = [&](const char *field, auto va, auto vb) {
        return fail(strfmt("%s/%s: %s %llu != %llu", a.app.c_str(),
                           a.config.c_str(), field,
                           static_cast<unsigned long long>(va),
                           static_cast<unsigned long long>(vb)));
    };
    if (a.outcome.awakeCycles != b.outcome.awakeCycles)
        return cell("awakeCycles", a.outcome.awakeCycles,
                    b.outcome.awakeCycles);
    if (a.outcome.totalCycles != b.outcome.totalCycles)
        return cell("totalCycles", a.outcome.totalCycles,
                    b.outcome.totalCycles);
    if (a.outcome.instructions != b.outcome.instructions)
        return cell("instructions", a.outcome.instructions,
                    b.outcome.instructions);
    if (a.outcome.dutyCycle != b.outcome.dutyCycle)
        return fail(a.app + "/" + a.config + ": dutyCycle differs");
    if (a.outcome.halted != b.outcome.halted)
        return fail(a.app + "/" + a.config + ": halted differs");
    if (a.outcome.wedged != b.outcome.wedged)
        return fail(a.app + "/" + a.config + ": wedged differs");
    if (a.outcome.failedFlid != b.outcome.failedFlid)
        return cell("failedFlid", a.outcome.failedFlid,
                    b.outcome.failedFlid);
    if (a.outcome.uartLog != b.outcome.uartLog)
        return fail(a.app + "/" + a.config + ": uartLog differs");
    if (a.outcome.traps != b.outcome.traps)
        return cell("traps", a.outcome.traps, b.outcome.traps);
    if (a.outcome.cfiTraps != b.outcome.cfiTraps)
        return cell("cfiTraps", a.outcome.cfiTraps,
                    b.outcome.cfiTraps);
    if (a.outcome.reboots != b.outcome.reboots)
        return cell("reboots", a.outcome.reboots, b.outcome.reboots);
    if (a.outcome.crashes != b.outcome.crashes)
        return cell("crashes", a.outcome.crashes, b.outcome.crashes);
    if (a.outcome.downCycles != b.outcome.downCycles)
        return cell("downCycles", a.outcome.downCycles,
                    b.outcome.downCycles);
    if (a.outcome.wedgedCycles != b.outcome.wedgedCycles)
        return cell("wedgedCycles", a.outcome.wedgedCycles,
                    b.outcome.wedgedCycles);
    if (a.outcome.trapLog != b.outcome.trapLog)
        return fail(a.app + "/" + a.config + ": trapLog differs");
    if (a.outcome.packetsDropped != b.outcome.packetsDropped)
        return cell("packetsDropped", a.outcome.packetsDropped,
                    b.outcome.packetsDropped);
    if (a.outcome.packetsCorrupted != b.outcome.packetsCorrupted)
        return cell("packetsCorrupted", a.outcome.packetsCorrupted,
                    b.outcome.packetsCorrupted);
    if (a.outcome.packetsDuplicated != b.outcome.packetsDuplicated)
        return cell("packetsDuplicated", a.outcome.packetsDuplicated,
                    b.outcome.packetsDuplicated);
    // availability derives from the integer counters compared above.
    return true;
}

bool
SimDriver::reportsEquivalent(const SimReport &a, const SimReport &b,
                             std::string *why)
{
    if (a.records.size() != b.records.size() ||
        a.numApps != b.numApps || a.numConfigs != b.numConfigs) {
        if (why)
            *why = "report shapes differ";
        return false;
    }
    for (size_t i = 0; i < a.records.size(); ++i) {
        if (!recordsEquivalent(a.records[i], b.records[i], why))
            return false;
    }
    return true;
}

} // namespace stos::core
