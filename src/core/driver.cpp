/**
 * @file
 * BuildDriver implementation. Work distribution is a single atomic
 * job counter over the flattened matrix; jobs are executed in
 * config-major order (cell k -> app k % A) so the first wave of
 * workers hits distinct apps and the per-app frontend memo fills
 * without contention, while results land in app-major record slots so
 * the report order is deterministic under any thread count.
 */
#include "core/driver.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>

#include "ir/printer.h"
#include "support/util.h"

namespace stos::core {

using Clock = std::chrono::steady_clock;

//---------------------------------------------------------------------
// BuildReport
//---------------------------------------------------------------------

BuildRecord &
BuildReport::at(size_t app, size_t cfg)
{
    return records.at(app * numConfigs + cfg);
}

const BuildRecord &
BuildReport::at(size_t app, size_t cfg) const
{
    return records.at(app * numConfigs + cfg);
}

const BuildRecord *
BuildReport::find(const std::string &app, const std::string &config) const
{
    for (const auto &r : records) {
        if (r.app == app && r.config == config)
            return &r;
    }
    return nullptr;
}

bool
BuildReport::allOk() const
{
    for (const auto &r : records) {
        if (!r.ok)
            return false;
    }
    return true;
}

std::string
BuildReport::summary() const
{
    return strfmt("%zu apps x %zu configs = %zu builds in %.0f ms "
                  "(%u jobs, %zu parses, %zu frontend reuses)",
                  numApps, numConfigs, records.size(), wallMillis,
                  jobsUsed, frontendParses, frontendReuses);
}

void
BuildReport::emitCsv(std::ostream &os) const
{
    os << "app,platform,config,app_index,config_index,ok,error,"
          "frontend_reused,code_bytes,ram_bytes,rom_data_bytes,"
          "surviving_checks,checks_inserted,cxprop_checks_removed,"
          "millis\n";
    for (const auto &r : records) {
        os << csvField(r.app) << ',' << csvField(r.platform) << ','
           << csvField(r.config) << ',' << r.appIndex << ','
           << r.configIndex << ',' << (r.ok ? 1 : 0) << ','
           << csvField(r.error) << ',' << (r.frontendReused ? 1 : 0);
        if (r.ok) {
            os << ',' << r.result.codeBytes << ',' << r.result.ramBytes
               << ',' << r.result.romDataBytes << ','
               << r.result.survivingChecks << ','
               << r.result.safetyReport.checksInserted << ','
               << r.result.cxpropReport.checksRemoved;
        } else {
            os << ",,,,,,";
        }
        os << ',' << strfmt("%.3f", r.millis) << '\n';
    }
}

void
BuildReport::emitJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"kind\": \"build_report\",\n"
       << "  \"num_apps\": " << numApps << ",\n"
       << "  \"num_configs\": " << numConfigs << ",\n"
       << "  \"jobs_used\": " << jobsUsed << ",\n"
       << "  \"frontend_parses\": " << frontendParses << ",\n"
       << "  \"frontend_reuses\": " << frontendReuses << ",\n"
       << "  \"wall_millis\": " << strfmt("%.3f", wallMillis) << ",\n"
       << "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const BuildRecord &r = records[i];
        os << "    {\"app\": \"" << jsonEscape(r.app)
           << "\", \"platform\": \"" << jsonEscape(r.platform)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"app_index\": " << r.appIndex
           << ", \"config_index\": " << r.configIndex
           << ", \"ok\": " << (r.ok ? "true" : "false")
           << ", \"error\": \"" << jsonEscape(r.error)
           << "\", \"frontend_reused\": "
           << (r.frontendReused ? "true" : "false");
        if (r.ok) {
            os << ", \"code_bytes\": " << r.result.codeBytes
               << ", \"ram_bytes\": " << r.result.ramBytes
               << ", \"rom_data_bytes\": " << r.result.romDataBytes
               << ", \"surviving_checks\": " << r.result.survivingChecks
               << ", \"checks_inserted\": "
               << r.result.safetyReport.checksInserted
               << ", \"cxprop_checks_removed\": "
               << r.result.cxpropReport.checksRemoved;
        }
        os << ", \"millis\": " << strfmt("%.3f", r.millis) << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

//---------------------------------------------------------------------
// Matrix configuration
//---------------------------------------------------------------------

BuildDriver &
BuildDriver::addApp(const tinyos::AppInfo &app)
{
    apps_.push_back(app);
    return *this;
}

BuildDriver &
BuildDriver::addApps(const std::vector<tinyos::AppInfo> &apps)
{
    for (const auto &a : apps)
        apps_.push_back(a);
    return *this;
}

BuildDriver &
BuildDriver::addAllApps()
{
    return addApps(tinyos::allApps());
}

BuildDriver &
BuildDriver::addConfig(ConfigId id)
{
    configs_.push_back(
        {configName(id), [id](const std::string &platform) {
             return configFor(id, platform);
         }});
    return *this;
}

BuildDriver &
BuildDriver::addConfigs(const std::vector<ConfigId> &ids)
{
    for (ConfigId id : ids)
        addConfig(id);
    return *this;
}

BuildDriver &
BuildDriver::addStrategy(CheckStrategy s)
{
    configs_.push_back(
        {strategyName(s), [s](const std::string &platform) {
             return configForStrategy(s, platform);
         }});
    return *this;
}

BuildDriver &
BuildDriver::addStrategies(const std::vector<CheckStrategy> &ss)
{
    for (CheckStrategy s : ss)
        addStrategy(s);
    return *this;
}

BuildDriver &
BuildDriver::addCustom(std::string label,
                       std::function<PipelineConfig(const std::string &)>
                           make)
{
    configs_.push_back({std::move(label), std::move(make)});
    return *this;
}

//---------------------------------------------------------------------
// Execution
//---------------------------------------------------------------------

namespace {

/** Per-app frontend memo cell: first thread to need the app parses. */
struct FrontendMemo {
    std::once_flag once;
    std::shared_ptr<const FrontendProduct> product;
    std::exception_ptr error;
};

} // namespace

BuildReport
BuildDriver::run() const
{
    const size_t nApps = apps_.size();
    const size_t nConfigs = configs_.size();
    const size_t nJobs = nApps * nConfigs;

    BuildReport report;
    report.numApps = nApps;
    report.numConfigs = nConfigs;
    report.records.resize(nJobs);

    unsigned jobs = opts_.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs > nJobs)
        jobs = static_cast<unsigned>(nJobs ? nJobs : 1);
    report.jobsUsed = jobs;
    if (nJobs == 0)
        return report;

    std::vector<std::unique_ptr<FrontendMemo>> memos(nApps);
    for (auto &m : memos)
        m = std::make_unique<FrontendMemo>();

    std::atomic<size_t> nextJob{0};
    std::atomic<size_t> parses{0};
    std::atomic<size_t> reuses{0};

    auto buildCell = [&](size_t appIdx, size_t cfgIdx) {
        const tinyos::AppInfo &app = apps_[appIdx];
        const ConfigSpec &spec = configs_[cfgIdx];
        BuildRecord &rec =
            report.records[appIdx * nConfigs + cfgIdx];
        rec.app = app.name;
        rec.platform = app.platform;
        rec.config = spec.label;
        rec.companions = app.companions;
        rec.appIndex = static_cast<uint32_t>(appIdx);
        rec.configIndex = static_cast<uint32_t>(cfgIdx);

        auto cellStart = Clock::now();
        try {
            PipelineConfig cfg = spec.make(app.platform);
            if (opts_.memoizeFrontend) {
                FrontendMemo &memo = *memos[appIdx];
                bool parsedHere = false;
                std::call_once(memo.once, [&] {
                    try {
                        memo.product =
                            std::make_shared<const FrontendProduct>(
                                runFrontend(app.name, app.source));
                    } catch (...) {
                        memo.error = std::current_exception();
                    }
                    parsedHere = true;
                    parses.fetch_add(1, std::memory_order_relaxed);
                });
                if (memo.error)
                    std::rethrow_exception(memo.error);
                if (!parsedHere) {
                    rec.frontendReused = true;
                    reuses.fetch_add(1, std::memory_order_relaxed);
                }
                rec.result = buildFromFrontend(*memo.product, cfg);
            } else {
                parses.fetch_add(1, std::memory_order_relaxed);
                rec.result = buildSource(app.name, app.source, cfg);
            }
            rec.ok = true;
        } catch (const std::exception &e) {
            rec.ok = false;
            rec.error = e.what();
        }
        rec.millis = millisSince(cellStart);
    };

    auto worker = [&] {
        for (size_t k = nextJob.fetch_add(1); k < nJobs;
             k = nextJob.fetch_add(1)) {
            // Config-major execution order: spread early jobs across
            // distinct apps so frontend memos fill in parallel.
            buildCell(k % nApps, k / nApps);
        }
    };

    auto start = Clock::now();
    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    report.wallMillis = millisSince(start);
    report.frontendParses = parses.load();
    report.frontendReuses = reuses.load();
    return report;
}

//---------------------------------------------------------------------
// Canned matrices
//---------------------------------------------------------------------

BuildReport
BuildDriver::figure3Matrix(DriverOptions opts)
{
    BuildDriver d(opts);
    d.addAllApps();
    d.addConfig(ConfigId::Baseline);
    d.addConfigs(figure3Configs());
    return d.run();
}

BuildReport
BuildDriver::figure2Matrix(DriverOptions opts)
{
    BuildDriver d(opts);
    d.addAllApps();
    d.addStrategies({CheckStrategy::GccOnly, CheckStrategy::CcuredOpt,
                     CheckStrategy::CcuredOptCxprop,
                     CheckStrategy::CcuredOptInlineCxprop});
    return d.run();
}

//---------------------------------------------------------------------
// Equivalence
//---------------------------------------------------------------------

bool
BuildDriver::resultsEquivalent(const BuildResult &a, const BuildResult &b,
                               std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.codeBytes != b.codeBytes)
        return fail(strfmt("codeBytes %u != %u", a.codeBytes,
                           b.codeBytes));
    if (a.ramBytes != b.ramBytes)
        return fail(strfmt("ramBytes %u != %u", a.ramBytes, b.ramBytes));
    if (a.romDataBytes != b.romDataBytes)
        return fail(strfmt("romDataBytes %u != %u", a.romDataBytes,
                           b.romDataBytes));
    if (a.survivingChecks != b.survivingChecks)
        return fail(strfmt("survivingChecks %u != %u", a.survivingChecks,
                           b.survivingChecks));
    if (a.safetyReport.checksInserted != b.safetyReport.checksInserted)
        return fail("safetyReport.checksInserted differs");
    if (a.safetyReport.checksByKind != b.safetyReport.checksByKind)
        return fail("safetyReport.checksByKind differs");
    if (a.safetyReport.redundantChecksDropped !=
        b.safetyReport.redundantChecksDropped)
        return fail("safetyReport.redundantChecksDropped differs");
    if (a.safetyReport.locksInserted != b.safetyReport.locksInserted)
        return fail("safetyReport.locksInserted differs");
    if (a.safetyReport.racyGlobals != b.safetyReport.racyGlobals)
        return fail("safetyReport.racyGlobals differs");
    if (a.cxpropReport.checksRemoved != b.cxpropReport.checksRemoved)
        return fail("cxpropReport.checksRemoved differs");
    if (a.cxpropReport.funcsInlined != b.cxpropReport.funcsInlined)
        return fail("cxpropReport.funcsInlined differs");
    if (a.cxpropReport.atomicsRemoved != b.cxpropReport.atomicsRemoved)
        return fail("cxpropReport.atomicsRemoved differs");
    if (a.cxpropReport.atomicSavesDowngraded !=
        b.cxpropReport.atomicSavesDowngraded)
        return fail("cxpropReport.atomicSavesDowngraded differs");
    if (a.cxpropReport.rounds != b.cxpropReport.rounds)
        return fail("cxpropReport.rounds differs");
    if (ir::moduleToString(a.module) != ir::moduleToString(b.module))
        return fail("final IR text differs");
    return true;
}

bool
BuildDriver::recordsEquivalent(const BuildRecord &a, const BuildRecord &b,
                               std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.app != b.app || a.config != b.config)
        return fail("record identity differs: " + a.app + "/" +
                    a.config + " vs " + b.app + "/" + b.config);
    if (a.appIndex != b.appIndex || a.configIndex != b.configIndex)
        return fail("record matrix position differs");
    if (a.ok != b.ok)
        return fail("one record failed: " + a.error + b.error);
    if (!a.ok)
        return a.error == b.error ? true : fail("error text differs");
    std::string innerWhy;
    if (!resultsEquivalent(a.result, b.result, &innerWhy))
        return fail(a.app + "/" + a.config + ": " + innerWhy);
    return true;
}

} // namespace stos::core
