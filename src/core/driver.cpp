/**
 * @file
 * Build-matrix vocabulary: BuildReport emitters and the BuildDriver
 * equivalence helpers. The batch-compile engine itself lives in
 * core/experiment.cpp; declare matrices on an Experiment directly.
 */
#include "core/driver.h"

#include <ostream>

#include "ir/printer.h"
#include "support/util.h"

namespace stos::core {

//---------------------------------------------------------------------
// BuildReport
//---------------------------------------------------------------------

BuildRecord &
BuildReport::at(size_t app, size_t cfg)
{
    return records.at(app * numConfigs + cfg);
}

const BuildRecord &
BuildReport::at(size_t app, size_t cfg) const
{
    return records.at(app * numConfigs + cfg);
}

const BuildRecord *
BuildReport::find(const std::string &app, const std::string &config) const
{
    for (const auto &r : records) {
        if (r.app == app && r.config == config)
            return &r;
    }
    return nullptr;
}

bool
BuildReport::allOk() const
{
    for (const auto &r : records) {
        if (!r.ok)
            return false;
    }
    return true;
}

std::string
BuildReport::summary() const
{
    std::string s =
        strfmt("%zu apps x %zu configs = %zu builds in %.0f ms "
               "(%u jobs; stage runs/reuses: frontend %zu/%zu, "
               "safety %zu/%zu, opt %zu/%zu, backend %zu/%zu)",
               numApps, numConfigs, records.size(), wallMillis,
               jobsUsed, frontendParses, frontendReuses, safetyRuns,
               safetyReuses, optRuns, optReuses, backendRuns,
               backendReuses);
    if (diskHits() > 0 || cacheBytesWritten > 0)
        s += strfmt(" (disk hits: frontend %zu, safety %zu, opt %zu, "
                    "backend %zu; %llu KiB read, %llu KiB written)",
                    frontendDiskHits, safetyDiskHits, optDiskHits,
                    backendDiskHits,
                    static_cast<unsigned long long>(cacheBytesRead /
                                                    1024),
                    static_cast<unsigned long long>(cacheBytesWritten /
                                                    1024));
    return s;
}

void
BuildReport::emitCsv(std::ostream &os) const
{
    os << "app,platform,config,app_index,config_index,ok,error,"
          "frontend_reused,safety_reused,opt_reused,backend_reused,"
          "code_bytes,ram_bytes,rom_data_bytes,"
          "surviving_checks,checks_inserted,cxprop_checks_removed,"
          "millis\n";
    for (const auto &r : records) {
        os << csvField(r.app) << ',' << csvField(r.platform) << ','
           << csvField(r.config) << ',' << r.appIndex << ','
           << r.configIndex << ',' << (r.ok ? 1 : 0) << ','
           << csvField(r.error) << ',' << (r.frontendReused ? 1 : 0)
           << ',' << (r.safetyReused ? 1 : 0) << ','
           << (r.optReused ? 1 : 0) << ',' << (r.backendReused ? 1 : 0);
        if (r.ok) {
            os << ',' << r.result->codeBytes << ',' << r.result->ramBytes
               << ',' << r.result->romDataBytes << ','
               << r.result->survivingChecks << ','
               << r.result->safetyReport.checksInserted << ','
               << r.result->cxpropReport.checksRemoved;
        } else {
            os << ",,,,,,";
        }
        os << ',' << strfmt("%.3f", r.millis) << '\n';
    }
}

void
BuildReport::emitJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"kind\": \"build_report\",\n"
       << "  \"num_apps\": " << numApps << ",\n"
       << "  \"num_configs\": " << numConfigs << ",\n"
       << "  \"jobs_used\": " << jobsUsed << ",\n"
       << "  \"frontend_parses\": " << frontendParses << ",\n"
       << "  \"frontend_reuses\": " << frontendReuses << ",\n"
       << "  \"safety_runs\": " << safetyRuns << ",\n"
       << "  \"safety_reuses\": " << safetyReuses << ",\n"
       << "  \"opt_runs\": " << optRuns << ",\n"
       << "  \"opt_reuses\": " << optReuses << ",\n"
       << "  \"backend_runs\": " << backendRuns << ",\n"
       << "  \"backend_reuses\": " << backendReuses << ",\n"
       << "  \"stage_reuses\": " << stageReuses() << ",\n"
       << "  \"frontend_disk_hits\": " << frontendDiskHits << ",\n"
       << "  \"safety_disk_hits\": " << safetyDiskHits << ",\n"
       << "  \"opt_disk_hits\": " << optDiskHits << ",\n"
       << "  \"backend_disk_hits\": " << backendDiskHits << ",\n"
       << "  \"disk_hits\": " << diskHits() << ",\n"
       << "  \"cache_bytes_read\": " << cacheBytesRead << ",\n"
       << "  \"cache_bytes_written\": " << cacheBytesWritten << ",\n"
       << "  \"wall_millis\": " << strfmt("%.3f", wallMillis) << ",\n"
       << "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const BuildRecord &r = records[i];
        os << "    {\"app\": \"" << jsonEscape(r.app)
           << "\", \"platform\": \"" << jsonEscape(r.platform)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"app_index\": " << r.appIndex
           << ", \"config_index\": " << r.configIndex
           << ", \"ok\": " << (r.ok ? "true" : "false")
           << ", \"error\": \"" << jsonEscape(r.error)
           << "\", \"frontend_reused\": "
           << (r.frontendReused ? "true" : "false")
           << ", \"safety_reused\": "
           << (r.safetyReused ? "true" : "false")
           << ", \"opt_reused\": " << (r.optReused ? "true" : "false")
           << ", \"backend_reused\": "
           << (r.backendReused ? "true" : "false");
        if (r.ok) {
            os << ", \"code_bytes\": " << r.result->codeBytes
               << ", \"ram_bytes\": " << r.result->ramBytes
               << ", \"rom_data_bytes\": " << r.result->romDataBytes
               << ", \"surviving_checks\": " << r.result->survivingChecks
               << ", \"checks_inserted\": "
               << r.result->safetyReport.checksInserted
               << ", \"cxprop_checks_removed\": "
               << r.result->cxpropReport.checksRemoved;
        }
        os << ", \"millis\": " << strfmt("%.3f", r.millis) << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

//---------------------------------------------------------------------
// Equivalence
//---------------------------------------------------------------------

bool
BuildDriver::resultsEquivalent(const BuildResult &a, const BuildResult &b,
                               std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.codeBytes != b.codeBytes)
        return fail(strfmt("codeBytes %u != %u", a.codeBytes,
                           b.codeBytes));
    if (a.ramBytes != b.ramBytes)
        return fail(strfmt("ramBytes %u != %u", a.ramBytes, b.ramBytes));
    if (a.romDataBytes != b.romDataBytes)
        return fail(strfmt("romDataBytes %u != %u", a.romDataBytes,
                           b.romDataBytes));
    if (a.survivingChecks != b.survivingChecks)
        return fail(strfmt("survivingChecks %u != %u", a.survivingChecks,
                           b.survivingChecks));
    if (a.safetyReport.checksInserted != b.safetyReport.checksInserted)
        return fail("safetyReport.checksInserted differs");
    if (a.safetyReport.checksByKind != b.safetyReport.checksByKind)
        return fail("safetyReport.checksByKind differs");
    if (a.safetyReport.redundantChecksDropped !=
        b.safetyReport.redundantChecksDropped)
        return fail("safetyReport.redundantChecksDropped differs");
    if (a.safetyReport.locksInserted != b.safetyReport.locksInserted)
        return fail("safetyReport.locksInserted differs");
    if (a.safetyReport.racyGlobals != b.safetyReport.racyGlobals)
        return fail("safetyReport.racyGlobals differs");
    if (a.cxpropReport.checksRemoved != b.cxpropReport.checksRemoved)
        return fail("cxpropReport.checksRemoved differs");
    if (a.cxpropReport.funcsInlined != b.cxpropReport.funcsInlined)
        return fail("cxpropReport.funcsInlined differs");
    if (a.cxpropReport.atomicsRemoved != b.cxpropReport.atomicsRemoved)
        return fail("cxpropReport.atomicsRemoved differs");
    if (a.cxpropReport.atomicSavesDowngraded !=
        b.cxpropReport.atomicSavesDowngraded)
        return fail("cxpropReport.atomicSavesDowngraded differs");
    if (a.cxpropReport.rounds != b.cxpropReport.rounds)
        return fail("cxpropReport.rounds differs");
    if (ir::moduleToString(a.module) != ir::moduleToString(b.module))
        return fail("final IR text differs");
    return true;
}

bool
BuildDriver::recordsEquivalent(const BuildRecord &a, const BuildRecord &b,
                               std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.app != b.app || a.config != b.config)
        return fail("record identity differs: " + a.app + "/" +
                    a.config + " vs " + b.app + "/" + b.config);
    if (a.appIndex != b.appIndex || a.configIndex != b.configIndex)
        return fail("record matrix position differs");
    if (a.ok != b.ok)
        return fail("one record failed: " + a.error + b.error);
    if (!a.ok)
        return a.error == b.error ? true : fail("error text differs");
    std::string innerWhy;
    if (!resultsEquivalent(*a.result, *b.result, &innerWhy))
        return fail(a.app + "/" + a.config + ": " + innerWhy);
    return true;
}

} // namespace stos::core
