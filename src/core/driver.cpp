/**
 * @file
 * BuildDriver implementation: a shim over the stage graph. Work
 * distribution is a single atomic job counter over the flattened
 * matrix (core/pool.h); jobs are executed in config-major order
 * (cell k -> app k % A) so the first wave of workers hits distinct
 * apps and the per-app stage entries fill without contention, while
 * results land in app-major record slots so the report order is
 * deterministic under any thread count.
 */
#include "core/driver.h"

#include <atomic>
#include <chrono>
#include <ostream>

#include "core/pool.h"
#include "core/stagecache.h"
#include "ir/printer.h"
#include "support/util.h"

namespace stos::core {

using Clock = std::chrono::steady_clock;

//---------------------------------------------------------------------
// BuildReport
//---------------------------------------------------------------------

BuildRecord &
BuildReport::at(size_t app, size_t cfg)
{
    return records.at(app * numConfigs + cfg);
}

const BuildRecord &
BuildReport::at(size_t app, size_t cfg) const
{
    return records.at(app * numConfigs + cfg);
}

const BuildRecord *
BuildReport::find(const std::string &app, const std::string &config) const
{
    for (const auto &r : records) {
        if (r.app == app && r.config == config)
            return &r;
    }
    return nullptr;
}

bool
BuildReport::allOk() const
{
    for (const auto &r : records) {
        if (!r.ok)
            return false;
    }
    return true;
}

std::string
BuildReport::summary() const
{
    return strfmt("%zu apps x %zu configs = %zu builds in %.0f ms "
                  "(%u jobs; stage runs/reuses: frontend %zu/%zu, "
                  "safety %zu/%zu, opt %zu/%zu, backend %zu/%zu)",
                  numApps, numConfigs, records.size(), wallMillis,
                  jobsUsed, frontendParses, frontendReuses, safetyRuns,
                  safetyReuses, optRuns, optReuses, backendRuns,
                  backendReuses);
}

void
BuildReport::emitCsv(std::ostream &os) const
{
    os << "app,platform,config,app_index,config_index,ok,error,"
          "frontend_reused,safety_reused,opt_reused,backend_reused,"
          "code_bytes,ram_bytes,rom_data_bytes,"
          "surviving_checks,checks_inserted,cxprop_checks_removed,"
          "millis\n";
    for (const auto &r : records) {
        os << csvField(r.app) << ',' << csvField(r.platform) << ','
           << csvField(r.config) << ',' << r.appIndex << ','
           << r.configIndex << ',' << (r.ok ? 1 : 0) << ','
           << csvField(r.error) << ',' << (r.frontendReused ? 1 : 0)
           << ',' << (r.safetyReused ? 1 : 0) << ','
           << (r.optReused ? 1 : 0) << ',' << (r.backendReused ? 1 : 0);
        if (r.ok) {
            os << ',' << r.result->codeBytes << ',' << r.result->ramBytes
               << ',' << r.result->romDataBytes << ','
               << r.result->survivingChecks << ','
               << r.result->safetyReport.checksInserted << ','
               << r.result->cxpropReport.checksRemoved;
        } else {
            os << ",,,,,,";
        }
        os << ',' << strfmt("%.3f", r.millis) << '\n';
    }
}

void
BuildReport::emitJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"kind\": \"build_report\",\n"
       << "  \"num_apps\": " << numApps << ",\n"
       << "  \"num_configs\": " << numConfigs << ",\n"
       << "  \"jobs_used\": " << jobsUsed << ",\n"
       << "  \"frontend_parses\": " << frontendParses << ",\n"
       << "  \"frontend_reuses\": " << frontendReuses << ",\n"
       << "  \"safety_runs\": " << safetyRuns << ",\n"
       << "  \"safety_reuses\": " << safetyReuses << ",\n"
       << "  \"opt_runs\": " << optRuns << ",\n"
       << "  \"opt_reuses\": " << optReuses << ",\n"
       << "  \"backend_runs\": " << backendRuns << ",\n"
       << "  \"backend_reuses\": " << backendReuses << ",\n"
       << "  \"stage_reuses\": " << stageReuses() << ",\n"
       << "  \"wall_millis\": " << strfmt("%.3f", wallMillis) << ",\n"
       << "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const BuildRecord &r = records[i];
        os << "    {\"app\": \"" << jsonEscape(r.app)
           << "\", \"platform\": \"" << jsonEscape(r.platform)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"app_index\": " << r.appIndex
           << ", \"config_index\": " << r.configIndex
           << ", \"ok\": " << (r.ok ? "true" : "false")
           << ", \"error\": \"" << jsonEscape(r.error)
           << "\", \"frontend_reused\": "
           << (r.frontendReused ? "true" : "false")
           << ", \"safety_reused\": "
           << (r.safetyReused ? "true" : "false")
           << ", \"opt_reused\": " << (r.optReused ? "true" : "false")
           << ", \"backend_reused\": "
           << (r.backendReused ? "true" : "false");
        if (r.ok) {
            os << ", \"code_bytes\": " << r.result->codeBytes
               << ", \"ram_bytes\": " << r.result->ramBytes
               << ", \"rom_data_bytes\": " << r.result->romDataBytes
               << ", \"surviving_checks\": " << r.result->survivingChecks
               << ", \"checks_inserted\": "
               << r.result->safetyReport.checksInserted
               << ", \"cxprop_checks_removed\": "
               << r.result->cxpropReport.checksRemoved;
        }
        os << ", \"millis\": " << strfmt("%.3f", r.millis) << "}"
           << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

//---------------------------------------------------------------------
// Matrix configuration
//---------------------------------------------------------------------

BuildDriver &
BuildDriver::addApp(const tinyos::AppInfo &app)
{
    apps_.push_back(app);
    return *this;
}

BuildDriver &
BuildDriver::addApps(const std::vector<tinyos::AppInfo> &apps)
{
    for (const auto &a : apps)
        apps_.push_back(a);
    return *this;
}

BuildDriver &
BuildDriver::addAllApps()
{
    return addApps(tinyos::allApps());
}

BuildDriver &
BuildDriver::addConfig(ConfigId id)
{
    configs_.push_back(
        {configName(id), [id](const std::string &platform) {
             return configFor(id, platform);
         }});
    return *this;
}

BuildDriver &
BuildDriver::addConfigs(const std::vector<ConfigId> &ids)
{
    for (ConfigId id : ids)
        addConfig(id);
    return *this;
}

BuildDriver &
BuildDriver::addStrategy(CheckStrategy s)
{
    configs_.push_back(
        {strategyName(s), [s](const std::string &platform) {
             return configForStrategy(s, platform);
         }});
    return *this;
}

BuildDriver &
BuildDriver::addStrategies(const std::vector<CheckStrategy> &ss)
{
    for (CheckStrategy s : ss)
        addStrategy(s);
    return *this;
}

BuildDriver &
BuildDriver::addCustom(std::string label,
                       std::function<PipelineConfig(const std::string &)>
                           make)
{
    configs_.push_back({std::move(label), std::move(make)});
    return *this;
}

//---------------------------------------------------------------------
// Execution
//---------------------------------------------------------------------

namespace {

/** Fill the identity fields every cell carries regardless of mode. */
BuildRecord &
cellRecord(BuildReport &report, const tinyos::AppInfo &app,
           const ConfigSpec &spec, size_t appIdx, size_t cfgIdx)
{
    BuildRecord &rec =
        report.records[appIdx * report.numConfigs + cfgIdx];
    rec.app = app.name;
    rec.platform = app.platform;
    rec.config = spec.label;
    rec.companions = app.companions;
    rec.appIndex = static_cast<uint32_t>(appIdx);
    rec.configIndex = static_cast<uint32_t>(cfgIdx);
    return rec;
}

} // namespace

BuildReport
BuildDriver::run() const
{
    if (opts_.memoizeFrontend) {
        StageCache cache;
        return run(cache);
    }
    // Cold mode: every cell compiles from source, nothing is shared —
    // the reference behaviour the equivalence gates compare against.
    const size_t nApps = apps_.size();
    const size_t nConfigs = configs_.size();
    const size_t nJobs = nApps * nConfigs;

    BuildReport report;
    report.numApps = nApps;
    report.numConfigs = nConfigs;
    report.records.resize(nJobs);
    report.jobsUsed = resolveJobs(opts_.jobs, nJobs);
    if (nJobs == 0)
        return report;

    auto start = Clock::now();
    runOnPool(report.jobsUsed, nJobs, [&](size_t k) {
        size_t appIdx = k % nApps, cfgIdx = k / nApps;
        const tinyos::AppInfo &app = apps_[appIdx];
        const ConfigSpec &spec = configs_[cfgIdx];
        BuildRecord &rec = cellRecord(report, app, spec, appIdx, cfgIdx);
        auto cellStart = Clock::now();
        try {
            rec.result = std::make_shared<const BuildResult>(
                buildSource(app.name, app.source,
                            spec.make(app.platform)));
            rec.ok = true;
        } catch (const std::exception &e) {
            rec.ok = false;
            rec.error = e.what();
        }
        rec.millis = millisSince(cellStart);
    });
    report.wallMillis = millisSince(start);
    // Every cell ran the whole pipeline by itself.
    report.frontendParses = nJobs;
    report.safetyRuns = nJobs;
    report.optRuns = nJobs;
    report.backendRuns = nJobs;
    return report;
}

BuildReport
BuildDriver::run(StageCache &cache) const
{
    const size_t nApps = apps_.size();
    const size_t nConfigs = configs_.size();
    const size_t nJobs = nApps * nConfigs;

    BuildReport report;
    report.numApps = nApps;
    report.numConfigs = nConfigs;
    report.records.resize(nJobs);
    report.jobsUsed = resolveJobs(opts_.jobs, nJobs);
    if (nJobs == 0)
        return report;

    StageCacheStats before = cache.stats();

    auto start = Clock::now();
    // Config-major execution order: spread early jobs across distinct
    // apps so the per-app stage entries fill in parallel.
    runOnPool(report.jobsUsed, nJobs, [&](size_t k) {
        size_t appIdx = k % nApps, cfgIdx = k / nApps;
        const tinyos::AppInfo &app = apps_[appIdx];
        const ConfigSpec &spec = configs_[cfgIdx];
        BuildRecord &rec = cellRecord(report, app, spec, appIdx, cfgIdx);
        auto cellStart = Clock::now();
        StageHits hits;
        try {
            PipelineConfig cfg = spec.make(app.platform);
            // Shared immutably with the cache — no per-cell copy.
            rec.result = cache.build(app, cfg, &hits);
            rec.ok = true;
        } catch (const std::exception &e) {
            rec.ok = false;
            rec.error = e.what();
        }
        rec.frontendReused = hits.frontend;
        rec.safetyReused = hits.safety;
        rec.optReused = hits.opt;
        rec.backendReused = hits.backend;
        rec.millis = millisSince(cellStart);
    });
    report.wallMillis = millisSince(start);

    // Stage executions this run come from the cache's counter delta;
    // per-cell reuse comes from the chain flags (a request chain
    // stops at its first cache hit, so raw request counters would
    // under-report upstream reuse).
    StageCacheStats after = cache.stats();
    report.frontendParses =
        after.frontend.executed - before.frontend.executed;
    report.safetyRuns = after.safety.executed - before.safety.executed;
    report.optRuns = after.opt.executed - before.opt.executed;
    report.backendRuns = after.backend.executed - before.backend.executed;
    for (const auto &r : report.records) {
        report.frontendReuses += r.frontendReused ? 1 : 0;
        report.safetyReuses += r.safetyReused ? 1 : 0;
        report.optReuses += r.optReused ? 1 : 0;
        report.backendReuses += r.backendReused ? 1 : 0;
    }
    return report;
}

//---------------------------------------------------------------------
// Canned matrices
//---------------------------------------------------------------------

BuildReport
BuildDriver::figure3Matrix(DriverOptions opts)
{
    BuildDriver d(opts);
    d.addAllApps();
    d.addConfig(ConfigId::Baseline);
    d.addConfigs(figure3Configs());
    return d.run();
}

BuildReport
BuildDriver::figure2Matrix(DriverOptions opts)
{
    BuildDriver d(opts);
    d.addAllApps();
    d.addStrategies({CheckStrategy::GccOnly, CheckStrategy::CcuredOpt,
                     CheckStrategy::CcuredOptCxprop,
                     CheckStrategy::CcuredOptInlineCxprop});
    return d.run();
}

//---------------------------------------------------------------------
// Equivalence
//---------------------------------------------------------------------

bool
BuildDriver::resultsEquivalent(const BuildResult &a, const BuildResult &b,
                               std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.codeBytes != b.codeBytes)
        return fail(strfmt("codeBytes %u != %u", a.codeBytes,
                           b.codeBytes));
    if (a.ramBytes != b.ramBytes)
        return fail(strfmt("ramBytes %u != %u", a.ramBytes, b.ramBytes));
    if (a.romDataBytes != b.romDataBytes)
        return fail(strfmt("romDataBytes %u != %u", a.romDataBytes,
                           b.romDataBytes));
    if (a.survivingChecks != b.survivingChecks)
        return fail(strfmt("survivingChecks %u != %u", a.survivingChecks,
                           b.survivingChecks));
    if (a.safetyReport.checksInserted != b.safetyReport.checksInserted)
        return fail("safetyReport.checksInserted differs");
    if (a.safetyReport.checksByKind != b.safetyReport.checksByKind)
        return fail("safetyReport.checksByKind differs");
    if (a.safetyReport.redundantChecksDropped !=
        b.safetyReport.redundantChecksDropped)
        return fail("safetyReport.redundantChecksDropped differs");
    if (a.safetyReport.locksInserted != b.safetyReport.locksInserted)
        return fail("safetyReport.locksInserted differs");
    if (a.safetyReport.racyGlobals != b.safetyReport.racyGlobals)
        return fail("safetyReport.racyGlobals differs");
    if (a.cxpropReport.checksRemoved != b.cxpropReport.checksRemoved)
        return fail("cxpropReport.checksRemoved differs");
    if (a.cxpropReport.funcsInlined != b.cxpropReport.funcsInlined)
        return fail("cxpropReport.funcsInlined differs");
    if (a.cxpropReport.atomicsRemoved != b.cxpropReport.atomicsRemoved)
        return fail("cxpropReport.atomicsRemoved differs");
    if (a.cxpropReport.atomicSavesDowngraded !=
        b.cxpropReport.atomicSavesDowngraded)
        return fail("cxpropReport.atomicSavesDowngraded differs");
    if (a.cxpropReport.rounds != b.cxpropReport.rounds)
        return fail("cxpropReport.rounds differs");
    if (ir::moduleToString(a.module) != ir::moduleToString(b.module))
        return fail("final IR text differs");
    return true;
}

bool
BuildDriver::recordsEquivalent(const BuildRecord &a, const BuildRecord &b,
                               std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.app != b.app || a.config != b.config)
        return fail("record identity differs: " + a.app + "/" +
                    a.config + " vs " + b.app + "/" + b.config);
    if (a.appIndex != b.appIndex || a.configIndex != b.configIndex)
        return fail("record matrix position differs");
    if (a.ok != b.ok)
        return fail("one record failed: " + a.error + b.error);
    if (!a.ok)
        return a.error == b.error ? true : fail("error text differs");
    std::string innerWhy;
    if (!resultsEquivalent(*a.result, *b.result, &innerWhy))
        return fail(a.app + "/" + a.config + ": " + innerWhy);
    return true;
}

} // namespace stos::core
