/**
 * @file
 * StageCache: a thread-safe, content-keyed memo of the pipeline's
 * stage graph (Frontend -> Safety -> Opt -> Backend). Every product
 * is keyed by (app identity, stage-relevant fingerprint chain of the
 * PipelineConfig), so evaluation-matrix columns that only diverge
 * late share the early work: C4/C5/C6 differ only in cXprop options
 * and share one safety run per app; Baseline/C7 share the unsafe
 * pass-through; repeated runs over one cache (equivalence gates)
 * rebuild nothing at all. Companion mote firmware is an ordinary
 * backend entry plus a memoized decode, replacing the bespoke
 * CompanionCache.
 *
 * The first requester of a key executes the stage; concurrent
 * requesters block on that execution and share the immutable product.
 * Failures are cached and rethrown to every requester. All products
 * are immutable after construction, so sharing needs no further
 * locking. (The bespoke CompanionCache wrapper this replaced has been
 * removed; the companion entry points below are the one API.)
 */
#ifndef STOS_CORE_STAGECACHE_H
#define STOS_CORE_STAGECACHE_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/artifactstore.h"
#include "core/pipeline.h"
#include "sim/decoded.h"
#include "tinyos/tinyos.h"

namespace stos::core {

/** Execution counters of one stage. A request is served exactly one
 *  way: executed + diskHits + reused = requests. */
struct StageStats {
    size_t executed = 0;  ///< stage bodies actually run
    size_t reused = 0;    ///< requests served from the in-memory memo
    size_t diskHits = 0;  ///< entries materialized from the store
};

/** Snapshot of every stage's counters. */
struct StageCacheStats {
    StageStats frontend, safety, opt, backend;
};

/**
 * Which stages of one request chain were served from the cache. A
 * stage served from the cache implies everything upstream of it was
 * too (the chain never re-executes above a hit).
 */
struct StageHits {
    bool frontend = false;
    bool safety = false;
    bool opt = false;
    bool backend = false;
};

class StageCache {
  public:
    /** In-memory-only cache (the default, and the pre-store API). */
    StageCache() = default;
    /**
     * Cache backed by an on-disk store (not owned; may be null for
     * in-memory-only). On a memo miss each stage first consults the
     * store — a disk hit materializes the product without running the
     * stage body — and every freshly executed product is written back.
     */
    explicit StageCache(ArtifactStore *store) : store_(store) {}
    StageCache(const StageCache &) = delete;
    StageCache &operator=(const StageCache &) = delete;

    /** The backing store, or null when in-memory only. */
    ArtifactStore *store() const { return store_; }

    //--- key derivation (exposed so benches and tests can predict
    //--- sharing: two cells share a stage iff their keys match) ----
    /**
     * Content key of the frontend stage: app identity plus a
     * fingerprint of the frontend's whole input — the app source AND
     * the shared TinyOS library baked into every parse. Keying on the
     * app source alone served stale products after a library edit.
     */
    static std::string appKey(const tinyos::AppInfo &app);
    /** As above with an explicit library source (fingerprint tests). */
    static std::string appKey(const tinyos::AppInfo &app,
                              const std::string &librarySource);
    static std::string safetyKey(const tinyos::AppInfo &app,
                                 const PipelineConfig &cfg);
    static std::string optKey(const tinyos::AppInfo &app,
                              const PipelineConfig &cfg);
    static std::string buildKey(const tinyos::AppInfo &app,
                                const PipelineConfig &cfg);

    //--- stage products -------------------------------------------
    std::shared_ptr<const FrontendProduct>
    frontend(const tinyos::AppInfo &app, StageHits *hits = nullptr);

    std::shared_ptr<const SafetyProduct>
    safety(const tinyos::AppInfo &app, const PipelineConfig &cfg,
           StageHits *hits = nullptr);

    std::shared_ptr<const OptProduct>
    opt(const tinyos::AppInfo &app, const PipelineConfig &cfg,
        StageHits *hits = nullptr);

    /** The full build (backend product) of one matrix cell. */
    std::shared_ptr<const BuildResult>
    build(const tinyos::AppInfo &app, const PipelineConfig &cfg,
          StageHits *hits = nullptr);

    //--- companion firmware ---------------------------------------
    /**
     * Baseline firmware for registry app `name` on `platform` — an
     * alias into the backend entry of (app, Baseline config), so a
     * matrix that already built that cell shares it outright.
     * `builtHere`, when non-null, reports whether this call
     * materialized the companion entry (vs being served from it).
     */
    std::shared_ptr<const backend::MProgram>
    companionImage(const std::string &name, const std::string &platform,
                   bool *builtHere = nullptr);

    /** The shared predecode of the same image (built alongside it). */
    std::shared_ptr<const sim::DecodedProgram>
    companionDecode(const std::string &name, const std::string &platform,
                    bool *builtHere = nullptr);

    //--- counters -------------------------------------------------
    /**
     * Per-stage request counters. `reused` counts requests served
     * from the memo at that stage — note a request chain stops at its
     * first hit, so upstream stages never see the request at all
     * (drivers derive per-cell reuse from StageHits instead).
     */
    StageCacheStats stats() const;

    /** Companion entries materialized / served from the memo. */
    size_t companionBuilds() const { return coBuilds_.load(); }
    size_t companionHits() const { return coHits_.load(); }

    /**
     * Drop the frontend/safety/opt entry maps, releasing every
     * intermediate product whose downstream entries have already
     * materialized (builds_ and companions_ are kept). Callers that
     * still hold a product pointer keep it alive; a later request for
     * a released key simply re-materializes it (from the store when
     * one is attached, else by re-running the stage). Drivers call
     * this after a matrix completes when a writable store holds the
     * intermediates, cutting steady-state memory to final builds only.
     */
    void releaseIntermediateProducts();

  private:
    template <typename T> struct Entry {
        std::once_flag once;
        std::shared_ptr<const T> value;
        std::exception_ptr error;
    };
    struct CompanionEntry {
        std::once_flag once;
        std::shared_ptr<const backend::MProgram> image;
        std::shared_ptr<const sim::DecodedProgram> decoded;
        std::exception_ptr error;
    };
    template <typename T>
    using EntryMap = std::map<std::string, std::shared_ptr<Entry<T>>>;

    template <typename T>
    std::shared_ptr<Entry<T>> entryFor(EntryMap<T> &map,
                                       const std::string &key);
    std::shared_ptr<CompanionEntry>
    companionEntry(const std::string &name, const std::string &platform,
                   bool *builtHere);

    /** Try to materialize (stage, key) from the store; a decode
     *  failure on a hash-valid artifact is treated as a miss. */
    template <typename T>
    std::shared_ptr<const T> tryLoad(Stage stage, const std::string &key);
    /** Serialize and persist a freshly built product (best-effort). */
    template <typename T>
    void writeBack(Stage stage, const std::string &key, const T &product);

    ArtifactStore *store_ = nullptr;
    mutable std::mutex mu_;
    EntryMap<FrontendProduct> frontends_;
    EntryMap<SafetyProduct> safeties_;
    EntryMap<OptProduct> opts_;
    EntryMap<BuildResult> builds_;
    std::map<std::pair<std::string, std::string>,
             std::shared_ptr<CompanionEntry>>
        companions_;

    std::atomic<size_t> feExec_{0}, feReuse_{0}, feDisk_{0};
    std::atomic<size_t> saExec_{0}, saReuse_{0}, saDisk_{0};
    std::atomic<size_t> opExec_{0}, opReuse_{0}, opDisk_{0};
    std::atomic<size_t> beExec_{0}, beReuse_{0}, beDisk_{0};
    std::atomic<size_t> coBuilds_{0}, coHits_{0};
};

} // namespace stos::core

#endif
