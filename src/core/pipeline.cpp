/**
 * @file
 * Pipeline driver implementation.
 */
#include "core/pipeline.h"

#include <cstdlib>
#include <map>

#include "frontend/frontend.h"
#include "ir/verifier.h"
#include "support/util.h"

namespace stos::core {

using namespace stos::ir;

const char *
configName(ConfigId id)
{
    switch (id) {
      case ConfigId::Baseline: return "unsafe baseline";
      case ConfigId::SafeVerboseRam: return "safe, verbose messages";
      case ConfigId::SafeVerboseRom: return "safe, verbose in ROM";
      case ConfigId::SafeTerse: return "safe, terse messages";
      case ConfigId::SafeFlid: return "safe, FLIDs";
      case ConfigId::SafeFlidCxprop: return "safe, FLIDs, cXprop";
      case ConfigId::SafeFlidInlineCxprop:
        return "safe, FLIDs, inline+cXprop";
      case ConfigId::UnsafeInlineCxprop:
        return "unsafe, inline+cXprop";
      case ConfigId::SafeFlidCfi: return "safe, FLIDs, CFI";
      case ConfigId::SafeFlidInlineCxpropCfi:
        return "safe, FLIDs, inline+cXprop, CFI";
      case ConfigId::CfiOnly: return "CFI only";
    }
    return "?";
}

const std::vector<ConfigId> &
figure3Configs()
{
    static const std::vector<ConfigId> configs = {
        ConfigId::SafeVerboseRam,     ConfigId::SafeVerboseRom,
        ConfigId::SafeTerse,          ConfigId::SafeFlid,
        ConfigId::SafeFlidCxprop,     ConfigId::SafeFlidInlineCxprop,
        ConfigId::UnsafeInlineCxprop,
    };
    return configs;
}

const std::vector<ConfigId> &
cfiConfigs()
{
    static const std::vector<ConfigId> configs = {
        ConfigId::SafeFlidCfi,
        ConfigId::SafeFlidInlineCxpropCfi,
        ConfigId::CfiOnly,
    };
    return configs;
}

const char *
strategyName(CheckStrategy s)
{
    switch (s) {
      case CheckStrategy::GccOnly: return "gcc";
      case CheckStrategy::CcuredOpt: return "CCured opt + gcc";
      case CheckStrategy::CcuredOptCxprop:
        return "CCured opt + cXprop + gcc";
      case CheckStrategy::CcuredOptInlineCxprop:
        return "CCured opt + inline + cXprop + gcc";
    }
    return "?";
}

PipelineConfig
configFor(ConfigId id, const std::string &platform)
{
    PipelineConfig cfg;
    cfg.platform = platform;
    switch (id) {
      case ConfigId::Baseline:
        cfg.safe = false;
        break;
      // The pre-FLID configurations use the already-ported (trimmed)
      // runtime, like the paper's evaluation: the naive x86/OS port
      // is measured separately by the §2.3 experiment. Their RAM blow
      // up comes from the per-check verbose strings themselves.
      case ConfigId::SafeVerboseRam:
        cfg.safety.errorMode = safety::ErrorMode::VerboseRam;
        break;
      case ConfigId::SafeVerboseRom:
        cfg.safety.errorMode = safety::ErrorMode::VerboseRom;
        break;
      case ConfigId::SafeTerse:
        cfg.safety.errorMode = safety::ErrorMode::Terse;
        break;
      case ConfigId::SafeFlid:
        cfg.safety.errorMode = safety::ErrorMode::Flid;
        break;
      case ConfigId::SafeFlidCxprop:
        cfg.safety.errorMode = safety::ErrorMode::Flid;
        cfg.runCxprop = true;
        cfg.cxprop.inlineFirst = false;
        break;
      case ConfigId::SafeFlidInlineCxprop:
        cfg.safety.errorMode = safety::ErrorMode::Flid;
        cfg.runCxprop = true;
        cfg.cxprop.inlineFirst = true;
        break;
      case ConfigId::UnsafeInlineCxprop:
        cfg.safe = false;
        cfg.runCxprop = true;
        cfg.cxprop.inlineFirst = true;
        break;
      case ConfigId::SafeFlidCfi:
        cfg.safety.errorMode = safety::ErrorMode::Flid;
        cfg.safety.cfi = true;
        break;
      case ConfigId::SafeFlidInlineCxpropCfi:
        cfg.safety.errorMode = safety::ErrorMode::Flid;
        cfg.safety.cfi = true;
        cfg.runCxprop = true;
        cfg.cxprop.inlineFirst = true;
        break;
      case ConfigId::CfiOnly:
        cfg.safety.errorMode = safety::ErrorMode::Flid;
        cfg.safety.cfi = true;
        cfg.safety.memoryChecks = false;
        break;
    }
    return cfg;
}

PipelineConfig
configForStrategy(CheckStrategy s, const std::string &platform)
{
    PipelineConfig cfg;
    cfg.platform = platform;
    cfg.safe = true;
    cfg.safety.errorMode = safety::ErrorMode::Flid;
    cfg.safety.insertCheckTags = true;
    switch (s) {
      case CheckStrategy::GccOnly:
        cfg.safety.ccuredOptimizer = false;
        break;
      case CheckStrategy::CcuredOpt:
        cfg.safety.ccuredOptimizer = true;
        break;
      case CheckStrategy::CcuredOptCxprop:
        cfg.safety.ccuredOptimizer = true;
        cfg.runCxprop = true;
        cfg.cxprop.inlineFirst = false;
        break;
      case CheckStrategy::CcuredOptInlineCxprop:
        cfg.safety.ccuredOptimizer = true;
        cfg.runCxprop = true;
        cfg.cxprop.inlineFirst = true;
        break;
    }
    return cfg;
}

FrontendProduct
runFrontend(const std::string &name, const std::string &src)
{
    FrontendProduct fe;
    fe.sourceManager = std::make_shared<SourceManager>();
    DiagnosticEngine diags(fe.sourceManager.get());
    std::vector<frontend::CompileInput> inputs;
    inputs.push_back({"tinyos_lib.tc", tinyos::libSource()});
    inputs.push_back({name + ".tc", src});
    fe.module =
        frontend::compileTinyC(inputs, diags, *fe.sourceManager, name);
    if (diags.hasErrors())
        fatal("TinyC compilation of " + name + " failed:\n" +
              diags.dump());
    verifyOrDie(fe.module, "frontend");
    return fe;
}

//---------------------------------------------------------------------
// Stage functions
//---------------------------------------------------------------------

SafetyProduct
runSafetyStage(Module m, const SourceManager *sm,
               const PipelineConfig &cfg)
{
    SafetyProduct sp;
    if (cfg.safe) {
        sp.report = safety::applySafety(m, cfg.safety, sm);
        verifyOrDie(m, "safety");
    }
    sp.module = std::make_shared<const Module>(std::move(m));
    return sp;
}

OptProduct
runOptStage(SafetyProduct sp, const PipelineConfig &cfg)
{
    OptProduct op;
    if (cfg.runCxprop) {
        Module m = sp.module->clone();
        op.report = opt::runCxprop(m, cfg.cxprop);
        verifyOrDie(m, "cxprop");
        op.module = std::make_shared<const Module>(std::move(m));
    } else {
        // Pass-through: share the safety product's module outright.
        op.module = sp.module;
    }
    op.safetyReport = std::move(sp.report);
    return op;
}

BuildResult
runBackendStage(OptProduct op, const PipelineConfig &cfg)
{
    BuildResult result;
    result.safetyReport = std::move(op.safetyReport);
    result.cxpropReport = op.report;
    backend::TargetInfo target = cfg.platform == "TelosB"
                                     ? backend::TargetInfo::telosb()
                                     : backend::TargetInfo::mica2();
    // The late backend optimizations mutate the module into the final
    // IR the result carries, so the shared input is cloned.
    result.module = op.module->clone();
    result.image =
        backend::compileToTarget(result.module, target, cfg.backend);
    result.codeBytes = result.image.codeBytes();
    result.ramBytes = result.image.ramDataBytes();
    result.romDataBytes = result.image.romDataBytes();
    result.survivingChecks = result.image.survivingCheckTags();
    return result;
}

//---------------------------------------------------------------------
// Fingerprints
//---------------------------------------------------------------------

namespace {

std::string
concurrencyFingerprint(const analysis::ConcurrencyOptions &c)
{
    return strfmt("norace=%d,followptr=%d", c.suppressNorace ? 1 : 0,
                  c.followPointers ? 1 : 0);
}

} // namespace

std::string
safetyFingerprint(const PipelineConfig &cfg)
{
    if (!cfg.safe)
        return "unsafe";
    const safety::SafetyConfig &s = cfg.safety;
    return strfmt("safe:mode=%d,ccopt=%d,naive=%d,tags=%d,lock=%d,"
                  "mem=%d,cfi=%d,%s",
                  static_cast<int>(s.errorMode),
                  s.ccuredOptimizer ? 1 : 0, s.naiveRuntime ? 1 : 0,
                  s.insertCheckTags ? 1 : 0, s.lockRacyChecks ? 1 : 0,
                  s.memoryChecks ? 1 : 0, s.cfi ? 1 : 0,
                  concurrencyFingerprint(s.concurrency).c_str());
}

std::string
optFingerprint(const PipelineConfig &cfg)
{
    if (!cfg.runCxprop)
        return "nocx";
    const opt::CxpropOptions &o = cfg.cxprop;
    return strfmt("cx:iv=%d,bits=%d,inl=%d,budget=%u,single=%d,"
                  "inlrounds=%d,rounds=%d,atom=%d,chk=%d,copy=%d,"
                  "dce=%d,%s",
                  o.domains.intervals ? 1 : 0,
                  o.domains.knownBits ? 1 : 0, o.inlineFirst ? 1 : 0,
                  o.inlineOpts.sizeBudget,
                  o.inlineOpts.inlineSingleCallSite ? 1 : 0,
                  o.inlineOpts.maxRounds, o.maxRounds,
                  o.optimizeAtomics ? 1 : 0, o.removeChecks ? 1 : 0,
                  o.copyProp ? 1 : 0, o.strongDce ? 1 : 0,
                  concurrencyFingerprint(o.concurrency).c_str());
}

std::string
backendFingerprint(const PipelineConfig &cfg)
{
    return strfmt("be:%s,opt=%d,late=%d,budget=%u",
                  cfg.platform.c_str(), cfg.backend.gcc.optimize ? 1 : 0,
                  cfg.backend.gcc.lateInline ? 1 : 0,
                  cfg.backend.gcc.inlineBudget);
}

BuildResult
buildFromFrontend(const FrontendProduct &fe, const PipelineConfig &cfg)
{
    return runBackendStage(
        runOptStage(runSafetyStage(fe.module.clone(),
                                   fe.sourceManager.get(), cfg),
                    cfg),
        cfg);
}

BuildResult
buildSource(const std::string &name, const std::string &src,
            const PipelineConfig &cfg)
{
    FrontendProduct fe = runFrontend(name, src);
    return runBackendStage(
        runOptStage(runSafetyStage(std::move(fe.module),
                                   fe.sourceManager.get(), cfg),
                    cfg),
        cfg);
}

BuildResult
buildApp(const tinyos::AppInfo &app, const PipelineConfig &cfg)
{
    return buildSource(app.name, app.source, cfg);
}

double
simSeconds(double fallback)
{
    if (const char *env = std::getenv("SAFE_TINYOS_SIM_SECONDS")) {
        double v = std::atof(env);
        if (v > 0)
            return v;
    }
    return fallback;
}

namespace {

SimOutcome
collectOutcome(sim::Network &net, uint64_t cycles)
{
    net.run(cycles);
    const sim::Machine &m = net.mote(0);
    SimOutcome out;
    out.dutyCycle = m.dutyCycle();
    out.awakeCycles = m.awakeCycles();
    out.totalCycles = m.cycles();
    out.instructions = m.instructionsExecuted();
    out.halted = m.halted();
    out.wedged = m.wedged();
    out.failedFlid = m.failedFlid();
    out.uartLog = m.devices().uartLog();
    out.traps = m.traps();
    out.cfiTraps = m.cfiTraps();
    out.reboots = m.reboots();
    out.crashes = m.crashes();
    out.downCycles = m.downCycles();
    out.wedgedCycles = m.wedgedCycles();
    out.availability = m.availability();
    out.trapLog = m.trapLog();
    out.packetsDropped = m.devices().packetsDropped();
    out.packetsCorrupted = m.devices().packetsCorrupted();
    out.packetsDuplicated = m.devices().packetsDuplicated();
    return out;
}

} // namespace

SimOutcome
simulateInContext(const backend::MProgram &image,
                  const std::vector<const backend::MProgram *> &companions,
                  double seconds, const sim::NetworkOptions &netOpts)
{
    if (netOpts.mode != sim::ExecMode::Legacy) {
        // Decode each distinct image once, shared by every mote that
        // runs it (Surge's context runs the same firmware twice).
        std::map<const backend::MProgram *,
                 std::shared_ptr<const sim::DecodedProgram>>
            decodes;
        auto decodeOf = [&](const backend::MProgram &img) {
            auto &slot = decodes[&img];
            if (!slot)
                slot = std::make_shared<const sim::DecodedProgram>(img);
            return slot;
        };
        auto dimage = decodeOf(image);
        std::vector<std::shared_ptr<const sim::DecodedProgram>> dcomps;
        for (const backend::MProgram *cimg : companions)
            dcomps.push_back(decodeOf(*cimg));
        return simulateDecoded(dimage, dcomps, seconds, netOpts);
    }
    uint64_t cycles = static_cast<uint64_t>(
        seconds * static_cast<double>(image.target.clockHz));
    sim::Network net(netOpts);
    net.addMote(image, 1);
    uint8_t nextId = 2;
    for (const backend::MProgram *cimg : companions)
        net.addMote(*cimg, nextId++);
    return collectOutcome(net, cycles);
}

SimOutcome
simulateDecoded(
    const std::shared_ptr<const sim::DecodedProgram> &image,
    const std::vector<std::shared_ptr<const sim::DecodedProgram>>
        &companions,
    double seconds, const sim::NetworkOptions &netOpts)
{
    uint64_t cycles = static_cast<uint64_t>(
        seconds *
        static_cast<double>(image->program().target.clockHz));
    sim::Network net(netOpts);
    net.addMote(image, 1);
    uint8_t nextId = 2;
    for (const auto &cimg : companions)
        net.addMote(cimg, nextId++);
    return collectOutcome(net, cycles);
}

double
measureDutyCycle(const tinyos::AppInfo &app,
                 const backend::MProgram &image, double seconds)
{
    PipelineConfig base = configFor(ConfigId::Baseline, app.platform);
    std::vector<backend::MProgram> companions;
    for (const auto &cname : app.companions) {
        const auto &capp = tinyos::appByName(cname);
        companions.push_back(buildApp(capp, base).image);
    }
    std::vector<const backend::MProgram *> ptrs;
    for (const auto &cimg : companions)
        ptrs.push_back(&cimg);
    return simulateInContext(image, ptrs, seconds).dutyCycle;
}

} // namespace stos::core
