/**
 * @file
 * The simulation-matrix vocabulary (SimOptions / SimRecord /
 * SimReport and the static+dynamic join emitters) shared by the
 * Experiment facade, plus the SimDriver equivalence helpers. The
 * simulation engine itself (worker pool, companion memoization) lives
 * in core/experiment.cpp as Experiment::simulateBuilds.
 */
#ifndef STOS_CORE_SIMDRIVER_H
#define STOS_CORE_SIMDRIVER_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.h"
#include "core/stagecache.h"
#include "sim/decoded.h"

namespace stos::core {

struct SimOptions {
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /**
     * Build each companion image once per (companion, platform). Off =
     * rebuild the companions for every cell (the serial-equivalent
     * behaviour the equivalence gate compares against).
     */
    bool memoizeCompanions = true;
    /** Simulated duration per cell, in seconds of mote time. */
    double seconds = 3.0;
    /**
     * Interpreter core. Threaded (the default) and Predecoded share
     * one immutable decode per firmware image (memoized companions
     * decode once per process); Threaded additionally executes the
     * fused direct-threaded stream. Legacy is the reference
     * interpreter the equivalence gates compare against.
     */
    sim::ExecMode mode = sim::ExecMode::Threaded;
    /**
     * Threads stepping the motes of each multi-mote network inside
     * its lookahead windows (1 = serial). Leave at 1 when the driver
     * already saturates the machine with per-cell parallelism.
     */
    unsigned netThreads = 1;
};

/** One simulated cell of the matrix. */
struct SimRecord {
    std::string app;
    std::string platform;
    std::string config;       ///< column label
    uint32_t appIndex = 0;
    uint32_t configIndex = 0;
    bool ok = false;
    std::string error;        ///< build or simulation failure
    SimOutcome outcome;       ///< valid only when ok
    bool companionsReused = false; ///< all companions came from the memo
    double millis = 0.0;      ///< wall time of this cell's simulation
};

/** The simulated matrix, app-major then config-minor. */
struct SimReport {
    size_t numApps = 0;
    size_t numConfigs = 0;
    std::vector<SimRecord> records;
    double seconds = 0.0;        ///< simulated duration per cell
    size_t companionBuilds = 0;  ///< companion compiles executed
    size_t companionReuses = 0;  ///< companion requests served by memo
    double wallMillis = 0.0;
    unsigned jobsUsed = 1;

    SimRecord &at(size_t app, size_t cfg);
    const SimRecord &at(size_t app, size_t cfg) const;
    const SimRecord *find(const std::string &app,
                          const std::string &config) const;
    bool allOk() const;
    /** One-line stats string for benchmark headers. */
    std::string summary() const;

    /** One row per cell (RFC-4180 quoting), header line included. */
    void emitCsv(std::ostream &os) const;
    /** Matrix metadata + one object per cell. */
    void emitJson(std::ostream &os) const;

    /**
     * Join this simulated matrix against the BuildReport it was run
     * from and emit one combined static+dynamic row per cell (code /
     * RAM / ROM sizes and surviving checks next to duty cycle and
     * execution counters), so Figure-3 style tables plot from a
     * single file. Throws FatalError if the matrices don't describe
     * the same cells.
     */
    void joinCsv(const BuildReport &builds, std::ostream &os) const;
    /** JSON flavour of the same join. */
    void joinJson(const BuildReport &builds, std::ostream &os) const;
};

/**
 * Simulation-matrix equivalence vocabulary. The simulation engine
 * lives in the Experiment facade (core/experiment.h) as
 * Experiment::simulateBuilds; the serial/parallel and
 * legacy/predecoded equivalence gates compare its reports with the
 * helpers below.
 */
class SimDriver {
  public:
    /** Field-for-field equivalence of two sim records (not timing). */
    static bool recordsEquivalent(const SimRecord &a, const SimRecord &b,
                                  std::string *why = nullptr);
    /** Cell-for-cell equivalence of two reports. */
    static bool reportsEquivalent(const SimReport &a, const SimReport &b,
                                  std::string *why = nullptr);
};

} // namespace stos::core

#endif
