/**
 * @file
 * SimDriver: a thread-pooled batch runner for the cycle-accurate
 * network simulations behind Figure 3(c) and the runtime-overhead
 * measurements. It mirrors BuildDriver: given a BuildReport (the
 * compiled app × config matrix), it simulates every cell's firmware
 * in its sensor-network context concurrently and collects duty
 * cycles, cycle/instruction counts, and wedged/failed status into a
 * SimReport with deterministic app-major ordering. Companion mote
 * firmware (always the Baseline build of the companion app) is
 * compiled once per (companion, platform) in a thread-safe memo
 * shared by all cells, instead of once per simulation.
 */
#ifndef STOS_CORE_SIMDRIVER_H
#define STOS_CORE_SIMDRIVER_H

#include <atomic>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/driver.h"
#include "sim/decoded.h"

namespace stos::core {

/**
 * Thread-safe memo of Baseline companion firmware, keyed by
 * (app name, platform). The first caller to request a key builds it —
 * compile AND predecode; concurrent callers for the same key block on
 * that build and then share the immutable image/decode. Build
 * failures are cached too, and rethrown to every requester. The cache
 * outlives any single SimDriver::run: pass one instance to several
 * runs (e.g. the parallel run and its serial equivalence gate) and
 * the companions are built exactly once per process.
 */
class CompanionCache {
  public:
    /**
     * Baseline image for `name` on `platform`; builds at most once.
     * `builtHere`, when non-null, is set to whether this call did the
     * build (vs being served from the memo).
     */
    std::shared_ptr<const backend::MProgram>
    get(const std::string &name, const std::string &platform,
        bool *builtHere = nullptr);

    /** The shared predecode of the same image (built alongside it). */
    std::shared_ptr<const sim::DecodedProgram>
    getDecoded(const std::string &name, const std::string &platform,
               bool *builtHere = nullptr);

    /** Companion compiles actually executed. */
    size_t builds() const { return builds_.load(); }
    /** Requests served from the memo without building. */
    size_t hits() const { return hits_.load(); }

  private:
    struct Entry {
        std::once_flag once;
        std::shared_ptr<const backend::MProgram> image;
        std::shared_ptr<const sim::DecodedProgram> decoded;
        std::exception_ptr error;
    };

    std::shared_ptr<Entry> entryFor(const std::string &name,
                                    const std::string &platform,
                                    bool *builtHere);

    std::mutex mu_;
    std::map<std::pair<std::string, std::string>,
             std::shared_ptr<Entry>>
        entries_;
    std::atomic<size_t> builds_{0};
    std::atomic<size_t> hits_{0};
};

struct SimOptions {
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /**
     * Build each companion image once per (companion, platform). Off =
     * rebuild the companions for every cell (the serial-equivalent
     * behaviour the equivalence gate compares against).
     */
    bool memoizeCompanions = true;
    /** Simulated duration per cell, in seconds of mote time. */
    double seconds = 3.0;
    /**
     * Interpreter core. Predecoded shares one immutable decode per
     * firmware image (memoized companions decode once per process);
     * Legacy is the reference interpreter the equivalence gates
     * compare against.
     */
    sim::ExecMode mode = sim::ExecMode::Predecoded;
    /**
     * Threads stepping the motes of each multi-mote network inside
     * its lookahead windows (1 = serial). Leave at 1 when the driver
     * already saturates the machine with per-cell parallelism.
     */
    unsigned netThreads = 1;
};

/** One simulated cell of the matrix. */
struct SimRecord {
    std::string app;
    std::string platform;
    std::string config;       ///< column label
    uint32_t appIndex = 0;
    uint32_t configIndex = 0;
    bool ok = false;
    std::string error;        ///< build or simulation failure
    SimOutcome outcome;       ///< valid only when ok
    bool companionsReused = false; ///< all companions came from the memo
    double millis = 0.0;      ///< wall time of this cell's simulation
};

/** The simulated matrix, app-major then config-minor. */
struct SimReport {
    size_t numApps = 0;
    size_t numConfigs = 0;
    std::vector<SimRecord> records;
    double seconds = 0.0;        ///< simulated duration per cell
    size_t companionBuilds = 0;  ///< companion compiles executed
    size_t companionReuses = 0;  ///< companion requests served by memo
    double wallMillis = 0.0;
    unsigned jobsUsed = 1;

    SimRecord &at(size_t app, size_t cfg);
    const SimRecord &at(size_t app, size_t cfg) const;
    const SimRecord *find(const std::string &app,
                          const std::string &config) const;
    bool allOk() const;
    /** One-line stats string for benchmark headers. */
    std::string summary() const;

    /** One row per cell (RFC-4180 quoting), header line included. */
    void emitCsv(std::ostream &os) const;
    /** Matrix metadata + one object per cell. */
    void emitJson(std::ostream &os) const;

    /**
     * Join this simulated matrix against the BuildReport it was run
     * from and emit one combined static+dynamic row per cell (code /
     * RAM / ROM sizes and surviving checks next to duty cycle and
     * execution counters), so Figure-3 style tables plot from a
     * single file. Throws FatalError if the matrices don't describe
     * the same cells.
     */
    void joinCsv(const BuildReport &builds, std::ostream &os) const;
    /** JSON flavour of the same join. */
    void joinJson(const BuildReport &builds, std::ostream &os) const;
};

/**
 * Batch network simulator. run() fans the per-cell simulations of a
 * BuildReport out across a thread pool; independent sim::Network
 * instances share nothing but the immutable firmware images, so the
 * cells are embarrassingly parallel. run() is const: one driver can
 * be run repeatedly (e.g. serial vs parallel) over the same builds.
 */
class SimDriver {
  public:
    explicit SimDriver(SimOptions opts = {}) : opts_(opts) {}

    SimOptions &options() { return opts_; }

    /**
     * Simulate every successfully built cell of `builds` (failed
     * builds become failed sim records). The report must outlive the
     * call only; the returned SimReport owns no firmware.
     */
    SimReport run(const BuildReport &builds) const;

    /**
     * As above, but companion firmware comes from (and is added to)
     * the caller's persistent cache, so repeated runs — serial
     * equivalence gates in particular — never rebuild a companion.
     * The report's companionBuilds/companionReuses count this run
     * only.
     */
    SimReport run(const BuildReport &builds,
                  CompanionCache &cache) const;

    /** Field-for-field equivalence of two sim records (not timing). */
    static bool recordsEquivalent(const SimRecord &a, const SimRecord &b,
                                  std::string *why = nullptr);
    /** Cell-for-cell equivalence of two reports. */
    static bool reportsEquivalent(const SimReport &a, const SimReport &b,
                                  std::string *why = nullptr);

  private:
    SimOptions opts_;
};

} // namespace stos::core

#endif
