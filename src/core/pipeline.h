/**
 * @file
 * The Safe TinyOS pipeline (paper Figure 1): nesC-analogue frontend →
 * hardware-access refactoring → CCured-analogue safety transformer →
 * custom inliner → cXprop → GCC-analogue backend. Provides the named
 * build configurations that the evaluation figures compare, and the
 * sensor-network simulation contexts used for duty-cycle numbers.
 */
#ifndef STOS_CORE_PIPELINE_H
#define STOS_CORE_PIPELINE_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "ir/module.h"
#include "opt/cxprop.h"
#include "safety/ccured.h"
#include "sim/machine.h"
#include "support/binio.h"
#include "tinyos/tinyos.h"

namespace stos::core {

/** The configurations evaluated in the paper's Figure 3. */
enum class ConfigId {
    Baseline,          ///< unsafe, unoptimized (the 100% reference)
    SafeVerboseRam,    ///< C1: safe, verbose error strings in SRAM
    SafeVerboseRom,    ///< C2: strings moved to flash
    SafeTerse,         ///< C3: terse error messages
    SafeFlid,          ///< C4: FLID-compressed messages
    SafeFlidCxprop,    ///< C5: C4 + cXprop (no inlining)
    SafeFlidInlineCxprop,  ///< C6: C4 + inliner + cXprop
    UnsafeInlineCxprop,    ///< C7: unsafe + inliner + cXprop
    // Control-flow-integrity columns (src/cfi/): forward-edge label
    // checks on indirect calls + shadow-stack return checks, layered
    // on the Figure-3 configurations.
    SafeFlidCfi,           ///< C4 + CFI
    SafeFlidInlineCxpropCfi,  ///< C6 + CFI
    CfiOnly,               ///< CFI checks without memory-safety checks
};

const char *configName(ConfigId id);
const std::vector<ConfigId> &figure3Configs();
/** The CFI column family (bench/cfi_overhead, attack suite). */
const std::vector<ConfigId> &cfiConfigs();

/** Check-elimination strategies compared in Figure 2. */
enum class CheckStrategy {
    GccOnly,              ///< (1) GCC by itself
    CcuredOpt,            ///< (2) CCured optimizer, then GCC
    CcuredOptCxprop,      ///< (3) + cXprop without inlining
    CcuredOptInlineCxprop ///< (4) + inlining + cXprop
};

const char *strategyName(CheckStrategy s);

struct PipelineConfig {
    bool safe = true;
    safety::SafetyConfig safety;
    bool runCxprop = false;
    opt::CxpropOptions cxprop;
    backend::BackendOptions backend;
    std::string platform = "Mica2";
};

/** Build a PipelineConfig for a named Figure-3 configuration. */
PipelineConfig configFor(ConfigId id, const std::string &platform);
/** Build a PipelineConfig for a Figure-2 strategy (tagged checks). */
PipelineConfig configForStrategy(CheckStrategy s,
                                 const std::string &platform);

struct BuildResult {
    ir::Module module;            ///< final optimized IR
    backend::MProgram image;      ///< linked firmware
    safety::SafetyReport safetyReport;
    opt::CxpropReport cxpropReport;
    uint32_t codeBytes = 0;
    uint32_t ramBytes = 0;
    uint32_t romDataBytes = 0;
    uint32_t survivingChecks = 0;  ///< via the tag-string methodology

    /** Artifact-store persistence (core/serialize.cpp). */
    void serialize(support::BinWriter &w) const;
    static BuildResult deserialize(support::BinReader &r);
};

//---------------------------------------------------------------------
// The stage graph
//
// The pipeline is an explicit four-stage graph,
//
//   Frontend -> Safety -> Opt -> Backend
//
// where each stage is a pure function of its predecessor's product
// and the *stage-relevant slice* of the PipelineConfig (the
// fingerprint functions below). Splitting here lets StageCache share
// work between evaluation-matrix columns that only diverge late:
// C4/C5/C6 differ only in cXprop/inlining, so they share one safety
// run per app; Baseline/C7 share the unsafe pass-through.
//---------------------------------------------------------------------

/**
 * Output of the config-independent frontend stage (library + app
 * parsed, lowered, verified). The pipeline splits here so a batch
 * driver can parse each app once and clone the module per
 * configuration. The SourceManager is shared read-only by every
 * downstream build (the safety stage reads file names for FLIDs).
 */
struct FrontendProduct {
    ir::Module module;
    std::shared_ptr<SourceManager> sourceManager;

    /** Artifact-store persistence (core/serialize.cpp). */
    void serialize(support::BinWriter &w) const;
    static FrontendProduct deserialize(support::BinReader &r);
};

/**
 * Output of the safety stage: the module with CCured-analogue checks
 * plus the stage's report. The module is held immutably behind a
 * shared_ptr: when the configuration is unsafe the stage is a
 * verbatim pass-through, and the product *aliases* the upstream
 * frontend module instead of storing a clone (the same module bytes
 * are never resident twice).
 */
struct SafetyProduct {
    std::shared_ptr<const ir::Module> module;
    safety::SafetyReport report;

    /** Artifact-store persistence (core/serialize.cpp). */
    void serialize(support::BinWriter &w) const;
    static SafetyProduct deserialize(support::BinReader &r);
};

/**
 * Output of the opt stage: the module after cXprop. When cXprop is
 * off the stage is a pass-through and the product shares the safety
 * product's module pointer outright. Carries the upstream safety
 * report along so the backend stage can assemble a complete
 * BuildResult without reaching back into the graph.
 */
struct OptProduct {
    std::shared_ptr<const ir::Module> module;
    safety::SafetyReport safetyReport;
    opt::CxpropReport report;

    /** Artifact-store persistence (core/serialize.cpp). */
    void serialize(support::BinWriter &w) const;
    static OptProduct deserialize(support::BinReader &r);
};

/** Run the frontend on one source (library included); throws on error. */
FrontendProduct runFrontend(const std::string &name,
                            const std::string &src);

/**
 * Safety stage. Consumes `m` (pass a clone to keep the input). `sm`
 * may be null for modules without source locations (tests). When the
 * config is unsafe the module passes through untransformed.
 */
SafetyProduct runSafetyStage(ir::Module m, const SourceManager *sm,
                             const PipelineConfig &cfg);

/**
 * Opt (cXprop) stage. The input module is shared immutably: when
 * cXprop runs it transforms a clone; when it is off the output shares
 * the input pointer (pass-through, no copy).
 */
OptProduct runOptStage(SafetyProduct sp, const PipelineConfig &cfg);

/**
 * Backend stage: late opts, isel, link. Clones the shared input
 * module (the backend's late optimizations mutate it into the final
 * IR the BuildResult carries).
 */
BuildResult runBackendStage(OptProduct op, const PipelineConfig &cfg);

/**
 * Stage-relevant fingerprints of a PipelineConfig: two configs with
 * equal fingerprints produce byte-identical products from that stage
 * (given identical inputs), so the fingerprint is the cache-key
 * component StageCache uses for that stage. Changing a field that a
 * stage never reads (e.g. CxpropOptions for the safety stage) must
 * not change that stage's fingerprint — test_stagecache enforces
 * this. New PipelineConfig fields must be added to the fingerprint of
 * every stage that reads them.
 */
std::string safetyFingerprint(const PipelineConfig &cfg);
std::string optFingerprint(const PipelineConfig &cfg);
std::string backendFingerprint(const PipelineConfig &cfg);

/**
 * Run the config-dependent stages (safety, cXprop, backend) on a
 * clone of the memoized frontend output. Safe to call concurrently on
 * the same FrontendProduct from multiple threads. Equivalent to
 * chaining the three stage functions above.
 */
BuildResult buildFromFrontend(const FrontendProduct &fe,
                              const PipelineConfig &cfg);

/** Run the full pipeline on one application. */
BuildResult buildApp(const tinyos::AppInfo &app,
                     const PipelineConfig &cfg);

/** Compile arbitrary TinyC source (library included) — for examples. */
BuildResult buildSource(const std::string &name, const std::string &src,
                        const PipelineConfig &cfg);

/** Execution statistics of one simulated network run (mote 0). */
struct SimOutcome {
    double dutyCycle = 0.0;
    uint64_t awakeCycles = 0;
    uint64_t totalCycles = 0;
    uint64_t instructions = 0;
    bool halted = false;   ///< main returned / stack fault
    bool wedged = false;   ///< stuck in a failure-handler self loop
    uint32_t failedFlid = 0;  ///< first trap's FLID (0 = none)
    std::string uartLog;   ///< mote-under-test UART output
    // Fault-injection and recovery observables (sim/fault.h).
    uint32_t traps = 0;
    uint32_t cfiTraps = 0;  ///< traps() subset fired by CFI checks
    uint32_t reboots = 0;
    uint32_t crashes = 0;
    uint64_t downCycles = 0;
    uint64_t wedgedCycles = 0;
    double availability = 1.0;  ///< up-cycles / total cycles
    std::vector<sim::TrapEntry> trapLog;  ///< bounded (kMaxTrapLog)
    uint32_t packetsDropped = 0;
    uint32_t packetsCorrupted = 0;
    uint32_t packetsDuplicated = 0;
};

/**
 * Simulate `image` as mote 1 of a network whose remaining motes run
 * the given companion images, for `seconds` of simulated time. The
 * images are only read; concurrent runs may share them. `net` selects
 * the interpreter core and the network scheduling strategy.
 */
SimOutcome
simulateInContext(const backend::MProgram &image,
                  const std::vector<const backend::MProgram *> &companions,
                  double seconds, const sim::NetworkOptions &net = {});

/**
 * As above, but on predecoded images: each mote executes the shared
 * immutable decode instead of re-decoding its firmware — this is what
 * SimDriver feeds with memoized companion decodes.
 */
SimOutcome simulateDecoded(
    const std::shared_ptr<const sim::DecodedProgram> &image,
    const std::vector<std::shared_ptr<const sim::DecodedProgram>>
        &companions,
    double seconds, const sim::NetworkOptions &net = {});

/**
 * Simulate the app in its sensor-network context (companion motes run
 * baseline builds) for `seconds` of simulated time; returns the duty
 * cycle of the mote under test. Convenience wrapper that rebuilds the
 * companions on every call — batch workloads should go through
 * SimDriver, which memoizes companion images per (app, platform).
 */
double measureDutyCycle(const tinyos::AppInfo &app,
                        const backend::MProgram &image, double seconds);

/** Default simulated duration (overridable via SAFE_TINYOS_SIM_SECONDS). */
double simSeconds(double fallback);

} // namespace stos::core

#endif
