/**
 * @file
 * Stage-product (de)serialization for the artifact store: every stage
 * product declared in pipeline.h carries a uniform
 * serialize(BinWriter&) / deserialize(BinReader&) pair, composed from
 * the module/image encoders (ir/serialize.h, backend/serialize.h) and
 * the report/source-manager encoders below. A future stage gets
 * persistence by adding the same pair — the store itself never learns
 * per-type layout.
 */
#include "core/pipeline.h"

#include "backend/serialize.h"
#include "ir/serialize.h"

namespace stos::core {

using support::BinReader;
using support::BinWriter;

namespace {

void
writeCountMap(BinWriter &w, const std::map<std::string, uint32_t> &m)
{
    w.u64(m.size());
    for (const auto &[k, v] : m) {
        w.str(k);
        w.u32(v);
    }
}

std::map<std::string, uint32_t>
readCountMap(BinReader &r)
{
    std::map<std::string, uint32_t> m;
    size_t n = r.u64();
    for (size_t i = 0; i < n; ++i) {
        std::string k = r.str();
        m[k] = r.u32();
    }
    return m;
}

void
writeSafetyReport(BinWriter &w, const safety::SafetyReport &rep)
{
    w.u32(rep.checksInserted);
    writeCountMap(w, rep.checksByKind);
    w.u32(rep.staticallySafeAccesses);
    w.u32(rep.redundantChecksDropped);
    w.u32(rep.locksInserted);
    w.u32(rep.racyGlobals);
    writeCountMap(w, rep.kindHistogram);
    w.u32(rep.cfiClasses);
    w.u32(rep.cfiForwardChecks);
    w.u32(rep.cfiReturnSites);
}

safety::SafetyReport
readSafetyReport(BinReader &r)
{
    safety::SafetyReport rep;
    rep.checksInserted = r.u32();
    rep.checksByKind = readCountMap(r);
    rep.staticallySafeAccesses = r.u32();
    rep.redundantChecksDropped = r.u32();
    rep.locksInserted = r.u32();
    rep.racyGlobals = r.u32();
    rep.kindHistogram = readCountMap(r);
    rep.cfiClasses = r.u32();
    rep.cfiForwardChecks = r.u32();
    rep.cfiReturnSites = r.u32();
    return rep;
}

void
writeCxpropReport(BinWriter &w, const opt::CxpropReport &rep)
{
    w.u32(rep.funcsInlined);
    w.u32(rep.instrsConstFolded);
    w.u32(rep.branchesFolded);
    w.u32(rep.checksRemoved);
    w.u32(rep.copiesPropagated);
    w.u32(rep.deadInstrsRemoved);
    w.u32(rep.deadStoresRemoved);
    w.u32(rep.deadGlobalsRemoved);
    w.u32(rep.deadFuncsRemoved);
    w.u32(rep.atomicsRemoved);
    w.u32(rep.atomicSavesDowngraded);
    w.i32(rep.rounds);
}

opt::CxpropReport
readCxpropReport(BinReader &r)
{
    opt::CxpropReport rep;
    rep.funcsInlined = r.u32();
    rep.instrsConstFolded = r.u32();
    rep.branchesFolded = r.u32();
    rep.checksRemoved = r.u32();
    rep.copiesPropagated = r.u32();
    rep.deadInstrsRemoved = r.u32();
    rep.deadStoresRemoved = r.u32();
    rep.deadGlobalsRemoved = r.u32();
    rep.deadFuncsRemoved = r.u32();
    rep.atomicsRemoved = r.u32();
    rep.atomicSavesDowngraded = r.u32();
    rep.rounds = r.i32();
    return rep;
}

void
writeSourceManager(BinWriter &w, const SourceManager &sm)
{
    // Buffer 0 is the constructor's "<unknown>" sentinel; persist only
    // the registered buffers and re-add them in order on read.
    w.u64(sm.numFiles() - 1);
    for (uint32_t id = 1; id < sm.numFiles(); ++id) {
        w.str(sm.fileName(id));
        w.str(sm.fileText(id));
    }
}

std::shared_ptr<SourceManager>
readSourceManager(BinReader &r)
{
    auto sm = std::make_shared<SourceManager>();
    size_t n = r.u64();
    for (size_t i = 0; i < n; ++i) {
        std::string name = r.str();
        std::string text = r.str();
        sm->addBuffer(std::move(name), std::move(text));
    }
    return sm;
}

} // namespace

//---------------------------------------------------------------------
// Stage products
//---------------------------------------------------------------------

void
FrontendProduct::serialize(BinWriter &w) const
{
    ir::writeModule(w, module);
    writeSourceManager(w, *sourceManager);
}

FrontendProduct
FrontendProduct::deserialize(BinReader &r)
{
    FrontendProduct fe;
    fe.module = ir::readModule(r);
    fe.sourceManager = readSourceManager(r);
    return fe;
}

void
SafetyProduct::serialize(BinWriter &w) const
{
    ir::writeModule(w, *module);
    writeSafetyReport(w, report);
}

SafetyProduct
SafetyProduct::deserialize(BinReader &r)
{
    SafetyProduct sp;
    sp.module = std::make_shared<const ir::Module>(ir::readModule(r));
    sp.report = readSafetyReport(r);
    return sp;
}

void
OptProduct::serialize(BinWriter &w) const
{
    ir::writeModule(w, *module);
    writeSafetyReport(w, safetyReport);
    writeCxpropReport(w, report);
}

OptProduct
OptProduct::deserialize(BinReader &r)
{
    OptProduct op;
    op.module = std::make_shared<const ir::Module>(ir::readModule(r));
    op.safetyReport = readSafetyReport(r);
    op.report = readCxpropReport(r);
    return op;
}

void
BuildResult::serialize(BinWriter &w) const
{
    ir::writeModule(w, module);
    backend::writeProgram(w, image);
    writeSafetyReport(w, safetyReport);
    writeCxpropReport(w, cxpropReport);
    w.u32(codeBytes);
    w.u32(ramBytes);
    w.u32(romDataBytes);
    w.u32(survivingChecks);
}

BuildResult
BuildResult::deserialize(BinReader &r)
{
    BuildResult br;
    br.module = ir::readModule(r);
    br.image = backend::readProgram(r);
    br.safetyReport = readSafetyReport(r);
    br.cxpropReport = readCxpropReport(r);
    br.codeBytes = r.u32();
    br.ramBytes = r.u32();
    br.romDataBytes = r.u32();
    br.survivingChecks = r.u32();
    return br;
}

} // namespace stos::core
