/**
 * @file
 * Hardware-register access refactoring (the "refactor accesses to
 * hardware registers" box in Figure 1). Legacy TinyOS code pokes
 * device registers through casts of constant addresses; CCured would
 * classify those pointers WILD. This pass rewrites constant-address
 * loads/stores that match a declared hwreg into HwRead/HwWrite
 * intrinsics, which need no safety checks.
 */
#ifndef STOS_SAFETY_HWREFACTOR_H
#define STOS_SAFETY_HWREFACTOR_H

#include "ir/module.h"

namespace stos::safety {

/** Returns the number of accesses rewritten. */
uint32_t refactorHardwareAccesses(ir::Module &m);

} // namespace stos::safety

#endif
