/**
 * @file
 * Safety transformer implementation.
 */
#include "safety/ccured.h"

#include <algorithm>
#include <optional>

#include "analysis/callgraph.h"
#include "analysis/pointsto.h"
#include "cfi/cfi.h"
#include "safety/flid.h"
#include "safety/hwrefactor.h"
#include "safety/kinds.h"
#include "safety/runtime.h"
#include "support/util.h"

namespace stos::safety {

using namespace stos::ir;
using namespace stos::analysis;

namespace {

/** Result of statically resolving an access address. */
struct StaticAccess {
    bool resolved = false;       ///< chain ends at a known object
    bool direct = false;         ///< no PtrAdd at all (plain variable)
    bool constant = false;       ///< offset fully constant
    int64_t offset = 0;
    uint32_t objectSize = 0;
    uint32_t rootVreg = 0;       ///< where the chain stopped
};

class Transformer {
  public:
    Transformer(Module &m, const SafetyConfig &cfg, const SourceManager *sm)
        : mod_(m), cfg_(cfg), sm_(sm) {}

    SafetyReport
    run()
    {
        refactorHardwareAccesses(mod_);
        generateRuntime(mod_, cfg_);

        if (cfg_.memoryChecks) {
            // Pointer-kind inference fattens pointer types; the
            // CfiOnly column keeps the baseline memory layout.
            KindInference kinds(mod_);
            kinds.run();
            report_.kindHistogram = kinds.histogram();
        }

        CallGraph cg(mod_);
        PointsTo pts(mod_);
        if (cfg_.memoryChecks) {
            ConcurrencyAnalysis conc(mod_, cg, pts, cfg_.concurrency);
            mod_.racyGlobals().assign(conc.racyGlobals().begin(),
                                      conc.racyGlobals().end());
            report_.racyGlobals =
                static_cast<uint32_t>(conc.racyGlobals().size());

            for (auto &f : mod_.funcs()) {
                if (f.dead || f.attrs.isRuntime)
                    continue;
                instrumentFunction(f, pts, conc);
            }
        }

        if (cfg_.cfi) {
            cfi::CfiInfo ci = cfi::applyCfi(mod_, cg, pts, sm_);
            report_.cfiClasses = ci.classes;
            report_.cfiForwardChecks = ci.forwardChecks;
            report_.cfiReturnSites = ci.returnSites;
            report_.checksInserted += ci.forwardChecks;
            report_.checksByKind[cfi::kForwardKind] += ci.forwardChecks;
        }
        return report_;
    }

  private:
    //--- static access resolution ----------------------------------

    void
    buildDefs(const Function &f)
    {
        // Definitions are stored by value: instrumentation rewrites
        // the instruction lists while def chains are still queried.
        defs_.assign(f.vregs.size(), Instr{});
        defCount_.assign(f.vregs.size(), 0);
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.hasDst()) {
                    if (defCount_[in.dst] < 2)
                        ++defCount_[in.dst];
                    defs_[in.dst] = in;
                }
            }
        }
    }

    StaticAccess
    resolveStatic(const Function &f, uint32_t addrVreg) const
    {
        StaticAccess sa;
        sa.direct = true;
        sa.constant = true;
        uint32_t cur = addrVreg;
        for (int depth = 0; depth < 64; ++depth) {
            sa.rootVreg = cur;
            if (cur >= f.vregs.size() || defCount_[cur] != 1)
                return sa;
            const Instr *in = &defs_[cur];
            switch (in->op) {
              case Opcode::AddrGlobal: {
                const Global &g = mod_.globalAt(in->args[0].index);
                sa.resolved = true;
                sa.objectSize = mod_.typeSize(g.type);
                return sa;
              }
              case Opcode::AddrLocal:
                sa.resolved = true;
                sa.objectSize = mod_.typeSize(f.locals[in->auxA].type);
                return sa;
              case Opcode::Gep:
                sa.offset += in->auxB;
                if (in->args[0].isVReg()) {
                    cur = in->args[0].index;
                    continue;
                }
                return sa;
              case Opcode::PtrAdd: {
                sa.direct = false;
                std::optional<int64_t> idx;
                if (in->args[1].isImm()) {
                    idx = in->args[1].imm;
                } else if (in->args[1].isVReg()) {
                    // Chase a constant index through its definition
                    // (frontend lowering materializes literal indices
                    // into ConstI vregs).
                    uint32_t iv = in->args[1].index;
                    if (iv < defCount_.size() && defCount_[iv] == 1 &&
                        defs_[iv].op == Opcode::ConstI) {
                        idx = defs_[iv].args[0].imm;
                    }
                }
                if (idx)
                    sa.offset += *idx * static_cast<int64_t>(in->auxA);
                else
                    sa.constant = false;
                if (in->args[0].isVReg()) {
                    cur = in->args[0].index;
                    continue;
                }
                return sa;
              }
              case Opcode::Mov:
              case Opcode::Cast:
                if (in->args[0].isVReg()) {
                    cur = in->args[0].index;
                    continue;
                }
                return sa;
              default:
                return sa;
            }
        }
        return sa;
    }

    //--- error-message materialization --------------------------------

    /** Create the per-check error string global, per config. */
    uint32_t
    makeErrorGlobal(const Instr &access, const std::string &kindName,
                    const Function &f)
    {
        std::string text;
        Section sec = Section::Ram;
        switch (cfg_.errorMode) {
          case ErrorMode::VerboseRam:
          case ErrorMode::VerboseRom: {
            std::string file = sm_ && access.loc.valid()
                                   ? sm_->fileName(access.loc.file)
                                   : "<unknown>";
            text = strfmt("%s:%u: %s check failed in %s()",
                          file.c_str(), access.loc.line,
                          kindName.c_str(), f.name.c_str());
            sec = cfg_.errorMode == ErrorMode::VerboseRom ? Section::Rom
                                                          : Section::Ram;
            break;
          }
          case ErrorMode::Terse:
            // Short code: check initial + line number.
            text = strfmt("%c@%u", kindName[0], access.loc.line);
            sec = Section::Ram;
            break;
          case ErrorMode::Flid:
            return 0;  // no device-side string
        }
        Global g;
        g.name = strfmt("__err%u", errCounter_++);
        uint32_t len = static_cast<uint32_t>(text.size()) + 1;
        g.type = mod_.types().arrayTy(mod_.types().u8(), len);
        g.section = sec;
        g.attrs.isString = true;
        g.attrs.isErrorString = true;
        g.init.assign(len, 0);
        for (size_t i = 0; i < text.size(); ++i)
            g.init[i] = static_cast<uint8_t>(text[i]);
        return mod_.addGlobal(std::move(g)) + 1;
    }

    /** Figure-2 methodology: unique tag string per check. */
    uint32_t
    makeCheckTag()
    {
        std::string text = strfmt("__CHECK_%u__", tagCounter_++);
        Global g;
        g.name = strfmt("__tag%u", tagCounter_);
        uint32_t len = static_cast<uint32_t>(text.size()) + 1;
        g.type = mod_.types().arrayTy(mod_.types().u8(), len);
        g.section = Section::Rom;
        g.attrs.isString = true;
        g.attrs.isCheckTag = true;
        g.init.assign(len, 0);
        for (size_t i = 0; i < text.size(); ++i)
            g.init[i] = static_cast<uint8_t>(text[i]);
        return mod_.addGlobal(std::move(g)) + 1;
    }

    //--- instrumentation -------------------------------------------

    struct PendingCheck {
        Opcode op;
        uint32_t vreg;
        uint32_t accessSize;
        const char *kindName;
    };

    /** Which checks does an access through this pointer type need? */
    std::vector<PendingCheck>
    checksFor(const Function &f, uint32_t addrVreg, uint32_t accessSize,
              const StaticAccess &sa)
    {
        const Type &pt = mod_.types().get(f.vregs[addrVreg].type);
        PtrKind k =
            pt.kind == TypeKind::Ptr ? pt.ptrKind : PtrKind::Safe;
        std::vector<PendingCheck> out;
        switch (k) {
          case PtrKind::Unchecked:
          case PtrKind::Safe:
            // Null check on the chain root: the Gep offsets cannot
            // un-null a pointer, and checking the root lets the
            // optimizers see through repeated field accesses.
            out.push_back({Opcode::ChkNull, sa.rootVreg, accessSize,
                           "null"});
            break;
          case PtrKind::FSeq:
            out.push_back({Opcode::ChkUBound, addrVreg, accessSize,
                           "upper-bound"});
            break;
          case PtrKind::Seq:
            out.push_back({Opcode::ChkBounds, addrVreg, accessSize,
                           "bounds"});
            break;
          case PtrKind::Wild:
            out.push_back({Opcode::ChkWild, addrVreg, accessSize,
                           "wild"});
            break;
        }
        if (cfg_.naiveRuntime && accessSize > 1) {
            // The x86 runtime's four-byte alignment checks (§2.3),
            // meaningless on the AVR but present in a straight port.
            // Word alignment is the strongest guarantee a 16-bit
            // target provides; the check still costs code and cycles.
            out.push_back({Opcode::ChkAlign, addrVreg, 2u,
                           "alignment"});
        }
        return out;
    }

    void
    instrumentFunction(Function &f, const PointsTo &pts,
                       const ConcurrencyAnalysis &conc)
    {
        buildDefs(f);
        for (auto &bb : f.blocks) {
            std::vector<Instr> out;
            out.reserve(bb.instrs.size());
            // (check op, vreg) pairs already performed since the last
            // redefinition of the vreg — CCured's redundant-check
            // elimination.
            std::vector<std::pair<Opcode, uint32_t>> done;
            int atomicDepth = 0;
            for (auto &in : bb.instrs) {
                if (in.op == Opcode::AtomicBegin)
                    ++atomicDepth;
                if (in.op == Opcode::AtomicEnd)
                    atomicDepth = atomicDepth > 0 ? atomicDepth - 1 : 0;

                std::vector<PendingCheck> checks;
                bool racy = false;
                if ((in.op == Opcode::Load || in.op == Opcode::Store) &&
                    in.args[0].isVReg()) {
                    uint32_t addr = in.args[0].index;
                    StaticAccess sa = resolveStatic(f, addr);
                    uint32_t accessSize =
                        std::max(1u, mod_.typeSize(in.type));
                    bool skip = false;
                    if (sa.resolved && sa.direct) {
                        // Plain variable / constant field access: not a
                        // pointer dereference at the source level.
                        skip = true;
                        ++report_.staticallySafeAccesses;
                    } else if (cfg_.ccuredOptimizer && sa.resolved &&
                               sa.constant && sa.offset >= 0 &&
                               sa.offset + accessSize <= sa.objectSize) {
                        // CCured optimizer: constant index provably in
                        // bounds of a known object.
                        skip = true;
                        ++report_.staticallySafeAccesses;
                    }
                    if (!skip) {
                        checks = checksFor(f, addr, accessSize, sa);
                        racy = isRacyAccess(f, addr, pts, conc);
                    }
                } else if (in.op == Opcode::CallInd &&
                           in.args[0].isVReg() && !cfg_.cfi) {
                    // Under CFI the label check subsumes the null +
                    // range fnptr check.
                    checks.push_back({Opcode::ChkFnPtr,
                                      in.args[0].index, 0, "fnptr"});
                }

                // Drop checks already performed on the same vreg.
                if (cfg_.ccuredOptimizer) {
                    std::vector<PendingCheck> kept;
                    for (const auto &c : checks) {
                        bool dup = false;
                        for (const auto &[op, v] : done) {
                            if (op == c.op && v == c.vreg) {
                                dup = true;
                                break;
                            }
                        }
                        if (dup)
                            ++report_.redundantChecksDropped;
                        else
                            kept.push_back(c);
                    }
                    checks = std::move(kept);
                }

                bool needLock = cfg_.lockRacyChecks && racy &&
                                atomicDepth == 0 && !checks.empty() &&
                                funcCanBePreempted(f, conc);
                if (needLock) {
                    Instr ab;
                    ab.op = Opcode::AtomicBegin;
                    ab.auxA = conc.atomicNeedsIrqSave(f.id) ? 1 : 0;
                    ab.loc = in.loc;
                    out.push_back(ab);
                    ++report_.locksInserted;
                }
                for (const auto &c : checks) {
                    Instr chk;
                    chk.op = c.op;
                    chk.args = {Operand::vreg(c.vreg)};
                    chk.auxA = c.accessSize;
                    chk.loc = in.loc;
                    chk.flid =
                        allocFlid(mod_, sm_, in.loc, c.kindName, f.name);
                    if (cfg_.insertCheckTags)
                        chk.auxB = makeCheckTag();
                    else
                        chk.auxB = makeErrorGlobal(in, c.kindName, f);
                    out.push_back(chk);
                    ++report_.checksInserted;
                    ++report_.checksByKind[c.kindName];
                    done.push_back({c.op, c.vreg});
                }
                out.push_back(in);
                if (needLock) {
                    Instr ae;
                    ae.op = Opcode::AtomicEnd;
                    ae.auxA = conc.atomicNeedsIrqSave(f.id) ? 1 : 0;
                    ae.loc = in.loc;
                    out.push_back(ae);
                }
                if (in.hasDst()) {
                    // Redefinition invalidates recorded checks.
                    done.erase(std::remove_if(
                                   done.begin(), done.end(),
                                   [&](const auto &p) {
                                       return p.second == in.dst;
                                   }),
                               done.end());
                }
            }
            bb.instrs = std::move(out);
        }
    }

    bool
    funcCanBePreempted(const Function &f,
                       const ConcurrencyAnalysis &conc) const
    {
        // Code that only ever runs inside interrupt handlers cannot be
        // preempted on the AVR (IRQs are off); locking there would be
        // pure overhead.
        const auto &ctx = conc.contextsOf(f.id);
        return ctx.task;
    }

    bool
    isRacyAccess(const Function &f, uint32_t addrVreg, const PointsTo &pts,
                 const ConcurrencyAnalysis &conc) const
    {
        PtsSet targets = pts.accessTargets(f.id, addrVreg);
        for (const MemObj &o : targets) {
            if (o.kind == MemObj::Universal)
                return true;
            if (conc.racyObjects().count(o))
                return true;
        }
        return false;
    }

    Module &mod_;
    const SafetyConfig &cfg_;
    const SourceManager *sm_;
    SafetyReport report_;
    std::vector<Instr> defs_;
    std::vector<uint8_t> defCount_;
    uint32_t errCounter_ = 0;
    uint32_t tagCounter_ = 0;
};

} // namespace

SafetyReport
applySafety(Module &m, const SafetyConfig &cfg, const SourceManager *sm)
{
    Transformer t(m, cfg, sm);
    return t.run();
}

} // namespace stos::safety
