/**
 * @file
 * FLID table implementation.
 */
#include "safety/flid.h"

#include <sstream>

#include "support/util.h"

namespace stos::safety {

using namespace stos::ir;

uint32_t
allocFlid(Module &m, const SourceManager *sm, stos::SourceLoc loc,
          const std::string &checkKind, const std::string &detail)
{
    FlidEntry e;
    e.flid = static_cast<uint32_t>(m.flidTable().size()) + 1;
    e.file = sm && loc.valid() ? sm->fileName(loc.file) : "<unknown>";
    e.line = loc.line;
    e.checkKind = checkKind;
    e.detail = detail;
    m.flidTable().push_back(e);
    return e.flid;
}

std::string
decodeFlid(const Module &m, uint32_t flid)
{
    for (const auto &e : m.flidTable()) {
        if (e.flid == flid) {
            std::string s = strfmt("%s:%u: %s check failed",
                                   e.file.c_str(), e.line,
                                   e.checkKind.c_str());
            if (!e.detail.empty())
                s += " (" + e.detail + ")";
            return s;
        }
    }
    return strfmt("unknown failure id %u", flid);
}

std::string
serializeFlidTable(const Module &m)
{
    std::ostringstream os;
    os << "# flid\tfile\tline\tkind\tdetail\n";
    for (const auto &e : m.flidTable()) {
        os << e.flid << "\t" << e.file << "\t" << e.line << "\t"
           << e.checkKind << "\t" << e.detail << "\n";
    }
    return os.str();
}

std::vector<FlidEntry>
parseFlidTable(const std::string &text)
{
    std::vector<FlidEntry> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        FlidEntry e;
        std::istringstream ls(line);
        std::string flid, lineno;
        if (!std::getline(ls, flid, '\t') ||
            !std::getline(ls, e.file, '\t') ||
            !std::getline(ls, lineno, '\t') ||
            !std::getline(ls, e.checkKind, '\t')) {
            continue;
        }
        std::getline(ls, e.detail, '\t');
        e.flid = static_cast<uint32_t>(std::stoul(flid));
        e.line = static_cast<uint32_t>(std::stoul(lineno));
        out.push_back(std::move(e));
    }
    return out;
}

} // namespace stos::safety
