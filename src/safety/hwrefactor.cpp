/**
 * @file
 * Hardware access refactoring implementation.
 */
#include "safety/hwrefactor.h"

#include <optional>

namespace stos::safety {

using namespace stos::ir;

namespace {

/**
 * If the vreg is (transitively) a constant integer cast to a pointer,
 * return the address.
 */
std::optional<uint32_t>
constantAddress(const Function &f, uint32_t vreg)
{
    // Single-definition chase, same discipline as resolveExact.
    std::vector<const Instr *> def(f.vregs.size(), nullptr);
    std::vector<uint8_t> count(f.vregs.size(), 0);
    for (const auto &bb : f.blocks) {
        for (const auto &in : bb.instrs) {
            if (in.hasDst()) {
                if (count[in.dst] < 2)
                    ++count[in.dst];
                def[in.dst] = &in;
            }
        }
    }
    uint32_t cur = vreg;
    for (int depth = 0; depth < 16; ++depth) {
        if (cur >= f.vregs.size() || count[cur] != 1 || !def[cur])
            return std::nullopt;
        const Instr *in = def[cur];
        switch (in->op) {
          case Opcode::ConstI:
            return static_cast<uint32_t>(in->args[0].imm) & 0xFFFF;
          case Opcode::Cast:
          case Opcode::Mov:
            if (in->args[0].isVReg()) {
                cur = in->args[0].index;
                continue;
            }
            if (in->args[0].isImm())
                return static_cast<uint32_t>(in->args[0].imm) & 0xFFFF;
            return std::nullopt;
          default:
            return std::nullopt;
        }
    }
    return std::nullopt;
}

} // namespace

uint32_t
refactorHardwareAccesses(Module &m)
{
    uint32_t rewritten = 0;
    for (auto &f : m.funcs()) {
        if (f.dead)
            continue;
        for (auto &bb : f.blocks) {
            for (auto &in : bb.instrs) {
                if (in.op != Opcode::Load && in.op != Opcode::Store)
                    continue;
                if (!in.args[0].isVReg())
                    continue;
                auto addr = constantAddress(f, in.args[0].index);
                if (!addr)
                    continue;
                const HwReg *reg = m.findHwReg(*addr);
                if (!reg)
                    continue;
                // Width must match the declared register.
                uint32_t accessBits = m.typeSize(in.type) * 8;
                if (accessBits != reg->bits)
                    continue;
                if (in.op == Opcode::Load) {
                    in.op = Opcode::HwRead;
                    in.args.clear();
                    in.auxA = *addr;
                } else {
                    in.op = Opcode::HwWrite;
                    in.args.erase(in.args.begin());  // drop the pointer
                    in.auxA = *addr;
                }
                ++rewritten;
            }
        }
    }
    return rewritten;
}

} // namespace stos::safety
