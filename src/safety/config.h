/**
 * @file
 * Configuration and reporting types for the safety (CCured-analogue)
 * stage. The error-message modes map one-to-one onto the bars of the
 * paper's Figure 3: verbose strings in RAM, verbose strings moved to
 * ROM, terse strings, and FLID-compressed (no device-side strings).
 */
#ifndef STOS_SAFETY_CONFIG_H
#define STOS_SAFETY_CONFIG_H

#include <cstdint>
#include <map>
#include <string>

#include "analysis/concurrency.h"

namespace stos::safety {

enum class ErrorMode : uint8_t {
    VerboseRam,  ///< full file:line:kind strings in SRAM (CCured default)
    VerboseRom,  ///< same strings placed in flash
    Terse,       ///< short codes; poor diagnostics (CCured --terse)
    Flid,        ///< 16-bit failure location ids + host-side table
};

struct SafetyConfig {
    ErrorMode errorMode = ErrorMode::Flid;
    /**
     * CCured's internal check optimizer: skip statically-safe
     * accesses entirely and drop locally-redundant checks.
     */
    bool ccuredOptimizer = true;
    /**
     * Use the unmodified ("naive") runtime port: OS-dependency and GC
     * support retained, x86 alignment checks emitted. Reproduces the
     * §2.3 before-trimming footprint.
     */
    bool naiveRuntime = false;
    /**
     * Attach a unique tag string to every check (Figure 2
     * methodology): a check survives iff its tag string survives
     * link-time DCE.
     */
    bool insertCheckTags = false;
    /** §2.2: wrap checks on racy variables in atomic sections. */
    bool lockRacyChecks = true;
    /**
     * Emit CCured memory-safety checks (pointer-kind inference plus
     * dynamic bounds/null/wild instrumentation). Off for the CfiOnly
     * column, which measures control-flow integrity in isolation.
     */
    bool memoryChecks = true;
    /**
     * Control-flow integrity: label-based forward-edge checks on
     * indirect calls (src/cfi/) plus a backend shadow-stack return
     * check. Subsumes ChkFnPtr at instrumented call sites.
     */
    bool cfi = false;
    analysis::ConcurrencyOptions concurrency;
};

/** What the safety stage did, for tests and benchmarks. */
struct SafetyReport {
    uint32_t checksInserted = 0;
    std::map<std::string, uint32_t> checksByKind;
    uint32_t staticallySafeAccesses = 0;  ///< accesses needing no check
    uint32_t redundantChecksDropped = 0;  ///< CCured-optimizer removals
    uint32_t locksInserted = 0;
    uint32_t racyGlobals = 0;
    std::map<std::string, uint32_t> kindHistogram;  ///< ptr decls by kind
    uint32_t cfiClasses = 0;       ///< forward-edge equivalence classes
    uint32_t cfiForwardChecks = 0; ///< chk_cfi_label instrs inserted
    uint32_t cfiReturnSites = 0;   ///< rets stamped for shadow-stack check
};

} // namespace stos::safety

#endif
