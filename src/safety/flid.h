/**
 * @file
 * FLID (failure location identifier) support. Instead of storing
 * error-message strings on the device, each check site gets a 16-bit
 * id; a host-side table (kept with the build artifacts) decompresses
 * an id back into file / line / check kind — the paper's §3.2
 * "error messages compressed as FLIDs" configuration.
 */
#ifndef STOS_SAFETY_FLID_H
#define STOS_SAFETY_FLID_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.h"
#include "support/source_loc.h"

namespace stos::safety {

/** Allocate a new FLID describing a check at `loc`. */
uint32_t allocFlid(ir::Module &m, const SourceManager *sm,
                   stos::SourceLoc loc, const std::string &checkKind,
                   const std::string &detail = "");

/** Host-side decompression: id -> "file:line: kind" message. */
std::string decodeFlid(const ir::Module &m, uint32_t flid);

/**
 * Serialize / parse the table (the artifact a deployment would keep
 * next to the firmware image so field failures can be decoded).
 */
std::string serializeFlidTable(const ir::Module &m);
std::vector<ir::FlidEntry> parseFlidTable(const std::string &text);

} // namespace stos::safety

#endif
