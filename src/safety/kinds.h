/**
 * @file
 * CCured-style pointer-kind inference. Every pointer declaration site
 * (vreg, global, local, struct field) is a node; value flows unify
 * nodes; operations raise kinds on the SAFE < FSEQ < SEQ < WILD
 * lattice (pointer arithmetic forward-only -> FSEQ, arbitrary -> SEQ,
 * bad casts -> WILD). After solving, declaration types are rewritten
 * in place so the rest of the pipeline (layout, checks, codegen) sees
 * fat pointers.
 */
#ifndef STOS_SAFETY_KINDS_H
#define STOS_SAFETY_KINDS_H

#include <map>
#include <string>

#include "ir/module.h"

namespace stos::safety {

class KindInference {
  public:
    explicit KindInference(ir::Module &m) : mod_(m) {}

    /** Solve constraints and rewrite all declaration types. */
    void run();

    /** Final kind of a pointer-typed vreg (after run()). */
    ir::PtrKind kindOfVReg(uint32_t fn, uint32_t vreg) const;

    /** Declaration sites per final kind, for reporting. */
    std::map<std::string, uint32_t> histogram() const { return histo_; }

  private:
    ir::Module &mod_;
    std::map<std::string, uint32_t> histo_;
};

} // namespace stos::safety

#endif
