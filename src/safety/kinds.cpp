/**
 * @file
 * Pointer-kind inference implementation: union-find with kind join.
 */
#include "safety/kinds.h"

#include <optional>
#include <vector>

#include "support/util.h"

namespace stos::safety {

using namespace stos::ir;

namespace {

/** Lattice join: higher kinds dominate. */
PtrKind
joinKind(PtrKind a, PtrKind b)
{
    auto rank = [](PtrKind k) {
        switch (k) {
          case PtrKind::Unchecked: return 0;
          case PtrKind::Safe: return 0;
          case PtrKind::FSeq: return 1;
          case PtrKind::Seq: return 2;
          case PtrKind::Wild: return 3;
        }
        return 0;
    };
    return rank(a) >= rank(b) ? a : b;
}

class Solver {
  public:
    explicit Solver(Module &m) : mod_(m) {}

    void
    run(std::map<std::string, uint32_t> &histo)
    {
        allocateNodes();
        buildDefTables();
        generateConstraints();
        materialize(histo);
    }

    PtrKind
    vregKind(uint32_t fn, uint32_t vreg) const
    {
        auto it = vregNode_.find(key(fn, vreg));
        if (it == vregNode_.end())
            return PtrKind::Safe;
        return kindOf(it->second);
    }

  private:
    //--- node space -----------------------------------------------

    static uint64_t
    key(uint32_t a, uint32_t b)
    {
        return (static_cast<uint64_t>(a) << 32) | b;
    }

    uint32_t
    newNode()
    {
        parent_.push_back(static_cast<uint32_t>(parent_.size()));
        kind_.push_back(PtrKind::Safe);
        return static_cast<uint32_t>(parent_.size() - 1);
    }

    uint32_t
    find(uint32_t n) const
    {
        while (parent_[n] != n) {
            parent_[n] = parent_[parent_[n]];
            n = parent_[n];
        }
        return n;
    }

    void
    unify(uint32_t a, uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        parent_[b] = a;
        kind_[a] = joinKind(kind_[a], kind_[b]);
    }

    void
    raise(uint32_t n, PtrKind k)
    {
        n = find(n);
        kind_[n] = joinKind(kind_[n], k);
    }

    PtrKind kindOf(uint32_t n) const { return kind_[find(n)]; }

    /** Does the type contain a pointer declaration site? */
    bool
    holdsPtr(TypeId t) const
    {
        const Type &ty = mod_.types().get(t);
        if (ty.kind == TypeKind::Ptr)
            return true;
        if (ty.kind == TypeKind::Array)
            return holdsPtr(ty.elem);
        return false;
    }

    void
    allocateNodes()
    {
        const TypeTable &tt = mod_.types();
        for (const auto &f : mod_.funcs()) {
            if (f.dead)
                continue;
            for (uint32_t v = 0; v < f.vregs.size(); ++v) {
                if (tt.isPtr(f.vregs[v].type))
                    vregNode_[key(f.id, v)] = newNode();
            }
            for (uint32_t l = 0; l < f.locals.size(); ++l) {
                if (holdsPtr(f.locals[l].type))
                    localNode_[key(f.id, l)] = newNode();
            }
        }
        for (const auto &g : mod_.globals()) {
            if (!g.dead && holdsPtr(g.type))
                globalNode_[g.id] = newNode();
        }
        for (uint32_t s = 0; s < mod_.numStructs(); ++s) {
            const StructType &st = mod_.structAt(s);
            for (uint32_t fi = 0; fi < st.fields.size(); ++fi) {
                if (holdsPtr(st.fields[fi].type))
                    fieldNode_[key(s, fi)] = newNode();
            }
        }
    }

    std::optional<uint32_t>
    nodeOfVReg(uint32_t fn, uint32_t v) const
    {
        auto it = vregNode_.find(key(fn, v));
        if (it == vregNode_.end())
            return std::nullopt;
        return it->second;
    }

    //--- def chains --------------------------------------------------

    void
    buildDefTables()
    {
        defs_.resize(mod_.funcs().size());
        defCount_.resize(mod_.funcs().size());
        for (const auto &f : mod_.funcs()) {
            if (f.dead)
                continue;
            defs_[f.id].assign(f.vregs.size(), nullptr);
            defCount_[f.id].assign(f.vregs.size(), 0);
            for (const auto &bb : f.blocks) {
                for (const auto &in : bb.instrs) {
                    if (in.hasDst()) {
                        if (defCount_[f.id][in.dst] < 2)
                            ++defCount_[f.id][in.dst];
                        defs_[f.id][in.dst] = &in;
                    }
                }
            }
        }
    }

    /**
     * Node of the memory slot a pointer-typed load/store accesses:
     * global, local, struct field, or array element (collapsed onto
     * the containing declaration).
     */
    std::optional<uint32_t>
    resolveSlotNode(const Function &f, uint32_t addrVreg) const
    {
        uint32_t cur = addrVreg;
        for (int depth = 0; depth < 64; ++depth) {
            if (cur >= f.vregs.size() || defCount_[f.id][cur] != 1 ||
                !defs_[f.id][cur]) {
                return std::nullopt;
            }
            const Instr *in = defs_[f.id][cur];
            switch (in->op) {
              case Opcode::AddrGlobal: {
                auto it = globalNode_.find(in->args[0].index);
                return it == globalNode_.end()
                           ? std::nullopt
                           : std::optional<uint32_t>(it->second);
              }
              case Opcode::AddrLocal: {
                auto it = localNode_.find(key(f.id, in->auxA));
                return it == localNode_.end()
                           ? std::nullopt
                           : std::optional<uint32_t>(it->second);
              }
              case Opcode::Gep: {
                // Field of *base: use the field's node if the base is a
                // struct pointer.
                if (!in->args[0].isVReg())
                    return std::nullopt;
                TypeId bt = f.vregs[in->args[0].index].type;
                const Type &bty = mod_.types().get(bt);
                if (bty.kind == TypeKind::Ptr) {
                    const Type &pt = mod_.types().get(bty.pointee);
                    if (pt.kind == TypeKind::Struct) {
                        auto it =
                            fieldNode_.find(key(pt.structId, in->auxA));
                        return it == fieldNode_.end()
                                   ? std::nullopt
                                   : std::optional<uint32_t>(it->second);
                    }
                }
                cur = in->args[0].index;
                continue;
              }
              case Opcode::PtrAdd:
              case Opcode::Mov:
              case Opcode::Cast:
                if (in->args[0].isVReg()) {
                    cur = in->args[0].index;
                    continue;
                }
                return std::nullopt;
              default:
                return std::nullopt;
            }
        }
        return std::nullopt;
    }

    //--- constraints --------------------------------------------------

    /** Is a pointee-to-pointee cast representable without WILD? */
    bool
    castCompatible(TypeId fromPointee, TypeId toPointee) const
    {
        if (fromPointee == toPointee)
            return true;
        uint32_t fromSz = mod_.typeSize(fromPointee);
        uint32_t toSz = mod_.typeSize(toPointee);
        const Type &toTy = mod_.types().get(toPointee);
        // Viewing any object as bytes is fine (memcpy idiom).
        if (toTy.kind == TypeKind::Int && toTy.bits == 8)
            return true;
        if (toTy.kind == TypeKind::Bool)
            return true;
        // Down-casts to a smaller scalar prefix are representable.
        if ((toTy.kind == TypeKind::Int) && toSz <= fromSz)
            return true;
        return false;
    }

    void
    generateConstraints()
    {
        const TypeTable &tt = mod_.types();
        // Return-node per function (pointer-returning functions).
        std::vector<std::optional<uint32_t>> retNode(mod_.funcs().size());
        for (const auto &f : mod_.funcs()) {
            if (!f.dead && tt.isPtr(f.retType))
                retNode[f.id] = newNode();
        }

        for (const auto &f : mod_.funcs()) {
            if (f.dead)
                continue;
            for (const auto &bb : f.blocks) {
                for (const auto &in : bb.instrs) {
                    genForInstr(f, in, retNode);
                }
            }
        }
    }

    void
    genForInstr(const Function &f, const Instr &in,
                std::vector<std::optional<uint32_t>> &retNode)
    {
        const TypeTable &tt = mod_.types();
        auto vnode = [&](uint32_t v) { return nodeOfVReg(f.id, v); };
        switch (in.op) {
          case Opcode::Mov:
            if (tt.isPtr(in.type) && in.args[0].isVReg()) {
                auto a = vnode(in.dst), b = vnode(in.args[0].index);
                if (a && b)
                    unify(*a, *b);
            }
            break;
          case Opcode::Cast: {
            if (!tt.isPtr(in.type))
                break;
            auto d = vnode(in.dst);
            if (!d)
                break;
            const Operand &src = in.args[0];
            if (src.isVReg() && tt.isPtr(f.vregs[src.index].type)) {
                auto s = vnode(src.index);
                if (s) {
                    unify(*d, *s);
                    TypeId fp = tt.get(f.vregs[src.index].type).pointee;
                    TypeId tp = tt.get(in.type).pointee;
                    if (!castCompatible(fp, tp))
                        raise(*d, PtrKind::Wild);
                    else if (fp != tp)
                        raise(*d, PtrKind::FSeq);
                }
            } else if (src.isImm() && src.imm == 0) {
                // null: no constraint
            } else {
                // int -> pointer that survived hw refactoring: wild.
                raise(*d, PtrKind::Wild);
            }
            break;
          }
          case Opcode::ConstI:
            if (tt.isPtr(in.type) && in.args[0].imm != 0) {
                if (auto d = vnode(in.dst))
                    raise(*d, PtrKind::Wild);
            }
            break;
          case Opcode::Gep: {
            if (in.args[0].isVReg()) {
                auto d = vnode(in.dst), b = vnode(in.args[0].index);
                if (d && b)
                    unify(*d, *b);
            }
            break;
          }
          case Opcode::PtrAdd: {
            auto d = vnode(in.dst);
            std::optional<uint32_t> b;
            if (in.args[0].isVReg())
                b = vnode(in.args[0].index);
            if (d && b)
                unify(*d, *b);
            if (d) {
                const Operand &idx = in.args[1];
                bool forwardOnly = false;
                if (idx.isImm()) {
                    forwardOnly = idx.imm >= 0;
                } else if (idx.isVReg()) {
                    const Type &it = tt.get(f.vregs[idx.index].type);
                    forwardOnly =
                        it.kind == TypeKind::Int && !it.isSigned;
                }
                raise(*d, forwardOnly ? PtrKind::FSeq : PtrKind::Seq);
            }
            break;
          }
          case Opcode::Load: {
            if (tt.isPtr(in.type)) {
                auto d = vnode(in.dst);
                auto slot = in.args[0].isVReg()
                                ? resolveSlotNode(f, in.args[0].index)
                                : std::nullopt;
                if (d && slot)
                    unify(*d, *slot);
                else if (d)
                    raise(*d, PtrKind::Wild);
            }
            break;
          }
          case Opcode::Store: {
            if (tt.isPtr(in.type) ||
                (in.args[1].isVReg() &&
                 tt.isPtr(f.vregs[in.args[1].index].type))) {
                auto slot = in.args[0].isVReg()
                                ? resolveSlotNode(f, in.args[0].index)
                                : std::nullopt;
                if (in.args[1].isVReg() &&
                    tt.isPtr(f.vregs[in.args[1].index].type)) {
                    auto v = vnode(in.args[1].index);
                    if (v && slot)
                        unify(*v, *slot);
                    else if (v)
                        raise(*v, PtrKind::Wild);
                }
            }
            break;
          }
          case Opcode::Call: {
            const Function &callee = mod_.funcAt(in.callee);
            for (size_t i = 0;
                 i < in.args.size() && i < callee.params.size(); ++i) {
                if (in.args[i].isVReg() &&
                    tt.isPtr(f.vregs[in.args[i].index].type)) {
                    auto a = vnode(in.args[i].index);
                    auto p = nodeOfVReg(callee.id, callee.params[i]);
                    if (a && p)
                        unify(*a, *p);
                }
            }
            if (in.hasDst() && tt.isPtr(in.type)) {
                auto d = vnode(in.dst);
                if (d && retNode[in.callee])
                    unify(*d, *retNode[in.callee]);
            }
            break;
          }
          case Opcode::Ret:
            if (!in.args.empty() && in.args[0].isVReg() &&
                tt.isPtr(f.vregs[in.args[0].index].type)) {
                auto v = vnode(in.args[0].index);
                if (v && retNode[f.id])
                    unify(*v, *retNode[f.id]);
            }
            break;
          default:
            break;
        }
    }

    //--- materialization -----------------------------------------------

    /** Rewrite the pointer component of a declared type with a kind. */
    TypeId
    rekindType(TypeId t, PtrKind k)
    {
        TypeTable &tt = mod_.types();
        const Type ty = tt.get(t);
        if (ty.kind == TypeKind::Ptr)
            return tt.ptrTy(ty.pointee, k);
        if (ty.kind == TypeKind::Array)
            return tt.arrayTy(rekindType(ty.elem, k), ty.count);
        return t;
    }

    void
    note(std::map<std::string, uint32_t> &histo, PtrKind k)
    {
        histo[ptrKindName(k)]++;
    }

    void
    materialize(std::map<std::string, uint32_t> &histo)
    {
        TypeTable &tt = mod_.types();
        // Struct fields first: layout changes affect Gep offsets, which
        // are recomputed by a fix-up pass below.
        for (uint32_t s = 0; s < mod_.numStructs(); ++s) {
            StructType &st = mod_.structAt(s);
            for (uint32_t fi = 0; fi < st.fields.size(); ++fi) {
                auto it = fieldNode_.find(key(s, fi));
                if (it == fieldNode_.end())
                    continue;
                PtrKind k = finalKind(it->second);
                st.fields[fi].type = rekindType(st.fields[fi].type, k);
                note(histo, k);
            }
        }
        for (auto &g : mod_.globals()) {
            auto it = globalNode_.find(g.id);
            if (it == globalNode_.end())
                continue;
            PtrKind k = finalKind(it->second);
            TypeId nt = rekindType(g.type, k);
            if (nt != g.type) {
                g.type = nt;
                // Grow the init image to the fat representation
                // (null-initialized bounds).
                if (!g.init.empty())
                    g.init.resize(mod_.typeSize(nt), 0);
            }
            note(histo, k);
        }
        for (auto &f : mod_.funcs()) {
            if (f.dead)
                continue;
            for (uint32_t l = 0; l < f.locals.size(); ++l) {
                auto it = localNode_.find(key(f.id, l));
                if (it == localNode_.end())
                    continue;
                PtrKind k = finalKind(it->second);
                f.locals[l].type = rekindType(f.locals[l].type, k);
                note(histo, k);
            }
            for (uint32_t v = 0; v < f.vregs.size(); ++v) {
                auto it = vregNode_.find(key(f.id, v));
                if (it == vregNode_.end())
                    continue;
                f.vregs[v].type =
                    rekindType(f.vregs[v].type, finalKind(it->second));
            }
            if (tt.isPtr(f.retType)) {
                // Return kind equals the kind of any returned vreg
                // (they are unified); find one.
                for (const auto &bb : f.blocks) {
                    for (const auto &in : bb.instrs) {
                        if (in.op == Opcode::Ret && !in.args.empty() &&
                            in.args[0].isVReg()) {
                            f.retType = rekindType(
                                f.retType,
                                vregKind(f.id, in.args[0].index));
                        }
                    }
                }
            }
        }
        fixupInstructionTypes();
    }

    PtrKind
    finalKind(uint32_t node) const
    {
        PtrKind k = kindOf(node);
        return k == PtrKind::Unchecked ? PtrKind::Safe : k;
    }

    /**
     * After declaration types move, instruction result types and Gep
     * byte offsets must be recomputed from the new layout.
     */
    void
    fixupInstructionTypes()
    {
        const TypeTable &tt = mod_.types();
        for (auto &f : mod_.funcs()) {
            if (f.dead)
                continue;
            for (auto &bb : f.blocks) {
                for (auto &in : bb.instrs) {
                    // Calls included: the solver unifies the dst vreg
                    // with the callee's return node, so the rewritten
                    // vreg type IS the fattened return type — leaving
                    // the stale thin type here made isel emit too few
                    // GetRet words for pointer-returning functions
                    // (bounds arrived as garbage and the first use
                    // tripped its own check).
                    if (in.hasDst())
                        in.type = f.vregs[in.dst].type;
                    switch (in.op) {
                      case Opcode::Gep: {
                        // Recompute the byte offset from the (possibly
                        // fattened) struct layout.
                        if (!in.args[0].isVReg())
                            break;
                        TypeId bt = f.vregs[in.args[0].index].type;
                        const Type &bty = tt.get(bt);
                        if (bty.kind != TypeKind::Ptr)
                            break;
                        const Type &pt = tt.get(bty.pointee);
                        if (pt.kind == TypeKind::Struct) {
                            in.auxB =
                                mod_.fieldOffset(pt.structId, in.auxA);
                            // Result type: pointer to the new field
                            // type, with the dst vreg's kind.
                            TypeId ft =
                                mod_.structAt(pt.structId)
                                    .fields[in.auxA]
                                    .type;
                            PtrKind dk =
                                tt.get(f.vregs[in.dst].type).ptrKind;
                            TypeId base = ft;
                            const Type &fty = tt.get(ft);
                            if (fty.kind == TypeKind::Array)
                                base = fty.elem;
                            f.vregs[in.dst].type =
                                mod_.types().ptrTy(base, dk);
                            in.type = f.vregs[in.dst].type;
                        }
                        break;
                      }
                      case Opcode::PtrAdd: {
                        // Element size may have grown (arrays of fat
                        // pointers).
                        TypeId rt = f.vregs[in.dst].type;
                        const Type &rty = tt.get(rt);
                        if (rty.kind == TypeKind::Ptr)
                            in.auxA = std::max(
                                1u, mod_.typeSize(rty.pointee));
                        break;
                      }
                      case Opcode::Store: {
                        // Width of the store follows the slot type.
                        if (in.args[1].isVReg()) {
                            in.type = f.vregs[in.args[1].index].type;
                        } else if (tt.isPtr(in.type) &&
                                   in.args[0].isVReg()) {
                            const Type &at =
                                tt.get(f.vregs[in.args[0].index].type);
                            if (at.kind == TypeKind::Ptr)
                                in.type = at.pointee;
                        }
                        break;
                      }
                      case Opcode::Load: {
                        if (in.hasDst())
                            in.type = f.vregs[in.dst].type;
                        break;
                      }
                      default:
                        break;
                    }
                }
            }
        }
    }

    Module &mod_;
    mutable std::vector<uint32_t> parent_;
    std::vector<PtrKind> kind_;
    std::map<uint64_t, uint32_t> vregNode_;
    std::map<uint64_t, uint32_t> localNode_;
    std::map<uint32_t, uint32_t> globalNode_;
    std::map<uint64_t, uint32_t> fieldNode_;
    std::vector<std::vector<const Instr *>> defs_;
    std::vector<std::vector<uint8_t>> defCount_;
};

} // namespace

void
KindInference::run()
{
    // Kinds are materialized into the declaration types, so later
    // queries (kindOfVReg) simply read the rewritten types.
    Solver solver(mod_);
    solver.run(histo_);
}

PtrKind
KindInference::kindOfVReg(uint32_t fn, uint32_t vreg) const
{
    const auto &f = mod_.funcAt(fn);
    const auto &ty = mod_.types().get(f.vregs.at(vreg).type);
    if (ty.kind != TypeKind::Ptr)
        return PtrKind::Safe;
    return ty.ptrKind;
}

} // namespace stos::safety
