/**
 * @file
 * The safety transformer ("run CCured" in Figure 1): pointer-kind
 * inference, dynamic check insertion, concurrency locking for racy
 * variables, error-message materialization (verbose / terse / FLID),
 * and runtime-library generation.
 */
#ifndef STOS_SAFETY_CCURED_H
#define STOS_SAFETY_CCURED_H

#include "analysis/concurrency.h"
#include "ir/module.h"
#include "safety/config.h"
#include "support/source_loc.h"

namespace stos::safety {

/**
 * Make the module type- and memory-safe. The module is transformed in
 * place: declaration types gain pointer kinds (fat pointers), checks
 * are inserted before unproven accesses, racy checks gain locks, and
 * the runtime library is linked in.
 */
SafetyReport applySafety(ir::Module &m, const SafetyConfig &cfg,
                         const SourceManager *sm = nullptr);

} // namespace stos::safety

#endif
