/**
 * @file
 * Runtime library generation.
 */
#include "safety/runtime.h"

#include "support/devmap.h"
#include "support/util.h"
#include "ir/builder.h"

namespace stos::safety {

using namespace stos::ir;

namespace {

/** Add a RAM/ROM data blob global. */
uint32_t
addBlob(Module &m, const std::string &name, uint32_t size, Section sec,
        bool usedByNaiveRuntime)
{
    Global g;
    g.name = name;
    g.type = m.types().arrayTy(m.types().u8(), size);
    g.section = sec;
    g.attrs.isRuntime = true;
    g.init.assign(size, 0);
    if (sec == Section::Rom) {
        // Deterministic non-zero table contents.
        for (uint32_t i = 0; i < size; ++i)
            g.init[i] = static_cast<uint8_t>((i * 7 + 3) & 0xFF);
    }
    (void)usedByNaiveRuntime;
    return m.addGlobal(std::move(g));
}

/** `__st_fail(u16 flid)`: record the id, report it, halt. */
void
genFail(Module &m)
{
    TypeTable &tt = m.types();
    Global lastFault;
    lastFault.name = kLastFaultGlobal;
    lastFault.type = tt.u16();
    lastFault.attrs.isRuntime = true;
    uint32_t lf = m.addGlobal(std::move(lastFault));

    Function f;
    f.name = kFailFn;
    f.retType = tt.voidTy();
    f.attrs.isRuntime = true;
    f.attrs.noInline = true;
    f.params.push_back(f.addVReg(tt.u16(), "flid"));
    f.addBlock("entry");
    uint32_t loop = f.addBlock("halt");
    {
        Builder b(m, f);
        b.setBlock(0);
        uint32_t a = b.addrGlobal(lf, tt.ptrTy(tt.u16()));
        b.store(Operand::vreg(a), Operand::vreg(f.params[0]), tt.u16());
        // Report the 16-bit id over the UART, low byte first.
        uint32_t lo = b.cast(tt.u8(), Operand::vreg(f.params[0]));
        b.hwWrite(dev::kRegUartData, Operand::vreg(lo), tt.u8());
        uint32_t hi = b.bin(BinOp::ShrU, tt.u16(),
                            Operand::vreg(f.params[0]), Operand::immInt(8));
        uint32_t hi8 = b.cast(tt.u8(), Operand::vreg(hi));
        b.hwWrite(dev::kRegUartData, Operand::vreg(hi8), tt.u8());
        b.br(loop);
        b.setBlock(loop);
        b.br(loop);  // halt: the device stops making progress
    }
    m.addFunction(std::move(f));
}

/** `__st_fail_msg(u8 *msg)`: emit the NUL-terminated string, halt. */
void
genFailMsg(Module &m)
{
    TypeTable &tt = m.types();
    TypeId u8p = tt.ptrTy(tt.u8());
    Function f;
    f.name = kFailMsgFn;
    f.retType = tt.voidTy();
    f.attrs.isRuntime = true;
    f.attrs.noInline = true;
    f.params.push_back(f.addVReg(u8p, "msg"));
    uint32_t entry = f.addBlock("entry");
    uint32_t cond = f.addBlock("cond");
    uint32_t body = f.addBlock("body");
    uint32_t halt = f.addBlock("halt");
    {
        Builder b(m, f);
        b.setBlock(entry);
        uint32_t i = f.addVReg(tt.u16(), "i");
        b.movTo(i, Operand::immInt(0));
        b.br(cond);
        b.setBlock(cond);
        uint32_t p = b.ptrAdd(Operand::vreg(f.params[0]), Operand::vreg(i),
                              1, u8p);
        uint32_t c = b.load(tt.u8(), Operand::vreg(p));
        uint32_t nz = b.bin(BinOp::Ne, tt.boolTy(), Operand::vreg(c),
                            Operand::immInt(0));
        b.condBr(Operand::vreg(nz), body, halt);
        b.setBlock(body);
        b.hwWrite(dev::kRegUartData, Operand::vreg(c), tt.u8());
        uint32_t ni = b.bin(BinOp::Add, tt.u16(), Operand::vreg(i),
                            Operand::immInt(1));
        b.movTo(i, Operand::vreg(ni));
        b.br(cond);
        b.setBlock(halt);
        b.br(halt);
    }
    m.addFunction(std::move(f));
}

/**
 * The naive-port baggage: GC support, OS-dependency stubs, and their
 * tables. Marked used-from-start (the original runtime's fine-grained
 * weaving defeats DCE); the trimmed runtime simply omits all of it.
 */
void
genNaiveBaggage(Module &m)
{
    TypeTable &tt = m.types();
    // GC support: a mark bitmap over the heap plus a scan routine.
    uint32_t bitmap = addBlob(m, "__ccured_gc_bitmap", 1024, Section::Ram,
                              true);
    uint32_t osBuf = addBlob(m, "__ccured_os_iobuf", 512, Section::Ram,
                             true);
    // Flash-resident tables of the x86 runtime: wrapper descriptors,
    // printf-style format machinery, and per-check-kind metadata.
    uint32_t fmtTab = addBlob(m, "__ccured_fmt_tab", 12288, Section::Rom,
                              true);
    uint32_t ckindTab = addBlob(m, "__ccured_ckind_tab", 8192,
                                Section::Rom, true);
    uint32_t wrapTab = addBlob(m, "__ccured_wrapper_tab", 10240,
                               Section::Rom, true);

    auto makeLoopFn = [&](const std::string &name, uint32_t blob,
                          uint32_t size, int rounds) {
        Function f;
        f.name = name;
        f.retType = tt.voidTy();
        f.attrs.isRuntime = true;
        f.attrs.usedFromStart = true;  // woven in: DCE cannot drop it
        f.attrs.noInline = true;
        uint32_t entry = f.addBlock("entry");
        uint32_t cond = f.addBlock("cond");
        uint32_t body = f.addBlock("body");
        uint32_t done = f.addBlock("done");
        Builder b(m, f);
        b.setBlock(entry);
        uint32_t i = f.addVReg(tt.u16(), "i");
        b.movTo(i, Operand::immInt(0));
        b.br(cond);
        b.setBlock(cond);
        uint32_t lt = b.bin(BinOp::LtU, tt.boolTy(), Operand::vreg(i),
                            Operand::immInt(size));
        b.condBr(Operand::vreg(lt), body, done);
        b.setBlock(body);
        TypeId u8p = tt.ptrTy(tt.u8());
        uint32_t base = b.addrGlobal(blob, u8p);
        uint32_t p = b.ptrAdd(Operand::vreg(base), Operand::vreg(i), 1,
                              u8p);
        uint32_t v = b.load(tt.u8(), Operand::vreg(p));
        uint32_t vv = v;
        for (int r = 0; r < rounds; ++r) {
            vv = b.bin(BinOp::Xor, tt.u8(), Operand::vreg(vv),
                       Operand::immInt(0x5A + r));
            vv = b.bin(BinOp::Add, tt.u8(), Operand::vreg(vv),
                       Operand::immInt(r + 1));
        }
        b.store(Operand::vreg(p), Operand::vreg(vv), tt.u8());
        uint32_t ni = b.bin(BinOp::Add, tt.u16(), Operand::vreg(i),
                            Operand::immInt(1));
        b.movTo(i, Operand::vreg(ni));
        b.br(cond);
        b.setBlock(done);
        b.ret();
        m.addFunction(std::move(f));
    };

    /** Read-only table scanner (checksums a flash table into RAM). */
    auto makeScanFn = [&](const std::string &name, uint32_t table,
                          uint32_t size, int rounds) {
        Function f;
        f.name = name;
        f.retType = tt.voidTy();
        f.attrs.isRuntime = true;
        f.attrs.usedFromStart = true;
        f.attrs.noInline = true;
        uint32_t entry = f.addBlock("entry");
        uint32_t cond = f.addBlock("cond");
        uint32_t body = f.addBlock("body");
        uint32_t done = f.addBlock("done");
        Builder b(m, f);
        b.setBlock(entry);
        uint32_t i = f.addVReg(tt.u16(), "i");
        uint32_t acc = f.addVReg(tt.u8(), "acc");
        b.movTo(i, Operand::immInt(0));
        b.movTo(acc, Operand::immInt(0));
        b.br(cond);
        b.setBlock(cond);
        uint32_t lt = b.bin(BinOp::LtU, tt.boolTy(), Operand::vreg(i),
                            Operand::immInt(size));
        b.condBr(Operand::vreg(lt), body, done);
        b.setBlock(body);
        TypeId u8p = tt.ptrTy(tt.u8());
        uint32_t base = b.addrGlobal(table, u8p);
        uint32_t p = b.ptrAdd(Operand::vreg(base), Operand::vreg(i), 1,
                              u8p);
        uint32_t v = b.load(tt.u8(), Operand::vreg(p));
        uint32_t vv = v;
        for (int r = 0; r < rounds; ++r) {
            vv = b.bin(BinOp::Xor, tt.u8(), Operand::vreg(vv),
                       Operand::vreg(acc));
            vv = b.bin(BinOp::Add, tt.u8(), Operand::vreg(vv),
                       Operand::immInt(r + 1));
        }
        b.movTo(acc, Operand::vreg(vv));
        uint32_t ni = b.bin(BinOp::Add, tt.u16(), Operand::vreg(i),
                            Operand::immInt(1));
        b.movTo(i, Operand::vreg(ni));
        b.br(cond);
        b.setBlock(done);
        // Publish the checksum so the scan isn't trivially dead.
        uint32_t obase = b.addrGlobal(osBuf, u8p);
        b.store(Operand::vreg(obase), Operand::vreg(acc), tt.u8());
        b.ret();
        m.addFunction(std::move(f));
    };

    makeLoopFn("__ccured_gc_init", bitmap, 1024, 6);
    makeLoopFn("__ccured_gc_scan", bitmap, 1024, 10);
    makeLoopFn("__ccured_os_init", osBuf, 512, 8);
    makeLoopFn("__ccured_os_flush", osBuf, 512, 12);
    makeLoopFn("__ccured_signal_stub", osBuf, 512, 9);
    makeLoopFn("__ccured_file_stub", osBuf, 512, 7);
    makeScanFn("__ccured_fmt_scan", fmtTab, 12288, 4);
    makeScanFn("__ccured_ckind_scan", ckindTab, 8192, 5);
    makeScanFn("__ccured_wrapper_scan", wrapTab, 10240, 6);
}

} // namespace

void
generateRuntime(Module &m, const SafetyConfig &cfg)
{
    if (m.findFunc(kFailFn))
        return;  // already generated
    genFail(m);
    genFailMsg(m);
    if (cfg.naiveRuntime)
        genNaiveBaggage(m);
}

} // namespace stos::safety
