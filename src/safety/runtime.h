/**
 * @file
 * The CCured runtime library, generated as TinyCIL so it is compiled,
 * analyzed, and shrunk together with the application (paper §2.3).
 *
 * Two flavours:
 *  - trimmed (default): just the failure handlers. With FLIDs the
 *    device-resident cost collapses to one 2-byte RAM word (the last
 *    fault id) plus a few hundred bytes of handler code — the paper's
 *    "2 bytes of RAM and 314 bytes of ROM".
 *  - naive: additionally carries the pieces a straight port of the
 *    x86/OS runtime drags in — GC support tables, OS-dependency stubs
 *    and their string tables — all marked used-from-start because the
 *    original runtime wove them in too finely for DCE to remove.
 */
#ifndef STOS_SAFETY_RUNTIME_H
#define STOS_SAFETY_RUNTIME_H

#include "ir/module.h"
#include "safety/config.h"

namespace stos::safety {

/** Names of the generated entry points. */
inline constexpr const char *kFailFn = "__st_fail";
inline constexpr const char *kFailMsgFn = "__st_fail_msg";
inline constexpr const char *kLastFaultGlobal = "__st_last_fault";

/** Generate the runtime into the module (idempotent per module). */
void generateRuntime(ir::Module &m, const SafetyConfig &cfg);

} // namespace stos::safety

#endif
