/**
 * @file
 * MProgram (de)serialization: target info, machine functions, the
 * interrupt vector table, and the data layout — everything the
 * simulator and the size accounting read.
 */
#include "backend/serialize.h"

namespace stos::backend {

using support::BinReader;
using support::BinWriter;

namespace {

void
writeTarget(BinWriter &w, const TargetInfo &t)
{
    w.str(t.name);
    w.u32(t.regBits);
    w.u32(t.flashBytes);
    w.u32(t.ramBytes);
    w.u32(t.clockHz);
    w.u32(t.romLoadPenalty);
    w.u32(t.romLoadSizePenalty);
}

TargetInfo
readTarget(BinReader &r)
{
    TargetInfo t;
    t.name = r.str();
    t.regBits = r.u32();
    t.flashBytes = r.u32();
    t.ramBytes = r.u32();
    t.clockHz = r.u32();
    t.romLoadPenalty = r.u32();
    t.romLoadSizePenalty = r.u32();
    return t;
}

void
writeMInstr(BinWriter &w, const MInstr &in)
{
    w.u8(static_cast<uint8_t>(in.op));
    w.u8(in.w);
    w.u8(static_cast<uint8_t>(in.cond));
    w.u32(in.rd);
    w.u32(in.ra);
    w.u32(in.rb);
    w.i64(in.imm);
    w.u32(in.target);
    w.u32(in.fn);
    w.u32(in.gid);
    w.u32(in.port);
    w.b(in.romData);
    w.b(in.isCheck);
    w.u32(in.flid);
}

MInstr
readMInstr(BinReader &r)
{
    MInstr in;
    in.op = static_cast<MOp>(r.u8());
    in.w = r.u8();
    in.cond = static_cast<MCond>(r.u8());
    in.rd = r.u32();
    in.ra = r.u32();
    in.rb = r.u32();
    in.imm = r.i64();
    in.target = r.u32();
    in.fn = r.u32();
    in.gid = r.u32();
    in.port = r.u32();
    in.romData = r.b();
    in.isCheck = r.b();
    in.flid = r.u32();
    return in;
}

void
writeMFunc(BinWriter &w, const MFunc &f)
{
    w.u32(f.id);
    w.str(f.name);
    w.u64(f.blocks.size());
    for (const MBlock &bb : f.blocks) {
        w.u64(bb.instrs.size());
        for (const MInstr &in : bb.instrs)
            writeMInstr(w, in);
    }
    w.u32(f.numRegs);
    w.u32(f.frameBytes);
    w.i32(f.interruptVector);
    w.b(f.isTask);
}

MFunc
readMFunc(BinReader &r)
{
    MFunc f;
    f.id = r.u32();
    f.name = r.str();
    size_t nBlocks = r.u64();
    f.blocks.reserve(nBlocks);
    for (size_t i = 0; i < nBlocks; ++i) {
        MBlock bb;
        size_t nInstrs = r.u64();
        bb.instrs.reserve(nInstrs);
        for (size_t j = 0; j < nInstrs; ++j)
            bb.instrs.push_back(readMInstr(r));
        f.blocks.push_back(std::move(bb));
    }
    f.numRegs = r.u32();
    f.frameBytes = r.u32();
    f.interruptVector = r.i32();
    f.isTask = r.b();
    return f;
}

} // namespace

void
writeProgram(BinWriter &w, const MProgram &p)
{
    writeTarget(w, p.target);
    w.u64(p.funcs.size());
    for (const MFunc &f : p.funcs)
        writeMFunc(w, f);
    w.u32(p.entry);
    w.u64(p.vectorTable.size());
    for (int v : p.vectorTable)
        w.i32(v);
    w.u64(p.data.size());
    for (const MProgram::DataItem &d : p.data) {
        w.u32(d.globalId);
        w.str(d.name);
        w.u32(d.addr);
        w.u32(d.size);
        w.b(d.rom);
        w.bytes(d.init);
        w.b(d.isCheckTag);
        w.b(d.isErrorString);
    }
    w.u32(p.ramBase);
    w.u32(p.ramDataEnd);
    w.u32(p.romDataBase);
    w.u32(p.romDataEnd);
    w.bytes(p.flidKinds);
}

MProgram
readProgram(BinReader &r)
{
    MProgram p;
    p.target = readTarget(r);
    size_t nFuncs = r.u64();
    p.funcs.reserve(nFuncs);
    for (size_t i = 0; i < nFuncs; ++i)
        p.funcs.push_back(readMFunc(r));
    p.entry = r.u32();
    size_t nVecs = r.u64();
    p.vectorTable.reserve(nVecs);
    for (size_t i = 0; i < nVecs; ++i)
        p.vectorTable.push_back(r.i32());
    size_t nData = r.u64();
    p.data.reserve(nData);
    for (size_t i = 0; i < nData; ++i) {
        MProgram::DataItem d;
        d.globalId = r.u32();
        d.name = r.str();
        d.addr = r.u32();
        d.size = r.u32();
        d.rom = r.b();
        d.init = r.bytes();
        d.isCheckTag = r.b();
        d.isErrorString = r.b();
        p.data.push_back(std::move(d));
    }
    p.ramBase = r.u32();
    p.ramDataEnd = r.u32();
    p.romDataBase = r.u32();
    p.romDataEnd = r.u32();
    p.flidKinds = r.bytes();
    return p;
}

} // namespace stos::backend
