/**
 * @file
 * Target descriptions for the two platforms the paper evaluates:
 * Mica2 (8-bit AVR, 4KB RAM / 128KB flash) and TelosB (16-bit MSP430,
 * 10KB RAM / 48KB flash). The backend emits one machine instruction
 * stream; the target supplies per-instruction byte/cycle costs, which
 * is where the 8-bit-vs-16-bit register width shows up (an AVR needs
 * two instructions for a 16-bit ALU op).
 */
#ifndef STOS_BACKEND_TARGET_H
#define STOS_BACKEND_TARGET_H

#include <cstdint>
#include <string>

namespace stos::backend {

struct TargetInfo {
    std::string name;
    uint32_t regBits = 8;        ///< native register width
    uint32_t flashBytes = 0;
    uint32_t ramBytes = 0;
    uint32_t clockHz = 7'372'800;
    /** Extra cycles for a load from flash-resident (ROM) data. */
    uint32_t romLoadPenalty = 1;
    /** Extra bytes for a flash-resident load (the AVR LPM dance). */
    uint32_t romLoadSizePenalty = 2;

    static TargetInfo mica2();
    static TargetInfo telosb();
};

inline TargetInfo
TargetInfo::mica2()
{
    TargetInfo t;
    t.name = "mica2";
    t.regBits = 8;
    t.flashBytes = 128 * 1024;
    t.ramBytes = 4 * 1024;
    t.clockHz = 7'372'800;
    t.romLoadPenalty = 2;
    t.romLoadSizePenalty = 2;
    return t;
}

inline TargetInfo
TargetInfo::telosb()
{
    TargetInfo t;
    t.name = "telosb";
    t.regBits = 16;
    t.flashBytes = 48 * 1024;
    t.ramBytes = 10 * 1024;
    t.clockHz = 4'000'000;
    t.romLoadPenalty = 0;   // unified address space
    t.romLoadSizePenalty = 0;
    return t;
}

} // namespace stos::backend

#endif
