/**
 * @file
 * The GCC-model late optimizer. Intentionally weaker than cXprop:
 * block-local constant folding only (no intervals, no interprocedural
 * facts), a single-pass DCE that does not touch memory operations
 * ("the DCE pass in GCC is not very strong", §2.1), easy-check
 * elimination (redundant and provably-non-null checks), and an
 * optional late inliner that is not followed by re-optimization.
 */
#include "backend/backend.h"

#include <map>

#include "analysis/liveness.h"
#include "opt/inliner.h"
#include "opt/passes.h"
#include "support/util.h"

namespace stos::backend {

using namespace stos::ir;

namespace {

/** Single-definition chase to an Addr root (for easy null checks). */
bool
rootIsAddr(const Function &f, uint32_t vreg)
{
    std::vector<const Instr *> def(f.vregs.size(), nullptr);
    std::vector<uint8_t> count(f.vregs.size(), 0);
    for (const auto &bb : f.blocks) {
        for (const auto &in : bb.instrs) {
            if (in.hasDst()) {
                if (count[in.dst] < 2)
                    ++count[in.dst];
                def[in.dst] = &in;
            }
        }
    }
    uint32_t cur = vreg;
    for (int d = 0; d < 32; ++d) {
        if (cur >= f.vregs.size() || count[cur] != 1 || !def[cur])
            return false;
        const Instr *in = def[cur];
        switch (in->op) {
          case Opcode::AddrGlobal:
          case Opcode::AddrLocal:
            return true;
          case Opcode::Gep:
          case Opcode::Mov:
          case Opcode::Cast:
            if (!in->args.empty() && in->args[0].isVReg()) {
                cur = in->args[0].index;
                continue;
            }
            return false;
          default:
            return false;
        }
    }
    return false;
}

uint32_t
localConstFold(Module &m, Function &f, GccReport &rep)
{
    uint32_t changed = 0;
    const TypeTable &tt = m.types();
    for (auto &bb : f.blocks) {
        std::map<uint32_t, int64_t> consts;
        for (auto &in : bb.instrs) {
            auto constOf = [&](const Operand &o) -> std::optional<int64_t> {
                if (o.isImm())
                    return o.imm;
                if (o.isVReg()) {
                    auto it = consts.find(o.index);
                    if (it != consts.end())
                        return it->second;
                }
                return std::nullopt;
            };
            if (in.op == Opcode::Bin && tt.isScalarInt(in.type)) {
                auto a = constOf(in.args[0]);
                auto b = constOf(in.args[1]);
                if (a && b) {
                    // Reuse the width-exact folding in the interpreter
                    // semantics via direct computation.
                    int64_t r = 0;
                    bool ok = true;
                    switch (in.bop) {
                      case BinOp::Add: r = *a + *b; break;
                      case BinOp::Sub: r = *a - *b; break;
                      case BinOp::Mul: r = *a * *b; break;
                      case BinOp::And: r = *a & *b; break;
                      case BinOp::Or: r = *a | *b; break;
                      case BinOp::Xor: r = *a ^ *b; break;
                      case BinOp::Shl: r = *a << (*b & 63); break;
                      case BinOp::Eq: r = (*a == *b); break;
                      case BinOp::Ne: r = (*a != *b); break;
                      default: ok = false; break;
                    }
                    if (ok) {
                        in.op = Opcode::ConstI;
                        in.args = {Operand::immInt(r)};
                        ++rep.constsFolded;
                        ++changed;
                    }
                }
            }
            if (in.op == Opcode::ConstI && in.hasDst())
                consts[in.dst] = in.args[0].imm;
            else if (in.hasDst())
                consts.erase(in.dst);
            if (in.op == Opcode::CondBr) {
                auto c = constOf(in.args[0]);
                if (c) {
                    in.op = Opcode::Br;
                    in.b0 = *c ? in.b0 : in.b1;
                    in.b1 = kNoBlock;
                    in.args.clear();
                    ++changed;
                }
            }
        }
    }
    return changed;
}

/** Weak DCE: one pass, register-only ops; memory ops are kept. */
uint32_t
weakDce(Module &m, Function &f)
{
    analysis::Liveness live(m, f);
    uint32_t removed = 0;
    for (auto &bb : f.blocks) {
        auto after = live.liveAfter(bb.id);
        std::vector<Instr> out;
        for (size_t i = 0; i < bb.instrs.size(); ++i) {
            Instr &in = bb.instrs[i];
            bool pure = in.op == Opcode::ConstI || in.op == Opcode::Mov ||
                        in.op == Opcode::Bin || in.op == Opcode::Un ||
                        in.op == Opcode::Cast;
            if (pure && in.hasDst() && !after[i][in.dst]) {
                ++removed;
                continue;
            }
            out.push_back(std::move(in));
        }
        bb.instrs = std::move(out);
    }
    return removed;
}

uint32_t
easyCheckElim(Module &m, Function &f, GccReport &rep)
{
    (void)m;
    uint32_t removed = 0;
    for (auto &bb : f.blocks) {
        std::vector<std::pair<Opcode, uint32_t>> done;
        std::vector<Instr> out;
        for (auto &in : bb.instrs) {
            if (in.isCheck() && in.args[0].isVReg()) {
                // GCC's power here is the "easy" eliminations only:
                // same-block redundant checks, plus null checks whose
                // operand is visibly a variable's address (and even
                // that only for the null kind — bounds need the range
                // reasoning GCC doesn't have).
                bool dup = false;
                for (const auto &[op, v] : done) {
                    if (op == in.op && v == in.args[0].index)
                        dup = true;
                }
                bool easyNull = in.op == Opcode::ChkNull &&
                                rootIsAddr(f, in.args[0].index);
                if (dup || easyNull) {
                    ++removed;
                    ++rep.checksRemoved;
                    continue;
                }
                done.push_back({in.op, in.args[0].index});
            }
            if (in.hasDst()) {
                done.erase(std::remove_if(done.begin(), done.end(),
                                          [&](const auto &p) {
                                              return p.second == in.dst;
                                          }),
                           done.end());
            }
            out.push_back(std::move(in));
        }
        bb.instrs = std::move(out);
    }
    return removed;
}

} // namespace

GccReport
runGccStyleOpts(Module &m, const GccOptions &opts)
{
    GccReport rep;
    if (opts.lateInline) {
        opt::InlineOptions io;
        io.sizeBudget = opts.inlineBudget;
        io.maxRounds = 2;
        rep.sitesInlined = opt::inlineFunctions(m, io);
    }
    if (!opts.optimize)
        return rep;
    for (auto &f : m.funcs()) {
        if (f.dead)
            continue;
        localConstFold(m, f, rep);
        easyCheckElim(m, f, rep);
        rep.instrsRemoved += weakDce(m, f);
        opt::simplifyCfg(f);
    }
    return rep;
}

} // namespace stos::backend
