/**
 * @file
 * Binary (de)serialization of linked firmware images (MProgram) and
 * their target descriptions for the on-disk artifact store. Same
 * discipline as ir/serialize.h: deterministic field-for-field
 * little-endian encoding, versioned globally by the store's
 * kStoreFormatVersion — bump it when a struct here changes shape.
 */
#ifndef STOS_BACKEND_SERIALIZE_H
#define STOS_BACKEND_SERIALIZE_H

#include "backend/minstr.h"
#include "support/binio.h"

namespace stos::backend {

void writeProgram(support::BinWriter &w, const MProgram &p);
MProgram readProgram(support::BinReader &r);

} // namespace stos::backend

#endif
