/**
 * @file
 * Backend driver ("run gcc" in Figure 1): GCC-style late
 * optimization, instruction selection (including fat-pointer and
 * dynamic-check lowering), link-time garbage collection, and data
 * layout.
 */
#ifndef STOS_BACKEND_BACKEND_H
#define STOS_BACKEND_BACKEND_H

#include "backend/minstr.h"
#include "backend/target.h"
#include "ir/module.h"

namespace stos::backend {

/**
 * The deliberately *weak* late optimizer modelling what GCC adds on
 * top of the toolchain (paper §3.1: it removes the "easy" checks).
 */
struct GccOptions {
    bool optimize = true;       ///< block-local folding + weak DCE
    bool lateInline = false;    ///< let "GCC" do the inlining instead
    uint32_t inlineBudget = 48; ///< same budget as the early inliner
};

struct GccReport {
    uint32_t checksRemoved = 0;
    uint32_t instrsRemoved = 0;
    uint32_t constsFolded = 0;
    uint32_t sitesInlined = 0;
};

/** Run the GCC-style optimizations in place. */
GccReport runGccStyleOpts(ir::Module &m, const GccOptions &opts);

struct BackendOptions {
    GccOptions gcc;
};

/**
 * Compile a module to a linked firmware image. The module is modified
 * (late optimization, linker GC); callers that need the IR afterwards
 * should pass a clone.
 */
MProgram compileToTarget(ir::Module &m, const TargetInfo &target,
                         const BackendOptions &opts = {});

} // namespace stos::backend

#endif
