/**
 * @file
 * Cost model and size accounting for machine programs.
 */
#include "backend/minstr.h"

namespace stos::backend {

const MProgram::DataItem *
MProgram::findData(uint32_t globalId) const
{
    for (const auto &d : data) {
        if (d.globalId == globalId)
            return &d;
    }
    return nullptr;
}

namespace {

/** How many native registers an operation of width w touches. */
uint32_t
widthFactor(const TargetInfo &t, uint8_t w)
{
    uint32_t words = (w + t.regBits - 1) / t.regBits;
    return words == 0 ? 1 : words;
}

} // namespace

uint32_t
MProgram::instrBytes(const MInstr &in) const
{
    const TargetInfo &t = target;
    uint32_t k = widthFactor(t, in.w);
    switch (in.op) {
      case MOp::Ldi: return 2 * k;
      case MOp::Mov: return 2 * k;
      case MOp::Add: case MOp::Sub:
      case MOp::And: case MOp::Or: case MOp::Xor:
      case MOp::AddI: case MOp::AndI:
      case MOp::Neg: case MOp::Not: case MOp::BNot:
      case MOp::Sext:
        return 2 * k;
      case MOp::Shl: case MOp::ShrU: case MOp::ShrS:
        return 2 * k;
      case MOp::SetC:
        return 2 * k + 2;
      case MOp::SetArg: case MOp::GetRet: case MOp::SetRet:
        return 2 * k;
      case MOp::Mul:
        return t.regBits >= 16 ? 2 * k : 2 + 2 * k;
      case MOp::DivU: case MOp::DivS: case MOp::RemU: case MOp::RemS:
        // Software routines on both parts: call-sized.
        return 4;
      case MOp::CmpBr:
        return 2 * k + 2;
      case MOp::Jmp:
        return t.regBits >= 16 ? 2 : 4;
      case MOp::Ld:
        return 2 * k + (in.romData ? t.romLoadSizePenalty : 0);
      case MOp::St:
        return 2 * k;
      case MOp::Lea:
        return 4;
      case MOp::Leal:
        return 4;
      case MOp::Call:
        return 4;
      case MOp::CallR:
        return t.regBits >= 16 ? 2 : 4;
      case MOp::Ret: case MOp::Reti:
        return 2;
      case MOp::Enter: case MOp::Leave:
        return in.imm > 0 ? 6 : 2;
      case MOp::Sei: case MOp::Cli:
      case MOp::GetIf: case MOp::SetIf:
        return 2;
      case MOp::In: case MOp::Out:
        return 2;
      case MOp::Sleep:
        return 2;
      case MOp::Nop:
        return 2;
      case MOp::SSPush:
        return 2;  // push one id word to the shadow region
      case MOp::SSChk:
        return 6;  // load shadow top, compare, branch
      case MOp::Halt:
        return 0;  // simulator sentinel, not a real instruction
      case MOp::FCmpBrI: case MOp::FMov2: case MOp::FLd2:
      case MOp::FSt2: case MOp::FLea2: case MOp::FLeal2:
      case MOp::FSetArg2: case MOp::FLdiArg: case MOp::FSetCI:
      case MOp::FLdiMov: case MOp::FLdiAlu: case MOp::FAluMov:
      case MOp::FMovJmp:
        return 0;  // decode-time superinstructions, never in MInstr
    }
    return 2;
}

uint32_t
MProgram::instrCycles(const MInstr &in) const
{
    const TargetInfo &t = target;
    uint32_t k = widthFactor(t, in.w);
    switch (in.op) {
      case MOp::Ldi: case MOp::Mov:
      case MOp::Add: case MOp::Sub:
      case MOp::And: case MOp::Or: case MOp::Xor:
      case MOp::AddI: case MOp::AndI:
      case MOp::Neg: case MOp::Not: case MOp::BNot:
      case MOp::Sext:
      case MOp::Shl: case MOp::ShrU: case MOp::ShrS:
      case MOp::SetArg: case MOp::GetRet: case MOp::SetRet:
        return k;
      case MOp::SetC:
        return k + 1;
      case MOp::Mul:
        return 2 * k;
      case MOp::DivU: case MOp::DivS: case MOp::RemU: case MOp::RemS:
        return 16 * k;  // software division
      case MOp::CmpBr:
        return k + 1;
      case MOp::Jmp:
        return 2;
      case MOp::Ld:
        return 2 * k + (in.romData ? t.romLoadPenalty : 0);
      case MOp::St:
        return 2 * k;
      case MOp::Lea: case MOp::Leal:
        return 2;
      case MOp::Call:
        return 4;
      case MOp::CallR:
        return 5;
      case MOp::Ret:
        return 4;
      case MOp::Reti:
        return 4;
      case MOp::Enter: case MOp::Leave:
        return in.imm > 0 ? 4 : 1;
      case MOp::Sei: case MOp::Cli:
      case MOp::GetIf: case MOp::SetIf:
        return 1;
      case MOp::In: case MOp::Out:
        return 1;
      case MOp::Sleep:
        return 1;
      case MOp::Nop:
        return 1;
      case MOp::SSPush:
        return 3;
      case MOp::SSChk:
        return 5;
      case MOp::Halt:
        return 0;  // simulator sentinel, not a real instruction
      case MOp::FCmpBrI: case MOp::FMov2: case MOp::FLd2:
      case MOp::FSt2: case MOp::FLea2: case MOp::FLeal2:
      case MOp::FSetArg2: case MOp::FLdiArg: case MOp::FSetCI:
      case MOp::FLdiMov: case MOp::FLdiAlu: case MOp::FAluMov:
      case MOp::FMovJmp:
        return 0;  // decode-time superinstructions, never in MInstr
    }
    return 1;
}

uint32_t
MProgram::funcBytes(const MFunc &f) const
{
    uint32_t n = 0;
    for (const auto &bb : f.blocks) {
        for (const auto &in : bb.instrs)
            n += instrBytes(in);
    }
    return n;
}

uint32_t
MProgram::codeBytes() const
{
    uint32_t n = 0;
    for (const auto &f : funcs)
        n += funcBytes(f);
    // Interrupt vector table and C startup stub.
    n += static_cast<uint32_t>(vectorTable.size()) * 4 + 24;
    return n;
}

uint32_t
MProgram::ramDataBytes() const
{
    uint32_t n = 0;
    for (const auto &d : data) {
        if (!d.rom)
            n += d.size;
    }
    return n;
}

uint32_t
MProgram::romDataBytes() const
{
    uint32_t n = 0;
    for (const auto &d : data) {
        if (d.rom)
            n += d.size;
    }
    return n;
}

uint32_t
MProgram::survivingCheckTags() const
{
    uint32_t n = 0;
    for (const auto &d : data) {
        if (d.isCheckTag)
            ++n;
    }
    return n;
}

uint32_t
MProgram::survivingCheckBranches() const
{
    uint32_t n = 0;
    for (const auto &f : funcs) {
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.isCheck &&
                    (in.op == MOp::CmpBr || in.op == MOp::SSChk))
                    ++n;
            }
        }
    }
    return n;
}

} // namespace stos::backend
