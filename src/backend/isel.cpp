/**
 * @file
 * Instruction selection and linking. Lowers TinyCIL to the machine
 * representation: fat pointers become register tuples (cur[,base]
 * [,end]), dynamic checks become compare-and-branch sequences feeding
 * per-site failure stubs, and atomic sections become IRQ-flag
 * manipulation. The link step garbage-collects unreferenced functions
 * and data (this is what kills dead check-tag strings in the Figure 2
 * methodology) and lays out RAM/ROM.
 */
#include "backend/backend.h"

#include <algorithm>
#include <map>
#include <optional>

#include "cfi/cfi.h"
#include "opt/passes.h"
#include "safety/runtime.h"
#include "support/util.h"

namespace stos::backend {

using namespace stos::ir;

namespace {

/** Fat-pointer component layout within a register tuple. */
struct PtrLayout {
    uint32_t words = 1;
    int curIdx = 0;
    int baseIdx = -1;  ///< -1: not present
    int endIdx = -1;
};

PtrLayout
layoutOf(PtrKind k)
{
    switch (k) {
      case PtrKind::Unchecked:
      case PtrKind::Safe:
        return {1, 0, -1, -1};
      case PtrKind::FSeq:
      case PtrKind::Wild:
        return {2, 0, -1, 1};
      case PtrKind::Seq:
        return {3, 0, 1, 2};
    }
    return {1, 0, -1, -1};
}

MCond
condOf(BinOp op)
{
    switch (op) {
      case BinOp::Eq: return MCond::Eq;
      case BinOp::Ne: return MCond::Ne;
      case BinOp::LtU: return MCond::LtU;
      case BinOp::LtS: return MCond::LtS;
      case BinOp::LeU: return MCond::LeU;
      case BinOp::LeS: return MCond::LeS;
      case BinOp::GtU: return MCond::GtU;
      case BinOp::GtS: return MCond::GtS;
      case BinOp::GeU: return MCond::GeU;
      default: return MCond::GeS;
    }
}

class Selector {
  public:
    Selector(const Module &m, MProgram &prog, bool cfi)
        : mod_(m), prog_(prog), cfi_(cfi) {}

    MFunc
    select(const Function &f)
    {
        cur_ = MFunc{};
        cur_.id = f.id;
        cur_.name = f.name;
        cur_.interruptVector = f.attrs.interruptVector;
        cur_.isTask = f.attrs.isTask;
        func_ = &f;
        nextReg_ = 0;
        irqSave_ = ~0u;
        regBase_.assign(f.vregs.size(), ~0u);
        failBlocks_.clear();

        // Frame layout for memory locals.
        localOff_.assign(f.locals.size(), 0);
        uint32_t off = 0;
        for (uint32_t l = 0; l < f.locals.size(); ++l) {
            off = alignUp(off, mod_.typeAlign(f.locals[l].type));
            localOff_[l] = off;
            off += std::max(1u, mod_.typeSize(f.locals[l].type));
        }
        cur_.frameBytes = alignUp(off, 2);

        // Pre-allocate parameter tuples in argument-slot order.
        for (uint32_t p : f.params)
            (void)regsOf(p);

        // Machine blocks mirror IR blocks one-to-one; fail stubs are
        // appended afterwards.
        cur_.blocks.resize(f.blocks.size());
        for (const auto &bb : f.blocks) {
            out_ = &cur_.blocks[bb.id];
            if (bb.id == 0) {
                MInstr enter;
                enter.op = MOp::Enter;
                enter.imm = cur_.frameBytes;
                out_->instrs.push_back(enter);
            }
            for (const auto &in : bb.instrs)
                lower(in);
        }
        // Append fail stubs.
        for (auto &fb : failBlocks_)
            cur_.blocks.push_back(std::move(fb));
        cur_.numRegs = nextReg_;
        return std::move(cur_);
    }

  private:
    //--- register tuples ------------------------------------------

    uint32_t
    regsOf(uint32_t vreg)
    {
        if (regBase_[vreg] != ~0u)
            return regBase_[vreg];
        const Type &ty = mod_.types().get(func_->vregs[vreg].type);
        uint32_t words = 1;
        if (ty.kind == TypeKind::Ptr)
            words = layoutOf(ty.ptrKind).words;
        regBase_[vreg] = nextReg_;
        nextReg_ += words;
        return regBase_[vreg];
    }

    uint32_t
    tempReg()
    {
        return nextReg_++;
    }

    uint8_t
    widthOfType(TypeId t) const
    {
        const Type &ty = mod_.types().get(t);
        switch (ty.kind) {
          case TypeKind::Bool: return 8;
          case TypeKind::Int: return ty.bits;
          default: return 16;
        }
    }

    PtrLayout
    ptrLayoutOfType(TypeId t) const
    {
        const Type &ty = mod_.types().get(t);
        if (ty.kind == TypeKind::Ptr)
            return layoutOf(ty.ptrKind);
        return {1, 0, -1, -1};
    }

    void
    emit(MInstr in)
    {
        out_->instrs.push_back(in);
    }

    void
    emitLdi(uint32_t rd, int64_t imm, uint8_t w)
    {
        MInstr in;
        in.op = MOp::Ldi;
        in.rd = rd;
        in.imm = imm;
        in.w = w;
        emit(in);
    }

    void
    emitMov(uint32_t rd, uint32_t ra, uint8_t w)
    {
        MInstr in;
        in.op = MOp::Mov;
        in.rd = rd;
        in.ra = ra;
        in.w = w;
        emit(in);
    }

    /** Materialize an operand's primary word into a register. */
    uint32_t
    valueReg(const Operand &op, uint8_t w)
    {
        switch (op.kind) {
          case OperandKind::VReg:
            return regsOf(op.index);
          case OperandKind::ImmInt: {
            uint32_t r = tempReg();
            emitLdi(r, op.imm, w);
            return r;
          }
          case OperandKind::Func: {
            uint32_t r = tempReg();
            emitLdi(r, static_cast<int64_t>(op.index) + 1, 16);
            return r;
          }
          case OperandKind::Global: {
            uint32_t r = tempReg();
            MInstr lea;
            lea.op = MOp::Lea;
            lea.rd = r;
            lea.gid = op.index;
            lea.w = 16;
            emit(lea);
            return r;
          }
          case OperandKind::None:
            break;
        }
        return tempReg();
    }

    /**
     * Copy the fat components of a pointer-typed operand into the
     * destination tuple, translating between layouts.
     */
    void
    copyPtr(uint32_t dstBase, const PtrLayout &dl, const Operand &src,
            TypeId srcType)
    {
        if (src.isVReg()) {
            PtrLayout sl = ptrLayoutOfType(srcType);
            uint32_t sb = regsOf(src.index);
            emitMov(dstBase + dl.curIdx, sb + sl.curIdx, 16);
            if (dl.endIdx >= 0) {
                if (sl.endIdx >= 0)
                    emitMov(dstBase + dl.endIdx, sb + sl.endIdx, 16);
                else
                    emitLdi(dstBase + dl.endIdx, 0xFFFF, 16);
            }
            if (dl.baseIdx >= 0) {
                if (sl.baseIdx >= 0)
                    emitMov(dstBase + dl.baseIdx, sb + sl.baseIdx, 16);
                else
                    emitLdi(dstBase + dl.baseIdx, 0, 16);
            }
            return;
        }
        // Immediate (null or int-constant pointer).
        int64_t v = src.isImm() ? src.imm : 0;
        emitLdi(dstBase + dl.curIdx, v, 16);
        if (dl.endIdx >= 0)
            emitLdi(dstBase + dl.endIdx, v == 0 ? 0 : 0xFFFF, 16);
        if (dl.baseIdx >= 0)
            emitLdi(dstBase + dl.baseIdx, 0, 16);
    }

    //--- fail stubs --------------------------------------------------

    /** Lazily create the per-site failure stub; returns block index. */
    uint32_t
    failStubFor(const Instr &chk)
    {
        uint32_t idx = static_cast<uint32_t>(func_->blocks.size() +
                                             failBlocks_.size());
        MBlock stub;
        auto emitTo = [&](MInstr in) { stub.instrs.push_back(in); };
        const Function *failMsg = mod_.findFunc(safety::kFailMsgFn);
        const Function *fail = mod_.findFunc(safety::kFailFn);
        // Keep the shadow stack balanced: under CFI every executed
        // Call is preceded by a push, fail-stub calls included.
        auto pushShadow = [&] {
            if (cfi_) {
                MInstr ss;
                ss.op = MOp::SSPush;
                emitTo(ss);
            }
        };
        if (chk.auxB != 0 && failMsg) {
            // Pass the string's fat pointer per the handler's
            // inferred parameter kind.
            const Global &g = mod_.globalAt(chk.auxB - 1);
            TypeId pt = failMsg->vregs[failMsg->params[0]].type;
            PtrLayout pl = ptrLayoutOfType(pt);
            uint32_t r = nextReg_;
            nextReg_ += 3;
            MInstr lea;
            lea.op = MOp::Lea;
            lea.rd = r + pl.curIdx;
            lea.gid = g.id;
            lea.w = 16;
            emitTo(lea);
            if (pl.baseIdx >= 0) {
                MInstr lb = lea;
                lb.rd = r + pl.baseIdx;
                emitTo(lb);
            }
            if (pl.endIdx >= 0) {
                MInstr le = lea;
                le.rd = r + pl.endIdx;
                le.imm = mod_.typeSize(g.type);
                emitTo(le);
            }
            for (uint32_t wslot = 0; wslot < pl.words; ++wslot) {
                MInstr sa;
                sa.op = MOp::SetArg;
                sa.imm = wslot;
                sa.ra = r + wslot;
                sa.w = 16;
                emitTo(sa);
            }
            pushShadow();
            MInstr call;
            call.op = MOp::Call;
            call.fn = failMsg->id;
            emitTo(call);
        } else if (fail) {
            uint32_t r = nextReg_++;
            MInstr ldi;
            ldi.op = MOp::Ldi;
            ldi.rd = r;
            ldi.imm = chk.flid;
            ldi.w = 16;
            emitTo(ldi);
            MInstr sa;
            sa.op = MOp::SetArg;
            sa.imm = 0;
            sa.ra = r;
            sa.w = 16;
            emitTo(sa);
            pushShadow();
            MInstr call;
            call.op = MOp::Call;
            call.fn = fail->id;
            emitTo(call);
        }
        MInstr self;
        self.op = MOp::Jmp;
        self.target = idx;
        emitTo(self);
        failBlocks_.push_back(std::move(stub));
        return idx;
    }

    void
    emitCheckBranch(uint32_t ra, MCond c, uint32_t rb, uint32_t flid,
                    uint32_t target)
    {
        MInstr br;
        br.op = MOp::CmpBr;
        br.cond = c;
        br.ra = ra;
        br.rb = rb;
        br.target = target;
        br.w = 16;
        br.isCheck = true;
        br.flid = flid;
        emit(br);
    }

    //--- main lowering ----------------------------------------------

    void
    lower(const Instr &in)
    {
        const TypeTable &tt = mod_.types();
        switch (in.op) {
          case Opcode::ConstI: {
            const Type &ty = tt.get(in.type);
            if (ty.kind == TypeKind::Ptr) {
                PtrLayout pl = layoutOf(ty.ptrKind);
                copyPtr(regsOf(in.dst), pl, in.args[0], in.type);
            } else {
                emitLdi(regsOf(in.dst), in.args[0].imm,
                        widthOfType(in.type));
            }
            break;
          }
          case Opcode::Mov: {
            const Type &ty = tt.get(in.type);
            if (ty.kind == TypeKind::Ptr) {
                TypeId st = in.args[0].isVReg()
                                ? func_->vregs[in.args[0].index].type
                                : in.type;
                copyPtr(regsOf(in.dst), layoutOf(ty.ptrKind), in.args[0],
                        st);
            } else {
                uint8_t w = widthOfType(in.type);
                uint32_t ra = valueReg(in.args[0], w);
                emitMov(regsOf(in.dst), ra, w);
            }
            break;
          }
          case Opcode::Bin: {
            // Operand width, from either vreg operand: for
            // comparisons in.type is the bool result type, so when
            // the optimizer substitutes an immediate into args[0]
            // the real comparison width lives on args[1].
            uint8_t w = in.args[0].isVReg()
                            ? widthOfType(func_->vregs[in.args[0].index]
                                              .type)
                        : in.args[1].isVReg()
                            ? widthOfType(func_->vregs[in.args[1].index]
                                              .type)
                            : widthOfType(in.type);
            uint32_t ra = valueReg(in.args[0], w);
            uint32_t rb = valueReg(in.args[1], w);
            uint32_t rd = regsOf(in.dst);
            if (binOpIsComparison(in.bop)) {
                MInstr sc;
                sc.op = MOp::SetC;
                sc.cond = condOf(in.bop);
                sc.rd = rd;
                sc.ra = ra;
                sc.rb = rb;
                sc.w = w;
                emit(sc);
                break;
            }
            MInstr op;
            op.rd = rd;
            op.ra = ra;
            op.rb = rb;
            op.w = widthOfType(in.type);
            switch (in.bop) {
              case BinOp::Add: op.op = MOp::Add; break;
              case BinOp::Sub: op.op = MOp::Sub; break;
              case BinOp::Mul: op.op = MOp::Mul; break;
              case BinOp::DivU: op.op = MOp::DivU; break;
              case BinOp::DivS: op.op = MOp::DivS; break;
              case BinOp::RemU: op.op = MOp::RemU; break;
              case BinOp::RemS: op.op = MOp::RemS; break;
              case BinOp::And: op.op = MOp::And; break;
              case BinOp::Or: op.op = MOp::Or; break;
              case BinOp::Xor: op.op = MOp::Xor; break;
              case BinOp::Shl: op.op = MOp::Shl; break;
              case BinOp::ShrU: op.op = MOp::ShrU; break;
              case BinOp::ShrS: op.op = MOp::ShrS; break;
              default: op.op = MOp::Nop; break;
            }
            emit(op);
            break;
          }
          case Opcode::Un: {
            uint8_t w = widthOfType(in.type);
            uint32_t ra = valueReg(in.args[0], w);
            MInstr op;
            op.rd = regsOf(in.dst);
            op.ra = ra;
            op.w = w;
            op.op = in.uop == UnOp::Neg
                        ? MOp::Neg
                        : in.uop == UnOp::Not ? MOp::Not : MOp::BNot;
            emit(op);
            break;
          }
          case Opcode::Cast: {
            const Type &to = tt.get(in.type);
            if (to.kind == TypeKind::Ptr) {
                TypeId st = in.args[0].isVReg()
                                ? func_->vregs[in.args[0].index].type
                                : in.type;
                const Type &sty = tt.get(st);
                if (sty.kind == TypeKind::Ptr) {
                    copyPtr(regsOf(in.dst), layoutOf(to.ptrKind),
                            in.args[0], st);
                } else {
                    // int -> pointer
                    PtrLayout pl = layoutOf(to.ptrKind);
                    uint32_t rd = regsOf(in.dst);
                    uint32_t ra = valueReg(in.args[0], 16);
                    emitMov(rd + pl.curIdx, ra, 16);
                    if (pl.endIdx >= 0)
                        emitLdi(rd + pl.endIdx, 0xFFFF, 16);
                    if (pl.baseIdx >= 0)
                        emitLdi(rd + pl.baseIdx, 0, 16);
                }
                break;
            }
            uint8_t w = widthOfType(in.type);
            TypeId st = in.args[0].isVReg()
                            ? func_->vregs[in.args[0].index].type
                            : in.type;
            const Type &sty = tt.get(st);
            uint32_t ra = valueReg(in.args[0], widthOfType(st));
            uint32_t rd = regsOf(in.dst);
            if (sty.kind == TypeKind::Int && sty.isSigned &&
                widthOfType(st) < w) {
                MInstr sx;
                sx.op = MOp::Sext;
                sx.rd = rd;
                sx.ra = ra;
                sx.imm = widthOfType(st);
                sx.w = w;
                emit(sx);
            } else {
                emitMov(rd, ra, w);
            }
            break;
          }
          case Opcode::AddrGlobal: {
            const Type &ty = tt.get(in.type);
            PtrLayout pl = layoutOf(ty.ptrKind);
            uint32_t rd = regsOf(in.dst);
            const Global &g = mod_.globalAt(in.args[0].index);
            MInstr lea;
            lea.op = MOp::Lea;
            lea.rd = rd + pl.curIdx;
            lea.gid = g.id;
            lea.w = 16;
            emit(lea);
            if (pl.baseIdx >= 0) {
                MInstr lb = lea;
                lb.rd = rd + pl.baseIdx;
                emit(lb);
            }
            if (pl.endIdx >= 0) {
                MInstr le = lea;
                le.rd = rd + pl.endIdx;
                le.imm = mod_.typeSize(g.type);
                emit(le);
            }
            break;
          }
          case Opcode::AddrLocal: {
            const Type &ty = tt.get(in.type);
            PtrLayout pl = layoutOf(ty.ptrKind);
            uint32_t rd = regsOf(in.dst);
            uint32_t off = localOff_[in.auxA];
            uint32_t size =
                std::max(1u, mod_.typeSize(func_->locals[in.auxA].type));
            MInstr lea;
            lea.op = MOp::Leal;
            lea.rd = rd + pl.curIdx;
            lea.imm = off;
            lea.w = 16;
            emit(lea);
            if (pl.baseIdx >= 0) {
                MInstr lb = lea;
                lb.rd = rd + pl.baseIdx;
                emit(lb);
            }
            if (pl.endIdx >= 0) {
                MInstr le = lea;
                le.rd = rd + pl.endIdx;
                le.imm = off + size;
                emit(le);
            }
            break;
          }
          case Opcode::Gep: {
            const Type &ty = tt.get(in.type);
            PtrLayout dl = layoutOf(ty.ptrKind);
            uint32_t rd = regsOf(in.dst);
            TypeId st = func_->vregs[in.args[0].index].type;
            copyPtr(rd, dl, in.args[0], st);
            if (in.auxB != 0) {
                MInstr add;
                add.op = MOp::AddI;
                add.rd = rd + dl.curIdx;
                add.ra = rd + dl.curIdx;
                add.imm = in.auxB;
                add.w = 16;
                emit(add);
            }
            break;
          }
          case Opcode::PtrAdd: {
            const Type &ty = tt.get(in.type);
            PtrLayout dl = layoutOf(ty.ptrKind);
            uint32_t rd = regsOf(in.dst);
            TypeId st = in.args[0].isVReg()
                            ? func_->vregs[in.args[0].index].type
                            : in.type;
            copyPtr(rd, dl, in.args[0], st);
            if (in.args[1].isImm()) {
                int64_t delta = in.args[1].imm *
                                static_cast<int64_t>(in.auxA);
                if (delta != 0) {
                    MInstr add;
                    add.op = MOp::AddI;
                    add.rd = rd + dl.curIdx;
                    add.ra = rd + dl.curIdx;
                    add.imm = delta;
                    add.w = 16;
                    emit(add);
                }
            } else {
                uint32_t idx = valueReg(in.args[1], 16);
                uint32_t scaled = idx;
                if (in.auxA != 1) {
                    scaled = tempReg();
                    uint32_t esz = tempReg();
                    emitLdi(esz, in.auxA, 16);
                    MInstr mul;
                    mul.op = MOp::Mul;
                    mul.rd = scaled;
                    mul.ra = idx;
                    mul.rb = esz;
                    mul.w = 16;
                    emit(mul);
                }
                MInstr add;
                add.op = MOp::Add;
                add.rd = rd + dl.curIdx;
                add.ra = rd + dl.curIdx;
                add.rb = scaled;
                add.w = 16;
                emit(add);
            }
            break;
          }
          case Opcode::Load: {
            const Type &ty = tt.get(in.type);
            uint32_t addr =
                regsOf(in.args[0].index) +
                ptrLayoutOfType(func_->vregs[in.args[0].index].type)
                    .curIdx;
            bool rom = loadsRom(in.args[0].index);
            uint32_t rd = regsOf(in.dst);
            if (ty.kind == TypeKind::Ptr) {
                PtrLayout pl = layoutOf(ty.ptrKind);
                for (uint32_t wd = 0; wd < pl.words; ++wd) {
                    MInstr ld;
                    ld.op = MOp::Ld;
                    ld.rd = rd + wd;
                    ld.ra = addr;
                    ld.imm = wd * 2;
                    ld.w = 16;
                    ld.romData = rom;
                    emit(ld);
                }
            } else {
                MInstr ld;
                ld.op = MOp::Ld;
                ld.rd = rd;
                ld.ra = addr;
                ld.w = widthOfType(in.type);
                ld.romData = rom;
                emit(ld);
            }
            break;
          }
          case Opcode::Store: {
            const Type &ty = tt.get(in.type);
            uint32_t addr =
                regsOf(in.args[0].index) +
                ptrLayoutOfType(func_->vregs[in.args[0].index].type)
                    .curIdx;
            if (ty.kind == TypeKind::Ptr) {
                PtrLayout pl = layoutOf(ty.ptrKind);
                // Materialize the source tuple (handles null imms).
                uint32_t src = nextReg_;
                nextReg_ += pl.words;
                TypeId st = in.args[1].isVReg()
                                ? func_->vregs[in.args[1].index].type
                                : in.type;
                copyPtr(src, pl, in.args[1], st);
                for (uint32_t wd = 0; wd < pl.words; ++wd) {
                    MInstr stI;
                    stI.op = MOp::St;
                    stI.ra = addr;
                    stI.rb = src + wd;
                    stI.imm = wd * 2;
                    stI.w = 16;
                    emit(stI);
                }
            } else {
                uint8_t w = widthOfType(in.type);
                uint32_t rb = valueReg(in.args[1], w);
                MInstr stI;
                stI.op = MOp::St;
                stI.ra = addr;
                stI.rb = rb;
                stI.w = w;
                emit(stI);
            }
            break;
          }
          case Opcode::Call: {
            const Function &callee = mod_.funcAt(in.callee);
            uint32_t slot = 0;
            for (size_t i = 0; i < in.args.size(); ++i) {
                TypeId pt = callee.vregs[callee.params[i]].type;
                const Type &pty = tt.get(pt);
                if (pty.kind == TypeKind::Ptr) {
                    PtrLayout pl = layoutOf(pty.ptrKind);
                    uint32_t src = nextReg_;
                    nextReg_ += pl.words;
                    TypeId st =
                        in.args[i].isVReg()
                            ? func_->vregs[in.args[i].index].type
                            : pt;
                    copyPtr(src, pl, in.args[i], st);
                    for (uint32_t wd = 0; wd < pl.words; ++wd) {
                        MInstr sa;
                        sa.op = MOp::SetArg;
                        sa.imm = slot++;
                        sa.ra = src + wd;
                        sa.w = 16;
                        emit(sa);
                    }
                } else {
                    uint8_t w = widthOfType(pt);
                    uint32_t ra = valueReg(in.args[i], w);
                    MInstr sa;
                    sa.op = MOp::SetArg;
                    sa.imm = slot++;
                    sa.ra = ra;
                    sa.w = w;
                    emit(sa);
                }
            }
            emitShadowPush();
            MInstr call;
            call.op = MOp::Call;
            call.fn = in.callee;
            emit(call);
            if (in.hasDst()) {
                const Type &rt = tt.get(in.type);
                if (rt.kind == TypeKind::Ptr) {
                    PtrLayout pl = layoutOf(rt.ptrKind);
                    uint32_t rd = regsOf(in.dst);
                    for (uint32_t wd = 0; wd < pl.words; ++wd) {
                        MInstr gr;
                        gr.op = MOp::GetRet;
                        gr.rd = rd + wd;
                        gr.imm = wd;
                        gr.w = 16;
                        emit(gr);
                    }
                } else {
                    MInstr gr;
                    gr.op = MOp::GetRet;
                    gr.rd = regsOf(in.dst);
                    gr.w = widthOfType(in.type);
                    emit(gr);
                }
            }
            break;
          }
          case Opcode::CallInd: {
            uint32_t ra = valueReg(in.args[0], 16);
            emitShadowPush();
            MInstr call;
            call.op = MOp::CallR;
            call.ra = ra;
            emit(call);
            break;
          }
          case Opcode::Ret: {
            if (cfi_ && in.flid != 0) {
                // Shadow-stack return check: compare the shadow top
                // against the caller frame before unwinding.
                MInstr chk;
                chk.op = MOp::SSChk;
                chk.target = failStubFor(in);
                chk.isCheck = true;
                chk.flid = in.flid;
                emit(chk);
            }
            if (!in.args.empty()) {
                const Type &rt = tt.get(func_->retType);
                if (rt.kind == TypeKind::Ptr) {
                    PtrLayout pl = layoutOf(rt.ptrKind);
                    uint32_t src = nextReg_;
                    nextReg_ += pl.words;
                    TypeId st =
                        in.args[0].isVReg()
                            ? func_->vregs[in.args[0].index].type
                            : func_->retType;
                    copyPtr(src, pl, in.args[0], st);
                    for (uint32_t wd = 0; wd < pl.words; ++wd) {
                        MInstr sr;
                        sr.op = MOp::SetRet;
                        sr.ra = src + wd;
                        sr.imm = wd;
                        sr.w = 16;
                        emit(sr);
                    }
                } else {
                    uint8_t w = widthOfType(func_->retType);
                    uint32_t ra = valueReg(in.args[0], w);
                    MInstr sr;
                    sr.op = MOp::SetRet;
                    sr.ra = ra;
                    sr.w = w;
                    emit(sr);
                }
            }
            MInstr leave;
            leave.op = MOp::Leave;
            leave.imm = cur_.frameBytes;
            emit(leave);
            MInstr ret;
            ret.op = func_->attrs.interruptVector >= 0 ? MOp::Reti
                                                       : MOp::Ret;
            emit(ret);
            break;
          }
          case Opcode::Br: {
            MInstr j;
            j.op = MOp::Jmp;
            j.target = in.b0;
            emit(j);
            break;
          }
          case Opcode::CondBr: {
            uint32_t ra = valueReg(in.args[0], 8);
            uint32_t zero = tempReg();
            emitLdi(zero, 0, 8);
            MInstr br;
            br.op = MOp::CmpBr;
            br.cond = MCond::Ne;
            br.ra = ra;
            br.rb = zero;
            br.w = 8;
            br.target = in.b0;
            emit(br);
            MInstr j;
            j.op = MOp::Jmp;
            j.target = in.b1;
            emit(j);
            break;
          }
          case Opcode::ChkNull: {
            uint32_t fb = failStubFor(in);
            uint32_t base = regsOf(in.args[0].index);
            PtrLayout pl = ptrLayoutOfType(
                func_->vregs[in.args[0].index].type);
            uint32_t zero = tempReg();
            emitLdi(zero, 0, 16);
            emitCheckBranch(base + pl.curIdx, MCond::Eq, zero, in.flid,
                            fb);
            break;
          }
          case Opcode::ChkUBound:
          case Opcode::ChkWild: {
            uint32_t fb = failStubFor(in);
            uint32_t base = regsOf(in.args[0].index);
            PtrLayout pl = ptrLayoutOfType(
                func_->vregs[in.args[0].index].type);
            uint32_t zero = tempReg();
            emitLdi(zero, 0, 16);
            emitCheckBranch(base + pl.curIdx, MCond::Eq, zero, in.flid,
                            fb);
            uint32_t tmp = tempReg();
            MInstr add;
            add.op = MOp::AddI;
            add.rd = tmp;
            add.ra = base + pl.curIdx;
            add.imm = in.auxA;
            add.w = 16;
            emit(add);
            if (pl.endIdx >= 0) {
                emitCheckBranch(tmp, MCond::GtU, base + pl.endIdx,
                                in.flid, fb);
            }
            break;
          }
          case Opcode::ChkBounds: {
            uint32_t fb = failStubFor(in);
            uint32_t base = regsOf(in.args[0].index);
            PtrLayout pl = ptrLayoutOfType(
                func_->vregs[in.args[0].index].type);
            uint32_t zero = tempReg();
            emitLdi(zero, 0, 16);
            emitCheckBranch(base + pl.curIdx, MCond::Eq, zero, in.flid,
                            fb);
            if (pl.baseIdx >= 0) {
                emitCheckBranch(base + pl.curIdx, MCond::LtU,
                                base + pl.baseIdx, in.flid, fb);
            }
            uint32_t tmp = tempReg();
            MInstr add;
            add.op = MOp::AddI;
            add.rd = tmp;
            add.ra = base + pl.curIdx;
            add.imm = in.auxA;
            add.w = 16;
            emit(add);
            if (pl.endIdx >= 0) {
                emitCheckBranch(tmp, MCond::GtU, base + pl.endIdx,
                                in.flid, fb);
            }
            break;
          }
          case Opcode::ChkFnPtr: {
            uint32_t fb = failStubFor(in);
            uint32_t ra = valueReg(in.args[0], 16);
            uint32_t zero = tempReg();
            emitLdi(zero, 0, 16);
            emitCheckBranch(ra, MCond::Eq, zero, in.flid, fb);
            uint32_t lim = tempReg();
            emitLdi(lim, static_cast<int64_t>(mod_.funcs().size()), 16);
            emitCheckBranch(ra, MCond::GtU, lim, in.flid, fb);
            break;
          }
          case Opcode::ChkCfiLabel: {
            uint32_t fb = failStubFor(in);
            uint32_t ra = valueReg(in.args[0], 16);
            uint32_t zero = tempReg();
            emitLdi(zero, 0, 16);
            emitCheckBranch(ra, MCond::Eq, zero, in.flid, fb);
            uint32_t lim = tempReg();
            emitLdi(lim, static_cast<int64_t>(mod_.funcs().size()), 16);
            emitCheckBranch(ra, MCond::GtU, lim, in.flid, fb);
            // label = table[id]: byte load from the ROM label table.
            uint32_t tbl = tempReg();
            MInstr lea;
            lea.op = MOp::Lea;
            lea.rd = tbl;
            lea.gid = in.args[1].index;
            lea.w = 16;
            emit(lea);
            uint32_t addr = tempReg();
            MInstr add;
            add.op = MOp::Add;
            add.rd = addr;
            add.ra = tbl;
            add.rb = ra;
            add.w = 16;
            emit(add);
            uint32_t lab = tempReg();
            MInstr ld;
            ld.op = MOp::Ld;
            ld.rd = lab;
            ld.ra = addr;
            ld.w = 8;
            ld.romData = true;
            emit(ld);
            uint32_t exp = tempReg();
            emitLdi(exp, in.auxA, 16);
            emitCheckBranch(lab, MCond::Ne, exp, in.flid, fb);
            break;
          }
          case Opcode::ChkAlign: {
            uint32_t fb = failStubFor(in);
            uint32_t base = regsOf(in.args[0].index);
            PtrLayout pl = ptrLayoutOfType(
                func_->vregs[in.args[0].index].type);
            uint32_t tmp = tempReg();
            MInstr andi;
            andi.op = MOp::AndI;
            andi.rd = tmp;
            andi.ra = base + pl.curIdx;
            andi.imm = in.auxA > 0 ? in.auxA - 1 : 0;
            andi.w = 16;
            emit(andi);
            uint32_t zero = tempReg();
            emitLdi(zero, 0, 16);
            emitCheckBranch(tmp, MCond::Ne, zero, in.flid, fb);
            break;
          }
          case Opcode::Abort: {
            uint32_t fb = failStubFor(in);
            MInstr j;
            j.op = MOp::Jmp;
            j.target = fb;
            emit(j);
            break;
          }
          case Opcode::AtomicBegin: {
            if (in.auxA) {
                MInstr gi;
                gi.op = MOp::GetIf;
                gi.rd = irqSaveReg();
                emit(gi);
            }
            MInstr cli;
            cli.op = MOp::Cli;
            emit(cli);
            break;
          }
          case Opcode::AtomicEnd: {
            if (in.auxA) {
                MInstr si;
                si.op = MOp::SetIf;
                si.ra = irqSaveReg();
                emit(si);
            } else {
                MInstr sei;
                sei.op = MOp::Sei;
                emit(sei);
            }
            break;
          }
          case Opcode::HwRead: {
            MInstr io;
            io.op = MOp::In;
            io.rd = regsOf(in.dst);
            io.port = in.auxA;
            io.w = widthOfType(in.type);
            emit(io);
            break;
          }
          case Opcode::HwWrite: {
            uint8_t w = widthOfType(in.type);
            uint32_t ra = valueReg(in.args[0], w);
            MInstr io;
            io.op = MOp::Out;
            io.ra = ra;
            io.port = in.auxA;
            io.w = w;
            emit(io);
            break;
          }
          case Opcode::Sleep: {
            MInstr s;
            s.op = MOp::Sleep;
            emit(s);
            break;
          }
          case Opcode::Nop:
            break;
        }
    }

    uint32_t
    irqSaveReg()
    {
        if (irqSave_ == ~0u)
            irqSave_ = tempReg();
        return irqSave_;
    }

    /** Under CFI, every call site pushes onto the shadow stack. */
    void
    emitShadowPush()
    {
        if (!cfi_)
            return;
        MInstr ss;
        ss.op = MOp::SSPush;
        emit(ss);
    }

    /** Is this address chain rooted at a ROM global? */
    bool
    loadsRom(uint32_t vreg) const
    {
        // Cheap def chase over the current function.
        const Function &f = *func_;
        std::vector<const Instr *> def(f.vregs.size(), nullptr);
        std::vector<uint8_t> count(f.vregs.size(), 0);
        for (const auto &bb : f.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.hasDst()) {
                    if (count[in.dst] < 2)
                        ++count[in.dst];
                    def[in.dst] = &in;
                }
            }
        }
        uint32_t cur = vreg;
        for (int d = 0; d < 32; ++d) {
            if (cur >= f.vregs.size() || count[cur] != 1 || !def[cur])
                return false;
            const Instr *in = def[cur];
            if (in->op == Opcode::AddrGlobal) {
                return mod_.globalAt(in->args[0].index).section ==
                       Section::Rom;
            }
            if ((in->op == Opcode::Gep || in->op == Opcode::PtrAdd ||
                 in->op == Opcode::Mov || in->op == Opcode::Cast) &&
                !in->args.empty() && in->args[0].isVReg()) {
                cur = in->args[0].index;
                continue;
            }
            return false;
        }
        return false;
    }

    const Module &mod_;
    MProgram &prog_;
    const Function *func_ = nullptr;
    MFunc cur_;
    MBlock *out_ = nullptr;
    std::vector<uint32_t> regBase_;
    std::vector<uint32_t> localOff_;
    std::vector<MBlock> failBlocks_;
    uint32_t nextReg_ = 0;
    uint32_t irqSave_ = ~0u;
    bool cfi_ = false;
};

} // namespace

MProgram
compileToTarget(Module &m, const TargetInfo &target,
                const BackendOptions &opts)
{
    runGccStyleOpts(m, opts.gcc);
    // Linker GC: functions unreachable from the entry points go away
    // even without cXprop (GCC/ld can do this much).
    opt::removeDeadFunctions(m);

    MProgram prog;
    prog.target = target;

    // FLID -> trap-kind table, and whether the module carries CFI
    // instrumentation (the CFI pass stamps every return site, so a
    // cfi-ret entry is present iff CFI ran — even with no indirect
    // calls). The flid table is never pruned, so this survives DCE.
    bool hasCfi = false;
    prog.flidKinds.assign(m.flidTable().size() + 1, kTrapKindMemory);
    for (const auto &e : m.flidTable()) {
        if (e.flid >= prog.flidKinds.size())
            prog.flidKinds.resize(e.flid + 1, kTrapKindMemory);
        if (e.checkKind == cfi::kForwardKind) {
            prog.flidKinds[e.flid] = kTrapKindCfiForward;
            hasCfi = true;
        } else if (e.checkKind == cfi::kReturnKind) {
            prog.flidKinds[e.flid] = kTrapKindCfiReturn;
            hasCfi = true;
        }
    }

    // Map module function ids to program indices (live funcs only).
    std::map<uint32_t, uint32_t> funcIndex;
    Selector sel(m, prog, hasCfi);
    for (const auto &f : m.funcs()) {
        if (f.dead)
            continue;
        funcIndex[f.id] = static_cast<uint32_t>(prog.funcs.size());
        prog.funcs.push_back(sel.select(f));
    }

    // Entry point and vector table.
    prog.vectorTable.assign(16, -1);
    prog.entry = 0;
    for (const auto &mf : prog.funcs) {
        if (mf.name == "main")
            prog.entry = funcIndex[mf.id];
        if (mf.interruptVector >= 0 &&
            mf.interruptVector < static_cast<int>(prog.vectorTable.size()))
            prog.vectorTable[mf.interruptVector] =
                static_cast<int>(funcIndex[mf.id]);
    }

    // Data GC: only globals referenced by surviving code are laid out.
    std::vector<bool> usedGlobal(m.globals().size(), false);
    for (const auto &mf : prog.funcs) {
        for (const auto &bb : mf.blocks) {
            for (const auto &in : bb.instrs) {
                if (in.op == MOp::Lea)
                    usedGlobal[in.gid] = true;
            }
        }
    }
    uint32_t ram = prog.ramBase;
    uint32_t rom = prog.romDataBase;
    for (const auto &g : m.globals()) {
        if (g.dead || !usedGlobal[g.id])
            continue;
        MProgram::DataItem d;
        d.globalId = g.id;
        d.name = g.name;
        d.size = std::max(1u, m.typeSize(g.type));
        d.rom = g.section == Section::Rom;
        d.init = g.init;
        d.isCheckTag = g.attrs.isCheckTag;
        d.isErrorString = g.attrs.isErrorString;
        uint32_t &cursor = d.rom ? rom : ram;
        cursor = alignUp(cursor, m.typeAlign(g.type));
        d.addr = cursor;
        cursor += d.size;
        prog.data.push_back(std::move(d));
    }
    prog.ramDataEnd = ram;
    prog.romDataEnd = rom;
    return prog;
}

} // namespace stos::backend
