/**
 * @file
 * Machine-level program representation. A register-based ISA with
 * width-annotated operations; the target's cost model converts each
 * instruction into bytes (code size) and cycles (simulation time).
 * The simulator executes this representation directly.
 */
#ifndef STOS_BACKEND_MINSTR_H
#define STOS_BACKEND_MINSTR_H

#include <cstdint>
#include <string>
#include <vector>

#include "backend/target.h"

namespace stos::backend {

enum class MOp : uint8_t {
    Ldi,    ///< rd = imm
    Mov,    ///< rd = ra
    Add, Sub, Mul, DivU, DivS, RemU, RemS,
    And, Or, Xor, Shl, ShrU, ShrS,
    AddI,   ///< rd = ra + imm
    AndI,   ///< rd = ra & imm
    Neg, Not, BNot,
    Sext,   ///< rd = sign-extend ra from imm bits to w bits
    SetC,   ///< rd = (ra <cond> rb) ? 1 : 0
    CmpBr,  ///< if (ra <cond> rb) goto target
    Jmp,
    Ld,     ///< rd = mem[ra + imm] (width w)
    St,     ///< mem[ra + imm] = rb
    Lea,    ///< rd = address of global `gid` + imm
    Leal,   ///< rd = frame pointer + imm
    Call,   ///< call function `fn`
    CallR,  ///< call through register ra (fnptr id)
    SetArg, ///< outgoing argument slot imm = ra
    GetRet, ///< rd = callee return value
    SetRet, ///< return value = ra
    Ret,
    Reti,
    Enter,  ///< prologue: allocate imm frame bytes
    Leave,  ///< epilogue
    Sei, Cli,
    GetIf,  ///< rd = interrupt-enable flag
    SetIf,  ///< flag = ra
    In,     ///< rd = io[port]
    Out,    ///< io[port] = ra
    Sleep,
    Nop,
    /**
     * CFI shadow stack: push the current function's id onto the
     * shadow region. Emitted immediately before every Call/CallR when
     * the program carries CFI instrumentation.
     */
    SSPush,
    /**
     * CFI shadow stack: compare the shadow top against the caller
     * frame's function id; on mismatch branch to `target` (the
     * return-site fail stub). The pop itself is implicit in Ret (the
     * epilogue unwinds the shadow region with the hardware stack).
     */
    SSChk,
    /**
     * Simulator-internal sentinel: falling off the end of a function
     * halts the machine. Never emitted by the backend; appended by
     * sim::DecodedProgram when it flattens a function's blocks so the
     * predecoded core needs no per-instruction bounds check. Costs
     * zero bytes and zero cycles.
     */
    Halt,
    /**
     * Simulator-internal superinstructions. Never emitted by the
     * backend: sim::DecodedProgram's fusion pass rewrites hot
     * two-instruction sequences into these at decode time, in the
     * separate direct-threaded stream only (the plain predecoded
     * stream keeps the original opcodes). Each fused opcode performs
     * the two original instructions back to back with the original
     * per-instruction cycle accounting, so the two streams stay
     * byte-identical on every observable counter.
     */
    FCmpBrI,   ///< Ldi rd, imm; CmpBr ra <cond> rd -> target
    FMov2,     ///< Mov rd, ra; Mov rb, aux (second pair in aux)
    FLd2,      ///< Ld rd, [ra+imm]; Ld rb, [ra+aux]
    FSt2,      ///< St [ra+imm], rb; St [ra+aux], rd
    FLea2,     ///< Lea rd, <imm>; Lea rb, <aux> (resolved addresses)
    FLeal2,    ///< Leal rd, fp+imm; Leal rb, fp+aux
    FSetArg2,  ///< SetArg imm, ra; SetArg aux, rb
    FLdiArg,   ///< Ldi rd, imm; SetArg aux, rd
    FSetCI,    ///< Ldi rd, imm; SetC rb = (ra <cond> rd)
    FLdiMov,   ///< Ldi rd, imm; Mov rb, rd
    FLdiAlu,   ///< Ldi rd, imm; <op in aux> rb = ra OP rd
    FAluMov,   ///< <op in aux&0xFF> rd = ra OP rb; Mov (aux>>8), rd
    FMovJmp,   ///< Mov rd, ra; Jmp target (aux; never a wedge)
};

/** Dense opcode count (dispatch-table size for the threaded core). */
inline constexpr size_t kNumMOps =
    static_cast<size_t>(MOp::FMovJmp) + 1;

enum class MCond : uint8_t {
    Eq, Ne, LtU, LtS, LeU, LeS, GtU, GtS, GeU, GeS,
};

struct MInstr {
    MOp op = MOp::Nop;
    uint8_t w = 16;        ///< operation width in bits (8/16/32)
    MCond cond = MCond::Eq;
    uint32_t rd = 0, ra = 0, rb = 0;
    int64_t imm = 0;
    uint32_t target = 0;   ///< block index for branches
    uint32_t fn = 0;       ///< callee for Call
    uint32_t gid = 0;      ///< global for Lea
    uint32_t port = 0;     ///< io address for In/Out
    bool romData = false;  ///< Ld from flash-resident data
    bool isCheck = false;  ///< lowered from a dynamic safety check
    uint32_t flid = 0;     ///< failure id carried to the stub
};

struct MBlock {
    std::vector<MInstr> instrs;
};

struct MFunc {
    uint32_t id = 0;
    std::string name;
    std::vector<MBlock> blocks;
    uint32_t numRegs = 0;
    uint32_t frameBytes = 0;
    int interruptVector = -1;
    bool isTask = false;
};

/** One linked firmware image plus its layout metadata. */
struct MProgram {
    TargetInfo target;
    std::vector<MFunc> funcs;          ///< live functions only
    uint32_t entry = 0;                ///< index into funcs
    std::vector<int> vectorTable;      ///< vector -> funcs index (-1 none)

    /** Data layout (RAM base 0x0100, ROM window above). */
    struct DataItem {
        uint32_t globalId;             ///< id in the source module
        std::string name;
        uint32_t addr = 0;
        uint32_t size = 0;
        bool rom = false;
        std::vector<uint8_t> init;
        bool isCheckTag = false;
        bool isErrorString = false;
    };
    std::vector<DataItem> data;

    uint32_t ramBase = 0x0100;
    uint32_t ramDataEnd = 0x0100;
    uint32_t romDataBase = 0x8000;
    uint32_t romDataEnd = 0x8000;

    /** Find layout info for a module global id; null if dropped. */
    const DataItem *findData(uint32_t globalId) const;

    //--- size accounting -------------------------------------------
    uint32_t instrBytes(const MInstr &in) const;
    uint32_t instrCycles(const MInstr &in) const;
    uint32_t funcBytes(const MFunc &f) const;
    uint32_t codeBytes() const;     ///< all code incl. vectors/startup
    uint32_t ramDataBytes() const;  ///< static data in RAM
    uint32_t romDataBytes() const;  ///< flash-resident data
    uint32_t flashBytes() const { return codeBytes() + romDataBytes(); }

    /**
     * FLID -> trap-kind lookup (index = flid; 0 = memory-safety,
     * 1 = cfi-fnptr, 2 = cfi-ret). Lets the simulator stamp trap-log
     * entries with a distinguishable CFI trap code.
     */
    std::vector<uint8_t> flidKinds;

    /** Surviving unique check-tag strings (Figure 2 methodology). */
    uint32_t survivingCheckTags() const;
    /** Surviving dynamic-check branch instructions. */
    uint32_t survivingCheckBranches() const;
};

/** Trap-kind codes stored in MProgram::flidKinds. */
enum : uint8_t {
    kTrapKindMemory = 0,
    kTrapKindCfiForward = 1,
    kTrapKindCfiReturn = 2,
};

} // namespace stos::backend

#endif
