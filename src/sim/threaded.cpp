/**
 * @file
 * The direct-threaded interpreter core (ExecMode::Threaded).
 *
 * Executes DFunc::fused — the superinstruction stream the decode-time
 * fusion pass builds (sim/decoded.cpp) — with computed-goto dispatch:
 * every handler ends by jumping straight to the next handler through
 * a label table, so the branch predictor sees one indirect branch per
 * opcode site instead of a single shared dispatch branch. On
 * non-GNU-compatible compilers, or when STOS_THREADED_SWITCH is
 * defined, the same handler bodies compile as a portable
 * switch-in-a-loop instead.
 *
 * Equivalence contract (held by tests/test_sim_equivalence.cpp and
 * the differential fuzzer): this core is byte-identical to the legacy
 * and predecoded cores on every observable counter — cycles,
 * instructions, faults, CFI traps, the trap log, and the UART log.
 * The mechanisms:
 *
 *  - The fault/recovery preamble is textually identical to
 *    runPredecoded, so faults land at the same boundaries.
 *  - A superinstruction executes its two sub-instructions with the
 *    original per-instruction accounting, and re-checks the event
 *    horizon between them. `ip` is incremented before each sub-op
 *    executes, so a mid-pair stop leaves `ip` on the pair's second
 *    original instruction — kept in place by the fusion pass exactly
 *    for this — and the outer loop resumes unfused.
 *  - When interrupts are already deliverable at loop entry (an
 *    unhandled vector was popped with more queued), the local horizon
 *    `hz` is forced to 0 so exactly one original instruction runs per
 *    dispatch opportunity, matching the other cores.
 *  - Every first sub-instruction of a fused pair is pure (registers,
 *    memory, argBuf only), so between sub-ops only the horizon can
 *    have moved; likewise pure handlers re-check only the horizon,
 *    while handlers that can halt/wedge/sleep/reboot or touch the
 *    interrupt flag run the full exit check runPredecoded performs
 *    after every instruction.
 *
 * Adaptive horizons: the predecoded core conservatively re-aims its
 * event horizon (two scheduling consultations) after every In/Out.
 * Here re-aiming is gated on DeviceHub::scheduleVersion(), which
 * register reads never bump — so an awake busy-wait loop polling a
 * device register batches instructions up to the real horizon instead
 * of consulting the hub every iteration (asserted by the
 * adaptive-horizon test in tests/test_sim.cpp).
 */
#include "sim/machine.h"

#include <algorithm>

#include "support/arith.h"

// Computed-goto dispatch needs the GNU labels-as-values extension;
// anything else gets the portable switch fallback. Define
// STOS_THREADED_SWITCH to force the fallback (it is what the CI
// matrix uses to keep both dispatch paths honest).
#if defined(__GNUC__) && !defined(STOS_THREADED_SWITCH)
#define STOS_CGOTO 1
#else
#define STOS_CGOTO 0
#endif

namespace stos::sim {

using namespace stos::backend;

namespace {

/**
 * One fused ALU sub-instruction (FLdiAlu / FAluMov). Bodies replicate
 * the unfused handlers exactly; the fusion pass admits only the
 * opcodes below (div/rem stay unfused for their total-arithmetic
 * special cases).
 */
inline uint64_t
aluEval(MOp op, uint64_t x, uint64_t y, uint8_t w)
{
    const uint64_t mask = widthMask(w);
    switch (op) {
      case MOp::Add:
        return (x + y) & mask;
      case MOp::Sub:
        return (x - y) & mask;
      case MOp::Mul:
        return (x * y) & mask;
      case MOp::And:
        return (x & y) & mask;
      case MOp::Or:
        return (x | y) & mask;
      case MOp::Xor:
        return (x ^ y) & mask;
      case MOp::Shl:
        return (x << (y & 63)) & mask;
      case MOp::ShrU:
        return ((x & mask) >> (y & 63)) & mask;
      case MOp::ShrS: {
        int64_t a = static_cast<int64_t>(x & mask);
        if (w < 64 && (static_cast<uint64_t>(a) >> (w - 1)))
            a |= ~static_cast<int64_t>(mask);
        return static_cast<uint64_t>(a >> (y & 63)) & mask;
      }
      default:
        return 0;  // unreachable: fusion admits only the above
    }
}

} // namespace

void
Machine::runThreaded(uint64_t target)
{
    while (cycles_ < target && !halted_) {
        // Fault/recovery preamble: textually identical to runLegacy
        // so faults land at the same instruction boundaries.
        if (down_) {
            // Rebooting: powered but not executing until downUntil_.
            if (downUntil_ > target) {
                downCycles_ += target - cycles_;
                cycles_ = target;
                return;
            }
            downCycles_ += downUntil_ - cycles_;
            cycles_ = downUntil_;
            down_ = false;
            boot();
            continue;
        }
        applyFaultsDue();
        if (down_)
            continue;  // a crash fault rebooted us
        if (wedged_) {
            if (recovery_ == RecoveryPolicy::RebootOnWedge) {
                startReboot();
                continue;
            }
            // Spinning awake in the failure stub — but a scheduled
            // crash can still power-cycle a wedged mote, so only
            // fast-forward to the next fault.
            uint64_t stop = std::min(target, nextFaultAt());
            wedgedCycles_ += stop - cycles_;
            cycles_ = stop;
            if (cycles_ >= target)
                return;
            continue;
        }
        if (sleeping_) {
            uint64_t next =
                std::min(dev_.nextEventAt(), nextFaultAt());
            if (next == UINT64_MAX || next > target) {
                sleepCycles_ += target - cycles_;
                cycles_ = target;
                return;
            }
            if (next > cycles_) {
                sleepCycles_ += next - cycles_;
                cycles_ = next;
            }
            if (dev_.nextEventAt() <= cycles_) {
                sleeping_ = false;  // the event below wakes the core
            } else {
                // Only a fault is due: injecting state does not wake
                // a sleeping CPU, so apply it and stay asleep.
                applyFaultsDue();
                continue;
            }
        }
        drainDeviceEvents();
        dispatchIrqs();
        if (frames_.empty()) {
            halted_ = true;
            return;
        }
        // Event horizon: no device event (or scheduled fault) can
        // fire before this cycle. `hz` is the local copy every
        // handler's exit check compares against; it is forced to 0
        // when interrupts are already deliverable so exactly one
        // instruction runs before the outer loop dispatches them
        // (the other cores break on their explicit irq check).
        uint64_t horizon =
            std::min({target, dev_.nextEventAt(), nextFaultAt()});
        uint64_t schedVer = dev_.scheduleVersion();
        uint64_t hz = (iflag_ && irqPending()) ? 0 : horizon;
        Frame *frp = &frames_.back();
        const DInstr *code = frp->df->fused.data();
        uint64_t *regs = frp->regs.data();
        const DInstr *in = nullptr;
        // VM state lives in locals across the dispatch loop: handler
        // stores through regs/mem_ could alias the Machine members in
        // the compiler's view, which would force a spill-and-reload
        // of ip / cycle count / instruction count around every
        // handler. SYNC() writes the architectural state back
        // whenever control leaves the loop or reaches code that
        // reads the members (recordTrap, the outer scheduler).
        size_t ip = frp->ip;
        uint64_t cyc = cycles_;
        uint64_t nexec = instrs_;
        auto refreshFrame = [&] {
            frp = &frames_.back();
            code = frp->df->fused.data();
            regs = frp->regs.data();
            ip = frp->ip;
        };
        // Version-gated horizon re-aim after I/O: register reads
        // never bump the schedule version, so polling loops skip the
        // hub consultations entirely.
        auto reaim = [&] {
            if (dev_.scheduleVersion() != schedVer) {
                schedVer = dev_.scheduleVersion();
                horizon = std::min(
                    {target, dev_.nextEventAt(), nextFaultAt()});
                hz = (iflag_ && irqPending()) ? 0 : horizon;
            }
        };

// Per-instruction accounting, identical to the other cores: ip is
// bumped before the handler body runs (so control-flow handlers can
// overwrite it and mid-pair stops resume correctly).
#define ACCT1()                                                        \
    do {                                                               \
        ++ip;                                                          \
        ++nexec;                                                       \
        cyc += in->cycles;                                             \
    } while (0)
// Second sub-instruction of a fused pair (cycles2 = its original
// cost). Control flow is handled by the caller.
#define ACCT2()                                                        \
    do {                                                               \
        ++ip;                                                          \
        ++nexec;                                                       \
        cyc += in->cycles2;                                            \
    } while (0)
// Write the in-register VM state back to the architectural members.
#define SYNC()                                                         \
    do {                                                               \
        frp->ip = ip;                                                  \
        cycles_ = cyc;                                                 \
        instrs_ = nexec;                                               \
    } while (0)
// Exit checks. CHEAP is for handlers that can only advance time;
// FULL mirrors runPredecoded's complete per-instruction epilogue.
#define EXIT_CHEAP()                                                   \
    do {                                                               \
        if (cyc >= hz)                                                 \
            goto out;                                                  \
    } while (0)
#define EXIT_FULL()                                                    \
    do {                                                               \
        if (halted_ || wedged_ || sleeping_ || down_)                  \
            goto out;                                                  \
        if (iflag_ && irqPending())                                    \
            goto out;                                                  \
        if (cyc >= hz)                                                 \
            goto out;                                                  \
    } while (0)

#if STOS_CGOTO
#define OP(name) L_##name:
#define NEXT()                                                         \
    do {                                                               \
        in = &code[ip];                                                \
        goto *table[static_cast<size_t>(in->op)];                      \
    } while (0)
        static const void *const table[kNumMOps] = {
            &&L_Ldi,     &&L_Mov,     &&L_Add,     &&L_Sub,
            &&L_Mul,     &&L_DivU,    &&L_DivS,    &&L_RemU,
            &&L_RemS,    &&L_And,     &&L_Or,      &&L_Xor,
            &&L_Shl,     &&L_ShrU,    &&L_ShrS,    &&L_AddI,
            &&L_AndI,    &&L_Neg,     &&L_Not,     &&L_BNot,
            &&L_Sext,    &&L_SetC,    &&L_CmpBr,   &&L_Jmp,
            &&L_Ld,      &&L_St,      &&L_Lea,     &&L_Leal,
            &&L_Call,    &&L_CallR,   &&L_SetArg,  &&L_GetRet,
            &&L_SetRet,  &&L_Ret,     &&L_Reti,    &&L_Enter,
            &&L_Leave,   &&L_Sei,     &&L_Cli,     &&L_GetIf,
            &&L_SetIf,   &&L_In,      &&L_Out,     &&L_Sleep,
            &&L_Nop,     &&L_SSPush,  &&L_SSChk,   &&L_Halt,
            &&L_FCmpBrI, &&L_FMov2,   &&L_FLd2,    &&L_FSt2,
            &&L_FLea2,   &&L_FLeal2,  &&L_FSetArg2, &&L_FLdiArg,
            &&L_FSetCI,  &&L_FLdiMov, &&L_FLdiAlu, &&L_FAluMov,
            &&L_FMovJmp,
        };
        static_assert(kNumMOps == 61,
                      "dispatch table must cover every opcode");
        NEXT();
#else
#define OP(name) case MOp::name:
#define NEXT() continue
        for (;;) {
            in = &code[ip];
            switch (in->op) {
#endif

        OP(Ldi)
        {
            ACCT1();
            regs[in->rd] = static_cast<uint64_t>(frp->df->imm(*in)) &
                           widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Mov)
        {
            ACCT1();
            regs[in->rd] = regs[in->ra] & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Add)
        {
            ACCT1();
            regs[in->rd] =
                (regs[in->ra] + regs[in->rb]) & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Sub)
        {
            ACCT1();
            regs[in->rd] =
                (regs[in->ra] - regs[in->rb]) & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Mul)
        {
            ACCT1();
            regs[in->rd] =
                (regs[in->ra] * regs[in->rb]) & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(DivU)
        {
            ACCT1();
            const uint64_t mask = widthMask(in->w);
            regs[in->rd] = arith::udiv(regs[in->ra] & mask,
                                       regs[in->rb] & mask) &
                           mask;
            EXIT_CHEAP();
            NEXT();
        }
        OP(DivS)
        {
            ACCT1();
            const uint64_t mask = widthMask(in->w);
            int64_t a = static_cast<int64_t>(regs[in->ra] & mask);
            int64_t b = static_cast<int64_t>(regs[in->rb] & mask);
            if (in->w < 64) {
                if (static_cast<uint64_t>(a) >> (in->w - 1))
                    a |= ~static_cast<int64_t>(mask);
                if (static_cast<uint64_t>(b) >> (in->w - 1))
                    b |= ~static_cast<int64_t>(mask);
            }
            regs[in->rd] =
                static_cast<uint64_t>(arith::sdiv(a, b)) & mask;
            EXIT_CHEAP();
            NEXT();
        }
        OP(RemU)
        {
            ACCT1();
            const uint64_t mask = widthMask(in->w);
            regs[in->rd] = arith::urem(regs[in->ra] & mask,
                                       regs[in->rb] & mask) &
                           mask;
            EXIT_CHEAP();
            NEXT();
        }
        OP(RemS)
        {
            ACCT1();
            const uint64_t mask = widthMask(in->w);
            int64_t a = static_cast<int64_t>(regs[in->ra] & mask);
            int64_t b = static_cast<int64_t>(regs[in->rb] & mask);
            if (in->w < 64) {
                if (static_cast<uint64_t>(a) >> (in->w - 1))
                    a |= ~static_cast<int64_t>(mask);
                if (static_cast<uint64_t>(b) >> (in->w - 1))
                    b |= ~static_cast<int64_t>(mask);
            }
            regs[in->rd] =
                static_cast<uint64_t>(arith::srem(a, b)) & mask;
            EXIT_CHEAP();
            NEXT();
        }
        OP(And)
        {
            ACCT1();
            regs[in->rd] =
                (regs[in->ra] & regs[in->rb]) & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Or)
        {
            ACCT1();
            regs[in->rd] =
                (regs[in->ra] | regs[in->rb]) & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Xor)
        {
            ACCT1();
            regs[in->rd] =
                (regs[in->ra] ^ regs[in->rb]) & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Shl)
        {
            ACCT1();
            regs[in->rd] = (regs[in->ra] << (regs[in->rb] & 63)) &
                           widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(ShrU)
        {
            ACCT1();
            const uint64_t mask = widthMask(in->w);
            regs[in->rd] =
                ((regs[in->ra] & mask) >> (regs[in->rb] & 63)) & mask;
            EXIT_CHEAP();
            NEXT();
        }
        OP(ShrS)
        {
            ACCT1();
            const uint64_t mask = widthMask(in->w);
            int64_t a = static_cast<int64_t>(regs[in->ra] & mask);
            if (in->w < 64 &&
                (static_cast<uint64_t>(a) >> (in->w - 1)))
                a |= ~static_cast<int64_t>(mask);
            regs[in->rd] =
                static_cast<uint64_t>(a >> (regs[in->rb] & 63)) & mask;
            EXIT_CHEAP();
            NEXT();
        }
        OP(AddI)
        {
            ACCT1();
            regs[in->rd] =
                (regs[in->ra] +
                 static_cast<uint64_t>(frp->df->imm(*in))) &
                widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(AndI)
        {
            ACCT1();
            regs[in->rd] =
                (regs[in->ra] &
                 static_cast<uint64_t>(frp->df->imm(*in))) &
                widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Neg)
        {
            ACCT1();
            regs[in->rd] = (0 - regs[in->ra]) & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Not)
        {
            ACCT1();
            regs[in->rd] =
                (regs[in->ra] & widthMask(in->w)) == 0 ? 1 : 0;
            EXIT_CHEAP();
            NEXT();
        }
        OP(BNot)
        {
            ACCT1();
            regs[in->rd] = ~regs[in->ra] & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Sext)
        {
            ACCT1();
            uint8_t from = static_cast<uint8_t>(in->imm);
            uint64_t fmask = widthMask(from);
            uint64_t v = regs[in->ra] & fmask;
            if (from < 64 && (v >> (from - 1)))
                v |= ~fmask;
            regs[in->rd] = v & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(SetC)
        {
            ACCT1();
            regs[in->rd] = evalCond(in->cond, regs[in->ra],
                                    regs[in->rb], in->w)
                               ? 1
                               : 0;
            EXIT_CHEAP();
            NEXT();
        }
        OP(CmpBr)
        {
            ACCT1();
            if (evalCond(in->cond, regs[in->ra], regs[in->rb], in->w))
                ip = in->target();
            EXIT_CHEAP();
            NEXT();
        }
        OP(Jmp)
        {
            ACCT1();
            if (in->wedge()) {
                wedged_ = true;
                goto out;
            }
            ip = in->target();
            EXIT_CHEAP();
            NEXT();
        }
        OP(Ld)
        {
            ACCT1();
            regs[in->rd] =
                loadMem(static_cast<uint32_t>(
                            (regs[in->ra] +
                             static_cast<uint64_t>(frp->df->imm(*in))) &
                            0xFFFF),
                        in->w) &
                widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(St)
        {
            ACCT1();
            storeMem(static_cast<uint32_t>(
                         (regs[in->ra] +
                          static_cast<uint64_t>(frp->df->imm(*in))) &
                         0xFFFF),
                     regs[in->rb], in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Lea)
        {
            ACCT1();
            // Resolved to an absolute address at decode time.
            regs[in->rd] =
                static_cast<uint64_t>(static_cast<uint32_t>(in->imm)) &
                widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Leal)
        {
            ACCT1();
            regs[in->rd] =
                ((frp->fp + in->imm) & 0xFFFF) & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Call)
        {
            ACCT1();
            const int32_t callIdx = in->callIdx();
            if (callIdx < 0) {
                halted_ = true;
                goto out;
            }
            if (in->callsFail()) {
                SYNC();  // recordTrap stamps the architectural cycle
                recordTrap(argBuf_.empty()
                               ? 0
                               : static_cast<uint32_t>(argBuf_[0]),
                           frp->funcIdx);
                if (recovery_ == RecoveryPolicy::RebootOnTrap) {
                    // startReboot clears frames_: the cached
                    // frp/code/regs are dead — leave immediately
                    // (state was synced above).
                    startReboot();
                    goto out_dead;
                }
            }
            retBuf_.clear();
            frp->ip = ip;  // resume point for the matching Ret
            enterFunction(static_cast<uint32_t>(callIdx), false);
            refreshFrame();
            EXIT_FULL();
            NEXT();
        }
        OP(CallR)
        {
            ACCT1();
            uint64_t id = regs[in->ra];
            // Mirror the legacy core exactly: the function id is
            // truncated to 32 bits before resolution.
            int32_t idx = id == 0
                              ? -1
                              : decoded_->funcIndexForId(
                                    static_cast<uint32_t>(id - 1));
            if (idx < 0) {
                wedged_ = true;  // wild jump; model as a crash
                goto out;
            }
            retBuf_.clear();
            frp->ip = ip;  // resume point for the matching Ret
            enterFunction(static_cast<uint32_t>(idx), false);
            refreshFrame();
            EXIT_FULL();
            NEXT();
        }
        OP(SetArg)
        {
            ACCT1();
            size_t slot = static_cast<size_t>(in->imm);
            if (argBuf_.size() <= slot)
                argBuf_.resize(slot + 1, 0);
            argBuf_[slot] = regs[in->ra] & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(GetRet)
        {
            ACCT1();
            size_t slot = static_cast<size_t>(in->imm);
            regs[in->rd] =
                (slot < retBuf_.size() ? retBuf_[slot] : 0) &
                widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(SetRet)
        {
            ACCT1();
            size_t slot = static_cast<size_t>(in->imm);
            if (retBuf_.size() <= slot)
                retBuf_.resize(slot + 1, 0);
            retBuf_[slot] = regs[in->ra] & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Ret)
        OP(Reti)
        {
            ACCT1();
            bool fromIrq = frp->fromIrq;
            // Implicit shadow pop — mirrors the legacy core.
            if (!fromIrq && !shadow_.empty())
                shadow_.pop_back();
            popFrame();
            if (in->op == MOp::Reti || fromIrq)
                iflag_ = true;
            if (frames_.empty()) {
                halted_ = true;
                // The frame is gone; persist only the counters.
                cycles_ = cyc;
                instrs_ = nexec;
                goto out_dead;
            }
            refreshFrame();
            EXIT_FULL();
            NEXT();
        }
        OP(Enter)
        {
            ACCT1();
            uint32_t size = static_cast<uint32_t>(in->imm);
            if (sp_ < size + 0x200) {
                halted_ = true;  // stack overflow
                goto out;
            }
            sp_ -= size;
            frp->fp = sp_;
            for (uint32_t i = 0; i < size; ++i)
                mem_[frp->fp + i] = 0;
            EXIT_CHEAP();
            NEXT();
        }
        OP(Leave)
        {
            ACCT1();
            sp_ += static_cast<uint32_t>(in->imm);
            EXIT_CHEAP();
            NEXT();
        }
        OP(Sei)
        {
            ACCT1();
            iflag_ = true;
            EXIT_FULL();
            NEXT();
        }
        OP(Cli)
        {
            ACCT1();
            iflag_ = false;
            EXIT_CHEAP();
            NEXT();
        }
        OP(GetIf)
        {
            ACCT1();
            regs[in->rd] = iflag_ ? 1 : 0;
            EXIT_CHEAP();
            NEXT();
        }
        OP(SetIf)
        {
            ACCT1();
            iflag_ = (regs[in->ra] & 1) != 0;
            EXIT_FULL();
            NEXT();
        }
        OP(In)
        {
            ACCT1();
            regs[in->rd] =
                dev_.ioRead(in->port(), cyc) & widthMask(in->w);
            reaim();
            EXIT_CHEAP();
            NEXT();
        }
        OP(Out)
        {
            ACCT1();
            dev_.ioWrite(in->port(),
                         static_cast<uint32_t>(regs[in->ra] &
                                               widthMask(in->w)),
                         cyc);
            reaim();
            EXIT_CHEAP();
            NEXT();
        }
        OP(Sleep)
        {
            ACCT1();
            sleeping_ = true;
            goto out;
        }
        OP(Nop)
        {
            ACCT1();
            EXIT_CHEAP();
            NEXT();
        }
        OP(SSPush)
        {
            ACCT1();
            shadow_.push_back(frp->funcIdx);
            EXIT_CHEAP();
            NEXT();
        }
        OP(SSChk)
        {
            ACCT1();
            // Shadow-stack return check — mirrors the legacy core
            // (target is a flat instruction offset here).
            if (!frp->fromIrq && frames_.size() >= 2 &&
                !shadow_.empty() &&
                shadow_.back() != frames_[frames_.size() - 2].funcIdx)
                ip = in->target();
            EXIT_CHEAP();
            NEXT();
        }
        OP(Halt)
        {
            // Handled before accounting, like the other cores.
            halted_ = true;
            goto out;
        }

        //--- superinstructions -----------------------------------
        // ip advances before each sub-op, so a mid-pair horizon stop
        // leaves ip on the pair's second original instruction.

        OP(FCmpBrI)
        {
            // Ldi rd, imm ; CmpBr ra <cond> rd -> target
            ACCT1();
            regs[in->rd] = static_cast<uint64_t>(frp->df->imm(*in)) &
                           widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            if (evalCond(in->cond, regs[in->ra], regs[in->rd],
                         in->w))
                ip = in->target();
            EXIT_CHEAP();
            NEXT();
        }
        OP(FMov2)
        {
            // Mov rd, ra ; Mov rb, aux
            ACCT1();
            regs[in->rd] = regs[in->ra] & widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            regs[in->rb] = regs[in->aux] & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(FLd2)
        {
            // Ld rd, [ra+imm] ; Ld rb, [ra+aux] — the base register
            // is re-read between the halves, so a first load that
            // clobbers it behaves exactly as the unfused pair.
            ACCT1();
            regs[in->rd] =
                loadMem(static_cast<uint32_t>(
                            (regs[in->ra] +
                             static_cast<uint64_t>(frp->df->imm(*in))) &
                            0xFFFF),
                        in->w2) &
                widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            regs[in->rb] =
                loadMem(static_cast<uint32_t>(
                            (regs[in->ra] +
                             static_cast<uint64_t>(
                                 frp->df->imm2(*in))) &
                            0xFFFF),
                        in->w) &
                widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(FSt2)
        {
            // St [ra+imm], rb ; St [ra+aux], rd
            ACCT1();
            storeMem(static_cast<uint32_t>(
                         (regs[in->ra] +
                          static_cast<uint64_t>(frp->df->imm(*in))) &
                         0xFFFF),
                     regs[in->rb], in->w2);
            EXIT_CHEAP();
            ACCT2();
            storeMem(static_cast<uint32_t>(
                         (regs[in->ra] +
                          static_cast<uint64_t>(frp->df->imm2(*in))) &
                         0xFFFF),
                     regs[in->rd], in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(FLea2)
        {
            // Lea rd, <imm> ; Lea rb, <aux> (resolved addresses)
            ACCT1();
            regs[in->rd] =
                static_cast<uint64_t>(static_cast<uint32_t>(in->imm)) &
                widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            regs[in->rb] =
                static_cast<uint64_t>(in->aux) & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(FLeal2)
        {
            // Leal rd, fp+imm ; Leal rb, fp+aux
            ACCT1();
            regs[in->rd] =
                ((frp->fp + in->imm) & 0xFFFF) & widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            regs[in->rb] =
                ((frp->fp + static_cast<int32_t>(in->aux)) & 0xFFFF) &
                widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(FSetArg2)
        {
            // SetArg imm, ra ; SetArg aux, rb
            ACCT1();
            {
                size_t slot = static_cast<size_t>(frp->df->imm(*in));
                if (argBuf_.size() <= slot)
                    argBuf_.resize(slot + 1, 0);
                argBuf_[slot] = regs[in->ra] & widthMask(in->w2);
            }
            EXIT_CHEAP();
            ACCT2();
            {
                size_t slot = static_cast<size_t>(in->aux);
                if (argBuf_.size() <= slot)
                    argBuf_.resize(slot + 1, 0);
                argBuf_[slot] = regs[in->rb] & widthMask(in->w);
            }
            EXIT_CHEAP();
            NEXT();
        }
        OP(FLdiArg)
        {
            // Ldi rd, imm ; SetArg aux, rd
            ACCT1();
            regs[in->rd] = static_cast<uint64_t>(frp->df->imm(*in)) &
                           widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            {
                size_t slot = static_cast<size_t>(in->aux);
                if (argBuf_.size() <= slot)
                    argBuf_.resize(slot + 1, 0);
                argBuf_[slot] = regs[in->rd] & widthMask(in->w);
            }
            EXIT_CHEAP();
            NEXT();
        }
        OP(FSetCI)
        {
            // Ldi rd, imm ; SetC rb = (ra <cond> rd)
            ACCT1();
            regs[in->rd] = static_cast<uint64_t>(frp->df->imm(*in)) &
                           widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            regs[in->rb] = evalCond(in->cond, regs[in->ra],
                                    regs[in->rd], in->w)
                               ? 1
                               : 0;
            EXIT_CHEAP();
            NEXT();
        }
        OP(FLdiMov)
        {
            // Ldi rd, imm ; Mov rb, rd
            ACCT1();
            regs[in->rd] = static_cast<uint64_t>(frp->df->imm(*in)) &
                           widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            regs[in->rb] = regs[in->rd] & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(FLdiAlu)
        {
            // Ldi rd, imm ; <aux-op> rb = ra OP rd
            ACCT1();
            regs[in->rd] = static_cast<uint64_t>(frp->df->imm(*in)) &
                           widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            regs[in->rb] = aluEval(static_cast<MOp>(in->aux),
                                   regs[in->ra], regs[in->rd], in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(FAluMov)
        {
            // <op in aux&0xFF> rd = ra OP rb ; Mov (aux>>8), rd
            ACCT1();
            regs[in->rd] = aluEval(static_cast<MOp>(in->aux & 0xFF),
                                   regs[in->ra], regs[in->rb],
                                   in->w2);
            EXIT_CHEAP();
            ACCT2();
            regs[in->aux >> 8] = regs[in->rd] & widthMask(in->w);
            EXIT_CHEAP();
            NEXT();
        }
        OP(FMovJmp)
        {
            // Mov rd, ra ; Jmp target (the fusion pass never admits
            // a wedge-marked Jmp)
            ACCT1();
            regs[in->rd] = regs[in->ra] & widthMask(in->w2);
            EXIT_CHEAP();
            ACCT2();
            ip = in->target();
            EXIT_CHEAP();
            NEXT();
        }

#if !STOS_CGOTO
            }  // switch
        }      // for
#endif

    out:
        SYNC();
    out_dead:;
#undef OP
#undef NEXT
#undef ACCT1
#undef ACCT2
#undef SYNC
#undef EXIT_CHEAP
#undef EXIT_FULL
    }
}

} // namespace stos::sim
