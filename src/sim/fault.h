/**
 * @file
 * Deterministic fault-injection vocabulary for the mote simulator:
 * seeded plans of RAM bit flips, register corruption, and spontaneous
 * crashes scheduled at cycle boundaries; per-link radio loss /
 * corruption / duplication decided by a pure hash of the delivery (so
 * serial, lockstep, and window-parallel schedulers draw identical
 * faults); and the per-mote recovery policy that turns a safety trap
 * from a terminal wedge into a reboot with a persistent trap log.
 *
 * Everything here is deterministic given (FaultOptions, node id,
 * simulated span): the same seed replays byte-identically on both
 * interpreter cores and every network scheduler, which is what lets
 * the equivalence gates cover faulted runs too.
 */
#ifndef STOS_SIM_FAULT_H
#define STOS_SIM_FAULT_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace stos::sim {

/** What the firmware does when a safety check fires (or it wedges). */
enum class RecoveryPolicy {
    Wedge,         ///< spin in the failure stub forever (the default)
    RebootOnTrap,  ///< reboot the instant a fail-stub call is observed
    RebootOnWedge, ///< let the stub run (messages print), reboot on wedge
};

const char *recoveryPolicyName(RecoveryPolicy p);
bool parseRecoveryPolicy(const std::string &s, RecoveryPolicy *out);

/** Cycles a reboot keeps the mote down (boot-loader latency). */
constexpr uint64_t kRebootLatencyCycles = 4096;
/** Bounded trap-log capacity; traps past this still count. */
constexpr size_t kMaxTrapLog = 8;

/** One recorded safety trap. `pc` is the trapping function's index —
 *  the only program-counter notion both interpreter cores share.
 *  `kind` distinguishes CFI traps from memory-safety traps (values
 *  from backend::MProgram::flidKinds: 0 memory, 1 cfi-fnptr,
 *  2 cfi-ret). */
struct TrapEntry {
    uint32_t flid = 0;
    uint64_t cycle = 0;
    uint32_t pc = 0;
    uint8_t kind = 0;

    bool
    operator==(const TrapEntry &o) const
    {
        return flid == o.flid && cycle == o.cycle && pc == o.pc &&
               kind == o.kind;
    }
};

enum class FaultKind : uint8_t {
    MemFlip,       ///< flip one bit of one RAM-global byte
    RegFlip,       ///< flip one low bit of a live register
    Crash,         ///< power glitch: unconditional reboot
    /**
     * Attack-shaped fault: overwrite a named RAM global (typically a
     * function-pointer cell) with an attacker-chosen value. Unlike
     * MemFlip this is a targeted write, modelling a corrupted-pointer
     * exploit rather than an SEU.
     */
    PtrOverwrite,
    /**
     * Attack-shaped fault: smash the return linkage of the current
     * call — the caller frame is redirected to the entry of the
     * function selected by `value`, as a stack-smash that rewrites
     * the stored return address would. No-op at call depth < 2.
     */
    RetSmash,
};

/** One scheduled state fault, applied at the first instruction
 *  boundary where the mote's cycle counter reaches `at`. */
struct FaultEvent {
    uint64_t at = 0;
    FaultKind kind = FaultKind::MemFlip;
    uint32_t addr = 0;  ///< abstract address / register selector
    uint8_t bit = 0;
    uint64_t value = 0;        ///< PtrOverwrite / RetSmash payload
    std::string targetGlobal;  ///< PtrOverwrite: global overwritten
};

/** A seeded fault campaign for one network run. */
struct FaultOptions {
    uint64_t seed = 1;
    /** Scheduled state faults on the mote under test (node 1). */
    uint32_t memFlips = 0;
    uint32_t regFlips = 0;
    uint32_t crashes = 0;
    /** Per-link radio fault rates in [0, 1]. */
    double radioLoss = 0.0;
    double radioCorrupt = 0.0;
    double radioDup = 0.0;
    RecoveryPolicy recovery = RecoveryPolicy::Wedge;
    /** Also schedule state faults on companion motes (node != 1). */
    bool faultCompanions = false;
    /** Attack-shaped faults (CFI attack suite). */
    uint32_t ptrOverwrites = 0;
    uint32_t retSmashes = 0;
    /** Payload for the attack faults (fnptr id / frame target). */
    uint64_t attackValue = 0;
    /** PtrOverwrite target global (empty = first fnptr-looking one
     *  is left alone and the event degrades to a no-op). */
    std::string attackGlobal;

    bool
    injectsState() const
    {
        return memFlips > 0 || regFlips > 0 || crashes > 0 ||
               ptrOverwrites > 0 || retSmashes > 0;
    }
    bool
    faultsRadio() const
    {
        return radioLoss > 0 || radioCorrupt > 0 || radioDup > 0;
    }
    bool
    anyFaults() const
    {
        return injectsState() || faultsRadio() ||
               recovery != RecoveryPolicy::Wedge;
    }
};

/**
 * Parse a fault spec of the form
 *   "mem=8,reg=4,crash=1,loss=0.1,corrupt=0.05,dup=0.02"
 * into `out` (seed and recovery are separate flags and untouched).
 */
bool parseFaultSpec(const std::string &spec, FaultOptions *out,
                    std::string *err = nullptr);

/**
 * Compile the per-mote schedule of state faults for a run spanning
 * [begin, end) cycles: a sorted event list, deterministic in
 * (options.seed, nodeId, begin, end).
 */
std::vector<FaultEvent> scheduleFaults(const FaultOptions &o,
                                       uint8_t nodeId, uint64_t begin,
                                       uint64_t end);

/** Per-delivery radio fault draw (pure function of its arguments). */
struct RadioFaultDecision {
    bool drop = false;
    bool corrupt = false;
    bool dup = false;
    uint32_t corruptByte = 0;  ///< modulo packet length
    uint8_t corruptBit = 0;
};

/**
 * Decide the radio faults for one (sender, receiver, delivery-time,
 * payload) link event. Independent of scheduler call order: serial
 * and parallel networks deliver the same (packet, at) pairs, so they
 * draw the same faults.
 */
RadioFaultDecision radioFaultsFor(const FaultOptions &o, uint8_t src,
                                  uint8_t dst, uint64_t at,
                                  const std::vector<uint8_t> &bytes);

/** Mix a per-cell label (the app name) into a campaign seed so each
 *  matrix cell replays its own deterministic plan. */
uint64_t mixSeed(uint64_t seed, const std::string &label);

/** Thrown by Network::run when a wall-clock watchdog expires. */
class SimAbort : public std::runtime_error {
  public:
    explicit SimAbort(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

} // namespace stos::sim

#endif
