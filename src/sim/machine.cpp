/**
 * @file
 * Mote simulator implementation.
 */
#include "sim/machine.h"

#include <algorithm>

#include "support/util.h"

namespace stos::sim {

using namespace stos::backend;

Machine::Machine(const MProgram &prog, uint8_t nodeId)
    : prog_(prog), dev_(nodeId)
{
    for (uint32_t i = 0; i < prog_.funcs.size(); ++i) {
        funcByModuleId_[prog_.funcs[i].id] = i;
        if (prog_.funcs[i].name == "__st_fail" ||
            prog_.funcs[i].name == "__st_fail_msg") {
            if (failFnIdx_ == ~0u || prog_.funcs[i].name == "__st_fail")
                failFnIdx_ = i;
        }
    }
    mem_.assign(0x10000, 0);
    for (const auto &d : prog_.data) {
        dataByName_[d.name] = &d;
        for (size_t i = 0; i < d.init.size() && i < d.size; ++i)
            mem_[d.addr + i] = d.init[i];
    }
    sp_ = prog_.romDataBase;  // stack below the ROM window
}

void
Machine::boot()
{
    frames_.clear();
    enterFunction(prog_.entry, false);
}

void
Machine::enterFunction(uint32_t funcIdx, bool fromIrq)
{
    const MFunc &f = prog_.funcs.at(funcIdx);
    Frame fr;
    fr.funcIdx = funcIdx;
    fr.block = 0;
    fr.ip = 0;
    fr.regs.assign(std::max<uint32_t>(f.numRegs, 1), 0);
    fr.fromIrq = fromIrq;
    // Incoming arguments land in the first registers (the selector
    // allocates parameter tuples first, in slot order).
    for (size_t i = 0; i < argBuf_.size() && i < fr.regs.size(); ++i)
        fr.regs[i] = argBuf_[i];
    argBuf_.clear();
    frames_.push_back(std::move(fr));
    if (frames_.size() > 64) {
        halted_ = true;  // runaway recursion
    }
}

uint64_t
Machine::maskFor(uint8_t w) const
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

uint64_t
Machine::loadMem(uint32_t addr, uint8_t w) const
{
    uint64_t v = 0;
    uint32_t n = w / 8;
    for (uint32_t i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(mem_[(addr + i) & 0xFFFF]) << (8 * i);
    return v;
}

void
Machine::storeMem(uint32_t addr, uint64_t v, uint8_t w)
{
    uint32_t n = w / 8;
    for (uint32_t i = 0; i < n; ++i)
        mem_[(addr + i) & 0xFFFF] = static_cast<uint8_t>(v >> (8 * i));
}

bool
Machine::evalCond(MCond c, uint64_t a, uint64_t b, uint8_t w) const
{
    uint64_t mask = maskFor(w);
    uint64_t ua = a & mask, ub = b & mask;
    auto sext = [&](uint64_t u) -> int64_t {
        if (w >= 64)
            return static_cast<int64_t>(u);
        if (u >> (w - 1))
            return static_cast<int64_t>(u | ~mask);
        return static_cast<int64_t>(u);
    };
    int64_t sa = sext(ua), sb = sext(ub);
    switch (c) {
      case MCond::Eq: return ua == ub;
      case MCond::Ne: return ua != ub;
      case MCond::LtU: return ua < ub;
      case MCond::LtS: return sa < sb;
      case MCond::LeU: return ua <= ub;
      case MCond::LeS: return sa <= sb;
      case MCond::GtU: return ua > ub;
      case MCond::GtS: return sa > sb;
      case MCond::GeU: return ua >= ub;
      case MCond::GeS: return sa >= sb;
    }
    return false;
}

void
Machine::dispatchIrqs()
{
    if (!iflag_ || pendingIrqs_.empty())
        return;
    int vec = pendingIrqs_.front();
    pendingIrqs_.erase(pendingIrqs_.begin());
    if (vec < 0 || vec >= static_cast<int>(prog_.vectorTable.size()) ||
        prog_.vectorTable[vec] < 0) {
        return;
    }
    iflag_ = false;
    cycles_ += 8;  // hardware interrupt latency
    enterFunction(static_cast<uint32_t>(prog_.vectorTable[vec]), true);
}

uint64_t
Machine::readGlobal(const std::string &name, uint32_t size) const
{
    auto it = dataByName_.find(name);
    if (it == dataByName_.end())
        return 0;
    return loadMem(it->second->addr, static_cast<uint8_t>(size * 8));
}

bool
Machine::hasGlobal(const std::string &name) const
{
    return dataByName_.count(name) > 0;
}

void
Machine::runUntilCycle(uint64_t target)
{
    while (cycles_ < target && !halted_) {
        if (wedged_) {
            cycles_ = target;  // spinning awake in the failure stub
            return;
        }
        if (sleeping_) {
            uint64_t next = dev_.nextEventAt();
            if (next == UINT64_MAX || next > target) {
                sleepCycles_ += target - cycles_;
                cycles_ = target;
                return;
            }
            if (next > cycles_) {
                sleepCycles_ += next - cycles_;
                cycles_ = next;
            }
            sleeping_ = false;  // the event below wakes the core
        }
        // Device events and interrupts first.
        std::vector<int> irqs;
        dev_.advanceTo(cycles_, irqs);
        for (int v : irqs)
            pendingIrqs_.push_back(v);
        dispatchIrqs();
        if (frames_.empty()) {
            halted_ = true;
            return;
        }
        step();
    }
}

void
Machine::step()
{
    Frame &fr = frames_.back();
    const MFunc &f = prog_.funcs[fr.funcIdx];
    if (fr.block >= f.blocks.size()) {
        halted_ = true;
        return;
    }
    const MBlock &bb = f.blocks[fr.block];
    if (fr.ip >= bb.instrs.size()) {
        // Fall through to the next block.
        ++fr.block;
        fr.ip = 0;
        if (fr.block >= f.blocks.size())
            halted_ = true;
        return;
    }
    const MInstr &in = bb.instrs[fr.ip];
    ++fr.ip;
    ++instrs_;
    cycles_ += prog_.instrCycles(in);
    uint64_t mask = maskFor(in.w);
    auto reg = [&](uint32_t r) -> uint64_t {
        return r < fr.regs.size() ? fr.regs[r] : 0;
    };
    auto setReg = [&](uint32_t r, uint64_t v) {
        if (r >= fr.regs.size())
            fr.regs.resize(r + 1, 0);
        fr.regs[r] = v & mask;
    };

    switch (in.op) {
      case MOp::Ldi:
        setReg(in.rd, static_cast<uint64_t>(in.imm));
        break;
      case MOp::Mov:
        setReg(in.rd, reg(in.ra));
        break;
      case MOp::Add:
        setReg(in.rd, reg(in.ra) + reg(in.rb));
        break;
      case MOp::Sub:
        setReg(in.rd, reg(in.ra) - reg(in.rb));
        break;
      case MOp::Mul:
        setReg(in.rd, reg(in.ra) * reg(in.rb));
        break;
      case MOp::DivU: {
        uint64_t b = reg(in.rb) & mask;
        setReg(in.rd, b ? (reg(in.ra) & mask) / b : 0);
        break;
      }
      case MOp::DivS: {
        int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
        int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
        if (in.w < 64) {
            if (static_cast<uint64_t>(a) >> (in.w - 1))
                a |= ~static_cast<int64_t>(mask);
            if (static_cast<uint64_t>(b) >> (in.w - 1))
                b |= ~static_cast<int64_t>(mask);
        }
        setReg(in.rd, b ? static_cast<uint64_t>(a / b) : 0);
        break;
      }
      case MOp::RemU: {
        uint64_t b = reg(in.rb) & mask;
        setReg(in.rd, b ? (reg(in.ra) & mask) % b : 0);
        break;
      }
      case MOp::RemS: {
        int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
        int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
        if (in.w < 64) {
            if (static_cast<uint64_t>(a) >> (in.w - 1))
                a |= ~static_cast<int64_t>(mask);
            if (static_cast<uint64_t>(b) >> (in.w - 1))
                b |= ~static_cast<int64_t>(mask);
        }
        setReg(in.rd, b ? static_cast<uint64_t>(a % b) : 0);
        break;
      }
      case MOp::And:
        setReg(in.rd, reg(in.ra) & reg(in.rb));
        break;
      case MOp::Or:
        setReg(in.rd, reg(in.ra) | reg(in.rb));
        break;
      case MOp::Xor:
        setReg(in.rd, reg(in.ra) ^ reg(in.rb));
        break;
      case MOp::Shl:
        setReg(in.rd, reg(in.ra) << (reg(in.rb) & 63));
        break;
      case MOp::ShrU:
        setReg(in.rd, (reg(in.ra) & mask) >> (reg(in.rb) & 63));
        break;
      case MOp::ShrS: {
        int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
        if (in.w < 64 && (static_cast<uint64_t>(a) >> (in.w - 1)))
            a |= ~static_cast<int64_t>(mask);
        setReg(in.rd, static_cast<uint64_t>(a >> (reg(in.rb) & 63)));
        break;
      }
      case MOp::AddI:
        setReg(in.rd, reg(in.ra) + static_cast<uint64_t>(in.imm));
        break;
      case MOp::AndI:
        setReg(in.rd, reg(in.ra) & static_cast<uint64_t>(in.imm));
        break;
      case MOp::Neg:
        setReg(in.rd, 0 - reg(in.ra));
        break;
      case MOp::Not:
        setReg(in.rd, (reg(in.ra) & mask) == 0 ? 1 : 0);
        break;
      case MOp::BNot:
        setReg(in.rd, ~reg(in.ra));
        break;
      case MOp::Sext: {
        uint64_t v = reg(in.ra);
        uint8_t from = static_cast<uint8_t>(in.imm);
        uint64_t fmask = maskFor(from);
        v &= fmask;
        if (from < 64 && (v >> (from - 1)))
            v |= ~fmask;
        setReg(in.rd, v);
        break;
      }
      case MOp::SetC:
        setReg(in.rd,
               evalCond(in.cond, reg(in.ra), reg(in.rb), in.w) ? 1 : 0);
        break;
      case MOp::CmpBr:
        if (evalCond(in.cond, reg(in.ra), reg(in.rb), in.w)) {
            fr.block = in.target;
            fr.ip = 0;
        }
        break;
      case MOp::Jmp: {
        // A single-instruction block jumping to itself is a halt loop
        // (the failure handler's final state): spin awake forever.
        if (in.target == fr.block && bb.instrs.size() == 1) {
            wedged_ = true;
            return;
        }
        fr.block = in.target;
        fr.ip = 0;
        break;
      }
      case MOp::Ld:
        setReg(in.rd, loadMem(static_cast<uint32_t>(
                                  (reg(in.ra) + in.imm) & 0xFFFF),
                              in.w));
        break;
      case MOp::St:
        storeMem(
            static_cast<uint32_t>((reg(in.ra) + in.imm) & 0xFFFF),
            reg(in.rb), in.w);
        break;
      case MOp::Lea: {
        const MProgram::DataItem *d = prog_.findData(in.gid);
        setReg(in.rd, d ? (d->addr + in.imm) & 0xFFFF : 0);
        break;
      }
      case MOp::Leal:
        setReg(in.rd, (fr.fp + in.imm) & 0xFFFF);
        break;
      case MOp::Enter: {
        uint32_t size = static_cast<uint32_t>(in.imm);
        if (sp_ < size + 0x200) {
            halted_ = true;  // stack overflow
            return;
        }
        sp_ -= size;
        fr.fp = sp_;
        for (uint32_t i = 0; i < size; ++i)
            mem_[fr.fp + i] = 0;
        break;
      }
      case MOp::Leave:
        sp_ += static_cast<uint32_t>(in.imm);
        break;
      case MOp::SetArg: {
        size_t slot = static_cast<size_t>(in.imm);
        if (argBuf_.size() <= slot)
            argBuf_.resize(slot + 1, 0);
        argBuf_[slot] = reg(in.ra) & mask;
        break;
      }
      case MOp::GetRet: {
        size_t slot = static_cast<size_t>(in.imm);
        setReg(in.rd, slot < retBuf_.size() ? retBuf_[slot] : 0);
        break;
      }
      case MOp::SetRet: {
        size_t slot = static_cast<size_t>(in.imm);
        if (retBuf_.size() <= slot)
            retBuf_.resize(slot + 1, 0);
        retBuf_[slot] = reg(in.ra) & mask;
        break;
      }
      case MOp::Call: {
        auto it = funcByModuleId_.find(in.fn);
        if (it == funcByModuleId_.end()) {
            halted_ = true;
            return;
        }
        if (it->second == failFnIdx_ && !argBuf_.empty() &&
            failedFlid_ == 0) {
            failedFlid_ = static_cast<uint32_t>(argBuf_[0]);
        }
        retBuf_.clear();
        enterFunction(it->second, false);
        break;
      }
      case MOp::CallR: {
        uint64_t id = reg(in.ra);
        if (id == 0) {
            wedged_ = true;  // wild jump; model as a crash
            return;
        }
        auto it = funcByModuleId_.find(static_cast<uint32_t>(id - 1));
        if (it == funcByModuleId_.end()) {
            wedged_ = true;
            return;
        }
        retBuf_.clear();
        enterFunction(it->second, false);
        break;
      }
      case MOp::Ret:
      case MOp::Reti: {
        bool fromIrq = fr.fromIrq;
        frames_.pop_back();
        if (in.op == MOp::Reti || fromIrq)
            iflag_ = true;
        if (frames_.empty())
            halted_ = true;
        break;
      }
      case MOp::Sei:
        iflag_ = true;
        break;
      case MOp::Cli:
        iflag_ = false;
        break;
      case MOp::GetIf:
        setReg(in.rd, iflag_ ? 1 : 0);
        break;
      case MOp::SetIf:
        iflag_ = (reg(in.ra) & 1) != 0;
        break;
      case MOp::In:
        setReg(in.rd, dev_.ioRead(in.port, cycles_));
        break;
      case MOp::Out:
        dev_.ioWrite(in.port, static_cast<uint32_t>(reg(in.ra) & mask),
                     cycles_);
        break;
      case MOp::Sleep:
        // Low-power mode: time passes in runUntilCycle until the next
        // device event (or an incoming radio packet) wakes us.
        sleeping_ = true;
        break;
      case MOp::Nop:
        break;
    }
}

//---------------------------------------------------------------------
// Network
//---------------------------------------------------------------------

Machine &
Network::addMote(const MProgram &prog, uint8_t nodeId)
{
    motes_.push_back(std::make_unique<Machine>(prog, nodeId));
    Machine *self = motes_.back().get();
    size_t selfIdx = motes_.size() - 1;
    self->devices().onSend = [this, selfIdx](const Packet &p) {
        for (size_t i = 0; i < motes_.size(); ++i) {
            if (i == selfIdx)
                continue;
            motes_[i]->devices().deliver(
                p, motes_[selfIdx]->cycles() + kAirLatency);
        }
    };
    return *self;
}

void
Network::run(uint64_t cycles)
{
    if (!booted_) {
        for (auto &m : motes_)
            m->boot();
        booted_ = true;
    }
    uint64_t start = motes_.empty() ? 0 : motes_[0]->cycles();
    uint64_t end = start + cycles;
    for (uint64_t t = start; t < end; t += kQuantum) {
        // Clamp the final quantum so a request that is not a multiple
        // of kQuantum never runs past `end` (it would inflate every
        // duty-cycle measurement).
        uint64_t stepEnd = std::min(t + kQuantum, end);
        for (auto &m : motes_)
            m->runUntilCycle(stepEnd);
    }
}

} // namespace stos::sim
