/**
 * @file
 * Mote simulator implementation: the legacy reference interpreter
 * (kept verbatim as the equivalence baseline) and the predecoded
 * event-horizon core, plus the windowed multi-mote network.
 */
#include "sim/machine.h"

#include <algorithm>

#include "core/pool.h"
#include "support/arith.h"
#include "support/util.h"

namespace stos::sim {

using namespace stos::backend;

Machine::Machine(const MProgram &prog, uint8_t nodeId, ExecMode mode)
    : mode_(mode), prog_(prog), dev_(nodeId)
{
    if (mode_ != ExecMode::Legacy)
        decoded_ = std::make_shared<const DecodedProgram>(prog_);
    if (decoded_) {
        failFnIdx_ = decoded_->failFnIdx();
        vectors_ = decoded_->vectors();
        numVectors_ = decoded_->numVectors();
        mem_ = decoded_->memInit();
    } else {
        for (uint32_t i = 0; i < prog_.funcs.size(); ++i) {
            funcByModuleId_[prog_.funcs[i].id] = i;
            if (prog_.funcs[i].name == "__st_fail" ||
                prog_.funcs[i].name == "__st_fail_msg") {
                if (failFnIdx_ == ~0u ||
                    prog_.funcs[i].name == "__st_fail")
                    failFnIdx_ = i;
            }
        }
        vectors_ = prog_.vectorTable.data();
        numVectors_ = prog_.vectorTable.size();
        mem_.assign(0x10000, 0);
        for (const auto &d : prog_.data) {
            dataByName_[d.name] = &d;
            for (size_t i = 0; i < d.init.size() && i < d.size; ++i)
                mem_[d.addr + i] = d.init[i];
        }
    }
    sp_ = prog_.romDataBase;  // stack below the ROM window
    computeRamSpan();
}

Machine::Machine(std::shared_ptr<const DecodedProgram> prog,
                 uint8_t nodeId, ExecMode mode)
    : mode_(mode == ExecMode::Legacy ? ExecMode::Predecoded : mode),
      decoded_(std::move(prog)), prog_(decoded_->program()),
      dev_(nodeId)
{
    failFnIdx_ = decoded_->failFnIdx();
    vectors_ = decoded_->vectors();
    numVectors_ = decoded_->numVectors();
    mem_ = decoded_->memInit();
    sp_ = prog_.romDataBase;
    computeRamSpan();
}

void
Machine::computeRamSpan()
{
    // The RAM-globals span abstract fault addresses map into: flips
    // must land in mutable state, never the ROM data window.
    uint32_t lo = 0xFFFFFFFFu, hi = 0;
    for (const auto &d : prog_.data) {
        if (d.rom || d.addr >= prog_.romDataBase || d.size == 0)
            continue;
        lo = std::min(lo, d.addr);
        hi = std::max(hi, d.addr + d.size);
    }
    if (hi > lo) {
        dataLo_ = lo;
        dataHi_ = hi;
    }
}

void
Machine::boot()
{
    frames_.clear();
    shadow_.clear();
    enterFunction(prog_.entry, false);
}

void
Machine::setFaultEvents(std::vector<FaultEvent> events)
{
    faultEvents_ = std::move(events);
    std::stable_sort(faultEvents_.begin(), faultEvents_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    faultIdx_ = 0;
}

void
Machine::recordTrap(uint32_t flid, uint32_t pc)
{
    ++traps_;
    uint8_t kind = flid < prog_.flidKinds.size()
                       ? prog_.flidKinds[flid]
                       : static_cast<uint8_t>(kTrapKindMemory);
    if (kind != kTrapKindMemory)
        ++cfiTraps_;
    if (trapLog_.size() < kMaxTrapLog)
        trapLog_.push_back({flid, cycles_, pc, kind});
}

void
Machine::resetMemoryImage()
{
    if (decoded_) {
        mem_ = decoded_->memInit();
        return;
    }
    std::fill(mem_.begin(), mem_.end(), 0);
    for (const auto &d : prog_.data) {
        for (size_t i = 0; i < d.init.size() && i < d.size; ++i)
            mem_[d.addr + i] = d.init[i];
    }
}

void
Machine::startReboot()
{
    // A reboot is a power cycle: volatile state (RAM, registers,
    // stack, pending interrupts, device configuration) reverts to
    // power-on, while host-side observability — the reboot counter,
    // trap log, UART log, and every instrumentation counter —
    // persists across it.
    ++reboots_;
    down_ = true;
    downUntil_ = cycles_ + kRebootLatencyCycles;
    wedged_ = false;
    sleeping_ = false;
    iflag_ = true;
    frames_.clear();
    shadow_.clear();
    argBuf_.clear();
    retBuf_.clear();
    pendingIrqs_.clear();
    irqHead_ = 0;
    resetMemoryImage();
    sp_ = prog_.romDataBase;
    dev_.reset();
}

void
Machine::applyFault(const FaultEvent &e)
{
    switch (e.kind) {
      case FaultKind::MemFlip: {
        if (dataHi_ > dataLo_) {
            uint32_t addr = dataLo_ + e.addr % (dataHi_ - dataLo_);
            mem_[addr] ^= static_cast<uint8_t>(1u << (e.bit & 7));
        }
        break;
      }
      case FaultKind::RegFlip: {
        if (frames_.empty())
            break;
        Frame &fr = frames_.back();
        // Both cores agree only on the *declared* register-file size
        // (the predecoded file is operand-padded past it), so the
        // selector folds into that shared bound.
        uint32_t bound = decoded_
                             ? fr.df->argRegs
                             : static_cast<uint32_t>(fr.regs.size());
        if (bound == 0)
            break;
        uint32_t r = e.addr % bound;
        if (r < fr.regs.size())
            fr.regs[r] ^= 1ull << (e.bit & 15);
        break;
      }
      case FaultKind::Crash:
        // Power glitch: the mote reboots regardless of policy.
        ++crashes_;
        startReboot();
        break;
      case FaultKind::PtrOverwrite: {
        // Targeted attack write: clobber the named RAM global with the
        // payload value. Degrades to a no-op if the global is absent
        // or lives in ROM (flash is not attacker-writable here).
        const MProgram::DataItem *d =
            decoded_ ? decoded_->findDataByName(e.targetGlobal)
                     : nullptr;
        if (!decoded_) {
            auto it = dataByName_.find(e.targetGlobal);
            d = it == dataByName_.end() ? nullptr : it->second;
        }
        if (!d || d->rom || d->addr >= prog_.romDataBase ||
            d->size == 0)
            break;
        storeMem(d->addr, e.value,
                 static_cast<uint8_t>(std::min<uint32_t>(d->size, 8) *
                                      8));
        break;
      }
      case FaultKind::RetSmash: {
        // Stack smash: rewrite the caller frame's return linkage so
        // the current call "returns" into the entry of the function
        // selected by the payload. No-op at call depth < 2 (there is
        // no stored return linkage to smash).
        if (frames_.size() < 2 || prog_.funcs.empty())
            break;
        Frame &parent = frames_[frames_.size() - 2];
        uint32_t idx =
            static_cast<uint32_t>(e.value % prog_.funcs.size());
        parent.funcIdx = idx;
        parent.block = 0;
        parent.ip = 0;
        // fp and fromIrq survive the smash (the attacker rewrites the
        // return address, not the frame bookkeeping).
        if (decoded_) {
            parent.df = &decoded_->funcs().at(idx);
            parent.regs.assign(parent.df->numRegs, 0);
        } else {
            parent.regs.assign(
                std::max<uint32_t>(prog_.funcs[idx].numRegs, 1), 0);
        }
        break;
      }
    }
}

void
Machine::applyFaultsDue()
{
    while (faultIdx_ < faultEvents_.size() &&
           faultEvents_[faultIdx_].at <= cycles_) {
        applyFault(faultEvents_[faultIdx_++]);
        if (down_)
            break;  // remaining due events land right after reboot
    }
}

void
Machine::enterFunction(uint32_t funcIdx, bool fromIrq)
{
    // Reuse a recycled frame where possible: its regs vector keeps
    // its capacity, so steady-state call/return pairs never allocate.
    if (framePool_.empty()) {
        frames_.emplace_back();
    } else {
        frames_.push_back(std::move(framePool_.back()));
        framePool_.pop_back();
    }
    Frame &fr = frames_.back();
    fr.funcIdx = funcIdx;
    fr.block = 0;
    fr.ip = 0;
    fr.fp = 0;
    fr.df = nullptr;
    // How many incoming arguments may land in registers: the legacy
    // core bounds this by its register-file size, so the decoded core
    // must use the *declared* size, not the operand-padded one.
    size_t argBound;
    if (decoded_) {
        fr.df = &decoded_->funcs().at(funcIdx);
        fr.regs.assign(fr.df->numRegs, 0);
        argBound = fr.df->argRegs;
    } else {
        const MFunc &f = prog_.funcs.at(funcIdx);
        fr.regs.assign(std::max<uint32_t>(f.numRegs, 1), 0);
        argBound = fr.regs.size();
    }
    fr.fromIrq = fromIrq;
    // Incoming arguments land in the first registers (the selector
    // allocates parameter tuples first, in slot order).
    for (size_t i = 0; i < argBuf_.size() && i < argBound; ++i)
        fr.regs[i] = argBuf_[i];
    argBuf_.clear();
    if (frames_.size() > 64) {
        halted_ = true;  // runaway recursion
    }
}

void
Machine::popFrame()
{
    framePool_.push_back(std::move(frames_.back()));
    frames_.pop_back();
}

uint64_t
Machine::maskFor(uint8_t w) const
{
    return widthMask(w);
}

uint64_t
Machine::loadMem(uint32_t addr, uint8_t w) const
{
    uint64_t v = 0;
    uint32_t n = w / 8;
    for (uint32_t i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(mem_[(addr + i) & 0xFFFF]) << (8 * i);
    return v;
}

void
Machine::storeMem(uint32_t addr, uint64_t v, uint8_t w)
{
    uint32_t n = w / 8;
    for (uint32_t i = 0; i < n; ++i)
        mem_[(addr + i) & 0xFFFF] = static_cast<uint8_t>(v >> (8 * i));
}

bool
Machine::evalCond(MCond c, uint64_t a, uint64_t b, uint8_t w) const
{
    uint64_t mask = maskFor(w);
    uint64_t ua = a & mask, ub = b & mask;
    auto sext = [&](uint64_t u) -> int64_t {
        if (w >= 64)
            return static_cast<int64_t>(u);
        if (u >> (w - 1))
            return static_cast<int64_t>(u | ~mask);
        return static_cast<int64_t>(u);
    };
    int64_t sa = sext(ua), sb = sext(ub);
    switch (c) {
      case MCond::Eq: return ua == ub;
      case MCond::Ne: return ua != ub;
      case MCond::LtU: return ua < ub;
      case MCond::LtS: return sa < sb;
      case MCond::LeU: return ua <= ub;
      case MCond::LeS: return sa <= sb;
      case MCond::GtU: return ua > ub;
      case MCond::GtS: return sa > sb;
      case MCond::GeU: return ua >= ub;
      case MCond::GeS: return sa >= sb;
    }
    return false;
}

void
Machine::dispatchIrqs()
{
    if (!iflag_ || !irqPending())
        return;
    // O(1) pop-front: a read index over the vector, compacted when
    // the queue drains (the erase(begin()) this replaces was O(n)
    // per dispatch).
    int vec = pendingIrqs_[irqHead_++];
    if (irqHead_ == pendingIrqs_.size()) {
        pendingIrqs_.clear();
        irqHead_ = 0;
    }
    if (vec < 0 || vec >= static_cast<int>(numVectors_) ||
        vectors_[vec] < 0) {
        return;
    }
    iflag_ = false;
    cycles_ += 8;  // hardware interrupt latency
    enterFunction(static_cast<uint32_t>(vectors_[vec]), true);
}

uint64_t
Machine::readGlobal(const std::string &name, uint32_t size) const
{
    const MProgram::DataItem *d =
        decoded_ ? decoded_->findDataByName(name) : nullptr;
    if (!decoded_) {
        auto it = dataByName_.find(name);
        d = it == dataByName_.end() ? nullptr : it->second;
    }
    if (!d)
        return 0;
    return loadMem(d->addr, static_cast<uint8_t>(size * 8));
}

bool
Machine::hasGlobal(const std::string &name) const
{
    if (decoded_)
        return decoded_->findDataByName(name) != nullptr;
    return dataByName_.count(name) > 0;
}

void
Machine::runUntilCycle(uint64_t target)
{
    if (mode_ == ExecMode::Threaded)
        runThreaded(target);
    else if (mode_ == ExecMode::Predecoded)
        runPredecoded(target);
    else
        runLegacy(target);
}

//---------------------------------------------------------------------
// Legacy core (the reference interpreter, preserved verbatim)
//---------------------------------------------------------------------

void
Machine::runLegacy(uint64_t target)
{
    while (cycles_ < target && !halted_) {
        // The fault/recovery preamble below is kept textually
        // identical in runPredecoded: faults apply at the same
        // instruction boundaries on both cores, which is what keeps
        // faulted runs inside the equivalence contract.
        if (down_) {
            // Rebooting: powered but not executing until downUntil_.
            if (downUntil_ > target) {
                downCycles_ += target - cycles_;
                cycles_ = target;
                return;
            }
            downCycles_ += downUntil_ - cycles_;
            cycles_ = downUntil_;
            down_ = false;
            boot();
            continue;
        }
        applyFaultsDue();
        if (down_)
            continue;  // a crash fault rebooted us
        if (wedged_) {
            if (recovery_ == RecoveryPolicy::RebootOnWedge) {
                startReboot();
                continue;
            }
            // Spinning awake in the failure stub — but a scheduled
            // crash can still power-cycle a wedged mote, so only
            // fast-forward to the next fault.
            uint64_t stop = std::min(target, nextFaultAt());
            wedgedCycles_ += stop - cycles_;
            cycles_ = stop;
            if (cycles_ >= target)
                return;
            continue;
        }
        if (sleeping_) {
            uint64_t next =
                std::min(dev_.nextEventAt(), nextFaultAt());
            if (next == UINT64_MAX || next > target) {
                sleepCycles_ += target - cycles_;
                cycles_ = target;
                return;
            }
            if (next > cycles_) {
                sleepCycles_ += next - cycles_;
                cycles_ = next;
            }
            if (dev_.nextEventAt() <= cycles_) {
                sleeping_ = false;  // the event below wakes the core
            } else {
                // Only a fault is due: injecting state does not wake
                // a sleeping CPU, so apply it and stay asleep.
                applyFaultsDue();
                continue;
            }
        }
        // Device events and interrupts first.
        std::vector<int> irqs;
        dev_.advanceTo(cycles_, irqs);
        for (int v : irqs)
            pendingIrqs_.push_back(v);
        dispatchIrqs();
        if (frames_.empty()) {
            halted_ = true;
            return;
        }
        step();
    }
}

void
Machine::step()
{
    Frame &fr = frames_.back();
    const MFunc &f = prog_.funcs[fr.funcIdx];
    if (fr.block >= f.blocks.size()) {
        halted_ = true;
        return;
    }
    const MBlock &bb = f.blocks[fr.block];
    if (fr.ip >= bb.instrs.size()) {
        // Fall through to the next block.
        ++fr.block;
        fr.ip = 0;
        if (fr.block >= f.blocks.size())
            halted_ = true;
        return;
    }
    const MInstr &in = bb.instrs[fr.ip];
    ++fr.ip;
    ++instrs_;
    cycles_ += prog_.instrCycles(in);
    uint64_t mask = maskFor(in.w);
    auto reg = [&](uint32_t r) -> uint64_t {
        return r < fr.regs.size() ? fr.regs[r] : 0;
    };
    auto setReg = [&](uint32_t r, uint64_t v) {
        if (r >= fr.regs.size())
            fr.regs.resize(r + 1, 0);
        fr.regs[r] = v & mask;
    };

    switch (in.op) {
      case MOp::Ldi:
        setReg(in.rd, static_cast<uint64_t>(in.imm));
        break;
      case MOp::Mov:
        setReg(in.rd, reg(in.ra));
        break;
      case MOp::Add:
        setReg(in.rd, reg(in.ra) + reg(in.rb));
        break;
      case MOp::Sub:
        setReg(in.rd, reg(in.ra) - reg(in.rb));
        break;
      case MOp::Mul:
        setReg(in.rd, reg(in.ra) * reg(in.rb));
        break;
      case MOp::DivU:
        setReg(in.rd,
               arith::udiv(reg(in.ra) & mask, reg(in.rb) & mask));
        break;
      case MOp::DivS: {
        int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
        int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
        if (in.w < 64) {
            if (static_cast<uint64_t>(a) >> (in.w - 1))
                a |= ~static_cast<int64_t>(mask);
            if (static_cast<uint64_t>(b) >> (in.w - 1))
                b |= ~static_cast<int64_t>(mask);
        }
        setReg(in.rd, static_cast<uint64_t>(arith::sdiv(a, b)));
        break;
      }
      case MOp::RemU:
        setReg(in.rd,
               arith::urem(reg(in.ra) & mask, reg(in.rb) & mask));
        break;
      case MOp::RemS: {
        int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
        int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
        if (in.w < 64) {
            if (static_cast<uint64_t>(a) >> (in.w - 1))
                a |= ~static_cast<int64_t>(mask);
            if (static_cast<uint64_t>(b) >> (in.w - 1))
                b |= ~static_cast<int64_t>(mask);
        }
        setReg(in.rd, static_cast<uint64_t>(arith::srem(a, b)));
        break;
      }
      case MOp::And:
        setReg(in.rd, reg(in.ra) & reg(in.rb));
        break;
      case MOp::Or:
        setReg(in.rd, reg(in.ra) | reg(in.rb));
        break;
      case MOp::Xor:
        setReg(in.rd, reg(in.ra) ^ reg(in.rb));
        break;
      case MOp::Shl:
        setReg(in.rd, reg(in.ra) << (reg(in.rb) & 63));
        break;
      case MOp::ShrU:
        setReg(in.rd, (reg(in.ra) & mask) >> (reg(in.rb) & 63));
        break;
      case MOp::ShrS: {
        int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
        if (in.w < 64 && (static_cast<uint64_t>(a) >> (in.w - 1)))
            a |= ~static_cast<int64_t>(mask);
        setReg(in.rd, static_cast<uint64_t>(a >> (reg(in.rb) & 63)));
        break;
      }
      case MOp::AddI:
        setReg(in.rd, reg(in.ra) + static_cast<uint64_t>(in.imm));
        break;
      case MOp::AndI:
        setReg(in.rd, reg(in.ra) & static_cast<uint64_t>(in.imm));
        break;
      case MOp::Neg:
        setReg(in.rd, 0 - reg(in.ra));
        break;
      case MOp::Not:
        setReg(in.rd, (reg(in.ra) & mask) == 0 ? 1 : 0);
        break;
      case MOp::BNot:
        setReg(in.rd, ~reg(in.ra));
        break;
      case MOp::Sext: {
        uint64_t v = reg(in.ra);
        uint8_t from = static_cast<uint8_t>(in.imm);
        uint64_t fmask = maskFor(from);
        v &= fmask;
        if (from < 64 && (v >> (from - 1)))
            v |= ~fmask;
        setReg(in.rd, v);
        break;
      }
      case MOp::SetC:
        setReg(in.rd,
               evalCond(in.cond, reg(in.ra), reg(in.rb), in.w) ? 1 : 0);
        break;
      case MOp::CmpBr:
        if (evalCond(in.cond, reg(in.ra), reg(in.rb), in.w)) {
            fr.block = in.target;
            fr.ip = 0;
        }
        break;
      case MOp::Jmp: {
        // A single-instruction block jumping to itself is a halt loop
        // (the failure handler's final state): spin awake forever.
        if (in.target == fr.block && bb.instrs.size() == 1) {
            wedged_ = true;
            return;
        }
        fr.block = in.target;
        fr.ip = 0;
        break;
      }
      case MOp::Ld:
        setReg(in.rd, loadMem(static_cast<uint32_t>(
                                  (reg(in.ra) + in.imm) & 0xFFFF),
                              in.w));
        break;
      case MOp::St:
        storeMem(
            static_cast<uint32_t>((reg(in.ra) + in.imm) & 0xFFFF),
            reg(in.rb), in.w);
        break;
      case MOp::Lea: {
        const MProgram::DataItem *d = prog_.findData(in.gid);
        setReg(in.rd, d ? (d->addr + in.imm) & 0xFFFF : 0);
        break;
      }
      case MOp::Leal:
        setReg(in.rd, (fr.fp + in.imm) & 0xFFFF);
        break;
      case MOp::Enter: {
        uint32_t size = static_cast<uint32_t>(in.imm);
        if (sp_ < size + 0x200) {
            halted_ = true;  // stack overflow
            return;
        }
        sp_ -= size;
        fr.fp = sp_;
        for (uint32_t i = 0; i < size; ++i)
            mem_[fr.fp + i] = 0;
        break;
      }
      case MOp::Leave:
        sp_ += static_cast<uint32_t>(in.imm);
        break;
      case MOp::SetArg: {
        size_t slot = static_cast<size_t>(in.imm);
        if (argBuf_.size() <= slot)
            argBuf_.resize(slot + 1, 0);
        argBuf_[slot] = reg(in.ra) & mask;
        break;
      }
      case MOp::GetRet: {
        size_t slot = static_cast<size_t>(in.imm);
        setReg(in.rd, slot < retBuf_.size() ? retBuf_[slot] : 0);
        break;
      }
      case MOp::SetRet: {
        size_t slot = static_cast<size_t>(in.imm);
        if (retBuf_.size() <= slot)
            retBuf_.resize(slot + 1, 0);
        retBuf_[slot] = reg(in.ra) & mask;
        break;
      }
      case MOp::Call: {
        auto it = funcByModuleId_.find(in.fn);
        if (it == funcByModuleId_.end()) {
            halted_ = true;
            return;
        }
        if (it->second == failFnIdx_) {
            recordTrap(argBuf_.empty()
                           ? 0
                           : static_cast<uint32_t>(argBuf_[0]),
                       fr.funcIdx);
            if (recovery_ == RecoveryPolicy::RebootOnTrap) {
                startReboot();
                return;
            }
        }
        retBuf_.clear();
        enterFunction(it->second, false);
        break;
      }
      case MOp::CallR: {
        uint64_t id = reg(in.ra);
        if (id == 0) {
            wedged_ = true;  // wild jump; model as a crash
            return;
        }
        auto it = funcByModuleId_.find(static_cast<uint32_t>(id - 1));
        if (it == funcByModuleId_.end()) {
            wedged_ = true;
            return;
        }
        retBuf_.clear();
        enterFunction(it->second, false);
        break;
      }
      case MOp::Ret:
      case MOp::Reti: {
        bool fromIrq = fr.fromIrq;
        // Implicit shadow pop: interrupt frames were never pushed
        // (dispatch is not a Call), and non-CFI images leave the
        // shadow empty, so the guard makes this universally safe.
        if (!fromIrq && !shadow_.empty())
            shadow_.pop_back();
        popFrame();
        if (in.op == MOp::Reti || fromIrq)
            iflag_ = true;
        if (frames_.empty())
            halted_ = true;
        break;
      }
      case MOp::SSPush:
        shadow_.push_back(fr.funcIdx);
        break;
      case MOp::SSChk:
        // Shadow-stack return check: the frame we are about to resume
        // must be the one that pushed at the call site. Taken like a
        // CmpBr into the failure stub on mismatch.
        if (!fr.fromIrq && frames_.size() >= 2 && !shadow_.empty() &&
            shadow_.back() != frames_[frames_.size() - 2].funcIdx) {
            fr.block = in.target;
            fr.ip = 0;
        }
        break;
      case MOp::Sei:
        iflag_ = true;
        break;
      case MOp::Cli:
        iflag_ = false;
        break;
      case MOp::GetIf:
        setReg(in.rd, iflag_ ? 1 : 0);
        break;
      case MOp::SetIf:
        iflag_ = (reg(in.ra) & 1) != 0;
        break;
      case MOp::In:
        setReg(in.rd, dev_.ioRead(in.port, cycles_));
        break;
      case MOp::Out:
        dev_.ioWrite(in.port, static_cast<uint32_t>(reg(in.ra) & mask),
                     cycles_);
        break;
      case MOp::Sleep:
        // Low-power mode: time passes in runUntilCycle until the next
        // device event (or an incoming radio packet) wakes us.
        sleeping_ = true;
        break;
      case MOp::Halt:  // backend never emits this (decoded sentinel)
        halted_ = true;
        break;
      case MOp::Nop:
        break;
      // Decode-time superinstructions live only in the threaded
      // stream; the legacy core never sees them.
      case MOp::FCmpBrI: case MOp::FMov2: case MOp::FLd2:
      case MOp::FSt2: case MOp::FLea2: case MOp::FLeal2:
      case MOp::FSetArg2: case MOp::FLdiArg: case MOp::FSetCI:
      case MOp::FLdiMov: case MOp::FLdiAlu: case MOp::FAluMov:
      case MOp::FMovJmp:
        break;
    }
}

//---------------------------------------------------------------------
// Predecoded core (event-horizon scheduling)
//---------------------------------------------------------------------

void
Machine::drainDeviceEvents()
{
    irqScratch_.clear();
    dev_.advanceTo(cycles_, irqScratch_);
    for (int v : irqScratch_)
        pendingIrqs_.push_back(v);
}

void
Machine::runPredecoded(uint64_t target)
{
    while (cycles_ < target && !halted_) {
        // Fault/recovery preamble: textually identical to runLegacy
        // so faults land at the same instruction boundaries.
        if (down_) {
            // Rebooting: powered but not executing until downUntil_.
            if (downUntil_ > target) {
                downCycles_ += target - cycles_;
                cycles_ = target;
                return;
            }
            downCycles_ += downUntil_ - cycles_;
            cycles_ = downUntil_;
            down_ = false;
            boot();
            continue;
        }
        applyFaultsDue();
        if (down_)
            continue;  // a crash fault rebooted us
        if (wedged_) {
            if (recovery_ == RecoveryPolicy::RebootOnWedge) {
                startReboot();
                continue;
            }
            // Spinning awake in the failure stub — but a scheduled
            // crash can still power-cycle a wedged mote, so only
            // fast-forward to the next fault.
            uint64_t stop = std::min(target, nextFaultAt());
            wedgedCycles_ += stop - cycles_;
            cycles_ = stop;
            if (cycles_ >= target)
                return;
            continue;
        }
        if (sleeping_) {
            uint64_t next =
                std::min(dev_.nextEventAt(), nextFaultAt());
            if (next == UINT64_MAX || next > target) {
                sleepCycles_ += target - cycles_;
                cycles_ = target;
                return;
            }
            if (next > cycles_) {
                sleepCycles_ += next - cycles_;
                cycles_ = next;
            }
            if (dev_.nextEventAt() <= cycles_) {
                sleeping_ = false;  // the event below wakes the core
            } else {
                // Only a fault is due: injecting state does not wake
                // a sleeping CPU, so apply it and stay asleep.
                applyFaultsDue();
                continue;
            }
        }
        drainDeviceEvents();
        dispatchIrqs();
        if (frames_.empty()) {
            halted_ = true;
            return;
        }
        // Event horizon: no device event (or scheduled fault) can
        // fire before this cycle, so the instruction loop below never
        // needs to consult the hub or the fault schedule. Like the
        // legacy core, at least one instruction runs per dispatch
        // opportunity (an interrupt's 8-cycle latency may already
        // have crossed the horizon).
        uint64_t horizon =
            std::min({target, dev_.nextEventAt(), nextFaultAt()});
        // Cached frame/code/register pointers, refreshed only when a
        // call or return changes the top frame. The register file is
        // pre-sized at decode time to cover every operand index, so
        // accesses are unchecked.
        Frame *frp = &frames_.back();
        const DInstr *code = frp->df->instrs.data();
        uint64_t *regs = frp->regs.data();
        auto refreshFrame = [&] {
            frp = &frames_.back();
            code = frp->df->instrs.data();
            regs = frp->regs.data();
        };
        for (;;) {
            Frame &fr = *frp;
            const DInstr &in = code[fr.ip];
            if (in.op == MOp::Halt) {
                halted_ = true;
                break;
            }
            ++fr.ip;
            ++instrs_;
            cycles_ += in.cycles;
            const uint64_t mask = widthMask(in.w);
            auto reg = [&](uint32_t r) -> uint64_t { return regs[r]; };
            auto setReg = [&](uint32_t r, uint64_t v) {
                regs[r] = v & mask;
            };

            switch (in.op) {
              case MOp::Ldi:
                setReg(in.rd,
                       static_cast<uint64_t>(fr.df->imm(in)));
                break;
              case MOp::Mov:
                setReg(in.rd, reg(in.ra));
                break;
              case MOp::Add:
                setReg(in.rd, reg(in.ra) + reg(in.rb));
                break;
              case MOp::Sub:
                setReg(in.rd, reg(in.ra) - reg(in.rb));
                break;
              case MOp::Mul:
                setReg(in.rd, reg(in.ra) * reg(in.rb));
                break;
              case MOp::DivU:
                setReg(in.rd, arith::udiv(reg(in.ra) & mask,
                                          reg(in.rb) & mask));
                break;
              case MOp::DivS: {
                int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
                int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
                if (in.w < 64) {
                    if (static_cast<uint64_t>(a) >> (in.w - 1))
                        a |= ~static_cast<int64_t>(mask);
                    if (static_cast<uint64_t>(b) >> (in.w - 1))
                        b |= ~static_cast<int64_t>(mask);
                }
                setReg(in.rd,
                       static_cast<uint64_t>(arith::sdiv(a, b)));
                break;
              }
              case MOp::RemU:
                setReg(in.rd, arith::urem(reg(in.ra) & mask,
                                          reg(in.rb) & mask));
                break;
              case MOp::RemS: {
                int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
                int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
                if (in.w < 64) {
                    if (static_cast<uint64_t>(a) >> (in.w - 1))
                        a |= ~static_cast<int64_t>(mask);
                    if (static_cast<uint64_t>(b) >> (in.w - 1))
                        b |= ~static_cast<int64_t>(mask);
                }
                setReg(in.rd,
                       static_cast<uint64_t>(arith::srem(a, b)));
                break;
              }
              case MOp::And:
                setReg(in.rd, reg(in.ra) & reg(in.rb));
                break;
              case MOp::Or:
                setReg(in.rd, reg(in.ra) | reg(in.rb));
                break;
              case MOp::Xor:
                setReg(in.rd, reg(in.ra) ^ reg(in.rb));
                break;
              case MOp::Shl:
                setReg(in.rd, reg(in.ra) << (reg(in.rb) & 63));
                break;
              case MOp::ShrU:
                setReg(in.rd, (reg(in.ra) & mask) >> (reg(in.rb) & 63));
                break;
              case MOp::ShrS: {
                int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
                if (in.w < 64 &&
                    (static_cast<uint64_t>(a) >> (in.w - 1)))
                    a |= ~static_cast<int64_t>(mask);
                setReg(in.rd,
                       static_cast<uint64_t>(a >> (reg(in.rb) & 63)));
                break;
              }
              case MOp::AddI:
                setReg(in.rd,
                       reg(in.ra) +
                           static_cast<uint64_t>(fr.df->imm(in)));
                break;
              case MOp::AndI:
                setReg(in.rd,
                       reg(in.ra) &
                           static_cast<uint64_t>(fr.df->imm(in)));
                break;
              case MOp::Neg:
                setReg(in.rd, 0 - reg(in.ra));
                break;
              case MOp::Not:
                setReg(in.rd, (reg(in.ra) & mask) == 0 ? 1 : 0);
                break;
              case MOp::BNot:
                setReg(in.rd, ~reg(in.ra));
                break;
              case MOp::Sext: {
                uint8_t from = static_cast<uint8_t>(in.imm);
                uint64_t fmask = widthMask(from);
                uint64_t v = reg(in.ra) & fmask;
                if (from < 64 && (v >> (from - 1)))
                    v |= ~fmask;
                setReg(in.rd, v);
                break;
              }
              case MOp::SetC:
                setReg(in.rd, evalCond(in.cond, reg(in.ra), reg(in.rb),
                                       in.w)
                                  ? 1
                                  : 0);
                break;
              case MOp::CmpBr:
                if (evalCond(in.cond, reg(in.ra), reg(in.rb), in.w))
                    fr.ip = in.target();
                break;
              case MOp::Jmp:
                if (in.wedge()) {
                    wedged_ = true;
                    break;
                }
                fr.ip = in.target();
                break;
              case MOp::Ld:
                setReg(in.rd,
                       loadMem(static_cast<uint32_t>(
                                   (reg(in.ra) + fr.df->imm(in)) &
                                   0xFFFF),
                               in.w));
                break;
              case MOp::St:
                storeMem(static_cast<uint32_t>(
                             (reg(in.ra) + fr.df->imm(in)) & 0xFFFF),
                         reg(in.rb), in.w);
                break;
              case MOp::Lea:
                // Resolved to an absolute address at decode time.
                setReg(in.rd, static_cast<uint64_t>(
                                  static_cast<uint32_t>(in.imm)));
                break;
              case MOp::Leal:
                setReg(in.rd, (fr.fp + in.imm) & 0xFFFF);
                break;
              case MOp::Enter: {
                uint32_t size = static_cast<uint32_t>(in.imm);
                if (sp_ < size + 0x200) {
                    halted_ = true;  // stack overflow
                    break;
                }
                sp_ -= size;
                fr.fp = sp_;
                for (uint32_t i = 0; i < size; ++i)
                    mem_[fr.fp + i] = 0;
                break;
              }
              case MOp::Leave:
                sp_ += static_cast<uint32_t>(in.imm);
                break;
              case MOp::SetArg: {
                size_t slot = static_cast<size_t>(in.imm);
                if (argBuf_.size() <= slot)
                    argBuf_.resize(slot + 1, 0);
                argBuf_[slot] = reg(in.ra) & mask;
                break;
              }
              case MOp::GetRet: {
                size_t slot = static_cast<size_t>(in.imm);
                setReg(in.rd, slot < retBuf_.size() ? retBuf_[slot] : 0);
                break;
              }
              case MOp::SetRet: {
                size_t slot = static_cast<size_t>(in.imm);
                if (retBuf_.size() <= slot)
                    retBuf_.resize(slot + 1, 0);
                retBuf_[slot] = reg(in.ra) & mask;
                break;
              }
              case MOp::Call: {
                const int32_t callIdx = in.callIdx();
                if (callIdx < 0) {
                    halted_ = true;
                    break;
                }
                if (in.callsFail()) {
                    recordTrap(argBuf_.empty()
                                   ? 0
                                   : static_cast<uint32_t>(argBuf_[0]),
                               fr.funcIdx);
                    if (recovery_ == RecoveryPolicy::RebootOnTrap) {
                        // startReboot clears frames_: the cached
                        // frp/code/regs are dead — leave immediately.
                        startReboot();
                        break;
                    }
                }
                retBuf_.clear();
                enterFunction(static_cast<uint32_t>(callIdx), false);
                refreshFrame();
                break;
              }
              case MOp::CallR: {
                uint64_t id = reg(in.ra);
                // Mirror the legacy core exactly: the function id is
                // truncated to 32 bits before resolution.
                int32_t idx = id == 0
                                  ? -1
                                  : decoded_->funcIndexForId(
                                        static_cast<uint32_t>(id - 1));
                if (idx < 0) {
                    wedged_ = true;  // wild jump; model as a crash
                    break;
                }
                retBuf_.clear();
                enterFunction(static_cast<uint32_t>(idx), false);
                refreshFrame();
                break;
              }
              case MOp::Ret:
              case MOp::Reti: {
                bool fromIrq = fr.fromIrq;
                // Implicit shadow pop — mirrors the legacy core.
                if (!fromIrq && !shadow_.empty())
                    shadow_.pop_back();
                popFrame();
                if (in.op == MOp::Reti || fromIrq)
                    iflag_ = true;
                if (frames_.empty())
                    halted_ = true;
                else
                    refreshFrame();
                break;
              }
              case MOp::SSPush:
                shadow_.push_back(fr.funcIdx);
                break;
              case MOp::SSChk:
                // Shadow-stack return check — mirrors the legacy core
                // (target is a flat instruction offset here).
                if (!fr.fromIrq && frames_.size() >= 2 &&
                    !shadow_.empty() &&
                    shadow_.back() !=
                        frames_[frames_.size() - 2].funcIdx)
                    fr.ip = in.target();
                break;
              case MOp::Sei:
                iflag_ = true;
                break;
              case MOp::Cli:
                iflag_ = false;
                break;
              case MOp::GetIf:
                setReg(in.rd, iflag_ ? 1 : 0);
                break;
              case MOp::SetIf:
                iflag_ = (reg(in.ra) & 1) != 0;
                break;
              case MOp::In:
                setReg(in.rd, dev_.ioRead(in.port(), cycles_));
                // I/O may repoint the hub's schedule (e.g. FIFO pops);
                // stay conservative and re-aim the horizon.
                horizon = std::min(
                    {target, dev_.nextEventAt(), nextFaultAt()});
                break;
              case MOp::Out:
                dev_.ioWrite(in.port(),
                             static_cast<uint32_t>(reg(in.ra) & mask),
                             cycles_);
                // Starting a timer/ADC/radio moves the next event.
                horizon = std::min(
                    {target, dev_.nextEventAt(), nextFaultAt()});
                break;
              case MOp::Sleep:
                sleeping_ = true;
                break;
              case MOp::Halt:  // handled before accounting
                break;
              case MOp::Nop:
                break;
              // Superinstructions exist only in the fused stream the
              // threaded core executes, never in `instrs`.
              case MOp::FCmpBrI: case MOp::FMov2: case MOp::FLd2:
              case MOp::FSt2: case MOp::FLea2: case MOp::FLeal2:
              case MOp::FSetArg2: case MOp::FLdiArg: case MOp::FSetCI:
              case MOp::FLdiMov: case MOp::FLdiAlu: case MOp::FAluMov:
              case MOp::FMovJmp:
                break;
            }

            if (halted_ || wedged_ || sleeping_ || down_)
                break;
            // A Reti/Sei/SetIf may have re-enabled interrupts while
            // requests are queued: let the outer loop dispatch.
            if (iflag_ && irqPending())
                break;
            if (cycles_ >= horizon)
                break;
        }
    }
}

//---------------------------------------------------------------------
// Network
//---------------------------------------------------------------------

Machine &
Network::attachMote(std::unique_ptr<Machine> m)
{
    motes_.push_back(std::move(m));
    Machine *self = motes_.back().get();
    size_t selfIdx = motes_.size() - 1;
    self->devices().onSend = [this, selfIdx](const Packet &p) {
        uint64_t at = motes_[selfIdx]->cycles() + kAirLatency;
        if (bufferSends_)
            outboxes_[selfIdx].push_back({p, at});
        else
            deliverFrom(selfIdx, p, at);
    };
    return *self;
}

void
Network::deliverFrom(size_t senderIdx, const Packet &p, uint64_t at)
{
    const bool faulty = opts_.faults.faultsRadio();
    for (size_t i = 0; i < motes_.size(); ++i) {
        if (i == senderIdx)
            continue;
        DeviceHub &rx = motes_[i]->devices();
        if (!faulty) {
            rx.deliver(p, at);
            continue;
        }
        // Addressed elsewhere: the hub would ignore it anyway — skip
        // the draw so loss/corruption counters only count packets the
        // mote would actually have received.
        if (p.dest != 0xFF && p.dest != rx.nodeId())
            continue;
        // Per-link fault draw. Pure function of (seed, src, dst, at,
        // payload), so serial, lockstep, and window-parallel
        // schedulers — which all deliver the same (packet, at) pairs
        // — draw identical faults regardless of call order.
        RadioFaultDecision d = radioFaultsFor(opts_.faults, p.src,
                                              rx.nodeId(), at, p.bytes);
        if (d.drop) {
            rx.noteDropped();
            continue;
        }
        if (d.corrupt && !p.bytes.empty()) {
            Packet bad = p;
            bad.bytes[d.corruptByte % bad.bytes.size()] ^=
                static_cast<uint8_t>(1u << d.corruptBit);
            rx.noteCorrupted();
            rx.deliver(bad, at);
        } else {
            rx.deliver(p, at);
        }
        if (d.dup) {
            // The duplicate trails the original by one retransmission
            // time — strictly later, so lookahead windows stay sound.
            rx.noteDuplicated();
            rx.deliver(p, at + DeviceHub::kCyclesPerRadioByte *
                                   std::max<uint64_t>(1, p.bytes.size()));
        }
    }
}

Machine &
Network::addMote(const MProgram &prog, uint8_t nodeId)
{
    return attachMote(
        std::make_unique<Machine>(prog, nodeId, opts_.mode));
}

Machine &
Network::addMote(std::shared_ptr<const DecodedProgram> prog,
                 uint8_t nodeId)
{
    return attachMote(
        std::make_unique<Machine>(std::move(prog), nodeId, opts_.mode));
}

uint64_t
Network::windowEnd(uint64_t t, uint64_t end) const
{
    if (!opts_.lookahead)
        return std::min(t + kQuantum, end);
    // A lone mote has nobody to synchronize with.
    if (motes_.size() <= 1)
        return end;
    // Conservative lookahead: the window may extend to the earliest
    // cycle at which one mote could influence another. Transmitting
    // one radio byte takes kCyclesPerRadioByte cycles and propagation
    // another kAirLatency, so a transmission *started* inside the
    // window cannot arrive before
    //   start + kCyclesPerRadioByte + kAirLatency;
    // a sleeping mote cannot start one before its next wakeup, and a
    // transmission already in flight arrives no earlier than its
    // completion + kAirLatency. Windows also close at the next
    // already-queued delivery so they align with radio activity. For
    // the paper's duty-cycle workloads (motes asleep between timer
    // ticks) this fast-forwards whole sleep periods per window, the
    // Avrora sleep/event trick combined with lookahead.
    uint64_t te = end;
    for (const auto &m : motes_) {
        const Machine &mote = *m;
        if (mote.halted())
            continue;  // permanently dead: cannot transmit
        if (mote.wedged()) {
            // A wedged mote executes nothing — unless recovery will
            // revive it (RebootOnWedge reboots the moment it is next
            // stepped; a scheduled crash power-cycles it at the fault
            // time). Earliest possible transmission follows the
            // reboot latency.
            uint64_t reviveAt;
            if (mote.recoveryPolicy() == RecoveryPolicy::RebootOnWedge)
                reviveAt = mote.cycles() + kRebootLatencyCycles;
            else if (mote.nextFaultAt() != UINT64_MAX)
                reviveAt = mote.nextFaultAt() + kRebootLatencyCycles;
            else
                continue;  // wedged forever: cannot transmit
            uint64_t influence = std::max(t, reviveAt) +
                                 DeviceHub::kCyclesPerRadioByte +
                                 kAirLatency;
            if (influence < te)
                te = influence;
            continue;
        }
        if (mote.down()) {
            // Mid-reboot: nothing happens until downUntil().
            uint64_t influence = std::max(t, mote.downUntil()) +
                                 DeviceHub::kCyclesPerRadioByte +
                                 kAirLatency;
            if (influence < te)
                te = influence;
            continue;
        }
        const DeviceHub &dev = mote.devices();
        uint64_t at = dev.nextRxDeliveryAt();
        if (at > t && at < te)
            te = at;
        uint64_t tx = dev.txDoneAt();
        if (tx != UINT64_MAX && tx + kAirLatency < te)
            te = tx + kAirLatency;
        uint64_t wake = t;
        if (mote.sleeping()) {
            // A scheduled crash can cut a sleep short (reboot, then
            // execute), so the wakeup bound includes the fault time.
            uint64_t next =
                std::min(dev.nextEventAt(), mote.nextFaultAt());
            if (next == UINT64_MAX)
                continue;  // sleeps forever: cannot transmit
            wake = std::max(t, next);
        }
        uint64_t influence =
            wake + DeviceHub::kCyclesPerRadioByte + kAirLatency;
        if (influence < te)
            te = influence;
    }
    return std::max(te, t + 1);  // guarantee forward progress
}

bool
Network::allMotesDead() const
{
    for (const auto &m : motes_) {
        if (m->halted())
            continue;
        // A wedged mote is terminally dead only if nothing can revive
        // it: no RebootOnWedge policy and no pending fault (a crash
        // would power-cycle it).
        if (m->wedged() &&
            m->recoveryPolicy() != RecoveryPolicy::RebootOnWedge &&
            m->nextFaultAt() == UINT64_MAX)
            continue;
        return false;
    }
    return !motes_.empty();
}

bool
Network::pastDeadline() const
{
    return hasDeadline_ &&
           std::chrono::steady_clock::now() > deadline_;
}

void
Network::runSerial(uint64_t start, uint64_t end)
{
    for (uint64_t t = start; t < end;) {
        if (opts_.earlyExit && allMotesDead()) {
            // Every mote is terminally halted or wedged: one final
            // fast-forward per mote produces identical stats to
            // thousands of idle windows.
            for (auto &m : motes_)
                m->runUntilCycle(end);
            return;
        }
        if (pastDeadline()) {
            timedOut_ = true;
            return;
        }
        // Clamp the final window so a request that is not a multiple
        // of the window never runs past `end` (it would inflate every
        // duty-cycle measurement).
        uint64_t te = windowEnd(t, end);
        ++windows_;
        for (auto &m : motes_)
            m->runUntilCycle(te);
        t = te;
    }
}

void
Network::runParallel(uint64_t start, uint64_t end, unsigned threads)
{
    // Windows are dispatched to the persistent worker pool instead of
    // spawning a thread team per run: each window is one batch of
    // per-mote jobs, `threads` caps its concurrent executors (the
    // --jobs request), and the caller thread participates in the
    // batch, so a pool saturated by other cells degrades to serial
    // stepping rather than blocking. The mutex handoff inside the
    // pool orders each mote's windows, so no mote is ever touched by
    // two threads at once and every window boundary is a full
    // synchronization point.
    core::WorkerPool &pool =
        opts_.pool ? *opts_.pool : core::sharedPool();
    outboxes_.assign(motes_.size(), {});
    bufferSends_ = true;
    for (uint64_t t = start; t < end;) {
        if (pastDeadline()) {
            timedOut_ = true;
            break;
        }
        uint64_t te = windowEnd(t, end);
        pool.run(motes_.size(), threads, [&](size_t i) {
            motes_[i]->runUntilCycle(te);
        });
        // Flush the buffered radio sends in sender-index order (the
        // serial delivery order), then open the next window.
        for (size_t i = 0; i < outboxes_.size(); ++i) {
            for (const Send &s : outboxes_[i])
                deliverFrom(i, s.p, s.at);
            outboxes_[i].clear();
        }
        ++windows_;
        t = te;
    }
    bufferSends_ = false;
}

void
Network::run(uint64_t cycles)
{
    if (motes_.empty())
        return;
    if (!booted_) {
        for (auto &m : motes_)
            m->boot();
        booted_ = true;
        // Compile the fault campaign against the span of this first
        // run. Node 1 is the mote under test; companions are faulted
        // only on request so multi-mote workloads keep a live peer.
        if (opts_.faults.anyFaults()) {
            for (auto &m : motes_) {
                m->setRecoveryPolicy(opts_.faults.recovery);
                uint8_t nid = m->devices().nodeId();
                if (opts_.faults.injectsState() &&
                    (nid == 1 || opts_.faults.faultCompanions)) {
                    m->setFaultEvents(scheduleFaults(
                        opts_.faults, nid, m->cycles(),
                        m->cycles() + cycles));
                }
            }
        }
    }
    uint64_t start = motes_[0]->cycles();
    uint64_t end = start + cycles;
    unsigned threads = opts_.threads;
    if (threads > motes_.size())
        threads = static_cast<unsigned>(motes_.size());

    timedOut_ = false;
    hasDeadline_ = opts_.wallLimitMs > 0.0;
    if (hasDeadline_) {
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(static_cast<int64_t>(
                        opts_.wallLimitMs * 1000.0));
    }
    // With a watchdog armed, subdivide the span so even a lone mote
    // (whose lookahead window is the whole run) hits deadline checks.
    // Window subdivision is behaviour-transparent: every window
    // boundary is a pure synchronization point.
    uint64_t slice = hasDeadline_ ? (uint64_t{1} << 22) : UINT64_MAX;
    for (uint64_t t = start; t < end && !timedOut_;) {
        uint64_t stop = end - t > slice ? t + slice : end;
        if (hasDeadline_ && pastDeadline()) {
            timedOut_ = true;
            break;
        }
        if (threads > 1 && opts_.lookahead)
            runParallel(t, stop, threads);
        else
            runSerial(t, stop);
        t = stop;
    }
    if (timedOut_) {
        throw SimAbort(
            "simulation wall-clock watchdog expired after " +
            std::to_string(opts_.wallLimitMs) + " ms (simulated " +
            std::to_string(motes_[0]->cycles() - start) + " of " +
            std::to_string(cycles) + " cycles)");
    }
}

} // namespace stos::sim
