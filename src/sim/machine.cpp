/**
 * @file
 * Mote simulator implementation: the legacy reference interpreter
 * (kept verbatim as the equivalence baseline) and the predecoded
 * event-horizon core, plus the windowed multi-mote network.
 */
#include "sim/machine.h"

#include <algorithm>
#include <barrier>
#include <thread>

#include "support/arith.h"
#include "support/util.h"

namespace stos::sim {

using namespace stos::backend;

Machine::Machine(const MProgram &prog, uint8_t nodeId, ExecMode mode)
    : mode_(mode), prog_(prog), dev_(nodeId)
{
    if (mode_ == ExecMode::Predecoded)
        decoded_ = std::make_shared<const DecodedProgram>(prog_);
    if (decoded_) {
        failFnIdx_ = decoded_->failFnIdx();
        vectors_ = decoded_->vectors();
        numVectors_ = decoded_->numVectors();
        mem_ = decoded_->memInit();
    } else {
        for (uint32_t i = 0; i < prog_.funcs.size(); ++i) {
            funcByModuleId_[prog_.funcs[i].id] = i;
            if (prog_.funcs[i].name == "__st_fail" ||
                prog_.funcs[i].name == "__st_fail_msg") {
                if (failFnIdx_ == ~0u ||
                    prog_.funcs[i].name == "__st_fail")
                    failFnIdx_ = i;
            }
        }
        vectors_ = prog_.vectorTable.data();
        numVectors_ = prog_.vectorTable.size();
        mem_.assign(0x10000, 0);
        for (const auto &d : prog_.data) {
            dataByName_[d.name] = &d;
            for (size_t i = 0; i < d.init.size() && i < d.size; ++i)
                mem_[d.addr + i] = d.init[i];
        }
    }
    sp_ = prog_.romDataBase;  // stack below the ROM window
}

Machine::Machine(std::shared_ptr<const DecodedProgram> prog,
                 uint8_t nodeId)
    : mode_(ExecMode::Predecoded), decoded_(std::move(prog)),
      prog_(decoded_->program()), dev_(nodeId)
{
    failFnIdx_ = decoded_->failFnIdx();
    vectors_ = decoded_->vectors();
    numVectors_ = decoded_->numVectors();
    mem_ = decoded_->memInit();
    sp_ = prog_.romDataBase;
}

void
Machine::boot()
{
    frames_.clear();
    enterFunction(prog_.entry, false);
}

void
Machine::enterFunction(uint32_t funcIdx, bool fromIrq)
{
    Frame fr;
    fr.funcIdx = funcIdx;
    fr.block = 0;
    fr.ip = 0;
    // How many incoming arguments may land in registers: the legacy
    // core bounds this by its register-file size, so the decoded core
    // must use the *declared* size, not the operand-padded one.
    size_t argBound;
    if (decoded_) {
        fr.df = &decoded_->funcs().at(funcIdx);
        fr.regs.assign(fr.df->numRegs, 0);
        argBound = fr.df->argRegs;
    } else {
        const MFunc &f = prog_.funcs.at(funcIdx);
        fr.regs.assign(std::max<uint32_t>(f.numRegs, 1), 0);
        argBound = fr.regs.size();
    }
    fr.fromIrq = fromIrq;
    // Incoming arguments land in the first registers (the selector
    // allocates parameter tuples first, in slot order).
    for (size_t i = 0; i < argBuf_.size() && i < argBound; ++i)
        fr.regs[i] = argBuf_[i];
    argBuf_.clear();
    frames_.push_back(std::move(fr));
    if (frames_.size() > 64) {
        halted_ = true;  // runaway recursion
    }
}

uint64_t
Machine::maskFor(uint8_t w) const
{
    return widthMask(w);
}

uint64_t
Machine::loadMem(uint32_t addr, uint8_t w) const
{
    uint64_t v = 0;
    uint32_t n = w / 8;
    for (uint32_t i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(mem_[(addr + i) & 0xFFFF]) << (8 * i);
    return v;
}

void
Machine::storeMem(uint32_t addr, uint64_t v, uint8_t w)
{
    uint32_t n = w / 8;
    for (uint32_t i = 0; i < n; ++i)
        mem_[(addr + i) & 0xFFFF] = static_cast<uint8_t>(v >> (8 * i));
}

bool
Machine::evalCond(MCond c, uint64_t a, uint64_t b, uint8_t w) const
{
    uint64_t mask = maskFor(w);
    uint64_t ua = a & mask, ub = b & mask;
    auto sext = [&](uint64_t u) -> int64_t {
        if (w >= 64)
            return static_cast<int64_t>(u);
        if (u >> (w - 1))
            return static_cast<int64_t>(u | ~mask);
        return static_cast<int64_t>(u);
    };
    int64_t sa = sext(ua), sb = sext(ub);
    switch (c) {
      case MCond::Eq: return ua == ub;
      case MCond::Ne: return ua != ub;
      case MCond::LtU: return ua < ub;
      case MCond::LtS: return sa < sb;
      case MCond::LeU: return ua <= ub;
      case MCond::LeS: return sa <= sb;
      case MCond::GtU: return ua > ub;
      case MCond::GtS: return sa > sb;
      case MCond::GeU: return ua >= ub;
      case MCond::GeS: return sa >= sb;
    }
    return false;
}

void
Machine::dispatchIrqs()
{
    if (!iflag_ || !irqPending())
        return;
    // O(1) pop-front: a read index over the vector, compacted when
    // the queue drains (the erase(begin()) this replaces was O(n)
    // per dispatch).
    int vec = pendingIrqs_[irqHead_++];
    if (irqHead_ == pendingIrqs_.size()) {
        pendingIrqs_.clear();
        irqHead_ = 0;
    }
    if (vec < 0 || vec >= static_cast<int>(numVectors_) ||
        vectors_[vec] < 0) {
        return;
    }
    iflag_ = false;
    cycles_ += 8;  // hardware interrupt latency
    enterFunction(static_cast<uint32_t>(vectors_[vec]), true);
}

uint64_t
Machine::readGlobal(const std::string &name, uint32_t size) const
{
    const MProgram::DataItem *d =
        decoded_ ? decoded_->findDataByName(name) : nullptr;
    if (!decoded_) {
        auto it = dataByName_.find(name);
        d = it == dataByName_.end() ? nullptr : it->second;
    }
    if (!d)
        return 0;
    return loadMem(d->addr, static_cast<uint8_t>(size * 8));
}

bool
Machine::hasGlobal(const std::string &name) const
{
    if (decoded_)
        return decoded_->findDataByName(name) != nullptr;
    return dataByName_.count(name) > 0;
}

void
Machine::runUntilCycle(uint64_t target)
{
    if (mode_ == ExecMode::Predecoded)
        runPredecoded(target);
    else
        runLegacy(target);
}

//---------------------------------------------------------------------
// Legacy core (the reference interpreter, preserved verbatim)
//---------------------------------------------------------------------

void
Machine::runLegacy(uint64_t target)
{
    while (cycles_ < target && !halted_) {
        if (wedged_) {
            cycles_ = target;  // spinning awake in the failure stub
            return;
        }
        if (sleeping_) {
            uint64_t next = dev_.nextEventAt();
            if (next == UINT64_MAX || next > target) {
                sleepCycles_ += target - cycles_;
                cycles_ = target;
                return;
            }
            if (next > cycles_) {
                sleepCycles_ += next - cycles_;
                cycles_ = next;
            }
            sleeping_ = false;  // the event below wakes the core
        }
        // Device events and interrupts first.
        std::vector<int> irqs;
        dev_.advanceTo(cycles_, irqs);
        for (int v : irqs)
            pendingIrqs_.push_back(v);
        dispatchIrqs();
        if (frames_.empty()) {
            halted_ = true;
            return;
        }
        step();
    }
}

void
Machine::step()
{
    Frame &fr = frames_.back();
    const MFunc &f = prog_.funcs[fr.funcIdx];
    if (fr.block >= f.blocks.size()) {
        halted_ = true;
        return;
    }
    const MBlock &bb = f.blocks[fr.block];
    if (fr.ip >= bb.instrs.size()) {
        // Fall through to the next block.
        ++fr.block;
        fr.ip = 0;
        if (fr.block >= f.blocks.size())
            halted_ = true;
        return;
    }
    const MInstr &in = bb.instrs[fr.ip];
    ++fr.ip;
    ++instrs_;
    cycles_ += prog_.instrCycles(in);
    uint64_t mask = maskFor(in.w);
    auto reg = [&](uint32_t r) -> uint64_t {
        return r < fr.regs.size() ? fr.regs[r] : 0;
    };
    auto setReg = [&](uint32_t r, uint64_t v) {
        if (r >= fr.regs.size())
            fr.regs.resize(r + 1, 0);
        fr.regs[r] = v & mask;
    };

    switch (in.op) {
      case MOp::Ldi:
        setReg(in.rd, static_cast<uint64_t>(in.imm));
        break;
      case MOp::Mov:
        setReg(in.rd, reg(in.ra));
        break;
      case MOp::Add:
        setReg(in.rd, reg(in.ra) + reg(in.rb));
        break;
      case MOp::Sub:
        setReg(in.rd, reg(in.ra) - reg(in.rb));
        break;
      case MOp::Mul:
        setReg(in.rd, reg(in.ra) * reg(in.rb));
        break;
      case MOp::DivU:
        setReg(in.rd,
               arith::udiv(reg(in.ra) & mask, reg(in.rb) & mask));
        break;
      case MOp::DivS: {
        int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
        int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
        if (in.w < 64) {
            if (static_cast<uint64_t>(a) >> (in.w - 1))
                a |= ~static_cast<int64_t>(mask);
            if (static_cast<uint64_t>(b) >> (in.w - 1))
                b |= ~static_cast<int64_t>(mask);
        }
        setReg(in.rd, static_cast<uint64_t>(arith::sdiv(a, b)));
        break;
      }
      case MOp::RemU:
        setReg(in.rd,
               arith::urem(reg(in.ra) & mask, reg(in.rb) & mask));
        break;
      case MOp::RemS: {
        int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
        int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
        if (in.w < 64) {
            if (static_cast<uint64_t>(a) >> (in.w - 1))
                a |= ~static_cast<int64_t>(mask);
            if (static_cast<uint64_t>(b) >> (in.w - 1))
                b |= ~static_cast<int64_t>(mask);
        }
        setReg(in.rd, static_cast<uint64_t>(arith::srem(a, b)));
        break;
      }
      case MOp::And:
        setReg(in.rd, reg(in.ra) & reg(in.rb));
        break;
      case MOp::Or:
        setReg(in.rd, reg(in.ra) | reg(in.rb));
        break;
      case MOp::Xor:
        setReg(in.rd, reg(in.ra) ^ reg(in.rb));
        break;
      case MOp::Shl:
        setReg(in.rd, reg(in.ra) << (reg(in.rb) & 63));
        break;
      case MOp::ShrU:
        setReg(in.rd, (reg(in.ra) & mask) >> (reg(in.rb) & 63));
        break;
      case MOp::ShrS: {
        int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
        if (in.w < 64 && (static_cast<uint64_t>(a) >> (in.w - 1)))
            a |= ~static_cast<int64_t>(mask);
        setReg(in.rd, static_cast<uint64_t>(a >> (reg(in.rb) & 63)));
        break;
      }
      case MOp::AddI:
        setReg(in.rd, reg(in.ra) + static_cast<uint64_t>(in.imm));
        break;
      case MOp::AndI:
        setReg(in.rd, reg(in.ra) & static_cast<uint64_t>(in.imm));
        break;
      case MOp::Neg:
        setReg(in.rd, 0 - reg(in.ra));
        break;
      case MOp::Not:
        setReg(in.rd, (reg(in.ra) & mask) == 0 ? 1 : 0);
        break;
      case MOp::BNot:
        setReg(in.rd, ~reg(in.ra));
        break;
      case MOp::Sext: {
        uint64_t v = reg(in.ra);
        uint8_t from = static_cast<uint8_t>(in.imm);
        uint64_t fmask = maskFor(from);
        v &= fmask;
        if (from < 64 && (v >> (from - 1)))
            v |= ~fmask;
        setReg(in.rd, v);
        break;
      }
      case MOp::SetC:
        setReg(in.rd,
               evalCond(in.cond, reg(in.ra), reg(in.rb), in.w) ? 1 : 0);
        break;
      case MOp::CmpBr:
        if (evalCond(in.cond, reg(in.ra), reg(in.rb), in.w)) {
            fr.block = in.target;
            fr.ip = 0;
        }
        break;
      case MOp::Jmp: {
        // A single-instruction block jumping to itself is a halt loop
        // (the failure handler's final state): spin awake forever.
        if (in.target == fr.block && bb.instrs.size() == 1) {
            wedged_ = true;
            return;
        }
        fr.block = in.target;
        fr.ip = 0;
        break;
      }
      case MOp::Ld:
        setReg(in.rd, loadMem(static_cast<uint32_t>(
                                  (reg(in.ra) + in.imm) & 0xFFFF),
                              in.w));
        break;
      case MOp::St:
        storeMem(
            static_cast<uint32_t>((reg(in.ra) + in.imm) & 0xFFFF),
            reg(in.rb), in.w);
        break;
      case MOp::Lea: {
        const MProgram::DataItem *d = prog_.findData(in.gid);
        setReg(in.rd, d ? (d->addr + in.imm) & 0xFFFF : 0);
        break;
      }
      case MOp::Leal:
        setReg(in.rd, (fr.fp + in.imm) & 0xFFFF);
        break;
      case MOp::Enter: {
        uint32_t size = static_cast<uint32_t>(in.imm);
        if (sp_ < size + 0x200) {
            halted_ = true;  // stack overflow
            return;
        }
        sp_ -= size;
        fr.fp = sp_;
        for (uint32_t i = 0; i < size; ++i)
            mem_[fr.fp + i] = 0;
        break;
      }
      case MOp::Leave:
        sp_ += static_cast<uint32_t>(in.imm);
        break;
      case MOp::SetArg: {
        size_t slot = static_cast<size_t>(in.imm);
        if (argBuf_.size() <= slot)
            argBuf_.resize(slot + 1, 0);
        argBuf_[slot] = reg(in.ra) & mask;
        break;
      }
      case MOp::GetRet: {
        size_t slot = static_cast<size_t>(in.imm);
        setReg(in.rd, slot < retBuf_.size() ? retBuf_[slot] : 0);
        break;
      }
      case MOp::SetRet: {
        size_t slot = static_cast<size_t>(in.imm);
        if (retBuf_.size() <= slot)
            retBuf_.resize(slot + 1, 0);
        retBuf_[slot] = reg(in.ra) & mask;
        break;
      }
      case MOp::Call: {
        auto it = funcByModuleId_.find(in.fn);
        if (it == funcByModuleId_.end()) {
            halted_ = true;
            return;
        }
        if (it->second == failFnIdx_ && !argBuf_.empty() &&
            failedFlid_ == 0) {
            failedFlid_ = static_cast<uint32_t>(argBuf_[0]);
        }
        retBuf_.clear();
        enterFunction(it->second, false);
        break;
      }
      case MOp::CallR: {
        uint64_t id = reg(in.ra);
        if (id == 0) {
            wedged_ = true;  // wild jump; model as a crash
            return;
        }
        auto it = funcByModuleId_.find(static_cast<uint32_t>(id - 1));
        if (it == funcByModuleId_.end()) {
            wedged_ = true;
            return;
        }
        retBuf_.clear();
        enterFunction(it->second, false);
        break;
      }
      case MOp::Ret:
      case MOp::Reti: {
        bool fromIrq = fr.fromIrq;
        frames_.pop_back();
        if (in.op == MOp::Reti || fromIrq)
            iflag_ = true;
        if (frames_.empty())
            halted_ = true;
        break;
      }
      case MOp::Sei:
        iflag_ = true;
        break;
      case MOp::Cli:
        iflag_ = false;
        break;
      case MOp::GetIf:
        setReg(in.rd, iflag_ ? 1 : 0);
        break;
      case MOp::SetIf:
        iflag_ = (reg(in.ra) & 1) != 0;
        break;
      case MOp::In:
        setReg(in.rd, dev_.ioRead(in.port, cycles_));
        break;
      case MOp::Out:
        dev_.ioWrite(in.port, static_cast<uint32_t>(reg(in.ra) & mask),
                     cycles_);
        break;
      case MOp::Sleep:
        // Low-power mode: time passes in runUntilCycle until the next
        // device event (or an incoming radio packet) wakes us.
        sleeping_ = true;
        break;
      case MOp::Halt:  // backend never emits this (decoded sentinel)
        halted_ = true;
        break;
      case MOp::Nop:
        break;
    }
}

//---------------------------------------------------------------------
// Predecoded core (event-horizon scheduling)
//---------------------------------------------------------------------

void
Machine::drainDeviceEvents()
{
    irqScratch_.clear();
    dev_.advanceTo(cycles_, irqScratch_);
    for (int v : irqScratch_)
        pendingIrqs_.push_back(v);
}

void
Machine::runPredecoded(uint64_t target)
{
    while (cycles_ < target && !halted_) {
        if (wedged_) {
            cycles_ = target;  // spinning awake in the failure stub
            return;
        }
        if (sleeping_) {
            uint64_t next = dev_.nextEventAt();
            if (next == UINT64_MAX || next > target) {
                sleepCycles_ += target - cycles_;
                cycles_ = target;
                return;
            }
            if (next > cycles_) {
                sleepCycles_ += next - cycles_;
                cycles_ = next;
            }
            sleeping_ = false;  // the event below wakes the core
        }
        drainDeviceEvents();
        dispatchIrqs();
        if (frames_.empty()) {
            halted_ = true;
            return;
        }
        // Event horizon: no device event can fire before this cycle,
        // so the instruction loop below never needs to consult the
        // hub. Like the legacy core, at least one instruction runs
        // per dispatch opportunity (an interrupt's 8-cycle latency
        // may already have crossed the horizon).
        uint64_t horizon = std::min(target, dev_.nextEventAt());
        // Cached frame/code/register pointers, refreshed only when a
        // call or return changes the top frame. The register file is
        // pre-sized at decode time to cover every operand index, so
        // accesses are unchecked.
        Frame *frp = &frames_.back();
        const DInstr *code = frp->df->instrs.data();
        uint64_t *regs = frp->regs.data();
        auto refreshFrame = [&] {
            frp = &frames_.back();
            code = frp->df->instrs.data();
            regs = frp->regs.data();
        };
        for (;;) {
            Frame &fr = *frp;
            const DInstr &in = code[fr.ip];
            if (in.op == MOp::Halt) {
                halted_ = true;
                break;
            }
            ++fr.ip;
            ++instrs_;
            cycles_ += in.cycles;
            const uint64_t mask = in.mask;
            auto reg = [&](uint32_t r) -> uint64_t { return regs[r]; };
            auto setReg = [&](uint32_t r, uint64_t v) {
                regs[r] = v & mask;
            };

            switch (in.op) {
              case MOp::Ldi:
                setReg(in.rd, static_cast<uint64_t>(in.imm));
                break;
              case MOp::Mov:
                setReg(in.rd, reg(in.ra));
                break;
              case MOp::Add:
                setReg(in.rd, reg(in.ra) + reg(in.rb));
                break;
              case MOp::Sub:
                setReg(in.rd, reg(in.ra) - reg(in.rb));
                break;
              case MOp::Mul:
                setReg(in.rd, reg(in.ra) * reg(in.rb));
                break;
              case MOp::DivU:
                setReg(in.rd, arith::udiv(reg(in.ra) & mask,
                                          reg(in.rb) & mask));
                break;
              case MOp::DivS: {
                int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
                int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
                if (in.w < 64) {
                    if (static_cast<uint64_t>(a) >> (in.w - 1))
                        a |= ~static_cast<int64_t>(mask);
                    if (static_cast<uint64_t>(b) >> (in.w - 1))
                        b |= ~static_cast<int64_t>(mask);
                }
                setReg(in.rd,
                       static_cast<uint64_t>(arith::sdiv(a, b)));
                break;
              }
              case MOp::RemU:
                setReg(in.rd, arith::urem(reg(in.ra) & mask,
                                          reg(in.rb) & mask));
                break;
              case MOp::RemS: {
                int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
                int64_t b = static_cast<int64_t>(reg(in.rb) & mask);
                if (in.w < 64) {
                    if (static_cast<uint64_t>(a) >> (in.w - 1))
                        a |= ~static_cast<int64_t>(mask);
                    if (static_cast<uint64_t>(b) >> (in.w - 1))
                        b |= ~static_cast<int64_t>(mask);
                }
                setReg(in.rd,
                       static_cast<uint64_t>(arith::srem(a, b)));
                break;
              }
              case MOp::And:
                setReg(in.rd, reg(in.ra) & reg(in.rb));
                break;
              case MOp::Or:
                setReg(in.rd, reg(in.ra) | reg(in.rb));
                break;
              case MOp::Xor:
                setReg(in.rd, reg(in.ra) ^ reg(in.rb));
                break;
              case MOp::Shl:
                setReg(in.rd, reg(in.ra) << (reg(in.rb) & 63));
                break;
              case MOp::ShrU:
                setReg(in.rd, (reg(in.ra) & mask) >> (reg(in.rb) & 63));
                break;
              case MOp::ShrS: {
                int64_t a = static_cast<int64_t>(reg(in.ra) & mask);
                if (in.w < 64 &&
                    (static_cast<uint64_t>(a) >> (in.w - 1)))
                    a |= ~static_cast<int64_t>(mask);
                setReg(in.rd,
                       static_cast<uint64_t>(a >> (reg(in.rb) & 63)));
                break;
              }
              case MOp::AddI:
                setReg(in.rd, reg(in.ra) + static_cast<uint64_t>(in.imm));
                break;
              case MOp::AndI:
                setReg(in.rd, reg(in.ra) & static_cast<uint64_t>(in.imm));
                break;
              case MOp::Neg:
                setReg(in.rd, 0 - reg(in.ra));
                break;
              case MOp::Not:
                setReg(in.rd, (reg(in.ra) & mask) == 0 ? 1 : 0);
                break;
              case MOp::BNot:
                setReg(in.rd, ~reg(in.ra));
                break;
              case MOp::Sext: {
                uint64_t v = reg(in.ra) & in.aux;
                uint8_t from = static_cast<uint8_t>(in.imm);
                if (from < 64 && (v >> (from - 1)))
                    v |= ~in.aux;
                setReg(in.rd, v);
                break;
              }
              case MOp::SetC:
                setReg(in.rd, evalCond(in.cond, reg(in.ra), reg(in.rb),
                                       in.w)
                                  ? 1
                                  : 0);
                break;
              case MOp::CmpBr:
                if (evalCond(in.cond, reg(in.ra), reg(in.rb), in.w))
                    fr.ip = in.target;
                break;
              case MOp::Jmp:
                if (in.wedge) {
                    wedged_ = true;
                    break;
                }
                fr.ip = in.target;
                break;
              case MOp::Ld:
                setReg(in.rd, loadMem(static_cast<uint32_t>(
                                          (reg(in.ra) + in.imm) & 0xFFFF),
                                      in.w));
                break;
              case MOp::St:
                storeMem(
                    static_cast<uint32_t>((reg(in.ra) + in.imm) & 0xFFFF),
                    reg(in.rb), in.w);
                break;
              case MOp::Lea:
                setReg(in.rd, in.aux);  // resolved at decode time
                break;
              case MOp::Leal:
                setReg(in.rd, (fr.fp + in.imm) & 0xFFFF);
                break;
              case MOp::Enter: {
                uint32_t size = static_cast<uint32_t>(in.imm);
                if (sp_ < size + 0x200) {
                    halted_ = true;  // stack overflow
                    break;
                }
                sp_ -= size;
                fr.fp = sp_;
                for (uint32_t i = 0; i < size; ++i)
                    mem_[fr.fp + i] = 0;
                break;
              }
              case MOp::Leave:
                sp_ += static_cast<uint32_t>(in.imm);
                break;
              case MOp::SetArg: {
                size_t slot = static_cast<size_t>(in.imm);
                if (argBuf_.size() <= slot)
                    argBuf_.resize(slot + 1, 0);
                argBuf_[slot] = reg(in.ra) & mask;
                break;
              }
              case MOp::GetRet: {
                size_t slot = static_cast<size_t>(in.imm);
                setReg(in.rd, slot < retBuf_.size() ? retBuf_[slot] : 0);
                break;
              }
              case MOp::SetRet: {
                size_t slot = static_cast<size_t>(in.imm);
                if (retBuf_.size() <= slot)
                    retBuf_.resize(slot + 1, 0);
                retBuf_[slot] = reg(in.ra) & mask;
                break;
              }
              case MOp::Call: {
                if (in.callIdx < 0) {
                    halted_ = true;
                    break;
                }
                if (in.callsFail && !argBuf_.empty() &&
                    failedFlid_ == 0) {
                    failedFlid_ = static_cast<uint32_t>(argBuf_[0]);
                }
                retBuf_.clear();
                enterFunction(static_cast<uint32_t>(in.callIdx), false);
                refreshFrame();
                break;
              }
              case MOp::CallR: {
                uint64_t id = reg(in.ra);
                // Mirror the legacy core exactly: the function id is
                // truncated to 32 bits before resolution.
                int32_t idx = id == 0
                                  ? -1
                                  : decoded_->funcIndexForId(
                                        static_cast<uint32_t>(id - 1));
                if (idx < 0) {
                    wedged_ = true;  // wild jump; model as a crash
                    break;
                }
                retBuf_.clear();
                enterFunction(static_cast<uint32_t>(idx), false);
                refreshFrame();
                break;
              }
              case MOp::Ret:
              case MOp::Reti: {
                bool fromIrq = fr.fromIrq;
                frames_.pop_back();
                if (in.op == MOp::Reti || fromIrq)
                    iflag_ = true;
                if (frames_.empty())
                    halted_ = true;
                else
                    refreshFrame();
                break;
              }
              case MOp::Sei:
                iflag_ = true;
                break;
              case MOp::Cli:
                iflag_ = false;
                break;
              case MOp::GetIf:
                setReg(in.rd, iflag_ ? 1 : 0);
                break;
              case MOp::SetIf:
                iflag_ = (reg(in.ra) & 1) != 0;
                break;
              case MOp::In:
                setReg(in.rd, dev_.ioRead(in.port, cycles_));
                // I/O may repoint the hub's schedule (e.g. FIFO pops);
                // stay conservative and re-aim the horizon.
                horizon = std::min(target, dev_.nextEventAt());
                break;
              case MOp::Out:
                dev_.ioWrite(in.port,
                             static_cast<uint32_t>(reg(in.ra) & mask),
                             cycles_);
                // Starting a timer/ADC/radio moves the next event.
                horizon = std::min(target, dev_.nextEventAt());
                break;
              case MOp::Sleep:
                sleeping_ = true;
                break;
              case MOp::Halt:  // handled before accounting
                break;
              case MOp::Nop:
                break;
            }

            if (halted_ || wedged_ || sleeping_)
                break;
            // A Reti/Sei/SetIf may have re-enabled interrupts while
            // requests are queued: let the outer loop dispatch.
            if (iflag_ && irqPending())
                break;
            if (cycles_ >= horizon)
                break;
        }
    }
}

//---------------------------------------------------------------------
// Network
//---------------------------------------------------------------------

Machine &
Network::attachMote(std::unique_ptr<Machine> m)
{
    motes_.push_back(std::move(m));
    Machine *self = motes_.back().get();
    size_t selfIdx = motes_.size() - 1;
    self->devices().onSend = [this, selfIdx](const Packet &p) {
        uint64_t at = motes_[selfIdx]->cycles() + kAirLatency;
        if (bufferSends_)
            outboxes_[selfIdx].push_back({p, at});
        else
            deliverFrom(selfIdx, p, at);
    };
    return *self;
}

void
Network::deliverFrom(size_t senderIdx, const Packet &p, uint64_t at)
{
    for (size_t i = 0; i < motes_.size(); ++i) {
        if (i == senderIdx)
            continue;
        motes_[i]->devices().deliver(p, at);
    }
}

Machine &
Network::addMote(const MProgram &prog, uint8_t nodeId)
{
    return attachMote(
        std::make_unique<Machine>(prog, nodeId, opts_.mode));
}

Machine &
Network::addMote(std::shared_ptr<const DecodedProgram> prog,
                 uint8_t nodeId)
{
    return attachMote(std::make_unique<Machine>(std::move(prog), nodeId));
}

uint64_t
Network::windowEnd(uint64_t t, uint64_t end) const
{
    if (!opts_.lookahead)
        return std::min(t + kQuantum, end);
    // A lone mote has nobody to synchronize with.
    if (motes_.size() <= 1)
        return end;
    // Conservative lookahead: the window may extend to the earliest
    // cycle at which one mote could influence another. Transmitting
    // one radio byte takes kCyclesPerRadioByte cycles and propagation
    // another kAirLatency, so a transmission *started* inside the
    // window cannot arrive before
    //   start + kCyclesPerRadioByte + kAirLatency;
    // a sleeping mote cannot start one before its next wakeup, and a
    // transmission already in flight arrives no earlier than its
    // completion + kAirLatency. Windows also close at the next
    // already-queued delivery so they align with radio activity. For
    // the paper's duty-cycle workloads (motes asleep between timer
    // ticks) this fast-forwards whole sleep periods per window, the
    // Avrora sleep/event trick combined with lookahead.
    uint64_t te = end;
    for (const auto &m : motes_) {
        const Machine &mote = *m;
        if (mote.halted() || mote.wedged())
            continue;  // executes nothing: cannot transmit
        const DeviceHub &dev = mote.devices();
        uint64_t at = dev.nextRxDeliveryAt();
        if (at > t && at < te)
            te = at;
        uint64_t tx = dev.txDoneAt();
        if (tx != UINT64_MAX && tx + kAirLatency < te)
            te = tx + kAirLatency;
        uint64_t wake = t;
        if (mote.sleeping()) {
            uint64_t next = dev.nextEventAt();
            if (next == UINT64_MAX)
                continue;  // sleeps forever: cannot transmit
            wake = std::max(t, next);
        }
        uint64_t influence =
            wake + DeviceHub::kCyclesPerRadioByte + kAirLatency;
        if (influence < te)
            te = influence;
    }
    return std::max(te, t + 1);  // guarantee forward progress
}

void
Network::runSerial(uint64_t start, uint64_t end)
{
    for (uint64_t t = start; t < end;) {
        // Clamp the final window so a request that is not a multiple
        // of the window never runs past `end` (it would inflate every
        // duty-cycle measurement).
        uint64_t te = windowEnd(t, end);
        for (auto &m : motes_)
            m->runUntilCycle(te);
        t = te;
    }
}

void
Network::runParallel(uint64_t start, uint64_t end, unsigned threads)
{
    outboxes_.assign(motes_.size(), {});
    bufferSends_ = true;
    uint64_t t = start;
    uint64_t te = windowEnd(t, end);
    bool done = t >= end;
    // The completion step runs on exactly one thread while everyone
    // else waits at the barrier: flush the buffered radio sends in
    // sender-index order (the serial delivery order), then open the
    // next window.
    std::barrier sync(static_cast<std::ptrdiff_t>(threads),
                      [&]() noexcept {
                          for (size_t i = 0; i < outboxes_.size(); ++i) {
                              for (const Send &s : outboxes_[i])
                                  deliverFrom(i, s.p, s.at);
                              outboxes_[i].clear();
                          }
                          t = te;
                          if (t >= end)
                              done = true;
                          else
                              te = windowEnd(t, end);
                      });
    auto worker = [&](unsigned tid) {
        // Fixed stride partition: each mote belongs to one thread for
        // the whole run, so no mote is ever touched by two threads.
        while (!done) {
            uint64_t wEnd = te;
            for (size_t i = tid; i < motes_.size(); i += threads)
                motes_[i]->runUntilCycle(wEnd);
            sync.arrive_and_wait();
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned tid = 1; tid < threads; ++tid)
        pool.emplace_back(worker, tid);
    worker(0);
    for (auto &th : pool)
        th.join();
    bufferSends_ = false;
}

void
Network::run(uint64_t cycles)
{
    if (!booted_) {
        for (auto &m : motes_)
            m->boot();
        booted_ = true;
    }
    if (motes_.empty())
        return;
    uint64_t start = motes_[0]->cycles();
    uint64_t end = start + cycles;
    unsigned threads = opts_.threads;
    if (threads > motes_.size())
        threads = static_cast<unsigned>(motes_.size());
    if (threads > 1 && opts_.lookahead)
        runParallel(start, end, threads);
    else
        runSerial(start, end);
}

} // namespace stos::sim
