/**
 * @file
 * Fault-plan compilation and the pure per-delivery radio fault draw.
 */
#include "sim/fault.h"

#include <algorithm>
#include <cstdlib>

namespace stos::sim {

namespace {

/** splitmix64: the one-instruction-deep seeded generator the fuzzer
 *  already trusts for reproducible randomness. */
uint64_t
splitmix(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** One finalization round, for mixing fixed inputs into a state. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

double
unitUniform(uint64_t &state)
{
    return static_cast<double>(splitmix(state) >> 11) * 0x1.0p-53;
}

uint64_t
fnv1a(const void *data, size_t n, uint64_t h = 0xCBF29CE484222325ull)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace

const char *
recoveryPolicyName(RecoveryPolicy p)
{
    switch (p) {
      case RecoveryPolicy::Wedge: return "wedge";
      case RecoveryPolicy::RebootOnTrap: return "reboot-on-trap";
      case RecoveryPolicy::RebootOnWedge: return "reboot-on-wedge";
    }
    return "?";
}

bool
parseRecoveryPolicy(const std::string &s, RecoveryPolicy *out)
{
    if (s == "wedge")
        *out = RecoveryPolicy::Wedge;
    else if (s == "reboot-on-trap")
        *out = RecoveryPolicy::RebootOnTrap;
    else if (s == "reboot-on-wedge")
        *out = RecoveryPolicy::RebootOnWedge;
    else
        return false;
    return true;
}

bool
parseFaultSpec(const std::string &spec, FaultOptions *out,
               std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail("expected key=value, got '" + item + "'");
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        char *rest = nullptr;
        if (key == "mem" || key == "reg" || key == "crash" ||
            key == "ptr" || key == "ret") {
            unsigned long n = std::strtoul(val.c_str(), &rest, 10);
            if (!rest || *rest)
                return fail("bad count for '" + key + "': " + val);
            if (key == "mem")
                out->memFlips = static_cast<uint32_t>(n);
            else if (key == "reg")
                out->regFlips = static_cast<uint32_t>(n);
            else if (key == "ptr")
                out->ptrOverwrites = static_cast<uint32_t>(n);
            else if (key == "ret")
                out->retSmashes = static_cast<uint32_t>(n);
            else
                out->crashes = static_cast<uint32_t>(n);
        } else if (key == "val") {
            unsigned long long n = std::strtoull(val.c_str(), &rest, 0);
            if (!rest || *rest)
                return fail("bad value for 'val': " + val);
            out->attackValue = n;
        } else if (key == "target") {
            out->attackGlobal = val;
        } else if (key == "loss" || key == "corrupt" || key == "dup") {
            double r = std::strtod(val.c_str(), &rest);
            if (!rest || *rest || r < 0.0 || r > 1.0)
                return fail("bad rate for '" + key + "': " + val);
            if (key == "loss")
                out->radioLoss = r;
            else if (key == "corrupt")
                out->radioCorrupt = r;
            else
                out->radioDup = r;
        } else {
            return fail("unknown fault key '" + key + "'");
        }
    }
    return true;
}

std::vector<FaultEvent>
scheduleFaults(const FaultOptions &o, uint8_t nodeId, uint64_t begin,
               uint64_t end)
{
    std::vector<FaultEvent> events;
    if (end <= begin + 1)
        return events;
    uint64_t span = end - begin;
    // Skip the first sixteenth of the span so the firmware finishes
    // booting before faults land (faulting pre-init state mostly
    // exercises nothing).
    uint64_t lo = span / 16 + 1;
    if (lo >= span)
        lo = 1;
    uint64_t range = span - lo;
    uint64_t state = mix64(o.seed ^ (0x9E3779B97F4A7C15ull *
                                     (nodeId + 1)));
    auto schedule = [&](FaultKind kind, uint32_t count) {
        for (uint32_t i = 0; i < count; ++i) {
            FaultEvent e;
            e.kind = kind;
            e.at = begin + lo +
                   (range ? splitmix(state) % range : 0);
            e.addr = static_cast<uint32_t>(splitmix(state));
            e.bit = static_cast<uint8_t>(splitmix(state) & 0xF);
            events.push_back(e);
        }
    };
    schedule(FaultKind::MemFlip, o.memFlips);
    schedule(FaultKind::RegFlip, o.regFlips);
    schedule(FaultKind::Crash, o.crashes);
    // Attack-shaped faults carry their payload instead of random
    // addr/bit draws (the draws still advance the generator so adding
    // an attack to a campaign never perturbs the SEU plan positions).
    size_t firstAttack = events.size();
    schedule(FaultKind::PtrOverwrite, o.ptrOverwrites);
    schedule(FaultKind::RetSmash, o.retSmashes);
    for (size_t i = firstAttack; i < events.size(); ++i) {
        events[i].value = o.attackValue;
        if (events[i].kind == FaultKind::PtrOverwrite)
            events[i].targetGlobal = o.attackGlobal;
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return events;
}

RadioFaultDecision
radioFaultsFor(const FaultOptions &o, uint8_t src, uint8_t dst,
               uint64_t at, const std::vector<uint8_t> &bytes)
{
    RadioFaultDecision d;
    uint64_t h = fnv1a(bytes.data(), bytes.size());
    uint64_t state =
        mix64(o.seed ^ mix64(h ^ (at * 0x9E3779B97F4A7C15ull) ^
                             (static_cast<uint64_t>(src) << 8) ^ dst));
    if (unitUniform(state) < o.radioLoss) {
        d.drop = true;
        return d;
    }
    if (unitUniform(state) < o.radioCorrupt) {
        d.corrupt = true;
        d.corruptByte = static_cast<uint32_t>(splitmix(state));
        d.corruptBit = static_cast<uint8_t>(splitmix(state) & 7);
    }
    if (unitUniform(state) < o.radioDup)
        d.dup = true;
    return d;
}

uint64_t
mixSeed(uint64_t seed, const std::string &label)
{
    return mix64(seed ^ fnv1a(label.data(), label.size()));
}

} // namespace stos::sim
