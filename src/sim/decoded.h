/**
 * @file
 * Predecoded firmware images for the simulator. A DecodedProgram is
 * built once per MProgram and flattens every function's basic blocks
 * into a single instruction array, resolving at decode time every
 * static fact the interpreter would otherwise re-derive per executed
 * instruction: cycle cost, width mask, branch targets as instruction
 * offsets, Call targets as function indices (killing the per-call map
 * lookup), Lea operands as absolute addresses (killing the linear
 * data-layout scan), and the self-loop Jmp that marks a wedged
 * failure stub. The decode is immutable and therefore shared — all
 * motes of a network, and all SimDriver cells running the same
 * firmware (memoized companions in particular), execute one decode.
 */
#ifndef STOS_SIM_DECODED_H
#define STOS_SIM_DECODED_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/minstr.h"

namespace stos::sim {

/** maskFor(w) without the Machine: low-w-bits mask (w >= 64 = all). */
inline uint64_t
widthMask(uint8_t w)
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

/** One flattened instruction with its static facts precomputed. */
struct DInstr {
    backend::MOp op = backend::MOp::Nop;
    uint8_t w = 16;
    backend::MCond cond = backend::MCond::Eq;
    /** Jmp forming a single-instruction self loop (the wedge state). */
    bool wedge = false;
    /** Call whose resolved target is the failure stub. */
    bool callsFail = false;
    uint32_t rd = 0, ra = 0, rb = 0;
    int64_t imm = 0;
    uint64_t mask = 0xFFFF;  ///< widthMask(w)
    uint64_t aux = 0;        ///< Sext: from-mask; Lea: resolved address
    uint32_t target = 0;     ///< branch target as an instruction offset
    uint32_t cycles = 1;     ///< MProgram::instrCycles(in)
    int32_t callIdx = -1;    ///< Call: resolved funcs index (-1 = unlinked)
    uint32_t port = 0;       ///< In/Out io address
};

/** One flattened function: blocks laid out in order + Halt sentinel. */
struct DFunc {
    std::vector<DInstr> instrs;
    std::vector<uint32_t> blockStart;  ///< block index -> instr offset
    /**
     * Register-file size covering every operand index any instruction
     * of the function names, so the execution loop never bounds-checks
     * or grows the file (out-of-range reads still see the 0 the legacy
     * core would synthesize).
     */
    uint32_t numRegs = 1;
    /**
     * The declared max(MFunc::numRegs, 1) — the legacy core's
     * register-file size, which also bounds how many incoming
     * arguments land in registers. Kept separately so the padded
     * numRegs above never lets an argument through that the legacy
     * core would drop.
     */
    uint32_t argRegs = 1;
};

/**
 * The immutable predecode of one linked firmware image. Construction
 * is the only mutation; afterwards any number of Machines (on any
 * number of threads) may execute it concurrently.
 */
class DecodedProgram {
  public:
    /** Decode `prog`; the caller keeps `prog` alive for the decode. */
    explicit DecodedProgram(const backend::MProgram &prog);
    /** Decode an owned image (kept alive by the decode itself). */
    explicit DecodedProgram(std::shared_ptr<const backend::MProgram> prog);

    const backend::MProgram &program() const { return *prog_; }
    const std::vector<DFunc> &funcs() const { return funcs_; }
    uint32_t entry() const { return prog_->entry; }

    /** Interrupt vector -> funcs index (-1 = unhandled). */
    const int32_t *vectors() const { return vectors_.data(); }
    size_t numVectors() const { return vectors_.size(); }

    /** Module function id -> funcs index (-1 = not linked). */
    int32_t
    funcIndexForId(uint64_t moduleId) const
    {
        return moduleId < funcIdxById_.size()
                   ? funcIdxById_[static_cast<size_t>(moduleId)]
                   : -1;
    }

    /** funcs index of the failure stub (~0u = none). */
    uint32_t failFnIdx() const { return failFnIdx_; }

    /** 64 KiB memory image with static-data initializers applied. */
    const std::vector<uint8_t> &memInit() const { return memInit_; }

    /** Layout info for a named global; null if absent. */
    const backend::MProgram::DataItem *
    findDataByName(const std::string &name) const;

  private:
    void decode();

    const backend::MProgram *prog_;
    std::shared_ptr<const backend::MProgram> owner_;
    std::vector<DFunc> funcs_;
    std::vector<int32_t> vectors_;
    std::vector<int32_t> funcIdxById_;
    std::map<std::string, const backend::MProgram::DataItem *>
        dataByName_;
    std::vector<uint8_t> memInit_;
    uint32_t failFnIdx_ = ~0u;
};

} // namespace stos::sim

#endif
