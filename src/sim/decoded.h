/**
 * @file
 * Predecoded firmware images for the simulator. A DecodedProgram is
 * built once per MProgram and flattens every function's basic blocks
 * into a single instruction array, resolving at decode time every
 * static fact the interpreter would otherwise re-derive per executed
 * instruction: cycle cost, branch targets as instruction offsets,
 * Call targets as function indices (killing the per-call map lookup),
 * Lea operands as absolute addresses (killing the linear data-layout
 * scan), and the self-loop Jmp that marks a wedged failure stub. The
 * decode is immutable and therefore shared — all motes of a network,
 * and all SimDriver cells running the same firmware (memoized
 * companions in particular), execute one decode.
 *
 * Two execution streams are produced per function:
 *
 *  - `instrs` is the plain flattened stream the Predecoded core
 *    executes — one DInstr per MInstr plus a Halt sentinel.
 *  - `fused` is the direct-threaded stream the Threaded core
 *    executes: identical offsets (so branch targets and frame ip
 *    values mean the same thing in both), but with hot
 *    two-instruction sequences rewritten into superinstructions at
 *    the first instruction's slot. The second original instruction is
 *    left in place so a superinstruction that crosses the event
 *    horizon mid-pair can stop after its first half with `ip`
 *    pointing at a valid continuation — which is what keeps fused
 *    execution byte-identical to the unfused cores at every device,
 *    fault, and interrupt boundary.
 *
 * DInstr itself is 24 bytes (down from 64): branch target, call
 * index, and I/O port share one field; the width mask and the Sext
 * source mask are re-derived from the stored widths; and the rare
 * immediate that does not fit in 32 bits moves to a per-function
 * cold side table (`DFunc::wideImms`) indexed through the inline
 * immediate field.
 */
#ifndef STOS_SIM_DECODED_H
#define STOS_SIM_DECODED_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/minstr.h"

namespace stos::sim {

/** maskFor(w) without the Machine: low-w-bits mask (w >= 64 = all). */
inline uint64_t
widthMask(uint8_t w)
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

/** One flattened instruction with its static facts precomputed. */
struct DInstr {
    /**
     * Inline immediate. When kWideImm is set the value did not fit
     * in 32 bits and this is instead an index into the owning
     * function's wideImms side table (see DFunc::imm below, the only
     * accessor the cores use).
     */
    int32_t imm = 0;
    /**
     * Per-op second operand: branch target as an instruction offset
     * (CmpBr/Jmp/SSChk/FCmpBrI), resolved funcs index as callIdx+1
     * with 0 = unlinked (Call), I/O address (In/Out), and the second
     * sub-instruction's immediate/offset/slot for fused ops.
     */
    uint32_t aux = 0;
    uint16_t rd = 0, ra = 0, rb = 0;
    uint16_t cycles = 1;   ///< MProgram::instrCycles (first sub-op)
    uint16_t cycles2 = 0;  ///< fused ops: second sub-op's cycle cost
    backend::MOp op = backend::MOp::Nop;
    uint8_t w = 16;
    backend::MCond cond = backend::MCond::Eq;
    uint8_t flags = 0;
    uint8_t w2 = 16;  ///< fused ops: second sub-op's width

    enum : uint8_t {
        /** Jmp forming a single-instruction self loop (wedged). */
        kWedge = 1,
        /** Call whose resolved target is the failure stub. */
        kCallsFail = 2,
        /** imm indexes DFunc::wideImms instead of holding the value. */
        kWideImm = 4,
    };

    bool wedge() const { return flags & kWedge; }
    bool callsFail() const { return flags & kCallsFail; }
    uint64_t mask() const { return widthMask(w); }
    uint32_t target() const { return aux; }
    int32_t callIdx() const { return static_cast<int32_t>(aux) - 1; }
    uint32_t port() const { return aux; }
};

/**
 * The decode-time footprint win must not silently regress: the whole
 * point of the compact encoding is that between two and three
 * instructions share every cache line the execution loop touches.
 */
static_assert(sizeof(DInstr) <= 32, "DInstr grew past its budget");
static_assert(sizeof(DInstr) == 24, "DInstr layout changed");

/** One flattened function: blocks laid out in order + Halt sentinel. */
struct DFunc {
    std::vector<DInstr> instrs;
    /**
     * The direct-threaded stream: same length and offsets as
     * `instrs`, with fused superinstructions substituted at pair
     * heads (the pair's second instruction kept in place as the
     * mid-pair continuation).
     */
    std::vector<DInstr> fused;
    std::vector<uint32_t> blockStart;  ///< block index -> instr offset
    /** Cold side table for immediates wider than 32 bits. */
    std::vector<int64_t> wideImms;
    /**
     * Register-file size covering every operand index any instruction
     * of the function names, so the execution loop never bounds-checks
     * or grows the file (out-of-range reads still see the 0 the legacy
     * core would synthesize).
     */
    uint32_t numRegs = 1;
    /**
     * The declared max(MFunc::numRegs, 1) — the legacy core's
     * register-file size, which also bounds how many incoming
     * arguments land in registers. Kept separately so the padded
     * numRegs above never lets an argument through that the legacy
     * core would drop.
     */
    uint32_t argRegs = 1;

    /** The instruction's (possibly side-table) immediate. */
    int64_t
    imm(const DInstr &in) const
    {
        return (in.flags & DInstr::kWideImm)
                   ? wideImms[static_cast<uint32_t>(in.imm)]
                   : in.imm;
    }
    /** Fused ops: the second sub-instruction's immediate (aux). */
    int64_t imm2(const DInstr &in) const
    {
        return static_cast<int32_t>(in.aux);
    }
};

/**
 * The immutable predecode of one linked firmware image. Construction
 * is the only mutation; afterwards any number of Machines (on any
 * number of threads) may execute it concurrently.
 */
class DecodedProgram {
  public:
    /** Decode `prog`; the caller keeps `prog` alive for the decode. */
    explicit DecodedProgram(const backend::MProgram &prog);
    /** Decode an owned image (kept alive by the decode itself). */
    explicit DecodedProgram(std::shared_ptr<const backend::MProgram> prog);

    const backend::MProgram &program() const { return *prog_; }
    const std::vector<DFunc> &funcs() const { return funcs_; }
    uint32_t entry() const { return prog_->entry; }

    /** Interrupt vector -> funcs index (-1 = unhandled). */
    const int32_t *vectors() const { return vectors_.data(); }
    size_t numVectors() const { return vectors_.size(); }

    /** Module function id -> funcs index (-1 = not linked). */
    int32_t
    funcIndexForId(uint64_t moduleId) const
    {
        return moduleId < funcIdxById_.size()
                   ? funcIdxById_[static_cast<size_t>(moduleId)]
                   : -1;
    }

    /** funcs index of the failure stub (~0u = none). */
    uint32_t failFnIdx() const { return failFnIdx_; }

    /** 64 KiB memory image with static-data initializers applied. */
    const std::vector<uint8_t> &memInit() const { return memInit_; }

    /** Layout info for a named global; null if absent. */
    const backend::MProgram::DataItem *
    findDataByName(const std::string &name) const;

    /** Superinstructions substituted by the fusion pass (all funcs). */
    size_t fusedPairs() const { return fusedPairs_; }

  private:
    void decode();
    void fuse(DFunc &df);

    const backend::MProgram *prog_;
    std::shared_ptr<const backend::MProgram> owner_;
    std::vector<DFunc> funcs_;
    std::vector<int32_t> vectors_;
    std::vector<int32_t> funcIdxById_;
    std::map<std::string, const backend::MProgram::DataItem *>
        dataByName_;
    std::vector<uint8_t> memInit_;
    uint32_t failFnIdx_ = ~0u;
    size_t fusedPairs_ = 0;
};

} // namespace stos::sim

#endif
