/**
 * @file
 * Cycle-accurate mote simulator (the Avrora analogue). Executes a
 * linked MProgram with the target's per-instruction cycle costs,
 * dispatches device interrupts between instructions, fast-forwards
 * time across SLEEP, and accounts the duty cycle (awake / total
 * cycles) that the paper's Figure 3(c) reports.
 *
 * Three interpreter cores share one device model and one observable
 * behaviour:
 *
 *  - ExecMode::Legacy is the original reference interpreter: it
 *    re-derives static facts (cycle cost, width masks, call targets,
 *    data addresses) on every executed instruction and polls the
 *    device hub between every step.
 *  - ExecMode::Predecoded executes a sim::DecodedProgram (built once
 *    per image, shareable across motes and threads) in an
 *    event-horizon loop: the device hub is consulted once per horizon
 *    — min(target, next device event) — and a tight instruction loop
 *    runs untouched until the horizon, an I/O access, or a wakeup.
 *  - ExecMode::Threaded executes the same DecodedProgram's fused
 *    direct-threaded stream (sim/threaded.cpp): computed-goto
 *    dispatch with per-opcode exit checks, superinstructions for hot
 *    pairs, and adaptive horizons that re-aim only when the device
 *    hub's schedule version actually moved.
 *
 * The equivalence suite holds all three cores identical on every
 * counter (cycles, awake cycles, instructions, flid, uart log).
 */
#ifndef STOS_SIM_MACHINE_H
#define STOS_SIM_MACHINE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/minstr.h"
#include "sim/decoded.h"
#include "sim/devices.h"
#include "sim/fault.h"

namespace stos::core {
class WorkerPool;
}

namespace stos::sim {

/** Which interpreter core executes the firmware. */
enum class ExecMode {
    Legacy,      ///< reference core: per-step re-derivation + hub polls
    Predecoded,  ///< DecodedProgram + event-horizon scheduling
    /**
     * Direct-threaded core: executes the DecodedProgram's fused
     * stream with computed-goto dispatch (portable switch fallback
     * behind STOS_THREADED_SWITCH) and adaptive event horizons —
     * identical observable behaviour to the other two cores.
     */
    Threaded,
};

class Machine {
  public:
    explicit Machine(const backend::MProgram &prog, uint8_t nodeId = 1,
                     ExecMode mode = ExecMode::Predecoded);
    /** Execute a shared immutable predecode (no per-mote decode). */
    explicit Machine(std::shared_ptr<const DecodedProgram> prog,
                     uint8_t nodeId = 1,
                     ExecMode mode = ExecMode::Predecoded);

    /** Start executing at the entry point (call before runUntil). */
    void boot();

    /** Run until the local cycle counter reaches `cycle`. */
    void runUntilCycle(uint64_t cycle);

    ExecMode mode() const { return mode_; }

    bool halted() const { return halted_; }
    /** Stuck in a failure-handler self loop. */
    bool wedged() const { return wedged_; }
    /** In low-power mode awaiting the next device event. */
    bool sleeping() const { return sleeping_; }
    /** Mid-reboot (powered but not executing) until downUntil(). */
    bool down() const { return down_; }
    uint64_t downUntil() const { return downUntil_; }
    /** First recorded trap's FLID (0 = none) — the backward-
     *  compatible view of the bounded trap log below. */
    uint32_t
    failedFlid() const
    {
        return trapLog_.empty() ? 0 : trapLog_.front().flid;
    }
    /** Bounded log of safety traps (flid, cycle, function index). */
    const std::vector<TrapEntry> &trapLog() const { return trapLog_; }
    uint32_t traps() const { return traps_; }
    /** Subset of traps() fired by CFI checks (forward-edge label or
     *  shadow-stack return mismatches, per MProgram::flidKinds). */
    uint32_t cfiTraps() const { return cfiTraps_; }
    uint32_t reboots() const { return reboots_; }
    uint32_t crashes() const { return crashes_; }
    uint64_t downCycles() const { return downCycles_; }
    uint64_t wedgedCycles() const { return wedgedCycles_; }
    /** Fraction of simulated time spent up (not rebooting/wedged). */
    double
    availability() const
    {
        if (!cycles_)
            return 1.0;
        return static_cast<double>(cycles_ - downCycles_ -
                                   wedgedCycles_) /
               static_cast<double>(cycles_);
    }

    //--- fault injection (sim/fault.h) ----------------------------
    void setRecoveryPolicy(RecoveryPolicy p) { recovery_ = p; }
    RecoveryPolicy recoveryPolicy() const { return recovery_; }
    /** Install the sorted state-fault schedule for this mote. */
    void setFaultEvents(std::vector<FaultEvent> events);
    /** Next scheduled state fault (UINT64_MAX = none pending). */
    uint64_t
    nextFaultAt() const
    {
        return faultIdx_ < faultEvents_.size()
                   ? faultEvents_[faultIdx_].at
                   : UINT64_MAX;
    }

    uint64_t cycles() const { return cycles_; }
    uint64_t awakeCycles() const { return cycles_ - sleepCycles_; }
    double
    dutyCycle() const
    {
        return cycles_ ? static_cast<double>(awakeCycles()) /
                             static_cast<double>(cycles_)
                       : 0.0;
    }

    DeviceHub &devices() { return dev_; }
    const DeviceHub &devices() const { return dev_; }

    /** Read a global's current RAM/ROM bytes (little-endian). */
    uint64_t readGlobal(const std::string &name, uint32_t size) const;
    bool hasGlobal(const std::string &name) const;

    uint64_t instructionsExecuted() const { return instrs_; }

  private:
    struct Frame {
        uint32_t funcIdx = 0;
        uint32_t block = 0;            ///< legacy core: block index
        size_t ip = 0;                 ///< legacy: in-block; predecoded: flat
        const DFunc *df = nullptr;     ///< predecoded core
        uint32_t fp = 0;
        std::vector<uint64_t> regs;
        bool fromIrq = false;
    };

    void runLegacy(uint64_t target);
    void runPredecoded(uint64_t target);
    void runThreaded(uint64_t target);
    void step();
    void dispatchIrqs();
    void enterFunction(uint32_t funcIdx, bool fromIrq);
    /** Pop the active frame, parking its storage for reuse. */
    void popFrame();
    void recordTrap(uint32_t flid, uint32_t pc);
    void startReboot();
    void resetMemoryImage();
    void computeRamSpan();
    /** Apply every scheduled fault due at the current cycle. */
    void applyFaultsDue();
    void applyFault(const FaultEvent &e);
    uint64_t maskFor(uint8_t w) const;
    uint64_t loadMem(uint32_t addr, uint8_t w) const;
    void storeMem(uint32_t addr, uint64_t v, uint8_t w);
    bool evalCond(backend::MCond c, uint64_t a, uint64_t b,
                  uint8_t w) const;

    bool irqPending() const { return irqHead_ != pendingIrqs_.size(); }
    void drainDeviceEvents();

    ExecMode mode_;
    std::shared_ptr<const DecodedProgram> decoded_;  ///< null in legacy
    const backend::MProgram &prog_;
    DeviceHub dev_;
    std::map<uint32_t, uint32_t> funcByModuleId_;         ///< legacy only
    std::map<std::string, const backend::MProgram::DataItem *>
        dataByName_;                                      ///< legacy only
    const int *vectors_ = nullptr;  ///< cached interrupt vector table
    size_t numVectors_ = 0;

    std::vector<uint8_t> mem_;
    uint32_t sp_;
    std::vector<Frame> frames_;
    /**
     * Recycled frame storage: popped frames park here so the next
     * call reuses their regs capacity. Steady-state call/return pairs
     * touch no allocator; the pool is bounded by the same depth-64
     * runaway-recursion limit as frames_.
     */
    std::vector<Frame> framePool_;
    std::vector<uint64_t> argBuf_;
    std::vector<uint64_t> retBuf_;
    bool iflag_ = true;
    /** Pending interrupt queue: vector + read index (O(1) pop). */
    std::vector<int> pendingIrqs_;
    size_t irqHead_ = 0;
    /** Reusable scratch for DeviceHub::advanceTo (no per-step alloc). */
    std::vector<int> irqScratch_;
    uint64_t cycles_ = 0;
    uint64_t sleepCycles_ = 0;
    uint64_t instrs_ = 0;
    bool halted_ = false;
    bool wedged_ = false;
    bool sleeping_ = false;
    uint32_t failFnIdx_ = ~0u;
    // Fault injection and recovery (sim/fault.h).
    RecoveryPolicy recovery_ = RecoveryPolicy::Wedge;
    std::vector<FaultEvent> faultEvents_;
    size_t faultIdx_ = 0;
    bool down_ = false;
    uint64_t downUntil_ = 0;
    uint64_t downCycles_ = 0;
    uint64_t wedgedCycles_ = 0;
    uint32_t reboots_ = 0;
    uint32_t traps_ = 0;
    uint32_t cfiTraps_ = 0;
    uint32_t crashes_ = 0;
    std::vector<TrapEntry> trapLog_;
    /**
     * Shadow return stack: every Call/CallR under a CFI build pushes
     * the caller's function index (MOp::SSPush); Ret/Reti implicitly
     * pops (skipping interrupt frames); MOp::SSChk compares the top
     * against the resuming frame. Non-CFI images never push, so the
     * implicit pop is a no-op and the member costs nothing.
     */
    std::vector<uint32_t> shadow_;
    /** RAM-global span [dataLo_, dataHi_) memory flips map into. */
    uint32_t dataLo_ = 0, dataHi_ = 0;
};

/** Scheduling options for a mote network. */
struct NetworkOptions {
    /** Interpreter core for motes added via the MProgram overload. */
    ExecMode mode = ExecMode::Predecoded;
    /**
     * Conservative-lookahead windows: sync every
     * min(kAirLatency, next pending radio delivery) cycles instead of
     * the fixed legacy kQuantum. Radio propagation takes kAirLatency
     * cycles, so no mote can observe another inside a window and any
     * window size <= kAirLatency yields identical behaviour.
     */
    bool lookahead = true;
    /**
     * Step the motes of each window in parallel on this many threads
     * (1 = serial). Requires lookahead; radio sends are buffered
     * per-sender during a window and flushed at the window barrier in
     * sender order, which is exactly the serial delivery order.
     */
    unsigned threads = 1;
    /**
     * Persistent worker pool the parallel scheduler dispatches each
     * window on (null = the process-wide core::sharedPool()). Window
     * stepping borrows pool workers instead of spawning threads per
     * run, so thousands of SimDriver cells reuse one set of threads.
     */
    core::WorkerPool *pool = nullptr;
    /**
     * Fault campaign for this run: state faults are scheduled per
     * mote at first run() (node 1 only unless faultCompanions), radio
     * faults are drawn per delivery, and the recovery policy applies
     * to every mote. Defaults inject nothing.
     */
    FaultOptions faults;
    /**
     * Stop windowing once every mote is terminally dead (halted, or
     * wedged with no pending fault able to revive it): one final
     * fast-forward per mote replaces thousands of idle windows with
     * identical final stats.
     */
    bool earlyExit = true;
    /**
     * Wall-clock watchdog for run(), in milliseconds (0 = off).
     * run() throws SimAbort when the limit passes — the per-cell
     * simulation drivers turn that into a failed cell instead of a
     * hung bench.
     */
    double wallLimitMs = 0.0;
};

/** A network of motes sharing a radio medium, stepped in windows. */
class Network {
  public:
    static constexpr uint64_t kAirLatency = 500;  ///< propagation cycles
    /** Legacy lockstep scheduling quantum in cycles. */
    static constexpr uint64_t kQuantum = 256;

    Network() = default;
    explicit Network(NetworkOptions opts) : opts_(opts) {}

    /** Add a mote running `prog` with the given node id. */
    Machine &addMote(const backend::MProgram &prog, uint8_t nodeId);
    /** Add a mote executing a shared predecoded image. */
    Machine &addMote(std::shared_ptr<const DecodedProgram> prog,
                     uint8_t nodeId);

    /** Boot every mote and run the whole network for `cycles`. */
    void run(uint64_t cycles);

    Machine &mote(size_t i) { return *motes_[i]; }
    size_t size() const { return motes_.size(); }
    /** Scheduling windows opened so far (early-exit regression). */
    size_t windows() const { return windows_; }

  private:
    struct Send {
        Packet p;
        uint64_t at;
    };

    Machine &attachMote(std::unique_ptr<Machine> m);
    void deliverFrom(size_t senderIdx, const Packet &p, uint64_t at);
    uint64_t windowEnd(uint64_t t, uint64_t end) const;
    void runSerial(uint64_t start, uint64_t end);
    void runParallel(uint64_t start, uint64_t end, unsigned threads);
    bool allMotesDead() const;
    bool pastDeadline() const;

    NetworkOptions opts_;
    std::vector<std::unique_ptr<Machine>> motes_;
    /** Per-sender buffers for window-parallel radio delivery. */
    std::vector<std::vector<Send>> outboxes_;
    bool bufferSends_ = false;
    bool booted_ = false;
    size_t windows_ = 0;
    // Wall-clock watchdog state for the current run() call.
    bool hasDeadline_ = false;
    bool timedOut_ = false;
    std::chrono::steady_clock::time_point deadline_;
};

} // namespace stos::sim

#endif
