/**
 * @file
 * Cycle-accurate mote simulator (the Avrora analogue). Executes a
 * linked MProgram with the target's per-instruction cycle costs,
 * dispatches device interrupts between instructions, fast-forwards
 * time across SLEEP, and accounts the duty cycle (awake / total
 * cycles) that the paper's Figure 3(c) reports.
 */
#ifndef STOS_SIM_MACHINE_H
#define STOS_SIM_MACHINE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/minstr.h"
#include "sim/devices.h"

namespace stos::sim {

class Machine {
  public:
    Machine(const backend::MProgram &prog, uint8_t nodeId = 1);

    /** Start executing at the entry point (call before runUntil). */
    void boot();

    /** Run until the local cycle counter reaches `cycle`. */
    void runUntilCycle(uint64_t cycle);

    bool halted() const { return halted_; }
    /** Stuck in a failure-handler self loop. */
    bool wedged() const { return wedged_; }
    uint32_t failedFlid() const { return failedFlid_; }

    uint64_t cycles() const { return cycles_; }
    uint64_t awakeCycles() const { return cycles_ - sleepCycles_; }
    double
    dutyCycle() const
    {
        return cycles_ ? static_cast<double>(awakeCycles()) /
                             static_cast<double>(cycles_)
                       : 0.0;
    }

    DeviceHub &devices() { return dev_; }
    const DeviceHub &devices() const { return dev_; }

    /** Read a global's current RAM/ROM bytes (little-endian). */
    uint64_t readGlobal(const std::string &name, uint32_t size) const;
    bool hasGlobal(const std::string &name) const;

    uint64_t instructionsExecuted() const { return instrs_; }

  private:
    struct Frame {
        uint32_t funcIdx = 0;
        uint32_t block = 0;
        size_t ip = 0;
        uint32_t fp = 0;
        std::vector<uint64_t> regs;
        bool fromIrq = false;
    };

    void step();
    void dispatchIrqs();
    void enterFunction(uint32_t funcIdx, bool fromIrq);
    uint64_t maskFor(uint8_t w) const;
    uint64_t loadMem(uint32_t addr, uint8_t w) const;
    void storeMem(uint32_t addr, uint64_t v, uint8_t w);
    bool evalCond(backend::MCond c, uint64_t a, uint64_t b,
                  uint8_t w) const;

    const backend::MProgram &prog_;
    DeviceHub dev_;
    std::map<uint32_t, uint32_t> funcByModuleId_;
    std::map<std::string, const backend::MProgram::DataItem *> dataByName_;

    std::vector<uint8_t> mem_;
    uint32_t sp_;
    std::vector<Frame> frames_;
    std::vector<uint64_t> argBuf_;
    std::vector<uint64_t> retBuf_;
    bool iflag_ = true;
    std::vector<int> pendingIrqs_;
    uint64_t cycles_ = 0;
    uint64_t sleepCycles_ = 0;
    uint64_t instrs_ = 0;
    bool halted_ = false;
    bool wedged_ = false;
    bool sleeping_ = false;
    uint32_t failedFlid_ = 0;
    uint32_t failFnIdx_ = ~0u;
};

/** A network of motes sharing a radio medium, stepped in lockstep. */
class Network {
  public:
    static constexpr uint64_t kAirLatency = 500;  ///< propagation cycles
    /** Lockstep scheduling quantum in cycles. */
    static constexpr uint64_t kQuantum = 256;

    /** Add a mote running `prog` with the given node id. */
    Machine &addMote(const backend::MProgram &prog, uint8_t nodeId);

    /** Boot every mote and run the whole network for `cycles`. */
    void run(uint64_t cycles);

    Machine &mote(size_t i) { return *motes_[i]; }
    size_t size() const { return motes_.size(); }

  private:
    std::vector<std::unique_ptr<Machine>> motes_;
    bool booted_ = false;
};

} // namespace stos::sim

#endif
