/**
 * @file
 * Device model implementation.
 */
#include "sim/devices.h"

#include <algorithm>

#include "support/devmap.h"

namespace stos::sim {

using namespace stos::dev;

void
DeviceHub::reset()
{
    ++schedVersion_;
    for (int t = 0; t < 2; ++t) {
        timerEn_[t] = false;
        timerPeriod_[t] = 1024;
        timerNext_[t] = UINT64_MAX;
    }
    adcChannel_ = 0;
    adcDoneAt_ = UINT64_MAX;
    adcData_ = 0;
    rxEnabled_ = false;
    txFifo_.clear();
    txLen_ = 0;
    txDest_ = 0xFF;
    txDoneAt_ = UINT64_MAX;
    rxFifo_.clear();
    rxReadPos_ = 0;
    lastRssi_ = 0;
    leds_ = 0;
    portB_ = 0;
    rngState_ = 0x1234;
    // rxQueue_, uart_, and the counters deliberately survive: see the
    // declaration comment.
}

uint16_t
DeviceHub::sensorValue(uint64_t now) const
{
    // Deterministic synthetic waveform: a slow triangle wave plus a
    // per-node phase, different per channel. Stands in for the light /
    // temperature sensors the paper's workloads sample.
    uint64_t t = (now >> 12) + nodeId_ * 37 + adcChannel_ * 101;
    uint32_t phase = static_cast<uint32_t>(t % 512);
    uint32_t tri = phase < 256 ? phase : 511 - phase;
    return static_cast<uint16_t>(256 + tri * 2 + adcChannel_ * 17);
}

uint32_t
DeviceHub::ioRead(uint32_t port, uint64_t now)
{
    switch (port) {
      case kRegLeds:
        return leds_;
      case kRegPortB:
        return portB_;
      case kRegAdcData:
        return adcData_;
      case kRegAdcChannel:
        return adcChannel_;
      case kRegRadioData: {
        if (rxReadPos_ < rxFifo_.size())
            return rxFifo_[rxReadPos_++];
        return 0;
      }
      case kRegRadioLen:
        return static_cast<uint32_t>(rxFifo_.size());
      case kRegRadioRssi:
        return lastRssi_;
      case kRegClock:
        return static_cast<uint32_t>((now >> 8) & 0xFFFF);
      case kRegNodeId:
        return nodeId_;
      case kRegRandom:
        rngState_ = rngState_ * 1103515245u + 12345u;
        return (rngState_ >> 16) & 0xFF;
      default:
        return 0;
    }
}

void
DeviceHub::ioWrite(uint32_t port, uint32_t value, uint64_t now)
{
    switch (port) {
      case kRegLeds:
        leds_ = static_cast<uint8_t>(value);
        ++ledWrites_;
        break;
      case kRegPortB:
        portB_ = static_cast<uint8_t>(value);
        break;
      case kRegTimer0Ctrl:
      case kRegTimer1Ctrl: {
        int t = port == kRegTimer0Ctrl ? 0 : 1;
        bool en = value & 1;
        timerEn_[t] = en;
        ++schedVersion_;
        timerNext_[t] =
            en ? now + static_cast<uint64_t>(timerPeriod_[t]) * 256
               : UINT64_MAX;
        break;
      }
      case kRegTimer0Period:
        timerPeriod_[0] = static_cast<uint16_t>(value ? value : 1);
        break;
      case kRegTimer1Period:
        timerPeriod_[1] = static_cast<uint16_t>(value ? value : 1);
        break;
      case kRegAdcCtrl:
        if (value & 1) {
            adcDoneAt_ = now + kAdcLatency;
            ++schedVersion_;
        }
        break;
      case kRegAdcChannel:
        adcChannel_ = static_cast<uint8_t>(value & 3);
        break;
      case kRegRadioCtrl:
        rxEnabled_ = value & 1;
        if (value & 2) {
            // Begin transmission of the staged FIFO.
            txDoneAt_ = now + kCyclesPerRadioByte *
                                  std::max<uint64_t>(1, txFifo_.size());
            ++schedVersion_;
        }
        break;
      case kRegRadioData:
        if (txFifo_.size() < 64)
            txFifo_.push_back(static_cast<uint8_t>(value));
        break;
      case kRegRadioLen:
        txLen_ = static_cast<uint8_t>(value);
        txFifo_.clear();
        break;
      case kRegRadioDest:
        txDest_ = static_cast<uint8_t>(value);
        break;
      case kRegUartData:
        uart_.push_back(static_cast<char>(value));
        break;
      default:
        break;
    }
}

uint64_t
DeviceHub::nextEventAt() const
{
    ++consultations_;
    uint64_t next = UINT64_MAX;
    next = std::min(next, timerNext_[0]);
    next = std::min(next, timerNext_[1]);
    next = std::min(next, adcDoneAt_);
    next = std::min(next, txDoneAt_);
    if (!rxQueue_.empty())
        next = std::min(next, rxQueue_.front().at);
    return next;
}

void
DeviceHub::advanceTo(uint64_t now, std::vector<int> &irqs)
{
    ++consultations_;
    for (int t = 0; t < 2; ++t) {
        while (timerEn_[t] && timerNext_[t] <= now) {
            irqs.push_back(t == 0 ? 0 : 1);  // TIMER0 / TIMER1
            timerNext_[t] += static_cast<uint64_t>(timerPeriod_[t]) * 256;
            ++schedVersion_;
        }
    }
    if (adcDoneAt_ <= now) {
        adcData_ = sensorValue(now);
        adcDoneAt_ = UINT64_MAX;
        ++conversions_;
        ++schedVersion_;
        irqs.push_back(2);  // ADC
    }
    if (txDoneAt_ <= now) {
        Packet p;
        p.src = nodeId_;
        p.dest = txDest_;
        p.bytes = txFifo_;
        if (txLen_ != 0 && txLen_ < p.bytes.size())
            p.bytes.resize(txLen_);
        txDoneAt_ = UINT64_MAX;
        txFifo_.clear();
        ++schedVersion_;
        ++sent_;
        irqs.push_back(4);  // RADIO_TX
        if (onSend)
            onSend(p);
    }
    while (!rxQueue_.empty() && rxQueue_.front().at <= now) {
        if (rxEnabled_) {
            rxFifo_ = rxQueue_.front().p.bytes;
            rxReadPos_ = 0;
            lastRssi_ = static_cast<uint8_t>(
                180 + ((rxQueue_.front().p.src * 7) & 0x3F));
            ++received_;
            irqs.push_back(3);  // RADIO_RX
        }
        rxQueue_.pop_front();
        ++schedVersion_;
    }
}

void
DeviceHub::deliver(const Packet &p, uint64_t at)
{
    if (p.dest != 0xFF && p.dest != nodeId_)
        return;
    // Sorted insertion by delivery time, stable for ties. Packets
    // almost always arrive in time order, so this is an append.
    ++schedVersion_;
    auto it = rxQueue_.end();
    while (it != rxQueue_.begin() && std::prev(it)->at > at)
        --it;
    rxQueue_.insert(it, {p, at});
}

} // namespace stos::sim
